package repro

// One benchmark per figure/table of the paper's evaluation, plus
// ablation and substrate microbenchmarks, all driven through the
// public sim API. Process-creation benchmarks report both host ns/op
// (how fast the simulator runs) and the virtual-time metric
// "virt-µs/op" (what the paper's axes show); the virtual numbers are
// the reproduction, the host numbers are just the simulator's own
// speed.
//
//	go test -bench=. -benchmem
//
// regenerates everything; see EXPERIMENTS.md for the mapping.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/addrspace"
	"repro/internal/experiments"
	"repro/internal/kernel"
	"repro/internal/ulib"
	"repro/sim"
	"repro/sim/load"
)

const (
	kib = uint64(1) << 10
	mib = uint64(1) << 20
)

// benchSystem boots a machine whose host process is a dirty parent of
// the given size — the x-axis of Figure 1.
func benchSystem(b *testing.B, size uint64, huge bool) *sim.System {
	b.Helper()
	sys, err := sim.NewSystem(sim.WithRAM(4<<30), sim.WithUserland("true"))
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.DirtyHost(size, huge); err != nil {
		b.Fatal(err)
	}
	return sys
}

// benchCreation is the shared body for Figure 1's lines: create a
// parked child through one strategy, record the virtual latency,
// destroy it.
func benchCreation(b *testing.B, st sim.Strategy, size uint64, huge bool) {
	sys := benchSystem(b, size, huge)
	measure := func() time.Duration {
		p, err := sys.Command("true").Via(st).Create()
		if err != nil {
			b.Fatal(err)
		}
		virt := p.CreationCost()
		p.Destroy()
		return virt
	}
	// Warm-up: the first fork additionally downgrades the parent's
	// PTEs to read-only.
	measure()
	var virt time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		virt += measure()
	}
	b.StopTimer()
	b.ReportMetric(float64(virt)/float64(b.N)/1e3, "virt-µs/op")
}

// BenchmarkFigure1 regenerates every line of Figure 1 (creation
// latency vs parent size). Sub-benchmark names give method and size.
func BenchmarkFigure1(b *testing.B) {
	sizes := []uint64{1 * mib, 16 * mib, 256 * mib, 1024 * mib}
	for _, size := range sizes {
		name := experiments.HumanBytes(size)
		b.Run("fork+exec/"+name, func(b *testing.B) {
			benchCreation(b, sim.ForkExec, size, false)
		})
		b.Run("vfork+exec/"+name, func(b *testing.B) {
			benchCreation(b, sim.VforkExec, size, false)
		})
		b.Run("posix_spawn/"+name, func(b *testing.B) {
			benchCreation(b, sim.Spawn, size, false)
		})
		b.Run("fork+exec-huge/"+name, func(b *testing.B) {
			benchCreation(b, sim.ForkExec, size, true)
		})
	}
}

// BenchmarkTable1 runs the full probed semantics matrix (its cost is
// dominated by the O(1)-in-parent-size probe, which forks a 128 MiB
// parent).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCOWTax regenerates E3: per-page write cost before and
// after a fork.
func BenchmarkCOWTax(b *testing.B) {
	var parentPerPage float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.CowTax(16 * mib)
		if err != nil {
			b.Fatal(err)
		}
		parentPerPage = float64(res.ParentPerPage)
	}
	b.ReportMetric(parentPerPage, "virt-ns/page")
}

// BenchmarkForkHuge regenerates E4's headline pair: fork+exec of a
// 256 MiB parent with 4 KiB vs 2 MiB pages.
func BenchmarkForkHuge(b *testing.B) {
	b.Run("4KiB", func(b *testing.B) { benchCreation(b, sim.ForkExec, 256*mib, false) })
	b.Run("2MiB", func(b *testing.B) { benchCreation(b, sim.ForkExec, 256*mib, true) })
}

// BenchmarkEagerFork regenerates ablation 1: 1970s fork that copies
// every resident page at fork time.
func BenchmarkEagerFork(b *testing.B) {
	b.Run("cow", func(b *testing.B) { benchCreation(b, sim.ForkExec, 64*mib, false) })
	b.Run("eager", func(b *testing.B) { benchCreation(b, sim.EagerForkExec, 64*mib, false) })
}

// BenchmarkEmulatedFork regenerates E7's worst line: user-space fork
// over cross-process operations.
func BenchmarkEmulatedFork(b *testing.B) {
	benchCreation(b, sim.EmulatedFork, 16*mib, false)
}

// BenchmarkOvercommit regenerates E5 (the full policy × size matrix).
func BenchmarkOvercommit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Overcommit(128 * mib); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompose regenerates E6 (all four §4.2 demonstrations,
// executed as VM programs).
func BenchmarkCompose(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Compose(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpawnScale regenerates E7's throughput sweep.
func BenchmarkSpawnScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Scale(1*mib, 64*mib); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadPrefork is the §5 server claim as a benchmark: a
// prefork server draining synthetic requests, one worker process per
// request, swept over creation strategy × server heap. The virt-req/s
// metric is the reproduction's number: flat for spawn and the builder,
// collapsing with heap size for fork+exec. BENCH_PR2.json pins these
// values (regenerate with `forkbench load -sweep -json BENCH_PR2.json`).
func BenchmarkLoadPrefork(b *testing.B) {
	vias := []struct {
		name string
		via  sim.Strategy
	}{
		{"fork", sim.ForkExec},
		{"spawn", sim.Spawn},
		{"builder", sim.Builder},
	}
	for _, heap := range []uint64{64 * mib, 256 * mib} {
		for _, v := range vias {
			b.Run(fmt.Sprintf("%s/%s", v.name, experiments.HumanBytes(heap)), func(b *testing.B) {
				var reqPerVSec float64
				for i := 0; i < b.N; i++ {
					m, err := load.Run(load.Config{
						Scenario:  load.Prefork,
						Via:       v.via,
						Requests:  64,
						HeapBytes: heap,
					})
					if err != nil {
						b.Fatal(err)
					}
					reqPerVSec = m.RequestsPerVSec
				}
				b.ReportMetric(reqPerVSec, "virt-req/s")
			})
		}
	}
}

// BenchmarkLoadForkStorm measures burst creation: 256 simultaneously
// live children per wave — the scenario that hammers the scheduler's
// run queue and the frame allocator.
func BenchmarkLoadForkStorm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := load.Run(load.Config{
			Scenario: load.ForkStorm, Via: sim.Spawn,
			Requests: 1, Workers: 256, HeapBytes: 16 * mib,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate microbenchmarks -----------------------------------

// BenchmarkDemandFault measures the simulator's page-fault path. The
// faulted region is bounded and recycled (off the timer) so b.N can
// grow past physical memory.
func BenchmarkDemandFault(b *testing.B) {
	sys, err := sim.NewSystem(sim.WithRAM(8<<30), sim.WithUserland("true"))
	if err != nil {
		b.Fatal(err)
	}
	space := sys.Host().Space()
	const pages = 1 << 18 // 1 GiB region
	remap := func() uint64 {
		vma, err := space.Map(0x10000000, pages*4096, addrspace.Read|addrspace.Write, addrspace.MapOpts{})
		if err != nil {
			b.Fatal(err)
		}
		return vma.Start
	}
	start := remap()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%pages == 0 {
			b.StopTimer()
			if err := space.Unmap(start, pages*4096); err != nil {
				b.Fatal(err)
			}
			start = remap()
			b.StartTimer()
		}
		if err := space.Fault(start+uint64(i%pages)*4096, addrspace.AccessWrite); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCloneCOW measures the raw page-table COW clone (the fork
// inner loop) for a 64 MiB parent.
func BenchmarkCloneCOW(b *testing.B) {
	sys := benchSystem(b, 64*mib, false)
	space := sys.Host().Space()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := space.CloneCOW()
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		c.Destroy()
		b.StartTimer()
	}
}

// BenchmarkVMExecution measures host-side interpreter speed
// (instructions per host second) on a tight arithmetic loop.
func BenchmarkVMExecution(b *testing.B) {
	const spin = `
_start:
    li r1, 1000000000
loop:
    addi r0, r0, 1
    bne r0, r1, loop
    sys SYS_EXIT
`
	sys, err := sim.NewSystem(sim.WithUserland("true"), sim.WithProgram("/bin/spin", spin))
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Command("/bin/spin").Start(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := sys.Kernel().Run(kernel.RunLimits{MaxInstructions: uint64(b.N)}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPipeTransfer measures the syscall+pipe path end to end: a
// VM pingpong round trip per iteration (amortised).
func BenchmarkPipeTransfer(b *testing.B) {
	sys, err := sim.NewSystem()
	if err != nil {
		b.Fatal(err)
	}
	rounds := b.N
	if rounds > 100000 {
		rounds = 100000
	}
	b.ResetTimer()
	if err := sys.Command("pingpong", itoa(rounds)).Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
}

// BenchmarkAssemble measures the toolchain: assembling the whole ulib
// runtime plus a representative program via System.InstallProgram.
func BenchmarkAssemble(b *testing.B) {
	sys, err := sim.NewSystem(sim.WithUserland("true"))
	if err != nil {
		b.Fatal(err)
	}
	src := ulib.Sources["pingpong"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.InstallProgram("/bin/pingpong", src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpawnVM measures end-to-end VM spawn throughput: one
// spawn+wait of /bin/true per iteration, driven by the spawnloop
// program.
func BenchmarkSpawnVM(b *testing.B) {
	sys, err := sim.NewSystem(sim.WithRAM(1 << 30))
	if err != nil {
		b.Fatal(err)
	}
	n := b.N
	if n > 20000 {
		n = 20000
	}
	b.ResetTimer()
	if err := sys.Command("spawnloop", itoa(n), "/bin/true").Run(); err != nil {
		b.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkPipeVFS measures a pipe write/read through the sim File
// layer alone (no VM), for the substrate table in EXPERIMENTS.md.
func BenchmarkPipeVFS(b *testing.B) {
	sys, err := sim.NewSystem(sim.WithUserland("true"))
	if err != nil {
		b.Fatal(err)
	}
	r, w := sys.Pipe()
	buf := make([]byte, 512)
	b.SetBytes(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Write(buf); err != nil {
			b.Fatal(err)
		}
		if _, err := r.Read(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadSMPServer measures the SMP worst case end to end: a
// multithreaded server snapshotted mid-traffic on 4 CPUs, fork (with
// its per-remote-core shootdown tax) vs the fork-less snapshot.
func BenchmarkLoadSMPServer(b *testing.B) {
	for _, v := range []struct {
		name string
		via  sim.Strategy
	}{{"fork", sim.ForkExec}, {"forkless", sim.Spawn}} {
		b.Run(v.name, func(b *testing.B) {
			var ipis uint64
			for i := 0; i < b.N; i++ {
				m, err := load.Run(load.Config{
					Scenario: load.SMPServer, Via: v.via,
					CPUs: 4, Requests: 4, HeapBytes: 16 * mib,
				})
				if err != nil {
					b.Fatal(err)
				}
				ipis = m.TLBShootdowns
			}
			b.ReportMetric(float64(ipis), "shootdown-IPIs")
		})
	}
}
