package repro

// One benchmark per figure/table of the paper's evaluation, plus
// ablation and substrate microbenchmarks. Process-creation benchmarks
// report both host ns/op (how fast the simulator runs) and the
// virtual-time metric "virt-µs/op" (what the paper's axes show); the
// virtual numbers are the reproduction, the host numbers are just the
// simulator's own speed.
//
//	go test -bench=. -benchmem
//
// regenerates everything; see EXPERIMENTS.md for the mapping.

import (
	"testing"

	"repro/internal/addrspace"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/experiments"
	"repro/internal/kernel"
	"repro/internal/ulib"
	"repro/internal/vfs"
)

const (
	kib = uint64(1) << 10
	mib = uint64(1) << 20
)

// benchParent builds a kernel plus a dirty parent of the given size.
func benchParent(b *testing.B, size uint64, huge bool) (*kernel.Kernel, *kernel.Process) {
	b.Helper()
	k := kernel.New(kernel.Options{RAMBytes: 4 << 30})
	if err := ulib.Install(k, "true", "/bin/true"); err != nil {
		b.Fatal(err)
	}
	p, err := experiments.BuildParent(k, "parent", size, huge)
	if err != nil {
		b.Fatal(err)
	}
	return k, p
}

// benchCreation is the shared body for Figure 1's lines.
func benchCreation(b *testing.B, method core.Method, size uint64, huge bool) {
	k, parent := benchParent(b, size, huge)
	// Warm-up fork: the first one additionally downgrades the
	// parent's PTEs.
	if _, err := core.MeasureCreation(k, parent, method, "/bin/true"); err != nil {
		b.Fatal(err)
	}
	var virt cost.Ticks
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		el, err := core.MeasureCreation(k, parent, method, "/bin/true")
		if err != nil {
			b.Fatal(err)
		}
		virt += el
	}
	b.StopTimer()
	b.ReportMetric(float64(virt)/float64(b.N)/1e3, "virt-µs/op")
}

// BenchmarkFigure1 regenerates every line of Figure 1 (creation
// latency vs parent size). Sub-benchmark names give method and size.
func BenchmarkFigure1(b *testing.B) {
	sizes := []uint64{1 * mib, 16 * mib, 256 * mib, 1024 * mib}
	for _, size := range sizes {
		name := experiments.HumanBytes(size)
		b.Run("fork+exec/"+name, func(b *testing.B) {
			benchCreation(b, core.MethodForkExec, size, false)
		})
		b.Run("vfork+exec/"+name, func(b *testing.B) {
			benchCreation(b, core.MethodVforkExec, size, false)
		})
		b.Run("posix_spawn/"+name, func(b *testing.B) {
			benchCreation(b, core.MethodSpawn, size, false)
		})
		b.Run("fork+exec-huge/"+name, func(b *testing.B) {
			benchCreation(b, core.MethodForkExec, size, true)
		})
	}
}

// BenchmarkTable1 runs the full probed semantics matrix (its cost is
// dominated by the O(1)-in-parent-size probe, which forks a 128 MiB
// parent).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCOWTax regenerates E3: per-page write cost before and
// after a fork.
func BenchmarkCOWTax(b *testing.B) {
	var parentPerPage cost.Ticks
	for i := 0; i < b.N; i++ {
		res, err := experiments.CowTax(16 * mib)
		if err != nil {
			b.Fatal(err)
		}
		parentPerPage = res.ParentPerPage
	}
	b.ReportMetric(float64(parentPerPage), "virt-ns/page")
}

// BenchmarkForkHuge regenerates E4's headline pair: fork+exec of a
// 256 MiB parent with 4 KiB vs 2 MiB pages.
func BenchmarkForkHuge(b *testing.B) {
	b.Run("4KiB", func(b *testing.B) { benchCreation(b, core.MethodForkExec, 256*mib, false) })
	b.Run("2MiB", func(b *testing.B) { benchCreation(b, core.MethodForkExec, 256*mib, true) })
}

// BenchmarkEagerFork regenerates ablation 1: 1970s fork that copies
// every resident page at fork time.
func BenchmarkEagerFork(b *testing.B) {
	b.Run("cow", func(b *testing.B) { benchCreation(b, core.MethodForkExec, 64*mib, false) })
	b.Run("eager", func(b *testing.B) { benchCreation(b, core.MethodForkEagerExec, 64*mib, false) })
}

// BenchmarkEmulatedFork regenerates E7's worst line: user-space fork
// over cross-process operations.
func BenchmarkEmulatedFork(b *testing.B) {
	benchCreation(b, core.MethodEmulatedForkExec, 16*mib, false)
}

// BenchmarkOvercommit regenerates E5 (the full policy × size matrix).
func BenchmarkOvercommit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Overcommit(128 * mib); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompose regenerates E6 (all four §4.2 demonstrations,
// executed as VM programs).
func BenchmarkCompose(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Compose(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpawnScale regenerates E7's throughput sweep.
func BenchmarkSpawnScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Scale(1*mib, 64*mib); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate microbenchmarks -----------------------------------

// BenchmarkDemandFault measures the simulator's page-fault path. The
// faulted region is bounded and recycled (off the timer) so b.N can
// grow past physical memory.
func BenchmarkDemandFault(b *testing.B) {
	k := kernel.New(kernel.Options{RAMBytes: 8 << 30})
	p := k.NewSynthetic("p", nil)
	const pages = 1 << 18 // 1 GiB region
	remap := func() uint64 {
		vma, err := p.Space().Map(0x10000000, pages*4096, addrspace.Read|addrspace.Write, addrspace.MapOpts{})
		if err != nil {
			b.Fatal(err)
		}
		return vma.Start
	}
	start := remap()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%pages == 0 {
			b.StopTimer()
			if err := p.Space().Unmap(start, pages*4096); err != nil {
				b.Fatal(err)
			}
			start = remap()
			b.StartTimer()
		}
		if err := p.Space().Fault(start+uint64(i%pages)*4096, addrspace.AccessWrite); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCloneCOW measures the raw page-table COW clone (the fork
// inner loop) for a 64 MiB parent.
func BenchmarkCloneCOW(b *testing.B) {
	k, parent := benchParent(b, 64*mib, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := parent.Space().CloneCOW()
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		c.Destroy()
		b.StartTimer()
	}
	_ = k
}

// BenchmarkVMExecution measures host-side interpreter speed
// (instructions per host second) on a tight arithmetic loop.
func BenchmarkVMExecution(b *testing.B) {
	k := kernel.New(kernel.Options{})
	im := asm.MustAssemble(`
_start:
    li r1, 1000000000
loop:
    addi r0, r0, 1
    bne r0, r1, loop
    sys SYS_EXIT
` + ulib.Runtime)
	if err := k.InstallImage("/bin/spin", im); err != nil {
		b.Fatal(err)
	}
	if _, err := k.BootInit("/bin/spin", []string{"spin"}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := k.Run(kernel.RunLimits{MaxInstructions: uint64(b.N)}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPipeTransfer measures the syscall+pipe path end to end: a
// VM pingpong round trip per iteration (amortised).
func BenchmarkPipeTransfer(b *testing.B) {
	k := kernel.New(kernel.Options{})
	if err := ulib.InstallAll(k); err != nil {
		b.Fatal(err)
	}
	rounds := b.N
	if rounds > 100000 {
		rounds = 100000
	}
	if _, err := k.BootInit("/bin/pingpong", []string{"pingpong", itoa(rounds)}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := k.Run(kernel.RunLimits{}); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
}

// BenchmarkAssemble measures the toolchain: assembling the whole ulib
// runtime plus a representative program.
func BenchmarkAssemble(b *testing.B) {
	src := ulib.Sources["pingpong"] + ulib.Runtime
	for i := 0; i < b.N; i++ {
		if _, err := asm.Assemble(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpawnVM measures end-to-end VM spawn throughput: one
// spawn+wait of /bin/true per iteration, driven by the spawnloop
// program.
func BenchmarkSpawnVM(b *testing.B) {
	k := kernel.New(kernel.Options{RAMBytes: 1 << 30})
	if err := ulib.InstallAll(k); err != nil {
		b.Fatal(err)
	}
	n := b.N
	if n > 20000 {
		n = 20000
	}
	if _, err := k.BootInit("/bin/spawnloop", []string{"spawnloop", itoa(n), "/bin/true"}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := k.Run(kernel.RunLimits{}); err != nil {
		b.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// A pipe write through the VFS layer alone (no VM), for the substrate
// table in EXPERIMENTS.md.
func BenchmarkPipeVFS(b *testing.B) {
	r, w := vfs.NewPipe()
	buf := make([]byte, 512)
	b.SetBytes(512)
	for i := 0; i < b.N; i++ {
		if _, err := w.Write(buf); err != nil {
			b.Fatal(err)
		}
		if _, err := r.Read(buf); err != nil {
			b.Fatal(err)
		}
	}
}
