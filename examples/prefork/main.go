// Prefork vs spawn worker pools — the workload behind the paper's
// motivation: servers that create many workers.
//
// A pool master with a large in-memory state (caches, JITed code,
// ...) needs N workers. The fork school clones the master; the spawn
// school launches fresh workers. This example builds both pools on
// the simulator and compares: creation latency, physical memory
// actually consumed after the workers dirty their scratch space, and
// what happens to fork's COW sharing as workers write.
package main

import (
	"fmt"
	"log"

	"repro/internal/addrspace"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/ulib"
)

const (
	masterStateMiB = 256
	workers        = 8
	scratchMiB     = 16
)

func main() {
	fmt.Printf("pool master holds %d MiB of state; %d workers each dirty %d MiB\n\n",
		masterStateMiB, workers, scratchMiB)
	forkPool()
	spawnPool()
}

// buildMaster creates the pool master with its big resident state.
func buildMaster(k *kernel.Kernel) (*kernel.Process, uint64) {
	master := k.NewSynthetic("master", nil)
	vma, err := master.Space().Map(0, masterStateMiB<<20, addrspace.Read|addrspace.Write,
		addrspace.MapOpts{Name: "state"})
	if err != nil {
		log.Fatal(err)
	}
	if err := master.Space().Touch(vma.Start, vma.Len(), addrspace.AccessWrite); err != nil {
		log.Fatal(err)
	}
	return master, vma.Start
}

func forkPool() {
	k := kernel.New(kernel.Options{RAMBytes: 8 << 30})
	if err := ulib.InstallAll(k); err != nil {
		log.Fatal(err)
	}
	master, state := buildMaster(k)

	t0 := k.Now()
	var pool []*kernel.Process
	for i := 0; i < workers; i++ {
		w, err := k.Fork(master)
		if err != nil {
			log.Fatalf("fork worker %d: %v", i, err)
		}
		pool = append(pool, w)
	}
	created := k.Now() - t0
	shared := k.Phys().AllocatedPages() << 12

	// Workers write into a slice of the master state (in-place
	// updates), breaking COW page by page.
	t1 := k.Now()
	for i, w := range pool {
		off := uint64(i) * (scratchMiB << 20)
		if err := w.Space().Touch(state+off, scratchMiB<<20, addrspace.AccessWrite); err != nil {
			log.Fatalf("worker %d write: %v", i, err)
		}
	}
	wrote := k.Now() - t1
	after := k.Phys().AllocatedPages() << 12

	fmt.Printf("fork pool:  created %d workers in %v (%v each)\n", workers, created, created/workers)
	fmt.Printf("            memory right after fork: %d MiB (all COW-shared)\n", shared>>20)
	fmt.Printf("            after workers wrote:     %d MiB (+%d MiB copied), writes took %v\n\n",
		after>>20, (after-shared)>>20, wrote)

	for _, w := range pool {
		k.DestroyProcess(w)
	}
	k.DestroyProcess(master)
}

func spawnPool() {
	k := kernel.New(kernel.Options{RAMBytes: 8 << 30})
	if err := ulib.InstallAll(k); err != nil {
		log.Fatal(err)
	}
	master, _ := buildMaster(k)

	t0 := k.Now()
	var pool []*kernel.Process
	for i := 0; i < workers; i++ {
		// Fresh image: the worker binary, not a clone of the
		// master. Parked so the comparison is creation cost only.
		w, err := core.SpawnParked(k, master, "/bin/true", []string{"worker"}, nil, nil)
		if err != nil {
			log.Fatalf("spawn worker %d: %v", i, err)
		}
		pool = append(pool, w)
	}
	created := k.Now() - t0
	base := k.Phys().AllocatedPages() << 12

	// Spawned workers get their own scratch; nothing is COW.
	t1 := k.Now()
	for i, w := range pool {
		vma, err := w.Space().Map(0, scratchMiB<<20, addrspace.Read|addrspace.Write, addrspace.MapOpts{Name: "scratch"})
		if err != nil {
			log.Fatalf("worker %d map: %v", i, err)
		}
		if err := w.Space().Touch(vma.Start, vma.Len(), addrspace.AccessWrite); err != nil {
			log.Fatalf("worker %d write: %v", i, err)
		}
	}
	wrote := k.Now() - t1
	after := k.Phys().AllocatedPages() << 12

	fmt.Printf("spawn pool: created %d workers in %v (%v each, independent of master size)\n",
		workers, created, created/workers)
	fmt.Printf("            memory after spawn: %d MiB; after scratch writes: %d MiB, writes took %v\n",
		base>>20, after>>20, wrote)
	fmt.Printf("            (workers that *need* the master's state would receive it explicitly\n")
	fmt.Printf("             via cross-process WriteMemory or shared mappings — see examples/pipeline)\n")

	for _, w := range pool {
		k.DestroyProcess(w)
	}
	k.DestroyProcess(master)
}
