// Prefork vs spawn worker pools — the workload behind the paper's
// motivation: servers that create many workers.
//
// A pool master with a large in-memory state (caches, JITed code,
// ...) needs N workers. The fork school clones the master; the spawn
// school launches fresh workers. This example builds both pools on
// the simulator and compares: creation latency, physical memory
// actually consumed after the workers dirty their scratch space, and
// what happens to fork's COW sharing as workers write.
//
// The machine boots through sim; the fork pool reaches for the
// substrate (sim.System.Kernel/Host) because cloning the master is
// exactly what the high-level API refuses to express — the point of
// the paper.
package main

import (
	"fmt"
	"log"

	"repro/internal/addrspace"
	"repro/internal/kernel"
	"repro/sim"
)

const (
	masterStateMiB = 256
	workers        = 8
	scratchMiB     = 16
)

func main() {
	fmt.Printf("pool master holds %d MiB of state; %d workers each dirty %d MiB\n\n",
		masterStateMiB, workers, scratchMiB)
	forkPool()
	spawnPool()
}

// newMachine boots a system whose host process carries the pool
// master's big resident state.
func newMachine() (*sim.System, uint64) {
	sys, err := sim.NewSystem(sim.WithRAM(8 << 30))
	if err != nil {
		log.Fatal(err)
	}
	sys.Host().Name = "master"
	if err := sys.DirtyHost(masterStateMiB<<20, false); err != nil {
		log.Fatal(err)
	}
	// DirtyHost put the working set in the host's first mapping.
	state := sys.Host().Space().VMAs()[0].Start
	return sys, state
}

func forkPool() {
	sys, state := newMachine()
	k, master := sys.Kernel(), sys.Host()

	t0 := sys.VirtualTime()
	var pool []*kernel.Process
	for i := 0; i < workers; i++ {
		w, err := k.Fork(master)
		if err != nil {
			log.Fatalf("fork worker %d: %v", i, err)
		}
		pool = append(pool, w)
	}
	created := sys.VirtualTime() - t0
	shared := k.Phys().AllocatedPages() << 12

	// Workers write into a slice of the master state (in-place
	// updates), breaking COW page by page.
	t1 := sys.VirtualTime()
	for i, w := range pool {
		off := uint64(i) * (scratchMiB << 20)
		if err := w.Space().Touch(state+off, scratchMiB<<20, addrspace.AccessWrite); err != nil {
			log.Fatalf("worker %d write: %v", i, err)
		}
	}
	wrote := sys.VirtualTime() - t1
	after := k.Phys().AllocatedPages() << 12

	fmt.Printf("fork pool:  created %d workers in %v (%v each)\n", workers, created, created/workers)
	fmt.Printf("            memory right after fork: %d MiB (all COW-shared)\n", shared>>20)
	fmt.Printf("            after workers wrote:     %d MiB (+%d MiB copied), writes took %v\n\n",
		after>>20, (after-shared)>>20, wrote)

	for _, w := range pool {
		k.DestroyProcess(w)
	}
}

func spawnPool() {
	sys, _ := newMachine()
	k := sys.Kernel()

	t0 := sys.VirtualTime()
	var pool []*sim.Process
	for i := 0; i < workers; i++ {
		// Fresh image: the worker binary, not a clone of the
		// master. Created parked so the comparison is creation
		// cost only.
		w, err := sys.Command("true").Via(sim.Spawn).Create()
		if err != nil {
			log.Fatalf("spawn worker %d: %v", i, err)
		}
		pool = append(pool, w)
	}
	created := sys.VirtualTime() - t0
	base := k.Phys().AllocatedPages() << 12

	// Spawned workers get their own scratch; nothing is COW.
	t1 := sys.VirtualTime()
	for i, w := range pool {
		space := w.Raw().Space()
		vma, err := space.Map(0, scratchMiB<<20, addrspace.Read|addrspace.Write, addrspace.MapOpts{Name: "scratch"})
		if err != nil {
			log.Fatalf("worker %d map: %v", i, err)
		}
		if err := space.Touch(vma.Start, vma.Len(), addrspace.AccessWrite); err != nil {
			log.Fatalf("worker %d write: %v", i, err)
		}
	}
	wrote := sys.VirtualTime() - t1
	after := k.Phys().AllocatedPages() << 12

	fmt.Printf("spawn pool: created %d workers in %v (%v each, independent of master size)\n",
		workers, created, created/workers)
	fmt.Printf("            memory after spawn: %d MiB; after scratch writes: %d MiB, writes took %v\n",
		base>>20, after>>20, wrote)
	fmt.Printf("            (workers that *need* the master's state would receive it explicitly\n")
	fmt.Printf("             via cross-process WriteMemory or shared mappings — see examples/pipeline)\n")

	for _, w := range pool {
		w.Destroy()
	}
}
