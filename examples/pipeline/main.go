// Pipeline: build `echo one two three | cat | cat > /tmp/out` with the
// sim API — the shell pattern of §6.1, no fork anywhere.
//
// The final stage is launched through the cross-process Builder
// strategy (§6.2) and, to show cross-process construction, the parent
// seeds a memory region in the child before its first instruction via
// the substrate escape hatch.
package main

import (
	"fmt"
	"log"

	"repro/internal/addrspace"
	"repro/sim"
)

func main() {
	sys, err := sim.NewSystem()
	if err != nil {
		log.Fatal(err)
	}

	// Two pipes for a three-stage pipeline.
	r1, w1 := sys.Pipe()
	r2, w2 := sys.Pipe()

	// Stage 1: echo → pipe1.
	echo := sys.Command("echo", "one", "two", "three")
	echo.Stdout = w1

	// Stage 2: cat pipe1 → pipe2.
	cat1 := sys.Command("cat")
	cat1.Stdin = r1
	cat1.Stdout = w2

	// Stage 3, created through the cross-process Builder API: a cat
	// whose stdin is pipe2 and whose stdout is a simulated file.
	outFile, err := sys.Create("/tmp/out")
	if err != nil {
		log.Fatal(err)
	}
	final := sys.Command("cat").Via(sim.Builder)
	final.Stdin = r2
	final.Stdout = outFile

	for _, cmd := range []*sim.Cmd{echo, cat1} {
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
	}
	// Create (don't start) the final stage, so the parent can reach
	// into the not-yet-running child — the cross-process operation
	// fork-style APIs lack.
	fp, err := final.Create()
	if err != nil {
		log.Fatal(err)
	}
	space := fp.Raw().Space()
	vma, err := space.Map(0, 1<<20, addrspace.Read|addrspace.Write, addrspace.MapOpts{Name: "seed"})
	if err != nil {
		log.Fatal(err)
	}
	seed := []byte("seeded before first instruction")
	if err := space.WriteBytes(vma.Start, seed); err != nil {
		log.Fatal(err)
	}
	// Prove the cross-process write landed by reading it back out of
	// the child, before the child ever runs (its address space is
	// torn down once it exits).
	seeded := make([]byte, len(seed))
	if err := space.ReadBytes(vma.Start, seeded); err != nil {
		log.Fatal(err)
	}
	if err := fp.Start(); err != nil {
		log.Fatal(err)
	}

	// Drop the host's pipe ends so EOF propagates, then drain the
	// pipeline by waiting on each stage.
	for _, f := range []*sim.File{r1, w1, r2, w2, outFile} {
		f.Close()
	}
	for _, cmd := range []*sim.Cmd{echo, cat1, final} {
		if err := cmd.Wait(); err != nil {
			log.Fatal(err)
		}
	}

	data, err := sys.ReadFile("/tmp/out")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline wrote %q to /tmp/out\n", data)
	fmt.Printf("final stage carried a parent-seeded region: %q\n", seeded)
	fmt.Printf("three stages, zero forks, %v of virtual time\n", sys.VirtualTime())
}
