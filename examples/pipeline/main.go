// Pipeline: build `echo one two three | cat | cat > /tmp/out` entirely
// with posix_spawn file actions — the shell pattern of §6.1, no fork.
//
// Also demonstrates the cross-process Builder (§6.2) by assembling the
// final stage by hand: image, inherited descriptors, and a pre-seeded
// memory region the parent wrote directly into the child.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/addrspace"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/ulib"
	"repro/internal/vfs"
)

func main() {
	k := kernel.New(kernel.Options{ConsoleOut: os.Stdout})
	if err := ulib.InstallAll(k); err != nil {
		log.Fatal(err)
	}
	sh := k.NewSynthetic("sh", nil)
	console, _ := k.FS().Resolve(nil, "/dev/console")
	sh.FDs().InstallAt(vfs.NewOpenFile(console, vfs.OWrOnly), false, 1)

	// Two pipes for a three-stage pipeline, parked in the shell's
	// descriptor table so children can dup them.
	r1, w1 := vfs.NewPipe()
	r2, w2 := vfs.NewPipe()
	fdR1, _ := sh.FDs().Install(r1, false, 3)
	fdW1, _ := sh.FDs().Install(w1, false, 3)
	fdR2, _ := sh.FDs().Install(r2, false, 3)
	fdW2, _ := sh.FDs().Install(w2, false, 3)
	closeAllPipes := func(fa *core.FileActions) *core.FileActions {
		return fa.AddClose(fdR1).AddClose(fdW1).AddClose(fdR2).AddClose(fdW2)
	}

	// Stage 1: echo → pipe1.
	fa1 := closeAllPipes(new(core.FileActions).AddDup2(fdW1, 1))
	if _, err := core.Spawn(k, sh, "/bin/echo", []string{"echo", "one", "two", "three"}, fa1, nil); err != nil {
		log.Fatal(err)
	}

	// Stage 2: cat pipe1 → pipe2.
	fa2 := closeAllPipes(new(core.FileActions).AddDup2(fdR1, 0).AddDup2(fdW2, 1))
	if _, err := core.Spawn(k, sh, "/bin/cat", []string{"cat"}, fa2, nil); err != nil {
		log.Fatal(err)
	}

	// Stage 3, built by hand with the cross-process Builder: a cat
	// whose stdin is pipe2 and whose stdout is a file the parent
	// opened — and, to show cross-process memory operations, a
	// scratch region the parent seeds before the child ever runs.
	if _, err := k.FS().WriteFile("/tmp/out", nil); err != nil {
		log.Fatal(err)
	}
	b := core.NewBuilder(k, sh, "cat-final")
	b.LoadImage("/bin/cat", []string{"cat"})
	b.InheritFD(fdR2, 0)
	b.OpenFD(1, "/tmp/out", vfs.OWrOnly)
	var scratch uint64
	b.MapAnon(0, 1<<20, addrspace.Read|addrspace.Write, &scratch)
	b.WriteMemory(scratch, []byte("seeded before first instruction"))
	final, err := b.Start()
	if err != nil {
		log.Fatal(err)
	}
	// Prove the cross-process write landed, before the child runs
	// (its address space is torn down once it exits).
	buf := make([]byte, 31)
	if err := final.Space().ReadBytes(scratch, buf); err != nil {
		log.Fatal(err)
	}
	seeded := string(buf)

	// Drop the shell's pipe ends so EOF propagates, then run.
	for _, fd := range []int{fdR1, fdW1, fdR2, fdW2} {
		sh.FDs().Close(fd)
	}
	if err := k.Run(kernel.RunLimits{}); err != nil {
		log.Fatal(err)
	}

	ino, _ := k.FS().Resolve(nil, "/tmp/out")
	fmt.Printf("pipeline wrote %q to /tmp/out\n", string(ino.Data()))
	fmt.Printf("final stage carried a parent-seeded region: %q\n", seeded)
	fmt.Printf("three stages, zero forks, %v of virtual time\n", k.Now())
}
