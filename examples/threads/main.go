// Threads: the §4.2 composition failure, live. A program starts a
// helper thread that takes a mutex and blocks. The main thread forks.
// POSIX duplicates only the calling thread, so the child's memory
// image contains a locked mutex and no thread that will ever unlock
// it; the child deadlocks on its first lock acquisition, and the
// parent deadlocks waiting for the child. The simulator's detector
// names every stuck thread, and sim.Cmd.Wait surfaces the report as a
// typed *sim.DeadlockError.
//
// The same scenario with posix_spawn completes, because the child gets
// a fresh image with no smuggled lock state.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	"repro/sim"
)

func run(prog string) {
	fmt.Printf("--- %s ---\n", prog)
	sys, err := sim.NewSystem(
		sim.WithConsole(os.Stdout),
		sim.WithRunBudget(10_000_000),
	)
	if err != nil {
		log.Fatal(err)
	}
	runErr := sys.Command(prog).Run()
	var dl *sim.DeadlockError
	switch {
	case errors.As(runErr, &dl):
		fmt.Println("DEADLOCK detected:")
		for _, t := range dl.Threads {
			fmt.Printf("  %s\n", t)
		}
	case runErr != nil:
		log.Fatal(runErr)
	default:
		fmt.Printf("completed normally at virtual time %v\n", sys.VirtualTime())
	}
	fmt.Println()
}

func main() {
	run("threads_deadlock") // fork in a threaded program
	run("threads_spawn")    // identical program using posix_spawn
	fmt.Println("fork copied the locked mutex but not its owner; spawn never copies either.")
}
