// Quickstart: boot a simulated machine and run a process on it with
// the public sim API — the whole reproduction in a dozen lines.
//
// sim is deliberately shaped like os/exec: a System boots the machine,
// Command describes a process, Run/Output execute it, and exit status
// comes back decoded. No fork is involved anywhere — the default
// strategy is the paper's posix_spawn.
package main

import (
	"fmt"
	"log"

	"repro/sim"
)

func main() {
	// A 4 GiB machine with the built-in userland installed in /bin.
	sys, err := sim.NewSystem()
	if err != nil {
		log.Fatal(err)
	}

	// Run /bin/echo and capture its stdout, exactly like exec.Command.
	out, err := sys.Command("echo", "hello", "from", "the", "simulator").Output()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("echo wrote %q in %v of virtual time\n", out, sys.VirtualTime())

	// Exit status is decoded, never a raw status word.
	err = sys.Command("false").Run()
	if exit := sim.AsExitError(err); exit != nil {
		fmt.Printf("false reported: %v (code %d, signaled=%v)\n",
			exit.ProcessState, exit.ExitCode(), exit.Signaled())
	}

	// Any command can be launched through any of the paper's
	// process-creation APIs — same workload, different strategy.
	cmd := sys.Command("echo", "again,", "via", "fork+exec").Via(sim.ForkExec)
	var echoed []byte
	if echoed, err = cmd.Output(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fork+exec produced the same kind of child: %q\n", echoed)
	fmt.Printf("creation cost via fork+exec: %v (spawn is cheaper — see forkbench strategies)\n",
		cmd.Process.CreationCost())
}
