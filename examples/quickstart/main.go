// Quickstart: boot a simulated kernel, spawn a process with
// posix_spawn-style file actions, and wait for it — the core API of
// the reproduction in ~40 lines.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/abi"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/ulib"
	"repro/internal/vfs"
)

func main() {
	// A 4 GiB machine whose console is our stdout.
	k := kernel.New(kernel.Options{ConsoleOut: os.Stdout})
	if err := ulib.InstallAll(k); err != nil {
		log.Fatal(err)
	}

	// The launching process. Synthetic = driven from Go, no VM code.
	parent := k.NewSynthetic("launcher", nil)
	console, err := k.FS().Resolve(nil, "/dev/console")
	if err != nil {
		log.Fatal(err)
	}
	if err := parent.FDs().InstallAt(vfs.NewOpenFile(console, vfs.OWrOnly), false, 1); err != nil {
		log.Fatal(err)
	}

	// Spawn /bin/echo with an extra file action: stderr (fd 2)
	// duplicated from stdout (fd 1). No fork happened anywhere.
	fa := new(core.FileActions).AddDup2(1, 2)
	child, err := core.Spawn(k, parent, "/bin/echo", []string{"echo", "hello", "from", "the", "simulator"}, fa, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spawned pid %d at virtual time %v\n", child.Pid, k.Now())

	// Run the machine until everything is idle, then reap.
	if err := k.Run(kernel.RunLimits{}); err != nil {
		log.Fatal(err)
	}
	pid, status, err := k.WaitReap(parent, child.Pid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pid %d exited with code %d after %v of virtual time\n",
		pid, abi.StatusExitCode(status), k.Now())
}
