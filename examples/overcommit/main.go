// Overcommit: §4.6's argument made concrete. A process that has
// dirtied 60% of RAM forks. Under strict commit accounting the fork
// fails immediately with ENOMEM (the child *might* write everything,
// so the kernel must reserve it). Under Linux-style heuristic
// overcommit the fork succeeds cheaply — and the machine discovers the
// lie later, when the child writes its "own" memory and the OOM killer
// shoots it.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/abi"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/ulib"
)

func run(policy mem.CommitPolicy) {
	fmt.Printf("--- overcommit policy: %v ---\n", policy)
	k := kernel.New(kernel.Options{
		RAMBytes:   256 << 20,
		Commit:     policy,
		ConsoleOut: os.Stdout,
	})
	if err := ulib.InstallAll(k); err != nil {
		log.Fatal(err)
	}
	// hog maps and write-touches 160 MiB (~62% of RAM), forks, and
	// the child re-touches every page.
	p, err := k.BootInit("/bin/hog", []string{"hog", "160", "fork"})
	if err != nil {
		log.Fatal(err)
	}
	if err := k.Run(kernel.RunLimits{}); err != nil {
		log.Fatal(err)
	}
	switch {
	case abi.StatusExitCode(p.ExitStatus()) == 2:
		fmt.Printf("fork failed up front with ENOMEM — no work was lost, the program could fall back to spawn\n")
	case k.OOMKills > 0:
		fmt.Printf("fork succeeded… then the OOM killer fired %d time(s) when the copy-on-write bill came due\n", k.OOMKills)
	default:
		fmt.Printf("completed without incident (plenty of memory)\n")
	}
	fmt.Printf("virtual time: %v, page copies: %d\n\n", k.Now(), k.Meter().PageCopies)
}

func main() {
	fmt.Println("a 160 MiB process forks on a 256 MiB machine; the child then writes every page")
	fmt.Println()
	run(mem.CommitStrict)
	run(mem.CommitHeuristic)
	fmt.Println("the paper's point: fork forces this choice — refuse work that would usually")
	fmt.Println("succeed (strict), or promise memory you may not have (overcommit + OOM killer).")
	fmt.Println("spawn never doubles the parent's commit, so it needs neither.")
}
