// Overcommit: §4.6's argument made concrete. A process that has
// dirtied 60% of RAM forks. Under strict commit accounting the fork
// fails immediately with ENOMEM (the child *might* write everything,
// so the kernel must reserve it). Under Linux-style heuristic
// overcommit the fork succeeds cheaply — and the machine discovers the
// lie later, when the child writes its "own" memory and the OOM killer
// shoots it.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/sim"
)

func run(policy sim.CommitPolicy) {
	fmt.Printf("--- overcommit policy: %v ---\n", policy)
	sys, err := sim.NewSystem(
		sim.WithRAM(256<<20),
		sim.WithCommitPolicy(policy),
		sim.WithConsole(os.Stdout),
	)
	if err != nil {
		log.Fatal(err)
	}
	// hog maps and write-touches 160 MiB (~62% of RAM), forks, and
	// the child re-touches every page.
	runErr := sys.Command("hog", "160", "fork").Run()
	exit := sim.AsExitError(runErr)
	switch {
	case exit != nil && exit.ExitCode() == 2:
		fmt.Printf("fork failed up front with ENOMEM — no work was lost, the program could fall back to spawn\n")
	case sys.Stats().OOMKills > 0:
		fmt.Printf("fork succeeded… then the OOM killer fired %d time(s) when the copy-on-write bill came due\n",
			sys.Stats().OOMKills)
	case runErr != nil:
		log.Fatal(runErr)
	default:
		fmt.Printf("completed without incident (plenty of memory)\n")
	}
	fmt.Printf("virtual time: %v, page copies: %d\n\n", sys.VirtualTime(), sys.Stats().PageCopies)
}

func main() {
	fmt.Println("a 160 MiB process forks on a 256 MiB machine; the child then writes every page")
	fmt.Println()
	run(sim.CommitStrict)
	run(sim.CommitHeuristic)
	fmt.Println("the paper's point: fork forces this choice — refuse work that would usually")
	fmt.Println("succeed (strict), or promise memory you may not have (overcommit + OOM killer).")
	fmt.Println("spawn never doubles the parent's commit, so it needs neither.")
}
