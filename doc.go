// Package repro is a from-scratch reproduction of "A fork() in the
// road" (HotOS 2019): a deterministic user-level operating-system
// simulator (virtual memory with copy-on-write, page tables, VFS,
// signals, futexes, a bytecode VM and assembler for userland) plus the
// process-creation APIs the paper compares — fork, vfork, posix_spawn,
// and cross-process construction — and a harness that regenerates the
// paper's figure and comparison table in virtual time.
//
// The entry point is the sim package: an os/exec-style process API
// over the simulator (sim.System, sim.Cmd, sim.Process) whose per-
// command strategy selector Via runs any workload through every
// creation API the paper compares. The internal packages are the
// substrate beneath it:
//
//	sim                  the public API — start here
//	internal/core        the paper's contribution: spawn + cross-process APIs
//	internal/kernel      the simulated OS
//	internal/mem, pagetable, addrspace, vfs, sig — substrates
//	internal/isa, asm, image, ulib — the userland toolchain
//	internal/experiments — Figure 1, Table 1, E3–E7
//	cmd/forkbench, forkrun, forksh, kxasm — executables
//	examples/            — runnable API walkthroughs
//
// See README.md. The benchmarks in bench_test.go regenerate every
// experiment under `go test -bench`.
package repro
