// Command forkrun boots a simulated machine and runs a program on it,
// wiring the simulated console to the real terminal.
//
// Usage:
//
//	forkrun [flags] <program> [args...]
//
// <program> is either the name of a built-in userland program (see
// `forkrun -list`) or a path to a .kxi image produced by kxasm.
//
//	-ram SIZE      physical memory (default 4GiB)
//	-strict        strict commit accounting (overcommit_memory=2)
//	-eager         eager-copy fork
//	-via STRATEGY  creation strategy: spawn|fork|vfork|builder|emufork|eager
//	-trace         print exit diagnostics (virtual time, faults, ...)
//	-list          list built-in programs
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"
	"strings"

	"repro/sim"
)

func main() {
	ram := flag.Uint64("ram", 4096, "physical memory in MiB")
	strict := flag.Bool("strict", false, "strict commit accounting")
	eager := flag.Bool("eager", false, "eager-copy fork")
	via := flag.String("via", "spawn", "creation strategy: spawn|fork|vfork|builder|emufork|eager")
	trace := flag.Bool("trace", false, "print diagnostics on exit")
	list := flag.Bool("list", false, "list built-in programs")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(sim.Programs(), "\n"))
		return
	}
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: forkrun [flags] <program> [args...]")
		os.Exit(2)
	}
	strategy, err := sim.ParseStrategy(*via)
	if err != nil {
		fatal(err)
	}

	opts := []sim.Option{
		sim.WithRAM(*ram << 20),
		sim.WithConsole(os.Stdout),
		sim.WithConsoleInput(os.Stdin),
	}
	if *strict {
		opts = append(opts, sim.WithCommitPolicy(sim.CommitStrict))
	}
	if *eager {
		opts = append(opts, sim.WithForkMode(sim.ForkEager))
	}

	prog := flag.Arg(0)
	path := "/bin/" + prog
	if strings.ContainsAny(prog, "/.") {
		// Host path to a .kxi image.
		raw, err := os.ReadFile(prog)
		if err != nil {
			fatal(err)
		}
		path = "/bin/a.out"
		opts = append(opts, sim.WithImage(path, raw))
	} else if !slices.Contains(sim.Programs(), prog) {
		fatal(fmt.Errorf("unknown program %q (try -list)", prog))
	}

	sys, err := sim.NewSystem(opts...)
	if err != nil {
		fatal(err)
	}
	runErr := sys.Command(path, flag.Args()[1:]...).Via(strategy).Run()
	if *trace {
		st := sys.Stats()
		fmt.Fprintf(os.Stderr, "---\nvirtual time: %v\ninstructions: %d\nsyscalls: %d\npage faults: %d\npage copies: %d\ncontext switches: %d\noom kills: %d\nsegv kills: %d\n",
			st.VirtualTime, st.Instructions, st.Syscalls, st.PageFaults, st.PageCopies, st.ContextSwitches, st.OOMKills, st.SegvKills)
	}
	if runErr != nil {
		if exit := sim.AsExitError(runErr); exit != nil {
			if exit.Signaled() {
				fmt.Fprintf(os.Stderr, "forkrun: killed by %v\n", exit.Signal())
				os.Exit(128 + int(exit.Signal()))
			}
			os.Exit(exit.ExitCode())
		}
		fmt.Fprintln(os.Stderr, "forkrun:", runErr)
		os.Exit(3)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "forkrun:", err)
	os.Exit(1)
}
