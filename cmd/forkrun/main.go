// Command forkrun boots a simulated kernel and runs a program on it,
// wiring the simulated console to the real terminal.
//
// Usage:
//
//	forkrun [flags] <program> [args...]
//
// <program> is either the name of a built-in userland program (see
// `forkrun -list`) or a path to a .kxi image produced by kxasm.
//
//	-ram SIZE      physical memory (default 4GiB)
//	-strict        strict commit accounting (overcommit_memory=2)
//	-eager         eager-copy fork
//	-trace         print exit diagnostics (virtual time, faults, ...)
//	-list          list built-in programs
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/abi"
	"repro/internal/image"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/ulib"
)

func main() {
	ram := flag.Uint64("ram", 4096, "physical memory in MiB")
	strict := flag.Bool("strict", false, "strict commit accounting")
	eager := flag.Bool("eager", false, "eager-copy fork")
	trace := flag.Bool("trace", false, "print diagnostics on exit")
	list := flag.Bool("list", false, "list built-in programs")
	flag.Parse()

	if *list {
		var names []string
		for n := range ulib.Sources {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println(strings.Join(names, "\n"))
		return
	}
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: forkrun [flags] <program> [args...]")
		os.Exit(2)
	}

	opts := kernel.Options{
		RAMBytes:   *ram << 20,
		ConsoleOut: os.Stdout,
		ConsoleIn:  os.Stdin,
		EagerFork:  *eager,
	}
	if *strict {
		opts.Commit = mem.CommitStrict
	}
	k := kernel.New(opts)
	if err := ulib.InstallAll(k); err != nil {
		fatal(err)
	}

	prog := flag.Arg(0)
	path := "/bin/" + prog
	if strings.ContainsAny(prog, "/.") {
		// Host path to a .kxi image.
		raw, err := os.ReadFile(prog)
		if err != nil {
			fatal(err)
		}
		if _, err := image.DecodeHeader(raw); err != nil {
			fatal(fmt.Errorf("%s: not a KXI image: %w", prog, err))
		}
		path = "/bin/a.out"
		if _, err := k.FS().WriteFile(path, raw); err != nil {
			fatal(err)
		}
	} else if _, ok := ulib.Sources[prog]; !ok {
		fatal(fmt.Errorf("unknown program %q (try -list)", prog))
	}

	argv := append([]string{path}, flag.Args()[1:]...)
	p, err := k.BootInit(path, argv)
	if err != nil {
		fatal(err)
	}
	runErr := k.Run(kernel.RunLimits{})
	if *trace {
		m := k.Meter()
		fmt.Fprintf(os.Stderr, "---\nvirtual time: %v\ninstructions: %d\nsyscalls: %d\npage faults: %d\npage copies: %d\ncontext switches: %d\noom kills: %d\nsegv kills: %d\n",
			k.Now(), m.Instructions, m.Syscalls, m.PageFaults, m.PageCopies, k.ContextSwitches(), k.OOMKills, k.SegvKills)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "forkrun:", runErr)
		os.Exit(3)
	}
	status := p.ExitStatus()
	if s := abi.StatusSignal(status); s != 0 {
		fmt.Fprintf(os.Stderr, "forkrun: killed by signal %d\n", s)
		os.Exit(128 + s)
	}
	os.Exit(abi.StatusExitCode(status))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "forkrun:", err)
	os.Exit(1)
}
