// Command forksh is an interactive shell on the simulated OS. It is
// the paper's §6 in miniature: a shell that never forks — every
// command, including pipelines and redirections, is launched with the
// spawn API (core.Spawn) using file actions to wire descriptors.
//
// Built-ins: cd, pwd, ls, cat, ps, vmmap PID, time CMD, help, exit.
// External commands come from /bin (the ulib programs); "a | b | c"
// builds pipelines, "> file" redirects stdout.
//
// Usage:
//
//	forksh            # interactive
//	echo "cmds" | forksh
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/abi"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/ulib"
	"repro/internal/vfs"
)

type shell struct {
	k    *kernel.Kernel
	self *kernel.Process // the shell's own (synthetic) process
	cwd  string
	out  *bufio.Writer
}

func main() {
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	sh, err := newShell(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "forksh:", err)
		os.Exit(1)
	}
	sh.repl(os.Stdin, isTerminalHint())
}

// newShell boots a kernel and builds the (forkless) shell on it.
func newShell(out *bufio.Writer) (*shell, error) {
	k := kernel.New(kernel.Options{
		RAMBytes:   4 << 30,
		ConsoleOut: out,
	})
	if err := ulib.InstallAll(k); err != nil {
		return nil, err
	}
	sh := &shell{k: k, cwd: "/", out: out}
	sh.self = k.NewSynthetic("forksh", nil)
	// The shell's stdin/stdout/stderr point at the console.
	con, err := k.FS().Resolve(nil, "/dev/console")
	if err != nil {
		return nil, err
	}
	for fd := 0; fd < 3; fd++ {
		flags := vfs.ORdOnly
		if fd > 0 {
			flags = vfs.OWrOnly
		}
		if err := sh.self.FDs().InstallAt(vfs.NewOpenFile(con, flags), false, fd); err != nil {
			return nil, err
		}
	}
	return sh, nil
}

// repl reads command lines until EOF or "exit".
func (s *shell) repl(input io.Reader, interactive bool) {
	in := bufio.NewScanner(input)
	for {
		if interactive {
			fmt.Fprintf(s.out, "forksh:%s$ ", s.cwd)
			s.out.Flush()
		}
		if !in.Scan() {
			break
		}
		line := strings.TrimSpace(in.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "exit" {
			break
		}
		if err := s.run(line); err != nil {
			fmt.Fprintf(s.out, "forksh: %v\n", err)
		}
		s.out.Flush()
	}
}

func isTerminalHint() bool {
	st, err := os.Stdin.Stat()
	return err == nil && st.Mode()&os.ModeCharDevice != 0
}

// run executes one command line.
func (s *shell) run(line string) error {
	// Redirection: split a trailing "> file".
	redirect := ""
	if i := strings.LastIndex(line, ">"); i >= 0 && !strings.Contains(line[i:], "|") {
		redirect = strings.TrimSpace(line[i+1:])
		line = strings.TrimSpace(line[:i])
	}
	stages := strings.Split(line, "|")
	for i := range stages {
		stages[i] = strings.TrimSpace(stages[i])
	}
	if len(stages) == 1 {
		argv := strings.Fields(stages[0])
		if done, err := s.builtin(argv); done {
			return err
		}
	}
	return s.pipeline(stages, redirect)
}

// builtin handles shell built-ins; done=false falls through to spawn.
func (s *shell) builtin(argv []string) (bool, error) {
	if len(argv) == 0 {
		return true, nil
	}
	switch argv[0] {
	case "cd":
		dst := "/"
		if len(argv) > 1 {
			dst = s.resolvePath(argv[1])
		}
		ino, err := s.k.FS().Resolve(nil, dst)
		if err != nil {
			return true, fmt.Errorf("cd: %s: %v", dst, err)
		}
		if ino.Type != vfs.TypeDir {
			return true, fmt.Errorf("cd: %s: not a directory", dst)
		}
		s.cwd = dst
		return true, nil
	case "pwd":
		fmt.Fprintln(s.out, s.cwd)
		return true, nil
	case "ls":
		dir := s.cwd
		if len(argv) > 1 {
			dir = s.resolvePath(argv[1])
		}
		names, err := s.k.FS().ReadDir(nil, dir)
		if err != nil {
			return true, fmt.Errorf("ls: %v", err)
		}
		fmt.Fprintln(s.out, strings.Join(names, "  "))
		return true, nil
	case "cat":
		if len(argv) < 2 {
			return false, nil // external cat copies console stdin
		}
		for _, a := range argv[1:] {
			ino, err := s.k.FS().Resolve(nil, s.resolvePath(a))
			if err != nil {
				return true, fmt.Errorf("cat: %s: %v", a, err)
			}
			s.out.Write(ino.Data())
		}
		return true, nil
	case "ps":
		s.ps()
		return true, nil
	case "vmmap":
		if len(argv) != 2 {
			return true, fmt.Errorf("usage: vmmap PID")
		}
		var pid int
		fmt.Sscanf(argv[1], "%d", &pid)
		p := s.k.Lookup(kernel.PID(pid))
		if p == nil || p.Space() == nil {
			return true, fmt.Errorf("vmmap: no such process")
		}
		fmt.Fprint(s.out, p.Space().Dump())
		return true, nil
	case "time":
		if len(argv) < 2 {
			return true, fmt.Errorf("usage: time CMD...")
		}
		t0 := s.k.Now()
		err := s.pipeline([]string{strings.Join(argv[1:], " ")}, "")
		fmt.Fprintf(s.out, "virtual %v\n", s.k.Now()-t0)
		return true, err
	case "help":
		fmt.Fprintln(s.out, "built-ins: cd pwd ls cat ps vmmap time help exit")
		var names []string
		for n := range ulib.Sources {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintln(s.out, "programs:  "+strings.Join(names, " "))
		return true, nil
	}
	return false, nil
}

func (s *shell) resolvePath(p string) string {
	if strings.HasPrefix(p, "/") {
		return p
	}
	if s.cwd == "/" {
		return "/" + p
	}
	return s.cwd + "/" + p
}

func (s *shell) ps() {
	fmt.Fprintf(s.out, "%5s %-8s %-10s %s\n", "PID", "STATE", "RSS", "NAME")
	for pid := kernel.PID(1); pid < 4096; pid++ {
		p := s.k.Lookup(pid)
		if p == nil {
			continue
		}
		rss := uint64(0)
		if p.Space() != nil {
			rss = p.Space().RSS()
		}
		fmt.Fprintf(s.out, "%5d %-8s %-10d %s\n", p.Pid, p.State(), rss, p.Name)
	}
}

// pipeline spawns each stage with its descriptors wired via file
// actions — no fork anywhere.
func (s *shell) pipeline(stages []string, redirect string) error {
	type stage struct {
		path string
		argv []string
	}
	var prepared []stage
	for _, raw := range stages {
		argv := strings.Fields(raw)
		if len(argv) == 0 {
			return fmt.Errorf("empty pipeline stage")
		}
		path := argv[0]
		if !strings.HasPrefix(path, "/") {
			path = "/bin/" + path
		}
		if _, err := s.k.FS().Resolve(nil, path); err != nil {
			return fmt.Errorf("%s: command not found", argv[0])
		}
		prepared = append(prepared, stage{path: path, argv: argv})
	}

	// Build N-1 pipes up front, installed temporarily in the
	// shell's own descriptor table so the children can inherit
	// them via dup2 file actions.
	selfFDs := s.self.FDs()
	var tempFDs []int
	defer func() {
		for _, fd := range tempFDs {
			selfFDs.Close(fd)
		}
	}()
	pipeFDs := make([][2]int, 0, len(prepared)-1)
	for i := 0; i < len(prepared)-1; i++ {
		r, w := vfs.NewPipe()
		rfd, err := selfFDs.Install(r, false, 3)
		if err != nil {
			return err
		}
		wfd, err := selfFDs.Install(w, false, 3)
		if err != nil {
			return err
		}
		tempFDs = append(tempFDs, rfd, wfd)
		pipeFDs = append(pipeFDs, [2]int{rfd, wfd})
	}

	var procs []*kernel.Process
	for i, st := range prepared {
		fa := new(core.FileActions)
		if i > 0 {
			fa.AddDup2(pipeFDs[i-1][0], 0)
		}
		if i < len(prepared)-1 {
			fa.AddDup2(pipeFDs[i][1], 1)
		} else if redirect != "" {
			if _, err := s.k.FS().Create(nil, s.resolvePath(redirect)); err != nil {
				return fmt.Errorf("> %s: %v", redirect, err)
			}
			fa.AddOpen(1, s.resolvePath(redirect), vfs.OWrOnly|vfs.OTrunc)
		}
		// The children must not keep the pipe descriptors beyond
		// the dup2'd standard ones, or EOF never propagates.
		for _, pf := range pipeFDs {
			fa.AddClose(pf[0])
			fa.AddClose(pf[1])
		}
		p, err := core.Spawn(s.k, s.self, st.path, st.argv, fa, nil)
		if err != nil {
			return fmt.Errorf("spawn %s: %v", st.argv[0], err)
		}
		procs = append(procs, p)
	}
	// Close the shell's copies so pipes see EOF, then run.
	for _, fd := range tempFDs {
		selfFDs.Close(fd)
	}
	tempFDs = nil

	if err := s.k.Run(kernel.RunLimits{MaxInstructions: 500_000_000}); err != nil {
		return err
	}
	// Reap and report.
	for _, p := range procs {
		if p.State() == kernel.ProcZombie {
			_, status, err := s.k.WaitReap(s.self, p.Pid)
			if err == nil {
				if sg := abi.StatusSignal(status); sg != 0 {
					fmt.Fprintf(s.out, "[%s killed by signal %d]\n", p.Name, sg)
				} else if code := abi.StatusExitCode(status); code != 0 {
					fmt.Fprintf(s.out, "[%s exited %d]\n", p.Name, code)
				}
			}
		}
	}
	return nil
}
