// Command forksh is an interactive shell on the simulated OS. It is
// the paper's §6 in miniature: a shell that never forks — every
// command, including pipelines and redirections, is launched through
// the sim package's spawn-based process API with descriptors wired
// explicitly.
//
// Built-ins: cd, pwd, ls, cat, ps, vmmap PID, time CMD, via STRATEGY,
// help, exit. External commands come from /bin (the ulib programs);
// "a | b | c" builds pipelines, "> file" redirects stdout.
//
// Usage:
//
//	forksh            # interactive
//	echo "cmds" | forksh
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/kernel"
	"repro/sim"
)

type shell struct {
	sys *sim.System
	cwd string
	via sim.Strategy // strategy for external commands (default spawn)
	out *bufio.Writer
}

func main() {
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	sh, err := newShell(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "forksh:", err)
		os.Exit(1)
	}
	sh.repl(os.Stdin, isTerminalHint())
}

// newShell boots a machine and builds the (forkless) shell on it. The
// sim host process, whose stdio is already the console, is the shell.
func newShell(out *bufio.Writer) (*shell, error) {
	sys, err := sim.NewSystem(
		sim.WithRAM(4<<30),
		sim.WithConsole(out),
		sim.WithRunBudget(500_000_000),
	)
	if err != nil {
		return nil, err
	}
	sys.Host().Name = "forksh"
	return &shell{sys: sys, cwd: "/", out: out}, nil
}

// repl reads command lines until EOF or "exit".
func (s *shell) repl(input io.Reader, interactive bool) {
	in := bufio.NewScanner(input)
	for {
		if interactive {
			fmt.Fprintf(s.out, "forksh:%s$ ", s.cwd)
			s.out.Flush()
		}
		if !in.Scan() {
			break
		}
		line := strings.TrimSpace(in.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "exit" {
			break
		}
		if err := s.run(line); err != nil {
			fmt.Fprintf(s.out, "forksh: %v\n", err)
		}
		s.out.Flush()
	}
}

func isTerminalHint() bool {
	st, err := os.Stdin.Stat()
	return err == nil && st.Mode()&os.ModeCharDevice != 0
}

// run executes one command line.
func (s *shell) run(line string) error {
	// Redirection: split a trailing "> file".
	redirect := ""
	if i := strings.LastIndex(line, ">"); i >= 0 && !strings.Contains(line[i:], "|") {
		redirect = strings.TrimSpace(line[i+1:])
		line = strings.TrimSpace(line[:i])
	}
	stages := strings.Split(line, "|")
	for i := range stages {
		stages[i] = strings.TrimSpace(stages[i])
	}
	if len(stages) == 1 {
		argv := strings.Fields(stages[0])
		if done, err := s.builtin(argv); done {
			return err
		}
	}
	return s.pipeline(stages, redirect)
}

// builtin handles shell built-ins; done=false falls through to spawn.
func (s *shell) builtin(argv []string) (bool, error) {
	if len(argv) == 0 {
		return true, nil
	}
	k := s.sys.Kernel()
	switch argv[0] {
	case "cd":
		dst := "/"
		if len(argv) > 1 {
			dst = s.resolvePath(argv[1])
		}
		if _, err := s.sys.ReadDir(dst); err != nil {
			return true, fmt.Errorf("cd: %s: %v", dst, err)
		}
		s.cwd = dst
		return true, nil
	case "pwd":
		fmt.Fprintln(s.out, s.cwd)
		return true, nil
	case "ls":
		dir := s.cwd
		if len(argv) > 1 {
			dir = s.resolvePath(argv[1])
		}
		names, err := s.sys.ReadDir(dir)
		if err != nil {
			return true, fmt.Errorf("ls: %v", err)
		}
		fmt.Fprintln(s.out, strings.Join(names, "  "))
		return true, nil
	case "cat":
		if len(argv) < 2 {
			return false, nil // external cat copies console stdin
		}
		for _, a := range argv[1:] {
			data, err := s.sys.ReadFile(s.resolvePath(a))
			if err != nil {
				return true, fmt.Errorf("cat: %s: %v", a, err)
			}
			s.out.Write(data)
		}
		return true, nil
	case "ps":
		s.ps()
		return true, nil
	case "vmmap":
		if len(argv) != 2 {
			return true, fmt.Errorf("usage: vmmap PID")
		}
		var pid int
		fmt.Sscanf(argv[1], "%d", &pid)
		p := k.Lookup(kernel.PID(pid))
		if p == nil || p.Space() == nil {
			return true, fmt.Errorf("vmmap: no such process")
		}
		fmt.Fprint(s.out, p.Space().Dump())
		return true, nil
	case "time":
		if len(argv) < 2 {
			return true, fmt.Errorf("usage: time CMD...")
		}
		t0 := s.sys.VirtualTime()
		err := s.pipeline([]string{strings.Join(argv[1:], " ")}, "")
		fmt.Fprintf(s.out, "virtual %v\n", s.sys.VirtualTime()-t0)
		return true, err
	case "via":
		if len(argv) != 2 {
			fmt.Fprintf(s.out, "via %v (spawn|fork|vfork|builder|emufork|eager)\n", s.via)
			return true, nil
		}
		st, err := sim.ParseStrategy(argv[1])
		if err != nil {
			return true, err
		}
		s.via = st
		return true, nil
	case "help":
		fmt.Fprintln(s.out, "built-ins: cd pwd ls cat ps vmmap time via help exit")
		fmt.Fprintln(s.out, "programs:  "+strings.Join(sim.Programs(), " "))
		return true, nil
	}
	return false, nil
}

func (s *shell) resolvePath(p string) string {
	if strings.HasPrefix(p, "/") {
		return p
	}
	if s.cwd == "/" {
		return "/" + p
	}
	return s.cwd + "/" + p
}

func (s *shell) ps() {
	k := s.sys.Kernel()
	fmt.Fprintf(s.out, "%5s %-8s %-10s %s\n", "PID", "STATE", "RSS", "NAME")
	for pid := kernel.PID(1); pid < 4096; pid++ {
		p := k.Lookup(pid)
		if p == nil {
			continue
		}
		rss := uint64(0)
		if p.Space() != nil {
			rss = p.Space().RSS()
		}
		fmt.Fprintf(s.out, "%5d %-8s %-10d %s\n", p.Pid, p.State(), rss, p.Name)
	}
}

// pipeline launches each stage as a sim.Cmd with its descriptors wired
// through simulated pipes — no fork anywhere.
func (s *shell) pipeline(stages []string, redirect string) error {
	var cmds []*sim.Cmd
	for _, raw := range stages {
		argv := strings.Fields(raw)
		if len(argv) == 0 {
			return fmt.Errorf("empty pipeline stage")
		}
		path := argv[0]
		if !strings.HasPrefix(path, "/") {
			path = "/bin/" + path
		}
		if _, err := s.sys.Kernel().FS().Resolve(nil, path); err != nil {
			return fmt.Errorf("%s: command not found", argv[0])
		}
		cmd := s.sys.Command(path, argv[1:]...).Via(s.via)
		if s.cwd != "/" {
			cmd.Dir = s.cwd
		}
		cmds = append(cmds, cmd)
	}

	// Wire stage i's stdout to stage i+1's stdin; remember the
	// host-side pipe ends so they can be dropped once the children
	// hold their own references (otherwise EOF never propagates).
	var hostEnds []*sim.File
	for i := 0; i < len(cmds)-1; i++ {
		r, w := s.sys.Pipe()
		cmds[i].Stdout = w
		cmds[i+1].Stdin = r
		hostEnds = append(hostEnds, r, w)
	}
	if redirect != "" {
		f, err := s.sys.Create(s.resolvePath(redirect))
		if err != nil {
			return fmt.Errorf("> %s: %v", redirect, err)
		}
		cmds[len(cmds)-1].Stdout = f
		hostEnds = append(hostEnds, f)
	}

	started := 0
	var startErr error
	for _, cmd := range cmds {
		if err := cmd.Start(); err != nil {
			startErr = fmt.Errorf("start %s: %v", cmd.Args[0], err)
			break
		}
		started++
	}
	for _, f := range hostEnds {
		f.Close()
	}
	if startErr != nil {
		for _, cmd := range cmds[:started] {
			cmd.Process.Destroy()
		}
		return startErr
	}

	// Wait and report non-zero exits and signal deaths.
	var firstErr error
	for _, cmd := range cmds {
		err := cmd.Wait()
		switch {
		case err == nil:
		case sim.AsExitError(err) != nil:
			exit := sim.AsExitError(err)
			name := strings.TrimPrefix(cmd.Process.Raw().Name, "/bin/")
			if exit.Signaled() {
				fmt.Fprintf(s.out, "[%s killed by signal %d]\n", name, int(exit.Signal()))
			} else {
				fmt.Fprintf(s.out, "[%s exited %d]\n", name, exit.ExitCode())
			}
		case firstErr == nil:
			firstErr = err
		}
	}
	return firstErr
}
