package main

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

// script runs shell commands and returns everything printed.
func script(t *testing.T, cmds string) string {
	t.Helper()
	var buf bytes.Buffer
	out := bufio.NewWriter(&buf)
	sh, err := newShell(out)
	if err != nil {
		t.Fatal(err)
	}
	sh.repl(strings.NewReader(cmds), false)
	out.Flush()
	return buf.String()
}

func TestShellEcho(t *testing.T) {
	out := script(t, "echo forkless shell\n")
	if out != "forkless shell\n" {
		t.Errorf("out = %q", out)
	}
}

func TestShellPipelineAndRedirect(t *testing.T) {
	out := script(t, `
echo one two | cat | cat > /tmp/result
cat /tmp/result
`)
	if out != "one two\n" {
		t.Errorf("out = %q", out)
	}
}

func TestShellBuiltins(t *testing.T) {
	out := script(t, `
pwd
cd /tmp
pwd
cd /nope
`)
	if !strings.Contains(out, "/\n/tmp\n") {
		t.Errorf("pwd/cd output = %q", out)
	}
	if !strings.Contains(out, "forksh: cd: /nope") {
		t.Errorf("missing cd error: %q", out)
	}
}

func TestShellLsAndHelp(t *testing.T) {
	out := script(t, "ls /bin\nhelp\n")
	if !strings.Contains(out, "echo") || !strings.Contains(out, "true") {
		t.Errorf("ls output = %q", out)
	}
	if !strings.Contains(out, "built-ins:") {
		t.Errorf("help output = %q", out)
	}
}

func TestShellExitStatusReport(t *testing.T) {
	out := script(t, "false\n")
	if !strings.Contains(out, "exited 1") {
		t.Errorf("false's status not reported: %q", out)
	}
}

func TestShellUnknownCommand(t *testing.T) {
	out := script(t, "bogus\n")
	if !strings.Contains(out, "command not found") {
		t.Errorf("out = %q", out)
	}
}

func TestShellTimeAndPs(t *testing.T) {
	out := script(t, "time true\nps\n")
	if !strings.Contains(out, "virtual ") {
		t.Errorf("time output = %q", out)
	}
	if !strings.Contains(out, "forksh") {
		t.Errorf("ps output = %q", out)
	}
}

func TestShellDeadlockDemoSurvives(t *testing.T) {
	// The shell must survive running the deadlock demo: Run returns
	// a DeadlockError, reported as a normal error line.
	out := script(t, "threads_deadlock\necho still alive\n")
	if !strings.Contains(out, "deadlock") {
		t.Errorf("deadlock not reported: %q", out)
	}
	if !strings.Contains(out, "still alive") {
		t.Errorf("shell died after deadlock: %q", out)
	}
}
