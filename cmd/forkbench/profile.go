package main

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiles turns on the pprof collectors the -cpuprofile and
// -memprofile flags request and returns the function to run when the
// measured work is done (stop the CPU profile, snapshot the heap).
// Empty paths are skipped; profiling is host-side diagnostics only and
// never touches the byte-stable reports on stdout.
func startProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // report live allocations, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}
