package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/sim/load"
)

// diffOut receives the diff report (stdout; swapped by the CLI tests).
var diffOut io.Writer = os.Stdout

// runDiff is the `forkbench diff <old.json> <new.json>` subcommand:
// the bench-drift gate. Both files are sweep outputs (JSON arrays of
// load metrics, the BENCH_*.json format); runs are matched by their
// configuration key and every virtual-time metric is compared exactly
// — the simulator is deterministic, so any difference is a cost-model
// change that must be acknowledged by regenerating the checked-in
// baseline, not silently absorbed.
func runDiff(args []string) error {
	fs := flag.NewFlagSet("forkbench diff", flag.ExitOnError)
	summary := fs.Bool("summary", false, "print one line per differing run (changed metric names only)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: forkbench diff [-summary] <old.json> <new.json>\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("diff: want exactly two files, got %d", fs.NArg())
	}
	oldRuns, err := readRuns(fs.Arg(0))
	if err != nil {
		return err
	}
	newRuns, err := readRuns(fs.Arg(1))
	if err != nil {
		return err
	}

	drift := 0
	report := func(format string, a ...any) {
		fmt.Fprintf(diffOut, format+"\n", a...)
		drift++
	}
	var keys []string
	for k := range oldRuns {
		keys = append(keys, k)
	}
	for k := range newRuns {
		if _, ok := oldRuns[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		o, inOld := oldRuns[k]
		n, inNew := newRuns[k]
		switch {
		case !inNew:
			// A run config present in only one file is a gate
			// failure like any metric drift — a machine-shape or
			// matrix change must be acknowledged, not skipped — and
			// the lone run's metrics are summarized so the report
			// shows what the other file is missing.
			report("missing: %s (in %s only)", k, fs.Arg(0))
			if !*summary {
				for _, line := range summarizeMetrics(o) {
					fmt.Fprintf(diffOut, "         %s\n", line)
				}
			}
		case !inOld:
			report("added:   %s (in %s only)", k, fs.Arg(1))
			if !*summary {
				for _, line := range summarizeMetrics(n) {
					fmt.Fprintf(diffOut, "         %s\n", line)
				}
			}
		default:
			ds := diffMetrics(o, n)
			if *summary && len(ds) > 0 {
				// One line per differing run: just the metric names,
				// so a full-sweep drift stays readable in CI logs.
				names := make([]string, len(ds))
				for i, d := range ds {
					names[i] = strings.SplitN(d, " ", 2)[0]
				}
				report("drift:   %s: %d metric(s): %s", k, len(ds), strings.Join(names, " "))
				continue
			}
			for _, d := range ds {
				report("drift:   %s: %s", k, d)
			}
		}
	}
	fmt.Fprintf(diffOut, "%d run(s) compared, %d difference(s)\n", len(keys), drift)
	if drift > 0 {
		return fmt.Errorf("diff: %s and %s disagree on %d point(s); if the cost-model change is intended, regenerate the baseline (see README)",
			fs.Arg(0), fs.Arg(1), drift)
	}
	return nil
}

// readRuns loads a sweep JSON file and indexes its runs by
// configuration key.
func readRuns(path string) (map[string]*load.Metrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ms []*load.Metrics
	if err := json.Unmarshal(data, &ms); err != nil {
		return nil, fmt.Errorf("diff: %s: %w", path, err)
	}
	runs := make(map[string]*load.Metrics, len(ms))
	for _, m := range ms {
		k := runKey(m)
		if _, dup := runs[k]; dup {
			return nil, fmt.Errorf("diff: %s: duplicate run %s", path, k)
		}
		runs[k] = m
	}
	return runs, nil
}

// runKey identifies a sweep cell by every configuration dimension the
// metrics record (scenario, strategy, heap, RAM, cpus, requests) —
// so a machine-shape change like a new RAM default surfaces as a
// missing+added pair rather than passing silently. Dimensions the
// metrics do not echo (Workers, Window, HugePages) cannot key; two
// cells differing only in those are rejected as duplicates, which
// fails the gate loudly instead of merging them.
func runKey(m *load.Metrics) string {
	return fmt.Sprintf("%s/%s heap=%d ram=%d cpus=%d req=%d",
		m.Scenario, m.Strategy, m.HeapBytes, m.RAMBytes, m.NumCPUs, m.Requests)
}

// metricFields is the comparison schema shared by diffMetrics and
// summarizeMetrics: every scalar virtual-time metric a run reports,
// in a fixed order.
var metricFields = []struct {
	name string
	get  func(*load.Metrics) uint64
}{
	{"requests", func(m *load.Metrics) uint64 { return m.Requests }},
	{"failed_requests", func(m *load.Metrics) uint64 { return m.FailedRequests }},
	{"oom_kills", func(m *load.Metrics) uint64 { return m.OOMKills }},
	{"creations", func(m *load.Metrics) uint64 { return m.Creations }},
	{"virtual_ns", func(m *load.Metrics) uint64 { return m.VirtualNanos }},
	{"peak_rss_bytes", func(m *load.Metrics) uint64 { return m.PeakRSSBytes }},
	{"page_faults", func(m *load.Metrics) uint64 { return m.PageFaults }},
	{"page_copies", func(m *load.Metrics) uint64 { return m.PageCopies }},
	{"page_zeroes", func(m *load.Metrics) uint64 { return m.PageZeroes }},
	{"pte_copies", func(m *load.Metrics) uint64 { return m.PTECopies }},
	{"tlb_shootdowns", func(m *load.Metrics) uint64 { return m.TLBShootdowns }},
	{"context_switches", func(m *load.Metrics) uint64 { return m.ContextSwitches }},
	{"syscalls", func(m *load.Metrics) uint64 { return m.Syscalls }},
	{"instructions", func(m *load.Metrics) uint64 { return m.Instructions }},
	{"server_cpu_ns", func(m *load.Metrics) uint64 { return m.ServerCPUNanos }},
	{"net_packets_sent", func(m *load.Metrics) uint64 { return m.NetPacketsSent }},
	{"net_packets_recv", func(m *load.Metrics) uint64 { return m.NetPacketsRecv }},
	{"net_bytes_sent", func(m *load.Metrics) uint64 { return m.NetBytesSent }},
	{"net_bytes_recv", func(m *load.Metrics) uint64 { return m.NetBytesRecv }},
	{"net_drops", func(m *load.Metrics) uint64 { return m.NetDrops }},
	{"net_timeouts", func(m *load.Metrics) uint64 { return m.NetTimeouts }},
	{"net_retries", func(m *load.Metrics) uint64 { return m.NetRetries }},
}

// summarizeMetrics renders a lone run's per-metric values (for runs
// present in only one file, where there is nothing to diff against),
// five metrics per line.
func summarizeMetrics(m *load.Metrics) []string {
	fields := make([]string, len(metricFields))
	for i, f := range metricFields {
		fields[i] = fmt.Sprintf("%s=%d", f.name, f.get(m))
	}
	var out []string
	for len(fields) > 0 {
		n := min(5, len(fields))
		out = append(out, strings.Join(fields[:n], " "))
		fields = fields[n:]
	}
	return out
}

// diffMetrics compares every virtual-time metric of one run exactly.
func diffMetrics(o, n *load.Metrics) []string {
	var out []string
	for _, f := range metricFields {
		if a, b := f.get(o), f.get(n); a != b {
			out = append(out, fmt.Sprintf("%s %d -> %d", f.name, a, b))
		}
	}
	// Per-CPU busy fractions are deterministic too, and not derivable
	// from the totals above: a scheduler change that redistributes
	// busy time across CPUs must not slip past the gate. Floats
	// compare exactly — the simulator guarantees bit-stable output.
	if len(o.CPUUtilization) != len(n.CPUUtilization) {
		out = append(out, fmt.Sprintf("cpu_utilization has %d CPUs -> %d", len(o.CPUUtilization), len(n.CPUUtilization)))
		return out
	}
	for i := range o.CPUUtilization {
		if o.CPUUtilization[i] != n.CPUUtilization[i] {
			out = append(out, fmt.Sprintf("cpu_utilization[%d] %v -> %v", i, o.CPUUtilization[i], n.CPUUtilization[i]))
		}
	}
	// The fabric's flow log is deterministic too: a routing change that
	// preserves the totals must still fail the gate.
	if len(o.NetFlows) != len(n.NetFlows) {
		out = append(out, fmt.Sprintf("net_flows has %d flows -> %d", len(o.NetFlows), len(n.NetFlows)))
		return out
	}
	for i := range o.NetFlows {
		if o.NetFlows[i] != n.NetFlows[i] {
			out = append(out, fmt.Sprintf("net_flows[%d] %+v -> %+v", i, o.NetFlows[i], n.NetFlows[i]))
		}
	}
	return out
}
