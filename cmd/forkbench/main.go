// Command forkbench regenerates the evaluation of "A fork() in the
// road" (HotOS'19) on the simulator: Figure 1, the semantics matrix
// (Table 1), and the E3–E7 claim experiments. See DESIGN.md for the
// experiment index and EXPERIMENTS.md for paper-vs-measured notes.
//
// Usage:
//
//	forkbench [flags] <experiment>
//
//	experiments: fig1 table1 cowtax hugepages overcommit compose scale
//	             strategies all
//
//	-max SIZE     largest parent for sweeps (default 1GiB for fig1)
//	-reps N       repetitions per fig1 point (default 5)
//	-eager        include the 1970s eager-copy fork line in fig1
//
// "strategies" demonstrates the public sim API: one workload launched
// through every process-creation strategy the paper compares
// (Cmd.Via), verifying identical output and reporting each strategy's
// creation latency from a dirty parent.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/sim"
)

func parseSize(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	mult := uint64(1)
	switch {
	case strings.HasSuffix(s, "GiB"), strings.HasSuffix(s, "G"):
		mult = experiments.GiB
		s = strings.TrimSuffix(strings.TrimSuffix(s, "GiB"), "G")
	case strings.HasSuffix(s, "MiB"), strings.HasSuffix(s, "M"):
		mult = experiments.MiB
		s = strings.TrimSuffix(strings.TrimSuffix(s, "MiB"), "M")
	case strings.HasSuffix(s, "KiB"), strings.HasSuffix(s, "K"):
		mult = experiments.KiB
		s = strings.TrimSuffix(strings.TrimSuffix(s, "KiB"), "K")
	}
	n, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func main() {
	maxFlag := flag.String("max", "1GiB", "largest parent size for sweeps")
	reps := flag.Int("reps", 5, "repetitions per fig1 point")
	eager := flag.Bool("eager", false, "include eager-copy fork line in fig1")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: forkbench [flags] fig1|table1|cowtax|hugepages|overcommit|compose|scale|ablations|strategies|all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	maxBytes, err := parseSize(*maxFlag)
	if err != nil {
		fatal(err)
	}

	what := flag.Arg(0)
	runAll := what == "all"
	ran := false

	if runAll || what == "fig1" {
		ran = true
		res, err := experiments.Figure1(experiments.Fig1Config{
			MaxBytes: maxBytes, Reps: *reps, IncludeEager: *eager,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
		if cx, ok := res.Crossover(); ok {
			fmt.Printf("spawn overtakes fork+exec at parent size %s\n\n", experiments.HumanBytes(cx))
		}
	}
	if runAll || what == "table1" {
		ran = true
		res, err := experiments.Table1()
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
	}
	if runAll || what == "cowtax" {
		ran = true
		res, err := experiments.CowTax(0)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
	}
	if runAll || what == "hugepages" {
		ran = true
		hmax := maxBytes
		if hmax > 512*experiments.MiB {
			hmax = 512 * experiments.MiB
		}
		res, err := experiments.HugePages(0, hmax)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
	}
	if runAll || what == "overcommit" {
		ran = true
		res, err := experiments.Overcommit(0)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
	}
	if runAll || what == "compose" {
		ran = true
		res, err := experiments.Compose()
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
	}
	if runAll || what == "scale" {
		ran = true
		smax := maxBytes
		if smax > 256*experiments.MiB {
			smax = 256 * experiments.MiB
		}
		res, err := experiments.Scale(0, smax)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
	}
	if runAll || what == "ablations" {
		ran = true
		amax := maxBytes
		if amax > 128*experiments.MiB {
			amax = 128 * experiments.MiB
		}
		res, err := experiments.Ablations(amax)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
	}
	if runAll || what == "strategies" {
		ran = true
		if err := strategies(maxBytes); err != nil {
			fatal(err)
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// strategies runs one workload through all five creation APIs via the
// public sim package and reports creation latency from a dirty parent
// — Figure 1's point made interactively.
func strategies(parentBytes uint64) error {
	if parentBytes > 64*experiments.MiB {
		parentBytes = 64 * experiments.MiB
	}
	sys, err := sim.NewSystem(sim.WithRAM(4 << 30))
	if err != nil {
		return err
	}
	if err := sys.DirtyHost(parentBytes, false); err != nil {
		return err
	}
	fmt.Printf("one workload, five creation APIs (parent dirties %s):\n\n",
		experiments.HumanBytes(parentBytes))
	fmt.Printf("%-22s %-14s %s\n", "strategy", "creation", "output")
	var reference string
	for _, st := range sim.Strategies() {
		var buf bytes.Buffer
		cmd := sys.Command("echo", "hello", "road").Via(st)
		cmd.Stdout = &buf
		p, err := cmd.Create()
		if err != nil {
			return fmt.Errorf("%v: %w", st, err)
		}
		if err := p.Start(); err != nil {
			return fmt.Errorf("%v: %w", st, err)
		}
		if err := cmd.Wait(); err != nil {
			return fmt.Errorf("%v: %w", st, err)
		}
		out := strings.TrimSuffix(buf.String(), "\n")
		fmt.Printf("%-22v %-14v %q\n", st, p.CreationCost(), out)
		if reference == "" {
			reference = out
		} else if out != reference {
			return fmt.Errorf("%v produced %q, others %q", st, out, reference)
		}
	}
	fmt.Printf("\nidentical output under every strategy; only the creation cost differs.\n\n")
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "forkbench:", err)
	os.Exit(1)
}
