// Command forkbench regenerates the evaluation of "A fork() in the
// road" (HotOS'19) on the simulator: Figure 1, the semantics matrix
// (Table 1), and the E3–E10 claim experiments. See DESIGN.md for the
// experiment index and EXPERIMENTS.md for paper-vs-measured notes.
//
// Usage:
//
//	forkbench [flags] <experiment>
//	forkbench load [load flags]
//	forkbench fleet [fleet flags]
//	forkbench cluster [cluster flags]
//	forkbench metrics [metrics flags]
//	forkbench hostbench [hostbench flags]
//	forkbench trace [trace flags] [prog arg...]
//	forkbench diff [-summary] <old.json> <new.json>
//
//	experiments: fig1 table1 cowtax hugepages overcommit compose scale
//	             ablations strategies server cpusweep fleetclaim chaos
//	             scaleout clonebench netclaim migrate all
//
//	-max SIZE     largest parent for sweeps (default 1GiB for fig1)
//	-reps N       repetitions per fig1 point (default 5)
//	-eager        include the 1970s eager-copy fork line in fig1
//
// "strategies" demonstrates the public sim API: one workload launched
// through every process-creation strategy the paper compares
// (Cmd.Via), verifying identical output and reporting each strategy's
// creation latency from a dirty parent. "cpusweep" is the SMP
// experiment: fork's snapshot tax versus core count (E9).
// "fleetclaim" is E10: the rolling-restart wave over growing fleet
// sizes — each replacement machine repays its warm-up tax, Θ(heap)
// page-table duplication per pool worker under fork. "chaos" is E11:
// the prefork server under identical deterministic memory-pressure
// fault waves (sim/fault), fork vs spawn — fork's Θ(heap) commit
// reservations are what the waves refuse, so the fork server drops
// traffic the spawn server serves (§4.6's overcommit argument made
// measurable). "scaleout" is E12: identical fork and spawn node pools
// racing the same traffic surge through sim/cluster's autoscaler —
// scale-out latency is Θ(heap) under fork, flat under spawn, and the
// gap is missed surge SLOs. "clonebench" is E13, the only host-timed
// experiment: cold boot+warm per machine vs snapshot-once-then-clone
// (sim.System.Snapshot / sim.Template.Clone) over a heap ladder, plus
// the measured break-even heap size below which templating stops
// paying — the harness's own answer to Θ(heap) process creation.
// "netclaim" is E15, the re-warm tax on the wire: the netlb cell
// (sim/load's L7 balancer) restarts one backend mid-run; the
// replacement's worker-pool warm-up is Θ(heap) under fork and flat
// under spawn, and the client retry timeout sits between the two, so
// fork turns the restart into a retry storm the spawn pool absorbs.
// "migrate" is E16, live migration: checkpoint a running worker,
// pre-copy its pages over sim/net while it keeps dirtying them, then
// stop-and-copy the residue — downtime grows with the dirty heap for
// the fork family, stays flat for spawn, and a mid-vfork borrower is
// refused cleanly because it has no coherent address space to ship.
//
// The trace subcommand runs one command with the structured event
// trace enabled and renders it (sim.WithTrace): syscall enter/exit
// with errno, scheduler dispatches, TLB-shootdown rounds, process
// lifecycle, and — with -seed — injected faults:
//
//	forkbench trace [-via STRATEGY] [-heap SIZE] [-cpus N]
//	                [-seed N] [-o FILE] [prog arg...]
//
// Its output is a pure function of its flags; the golden-trace tests
// in sim freeze one trace per creation strategy the same way.
//
// The load subcommand drives the sim/load workload scenarios:
//
//	forkbench load [-scenario prefork|pipeline|checkpoint|forkstorm|
//	                          smpserver|buildfarm|netlb|kvshard|migrate|all]
//	               [-via spawn|fork|vfork|builder|emufork|eager]
//	               [-n REQUESTS] [-workers N] [-nodes N] [-heap SIZE]
//	               [-ram SIZE] [-cpus N] [-huge] [-json FILE]
//
// Each run is deterministic; -json writes every run's metrics as a
// JSON array, the format of the repo's BENCH_*.json trajectory files
// (regenerate with `forkbench load -sweep -json BENCH_PRn.json`).
// With -sweep, -cpus pins the whole baseline matrix to one CPU count
// (the CI job runs it at 1 and 4); by default the matrix includes its
// own 1/2/4/8-CPU sweep of the SMP scenarios. The sweep fans its
// configurations out across host cores through sim/fleet — results
// and JSON are byte-identical to a serial run (the CI determinism
// gate holds the sweep to that at GOMAXPROCS 1 vs 4); wall-clock and
// worker count are reported on stderr.
//
// The fleet subcommand runs many machines at once (sim/fleet):
//
//	forkbench fleet [-machines N]
//	                [-scenario uniform|rolling|rebalance|hetero|surge|chaos]
//	                [-load SCENARIO] [-via STRATEGY] [-cpus N] [-n REQUESTS]
//	                [-workers N] [-surge K] [-seed N] [-heap SIZE]
//	                [-parallel N] [-shards N] [-permachine] [-json FILE]
//	                [-cpuprofile FILE] [-memprofile FILE]
//
// Its stdout is byte-identical at every GOMAXPROCS setting — host
// wall-clock, worker/shard counts, and peak RSS go to stderr. Machines
// stream into a constant-memory aggregate as they finish; -permachine
// keeps the per-machine breakdown (and its O(machines) report memory).
// -shards fans contiguous machine-id ranges across worker OS processes
// (re-invocations of this binary) whose partial aggregates merge in
// shard order, byte-identical to the in-process run — the CI sharded
// determinism gate compares -shards 1 vs 4. The chaos scenario derives
// each machine's fault schedule from (-seed, machine id); the CI chaos
// determinism gate byte-compares its JSON at GOMAXPROCS 1 vs 4.
//
// The hostbench subcommand is E14, the host-time trajectory: how fast
// this computer simulates fleets (template stamp rate fresh vs into a
// recycled shell, machines and simulated requests per host second over
// a fleet-size ladder, peak RSS):
//
//	forkbench hostbench [-sizes N,N,...] [-n REQUESTS] [-heap SIZE]
//	                    [-shards N] [-stamps N] [-json FILE]
//
// Like clonebench it is host-timed — numbers vary run to run — and
// -json writes the BENCH_HOST.json trajectory format that CI publishes
// as an informational artifact (report, don't fail).
//
// The cluster subcommand runs the autoscaling orchestrator
// (sim/cluster): named node pools scaled by a virtual-time reconcile
// loop against a traffic plan:
//
//	forkbench cluster [-scenario surge|zoneoutage|heteropools|netsplit]
//	                  [-heap SIZE] [-parallel N] [-json FILE]
//
// Its stdout — pool table plus reconcile trace — is byte-identical at
// every GOMAXPROCS; the CI cluster determinism gate byte-compares the
// zoneoutage JSON at GOMAXPROCS 1 vs 4. The netsplit scenario severs a
// zone's links (fault.ZonePartition) without killing its machines: the
// balancer's reachability probe routes around the partition and heals
// when it lifts.
//
// The metrics subcommand is the retina-style metrics plane: one
// deterministic run rendered as Prometheus text-format counters —
// per-machine request and packet/flow counters for a fleet of
// distributed cells (default), per-pool/zone counters for a cluster
// scenario (-cluster), and the structured trace's event-kind counters
// from one traced command (-trace):
//
//	forkbench metrics [-scenario netlb|kvshard|...] [-via STRATEGY]
//	                  [-machines N] [-n REQUESTS] [-heap SIZE] [-seed N]
//	                  [-cluster SCENARIO] [-trace] [-o FILE]
//
// Its output is a pure function of the flags (sim/metrics sorts
// families and samples), so the CI metrics golden gate byte-compares
// checked-in invocations the way the golden traces are frozen.
//
// The diff subcommand is the bench-drift gate: it compares two sweep
// JSON files metric by metric and fails on any difference, so silent
// cost-model changes fail CI instead of rotting the BENCH_*.json
// trajectory. -summary prints one line per differing run (the changed
// metric names only) for readable CI logs.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/sim"
	"repro/sim/fleet"
	"repro/sim/load"
)

func parseSize(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	mult := uint64(1)
	switch {
	case strings.HasSuffix(s, "GiB"), strings.HasSuffix(s, "G"):
		mult = experiments.GiB
		s = strings.TrimSuffix(strings.TrimSuffix(s, "GiB"), "G")
	case strings.HasSuffix(s, "MiB"), strings.HasSuffix(s, "M"):
		mult = experiments.MiB
		s = strings.TrimSuffix(strings.TrimSuffix(s, "MiB"), "M")
	case strings.HasSuffix(s, "KiB"), strings.HasSuffix(s, "K"):
		mult = experiments.KiB
		s = strings.TrimSuffix(strings.TrimSuffix(s, "KiB"), "K")
	}
	n, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func main() {
	// A `fleet -shards N` parent re-invokes this binary once per
	// shard; a worker invocation runs its machine range and exits
	// here, before flag parsing.
	fleet.MaybeShardWorker()
	maxFlag := flag.String("max", "1GiB", "largest parent size for sweeps")
	reps := flag.Int("reps", 5, "repetitions per fig1 point")
	eager := flag.Bool("eager", false, "include eager-copy fork line in fig1")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: forkbench [flags] fig1|table1|cowtax|hugepages|overcommit|compose|scale|ablations|strategies|server|cpusweep|fleetclaim|chaos|scaleout|clonebench|netclaim|migrate|all\n")
		fmt.Fprintf(os.Stderr, "       forkbench load [load flags]        (see forkbench load -h)\n")
		fmt.Fprintf(os.Stderr, "       forkbench fleet [fleet flags]      (see forkbench fleet -h)\n")
		fmt.Fprintf(os.Stderr, "       forkbench cluster [cluster flags]  (see forkbench cluster -h)\n")
		fmt.Fprintf(os.Stderr, "       forkbench metrics [metrics flags]  (see forkbench metrics -h)\n")
		fmt.Fprintf(os.Stderr, "       forkbench hostbench [bench flags]  (see forkbench hostbench -h)\n")
		fmt.Fprintf(os.Stderr, "       forkbench trace [trace flags]      (see forkbench trace -h)\n")
		fmt.Fprintf(os.Stderr, "       forkbench diff [-summary] <old.json> <new.json>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	switch flag.Arg(0) {
	case "load":
		if err := runLoad(flag.Args()[1:]); err != nil {
			fatal(err)
		}
		return
	case "fleet":
		if err := runFleet(flag.Args()[1:]); err != nil {
			fatal(err)
		}
		return
	case "cluster":
		if err := runCluster(flag.Args()[1:]); err != nil {
			fatal(err)
		}
		return
	case "metrics":
		if err := runMetrics(flag.Args()[1:]); err != nil {
			fatal(err)
		}
		return
	case "hostbench":
		if err := runHostbench(flag.Args()[1:]); err != nil {
			fatal(err)
		}
		return
	case "trace":
		if err := runTrace(flag.Args()[1:]); err != nil {
			fatal(err)
		}
		return
	case "diff":
		if err := runDiff(flag.Args()[1:]); err != nil {
			fatal(err)
		}
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	maxBytes, err := parseSize(*maxFlag)
	if err != nil {
		fatal(err)
	}

	what := flag.Arg(0)
	runAll := what == "all"
	ran := false

	if runAll || what == "fig1" {
		ran = true
		res, err := experiments.Figure1(experiments.Fig1Config{
			MaxBytes: maxBytes, Reps: *reps, IncludeEager: *eager,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
		if cx, ok := res.Crossover(); ok {
			fmt.Printf("spawn overtakes fork+exec at parent size %s\n\n", experiments.HumanBytes(cx))
		}
	}
	if runAll || what == "table1" {
		ran = true
		res, err := experiments.Table1()
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
	}
	if runAll || what == "cowtax" {
		ran = true
		res, err := experiments.CowTax(0)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
	}
	if runAll || what == "hugepages" {
		ran = true
		hmax := maxBytes
		if hmax > 512*experiments.MiB {
			hmax = 512 * experiments.MiB
		}
		res, err := experiments.HugePages(0, hmax)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
	}
	if runAll || what == "overcommit" {
		ran = true
		res, err := experiments.Overcommit(0)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
	}
	if runAll || what == "compose" {
		ran = true
		res, err := experiments.Compose()
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
	}
	if runAll || what == "scale" {
		ran = true
		smax := maxBytes
		if smax > 256*experiments.MiB {
			smax = 256 * experiments.MiB
		}
		res, err := experiments.Scale(0, smax)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
	}
	if runAll || what == "ablations" {
		ran = true
		amax := maxBytes
		if amax > 128*experiments.MiB {
			amax = 128 * experiments.MiB
		}
		res, err := experiments.Ablations(amax)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
	}
	if runAll || what == "server" {
		ran = true
		smax := maxBytes
		if smax > 256*experiments.MiB {
			smax = 256 * experiments.MiB
		}
		res, err := experiments.ServerClaim(smax, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
	}
	if runAll || what == "cpusweep" {
		ran = true
		cmax := maxBytes
		if cmax > 64*experiments.MiB {
			cmax = 64 * experiments.MiB
		}
		res, err := experiments.CPUSweep(experiments.CPUSweepConfig{HeapBytes: cmax})
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
	}
	if runAll || what == "fleetclaim" {
		ran = true
		fmax := maxBytes
		if fmax > 64*experiments.MiB {
			fmax = 64 * experiments.MiB
		}
		res, err := experiments.FleetClaim(experiments.FleetClaimConfig{HeapBytes: fmax})
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
	}
	if runAll || what == "chaos" {
		ran = true
		cmax := maxBytes
		if cmax > 64*experiments.MiB {
			cmax = 64 * experiments.MiB
		}
		res, err := experiments.ChaosClaim(experiments.ChaosClaimConfig{HeapBytes: cmax})
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
	}
	if runAll || what == "scaleout" {
		ran = true
		smax := maxBytes
		if smax > 64*experiments.MiB {
			smax = 64 * experiments.MiB
		}
		var ladder []uint64
		for _, h := range []uint64{4 * experiments.MiB, 16 * experiments.MiB, 64 * experiments.MiB} {
			if h <= smax {
				ladder = append(ladder, h)
			}
		}
		if len(ladder) == 0 {
			ladder = []uint64{smax}
		}
		res, err := experiments.ScaleOutClaim(experiments.ScaleOutConfig{HeapSizes: ladder})
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
	}
	if runAll || what == "netclaim" {
		ran = true
		nmax := maxBytes
		if nmax > 64*experiments.MiB {
			nmax = 64 * experiments.MiB
		}
		res, err := experiments.NetClaim(experiments.NetClaimConfig{HeapBytes: nmax})
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
	}
	if runAll || what == "migrate" {
		ran = true
		mmax := maxBytes
		if mmax > 64*experiments.MiB {
			mmax = 64 * experiments.MiB
		}
		var ladder []uint64
		for _, h := range []uint64{4 * experiments.MiB, 16 * experiments.MiB, 64 * experiments.MiB} {
			if h <= mmax {
				ladder = append(ladder, h)
			}
		}
		res, err := experiments.MigrateClaim(experiments.MigrateConfig{HeapSizes: ladder})
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
	}
	if runAll || what == "clonebench" {
		ran = true
		cmax := maxBytes
		if cmax > 64*experiments.MiB {
			cmax = 64 * experiments.MiB
		}
		var ladder []uint64
		for _, h := range []uint64{4 * experiments.MiB, 16 * experiments.MiB, 64 * experiments.MiB} {
			if h <= cmax {
				ladder = append(ladder, h)
			}
		}
		if len(ladder) == 0 {
			ladder = []uint64{cmax}
		}
		res, err := experiments.CloneClaim(experiments.CloneConfig{HeapSizes: ladder})
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
	}
	if runAll || what == "strategies" {
		ran = true
		if err := strategies(maxBytes); err != nil {
			fatal(err)
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// strategies runs one workload through all five creation APIs via the
// public sim package and reports creation latency from a dirty parent
// — Figure 1's point made interactively.
func strategies(parentBytes uint64) error {
	if parentBytes > 64*experiments.MiB {
		parentBytes = 64 * experiments.MiB
	}
	sys, err := sim.NewSystem(sim.WithRAM(4 << 30))
	if err != nil {
		return err
	}
	if err := sys.DirtyHost(parentBytes, false); err != nil {
		return err
	}
	fmt.Printf("one workload, five creation APIs (parent dirties %s):\n\n",
		experiments.HumanBytes(parentBytes))
	fmt.Printf("%-22s %-14s %s\n", "strategy", "creation", "output")
	var reference string
	for _, st := range sim.Strategies() {
		var buf bytes.Buffer
		cmd := sys.Command("echo", "hello", "road").Via(st)
		cmd.Stdout = &buf
		p, err := cmd.Create()
		if err != nil {
			return fmt.Errorf("%v: %w", st, err)
		}
		if err := p.Start(); err != nil {
			return fmt.Errorf("%v: %w", st, err)
		}
		if err := cmd.Wait(); err != nil {
			return fmt.Errorf("%v: %w", st, err)
		}
		out := strings.TrimSuffix(buf.String(), "\n")
		fmt.Printf("%-22v %-14v %q\n", st, p.CreationCost(), out)
		if reference == "" {
			reference = out
		} else if out != reference {
			return fmt.Errorf("%v produced %q, others %q", st, out, reference)
		}
	}
	fmt.Printf("\nidentical output under every strategy; only the creation cost differs.\n\n")
	return nil
}

// runLoad is the `forkbench load` subcommand: it parses the load
// flags, runs the selected scenario(s) through sim/load, prints each
// run's metrics, and optionally records them all as a JSON array.
func runLoad(args []string) error {
	fs := flag.NewFlagSet("forkbench load", flag.ExitOnError)
	scenario := fs.String("scenario", "prefork", "prefork|pipeline|checkpoint|forkstorm|smpserver|buildfarm|netlb|kvshard|migrate|all")
	via := fs.String("via", "spawn", "spawn|fork|vfork|builder|emufork|eager")
	n := fs.Int("n", 0, "requests per scenario (0 = scenario default)")
	workers := fs.Int("workers", 0, "pipeline depth / storm burst size (0 = default)")
	nodes := fs.Int("nodes", 0, "distributed backend/shard count for netlb|kvshard (0 = default)")
	heap := fs.String("heap", "64MiB", "server heap size")
	ram := fs.String("ram", "0", "machine RAM (0 = 4x heap)")
	cpus := fs.Int("cpus", 0, "simulated CPU count (0 = 1; with -sweep, pins the matrix to this count)")
	huge := fs.Bool("huge", false, "back the server heap with 2MiB pages")
	jsonPath := fs.String("json", "", "write all runs' metrics to FILE as a JSON array")
	sweep := fs.Bool("sweep", false, "run the standard baseline matrix (ignores the other load flags except -cpus)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("load: unexpected argument %q", fs.Arg(0))
	}

	var configs []load.Config
	if *sweep {
		configs = sweepConfigs(*cpus)
	} else {
		st, err := sim.ParseStrategy(*via)
		if err != nil {
			return err
		}
		heapBytes, err := parseSize(*heap)
		if err != nil {
			return err
		}
		ramBytes, err := parseSize(*ram)
		if err != nil {
			return err
		}
		var scenarios []load.Scenario
		if *scenario == "all" {
			scenarios = load.Scenarios()
		} else {
			s, err := load.ParseScenario(*scenario)
			if err != nil {
				return err
			}
			scenarios = []load.Scenario{s}
		}
		for _, s := range scenarios {
			configs = append(configs, load.Config{
				Scenario:  s,
				Via:       st,
				CPUs:      *cpus,
				Requests:  *n,
				Workers:   *workers,
				Nodes:     *nodes,
				HeapBytes: heapBytes,
				RAMBytes:  ramBytes,
				HugePages: *huge,
			})
		}
	}

	// Every config is an independent machine: fan them out across
	// host cores. fleet.RunAll position-merges, so stdout and the
	// JSON are byte-identical to a serial run — the CI determinism
	// gate diffs the sweep JSON at GOMAXPROCS 1 vs 4 to hold it to
	// that. Host wall-clock goes to stderr.
	start := time.Now()
	hostWorkers := fleet.PoolSize(0, len(configs))
	all, err := fleet.RunAll(hostWorkers, configs)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "load: %d run(s) on %d host worker(s) in %s (GOMAXPROCS %d)\n",
		len(all), hostWorkers, time.Since(start).Round(time.Microsecond), runtime.GOMAXPROCS(0))
	for _, m := range all {
		fmt.Println(m.Render())
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(all, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d run(s) to %s\n", len(all), *jsonPath)
	}
	return nil
}

// sweepConfigs is the standard baseline matrix behind
// `forkbench load -sweep -json BENCH_PRn.json`: the prefork §5 cells
// (fork vs spawn vs builder as the server heap grows), one
// representative configuration of each other scenario, and the SMP
// matrix — smpserver and buildfarm swept over 1/2/4/8 CPUs, where
// fork's per-snapshot shootdown tax grows with the core count and the
// fork-less paths stay flat. Deterministic, so the emitted JSON is
// reproducible bit for bit. pinCPUs > 0 pins every config to one CPU
// count (the CI matrix runs the sweep at 1 and at 4).
func sweepConfigs(pinCPUs int) []load.Config {
	var out []load.Config
	for _, heap := range []uint64{64 * experiments.MiB, 256 * experiments.MiB} {
		for _, via := range []sim.Strategy{sim.ForkExec, sim.Spawn, sim.Builder} {
			out = append(out, load.Config{
				Scenario: load.Prefork, Via: via, Requests: 64, HeapBytes: heap,
			})
		}
	}
	for _, via := range []sim.Strategy{sim.ForkExec, sim.Spawn} {
		out = append(out, load.Config{
			Scenario: load.Pipeline, Via: via, Requests: 32, Workers: 3,
			HeapBytes: 64 * experiments.MiB,
		})
	}
	for _, via := range []sim.Strategy{sim.ForkExec, sim.EagerForkExec} {
		out = append(out, load.Config{
			Scenario: load.Checkpoint, Via: via, Requests: 16,
			HeapBytes: 64 * experiments.MiB,
		})
	}
	for _, via := range []sim.Strategy{sim.ForkExec, sim.Spawn} {
		out = append(out, load.Config{
			Scenario: load.ForkStorm, Via: via, Requests: 4, Workers: 256,
			HeapBytes: 64 * experiments.MiB,
		})
	}
	smpCounts := []int{1, 2, 4, 8}
	if pinCPUs > 0 {
		smpCounts = []int{pinCPUs}
	}
	for _, cpus := range smpCounts {
		for _, via := range []sim.Strategy{sim.ForkExec, sim.Spawn} {
			out = append(out, load.Config{
				Scenario: load.SMPServer, Via: via, CPUs: cpus,
				Requests: 8, HeapBytes: 64 * experiments.MiB,
			})
		}
		for _, via := range []sim.Strategy{sim.ForkExec, sim.Spawn} {
			out = append(out, load.Config{
				Scenario: load.BuildFarm, Via: via, CPUs: cpus,
				Requests: 16 * cpus, HeapBytes: 64 * experiments.MiB,
			})
		}
	}
	if pinCPUs > 0 {
		for i := range out {
			out[i].CPUs = pinCPUs
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "forkbench:", err)
	os.Exit(1)
}
