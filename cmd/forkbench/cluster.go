package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/sim/cluster"
)

// runCluster is the `forkbench cluster` subcommand: run one cluster
// scenario (sim/cluster's autoscaling reconcile loop) and print the
// byte-stable report — pool table plus reconcile trace. Everything on
// stdout is a pure function of the flags, identical at any GOMAXPROCS,
// so the CI cluster determinism gate can diff it; host wall clock goes
// to stderr.
func runCluster(args []string) error {
	fs := flag.NewFlagSet("forkbench cluster", flag.ExitOnError)
	scenario := fs.String("scenario", "surge", "surge|zoneoutage|heteropools|netsplit")
	heap := fs.String("heap", "64MiB", "per-machine server heap size")
	parallel := fs.Int("parallel", 0, "host worker bound (0 = GOMAXPROCS)")
	jsonPath := fs.String("json", "", "write the cluster report to FILE as byte-stable JSON")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to FILE")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to FILE")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("cluster: unexpected argument %q", fs.Arg(0))
	}
	s, err := cluster.ParseScenario(*scenario)
	if err != nil {
		return err
	}
	heapBytes, err := parseSize(*heap)
	if err != nil {
		return err
	}
	spec, err := cluster.SpecFor(s, heapBytes)
	if err != nil {
		return err
	}
	spec.Parallelism = *parallel
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	rep, err := cluster.Run(spec)
	if perr := stopProfiles(); err == nil {
		err = perr
	}
	if err != nil {
		return err
	}
	fmt.Println(rep.Render())
	fmt.Fprintf(os.Stderr, "host: %d worker(s) in %s (GOMAXPROCS %d)\n",
		rep.HostWorkers, rep.HostElapsed.Round(time.Microsecond), runtime.GOMAXPROCS(0))
	if *jsonPath != "" {
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote cluster report to %s\n", *jsonPath)
	}
	return nil
}
