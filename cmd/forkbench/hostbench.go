package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

// runHostbench is the `forkbench hostbench` subcommand: E14, the
// host-time trajectory (stamp rate, machines per host second,
// simulated requests per host second, peak RSS over a fleet-size
// ladder). Unlike every virtual-time experiment its numbers are host
// measurements and vary run to run; -json writes the BENCH_HOST.json
// trajectory format.
func runHostbench(args []string) error {
	fs := flag.NewFlagSet("forkbench hostbench", flag.ExitOnError)
	sizes := fs.String("sizes", "", "comma-separated fleet-size ladder (default 256,1024,4096)")
	n := fs.Int("n", 0, "requests per machine (0 = 8)")
	heap := fs.String("heap", "4MiB", "per-machine server heap size")
	shards := fs.Int("shards", 0, "worker OS processes per fleet run (0 = in-process)")
	stamps := fs.Int("stamps", 0, "stamps per stamp-rate probe (0 = 2048)")
	jsonPath := fs.String("json", "", "write the trajectory to FILE (the BENCH_HOST.json format)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("hostbench: unexpected argument %q", fs.Arg(0))
	}
	heapBytes, err := parseSize(*heap)
	if err != nil {
		return err
	}
	cfg := experiments.HostBenchConfig{
		Requests:      *n,
		HeapBytes:     heapBytes,
		Shards:        *shards,
		StampMachines: *stamps,
	}
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 1 {
				return fmt.Errorf("hostbench: bad -sizes entry %q", s)
			}
			cfg.Sizes = append(cfg.Sizes, v)
		}
	}
	res, err := experiments.HostBench(cfg)
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	if *jsonPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote host trajectory to %s\n", *jsonPath)
	}
	return nil
}
