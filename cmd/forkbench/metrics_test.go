package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/sim/fleet"
	"repro/sim/load"
)

// updateGoldens rewrites the checked-in metrics goldens:
//
//	go test ./cmd/forkbench -run TestRunMetricsGoldens -update
var updateGoldens = flag.Bool("update", false, "rewrite the testdata goldens")

// metricsGoldens is the frozen invocation set: every case is a pure
// function of its flags, so CI regenerates each one and byte-compares
// it against the checked-in file (the metrics golden gate).
var metricsGoldens = []struct {
	name string
	args []string
}{
	// The netlb restart storm under fork, with the trace section: the
	// timeout/retry counters are the E15 claim in Prometheus form.
	{"metrics_netlb_fleet.prom", []string{"-scenario", "netlb", "-via", "fork", "-machines", "2", "-n", "24", "-trace"}},
	// The kvshard cell under deterministic network chaos: drop and
	// retry counters plus the per-flow breakdown.
	{"metrics_kvshard_chaos.prom", []string{"-scenario", "kvshard", "-via", "spawn", "-machines", "2", "-n", "16", "-heap", "8MiB", "-seed", "7"}},
	// The cluster netsplit scenario: pool/zone counters while a zone
	// is partitioned but alive.
	{"metrics_cluster_netsplit.prom", []string{"-cluster", "netsplit", "-heap", "4MiB"}},
}

// TestRunMetricsGoldens drives `forkbench metrics` end to end and
// byte-compares each frozen invocation against its checked-in golden.
func TestRunMetricsGoldens(t *testing.T) {
	for _, c := range metricsGoldens {
		t.Run(c.name, func(t *testing.T) {
			out := filepath.Join(t.TempDir(), "m.prom")
			if err := runMetrics(append(append([]string{}, c.args...), "-o", out)); err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", c.name)
			if *updateGoldens {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("metrics drifted from %s (regenerate with -update if intended):\ngot:\n%s\nwant:\n%s", golden, got, want)
			}
		})
	}
}

// TestRunMetricsFleetCounters checks the fleet section's families and
// labels without pinning bytes: per-machine request counters, the net
// packet/flow counters, and the E15 storm visible as timeouts.
func TestRunMetricsFleetCounters(t *testing.T) {
	out := filepath.Join(t.TempDir(), "m.prom")
	err := runMetrics([]string{"-scenario", "netlb", "-via", "fork", "-machines", "2", "-n", "24", "-o", out})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		`forkbench_run_info{mode="fleet",scenario="uniform",load="netlb",strategy="fork+exec"} 1`,
		`forkbench_requests_total{machine="0"} 24`,
		`forkbench_requests_total{machine="1"} 24`,
		`forkbench_net_packets_total{machine="0",dir="sent"}`,
		`forkbench_net_flow_packets_total{machine="0",src="0",dst="1",flow="req"}`,
		`forkbench_net_timeouts_total{machine="0"}`,
		`forkbench_net_retries_total{machine="0"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}

// TestRunMetricsClusterCounters checks the cluster section: pool
// labels, zone-labelled scale-outs, and no kill counter for a pure
// partition.
func TestRunMetricsClusterCounters(t *testing.T) {
	out := filepath.Join(t.TempDir(), "m.prom")
	if err := runMetrics([]string{"-cluster", "zoneoutage", "-heap", "4MiB", "-o", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		`forkbench_run_info{mode="cluster",scenario="zoneoutage"} 1`,
		`forkbench_cluster_served_total{pool="web"}`,
		`forkbench_cluster_machines_killed_total{pool="web"}`,
		`forkbench_cluster_scale_outs_total{pool="web",zone=`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("cluster metrics missing %q:\n%s", want, text)
		}
	}
}

// TestRunMetricsRejectsJunk pins the metrics flag error paths.
func TestRunMetricsRejectsJunk(t *testing.T) {
	for _, args := range [][]string{
		{"-scenario", "bogus"},
		{"-via", "bogus"},
		{"-heap", "xMiB"},
		{"-cluster", "bogus"},
		{"-machines", "0"},
		{"extra-positional"},
	} {
		if err := runMetrics(args); err == nil {
			t.Errorf("runMetrics(%v) succeeded, want error", args)
		}
	}
}

// TestRunLoadDistributed drives the load subcommand through a
// distributed cell: the emitted JSON carries the net counters and the
// -nodes override.
func TestRunLoadDistributed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "net.json")
	err := runLoad([]string{
		"-scenario", "kvshard", "-via", "spawn", "-n", "9", "-nodes", "3", "-heap", "8MiB", "-json", path,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var ms []*load.Metrics
	if err := json.Unmarshal(data, &ms); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(ms) != 1 || ms[0].Scenario != "kvshard" || ms[0].Requests != 9 {
		t.Fatalf("unexpected metrics: %+v", ms)
	}
	if ms[0].NetPacketsSent == 0 || len(ms[0].NetFlows) == 0 {
		t.Errorf("distributed run reported no fabric traffic: %+v", ms[0])
	}
	// 3 shards: the client's get flows target addresses 1..3.
	shards := map[int]bool{}
	for _, fl := range ms[0].NetFlows {
		if fl.Flow == "get" {
			shards[fl.Dst] = true
		}
	}
	if len(shards) != 3 {
		t.Errorf("get flows hit %d shards, want the -nodes 3 override", len(shards))
	}
}

// TestRunFleetDistributedChaos drives the fleet subcommand with a
// distributed load under the chaos scenario: per-machine phases carry
// the net counters, and the wire chaos caused retries somewhere.
func TestRunFleetDistributedChaos(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.json")
	err := runFleet([]string{
		"-machines", "3", "-scenario", "chaos", "-load", "netlb", "-via", "spawn",
		"-n", "12", "-heap", "8MiB", "-seed", "5", "-permachine", "-json", path,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res fleet.Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if res.Load != "netlb" || len(res.Machines) != 3 {
		t.Fatalf("unexpected fleet report: load=%s machines=%d", res.Load, len(res.Machines))
	}
	var pkts, drops uint64
	for _, mm := range res.Machines {
		for _, ph := range mm.Phases {
			pkts += ph.NetPacketsSent
			drops += ph.NetDrops
		}
	}
	if pkts == 0 {
		t.Error("no fabric traffic recorded across the fleet")
	}
	if drops == 0 {
		t.Error("net chaos dropped nothing across 3 machines")
	}
}
