package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/sim"
	"repro/sim/fleet"
	"repro/sim/load"
)

// runFleet is the `forkbench fleet` subcommand: configure a fleet.Spec
// from flags, run the fleet across host cores, and print the
// byte-stable report. Everything on stdout is a pure function of the
// flags — identical at GOMAXPROCS=1 and GOMAXPROCS=8 — so the CI
// determinism gate can diff it; the host-side wall clock and worker
// count go to stderr.
func runFleet(args []string) error {
	fs := flag.NewFlagSet("forkbench fleet", flag.ExitOnError)
	machines := fs.Int("machines", 4, "fleet size")
	scenario := fs.String("scenario", "rolling", "uniform|rolling|rebalance|hetero|surge|chaos")
	loadName := fs.String("load", "prefork", "per-machine workload (prefork|pipeline|checkpoint|forkstorm|smpserver|buildfarm|netlb|kvshard)")
	via := fs.String("via", "fork", "spawn|fork|vfork|builder|emufork|eager")
	cpus := fs.Int("cpus", 0, "CPUs per machine (0 = 2; hetero cycles 1/2/4/8)")
	n := fs.Int("n", 0, "requests per machine per serve phase (0 = 24)")
	workers := fs.Int("workers", 0, "rolling warm-pool size (0 = 2*cpus)")
	surge := fs.Int("surge", 0, "surge-phase window/volume multiplier (0 = 4)")
	seed := fs.Uint64("seed", 0, "chaos fault-wave seed (0 = 1)")
	heap := fs.String("heap", "64MiB", "per-machine server heap size")
	parallel := fs.Int("parallel", 0, "host worker bound (0 = GOMAXPROCS)")
	shards := fs.Int("shards", 0, "fan machine ranges across N worker OS processes (0/1 = in-process; host cost only, the report is byte-identical)")
	permachine := fs.Bool("permachine", false, "keep the per-machine breakdown in the report (off: stream machines into the aggregate in constant memory)")
	jsonPath := fs.String("json", "", "write the fleet report to FILE as byte-stable JSON")
	cold := fs.Bool("cold", false, "cold-boot every machine instead of stamping from templates (host cost only; the report is byte-identical either way)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to FILE")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to FILE")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("fleet: unexpected argument %q", fs.Arg(0))
	}
	// The Spec treats zero as "default"; on the CLI an explicit
	// -machines 0 is a mistake, not a request for the default.
	if *machines < 1 {
		return fmt.Errorf("fleet: -machines %d (want >= 1)", *machines)
	}
	scen, err := fleet.ParseScenario(*scenario)
	if err != nil {
		return err
	}
	loadScen, err := load.ParseScenario(*loadName)
	if err != nil {
		return err
	}
	st, err := sim.ParseStrategy(*via)
	if err != nil {
		return err
	}
	heapBytes, err := parseSize(*heap)
	if err != nil {
		return err
	}
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	res, err := fleet.Run(fleet.Spec{
		Machines:       *machines,
		Scenario:       scen,
		Load:           loadScen,
		Via:            st,
		CPUs:           *cpus,
		Requests:       *n,
		Workers:        *workers,
		SurgeFactor:    *surge,
		FaultSeed:      *seed,
		HeapBytes:      heapBytes,
		Parallelism:    *parallel,
		Shards:         *shards,
		KeepPerMachine: *permachine,
		ColdBoot:       *cold,
	})
	if perr := stopProfiles(); err == nil {
		err = perr
	}
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	fmt.Fprintf(os.Stderr, "host: %d machines on %d worker(s) x %d shard(s) in %s (GOMAXPROCS %d, peak RSS %s)\n",
		res.Aggregate.Machines, res.HostWorkers, res.HostShards,
		res.HostElapsed.Round(time.Microsecond), runtime.GOMAXPROCS(0),
		load.HumanBytes(res.HostPeakRSSBytes))
	if *jsonPath != "" {
		data, err := res.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote fleet report to %s\n", *jsonPath)
	}
	return nil
}
