package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/sim"
	"repro/sim/fault"
)

// runTrace is the `forkbench trace` subcommand: boot a machine with
// the structured event trace enabled, run one command through the
// selected creation strategy from a dirty parent, and render the trace
// — syscall enter/exit, scheduler dispatches, shootdown IPIs, process
// lifecycle, and (with -seed) injected faults. The output is a pure
// function of the flags: the same invocation always prints the same
// bytes, which is what lets the golden-trace regression tests byte-
// compare checked-in traces.
func runTrace(args []string) error {
	fs := flag.NewFlagSet("forkbench trace", flag.ExitOnError)
	via := fs.String("via", "fork", "spawn|fork|vfork|builder|emufork|eager")
	heap := fs.String("heap", "1MiB", "parent dirty-heap size")
	cpus := fs.Int("cpus", 1, "simulated CPU count")
	seed := fs.Uint64("seed", 0, "install fault.Chaos(seed, 0) (0 = no fault injection)")
	out := fs.String("o", "", "write the trace to FILE (default stdout)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: forkbench trace [flags] [prog arg...]  (default: echo hello road)\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := sim.ParseStrategy(*via)
	if err != nil {
		return err
	}
	heapBytes, err := parseSize(*heap)
	if err != nil {
		return err
	}
	argv := fs.Args()
	if len(argv) == 0 {
		argv = []string{"echo", "hello", "road"}
	}

	sys, err := sim.NewSystem(sim.WithTrace(), sim.WithCPUs(*cpus))
	if err != nil {
		return err
	}
	if err := sys.DirtyHost(heapBytes, false); err != nil {
		return err
	}
	if *seed != 0 {
		// Arm after the warm-up, like load's chaos mode: the dirty
		// parent is set up cleanly, only the traced command runs
		// under the waves.
		sys.SetFaultSchedule(fault.Chaos(*seed, 0))
	}
	cmd := sys.Command(argv[0], argv[1:]...).Via(st)
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Run(); err != nil && sim.AsExitError(err) == nil {
		// Injected faults may legitimately kill the command or refuse
		// its creation with a kernel errno; the trace still tells the
		// story. Anything else is a real harness failure.
		if *seed == 0 {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace: command failed under injected faults: %v\n", err)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if _, err := io.WriteString(w, sys.Trace().Render()); err != nil {
		return err
	}
	return nil
}
