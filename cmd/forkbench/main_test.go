package main

import "testing"

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
		err  bool
	}{
		{"1GiB", 1 << 30, false},
		{"2G", 2 << 30, false},
		{"512MiB", 512 << 20, false},
		{"64M", 64 << 20, false},
		{"4KiB", 4 << 10, false},
		{"128K", 128 << 10, false},
		{"4096", 4096, false},
		{" 8MiB ", 8 << 20, false},
		{"", 0, true},
		{"xMiB", 0, true},
		{"GiB", 0, true},
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if c.err {
			if err == nil {
				t.Errorf("parseSize(%q) = %d, want error", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseSize(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("parseSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}
