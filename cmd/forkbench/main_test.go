package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/sim/cluster"
	"repro/sim/fleet"
	"repro/sim/load"
)

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
		err  bool
	}{
		{"1GiB", 1 << 30, false},
		{"2G", 2 << 30, false},
		{"512MiB", 512 << 20, false},
		{"64M", 64 << 20, false},
		{"4KiB", 4 << 10, false},
		{"128K", 128 << 10, false},
		{"4096", 4096, false},
		{" 8MiB ", 8 << 20, false},
		{"", 0, true},
		{"xMiB", 0, true},
		{"GiB", 0, true},
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if c.err {
			if err == nil {
				t.Errorf("parseSize(%q) = %d, want error", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseSize(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("parseSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestRunLoadWritesJSON drives the load subcommand end to end at a
// tiny scale and checks the emitted JSON parses back into metrics.
func TestRunLoadWritesJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	err := runLoad([]string{
		"-scenario", "prefork", "-via", "spawn", "-n", "4", "-heap", "1MiB", "-json", path,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var ms []*load.Metrics
	if err := json.Unmarshal(data, &ms); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(ms) != 1 || ms[0].Requests != 4 || ms[0].Scenario != "prefork" {
		t.Errorf("unexpected metrics: %+v", ms)
	}
}

// TestRunLoadRejectsJunk pins the error paths.
func TestRunLoadRejectsJunk(t *testing.T) {
	for _, args := range [][]string{
		{"-scenario", "bogus"},
		{"-via", "bogus"},
		{"-heap", "xMiB"},
		{"extra-positional"},
	} {
		if err := runLoad(args); err == nil {
			t.Errorf("runLoad(%v) succeeded, want error", args)
		}
	}
}

// TestRunFleetWritesJSON drives the fleet subcommand end to end at a
// tiny scale and checks the emitted report parses back.
func TestRunFleetWritesJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.json")
	err := runFleet([]string{
		"-machines", "2", "-scenario", "rolling", "-via", "fork",
		"-n", "3", "-heap", "4MiB", "-permachine", "-json", path,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res fleet.Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(res.Machines) != 2 || res.Scenario != "rolling" || res.Aggregate.RestartNanos == 0 {
		t.Errorf("unexpected fleet report: %+v", res)
	}
}

// TestRunFleetRejectsJunk pins the fleet flag error paths.
func TestRunFleetRejectsJunk(t *testing.T) {
	for _, args := range [][]string{
		{"-scenario", "bogus"},
		{"-load", "bogus"},
		{"-via", "bogus"},
		{"-heap", "xMiB"},
		{"-machines", "0"},
		{"extra-positional"},
		// Chaos needs the failure-tolerant prefork driver; the
		// report must never claim a load that did not run.
		{"-scenario", "chaos", "-load", "buildfarm"},
	} {
		if err := runFleet(args); err == nil {
			t.Errorf("runFleet(%v) succeeded, want error", args)
		}
	}
}

// TestRunDiff drives the bench-drift gate: identical sweeps pass,
// metric drift and missing runs fail with the difference named.
func TestRunDiff(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, ms []*load.Metrics) string {
		t.Helper()
		data, err := json.MarshalIndent(ms, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := []*load.Metrics{
		{Scenario: "prefork", Strategy: "fork+exec", HeapBytes: 1 << 20, NumCPUs: 1, Requests: 4, VirtualNanos: 1000, PTECopies: 50},
		{Scenario: "prefork", Strategy: "posix_spawn", HeapBytes: 1 << 20, NumCPUs: 1, Requests: 4, VirtualNanos: 100},
	}
	old := write("old.json", base)

	if err := runDiff([]string{old, old}); err != nil {
		t.Errorf("identical files reported drift: %v", err)
	}

	drifted := []*load.Metrics{
		{Scenario: "prefork", Strategy: "fork+exec", HeapBytes: 1 << 20, NumCPUs: 1, Requests: 4, VirtualNanos: 1001, PTECopies: 50},
		{Scenario: "prefork", Strategy: "posix_spawn", HeapBytes: 1 << 20, NumCPUs: 1, Requests: 4, VirtualNanos: 100},
	}
	if err := runDiff([]string{old, write("drift.json", drifted)}); err == nil {
		t.Error("virtual_ns drift not reported")
	}

	if err := runDiff([]string{old, write("short.json", base[:1])}); err == nil {
		t.Error("missing run not reported")
	}
	if err := runDiff([]string{old}); err == nil {
		t.Error("single-argument diff succeeded")
	}
	if err := runDiff([]string{old, filepath.Join(dir, "nope.json")}); err == nil {
		t.Error("nonexistent file succeeded")
	}

	// A cell is identified by its configuration: the same config
	// twice in one file is a corrupt sweep, not two cells.
	dup := []*load.Metrics{base[0], base[0]}
	if err := runDiff([]string{old, write("dup.json", dup)}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate key error = %v, want duplicate-run failure", err)
	}
}

// TestSweepConfigsCoverEveryScenario keeps the baseline matrix honest:
// every scenario present, the §5 cells sweeping fork vs spawn vs
// builder at more than one heap size, and the SMP scenarios swept over
// multiple CPU counts.
func TestSweepConfigsCoverEveryScenario(t *testing.T) {
	cfgs := sweepConfigs(0)
	seen := map[load.Scenario]int{}
	heaps := map[uint64]bool{}
	smpCPUs := map[int]bool{}
	for _, c := range cfgs {
		seen[c.Scenario]++
		if c.Scenario == load.Prefork {
			heaps[c.HeapBytes] = true
		}
		if c.Scenario == load.SMPServer {
			smpCPUs[c.CPUs] = true
		}
	}
	for _, s := range load.Scenarios() {
		// The distributed cells and the migration cell stay out of the
		// baseline matrix on purpose: the network and migration planes
		// must be free when disabled, so BENCH_PR10.json is
		// byte-identical back through BENCH_PR7.json. Their regression
		// coverage is the metrics goldens and the net/migrate
		// determinism gates, not the bench trajectory.
		if s.Distributed() || s == load.Migrate {
			continue
		}
		if seen[s] == 0 {
			t.Errorf("sweep misses scenario %s", s)
		}
	}
	if seen[load.Prefork] < 6 || len(heaps) < 2 {
		t.Errorf("prefork cells = %d over %d heaps; want the full §5 matrix", seen[load.Prefork], len(heaps))
	}
	if len(smpCPUs) < 3 {
		t.Errorf("smpserver swept over %d CPU counts; want the 1/2/4/8 matrix", len(smpCPUs))
	}

	// A pinned sweep (the CI cpus matrix) pins every cell.
	for _, c := range sweepConfigs(4) {
		if c.CPUs != 4 {
			t.Fatalf("pinned sweep left %s at %d CPUs", c.Scenario, c.CPUs)
		}
	}
}

// TestRunDiffLoneRunSummary pins the gate's behaviour when a run
// config exists in only one file: non-zero exit AND a per-metric
// summary of the lone run, so the report shows exactly what the other
// sweep is missing instead of silently skipping the cell.
func TestRunDiffLoneRunSummary(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, ms []*load.Metrics) string {
		t.Helper()
		data, err := json.MarshalIndent(ms, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	both := []*load.Metrics{
		{Scenario: "prefork", Strategy: "fork+exec", HeapBytes: 1 << 20, NumCPUs: 1, Requests: 4, VirtualNanos: 1000, PTECopies: 50},
		{Scenario: "prefork", Strategy: "posix_spawn", HeapBytes: 1 << 20, NumCPUs: 1, Requests: 4, VirtualNanos: 77, Syscalls: 9},
	}
	old := write("old.json", both)
	short := write("short.json", both[:1])

	var buf bytes.Buffer
	prev := diffOut
	diffOut = &buf
	defer func() { diffOut = prev }()

	if err := runDiff([]string{old, short}); err == nil {
		t.Fatal("lone run did not fail the gate")
	}
	out := buf.String()
	for _, want := range []string{
		"missing: prefork/posix_spawn",
		"virtual_ns=77",
		"syscalls=9",
		"1 difference(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}

	// The added direction summarizes too.
	buf.Reset()
	if err := runDiff([]string{short, old}); err == nil {
		t.Fatal("added run did not fail the gate")
	}
	if out := buf.String(); !strings.Contains(out, "added:   prefork/posix_spawn") || !strings.Contains(out, "virtual_ns=77") {
		t.Errorf("added-run summary missing:\n%s", out)
	}
}

// TestRunTraceWritesRenderedTrace drives the trace subcommand end to
// end: the emitted file must hold the structured trace (process
// lifecycle, syscall enter/exit), and two runs of the same invocation
// must be byte-identical.
func TestRunTraceWritesRenderedTrace(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.trace")
	p2 := filepath.Join(dir, "b.trace")
	args := []string{"-via", "fork", "-heap", "64KiB", "-o"}
	if err := runTrace(append(args, p1)); err != nil {
		t.Fatal(err)
	}
	if err := runTrace(append(args, p2)); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two identical trace invocations differ")
	}
	for _, want := range []string{"proc+", "enter write", "exec", "proc-"} {
		if !strings.Contains(string(a), want) {
			t.Errorf("trace missing %q:\n%s", want, a)
		}
	}
}

// TestRunTraceRejectsJunk pins the trace flag error paths.
func TestRunTraceRejectsJunk(t *testing.T) {
	for _, args := range [][]string{
		{"-via", "bogus"},
		{"-heap", "xMiB"},
	} {
		if err := runTrace(args); err == nil {
			t.Errorf("runTrace(%v) succeeded, want error", args)
		}
	}
}

// TestRunClusterWritesJSON drives the cluster subcommand end to end at
// a small heap and checks the emitted report parses back.
func TestRunClusterWritesJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.json")
	err := runCluster([]string{"-scenario", "surge", "-heap", "4MiB", "-json", path})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep cluster.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(rep.Pools) != 2 || rep.Pools[0].Served == 0 || len(rep.Trace) == 0 {
		t.Errorf("unexpected cluster report: %+v", rep)
	}
}

// TestRunClusterRejectsJunk pins the cluster flag error paths.
func TestRunClusterRejectsJunk(t *testing.T) {
	for _, args := range [][]string{
		{"-scenario", "bogus"},
		{"-heap", "xMiB"},
		{"extra-positional"},
	} {
		if err := runCluster(args); err == nil {
			t.Errorf("runCluster(%v) succeeded, want error", args)
		}
	}
}

// TestRunDiffSummary pins -summary: still a gate failure, but one line
// per differing run naming the changed metrics, and no per-metric dump
// for lone runs.
func TestRunDiffSummary(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, ms []*load.Metrics) string {
		t.Helper()
		data, err := json.MarshalIndent(ms, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	old := write("old.json", []*load.Metrics{
		{Scenario: "prefork", Strategy: "fork+exec", HeapBytes: 1 << 20, NumCPUs: 1, Requests: 4, VirtualNanos: 1000, PTECopies: 50},
		{Scenario: "prefork", Strategy: "posix_spawn", HeapBytes: 1 << 20, NumCPUs: 1, Requests: 4, VirtualNanos: 77, Syscalls: 9},
	})
	drifted := write("new.json", []*load.Metrics{
		{Scenario: "prefork", Strategy: "fork+exec", HeapBytes: 1 << 20, NumCPUs: 1, Requests: 4, VirtualNanos: 1001, PTECopies: 51},
	})

	var buf bytes.Buffer
	prev := diffOut
	diffOut = &buf
	defer func() { diffOut = prev }()

	if err := runDiff([]string{"-summary", old, drifted}); err == nil {
		t.Fatal("summary mode swallowed the drift")
	}
	out := buf.String()
	for _, want := range []string{
		"drift:   prefork/fork+exec heap=1048576 ram=0 cpus=1 req=4: 2 metric(s): virtual_ns pte_copies",
		"missing: prefork/posix_spawn",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary output missing %q:\n%s", want, out)
		}
	}
	for _, reject := range []string{"1000 -> 1001", "syscalls=9"} {
		if strings.Contains(out, reject) {
			t.Errorf("summary output leaks detail %q:\n%s", reject, out)
		}
	}
}
