package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/fault"
	"repro/sim"
	"repro/sim/cluster"
	"repro/sim/fleet"
	"repro/sim/load"
	"repro/sim/metrics"
)

// runMetrics is the `forkbench metrics` subcommand: the retina-style
// metrics plane. It runs one deterministic scenario and renders its
// counters in the Prometheus text exposition format — per-machine
// request and packet/flow counters for a fleet of distributed cells,
// or per-pool/zone counters for a cluster scenario, plus (with
// -trace) the structured trace's event-kind counters from one traced
// command. The output is a pure function of the flags: sim/metrics
// sorts families and samples, so the same invocation always emits the
// same bytes, which is what lets CI freeze invocations as goldens.
func runMetrics(args []string) error {
	fs := flag.NewFlagSet("forkbench metrics", flag.ExitOnError)
	scenario := fs.String("scenario", "netlb", "fleet load scenario (netlb|kvshard|prefork|...)")
	via := fs.String("via", "fork", "spawn|fork|vfork|builder|emufork|eager")
	machines := fs.Int("machines", 2, "fleet size (fleet mode)")
	n := fs.Int("n", 0, "requests per machine (0 = scenario default)")
	heap := fs.String("heap", "64MiB", "per-machine server heap size")
	seed := fs.Uint64("seed", 0, "nonzero runs the fleet's chaos scenario with this fault seed")
	clusterScen := fs.String("cluster", "", "render a cluster scenario instead: surge|zoneoutage|heteropools|netsplit")
	trace := fs.Bool("trace", false, "include trace event-kind counters from one traced command")
	out := fs.String("o", "", "write the metrics to FILE (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("metrics: unexpected argument %q", fs.Arg(0))
	}
	st, err := sim.ParseStrategy(*via)
	if err != nil {
		return err
	}
	heapBytes, err := parseSize(*heap)
	if err != nil {
		return err
	}

	reg := metrics.NewRegistry()
	if *clusterScen != "" {
		cs, err := cluster.ParseScenario(*clusterScen)
		if err != nil {
			return err
		}
		spec, err := cluster.SpecFor(cs, heapBytes)
		if err != nil {
			return err
		}
		rep, err := cluster.Run(spec)
		if err != nil {
			return err
		}
		clusterMetrics(reg, cs, rep)
	} else {
		loadScen, err := load.ParseScenario(*scenario)
		if err != nil {
			return err
		}
		if *machines < 1 {
			return fmt.Errorf("metrics: -machines %d (want >= 1)", *machines)
		}
		scen := fleet.Uniform
		if *seed != 0 {
			scen = fleet.Chaos
		}
		res, err := fleet.Run(fleet.Spec{
			Machines:       *machines,
			Scenario:       scen,
			Load:           loadScen,
			Via:            st,
			Requests:       *n,
			HeapBytes:      heapBytes,
			FaultSeed:      *seed,
			KeepPerMachine: true,
		})
		if err != nil {
			return err
		}
		fleetMetrics(reg, res)
	}
	if *trace {
		if err := traceMetrics(reg, st, heapBytes); err != nil {
			return err
		}
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	_, err = io.WriteString(w, reg.Render())
	return err
}

// fleetMetrics folds a per-machine fleet result into the registry:
// request/creation counters per machine, the network plane's packet,
// byte, drop, timeout, and retry counters, and the fabric's per-flow
// breakdown. Families with nothing to report are never registered, so
// a non-distributed load renders without empty net families.
func fleetMetrics(r *metrics.Registry, res *fleet.Result) {
	r.Gauge("forkbench_run_info", "run configuration; the value is always 1").
		Set(1, "mode", "fleet", "scenario", res.Scenario, "load", res.Load, "strategy", res.Strategy)
	r.Gauge("forkbench_fleet_machines", "fleet size").Set(float64(res.Aggregate.Machines))
	req := r.Counter("forkbench_requests_total", "requests served, per machine")
	creations := r.Counter("forkbench_creations_total", "process creations, per machine")
	vns := r.Gauge("forkbench_virtual_ns", "virtual time across the machine's phases")
	for _, mm := range res.Machines {
		id := strconv.Itoa(mm.Machine)
		var vsum uint64
		for _, ph := range mm.Phases {
			vsum += ph.VirtualNanos
			req.Add(float64(ph.Requests), "machine", id)
			creations.Add(float64(ph.Creations), "machine", id)
			if ph.FailedRequests > 0 {
				r.Counter("forkbench_failed_requests_total", "requests lost to faults or exhausted retries, per machine").
					Add(float64(ph.FailedRequests), "machine", id)
			}
			if ph.NetPacketsSent > 0 {
				pkts := r.Counter("forkbench_net_packets_total", "fabric frames, per machine and direction")
				pkts.Add(float64(ph.NetPacketsSent), "machine", id, "dir", "sent")
				pkts.Add(float64(ph.NetPacketsRecv), "machine", id, "dir", "recv")
				nbytes := r.Counter("forkbench_net_bytes_total", "fabric payload bytes, per machine and direction")
				nbytes.Add(float64(ph.NetBytesSent), "machine", id, "dir", "sent")
				nbytes.Add(float64(ph.NetBytesRecv), "machine", id, "dir", "recv")
			}
			if ph.NetDrops > 0 {
				r.Counter("forkbench_net_drops_total", "frames eaten by the fault schedule, per machine").
					Add(float64(ph.NetDrops), "machine", id)
			}
			if ph.NetTimeouts > 0 {
				r.Counter("forkbench_net_timeouts_total", "client attempts that outlived their deadline, per machine").
					Add(float64(ph.NetTimeouts), "machine", id)
			}
			if ph.NetRetries > 0 {
				r.Counter("forkbench_net_retries_total", "timed-out attempts that were retried, per machine").
					Add(float64(ph.NetRetries), "machine", id)
			}
			for _, fl := range ph.NetFlows {
				kv := []string{
					"machine", id,
					"src", strconv.Itoa(fl.Src),
					"dst", strconv.Itoa(fl.Dst),
					"flow", fl.Flow,
				}
				r.Counter("forkbench_net_flow_packets_total", "fabric frames, per directed flow").
					Add(float64(fl.Packets), kv...)
				r.Counter("forkbench_net_flow_bytes_total", "fabric payload bytes, per directed flow").
					Add(float64(fl.Bytes), kv...)
				if fl.Drops > 0 {
					r.Counter("forkbench_net_flow_drops_total", "dropped frames, per directed flow").
						Add(float64(fl.Drops), kv...)
				}
			}
		}
		vns.Set(float64(vsum), "machine", id)
	}
}

// clusterMetrics folds a cluster report into the registry: per-pool
// serving and population counters, scale-out events per (pool, zone),
// and the warm-up bill the scale-outs paid.
func clusterMetrics(r *metrics.Registry, scen cluster.Scenario, rep *cluster.Report) {
	r.Gauge("forkbench_run_info", "run configuration; the value is always 1").
		Set(1, "mode", "cluster", "scenario", string(scen))
	r.Gauge("forkbench_cluster_zones", "availability zones").Set(float64(rep.Zones))
	served := r.Counter("forkbench_cluster_served_total", "requests served, per pool")
	sloMet := r.Counter("forkbench_cluster_slo_met_total", "served requests inside the SLO, per pool")
	booted := r.Gauge("forkbench_cluster_machines_booted", "machines the pool ever ran")
	peak := r.Gauge("forkbench_cluster_peak_machines", "pool population high-water mark")
	warm := r.Counter("forkbench_cluster_warmup_pte_copies_total", "PTE copies warming the pool's machines")
	for _, p := range rep.Pools {
		served.Add(float64(p.Served), "pool", p.Pool)
		sloMet.Add(float64(p.SLOMet), "pool", p.Pool)
		booted.Set(float64(p.MachinesBooted), "pool", p.Pool)
		peak.Set(float64(p.PeakMachines), "pool", p.Pool)
		warm.Add(float64(p.WarmupPTECopies), "pool", p.Pool)
		if p.Failed > 0 {
			r.Counter("forkbench_cluster_failed_total", "requests lost, per pool").
				Add(float64(p.Failed), "pool", p.Pool)
		}
		if p.MachinesKilled > 0 {
			r.Counter("forkbench_cluster_machines_killed_total", "machines the fault schedule killed, per pool").
				Add(float64(p.MachinesKilled), "pool", p.Pool)
		}
		if len(p.ScaleOuts) > 0 {
			latency := r.Gauge("forkbench_cluster_scale_out_latency_ns", "scale-out latency, per pool and statistic")
			latency.Set(float64(p.MeanScaleOutNanos), "pool", p.Pool, "stat", "mean")
			latency.Set(float64(p.MaxScaleOutNanos), "pool", p.Pool, "stat", "max")
			for _, so := range p.ScaleOuts {
				r.Counter("forkbench_cluster_scale_outs_total", "scale-out events, per pool and zone").
					Add(1, "pool", p.Pool, "zone", strconv.Itoa(so.Zone))
			}
		}
	}
}

// traceMetrics runs one traced command (echo through the selected
// strategy from a dirty 1 MiB parent, like `forkbench trace`) and
// counts its structured trace events by kind.
func traceMetrics(r *metrics.Registry, st sim.Strategy, heapBytes uint64) error {
	if heapBytes > 1<<20 {
		// The trace section is a fixed, cheap probe: a big -heap
		// configures the fleet machines, not this command.
		heapBytes = 1 << 20
	}
	sys, err := sim.NewSystem(sim.WithTrace())
	if err != nil {
		return err
	}
	if err := sys.DirtyHost(heapBytes, false); err != nil {
		return err
	}
	cmd := sys.Command("echo", "hello", "road").Via(st)
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Run(); err != nil {
		return err
	}
	ev := r.Counter("forkbench_trace_events_total", "structured trace events from one traced command, by kind")
	for _, e := range sys.Trace().Events() {
		ev.Add(1, "kind", eventKindName(e.Kind), "strategy", st.String())
	}
	return nil
}

// eventKindName renders a trace event kind as a stable label value.
func eventKindName(k fault.EventKind) string {
	switch k {
	case fault.EvSysEnter:
		return "sys_enter"
	case fault.EvSysExit:
		return "sys_exit"
	case fault.EvSched:
		return "sched"
	case fault.EvShootdown:
		return "tlb_shootdown"
	case fault.EvFault:
		return "fault_inject"
	case fault.EvProcNew:
		return "proc_new"
	case fault.EvProcExit:
		return "proc_exit"
	case fault.EvExec:
		return "exec"
	case fault.EvNetSend:
		return "net_send"
	case fault.EvNetRecv:
		return "net_recv"
	}
	return fmt.Sprintf("event_%d", int(k))
}
