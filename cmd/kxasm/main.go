// Command kxasm assembles a source file in the simulator's assembly
// dialect (see internal/asm) into a KXI executable image runnable by
// forkrun.
//
// Usage:
//
//	kxasm [-o out.kxi] [-runtime] [-d] file.kxs
//
//	-o FILE     output path (default: input with .kxi extension)
//	-runtime    append the ulib runtime library (puts, mutexes, ...)
//	-d          disassemble the text segment to stdout instead
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/ulib"
)

func main() {
	out := flag.String("o", "", "output file")
	withRuntime := flag.Bool("runtime", false, "append the ulib runtime")
	disasm := flag.Bool("d", false, "disassemble instead of writing the image")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: kxasm [-o out.kxi] [-runtime] [-d] file.kxs")
		os.Exit(2)
	}
	in := flag.Arg(0)
	src, err := os.ReadFile(in)
	if err != nil {
		fatal(err)
	}
	text := string(src)
	if *withRuntime {
		text += ulib.Runtime
	}
	im, err := asm.Assemble(text)
	if err != nil {
		fatal(err)
	}
	if *disasm {
		for off := 0; off+isa.InstrSize <= len(im.Text); off += isa.InstrSize {
			in := isa.Decode(im.Text[off : off+isa.InstrSize])
			marker := "  "
			if uint64(off)+im.TextBase == im.Entry {
				marker = "=>"
			}
			fmt.Printf("%s %#08x: %s\n", marker, im.TextBase+uint64(off), in)
		}
		fmt.Printf("; text=%d data=%d bss=%d stack=%d entry=%#x\n",
			len(im.Text), len(im.Data), im.BssSize, im.StackSize, im.Entry)
		return
	}
	dst := *out
	if dst == "" {
		dst = strings.TrimSuffix(in, ".kxs") + ".kxi"
	}
	if err := os.WriteFile(dst, im.Encode(), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: text=%d data=%d bss=%d entry=%#x\n", dst, len(im.Text), len(im.Data), im.BssSize, im.Entry)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kxasm:", err)
	os.Exit(1)
}
