package vfs

import (
	"fmt"

	"repro/internal/errno"
)

// OpenFlags mirror the POSIX open(2) flags the simulator supports.
type OpenFlags uint32

// Open flags.
const (
	ORdOnly    OpenFlags = 0x0
	OWrOnly    OpenFlags = 0x1
	ORdWr      OpenFlags = 0x2
	accessMask OpenFlags = 0x3

	OCreate  OpenFlags = 0x40
	OTrunc   OpenFlags = 0x200
	OAppend  OpenFlags = 0x400
	OCloexec OpenFlags = 0x80000
)

func (f OpenFlags) readable() bool { return f&accessMask != OWrOnly }
func (f OpenFlags) writable() bool { return f&accessMask != ORdOnly }

// ErrWouldBlock is the sentinel a pipe operation returns when it must
// wait; the kernel's syscall layer blocks the calling thread and
// retries. It is distinct from errno.EAGAIN so that a future
// O_NONBLOCK cannot be confused with the internal sentinel.
var ErrWouldBlock = fmt.Errorf("vfs: operation would block")

// OpenFile is an open file description — the object POSIX descriptors
// point at. It is shared by dup() and across fork(), which is why the
// offset lives here and not in the FD table.
type OpenFile struct {
	ino   *Inode
	pipe  *Pipe
	pipeW bool // this description is the pipe's write end
	flags OpenFlags
	pos   uint64
	refs  int
}

// NewOpenFile opens ino with flags (the FS layer has already resolved
// creation/truncation).
func NewOpenFile(ino *Inode, flags OpenFlags) *OpenFile {
	return &OpenFile{ino: ino, flags: flags, refs: 1}
}

// Inode returns the description's inode (nil for pipes).
func (of *OpenFile) Inode() *Inode { return of.ino }

// Pipe returns the pipe this description points at, or nil.
func (of *OpenFile) Pipe() *Pipe { return of.pipe }

// IsPipeWriter reports whether this is a pipe's write end.
func (of *OpenFile) IsPipeWriter() bool { return of.pipe != nil && of.pipeW }

// Flags returns the open flags.
func (of *OpenFile) Flags() OpenFlags { return of.flags }

// Pos returns the file offset (shared across dup/fork).
func (of *OpenFile) Pos() uint64 { return of.pos }

// Refs reports the descriptor references held on this description.
func (of *OpenFile) Refs() int { return of.refs }

// Retain adds a descriptor reference (dup, fork, spawn inheritance).
func (of *OpenFile) Retain() *OpenFile {
	of.refs++
	return of
}

// Release drops a reference; the last release closes pipe ends.
func (of *OpenFile) Release() {
	of.refs--
	if of.refs > 0 {
		return
	}
	if of.refs < 0 {
		panic("vfs: over-release of open file")
	}
	if of.pipe != nil {
		if of.pipeW {
			of.pipe.writers--
		} else {
			of.pipe.readers--
		}
	}
}

// Read transfers up to len(buf) bytes from the description, advancing
// the shared offset. Pipes return ErrWouldBlock when empty but still
// writable.
func (of *OpenFile) Read(buf []byte) (int, error) {
	if !of.flags.readable() {
		return 0, errno.EBADF
	}
	if of.pipe != nil {
		return of.pipe.read(buf)
	}
	switch of.ino.Type {
	case TypeDevice:
		return of.ino.dev.ReadDev(buf)
	case TypeDir:
		return 0, errno.EISDIR
	}
	if of.pos >= uint64(len(of.ino.data)) {
		return 0, nil // EOF
	}
	n := copy(buf, of.ino.data[of.pos:])
	of.pos += uint64(n)
	return n, nil
}

// Write transfers data, advancing the shared offset. Pipe writes to a
// full pipe return ErrWouldBlock; writes with no readers return EPIPE
// (the kernel also raises SIGPIPE).
func (of *OpenFile) Write(data []byte) (int, error) {
	if !of.flags.writable() {
		return 0, errno.EBADF
	}
	if of.pipe != nil {
		return of.pipe.write(data)
	}
	switch of.ino.Type {
	case TypeDevice:
		return of.ino.dev.WriteDev(data)
	case TypeDir:
		return 0, errno.EISDIR
	}
	if of.flags&OAppend != 0 {
		of.pos = uint64(len(of.ino.data))
	}
	end := of.pos + uint64(len(data))
	if end > uint64(len(of.ino.data)) {
		nd := make([]byte, end)
		copy(nd, of.ino.data)
		of.ino.data = nd
		of.ino.shared = false
	} else if of.ino.shared {
		// First in-place write to a template-shared file: copy the
		// bytes out so the template (and sibling clones) keep theirs.
		of.ino.data = append([]byte(nil), of.ino.data...)
		of.ino.shared = false
	}
	copy(of.ino.data[of.pos:], data)
	of.pos = end
	return len(data), nil
}

// Seek whence values.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Seek repositions the shared offset.
func (of *OpenFile) Seek(off int64, whence int) (int64, error) {
	if of.pipe != nil || (of.ino != nil && of.ino.Type == TypeDevice) {
		return 0, errno.ESPIPE
	}
	var base int64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = int64(of.pos)
	case SeekEnd:
		base = int64(len(of.ino.data))
	default:
		return 0, errno.EINVAL
	}
	np := base + off
	if np < 0 {
		return 0, errno.EINVAL
	}
	of.pos = uint64(np)
	return np, nil
}

// PipeCapacity is the simulated pipe buffer size (Linux default 64 KiB).
const PipeCapacity = 64 * 1024

// Pipe is a unidirectional byte channel. The kernel attaches wait
// queues to ReadQ/WriteQ; the VFS layer only reports would-block.
type Pipe struct {
	buf     []byte // ring storage
	start   int
	length  int
	readers int
	writers int

	// ReadQ and WriteQ are kernel-owned wait queues (opaque here to
	// keep the dependency direction vfs → kernel broken).
	ReadQ, WriteQ any
}

// NewPipe creates a pipe and its two descriptions.
func NewPipe() (r, w *OpenFile) {
	p := &Pipe{buf: make([]byte, PipeCapacity), readers: 1, writers: 1}
	r = &OpenFile{pipe: p, flags: ORdOnly, refs: 1}
	w = &OpenFile{pipe: p, pipeW: true, flags: OWrOnly, refs: 1}
	return r, w
}

// Len reports the bytes buffered in the pipe.
func (p *Pipe) Len() int { return p.length }

// Readers and Writers report the live end counts.
func (p *Pipe) Readers() int { return p.readers }

// Writers reports the live write-end count.
func (p *Pipe) Writers() int { return p.writers }

func (p *Pipe) read(buf []byte) (int, error) {
	if p.length == 0 {
		if p.writers == 0 {
			return 0, nil // EOF
		}
		return 0, ErrWouldBlock
	}
	n := len(buf)
	if n > p.length {
		n = p.length
	}
	for i := 0; i < n; i++ {
		buf[i] = p.buf[(p.start+i)%len(p.buf)]
	}
	p.start = (p.start + n) % len(p.buf)
	p.length -= n
	return n, nil
}

func (p *Pipe) write(data []byte) (int, error) {
	if p.readers == 0 {
		return 0, errno.EPIPE
	}
	space := len(p.buf) - p.length
	if space == 0 {
		return 0, ErrWouldBlock
	}
	n := len(data)
	if n > space {
		n = space
	}
	for i := 0; i < n; i++ {
		p.buf[(p.start+p.length+i)%len(p.buf)] = data[i]
	}
	p.length += n
	return n, nil
}

// MaxFDs is the per-process descriptor limit (RLIMIT_NOFILE).
const MaxFDs = 256

type fdSlot struct {
	of      *OpenFile
	cloexec bool
}

// FDTable is a per-process descriptor table.
type FDTable struct {
	slots []fdSlot
}

// NewFDTable returns an empty table.
func NewFDTable() *FDTable { return &FDTable{} }

// Get resolves fd to its description.
func (t *FDTable) Get(fd int) (*OpenFile, error) {
	if fd < 0 || fd >= len(t.slots) || t.slots[fd].of == nil {
		return nil, errno.EBADF
	}
	return t.slots[fd].of, nil
}

// Cloexec reports fd's close-on-exec flag.
func (t *FDTable) Cloexec(fd int) (bool, error) {
	if _, err := t.Get(fd); err != nil {
		return false, err
	}
	return t.slots[fd].cloexec, nil
}

// SetCloexec updates fd's close-on-exec flag.
func (t *FDTable) SetCloexec(fd int, v bool) error {
	if _, err := t.Get(fd); err != nil {
		return err
	}
	t.slots[fd].cloexec = v
	return nil
}

// Install places of at the lowest free descriptor ≥ min and returns
// it. The description's reference is consumed (callers Retain first if
// they keep their own reference).
func (t *FDTable) Install(of *OpenFile, cloexec bool, min int) (int, error) {
	if min < 0 {
		min = 0
	}
	for fd := min; fd < MaxFDs; fd++ {
		for fd >= len(t.slots) {
			t.slots = append(t.slots, fdSlot{})
		}
		if t.slots[fd].of == nil {
			t.slots[fd] = fdSlot{of: of, cloexec: cloexec}
			return fd, nil
		}
	}
	return -1, errno.EMFILE
}

// InstallAt places of exactly at fd, closing whatever was there
// (dup2 semantics).
func (t *FDTable) InstallAt(of *OpenFile, cloexec bool, fd int) error {
	if fd < 0 || fd >= MaxFDs {
		return errno.EBADF
	}
	for fd >= len(t.slots) {
		t.slots = append(t.slots, fdSlot{})
	}
	if old := t.slots[fd].of; old != nil {
		old.Release()
	}
	t.slots[fd] = fdSlot{of: of, cloexec: cloexec}
	return nil
}

// Dup duplicates oldfd to the lowest free descriptor ≥ min. The new
// descriptor shares the description (and thus the offset) and has
// close-on-exec clear, per POSIX.
func (t *FDTable) Dup(oldfd, min int) (int, error) {
	of, err := t.Get(oldfd)
	if err != nil {
		return -1, err
	}
	return t.Install(of.Retain(), false, min)
}

// Dup2 duplicates oldfd onto newfd (closing newfd first if open). As
// in POSIX, dup2(fd, fd) is a no-op returning fd.
func (t *FDTable) Dup2(oldfd, newfd int) (int, error) {
	of, err := t.Get(oldfd)
	if err != nil {
		return -1, err
	}
	if oldfd == newfd {
		return newfd, nil
	}
	if err := t.InstallAt(of.Retain(), false, newfd); err != nil {
		of.Release()
		return -1, err
	}
	return newfd, nil
}

// Close releases fd.
func (t *FDTable) Close(fd int) error {
	of, err := t.Get(fd)
	if err != nil {
		return err
	}
	of.Release()
	t.slots[fd] = fdSlot{}
	return nil
}

// CloseAll releases every descriptor (process exit).
func (t *FDTable) CloseAll() {
	for fd := range t.slots {
		if t.slots[fd].of != nil {
			t.slots[fd].of.Release()
			t.slots[fd] = fdSlot{}
		}
	}
}

// Clone duplicates the whole table for fork: every open slot gains a
// reference, and close-on-exec flags are preserved. costPerFD is
// charged by the caller per slot (the meter lives kernel-side).
func (t *FDTable) Clone() (*FDTable, int) {
	nt := &FDTable{slots: make([]fdSlot, len(t.slots))}
	n := 0
	for fd, s := range t.slots {
		if s.of != nil {
			nt.slots[fd] = fdSlot{of: s.of.Retain(), cloexec: s.cloexec}
			n++
		}
	}
	return nt, n
}

// DoCloexec closes every descriptor marked close-on-exec (the exec
// transition).
func (t *FDTable) DoCloexec() {
	for fd := range t.slots {
		if t.slots[fd].of != nil && t.slots[fd].cloexec {
			t.slots[fd].of.Release()
			t.slots[fd] = fdSlot{}
		}
	}
}

// OpenCount reports the number of open descriptors.
func (t *FDTable) OpenCount() int {
	n := 0
	for _, s := range t.slots {
		if s.of != nil {
			n++
		}
	}
	return n
}

// MaxFD returns the highest open descriptor, or -1.
func (t *FDTable) MaxFD() int {
	for fd := len(t.slots) - 1; fd >= 0; fd-- {
		if t.slots[fd].of != nil {
			return fd
		}
	}
	return -1
}
