package vfs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/errno"
)

func TestPathResolution(t *testing.T) {
	fs := NewFS()
	if _, err := fs.MkdirAll("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteFile("/a/b/c/file", []byte("data")); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{
		"/a/b/c/file",
		"/a/./b/../b/c/file",
		"//a//b//c//file",
	} {
		ino, err := fs.Resolve(nil, path)
		if err != nil {
			t.Errorf("Resolve(%q): %v", path, err)
			continue
		}
		if string(ino.Data()) != "data" {
			t.Errorf("Resolve(%q) wrong inode", path)
		}
	}
	// Relative resolution.
	dir, _ := fs.Resolve(nil, "/a/b")
	ino, err := fs.Resolve(dir, "c/file")
	if err != nil || string(ino.Data()) != "data" {
		t.Errorf("relative resolve failed: %v", err)
	}
	// ".." above root stays at root.
	r, err := fs.Resolve(nil, "/../../..")
	if err != nil || r != fs.Root() {
		t.Errorf("escaping root: %v", err)
	}
	// Errors.
	if _, err := fs.Resolve(nil, "/a/missing"); !errors.Is(err, errno.ENOENT) {
		t.Errorf("missing: %v", err)
	}
	if _, err := fs.Resolve(nil, "/a/b/c/file/x"); !errors.Is(err, errno.ENOTDIR) {
		t.Errorf("through file: %v", err)
	}
}

func TestCreateTruncatesAndRemove(t *testing.T) {
	fs := NewFS()
	ino, err := fs.Create(nil, "/f")
	if err != nil {
		t.Fatal(err)
	}
	ino.SetData([]byte("old"))
	again, err := fs.Create(nil, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if again != ino || len(again.Data()) != 0 {
		t.Error("create did not truncate in place")
	}
	if err := fs.Remove(nil, "/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Resolve(nil, "/f"); !errors.Is(err, errno.ENOENT) {
		t.Errorf("after remove: %v", err)
	}
	// Non-empty dir refuses removal.
	fs.MkdirAll("/d")
	fs.WriteFile("/d/x", nil)
	if err := fs.Remove(nil, "/d"); !errors.Is(err, errno.ENOTEMPTY) {
		t.Errorf("rmdir non-empty: %v", err)
	}
}

func TestReadDirSorted(t *testing.T) {
	fs := NewFS()
	fs.MkdirAll("/dir")
	for _, n := range []string{"zeta", "alpha", "mid"} {
		fs.WriteFile("/dir/"+n, nil)
	}
	names, err := fs.ReadDir(nil, "/dir")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v", names)
		}
	}
}

func TestOpenFileReadWriteSeek(t *testing.T) {
	fs := NewFS()
	ino, _ := fs.WriteFile("/f", []byte("hello world"))
	of := NewOpenFile(ino, ORdWr)
	buf := make([]byte, 5)
	n, err := of.Read(buf)
	if n != 5 || err != nil || string(buf) != "hello" {
		t.Fatalf("read: %d %v %q", n, err, buf)
	}
	if of.Pos() != 5 {
		t.Errorf("pos = %d", of.Pos())
	}
	if _, err := of.Write([]byte("!!!!!!")); err != nil {
		t.Fatal(err)
	}
	if string(ino.Data()) != "hello!!!!!!" {
		t.Errorf("data = %q", ino.Data())
	}
	if pos, err := of.Seek(-6, SeekEnd); err != nil || pos != 5 {
		t.Errorf("seek: %d %v", pos, err)
	}
	// Append mode always writes at the end.
	ap := NewOpenFile(ino, OWrOnly|OAppend)
	ap.Write([]byte("+"))
	if string(ino.Data()) != "hello!!!!!!+" {
		t.Errorf("append: %q", ino.Data())
	}
	// Access-mode enforcement.
	ro := NewOpenFile(ino, ORdOnly)
	if _, err := ro.Write([]byte("x")); !errors.Is(err, errno.EBADF) {
		t.Errorf("write on O_RDONLY: %v", err)
	}
	wo := NewOpenFile(ino, OWrOnly)
	if _, err := wo.Read(buf); !errors.Is(err, errno.EBADF) {
		t.Errorf("read on O_WRONLY: %v", err)
	}
}

func TestSharedOffsetViaRetain(t *testing.T) {
	fs := NewFS()
	ino, _ := fs.WriteFile("/f", []byte("abcdef"))
	of := NewOpenFile(ino, ORdOnly)
	dup := of.Retain()
	buf := make([]byte, 2)
	of.Read(buf)
	dup.Read(buf)
	if string(buf) != "cd" {
		t.Errorf("dup did not share offset: %q", buf)
	}
	if of.Refs() != 2 {
		t.Errorf("refs = %d", of.Refs())
	}
	dup.Release()
	of.Release()
}

func TestPipeBasics(t *testing.T) {
	r, w := NewPipe()
	if _, err := w.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	n, err := r.Read(buf)
	if n != 4 || err != nil || string(buf[:4]) != "ping" {
		t.Fatalf("pipe read: %d %v %q", n, err, buf[:n])
	}
	// Empty + writer alive → would block.
	if _, err := r.Read(buf); err != ErrWouldBlock {
		t.Errorf("empty pipe: %v, want would-block", err)
	}
	// Writer closed → EOF.
	w.Release()
	if n, err := r.Read(buf); n != 0 || err != nil {
		t.Errorf("EOF: %d %v", n, err)
	}
	// Reader closed → EPIPE.
	r2, w2 := NewPipe()
	r2.Release()
	if _, err := w2.Write([]byte("x")); !errors.Is(err, errno.EPIPE) {
		t.Errorf("write to readerless pipe: %v", err)
	}
}

func TestPipeCapacityAndWrap(t *testing.T) {
	r, w := NewPipe()
	big := bytes.Repeat([]byte{7}, PipeCapacity+100)
	n, err := w.Write(big)
	if err != nil || n != PipeCapacity {
		t.Fatalf("fill: %d %v", n, err)
	}
	if _, err := w.Write([]byte("x")); err != ErrWouldBlock {
		t.Errorf("full pipe: %v", err)
	}
	// Drain half, refill, verify FIFO across the ring seam.
	half := make([]byte, PipeCapacity/2)
	r.Read(half)
	if _, err := w.Write(bytes.Repeat([]byte{9}, 100)); err != nil {
		t.Fatal(err)
	}
	rest := make([]byte, PipeCapacity/2+100)
	got := 0
	for got < len(rest) {
		n, err := r.Read(rest[got:])
		if err != nil || n == 0 {
			t.Fatalf("drain: %d %v", n, err)
		}
		got += n
	}
	for i := 0; i < PipeCapacity/2; i++ {
		if rest[i] != 7 {
			t.Fatalf("FIFO broken at %d: %d", i, rest[i])
		}
	}
	for i := PipeCapacity / 2; i < len(rest); i++ {
		if rest[i] != 9 {
			t.Fatalf("FIFO broken at %d: %d", i, rest[i])
		}
	}
}

func TestFDTable(t *testing.T) {
	fs := NewFS()
	ino, _ := fs.WriteFile("/f", []byte("x"))
	tbl := NewFDTable()
	fd, err := tbl.Install(NewOpenFile(ino, ORdOnly), false, 0)
	if err != nil || fd != 0 {
		t.Fatalf("install: %d %v", fd, err)
	}
	fd2, _ := tbl.Install(NewOpenFile(ino, ORdOnly), false, 0)
	if fd2 != 1 {
		t.Fatalf("second fd = %d", fd2)
	}
	tbl.SetCloexec(1, true)
	// Dup shares the description and clears cloexec.
	d, err := tbl.Dup(1, 10)
	if err != nil || d != 10 {
		t.Fatalf("dup: %d %v", d, err)
	}
	if ce, _ := tbl.Cloexec(10); ce {
		t.Error("dup kept cloexec")
	}
	of1, _ := tbl.Get(1)
	of10, _ := tbl.Get(10)
	if of1 != of10 {
		t.Error("dup did not share description")
	}
	// Dup2 onto an open slot closes it.
	if _, err := tbl.Dup2(0, 10); err != nil {
		t.Fatal(err)
	}
	if of10b, _ := tbl.Get(10); of10b == of10 {
		t.Error("dup2 did not replace")
	}
	// dup2(fd, fd) is a no-op.
	if n, err := tbl.Dup2(0, 0); n != 0 || err != nil {
		t.Errorf("self dup2: %d %v", n, err)
	}
	// DoCloexec closes only marked slots (fd 1 is marked; 0 and 10
	// are not).
	tbl.DoCloexec()
	if _, err := tbl.Get(1); !errors.Is(err, errno.EBADF) {
		t.Error("cloexec slot survived")
	}
	if _, err := tbl.Get(0); err != nil {
		t.Error("cloexec closed an unmarked slot")
	}
	// Clone preserves slots and flags.
	tbl.SetCloexec(0, true)
	cl, n := tbl.Clone()
	if n != tbl.OpenCount() {
		t.Errorf("clone count = %d, want %d", n, tbl.OpenCount())
	}
	if ce, _ := cl.Cloexec(0); !ce {
		t.Error("clone lost cloexec")
	}
	cl.CloseAll()
	tbl.CloseAll()
}

func TestFDLimit(t *testing.T) {
	fs := NewFS()
	ino, _ := fs.WriteFile("/f", nil)
	tbl := NewFDTable()
	for i := 0; i < MaxFDs; i++ {
		if _, err := tbl.Install(NewOpenFile(ino, ORdOnly), false, 0); err != nil {
			t.Fatalf("install %d: %v", i, err)
		}
	}
	if _, err := tbl.Install(NewOpenFile(ino, ORdOnly), false, 0); !errors.Is(err, errno.EMFILE) {
		t.Errorf("over-limit install: %v, want EMFILE", err)
	}
}

func TestDevices(t *testing.T) {
	fs := NewFS()
	var out bytes.Buffer
	if _, err := fs.MkdirAll("/dev"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Mknod("/dev/null", NullDevice{}); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Mknod("/dev/console", &ConsoleDevice{Out: &out, In: bytes.NewBufferString("input")}); err != nil {
		t.Fatal(err)
	}
	null, _ := fs.Resolve(nil, "/dev/null")
	con, _ := fs.Resolve(nil, "/dev/console")

	nf := NewOpenFile(null, ORdWr)
	if n, err := nf.Write([]byte("discard")); n != 7 || err != nil {
		t.Errorf("null write: %d %v", n, err)
	}
	buf := make([]byte, 4)
	if n, _ := nf.Read(buf); n != 0 {
		t.Errorf("null read: %d", n)
	}
	cf := NewOpenFile(con, ORdWr)
	cf.Write([]byte("hello"))
	if out.String() != "hello" {
		t.Errorf("console out: %q", out.String())
	}
	n, err := cf.Read(buf)
	if err != nil || string(buf[:n]) != "inpu" {
		t.Errorf("console in: %q %v", buf[:n], err)
	}
	// Seeking a device is ESPIPE.
	if _, err := cf.Seek(0, SeekSet); !errors.Is(err, errno.ESPIPE) {
		t.Errorf("device seek: %v", err)
	}
}

// TestQuickPipeFIFO: any chunking of writes and reads preserves byte
// order exactly.
func TestQuickPipeFIFO(t *testing.T) {
	f := func(chunks [][]byte) bool {
		r, w := NewPipe()
		var wrote, read bytes.Buffer
		for _, c := range chunks {
			if len(c) == 0 {
				continue
			}
			n, err := w.Write(c)
			if err == ErrWouldBlock {
				n = 0
			} else if err != nil {
				return false
			}
			wrote.Write(c[:n])
			// Drain a bit to make room.
			buf := make([]byte, 1+len(c)/2)
			m, err := r.Read(buf)
			if err != nil && err != ErrWouldBlock {
				return false
			}
			read.Write(buf[:m])
		}
		for {
			buf := make([]byte, 4096)
			m, err := r.Read(buf)
			if err == ErrWouldBlock || m == 0 {
				break
			}
			read.Write(buf[:m])
		}
		return bytes.Equal(wrote.Bytes(), read.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickFDTableInvariants: random install/close/dup keeps OpenCount
// and refcounts consistent.
func TestQuickFDTableInvariants(t *testing.T) {
	fs := NewFS()
	ino, _ := fs.WriteFile("/f", nil)
	f := func(ops []uint8) bool {
		tbl := NewFDTable()
		open := 0
		for _, op := range ops {
			switch op % 3 {
			case 0:
				if _, err := tbl.Install(NewOpenFile(ino, ORdOnly), op%2 == 0, 0); err == nil {
					open++
				}
			case 1:
				if fd := tbl.MaxFD(); fd >= 0 {
					if err := tbl.Close(fd); err == nil {
						open--
					}
				}
			case 2:
				if fd := tbl.MaxFD(); fd >= 0 {
					if _, err := tbl.Dup(fd, 0); err == nil {
						open++
					}
				}
			}
			if tbl.OpenCount() != open {
				return false
			}
		}
		tbl.CloseAll()
		return tbl.OpenCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
