package vfs

import "io"

// NullDevice is /dev/null: reads return EOF, writes vanish.
type NullDevice struct{}

// ReadDev implements Device.
func (NullDevice) ReadDev(buf []byte) (int, error) { return 0, nil }

// WriteDev implements Device.
func (NullDevice) WriteDev(data []byte) (int, error) { return len(data), nil }

// ConsoleDevice is /dev/console: writes go to Out (typically the host
// process's stdout or a capture buffer), reads drain In. A nil In
// reads as EOF; a nil Out discards.
type ConsoleDevice struct {
	In  io.Reader
	Out io.Writer
}

// ReadDev implements Device.
func (c *ConsoleDevice) ReadDev(buf []byte) (int, error) {
	if c.In == nil {
		return 0, nil
	}
	n, err := c.In.Read(buf)
	if err == io.EOF {
		err = nil
	}
	return n, err
}

// WriteDev implements Device.
func (c *ConsoleDevice) WriteDev(data []byte) (int, error) {
	if c.Out == nil {
		return len(data), nil
	}
	return c.Out.Write(data)
}
