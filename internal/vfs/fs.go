// Package vfs implements the simulator's in-memory filesystem and
// descriptor layer: inodes and path resolution, open-file descriptions
// with shared offsets (the fork-inherited kind), per-process file
// descriptor tables with O_CLOEXEC, pipes, and character devices.
//
// The descriptor layer is deliberately faithful to POSIX inheritance
// semantics because a large part of "A fork() in the road" §4 is about
// what fork implicitly copies: descriptor *numbers* are per-process,
// but the offset lives in the shared description, so a forked child
// seeking a file moves the parent's position too. Tests under this
// package demonstrate exactly that.
package vfs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/errno"
)

// InodeType distinguishes filesystem object kinds.
type InodeType uint8

// Inode types.
const (
	TypeFile InodeType = iota
	TypeDir
	TypeDevice
)

func (t InodeType) String() string {
	switch t {
	case TypeFile:
		return "file"
	case TypeDir:
		return "dir"
	case TypeDevice:
		return "dev"
	}
	return fmt.Sprintf("inode(%d)", int(t))
}

// Device is a character device backing a TypeDevice inode.
type Device interface {
	// ReadDev fills buf; n==0 with nil error means end of input.
	ReadDev(buf []byte) (int, error)
	// WriteDev consumes data.
	WriteDev(data []byte) (int, error)
}

// Inode is one filesystem object.
type Inode struct {
	Type InodeType
	data []byte // TypeFile
	// shared marks data as host-COW-aliased by a template or clone
	// machine (see Cloner): the bytes must be copied out before the
	// first in-place write. Purely host-side bookkeeping.
	shared   bool
	children map[string]*Inode // TypeDir
	parent   *Inode            // TypeDir: ".."
	dev      Device            // TypeDevice
	nlink    int
}

// Size reports a file's length (0 for non-files).
func (ino *Inode) Size() uint64 { return uint64(len(ino.data)) }

// Data returns a file's contents (not a copy; callers must not mutate).
func (ino *Inode) Data() []byte { return ino.data }

// SetData replaces a file's contents (used by mkfs-style setup code).
func (ino *Inode) SetData(b []byte) {
	if ino.Type != TypeFile {
		panic("vfs: SetData on non-file")
	}
	ino.data = b
	ino.shared = false
}

// ReadAt implements addrspace.Backing-style reads with zero-fill past
// EOF, so executable images can be demand-paged straight from a file.
func (ino *Inode) ReadAt(off uint64, buf []byte) {
	for i := range buf {
		buf[i] = 0
	}
	if off >= uint64(len(ino.data)) {
		return
	}
	copy(buf, ino.data[off:])
}

// FS is the filesystem: a tree of inodes rooted at "/".
type FS struct {
	root *Inode
}

// NewFS creates an empty filesystem containing only "/".
func NewFS() *FS {
	root := &Inode{Type: TypeDir, children: map[string]*Inode{}, nlink: 1}
	root.parent = root
	return &FS{root: root}
}

// Root returns the root directory inode.
func (fs *FS) Root() *Inode { return fs.root }

// split breaks path into components, handling ".", "..", and empties
// lazily during walk (".." needs the walk context).
func split(path string) []string {
	parts := strings.Split(path, "/")
	out := parts[:0]
	for _, p := range parts {
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Resolve walks path from cwd (used for relative paths; pass nil for
// "/") and returns the inode.
func (fs *FS) Resolve(cwd *Inode, path string) (*Inode, error) {
	ino, _, _, err := fs.resolveParent(cwd, path, false)
	return ino, err
}

// resolveParent walks path and returns (target, parentDir, lastName).
// If wantParent is true the target may be absent (nil) as long as the
// parent exists — the create path.
func (fs *FS) resolveParent(cwd *Inode, path string, wantParent bool) (*Inode, *Inode, string, error) {
	if path == "" {
		return nil, nil, "", errno.ENOENT
	}
	cur := cwd
	if strings.HasPrefix(path, "/") || cur == nil {
		cur = fs.root
	}
	parts := split(path)
	if len(parts) == 0 {
		return cur, cur.parent, ".", nil
	}
	for i, name := range parts {
		if cur.Type != TypeDir {
			return nil, nil, "", errno.ENOTDIR
		}
		last := i == len(parts)-1
		var next *Inode
		switch name {
		case ".":
			next = cur
		case "..":
			next = cur.parent
		default:
			next = cur.children[name]
		}
		if last {
			if next == nil {
				if wantParent && name != "." && name != ".." {
					return nil, cur, name, nil
				}
				return nil, nil, "", errno.ENOENT
			}
			return next, cur, name, nil
		}
		if next == nil {
			return nil, nil, "", errno.ENOENT
		}
		cur = next
	}
	panic("unreachable")
}

// Create makes (or truncates, if it exists) a regular file and returns
// its inode.
func (fs *FS) Create(cwd *Inode, path string) (*Inode, error) {
	ino, parent, name, err := fs.resolveParent(cwd, path, true)
	if err != nil {
		return nil, err
	}
	if ino != nil {
		switch ino.Type {
		case TypeDir:
			return nil, errno.EISDIR
		case TypeFile:
			ino.data = nil
			ino.shared = false
			return ino, nil
		default:
			return ino, nil
		}
	}
	f := &Inode{Type: TypeFile, nlink: 1}
	parent.children[name] = f
	return f, nil
}

// Mkdir creates a directory. The parent must exist.
func (fs *FS) Mkdir(cwd *Inode, path string) (*Inode, error) {
	ino, parent, name, err := fs.resolveParent(cwd, path, true)
	if err != nil {
		return nil, err
	}
	if ino != nil {
		return nil, errno.EEXIST
	}
	d := &Inode{Type: TypeDir, children: map[string]*Inode{}, parent: parent, nlink: 1}
	parent.children[name] = d
	return d, nil
}

// MkdirAll creates path and any missing ancestors.
func (fs *FS) MkdirAll(path string) (*Inode, error) {
	cur := fs.root
	for _, name := range split(path) {
		next := cur.children[name]
		if next == nil {
			next = &Inode{Type: TypeDir, children: map[string]*Inode{}, parent: cur, nlink: 1}
			cur.children[name] = next
		}
		if next.Type != TypeDir {
			return nil, errno.ENOTDIR
		}
		cur = next
	}
	return cur, nil
}

// Mknod installs a device node at path.
func (fs *FS) Mknod(path string, dev Device) (*Inode, error) {
	ino, parent, name, err := fs.resolveParent(nil, path, true)
	if err != nil {
		return nil, err
	}
	if ino != nil {
		return nil, errno.EEXIST
	}
	d := &Inode{Type: TypeDevice, dev: dev, nlink: 1}
	parent.children[name] = d
	return d, nil
}

// WriteFile creates path with the given contents (mkfs helper).
func (fs *FS) WriteFile(path string, data []byte) (*Inode, error) {
	ino, err := fs.Create(nil, path)
	if err != nil {
		return nil, err
	}
	ino.data = append([]byte(nil), data...)
	return ino, nil
}

// Remove unlinks a file or empty directory.
func (fs *FS) Remove(cwd *Inode, path string) error {
	ino, parent, name, err := fs.resolveParent(cwd, path, false)
	if err != nil {
		return err
	}
	if ino == fs.root {
		return errno.EBUSY
	}
	if ino.Type == TypeDir && len(ino.children) > 0 {
		return errno.ENOTEMPTY
	}
	delete(parent.children, name)
	ino.nlink--
	return nil
}

// ReadDir lists a directory's entry names in sorted order.
func (fs *FS) ReadDir(cwd *Inode, path string) ([]string, error) {
	ino, err := fs.Resolve(cwd, path)
	if err != nil {
		return nil, err
	}
	if ino.Type != TypeDir {
		return nil, errno.ENOTDIR
	}
	names := make([]string, 0, len(ino.children))
	for n := range ino.children {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// PathOf returns a canonical path for ino, or "?" if detached. Linear
// search; debugging aid only.
func (fs *FS) PathOf(ino *Inode) string {
	if ino == fs.root {
		return "/"
	}
	var walk func(dir *Inode, prefix string) string
	walk = func(dir *Inode, prefix string) string {
		for name, ch := range dir.children {
			if ch == ino {
				return prefix + "/" + name
			}
			if ch.Type == TypeDir {
				if p := walk(ch, prefix+"/"+name); p != "?" {
					return p
				}
			}
		}
		return "?"
	}
	return walk(fs.root, "")
}
