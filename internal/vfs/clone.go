package vfs

// Cloner duplicates a filesystem graph — inodes, open-file
// descriptions, and pipes — for template snapshot/clone machinery. It
// memoises every object it copies so that aliasing is preserved
// exactly: two descriptors dup'd onto one description stay dup'd in
// the clone, a file reachable both by path and by an open description
// is copied once, and the root directory's self-parent loop
// terminates. File contents are not copied; clone inodes alias the
// source's data arrays, marked shared so the first in-place write
// (OpenFile.Write's non-growing path) copies the bytes out.
//
// MarkSrc mirrors mem.Physical.CloneHost: snapshotting a live machine
// into a template passes true (the live side must also break sharing
// before writing in place); stamping machines out of a frozen template
// passes false so concurrent stamps never write the template.
//
// RemapQueue translates the kernel-owned wait queues hanging off pipes
// (Pipe.ReadQ/WriteQ, opaque `any` here) into the clone kernel's
// counterparts. The kernel's clone supplies it; nil shares the values
// verbatim (only safe when no kernel queues are attached).
type Cloner struct {
	MarkSrc    bool
	RemapQueue func(any) any

	inodes map[*Inode]*Inode
	files  map[*OpenFile]*OpenFile
	pipes  map[*Pipe]*Pipe
}

// NewCloner returns an empty cloner.
func NewCloner(markSrc bool, remapQueue func(any) any) *Cloner {
	return &Cloner{
		MarkSrc:    markSrc,
		RemapQueue: remapQueue,
		inodes:     map[*Inode]*Inode{},
		files:      map[*OpenFile]*OpenFile{},
		pipes:      map[*Pipe]*Pipe{},
	}
}

// FS clones a whole filesystem tree.
func (c *Cloner) FS(fs *FS) *FS {
	return &FS{root: c.Inode(fs.root)}
}

// Inode clones one inode (and, for directories, everything beneath
// it). Repeated calls on the same inode return the same clone.
func (c *Cloner) Inode(ino *Inode) *Inode {
	if ino == nil {
		return nil
	}
	if dup, ok := c.inodes[ino]; ok {
		return dup
	}
	dup := &Inode{
		Type:  ino.Type,
		dev:   ino.dev, // devices are stateless or host-shared (console)
		nlink: ino.nlink,
	}
	// Register before recursing: directory trees contain cycles
	// (root.parent == root, child.parent == dir).
	c.inodes[ino] = dup
	if ino.data != nil {
		dup.data = ino.data
		dup.shared = true
		if c.MarkSrc {
			ino.shared = true
		}
	}
	if ino.children != nil {
		dup.children = make(map[string]*Inode, len(ino.children))
		for name, ch := range ino.children {
			dup.children[name] = c.Inode(ch)
		}
	}
	dup.parent = c.Inode(ino.parent)
	return dup
}

// OpenFile clones one open-file description, preserving aliasing
// across dup/fork: the memo guarantees each source description maps to
// exactly one clone, so reference counts carry over verbatim.
func (c *Cloner) OpenFile(of *OpenFile) *OpenFile {
	if of == nil {
		return nil
	}
	if dup, ok := c.files[of]; ok {
		return dup
	}
	dup := &OpenFile{
		ino:   c.Inode(of.ino),
		pipe:  c.Pipe(of.pipe),
		pipeW: of.pipeW,
		flags: of.flags,
		pos:   of.pos,
		refs:  of.refs,
	}
	c.files[of] = dup
	return dup
}

// Pipe clones a pipe, copying the buffered bytes and end counts and
// remapping the kernel wait queues via RemapQueue.
func (c *Cloner) Pipe(p *Pipe) *Pipe {
	if p == nil {
		return nil
	}
	if dup, ok := c.pipes[p]; ok {
		return dup
	}
	dup := &Pipe{
		buf:     append([]byte(nil), p.buf...),
		start:   p.start,
		length:  p.length,
		readers: p.readers,
		writers: p.writers,
		ReadQ:   p.ReadQ,
		WriteQ:  p.WriteQ,
	}
	if c.RemapQueue != nil {
		dup.ReadQ = c.RemapQueue(p.ReadQ)
		dup.WriteQ = c.RemapQueue(p.WriteQ)
	}
	c.pipes[p] = dup
	return dup
}

// FDTable clones a descriptor table, sharing descriptions through the
// memo so sibling tables (fork inheritance) still alias in the clone.
func (c *Cloner) FDTable(t *FDTable) *FDTable {
	if t == nil {
		return nil
	}
	nt := &FDTable{slots: make([]fdSlot, len(t.slots))}
	for fd, s := range t.slots {
		if s.of != nil {
			nt.slots[fd] = fdSlot{of: c.OpenFile(s.of), cloexec: s.cloexec}
		}
	}
	return nt
}
