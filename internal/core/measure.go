package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/kernel"
)

// Method names a process-creation strategy under measurement. These
// are the lines of the paper's Figure 1 plus the ablations this repo
// adds (eager fork, cross-process builder, user-space fork emulation).
type Method int

// Creation methods.
const (
	MethodForkExec Method = iota
	MethodVforkExec
	MethodSpawn
	MethodBuilder
	MethodForkEagerExec
	MethodEmulatedForkExec
)

func (m Method) String() string {
	switch m {
	case MethodForkExec:
		return "fork+exec"
	case MethodVforkExec:
		return "vfork+exec"
	case MethodSpawn:
		return "posix_spawn"
	case MethodBuilder:
		return "cross-proc builder"
	case MethodForkEagerExec:
		return "fork(eager)+exec"
	case MethodEmulatedForkExec:
		return "emulated fork+exec"
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// Methods lists all measurable strategies.
func Methods() []Method {
	return []Method{
		MethodForkExec, MethodVforkExec, MethodSpawn,
		MethodBuilder, MethodForkEagerExec, MethodEmulatedForkExec,
	}
}

// CreateChild performs one process creation from parent using method,
// returning the fully constructed (but parked, never-run) child and
// the virtual time the creation took. The caller is responsible for
// k.DestroyProcess(child).
//
// For fork-family methods the measurement covers fork *and* exec,
// matching the paper's "time to fork and exec a minimal process";
// exec includes tearing down the forked copy of the parent's address
// space, which — like on Linux — also scales with the parent's size.
func CreateChild(k *kernel.Kernel, parent *kernel.Process, method Method, path string, argv []string) (*kernel.Process, cost.Ticks, error) {
	start := k.Now()
	var child *kernel.Process
	var err error

	switch method {
	case MethodForkExec, MethodForkEagerExec, MethodVforkExec:
		mode := kernel.ForkCOW
		switch method {
		case MethodForkEagerExec:
			mode = kernel.ForkEager
		case MethodVforkExec:
			mode = kernel.ForkVfork
		}
		child, err = k.ForkWithMode(parent, mode)
		if err != nil {
			return nil, 0, err
		}
		if err = k.Exec(child, path, argv); err != nil {
			k.DestroyProcess(child)
			return nil, 0, err
		}

	case MethodSpawn:
		child, err = SpawnParked(k, parent, path, argv, nil, nil)
		if err != nil {
			return nil, 0, err
		}

	case MethodBuilder:
		b := NewBuilder(k, parent, "child")
		b.LoadImage(path, argv)
		child, err = b.Finish()
		if err != nil {
			return nil, 0, err
		}

	case MethodEmulatedForkExec:
		child, err = EmulateFork(k, parent)
		if err != nil {
			return nil, 0, err
		}
		if err = k.Exec(child, path, argv); err != nil {
			k.DestroyProcess(child)
			return nil, 0, err
		}

	default:
		return nil, 0, fmt.Errorf("core: unknown method %v", method)
	}
	return child, k.Now() - start, nil
}

// MeasureCreation creates and destroys a child, returning only the
// creation latency.
func MeasureCreation(k *kernel.Kernel, parent *kernel.Process, method Method, path string) (cost.Ticks, error) {
	child, elapsed, err := CreateChild(k, parent, method, path, []string{path})
	if err != nil {
		return 0, err
	}
	k.DestroyProcess(child)
	return elapsed, nil
}
