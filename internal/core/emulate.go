package core

import (
	"fmt"

	"repro/internal/addrspace"
	"repro/internal/kernel"
	"repro/internal/mem"
)

// EmulateFork implements fork() *on top of* the cross-process
// operations, as §5 of the paper argues a fork-less kernel could: a
// new empty process is created, every VMA of the parent is re-created
// in the child, contents are copied through cross-process reads and
// writes, descriptors are duplicated one by one, and the register file
// of the parent's main thread is cloned.
//
// It is deliberately the slow path — user-space emulation cannot share
// pages copy-on-write, so its cost is Θ(resident bytes), not Θ(mapped
// pages). The experiments harness measures this against kernel fork to
// quantify what §5 calls the price of keeping fork out of the kernel.
//
// Limitations (documented, matching the paper's discussion): only the
// calling thread is duplicated; MAP_SHARED regions are re-mapped
// shared via a fresh mapping rather than aliasing the same frames, so
// post-fork shared-memory coupling with the parent is NOT preserved.
func EmulateFork(k *kernel.Kernel, parent *kernel.Process) (*kernel.Process, error) {
	child := k.NewSynthetic(parent.Name+"-emufork", parent)
	fail := func(err error) (*kernel.Process, error) {
		k.DestroyProcess(child)
		return nil, err
	}

	// 1. Recreate the memory map and copy resident contents.
	for _, v := range parent.Space().VMAs() {
		_, err := child.Space().Map(v.Start, v.Len(), v.Prot|addrspace.Write, addrspace.MapOpts{
			Kind: v.Kind, Name: v.Name, Huge: v.Huge,
		})
		if err != nil {
			return fail(fmt.Errorf("core: emulate fork: map %s: %w", v.Name, err))
		}
		// Copy page by page. Reading the parent faults pages in
		// read-only; unmaterialised (all-zero) pages still cost a
		// read+write pass — user space cannot see which pages
		// are resident, another §5 point.
		buf := make([]byte, mem.PageSize)
		for va := v.Start; va < v.End; va += mem.PageSize {
			if err := parent.Space().ReadBytes(va, buf); err != nil {
				return fail(err)
			}
			if err := child.Space().WriteBytes(va, buf); err != nil {
				return fail(err)
			}
		}
	}

	// 2. Restore intended protections (we mapped writable to copy).
	// The simulator's VMA protections are advisory per-mapping; a
	// real implementation would mprotect here. We rebuild the
	// record only — page permissions in the child already reflect
	// the writable mapping, so this is where emulation visibly
	// diverges from kernel fork (text pages end up writable).
	for i, v := range parent.Space().VMAs() {
		child.Space().VMAs()[i].Prot = v.Prot
	}

	// 3. Descriptors, one explicit duplication per slot.
	pfds := parent.FDs()
	for fd := 0; fd <= pfds.MaxFD(); fd++ {
		of, err := pfds.Get(fd)
		if err != nil {
			continue
		}
		cloexec, _ := pfds.Cloexec(fd)
		if err := child.FDs().InstallAt(of.Retain(), cloexec, fd); err != nil {
			of.Release()
			return fail(err)
		}
	}

	// 4. Signal dispositions.
	*child.Signals() = *parent.Signals().Clone()

	// 5. Thread context: clone the parent's main thread registers.
	pt, ct := parent.MainThread(), child.MainThread()
	if pt == nil || ct == nil {
		return fail(fmt.Errorf("core: emulate fork: missing thread"))
	}
	for r := 0; r < 16; r++ {
		ct.SetReg(r, pt.Reg(r))
	}
	ct.SetPC(pt.PC())

	return child, nil
}
