package core

import (
	"bytes"
	"testing"

	"repro/internal/abi"
	"repro/internal/addrspace"
	"repro/internal/kernel"
	"repro/internal/sig"
	"repro/internal/ulib"
	"repro/internal/vfs"
)

func newKernel(t *testing.T, out *bytes.Buffer) *kernel.Kernel {
	t.Helper()
	opts := kernel.Options{RAMBytes: 1 << 30, NumCPUs: 1}
	if out != nil {
		opts.ConsoleOut = out
	}
	k, err := kernel.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ulib.InstallAll(k); err != nil {
		t.Fatal(err)
	}
	return k
}

func wireStdout(t *testing.T, k *kernel.Kernel, p *kernel.Process) {
	t.Helper()
	con, err := k.FS().Resolve(nil, "/dev/console")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.FDs().InstallAt(vfs.NewOpenFile(con, vfs.OWrOnly), false, 1); err != nil {
		t.Fatal(err)
	}
}

func TestSpawnRunsChild(t *testing.T) {
	var out bytes.Buffer
	k := newKernel(t, &out)
	parent := k.NewSynthetic("parent", nil)
	wireStdout(t, k, parent)
	child, err := Spawn(k, parent, "/bin/echo", []string{"echo", "spawned"}, nil, nil)
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	if err := k.Run(kernel.RunLimits{MaxInstructions: 1_000_000}); err != nil {
		t.Fatal(err)
	}
	if out.String() != "spawned\n" {
		t.Errorf("output = %q", out.String())
	}
	if child.State() != kernel.ProcZombie {
		t.Errorf("child state = %v", child.State())
	}
	k.WaitReap(parent, child.Pid)
	k.DestroyProcess(parent)
}

func TestSpawnFileActions(t *testing.T) {
	k := newKernel(t, nil)
	parent := k.NewSynthetic("parent", nil)
	if _, err := k.FS().WriteFile("/tmp/out", nil); err != nil {
		t.Fatal(err)
	}
	fa := new(FileActions).
		AddOpen(1, "/tmp/out", vfs.OWrOnly).
		AddDup2(1, 2)
	if fa.Len() != 2 {
		t.Fatalf("Len = %d", fa.Len())
	}
	child, err := Spawn(k, parent, "/bin/echo", []string{"echo", "to-file"}, fa, nil)
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	if err := k.Run(kernel.RunLimits{MaxInstructions: 1_000_000}); err != nil {
		t.Fatal(err)
	}
	ino, _ := k.FS().Resolve(nil, "/tmp/out")
	if string(ino.Data()) != "to-file\n" {
		t.Errorf("file = %q", ino.Data())
	}
	_ = child
	k.WaitReap(parent, -1)
	k.DestroyProcess(parent)
}

func TestSpawnAttrSignals(t *testing.T) {
	k := newKernel(t, nil)
	parent := k.NewSynthetic("parent", nil)
	// Parent ignores SIGTERM; without attrs the child inherits the
	// ignore (exec keeps ignores), with SetSigDefault it reverts.
	if err := parent.Signals().Set(sig.SIGTERM, sig.Disposition{Kind: sig.ActIgnore}); err != nil {
		t.Fatal(err)
	}
	plain, err := SpawnParked(k, parent, "/bin/true", []string{"true"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Signals().Get(sig.SIGTERM).Kind != sig.ActIgnore {
		t.Error("ignore not inherited by default")
	}
	attr := new(Attr).SetSigDefault(sig.MakeSet(sig.SIGTERM)).SetSigMask(sig.MakeSet(sig.SIGUSR1))
	reset, err := SpawnParked(k, parent, "/bin/true", []string{"true"}, nil, attr)
	if err != nil {
		t.Fatal(err)
	}
	if reset.Signals().Get(sig.SIGTERM).Kind != sig.ActDefault {
		t.Error("SetSigDefault did not reset")
	}
	if !reset.MainThread().SigMask().Has(sig.SIGUSR1) {
		t.Error("SetSigMask not applied")
	}
	k.DestroyProcess(plain)
	k.DestroyProcess(reset)
	k.DestroyProcess(parent)
}

func TestBuilderFull(t *testing.T) {
	var out bytes.Buffer
	k := newKernel(t, &out)
	parent := k.NewSynthetic("parent", nil)
	wireStdout(t, k, parent)

	b := NewBuilder(k, parent, "worker")
	b.LoadImage("/bin/echo", []string{"echo", "built"})
	b.InheritFD(1, 1)
	var scratch uint64
	b.MapAnon(0, 1<<20, addrspace.Read|addrspace.Write, &scratch)
	b.WriteMemory(scratch, []byte("pre-seeded"))
	b.SetSignal(sig.SIGUSR2, sig.Disposition{Kind: sig.ActIgnore})
	child, err := b.Start()
	if err != nil {
		t.Fatalf("builder: %v", err)
	}
	// The pre-seeded memory is visible inside the child.
	buf := make([]byte, 10)
	if err := child.Space().ReadBytes(scratch, buf); err != nil || string(buf) != "pre-seeded" {
		t.Errorf("seeded memory: %q %v", buf, err)
	}
	if child.Signals().Get(sig.SIGUSR2).Kind != sig.ActIgnore {
		t.Error("builder signal lost")
	}
	if err := k.Run(kernel.RunLimits{MaxInstructions: 1_000_000}); err != nil {
		t.Fatal(err)
	}
	if out.String() != "built\n" {
		t.Errorf("output = %q", out.String())
	}
	if got := abi.StatusExitCode(child.ExitStatus()); got != 0 {
		t.Errorf("exit = %d", got)
	}
	k.WaitReap(parent, -1)
	k.DestroyProcess(parent)
}

func TestBuilderErrorsAccumulate(t *testing.T) {
	k := newKernel(t, nil)
	parent := k.NewSynthetic("parent", nil)
	b := NewBuilder(k, parent, "broken")
	b.LoadImage("/no/such/binary", nil)
	b.InheritFD(99, 0) // also broken, but the first error wins
	if _, err := b.Start(); err == nil {
		t.Fatal("Start succeeded with broken builder")
	}
	// The half-built child was torn down.
	if got := k.LiveProcessCount(); got != 1 {
		t.Errorf("live processes = %d, want 1 (parent only)", got)
	}
	// Start before LoadImage is rejected.
	b2 := NewBuilder(k, parent, "empty")
	if _, err := b2.Start(); err == nil {
		t.Fatal("Start without LoadImage succeeded")
	}
	k.DestroyProcess(parent)
}

func TestBuilderStartFailureDoesNotLeak(t *testing.T) {
	k := newKernel(t, nil)
	parent := k.NewSynthetic("parent", nil)
	b := NewBuilder(k, parent, "doomed")
	b.LoadImage("/bin/true", []string{"true"})
	// Sabotage: destroy the child out from under the builder, so
	// StartProcess fails (no live thread). Start must report the
	// error and leave no residue in the process table.
	pid := b.Child().Pid
	k.DestroyProcess(b.Child())
	if _, err := b.Start(); err == nil {
		t.Fatal("Start succeeded on a destroyed child")
	}
	if p := k.Lookup(pid); p != nil {
		t.Errorf("child pid %d leaked in process table (state %v)", pid, p.State())
	}
	if got := k.LiveProcessCount(); got != 1 {
		t.Errorf("live processes = %d, want 1 (parent only)", got)
	}
	// The builder is spent: a second Start reports that, rather
	// than re-registering the child.
	if _, err := b.Start(); err == nil {
		t.Fatal("second Start succeeded on a spent builder")
	}
	k.DestroyProcess(parent)
}

func TestEmulateForkCopiesState(t *testing.T) {
	k := newKernel(t, nil)
	parent := k.NewSynthetic("parent", nil)
	v, err := parent.Space().Map(0x100000, 1<<20, addrspace.Read|addrspace.Write, addrspace.MapOpts{Name: "ws"})
	if err != nil {
		t.Fatal(err)
	}
	if err := parent.Space().WriteBytes(v.Start, []byte("emulated")); err != nil {
		t.Fatal(err)
	}
	ino, _ := k.FS().WriteFile("/tmp/ef", []byte("z"))
	parent.FDs().InstallAt(vfs.NewOpenFile(ino, vfs.ORdWr), false, 5)
	parent.Signals().Set(sig.SIGUSR1, sig.Disposition{Kind: sig.ActHandler, Handler: 0x400100})
	parent.MainThread().SetReg(7, 0xdead)

	child, err := EmulateFork(k, parent)
	if err != nil {
		t.Fatalf("EmulateFork: %v", err)
	}
	buf := make([]byte, 8)
	if err := child.Space().ReadBytes(v.Start, buf); err != nil || string(buf) != "emulated" {
		t.Errorf("memory: %q %v", buf, err)
	}
	// Isolation: emulation copies eagerly, so divergence is immediate.
	parent.Space().WriteBytes(v.Start, []byte("DIVERGED"))
	child.Space().ReadBytes(v.Start, buf)
	if string(buf) != "emulated" {
		t.Errorf("no isolation: %q", buf)
	}
	if _, err := child.FDs().Get(5); err != nil {
		t.Error("fd not duplicated")
	}
	if child.Signals().Get(sig.SIGUSR1).Kind != sig.ActHandler {
		t.Error("signal table not copied")
	}
	if child.MainThread().Reg(7) != 0xdead {
		t.Error("registers not copied")
	}
	k.DestroyProcess(child)
	k.DestroyProcess(parent)
}

func TestMethodsNamed(t *testing.T) {
	for _, m := range Methods() {
		if m.String() == "" || m.String()[0] == 'm' && m.String() != "method(?)" {
			continue
		}
	}
	if MethodForkExec.String() != "fork+exec" || MethodSpawn.String() != "posix_spawn" {
		t.Error("method names wrong")
	}
}

func TestCreateChildAllMethods(t *testing.T) {
	k := newKernel(t, nil)
	parent := k.NewSynthetic("parent", nil)
	if _, err := parent.Space().Map(0x100000, 4<<20, addrspace.Read|addrspace.Write, addrspace.MapOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := parent.Space().Touch(0x100000, 4<<20, addrspace.AccessWrite); err != nil {
		t.Fatal(err)
	}
	for _, m := range Methods() {
		child, elapsed, err := CreateChild(k, parent, m, "/bin/true", []string{"true"})
		if err != nil {
			t.Errorf("%v: %v", m, err)
			continue
		}
		if elapsed == 0 {
			t.Errorf("%v: zero elapsed time", m)
		}
		if child.MainThread() == nil {
			t.Errorf("%v: child has no thread", m)
		}
		k.DestroyProcess(child)
	}
	k.DestroyProcess(parent)
}

func TestSpawnChdirAction(t *testing.T) {
	k := newKernel(t, nil)
	parent := k.NewSynthetic("parent", nil)
	if _, err := k.FS().MkdirAll("/data/deep"); err != nil {
		t.Fatal(err)
	}
	if _, err := k.FS().WriteFile("/data/deep/input", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Relative AddOpen after AddChdir resolves in the new cwd.
	fa := new(FileActions).AddChdir("/data/deep").AddOpen(5, "input", vfs.ORdOnly)
	child, err := SpawnParked(k, parent, "/bin/true", []string{"true"}, fa, nil)
	if err != nil {
		t.Fatalf("spawn with chdir action: %v", err)
	}
	of, err := child.FDs().Get(5)
	if err != nil {
		t.Fatalf("fd 5 missing: %v", err)
	}
	if string(of.Inode().Data()) != "payload" {
		t.Error("wrong file opened")
	}
	// Chdir to a missing directory fails the whole spawn.
	bad := new(FileActions).AddChdir("/nope")
	if _, err := SpawnParked(k, parent, "/bin/true", []string{"true"}, bad, nil); err == nil {
		t.Error("spawn with bad chdir succeeded")
	}
	k.DestroyProcess(child)
	k.DestroyProcess(parent)
}
