package core
