package core

import (
	"fmt"

	"repro/internal/addrspace"
	"repro/internal/errno"
	"repro/internal/kernel"
	"repro/internal/sig"
	"repro/internal/vfs"
)

// Builder assembles a child process piece by piece before starting it
// — the cross-process API of §6.2 ("a process should be a fresh,
// empty container that the parent populates"). Unlike fork, nothing is
// inherited implicitly: every descriptor, mapping, and signal setting
// is an explicit call, so there is no hidden channel for secrets or
// stale state to leak into the child.
//
// Typical use:
//
//	b := core.NewBuilder(k, parent, "worker")
//	b.LoadImage("/bin/worker", []string{"worker", "3"})
//	b.InheritFD(0, 0)
//	b.InheritFD(1, 1)
//	child, err := b.Start()
type Builder struct {
	k      *kernel.Kernel
	parent *kernel.Process
	child  *kernel.Process
	err    error // first error; Start reports it
	loaded bool
	done   bool
}

// NewBuilder creates an empty child of parent. The child exists (it
// has a pid and shows up in the process table) but is inert until
// Start.
func NewBuilder(k *kernel.Kernel, parent *kernel.Process, name string) *Builder {
	return &Builder{
		k:      k,
		parent: parent,
		child:  k.NewSynthetic(name, parent),
	}
}

// Child exposes the process under construction (tests and advanced
// callers).
func (b *Builder) Child() *kernel.Process { return b.child }

func (b *Builder) fail(err error) *Builder {
	if b.err == nil && err != nil {
		b.err = err
	}
	return b
}

// LoadImage loads an executable image into the child and primes its
// stack with argv. Must be called exactly once before Start.
func (b *Builder) LoadImage(path string, argv []string) *Builder {
	if b.err != nil || b.done {
		return b
	}
	if b.loaded {
		return b.fail(fmt.Errorf("core: LoadImage called twice"))
	}
	if err := b.k.Exec(b.child, path, argv); err != nil {
		return b.fail(fmt.Errorf("core: load image %s: %w", path, err))
	}
	b.loaded = true
	return b
}

// InheritFD grants the child a copy of the parent's descriptor
// parentFD at childFD. The open-file description (and thus the file
// offset) is shared, exactly like inheritance across fork — but here
// it is opt-in, per descriptor.
func (b *Builder) InheritFD(parentFD, childFD int) *Builder {
	if b.err != nil || b.done {
		return b
	}
	of, err := b.parent.FDs().Get(parentFD)
	if err != nil {
		return b.fail(fmt.Errorf("core: inherit fd %d: %w", parentFD, err))
	}
	if err := b.child.FDs().InstallAt(of.Retain(), false, childFD); err != nil {
		of.Release()
		return b.fail(err)
	}
	return b
}

// OpenFD opens an existing path at childFD in the child. (Creation
// belongs to the parent: create the file first, then hand it over.)
func (b *Builder) OpenFD(childFD int, path string, flags vfs.OpenFlags) *Builder {
	if b.err != nil || b.done {
		return b
	}
	ino, err := b.k.FS().Resolve(nil, path)
	if err != nil {
		return b.fail(fmt.Errorf("core: open %s: %w", path, err))
	}
	of := vfs.NewOpenFile(ino, flags)
	if err := b.child.FDs().InstallAt(of, false, childFD); err != nil {
		of.Release()
		return b.fail(err)
	}
	return b
}

// MapAnon adds an anonymous mapping to the child (length rounded up to
// pages; addr 0 picks an address) and returns the builder. The start
// address is written to *out if non-nil.
func (b *Builder) MapAnon(addr, length uint64, prot addrspace.Prot, out *uint64) *Builder {
	if b.err != nil || b.done {
		return b
	}
	vma, err := b.child.Space().Map(addr, length, prot, addrspace.MapOpts{Kind: addrspace.KindAnon, Name: "builder"})
	if err != nil {
		return b.fail(fmt.Errorf("core: map anon: %w", err))
	}
	if out != nil {
		*out = vma.Start
	}
	return b
}

// WriteMemory writes into the child's address space — the
// cross-process operation fork-style APIs lack: the parent populates
// the child directly instead of relying on inherited copies.
func (b *Builder) WriteMemory(addr uint64, data []byte) *Builder {
	if b.err != nil || b.done {
		return b
	}
	if err := b.child.Space().WriteBytes(addr, data); err != nil {
		return b.fail(fmt.Errorf("core: write child memory: %w", err))
	}
	return b
}

// SetSignal installs a disposition in the child.
func (b *Builder) SetSignal(s sig.Signal, d sig.Disposition) *Builder {
	if b.err != nil || b.done {
		return b
	}
	if err := b.child.Signals().Set(s, d); err != nil {
		return b.fail(err)
	}
	return b
}

// SetReg seeds a register in the child's initial context (after
// LoadImage, which resets the context).
func (b *Builder) SetReg(n int, v uint64) *Builder {
	if b.err != nil || b.done {
		return b
	}
	t := b.child.MainThread()
	if t == nil {
		return b.fail(errno.ESRCH)
	}
	t.SetReg(n, v)
	return b
}

// Start makes the child runnable and returns it. After Start the
// builder is spent.
func (b *Builder) Start() (*kernel.Process, error) {
	if b.err != nil {
		b.Abort()
		return nil, b.err
	}
	if b.done {
		return nil, fmt.Errorf("core: builder already finished")
	}
	if !b.loaded {
		b.Abort()
		return nil, fmt.Errorf("core: Start before LoadImage")
	}
	if err := b.k.StartProcess(b.child); err != nil {
		// Tear the half-built child down rather than leaking it in
		// the process table (Abort also marks the builder spent).
		b.Abort()
		return nil, err
	}
	b.done = true
	return b.child, nil
}

// Finish completes construction without starting the child (parked),
// for the measurement harness.
func (b *Builder) Finish() (*kernel.Process, error) {
	if b.err != nil {
		b.Abort()
		return nil, b.err
	}
	if !b.loaded {
		b.Abort()
		return nil, fmt.Errorf("core: Finish before LoadImage")
	}
	b.done = true
	return b.child, nil
}

// Abort tears down a half-built child.
func (b *Builder) Abort() {
	if b.child != nil && !b.done {
		b.k.DestroyProcess(b.child)
		b.done = true
	}
}
