// Package core implements the process-creation APIs that "A fork() in
// the road" (HotOS'19) advocates in place of fork:
//
//   - Spawn: a posix_spawn-compatible high-level API (file actions +
//     attributes) that never duplicates the parent — §6.1 of the paper.
//   - Builder: a cross-process construction API in the style of
//     Exokernel/Fuchsia process_builder — §6.2: the child is assembled
//     piece by piece (image, descriptors, memory, signal state) and
//     only then started.
//   - EmulateFork: fork implemented *on top of* the cross-process API,
//     demonstrating the paper's §5 claim that a kernel without fork
//     can still support it (slowly, in user space).
//
// All three sit on the primitives of internal/kernel and are measured
// against kernel fork by internal/experiments.
package core

import (
	"repro/internal/abi"
	"repro/internal/kernel"
	"repro/internal/sig"
	"repro/internal/vfs"
)

// FileActions accumulates posix_spawn file actions. The zero value is
// an empty list.
type FileActions struct {
	actions []kernel.FileAction
}

// AddDup2 schedules dup2(oldfd, newfd) in the child.
func (fa *FileActions) AddDup2(oldfd, newfd int) *FileActions {
	fa.actions = append(fa.actions, kernel.FileAction{Op: abi.FADup2, FD: oldfd, NewFD: newfd})
	return fa
}

// AddClose schedules close(fd) in the child.
func (fa *FileActions) AddClose(fd int) *FileActions {
	fa.actions = append(fa.actions, kernel.FileAction{Op: abi.FAClose, FD: fd})
	return fa
}

// AddOpen schedules open(path, flags) in the child, installed exactly
// at fd.
func (fa *FileActions) AddOpen(fd int, path string, flags vfs.OpenFlags) *FileActions {
	fa.actions = append(fa.actions, kernel.FileAction{Op: abi.FAOpen, FD: fd, Path: path, Flags: flags})
	return fa
}

// AddChdir schedules a working-directory change in the child,
// affecting subsequent relative AddOpen paths and the child's initial
// cwd (posix_spawn_file_actions_addchdir_np).
func (fa *FileActions) AddChdir(path string) *FileActions {
	fa.actions = append(fa.actions, kernel.FileAction{Op: abi.FAChdir, Path: path})
	return fa
}

// Len reports the number of actions.
func (fa *FileActions) Len() int { return len(fa.actions) }

func (fa *FileActions) list() []kernel.FileAction {
	if fa == nil {
		return nil
	}
	return fa.actions
}

// Attr is the posix_spawn attribute block. The zero value inherits
// everything inheritable.
type Attr struct {
	attr kernel.SpawnAttr
}

// SetSigDefault resets the given signals to their default disposition
// in the child (POSIX_SPAWN_SETSIGDEF).
func (a *Attr) SetSigDefault(set sig.Set) *Attr {
	a.attr.Flags |= abi.SpawnSetSigDef
	a.attr.SigDefault = set
	return a
}

// SetSigMask sets the child's initial signal mask
// (POSIX_SPAWN_SETSIGMASK).
func (a *Attr) SetSigMask(set sig.Set) *Attr {
	a.attr.Flags |= abi.SpawnSetSigMask
	a.attr.SigMask = set
	return a
}

func (a *Attr) spawnAttr() kernel.SpawnAttr {
	if a == nil {
		return kernel.SpawnAttr{}
	}
	return a.attr
}

// Spawn creates a child of parent running path with argv, applying
// file actions and attributes, and starts it. It is posix_spawn: the
// parent's address space is never touched, so the call's cost is
// independent of the parent's size.
func Spawn(k *kernel.Kernel, parent *kernel.Process, path string, argv []string,
	fa *FileActions, attr *Attr) (*kernel.Process, error) {
	return k.Spawn(parent, path, argv, fa.list(), attr.spawnAttr(), true)
}

// SpawnParked is Spawn for the measurement harness: the child is fully
// constructed but not enqueued, so creation cost can be measured
// without running it.
func SpawnParked(k *kernel.Kernel, parent *kernel.Process, path string, argv []string,
	fa *FileActions, attr *Attr) (*kernel.Process, error) {
	return k.Spawn(parent, path, argv, fa.list(), attr.spawnAttr(), false)
}
