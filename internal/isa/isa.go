// Package isa defines the simulated machine's instruction set: a
// 64-bit load/store architecture with sixteen general registers and a
// fixed 8-byte instruction encoding. The kernel's VM executes it; the
// assembler in internal/asm targets it.
//
// Encoding (little-endian):
//
//	byte 0   opcode
//	byte 1   rd
//	byte 2   rs1
//	byte 3   rs2
//	bytes 4-7 imm (int32, sign-extended where used)
//
// Calling convention used by the userland library: r14 is the stack
// pointer, CALL pushes the return address, arguments and returns in
// r0-r5, syscall number is the SYS immediate with arguments in r0-r5
// and the result in r0 (negative values are -errno).
package isa

import (
	"encoding/binary"
	"fmt"
)

// NumRegs is the register-file size.
const NumRegs = 16

// SP is the conventional stack-pointer register.
const SP = 14

// InstrSize is the fixed instruction width in bytes.
const InstrSize = 8

// Op is an opcode.
type Op uint8

// Opcodes.
const (
	OpNop   Op = iota
	OpMovi     // rd = imm (sign-extended)
	OpMovhi    // rd = (rd & 0xffffffff) | imm<<32
	OpMov      // rd = rs1
	OpAdd      // rd = rs1 + rs2
	OpSub      // rd = rs1 - rs2
	OpMul      // rd = rs1 * rs2
	OpDiv      // rd = rs1 / rs2 (unsigned; rs2==0 faults)
	OpMod      // rd = rs1 % rs2 (unsigned; rs2==0 faults)
	OpAnd      // rd = rs1 & rs2
	OpOr       // rd = rs1 | rs2
	OpXor      // rd = rs1 ^ rs2
	OpShl      // rd = rs1 << (rs2 & 63)
	OpShr      // rd = rs1 >> (rs2 & 63) (logical)
	OpSar      // rd = int64(rs1) >> (rs2 & 63)
	OpAddi     // rd = rs1 + imm
	OpMuli     // rd = rs1 * imm
	OpAndi     // rd = rs1 & uint64(uint32(imm)) — zero-extended mask
	OpOri      // rd = rs1 | uint64(uint32(imm))
	OpXori     // rd = rs1 ^ uint64(uint32(imm))
	OpShli     // rd = rs1 << (imm & 63)
	OpShri     // rd = rs1 >> (imm & 63)
	OpLd8      // rd = mem64[rs1 + imm]
	OpLd4      // rd = zext(mem32[rs1 + imm])
	OpLd1      // rd = zext(mem8[rs1 + imm])
	OpSt8      // mem64[rs1 + imm] = rs2
	OpSt4      // mem32[rs1 + imm] = low32(rs2)
	OpSt1      // mem8[rs1 + imm] = low8(rs2)
	OpB        // pc += imm
	OpBz       // if rs1 == 0: pc += imm
	OpBnz      // if rs1 != 0: pc += imm
	OpBeq      // if rs1 == rs2: pc += imm
	OpBne      // if rs1 != rs2: pc += imm
	OpBlt      // if int64(rs1) < int64(rs2): pc += imm
	OpBge      // if int64(rs1) >= int64(rs2): pc += imm
	OpBltu     // if rs1 < rs2 (unsigned): pc += imm
	OpBgeu     // if rs1 >= rs2 (unsigned): pc += imm
	OpCall     // push pc+8; pc += imm
	OpCallr    // push pc+8; pc = rs1
	OpRet      // pc = pop
	OpSys      // syscall imm
	OpHalt     // illegal-instruction trap (SIGILL)
	OpXchg     // rd = mem64[rs1+imm]; mem64[rs1+imm] = rs2 (atomic)

	opCount
)

var opNames = [...]string{
	OpNop: "nop", OpMovi: "movi", OpMovhi: "movhi", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpSar: "sar", OpAddi: "addi", OpMuli: "muli", OpAndi: "andi",
	OpOri: "ori", OpXori: "xori", OpShli: "shli", OpShri: "shri",
	OpLd8: "ld8", OpLd4: "ld4", OpLd1: "ld1",
	OpSt8: "st8", OpSt4: "st4", OpSt1: "st1",
	OpB: "b", OpBz: "bz", OpBnz: "bnz", OpBeq: "beq", OpBne: "bne",
	OpBlt: "blt", OpBge: "bge", OpBltu: "bltu", OpBgeu: "bgeu",
	OpCall: "call", OpCallr: "callr", OpRet: "ret",
	OpSys: "sys", OpHalt: "halt", OpXchg: "xchg",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < opCount }

// Instr is a decoded instruction.
type Instr struct {
	Op  Op
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int32
}

// Encode packs i into its 8-byte form.
func (i Instr) Encode() [InstrSize]byte {
	var b [InstrSize]byte
	b[0] = byte(i.Op)
	b[1] = i.Rd
	b[2] = i.Rs1
	b[3] = i.Rs2
	binary.LittleEndian.PutUint32(b[4:], uint32(i.Imm))
	return b
}

// Decode unpacks an instruction. It never fails; invalid opcodes are
// caught at execution time (SIGILL), like real hardware.
func Decode(b []byte) Instr {
	_ = b[7]
	return Instr{
		Op:  Op(b[0]),
		Rd:  b[1] & (NumRegs - 1),
		Rs1: b[2] & (NumRegs - 1),
		Rs2: b[3] & (NumRegs - 1),
		Imm: int32(binary.LittleEndian.Uint32(b[4:])),
	}
}

// String disassembles the instruction.
func (i Instr) String() string {
	r := func(n uint8) string { return fmt.Sprintf("r%d", n) }
	switch i.Op {
	case OpNop, OpRet:
		return i.Op.String()
	case OpMovi, OpMovhi:
		return fmt.Sprintf("%s %s, %d", i.Op, r(i.Rd), i.Imm)
	case OpMov:
		return fmt.Sprintf("mov %s, %s", r(i.Rd), r(i.Rs1))
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, r(i.Rd), r(i.Rs1), r(i.Rs2))
	case OpAddi, OpMuli, OpAndi, OpOri, OpXori, OpShli, OpShri:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, r(i.Rd), r(i.Rs1), i.Imm)
	case OpLd8, OpLd4, OpLd1:
		return fmt.Sprintf("%s %s, [%s%+d]", i.Op, r(i.Rd), r(i.Rs1), i.Imm)
	case OpSt8, OpSt4, OpSt1:
		return fmt.Sprintf("%s [%s%+d], %s", i.Op, r(i.Rs1), i.Imm, r(i.Rs2))
	case OpB, OpCall:
		return fmt.Sprintf("%s %+d", i.Op, i.Imm)
	case OpBz, OpBnz:
		return fmt.Sprintf("%s %s, %+d", i.Op, r(i.Rs1), i.Imm)
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return fmt.Sprintf("%s %s, %s, %+d", i.Op, r(i.Rs1), r(i.Rs2), i.Imm)
	case OpCallr:
		return fmt.Sprintf("callr %s", r(i.Rs1))
	case OpSys:
		return fmt.Sprintf("sys %d", i.Imm)
	case OpHalt:
		return "halt"
	case OpXchg:
		return fmt.Sprintf("xchg %s, [%s%+d], %s", r(i.Rd), r(i.Rs1), i.Imm, r(i.Rs2))
	}
	return fmt.Sprintf("%s ?", i.Op)
}
