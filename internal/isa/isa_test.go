package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundtrip(t *testing.T) {
	in := Instr{Op: OpAddi, Rd: 3, Rs1: 14, Rs2: 0, Imm: -4096}
	b := in.Encode()
	out := Decode(b[:])
	if out != in {
		t.Errorf("roundtrip: %+v != %+v", out, in)
	}
}

func TestQuickRoundtrip(t *testing.T) {
	f := func(op uint8, rd, r1, r2 uint8, imm int32) bool {
		in := Instr{
			Op:  Op(op % uint8(opCount)),
			Rd:  rd % NumRegs,
			Rs1: r1 % NumRegs,
			Rs2: r2 % NumRegs,
			Imm: imm,
		}
		b := in.Encode()
		return Decode(b[:]) == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeMasksRegisters(t *testing.T) {
	var b [InstrSize]byte
	b[0] = byte(OpMov)
	b[1] = 0xFF // rd out of range
	in := Decode(b[:])
	if in.Rd >= NumRegs {
		t.Errorf("Rd = %d not masked", in.Rd)
	}
}

func TestOpValidity(t *testing.T) {
	if !OpXchg.Valid() || !OpNop.Valid() {
		t.Error("valid ops reported invalid")
	}
	if Op(200).Valid() {
		t.Error("bogus op reported valid")
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpNop}, "nop"},
		{Instr{Op: OpMovi, Rd: 2, Imm: -7}, "movi r2, -7"},
		{Instr{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Instr{Op: OpLd8, Rd: 4, Rs1: 14, Imm: 16}, "ld8 r4, [r14+16]"},
		{Instr{Op: OpSt1, Rs1: 5, Rs2: 6, Imm: -8}, "st1 [r5-8], r6"},
		{Instr{Op: OpBeq, Rs1: 1, Rs2: 2, Imm: 64}, "beq r1, r2, +64"},
		{Instr{Op: OpSys, Imm: 9}, "sys 9"},
		{Instr{Op: OpXchg, Rd: 1, Rs1: 2, Rs2: 3, Imm: 0}, "xchg r1, [r2+0], r3"},
		{Instr{Op: OpRet}, "ret"},
		{Instr{Op: OpCallr, Rs1: 7}, "callr r7"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("disasm %v = %q, want %q", c.in.Op, got, c.want)
		}
	}
	// Every opcode has a distinct non-placeholder mnemonic.
	seen := map[string]Op{}
	for op := Op(0); op < opCount; op++ {
		name := op.String()
		if strings.HasPrefix(name, "op(") {
			t.Errorf("op %d has no mnemonic", op)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("mnemonic %q shared by %d and %d", name, prev, op)
		}
		seen[name] = op
	}
}
