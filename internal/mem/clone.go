package mem

import "repro/internal/cost"

// CloneHost duplicates the physical memory's entire logical state —
// frame table, free lists, allocation watermark, commit books — into a
// new Physical charging against meter, without copying any frame
// contents: materialised frames alias the source's byte arrays, marked
// shared so the first in-place write on either side copies the bytes
// out (see Write). The clone is logically an exact deep copy (reads,
// refcounts, commit charge, and every metered cost behave identically),
// but the host pays one pointer-free memmove of the frame table plus
// O(materialised frames) — not Θ(resident bytes), and most resident
// pages are lazy zeroes with no materialised entry at all.
//
// markSrc selects whether the *source's* materialised frames are also
// flagged shared. A snapshot into an immutable template passes true
// (the live machine keeps running and must not scribble on bytes the
// template now aliases); stamping a machine out of a frozen template
// passes false, so concurrent stamps only read the template — never
// write it — and remain race-free without locks.
//
// The fault injector is deliberately not carried over: injectors are
// bound to a meter and recorder, and the cloning kernel installs the
// clone's own (see kernel.Kernel.Clone).
func (p *Physical) CloneHost(meter *cost.Meter, markSrc bool) *Physical {
	return p.CloneHostInto(meter, markSrc, nil)
}

// CloneHostInto is CloneHost recycling a retired clone's allocations:
// scratch's frame table, host-frame books, and data map are reused in
// place instead of reallocated, so a fleet stamping machines in a loop
// stops churning the dominant per-clone allocation (the frame table is
// one entry per page of RAM). scratch must be dead — no other
// reference may read it again — and must not be p itself. A nil
// scratch allocates fresh, exactly like CloneHost. The returned
// Physical (scratch, when given) is logically identical to a fresh
// clone: every field is rewritten, unset ones zeroed.
func (p *Physical) CloneHostInto(meter *cost.Meter, markSrc bool, scratch *Physical) *Physical {
	np := scratch
	if np == nil {
		np = &Physical{}
	}
	frames := append(np.frames[:0], p.frames...)
	hframes := append(np.hframes[:0], p.hframes...)
	hfree := append(np.hfree[:0], p.hfree...)
	data := np.data
	*np = Physical{
		meter:          meter,
		frames:         frames,
		nextFree:       p.nextFree,
		freeHead:       p.freeHead,
		hframes:        hframes,
		hfree:          hfree,
		totalPages:     p.totalPages,
		allocatedPages: p.allocatedPages,
		policy:         p.policy,
		commitLimit:    p.commitLimit,
		committed:      p.committed,
	}
	if len(p.data) > 0 {
		if data == nil {
			data = make(map[FrameID]*frameData, len(p.data))
		} else {
			clear(data)
		}
		np.data = data
		for f, fd := range p.data {
			np.data[f] = &frameData{bytes: fd.bytes, shared: true}
			if markSrc {
				fd.shared = true
			}
		}
	}
	return np
}

// SharedFrames counts live frames whose byte arrays are still host-COW
// shared with a template or clone. On a frozen template it must never
// decrease: a drop means some clone's write reached the template's
// frames instead of breaking the sharing (the independence tests assert
// on this).
func (p *Physical) SharedFrames() int {
	n := 0
	for f, fd := range p.data {
		if fd.shared && p.slot(f).refs > 0 {
			n++
		}
	}
	return n
}
