package mem

import (
	"bytes"
	"testing"
)

// readFrame returns the first n bytes of f's contents.
func readFrame(p *Physical, f FrameID, n int) []byte {
	buf := make([]byte, n)
	p.Read(f, 0, buf)
	return buf
}

// TestCloneHostCOW pins the host-COW contract end to end: a clone
// reads the template's bytes without copying them, a write on any
// machine — clone, sibling, or the live snapshot source — breaks
// sharing for that frame only, and nobody else's view moves.
func TestCloneHostCOW(t *testing.T) {
	src := newPhys(8<<20, 0, CommitHeuristic) // room for a huge frame too
	f, err := src.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	src.Write(f, 0, []byte("original"))
	hf, err := src.AllocHuge()
	if err != nil {
		t.Fatal(err)
	}
	src.Write(hf, 0, []byte("huge-orig"))

	// Snapshot: the live source must also be marked shared, since it
	// keeps running and may write the same frames.
	tpl := src.CloneHost(src.meter, true)
	a := tpl.CloneHost(tpl.meter, false)
	b := tpl.CloneHost(tpl.meter, false)

	for name, p := range map[string]*Physical{"template": tpl, "clone a": a, "clone b": b} {
		if got := readFrame(p, f, 8); !bytes.Equal(got, []byte("original")) {
			t.Errorf("%s reads %q, want %q", name, got, "original")
		}
		if got := readFrame(p, hf, 9); !bytes.Equal(got, []byte("huge-orig")) {
			t.Errorf("%s huge frame reads %q, want %q", name, got, "huge-orig")
		}
	}

	// First write on a clone breaks sharing per frame; the template,
	// the sibling, and the source never see it.
	a.Write(f, 0, []byte("aaaaaaaa"))
	if got := readFrame(tpl, f, 8); !bytes.Equal(got, []byte("original")) {
		t.Errorf("clone write reached the template: %q", got)
	}
	if got := readFrame(b, f, 8); !bytes.Equal(got, []byte("original")) {
		t.Errorf("clone write reached a sibling: %q", got)
	}
	if got := readFrame(src, f, 8); !bytes.Equal(got, []byte("original")) {
		t.Errorf("clone write reached the snapshot source: %q", got)
	}

	// The live source writing post-snapshot must break sharing too,
	// not scribble on bytes the template aliases (the markSrc half).
	src.Write(hf, 0, []byte("src-moved"))
	if got := readFrame(tpl, hf, 9); !bytes.Equal(got, []byte("huge-orig")) {
		t.Errorf("source write reached the template: %q", got)
	}
	if got := readFrame(a, hf, 9); !bytes.Equal(got, []byte("huge-orig")) {
		t.Errorf("source write reached a clone: %q", got)
	}
}

// TestCloneOutOfOrderTeardown is the regression test for the latent
// single-owner assumption in the frame table: freeing a frame must
// only drop *this* Physical's entry, never assume it is the last (or
// only) machine holding those bytes. A clone frees a shared frame,
// reallocates the recycled FrameID, and writes fresh contents; the
// template and a sibling — torn down later, in a different order —
// must still read the original bytes, and the recycled frame must
// come back zero, not resurrect the template's data.
func TestCloneOutOfOrderTeardown(t *testing.T) {
	src := newPhys(1<<20, 0, CommitHeuristic)
	f, err := src.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	src.Write(f, 0, []byte("payload"))

	tpl := src.CloneHost(src.meter, true)
	a := tpl.CloneHost(tpl.meter, false)
	b := tpl.CloneHost(tpl.meter, false)

	// Clone a tears its frame down first, while template and sibling
	// still alias the bytes.
	if !a.DecRef(f) {
		t.Fatal("DecRef on clone a did not free (refcounts are per-machine)")
	}
	f2, err := a.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if f2 != f {
		t.Fatalf("free list did not recycle: got frame %d, want %d", f2, f)
	}
	// The recycled frame must be lazily zero — its old data entry was
	// dropped at free time, not left to resurrect the template's bytes.
	if got := readFrame(a, f2, 7); !bytes.Equal(got, make([]byte, 7)) {
		t.Errorf("recycled frame resurrected stale bytes: %q", got)
	}
	a.Write(f2, 0, []byte("rewrite"))

	// Later teardown of the other machines, out of creation order:
	// template first, then sibling — each still reads the original
	// bytes right up until its own free, and nothing double-frees.
	if got := readFrame(tpl, f, 7); !bytes.Equal(got, []byte("payload")) {
		t.Errorf("template bytes moved after clone teardown: %q", got)
	}
	if !tpl.DecRef(f) {
		t.Fatal("template DecRef did not free")
	}
	if got := readFrame(b, f, 7); !bytes.Equal(got, []byte("payload")) {
		t.Errorf("sibling bytes moved after template teardown: %q", got)
	}
	if !b.DecRef(f) {
		t.Fatal("sibling DecRef did not free")
	}
	if got := readFrame(a, f2, 7); !bytes.Equal(got, []byte("rewrite")) {
		t.Errorf("clone a's rewrite lost after siblings tore down: %q", got)
	}

	// Everyone's books balance independently.
	if got := tpl.AllocatedPages(); got != 0 {
		t.Errorf("template allocated pages = %d, want 0", got)
	}
	if got := b.AllocatedPages(); got != 0 {
		t.Errorf("sibling allocated pages = %d, want 0", got)
	}
	if got := a.AllocatedPages(); got != 1 {
		t.Errorf("clone a allocated pages = %d, want 1", got)
	}
}

// TestZeroFrameDropsSharing pins ZeroFrame's interaction with host
// COW: zeroing a shared frame on one machine reverts it to the lazy
// zero state locally and leaves every other machine's bytes alone.
func TestZeroFrameDropsSharing(t *testing.T) {
	src := newPhys(1<<20, 0, CommitHeuristic)
	f, err := src.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	src.Write(f, 0, []byte("shared"))
	tpl := src.CloneHost(src.meter, true)
	a := tpl.CloneHost(tpl.meter, false)

	a.ZeroFrame(f)
	if got := readFrame(a, f, 6); !bytes.Equal(got, make([]byte, 6)) {
		t.Errorf("zeroed frame reads %q, want zeroes", got)
	}
	if got := readFrame(tpl, f, 6); !bytes.Equal(got, []byte("shared")) {
		t.Errorf("ZeroFrame on a clone reached the template: %q", got)
	}
	if a.SharedFrames() != 0 {
		t.Errorf("clone still counts %d shared frames after ZeroFrame", a.SharedFrames())
	}
	if tpl.SharedFrames() != 1 {
		t.Errorf("template shared frames = %d, want 1", tpl.SharedFrames())
	}
}
