package mem

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/errno"
)

func newPhys(ram, swap uint64, pol CommitPolicy) *Physical {
	return NewPhysical(cost.NewMeter(cost.DefaultModel()), ram, swap, pol)
}

func TestAllocFreeRoundtrip(t *testing.T) {
	p := newPhys(1<<20, 0, CommitHeuristic) // 256 frames
	if got := p.TotalPages(); got != 256 {
		t.Fatalf("TotalPages = %d, want 256", got)
	}
	var frames []FrameID
	for i := 0; i < 256; i++ {
		f, err := p.Alloc()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		frames = append(frames, f)
	}
	if _, err := p.Alloc(); !errors.Is(err, errno.ENOMEM) {
		t.Fatalf("257th alloc: err = %v, want ENOMEM", err)
	}
	if p.FreePages() != 0 {
		t.Errorf("FreePages = %d, want 0", p.FreePages())
	}
	for _, f := range frames {
		if !p.DecRef(f) {
			t.Errorf("DecRef(%d) did not free", f)
		}
	}
	if p.FreePages() != 256 || p.AllocatedPages() != 0 {
		t.Errorf("after free: free=%d allocated=%d", p.FreePages(), p.AllocatedPages())
	}
}

func TestRefcountSharing(t *testing.T) {
	p := newPhys(1<<20, 0, CommitHeuristic)
	f, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	p.IncRef(f)
	p.IncRef(f)
	if got := p.Refs(f); got != 3 {
		t.Fatalf("Refs = %d, want 3", got)
	}
	if p.DecRef(f) {
		t.Error("freed at refs=2")
	}
	if p.DecRef(f) {
		t.Error("freed at refs=1")
	}
	if !p.DecRef(f) {
		t.Error("not freed at refs=0")
	}
}

func TestLazyMaterialisation(t *testing.T) {
	p := newPhys(1<<20, 0, CommitHeuristic)
	f, _ := p.Alloc()
	if p.Materialised(f) {
		t.Error("fresh frame materialised")
	}
	buf := make([]byte, 16)
	p.Read(f, 0, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("fresh frame not zero")
		}
	}
	// All-zero writes stay lazy.
	p.Write(f, 100, make([]byte, 64))
	if p.Materialised(f) {
		t.Error("all-zero write materialised the frame")
	}
	// A real write materialises.
	p.Write(f, 100, []byte{1, 2, 3})
	if !p.Materialised(f) {
		t.Error("nonzero write did not materialise")
	}
	p.Read(f, 99, buf[:5])
	want := []byte{0, 1, 2, 3, 0}
	for i, b := range want {
		if buf[i] != b {
			t.Errorf("read[%d] = %d, want %d", i, buf[i], b)
		}
	}
}

func TestCopyFrame(t *testing.T) {
	p := newPhys(1<<20, 0, CommitHeuristic)
	src, _ := p.Alloc()
	p.Write(src, 0, []byte("payload"))
	dst, err := p.CopyFrame(src)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	p.Read(dst, 0, buf)
	if string(buf) != "payload" {
		t.Errorf("copy = %q", buf)
	}
	// Copies are independent.
	p.Write(dst, 0, []byte("CHANGED"))
	p.Read(src, 0, buf)
	if string(buf) != "payload" {
		t.Errorf("source mutated: %q", buf)
	}
	// Lazy source copies stay lazy.
	lz, _ := p.Alloc()
	cp, _ := p.CopyFrame(lz)
	if p.Materialised(cp) {
		t.Error("copy of lazy frame materialised")
	}
}

func TestHugeFrames(t *testing.T) {
	p := newPhys(8<<20, 0, CommitHeuristic) // 2048 pages
	h, err := p.AllocHuge()
	if err != nil {
		t.Fatal(err)
	}
	if !h.IsHuge() || h.Size() != HugeSize || h.Pages() != 512 {
		t.Fatalf("huge frame geometry wrong: %v %d %d", h.IsHuge(), h.Size(), h.Pages())
	}
	if got := p.AllocatedPages(); got != 512 {
		t.Errorf("AllocatedPages = %d, want 512", got)
	}
	p.Write(h, HugeSize-4, []byte{9, 9, 9, 9})
	buf := make([]byte, 4)
	p.Read(h, HugeSize-4, buf)
	if buf[0] != 9 {
		t.Error("huge frame write/read failed")
	}
	// Copy of a huge frame is huge.
	cp, err := p.CopyFrame(h)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.IsHuge() {
		t.Error("copy of huge frame not huge")
	}
	p.DecRef(h)
	p.DecRef(cp)
	if p.AllocatedPages() != 0 {
		t.Errorf("leak: %d pages", p.AllocatedPages())
	}
	// Budget: 2048 pages = at most 4 huge frames.
	var hs []FrameID
	for {
		f, err := p.AllocHuge()
		if err != nil {
			break
		}
		hs = append(hs, f)
	}
	if len(hs) != 4 {
		t.Errorf("allocated %d huge frames from 8MiB, want 4", len(hs))
	}
}

func TestCommitPolicies(t *testing.T) {
	// Strict: limit = RAM + swap.
	p := newPhys(1<<20, 1<<20, CommitStrict) // 256+256 pages
	if err := p.Reserve(512); err != nil {
		t.Fatalf("reserve to limit: %v", err)
	}
	if err := p.Reserve(1); !errors.Is(err, errno.ENOMEM) {
		t.Fatalf("over-reserve: %v, want ENOMEM", err)
	}
	p.Unreserve(512)

	// Heuristic: cumulative overcommit is allowed; only a single
	// request larger than the limit fails.
	h := newPhys(1<<20, 0, CommitHeuristic) // limit 256 pages
	for i := 0; i < 3; i++ {
		if err := h.Reserve(200); err != nil {
			t.Fatalf("heuristic reserve %d: %v", i, err)
		}
	}
	if h.Committed() != 600 {
		t.Errorf("heuristic committed = %d, want 600 (overcommitted)", h.Committed())
	}
	if err := h.Reserve(10_000); !errors.Is(err, errno.ENOMEM) {
		t.Fatalf("heuristic absurd reserve: %v, want ENOMEM", err)
	}

	// Always: anything goes.
	a := newPhys(1<<20, 0, CommitAlways)
	if err := a.Reserve(1 << 40); err != nil {
		t.Fatalf("always reserve: %v", err)
	}
}

func TestZeroFrame(t *testing.T) {
	p := newPhys(1<<20, 0, CommitHeuristic)
	f, _ := p.Alloc()
	p.Write(f, 0, []byte{1})
	p.ZeroFrame(f)
	if p.Materialised(f) {
		t.Error("zeroed frame still materialised")
	}
}

// TestQuickAllocConservation: under any interleaving of allocs and
// frees, allocated+free == total and no frame is handed out twice.
func TestQuickAllocConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		p := newPhys(256<<12, 0, CommitHeuristic) // 256 frames
		live := map[FrameID]bool{}
		var order []FrameID
		for _, op := range ops {
			if op%3 != 0 && len(order) > 0 {
				// free the oldest
				id := order[0]
				order = order[1:]
				delete(live, id)
				p.DecRef(id)
			} else {
				id, err := p.Alloc()
				if err != nil {
					continue
				}
				if live[id] {
					return false // double allocation
				}
				live[id] = true
				order = append(order, id)
			}
			if p.AllocatedPages()+p.FreePages() != p.TotalPages() {
				return false
			}
			if p.AllocatedPages() != uint64(len(live)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickWriteReadRoundtrip: whatever is written at any offset reads
// back, and neighbouring bytes are untouched.
func TestQuickWriteReadRoundtrip(t *testing.T) {
	p := newPhys(1<<20, 0, CommitHeuristic)
	f, _ := p.Alloc()
	shadow := make([]byte, PageSize)
	fn := func(off uint16, data []byte) bool {
		o := int(off) % PageSize
		n := len(data)
		if o+n > PageSize {
			n = PageSize - o
		}
		p.Write(f, o, data[:n])
		copy(shadow[o:], data[:n])
		got := make([]byte, PageSize)
		p.Read(f, 0, got)
		for i := range shadow {
			if got[i] != shadow[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
