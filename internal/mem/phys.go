// Package mem implements the simulated machine's physical memory: a
// frame allocator with per-frame reference counts (for copy-on-write
// sharing), lazily materialised frame contents, huge (2 MiB) frames,
// and commit accounting with selectable overcommit policies.
//
// Base frames are 4 KiB. A frame whose contents have never been
// written holds no backing []byte at all and reads as zeroes; this
// lets the simulator model multi-gigabyte address spaces without
// allocating gigabytes of host memory, while still charging the
// virtual-time cost of zeroing and copying.
package mem

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/errno"
	"repro/internal/fault"
)

// Page geometry. These mirror x86-64 4 KiB base pages and 2 MiB huge
// pages.
const (
	PageShift     = 12
	PageSize      = 1 << PageShift // 4096
	HugeShift     = 21
	HugeSize      = 1 << HugeShift // 2 MiB
	FramesPerHuge = HugeSize / PageSize
)

// FrameID names a physical frame. Huge frames live in a separate
// namespace distinguished by the top bit. NoFrame is the invalid
// sentinel.
type FrameID uint32

// NoFrame is an invalid frame id.
const NoFrame FrameID = ^FrameID(0)

const hugeBit FrameID = 1 << 31

// IsHuge reports whether f names a 2 MiB frame.
func (f FrameID) IsHuge() bool { return f != NoFrame && f&hugeBit != 0 }

// Size reports the frame's size in bytes.
func (f FrameID) Size() int {
	if f.IsHuge() {
		return HugeSize
	}
	return PageSize
}

// Pages reports the frame's size in 4 KiB pages.
func (f FrameID) Pages() uint64 {
	if f.IsHuge() {
		return FramesPerHuge
	}
	return 1
}

// frame is one frame's allocator state. Deliberately pointer-free (8
// bytes): machine cloning copies the whole table with one memmove, and
// the garbage collector never scans it. Contents live out-of-line in
// Physical.data — most frames are lazy zeroes and have none.
type frame struct {
	refs int32
	next FrameID // intrusive free-list link, meaningful only while free
}

// frameData is one materialised frame's contents. shared marks bytes
// host-COW-aliased with a template or clone machine (see CloneHost):
// they must be copied out before the first in-place write. Purely
// host-side — it never affects refcounts, commit, or any metered cost.
type frameData struct {
	bytes  []byte
	shared bool
}

// CommitPolicy selects how commit (reservation) accounting behaves.
// It models /proc/sys/vm/overcommit_memory.
type CommitPolicy int

const (
	// CommitHeuristic allows reservations freely unless a single
	// request is larger than RAM+swap; processes discover memory
	// exhaustion later, at fault time (the OOM-killer regime the
	// paper blames fork for normalising).
	CommitHeuristic CommitPolicy = iota
	// CommitStrict refuses any reservation that would push total
	// committed pages past the commit limit (RAM + swap). Under
	// this policy forking a large process fails up front with
	// ENOMEM.
	CommitStrict
	// CommitAlways never refuses a reservation (overcommit_memory=1).
	CommitAlways
)

func (p CommitPolicy) String() string {
	switch p {
	case CommitHeuristic:
		return "heuristic"
	case CommitStrict:
		return "strict"
	case CommitAlways:
		return "always"
	}
	return fmt.Sprintf("CommitPolicy(%d)", int(p))
}

// Physical is the machine's physical memory.
type Physical struct {
	meter *cost.Meter

	// Base (4 KiB) frames. The allocator is O(1) in both time and
	// setup: never-allocated frames are handed out in ascending id
	// order from a bump watermark, and freed frames go on an
	// intrusive LIFO list threaded through the frame structs — no
	// per-frame free stack is ever built, and the frame table grows
	// lazily, so booting a multi-GiB machine costs nothing up front.
	frames   []frame
	nextFree uint64  // bump watermark: ids below this have been handed out
	freeHead FrameID // head of the intrusive free list (NoFrame = empty)

	// data holds materialised frame contents, base and huge alike
	// (huge ids keep their tag bit). A live frame with no entry reads
	// as zeroes; entries are deleted when the frame is freed or
	// zeroed, so every entry belongs to a live frame.
	data map[FrameID]*frameData

	hframes []frame   // huge (2 MiB) frames, grown on demand
	hfree   []FrameID // LIFO free stack of huge frames (few; a slice is fine)

	totalPages     uint64 // RAM size in 4 KiB pages
	allocatedPages uint64 // pages currently handed out (huge counts 512)

	policy      CommitPolicy
	commitLimit uint64 // pages (RAM + swap)
	committed   uint64 // pages currently reserved

	// inj, when set, is the machine's fault injector: frame
	// allocations and commit reservations become schedulable failure
	// points (nil = never inject; the Fail calls are nil-safe).
	inj *fault.Injector
}

// NewPhysical creates physical memory of ramBytes plus swapBytes of
// commit headroom under the given policy. Sizes are rounded down to
// whole pages. The meter is charged for every hardware operation.
func NewPhysical(meter *cost.Meter, ramBytes, swapBytes uint64, policy CommitPolicy) *Physical {
	nframes := ramBytes >> PageShift
	return &Physical{
		meter:       meter,
		freeHead:    NoFrame,
		totalPages:  nframes,
		policy:      policy,
		commitLimit: (ramBytes + swapBytes) >> PageShift,
	}
}

// TotalPages reports the RAM size in 4 KiB pages.
func (p *Physical) TotalPages() uint64 { return p.totalPages }

// FreePages reports how many 4 KiB pages remain unallocated.
func (p *Physical) FreePages() uint64 { return p.totalPages - p.allocatedPages }

// AllocatedPages reports how many 4 KiB pages are handed out (a huge
// frame accounts for 512).
func (p *Physical) AllocatedPages() uint64 { return p.allocatedPages }

// CommitLimit reports the commit ceiling in pages.
func (p *Physical) CommitLimit() uint64 { return p.commitLimit }

// Committed reports the pages currently reserved.
func (p *Physical) Committed() uint64 { return p.committed }

// Policy reports the commit policy in force.
func (p *Physical) Policy() CommitPolicy { return p.policy }

// SetPolicy changes the overcommit policy (used by experiments).
func (p *Physical) SetPolicy(pol CommitPolicy) { p.policy = pol }

// SetInjector installs the machine's fault injector (kernel boot).
func (p *Physical) SetInjector(i *fault.Injector) { p.inj = i }

// Injector returns the machine's fault injector (nil when fault
// injection is off; the address-space layer consults its own points
// through here).
func (p *Physical) Injector() *fault.Injector { return p.inj }

// Reserve requests commit for n pages of private writable memory.
// Under CommitStrict it fails with ENOMEM when the commit limit would
// be exceeded; under CommitHeuristic it fails only for single requests
// larger than the limit; CommitAlways never fails.
func (p *Physical) Reserve(n uint64) error {
	if e := p.inj.Fail(fault.PointCommit, n); e != errno.OK {
		return e
	}
	switch p.policy {
	case CommitStrict:
		if p.committed+n > p.commitLimit {
			return errno.ENOMEM
		}
	case CommitHeuristic:
		if n > p.commitLimit {
			return errno.ENOMEM
		}
	case CommitAlways:
	}
	p.committed += n
	return nil
}

// Unreserve returns commit for n pages.
func (p *Physical) Unreserve(n uint64) {
	if n > p.committed {
		panic(fmt.Sprintf("mem: unreserve %d with only %d committed", n, p.committed))
	}
	p.committed -= n
}

func (p *Physical) slot(f FrameID) *frame {
	if f == NoFrame {
		panic("mem: NoFrame")
	}
	if f.IsHuge() {
		i := f &^ hugeBit
		if uint64(i) >= uint64(len(p.hframes)) {
			panic(fmt.Sprintf("mem: bad huge frame %d", i))
		}
		return &p.hframes[i]
	}
	if uint64(f) >= uint64(len(p.frames)) {
		panic(fmt.Sprintf("mem: bad frame %d", f))
	}
	return &p.frames[f]
}

func (p *Physical) live(f FrameID) *frame {
	fr := p.slot(f)
	if fr.refs <= 0 {
		panic(fmt.Sprintf("mem: use of free frame %d", f))
	}
	return fr
}

// Alloc hands out one 4 KiB frame with refcount 1 and logically zero
// contents. It fails with ENOMEM when RAM is exhausted — the simulated
// OOM condition. Recently freed frames are reused first (LIFO, cache-
// warm); otherwise the next never-touched frame is taken in ascending
// id order, growing the frame table on demand.
func (p *Physical) Alloc() (FrameID, error) {
	if e := p.inj.Fail(fault.PointFrameAlloc, 1); e != errno.OK {
		return NoFrame, e
	}
	if p.allocatedPages+1 > p.totalPages {
		return NoFrame, errno.ENOMEM
	}
	var f FrameID
	if p.freeHead != NoFrame {
		f = p.freeHead
		p.freeHead = p.frames[f].next
	} else {
		if p.nextFree >= p.totalPages {
			return NoFrame, errno.ENOMEM
		}
		f = FrameID(p.nextFree)
		p.nextFree++
		if uint64(len(p.frames)) < p.nextFree {
			p.frames = append(p.frames, frame{})
		}
	}
	p.frames[f] = frame{refs: 1}
	p.allocatedPages++
	p.meter.Charge(p.meter.Model.FrameAlloc)
	return f, nil
}

// AllocHuge hands out one 2 MiB frame with refcount 1. The 512-page
// budget is charged against the same RAM pool as base frames.
func (p *Physical) AllocHuge() (FrameID, error) {
	if e := p.inj.Fail(fault.PointFrameAlloc, FramesPerHuge); e != errno.OK {
		return NoFrame, e
	}
	if p.allocatedPages+FramesPerHuge > p.totalPages {
		return NoFrame, errno.ENOMEM
	}
	var f FrameID
	if n := len(p.hfree); n > 0 {
		f = p.hfree[n-1]
		p.hfree = p.hfree[:n-1]
	} else {
		p.hframes = append(p.hframes, frame{})
		f = FrameID(len(p.hframes)-1) | hugeBit
	}
	*p.slot(f) = frame{refs: 1}
	p.allocatedPages += FramesPerHuge
	p.meter.Charge(p.meter.Model.FrameAlloc)
	return f, nil
}

// AllocZero allocates a 4 KiB frame and charges the zero-fill cost.
// (Contents are lazily zero anyway; the charge models the hardware.)
func (p *Physical) AllocZero() (FrameID, error) {
	f, err := p.Alloc()
	if err != nil {
		return NoFrame, err
	}
	p.meter.Charge(p.meter.Model.PageZero)
	p.meter.PageZeroes++
	return f, nil
}

// AllocHugeZero allocates a 2 MiB frame and charges the 2 MiB
// zero-fill cost.
func (p *Physical) AllocHugeZero() (FrameID, error) {
	f, err := p.AllocHuge()
	if err != nil {
		return NoFrame, err
	}
	p.meter.Charge(p.meter.Model.HugeZero)
	p.meter.PageZeroes += FramesPerHuge
	return f, nil
}

// IncRef adds a reference to f (COW sharing on fork).
func (p *Physical) IncRef(f FrameID) {
	p.live(f).refs++
}

// DecRef drops a reference; when the count reaches zero the frame is
// freed and true is returned.
func (p *Physical) DecRef(f FrameID) bool {
	fr := p.live(f)
	fr.refs--
	if fr.refs > 0 {
		return false
	}
	delete(p.data, f)
	if f.IsHuge() {
		*fr = frame{}
		p.hfree = append(p.hfree, f)
		p.allocatedPages -= FramesPerHuge
	} else {
		*fr = frame{next: p.freeHead}
		p.freeHead = f
		p.allocatedPages--
	}
	p.meter.Charge(p.meter.Model.FrameFree)
	return true
}

// Refs reports the reference count of f.
func (p *Physical) Refs(f FrameID) int32 {
	return p.live(f).refs
}

// Read copies frame contents at off into buf. Unmaterialised frames
// read as zeroes.
func (p *Physical) Read(f FrameID, off int, buf []byte) {
	p.live(f)
	if off < 0 || off+len(buf) > f.Size() {
		panic(fmt.Sprintf("mem: read off=%d len=%d beyond frame size %d", off, len(buf), f.Size()))
	}
	fd := p.data[f]
	if fd == nil {
		clear(buf)
		return
	}
	copy(buf, fd.bytes[off:off+len(buf)])
}

// Write stores data into frame f at off, materialising the frame's
// backing store only if the write changes its contents (an all-zero
// write to a zero frame stays lazy).
func (p *Physical) Write(f FrameID, off int, data []byte) {
	p.live(f)
	if off < 0 || off+len(data) > f.Size() {
		panic(fmt.Sprintf("mem: write off=%d len=%d beyond frame size %d", off, len(data), f.Size()))
	}
	fd := p.data[f]
	if fd == nil {
		allZero := true
		for _, b := range data {
			if b != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			return
		}
		fd = &frameData{bytes: make([]byte, f.Size())}
		if p.data == nil {
			p.data = map[FrameID]*frameData{}
		}
		p.data[f] = fd
	} else if fd.shared {
		// First write to a template-shared frame: break the host-side
		// sharing by copying the bytes out. Free — the simulated
		// machine already paid its COW break (or owns the frame
		// exclusively); only the host representation was shared.
		nd := make([]byte, f.Size())
		copy(nd, fd.bytes)
		fd.bytes = nd
		fd.shared = false
	}
	copy(fd.bytes[off:], data)
}

// Materialised reports whether f has real backing storage (false ⇒
// it is a lazy zero frame). Used by tests and memory accounting.
func (p *Physical) Materialised(f FrameID) bool {
	p.live(f)
	return p.data[f] != nil
}

// CopyFrame duplicates src into a newly allocated frame of the same
// size, charging the copy cost (the COW-break path). The new frame has
// refcount 1.
func (p *Physical) CopyFrame(src FrameID) (FrameID, error) {
	p.live(src)
	var srcData []byte
	if fd := p.data[src]; fd != nil {
		srcData = fd.bytes
	}
	var dst FrameID
	var err error
	if src.IsHuge() {
		dst, err = p.AllocHuge()
		if err == nil {
			p.meter.Charge(p.meter.Model.HugeCopy)
			p.meter.PageCopies += FramesPerHuge
		}
	} else {
		dst, err = p.Alloc()
		if err == nil {
			p.meter.Charge(p.meter.Model.PageCopy)
			p.meter.PageCopies++
		}
	}
	if err != nil {
		return NoFrame, err
	}
	if srcData != nil {
		nd := make([]byte, src.Size())
		copy(nd, srcData)
		if p.data == nil {
			p.data = map[FrameID]*frameData{}
		}
		p.data[dst] = &frameData{bytes: nd}
	}
	return dst, nil
}

// ZeroFrame resets f's contents to zero (used when recycling pages
// within an address space, e.g. exec tearing down the old image).
func (p *Physical) ZeroFrame(f FrameID) {
	p.live(f)
	delete(p.data, f)
	if f.IsHuge() {
		p.meter.Charge(p.meter.Model.HugeZero)
		p.meter.PageZeroes += FramesPerHuge
	} else {
		p.meter.Charge(p.meter.Model.PageZero)
		p.meter.PageZeroes++
	}
}
