package ulib

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/asm"
	"repro/internal/image"
)

// Installer is anything that can place an executable image at a path;
// *kernel.Kernel satisfies it. Depending on an interface here keeps
// ulib importable from the kernel's own tests.
type Installer interface {
	InstallImage(path string, im *image.Image) error
}

// Sources maps program name → assembly source (without the runtime,
// which Build appends).
var Sources = map[string]string{
	"true":             progTrue,
	"false":            progFalse,
	"echo":             progEcho,
	"cat":              progCat,
	"init":             progInit,
	"spawnloop":        progSpawnLoop,
	"forkloop":         progForkLoop,
	"forkexec":         progForkExec,
	"vforkexec":        progVforkExec,
	"stdio_fork":       progStdioFork,
	"offset_fork":      progOffsetFork,
	"threads_deadlock": progThreadsDeadlock,
	"threads_spawn":    progThreadsSpawn,
	"threads_sum":      progThreadsSum,
	"smpspin":          progSMPSpin,
	"segv":             progSegv,
	"sigdemo":          progSigdemo,
	"hog":              progHog,
	"pingpong":         progPingPong,
	"cloexec_probe":    progCloexecProbe,
	"netecho":          progNetEcho,
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*image.Image{}
)

// Build assembles (and caches) the named program.
func Build(name string) (*image.Image, error) {
	src, ok := Sources[name]
	if !ok {
		return nil, fmt.Errorf("ulib: unknown program %q", name)
	}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if im := cache[name]; im != nil {
		return im, nil
	}
	im, err := asm.Assemble(src + Runtime)
	if err != nil {
		return nil, fmt.Errorf("ulib: assembling %s: %w", name, err)
	}
	cache[name] = im
	return im, nil
}

// MustBuild panics on assembly errors (programs are constants, so an
// error is a bug).
func MustBuild(name string) *image.Image {
	im, err := Build(name)
	if err != nil {
		panic(err)
	}
	return im
}

// InstallAll writes every program into k's filesystem under /bin.
func InstallAll(k Installer) error {
	names := make([]string, 0, len(Sources))
	for n := range Sources {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		im, err := Build(n)
		if err != nil {
			return err
		}
		if err := k.InstallImage("/bin/"+n, im); err != nil {
			return err
		}
	}
	return nil
}

// Install writes one program into k's filesystem at path.
func Install(k Installer, name, path string) error {
	im, err := Build(name)
	if err != nil {
		return err
	}
	return k.InstallImage(path, im)
}

// ---------------------------------------------------------------
// Program sources. Register convention: the runtime clobbers r0-r9;
// programs keep durable state in r10-r13. At entry r0=argc, r1=argv,
// sp is set below the argument block.
// ---------------------------------------------------------------

// progNetEcho is the NIC exerciser: block in net_recv, echo every
// frame back to its sender with a 64-byte reply carrying the same
// tag, and exit on a zero tag (the harness's shutdown frame). The
// recv return word is src<<32|tag (see abi.SysNetRecv).
const progNetEcho = `
_start:
ne_loop:
    sys SYS_NET_RECV
    mov r3, r0
    shri r2, r3, 32         ; r2 = src
    li r1, 0xffffffff
    and r3, r3, r1          ; r3 = tag
    bz r3, ne_done
    mov r0, r2              ; dst = src
    mov r1, r3              ; tag echoed
    movi r2, 64             ; reply bytes
    sys SYS_NET_SEND
    b ne_loop
ne_done:
    movi r0, 0
    sys SYS_EXIT
`

// progTrue is the minimal child every process-creation benchmark
// spawns: it exits immediately.
const progTrue = `
_start:
    movi r0, 0
    sys SYS_EXIT
`

const progFalse = `
_start:
    movi r0, 1
    sys SYS_EXIT
`

// progEcho prints its arguments separated by spaces.
const progEcho = `
_start:
    mov r10, r0             ; argc
    mov r11, r1             ; argv
    movi r12, 1
echo_loop:
    bge r12, r10, echo_done
    shli r2, r12, 3
    add r2, r11, r2
    ld8 r0, [r2+0]
    call puts
    addi r12, r12, 1
    bge r12, r10, echo_done
    li r0, echo_sp
    call puts
    b echo_loop
echo_done:
    li r0, echo_nl
    call puts
    movi r0, 0
    sys SYS_EXIT
.data
echo_sp: .asciz " "
echo_nl: .asciz "\n"
`

// progCat copies stdin to stdout.
const progCat = `
_start:
cat_loop:
    movi r0, STDIN
    li r1, cat_buf
    movi r2, 512
    sys SYS_READ
    movi r3, 0
    blt r0, r3, cat_err
    bz r0, cat_done
    mov r2, r0
    li r1, cat_buf
    movi r0, STDOUT
    sys SYS_WRITE
    b cat_loop
cat_done:
    movi r0, 0
    sys SYS_EXIT
cat_err:
    movi r0, 1
    sys SYS_EXIT
.bss
cat_buf: .space 512
`

// progInit spawns each of its arguments as a child and reaps children
// until none remain — a minimal pid-1.
const progInit = `
_start:
    mov r10, r0
    mov r11, r1
    movi r12, 1
init_spawn:
    bge r12, r10, init_wait
    shli r2, r12, 3
    add r2, r11, r2
    ld8 r13, [r2+0]
    addi sp, sp, -16
    st8 [sp+0], r13
    movi r3, 0
    st8 [sp+8], r3
    mov r0, r13
    mov r1, sp
    movi r2, 0
    movi r3, 0
    sys SYS_SPAWN
    addi sp, sp, 16
    addi r12, r12, 1
    b init_spawn
init_wait:
    movi r0, -1
    movi r1, 0
    movi r2, 0
    sys SYS_WAITPID
    movi r3, 0
    bge r0, r3, init_wait
    movi r0, 0
    sys SYS_EXIT
`

// progSpawnLoop spawns argv[2] argv[1]-times, waiting for each: the
// spawn-throughput benchmark body.
const progSpawnLoop = `
_start:
    mov r11, r1
    ld8 r0, [r11+8]
    call atoi
    mov r10, r0
    ld8 r13, [r11+16]
sl_loop:
    bz r10, sl_done
    addi sp, sp, -16
    st8 [sp+0], r13
    movi r3, 0
    st8 [sp+8], r3
    mov r0, r13
    mov r1, sp
    movi r2, 0
    movi r3, 0
    sys SYS_SPAWN
    addi sp, sp, 16
    movi r1, 0
    movi r2, 0
    sys SYS_WAITPID
    addi r10, r10, -1
    b sl_loop
sl_done:
    movi r0, 0
    sys SYS_EXIT
`

// progForkLoop forks argv[1] children that exit immediately, waiting
// for each: the fork-throughput benchmark body.
const progForkLoop = `
_start:
    mov r11, r1
    ld8 r0, [r11+8]
    call atoi
    mov r10, r0
fl_loop:
    bz r10, fl_done
    sys SYS_FORK
    bnz r0, fl_parent
    movi r0, 0
    sys SYS_EXIT
fl_parent:
    movi r1, 0
    movi r2, 0
    sys SYS_WAITPID
    addi r10, r10, -1
    b fl_loop
fl_done:
    movi r0, 0
    sys SYS_EXIT
`

// progForkExec is the classic idiom: fork, exec argv[1] (default
// /bin/true) in the child, wait in the parent.
const progForkExec = `
_start:
    mov r11, r1
    ld8 r13, [r11+8]
    bnz r13, fe_have
    li r13, fe_default
fe_have:
    sys SYS_FORK
    bnz r0, fe_parent
    addi sp, sp, -16
    st8 [sp+0], r13
    movi r3, 0
    st8 [sp+8], r3
    mov r0, r13
    mov r1, sp
    sys SYS_EXEC
    movi r0, 127
    sys SYS_EXIT
fe_parent:
    movi r1, 0
    movi r2, 0
    sys SYS_WAITPID
    movi r0, 0
    sys SYS_EXIT
.data
fe_default: .asciz "/bin/true"
`

// progVforkExec is the same idiom via vfork: the parent is suspended
// until the child execs.
const progVforkExec = `
_start:
    mov r11, r1
    ld8 r13, [r11+8]
    bnz r13, ve_have
    li r13, ve_default
ve_have:
    sys SYS_VFORK
    bnz r0, ve_parent
    addi sp, sp, -16
    st8 [sp+0], r13
    movi r3, 0
    st8 [sp+8], r3
    mov r0, r13
    mov r1, sp
    sys SYS_EXEC
    movi r0, 127
    sys SYS_EXIT
ve_parent:
    movi r1, 0
    movi r2, 0
    sys SYS_WAITPID
    movi r0, 0
    sys SYS_EXIT
.data
ve_default: .asciz "/bin/true"
`

// progStdioFork reproduces the duplicated-buffer bug of §4.2: bytes
// buffered in user space before fork are flushed by parent *and*
// child.
const progStdioFork = `
_start:
    li r0, sf_msg
    call bputs
    sys SYS_FORK
    mov r10, r0
    call bflush
    bz r10, sf_child
    mov r0, r10
    movi r1, 0
    movi r2, 0
    sys SYS_WAITPID
sf_child:
    movi r0, 0
    sys SYS_EXIT
.data
sf_msg: .asciz "unflushed;"
`

// progOffsetFork shows the shared file offset: the child's write
// advances the parent's position, so the file ends up "BA", not "A"
// overwriting "B".
const progOffsetFork = `
_start:
    li r0, of_path
    movi r1, O_RDWR + O_CREATE
    sys SYS_OPEN
    mov r10, r0
    sys SYS_FORK
    bnz r0, of_parent
    mov r0, r10
    li r1, of_b
    movi r2, 1
    sys SYS_WRITE
    movi r0, 0
    sys SYS_EXIT
of_parent:
    movi r1, 0
    movi r2, 0
    sys SYS_WAITPID
    mov r0, r10
    li r1, of_a
    movi r2, 1
    sys SYS_WRITE
    movi r0, 0
    sys SYS_EXIT
.data
of_path: .asciz "/tmp/offset_fork"
of_b: .asciz "B"
of_a: .asciz "A"
`

// progThreadsDeadlock is §4.2's fatal composition of fork and threads:
// a second thread takes a lock and blocks; the main thread forks; the
// child — whose image contains the locked mutex but not the thread
// that owns it — blocks on the lock forever. The simulator's deadlock
// detector fires.
const progThreadsDeadlock = `
_start:
    li r0, td_thread
    movi r1, 0
    li r2, td_stack_top
    sys SYS_THREAD_CREATE
    movi r0, 1000
    sys SYS_NANOSLEEP       ; let the thread take the lock
    sys SYS_FORK
    bnz r0, td_parent
    li r0, td_lock
    call mutex_lock         ; blocks forever: owner not in this image
    movi r0, 0
    sys SYS_EXIT
td_parent:
    movi r1, 0
    movi r2, 0
    sys SYS_WAITPID         ; blocks forever: child is deadlocked
    movi r0, 0
    sys SYS_EXIT
td_thread:
    li r0, td_lock
    call mutex_lock
    li r0, td_park
    movi r1, 0
    sys SYS_FUTEX_WAIT      ; hold the lock and never wake
    b td_thread
.bss
.align 8
td_lock: .space 8
td_park: .space 8
td_stack: .space 4096
td_stack_top: .space 8
`

// progThreadsSum is the sane-threading control: two workers increment
// a shared counter under the futex mutex; main busy-yields until both
// finish and prints the total (2000).
const progThreadsSum = `
_start:
    li r0, ts_worker
    movi r1, 0
    li r2, ts_stack1_top
    sys SYS_THREAD_CREATE
    li r0, ts_worker
    movi r1, 0
    li r2, ts_stack2_top
    sys SYS_THREAD_CREATE
ts_join:
    li r3, ts_done
    ld8 r4, [r3+0]
    movi r5, 2
    beq r4, r5, ts_print
    sys SYS_YIELD
    b ts_join
ts_print:
    li r3, ts_counter
    ld8 r0, [r3+0]
    call print_u64
    li r0, ts_nl
    call puts
    movi r0, 0
    sys SYS_EXIT
ts_worker:
    movi r10, 1000
tw_loop:
    li r0, ts_lock
    call mutex_lock
    li r3, ts_counter
    ld8 r4, [r3+0]
    addi r4, r4, 1
    st8 [r3+0], r4
    li r0, ts_lock
    call mutex_unlock
    addi r10, r10, -1
    bnz r10, tw_loop
    li r0, ts_lock
    call mutex_lock
    li r3, ts_done
    ld8 r4, [r3+0]
    addi r4, r4, 1
    st8 [r3+0], r4
    li r0, ts_lock
    call mutex_unlock
    sys SYS_THREAD_EXIT
.data
ts_nl: .asciz "\n"
.bss
.align 8
ts_lock: .space 8
ts_counter: .space 8
ts_done: .space 8
ts_stack1: .space 4096
ts_stack1_top: .space 8
ts_stack2: .space 4096
ts_stack2_top: .space 8
`

// progSMPSpin is the multithreaded server of the SMP load scenarios:
// `smpspin <threads> <bytes>` maps and dirties a heap of the given
// size, then starts <threads> worker threads (max 8) that loop
// forever, each write-touching its own slice of the heap and
// yielding. The main thread parks on a futex; the harness kills the
// process when the scenario ends. While the workers run they keep the
// address space resident on several CPUs, so a harness-side fork
// snapshot pays a TLB-shootdown IPI per remote core, and every
// post-snapshot slice rewrite pays COW breaks with further IPIs — the
// Redis/SMP worst case of §5.
const progSMPSpin = `
_start:
    mov r10, r1             ; argv
    ld8 r0, [r10+8]         ; argv[1]: worker thread count
    call atoi
    mov r11, r0
    ld8 r0, [r10+16]        ; argv[2]: heap bytes
    call atoi
    mov r12, r0
    movi r0, 0
    mov r1, r12
    movi r2, PROT_READ + PROT_WRITE
    movi r3, 0
    sys SYS_MMAP
    movi r3, 0
    blt r0, r3, sp_fail
    li r3, sp_base
    st8 [r3+0], r0
    mov r13, r0             ; heap base
    div r4, r12, r11        ; slice = bytes / threads
    li r3, sp_slice
    st8 [r3+0], r4
    mov r0, r13
    mov r1, r12
    movi r2, 1
    sys SYS_TOUCH           ; dirty the whole heap: the resident parent
    movi r10, 0             ; i
sp_spawn:
    beq r10, r11, sp_park
    addi r4, r10, 1
    shli r4, r4, 12         ; (i+1)*4096
    li r2, sp_stacks
    add r2, r2, r4          ; worker i's stack top
    li r0, sp_worker
    mov r1, r10             ; arg = worker index
    sys SYS_THREAD_CREATE
    addi r10, r10, 1
    b sp_spawn
sp_park:
    li r0, sp_parkw
    movi r1, 0
    sys SYS_FUTEX_WAIT      ; parked forever; the harness kills us
    b sp_park
sp_fail:
    movi r0, 2
    sys SYS_EXIT
sp_worker:
    mov r10, r0             ; worker index
    li r3, sp_base
    ld8 r11, [r3+0]
    li r3, sp_slice
    ld8 r12, [r3+0]
    mul r4, r10, r12
    add r11, r11, r4        ; my slice base
sp_loop:
    mov r0, r11
    mov r1, r12
    movi r2, 1
    sys SYS_TOUCH           ; rewrite my slice (COW breaks after a snapshot)
    sys SYS_YIELD
    b sp_loop
.bss
.align 8
sp_base: .space 8
sp_slice: .space 8
sp_parkw: .space 8
sp_stacks: .space 32768
`

// progSegv dereferences null: default SIGSEGV kills the process.
const progSegv = `
_start:
    movi r1, 0
    ld8 r0, [r1+0]
    movi r0, 0
    sys SYS_EXIT
`

// progSigdemo installs a SIGUSR1 handler, signals itself, and prints
// from the handler and after sigreturn.
const progSigdemo = `
_start:
    movi r0, SIGUSR1
    movi r1, SIG_HANDLER
    li r2, sd_handler
    sys SYS_SIGACTION
    sys SYS_GETPID
    movi r1, SIGUSR1
    sys SYS_KILL
    li r0, sd_after
    call puts
    movi r0, 0
    sys SYS_EXIT
sd_handler:
    li r0, sd_msg
    call puts
    sys SYS_SIGRETURN
.data
sd_msg: .asciz "caught\n"
sd_after: .asciz "done\n"
`

// progHog maps argv[1] MiB of anonymous memory and write-touches it;
// with argv[2] present it then forks and the child re-touches every
// page (the COW storm that trips the OOM killer under heuristic
// overcommit, E5).
const progHog = `
_start:
    mov r11, r1
    ld8 r0, [r11+8]
    call atoi
    shli r10, r0, 20        ; bytes
    movi r0, 0
    mov r1, r10
    movi r2, PROT_READ + PROT_WRITE
    movi r3, 0
    sys SYS_MMAP
    movi r3, 0
    blt r0, r3, hog_fail
    mov r12, r0
    mov r0, r12
    mov r1, r10
    movi r2, 1
    sys SYS_TOUCH
    ld8 r2, [r11+16]
    bz r2, hog_done
    sys SYS_FORK
    movi r3, 0
    blt r0, r3, hog_fail
    bnz r0, hog_parent
    mov r0, r12
    mov r1, r10
    movi r2, 1
    sys SYS_TOUCH
    movi r0, 0
    sys SYS_EXIT
hog_parent:
    movi r1, 0
    movi r2, 0
    sys SYS_WAITPID
hog_done:
    movi r0, 0
    sys SYS_EXIT
hog_fail:
    movi r0, 2
    sys SYS_EXIT
`

// progPingPong: parent and child bounce a byte over a pipe pair N
// times (argv[1], default 100) — exercises pipe blocking both ways.
const progPingPong = `
_start:
    mov r11, r1
    ld8 r0, [r11+8]
    bz r0, pp_defn
    call atoi
    b pp_have
pp_defn:
    movi r0, 100
pp_have:
    mov r10, r0             ; rounds
    addi sp, sp, -32
    mov r0, sp
    sys SYS_PIPE            ; a: parent->child
    addi r0, sp, 16
    sys SYS_PIPE            ; b: child->parent
    ld8 r12, [sp+0]         ; a.r
    ld8 r13, [sp+8]         ; a.w
    sys SYS_FORK
    bnz r0, pp_parent
    ; child: read a.r, write b.w. Close the inherited copy of a.w
    ; first, or our own descriptor keeps the pipe's writer count up
    ; and the final read never sees EOF.
    ld8 r0, [sp+8]
    sys SYS_CLOSE
    ld8 r13, [sp+24]        ; b.w
pp_child_loop:
    mov r0, r12
    li r1, pp_buf
    movi r2, 1
    sys SYS_READ
    bz r0, pp_child_done    ; EOF
    mov r0, r13
    li r1, pp_buf
    movi r2, 1
    sys SYS_WRITE
    b pp_child_loop
pp_child_done:
    movi r0, 0
    sys SYS_EXIT
pp_parent:
    ld8 r12, [sp+16]        ; b.r
pp_parent_loop:
    bz r10, pp_parent_done
    mov r0, r13             ; a.w
    li r1, pp_buf
    movi r2, 1
    sys SYS_WRITE
    mov r0, r12             ; b.r
    li r1, pp_buf
    movi r2, 1
    sys SYS_READ
    addi r10, r10, -1
    b pp_parent_loop
pp_parent_done:
    mov r0, r13
    sys SYS_CLOSE           ; EOF to child
    movi r0, -1
    movi r1, 0
    movi r2, 0
    sys SYS_WAITPID
    li r0, pp_ok
    call puts
    movi r0, 0
    sys SYS_EXIT
.data
pp_ok: .asciz "pingpong ok\n"
.bss
pp_buf: .space 8
`

// progCloexecProbe writes "V" if fd 9 is still open after exec, "C" if
// it was closed — the Table 1 probe for O_CLOEXEC honouring.
const progCloexecProbe = `
_start:
    movi r0, 9
    movi r1, 0
    sys SYS_SET_CLOEXEC     ; validity probe: EBADF if fd 9 is closed
    movi r3, 0
    blt r0, r3, cp_closed
    li r0, cp_open
    call puts
    movi r0, 0
    sys SYS_EXIT
cp_closed:
    li r0, cp_shut
    call puts
    movi r0, 0
    sys SYS_EXIT
.data
cp_open: .asciz "V"
cp_shut: .asciz "C"
`

// progThreadsSpawn is the control for progThreadsDeadlock: identical
// setup (a second thread blocks holding the mutex), but the main
// thread uses posix_spawn instead of fork. The child gets a fresh
// image with no stale lock, so the program completes.
const progThreadsSpawn = `
_start:
    li r0, tsp_thread
    movi r1, 0
    li r2, tsp_stack_top
    sys SYS_THREAD_CREATE
    movi r0, 1000
    sys SYS_NANOSLEEP       ; let the thread take the lock
    addi sp, sp, -16
    li r3, tsp_path
    st8 [sp+0], r3
    movi r3, 0
    st8 [sp+8], r3
    li r0, tsp_path
    mov r1, sp
    movi r2, 0
    movi r3, 0
    sys SYS_SPAWN
    movi r1, 0
    movi r2, 0
    sys SYS_WAITPID         ; child exits normally
    li r0, tsp_ok
    call puts
    movi r0, 0
    sys SYS_EXIT            ; kills the lock-holder thread too
tsp_thread:
    li r0, tsp_lock
    call mutex_lock
    li r0, tsp_park
    movi r1, 0
    sys SYS_FUTEX_WAIT
    b tsp_thread
.data
tsp_path: .asciz "/bin/true"
tsp_ok: .asciz "spawn ok\n"
.bss
.align 8
tsp_lock: .space 8
tsp_park: .space 8
tsp_stack: .space 4096
tsp_stack_top: .space 8
`
