// Package ulib is the simulator's userland: a small runtime library
// written in the assembly dialect of internal/asm plus a collection of
// standard programs (init, echo, cat, true, spawn/fork benchmarks, and
// the fork-pitfall demonstrations from §4 of "A fork() in the road").
//
// Programs are assembled at first use and installed into a kernel's
// /bin by InstallAll.
package ulib

// Runtime is the shared library text appended to every program:
//
//	strlen      r0=cstr            -> r0=len
//	puts        r0=cstr            -> stdout        (clobbers r0-r5)
//	fputs       r0=fd, r1=cstr                      (clobbers r0-r5)
//	print_u64   r0=value           -> stdout decimal
//	atoi        r0=cstr            -> r0=value (decimal)
//	mutex_lock  r0=&word                            (clobbers r0-r4)
//	mutex_unlock r0=&word                           (clobbers r0-r2)
//	bputs       r0=cstr  — append to the user-space stdio buffer
//	bflush      flush the buffer to stdout
//
// The buffered-stdio pair exists to reproduce the classic fork bug:
// buffered bytes are duplicated into the child and flushed twice.
const Runtime = `
; ---------------------------------------------------------------
; runtime library (see ulib.Runtime)
; ---------------------------------------------------------------
.text
strlen:
    mov r1, r0
strlen_loop:
    ld1 r2, [r1+0]
    bz r2, strlen_done
    addi r1, r1, 1
    b strlen_loop
strlen_done:
    sub r0, r1, r0
    ret

puts:                       ; r0 = cstr
    mov r5, r0
    call strlen
    mov r2, r0              ; len
    mov r1, r5              ; buf
    movi r0, STDOUT
    sys SYS_WRITE
    ret

fputs:                      ; r0 = fd, r1 = cstr
    mov r6, r0              ; save fd
    mov r5, r1              ; save ptr
    mov r0, r1
    call strlen
    mov r2, r0
    mov r1, r5
    mov r0, r6
    sys SYS_WRITE
    ret

print_u64:                  ; r0 = value, prints decimal to stdout
    addi sp, sp, -32
    mov r1, sp
    addi r1, r1, 32         ; one past end of buffer
    movi r2, 10
pu_loop:
    mod r3, r0, r2
    addi r3, r3, '0'
    addi r1, r1, -1
    st1 [r1+0], r3
    div r0, r0, r2
    bnz r0, pu_loop
    mov r3, sp
    addi r3, r3, 32
    sub r2, r3, r1          ; len
    movi r0, STDOUT
    sys SYS_WRITE
    addi sp, sp, 32
    ret

atoi:                       ; r0 = cstr -> r0 = value
    mov r1, r0
    movi r0, 0
    movi r3, 10
atoi_loop:
    ld1 r2, [r1+0]
    bz r2, atoi_done
    addi r2, r2, -48        ; '0'
    movi r4, 9
    bltu r4, r2, atoi_done  ; non-digit
    mul r0, r0, r3
    add r0, r0, r2
    addi r1, r1, 1
    b atoi_loop
atoi_done:
    ret

mutex_lock:                 ; r0 = &word (0 free, 1 locked)
    mov r4, r0
ml_try:
    movi r1, 1
    xchg r2, [r4+0], r1
    bz r2, ml_acquired
    mov r0, r4
    movi r1, 1
    sys SYS_FUTEX_WAIT      ; returns 0 (woken) or -EAGAIN (changed)
    b ml_try
ml_acquired:
    ret

mutex_unlock:               ; r0 = &word
    movi r1, 0
    st8 [r0+0], r1
    movi r1, 1
    sys SYS_FUTEX_WAKE
    ret

; --- user-space buffered stdio (the fork trap) -------------------
bputs:                      ; r0 = cstr: append to buffer
    mov r5, r0
    call strlen
    mov r2, r0              ; len
    li r3, stdio_len
    ld8 r4, [r3+0]          ; current fill
    li r1, stdio_buf
    add r1, r1, r4          ; dest
    add r4, r4, r2
    st8 [r3+0], r4          ; new fill
    ; copy r2 bytes from r5 to r1
bp_copy:
    bz r2, bp_done
    ld1 r4, [r5+0]
    st1 [r1+0], r4
    addi r5, r5, 1
    addi r1, r1, 1
    addi r2, r2, -1
    b bp_copy
bp_done:
    ret

bflush:
    li r3, stdio_len
    ld8 r2, [r3+0]          ; len
    bz r2, bf_done
    li r1, stdio_buf
    movi r0, STDOUT
    sys SYS_WRITE
    li r3, stdio_len
    movi r2, 0
    st8 [r3+0], r2
bf_done:
    ret

.bss
.align 8
stdio_len: .space 8
stdio_buf: .space 1024
.text
`
