package ulib

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/kernel"
)

// TestAllProgramsAssemble catches syntax rot in any userland program.
func TestAllProgramsAssemble(t *testing.T) {
	for name := range Sources {
		if _, err := Build(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("no-such-program"); err == nil {
		t.Error("unknown program built")
	}
}

func TestBuildCaches(t *testing.T) {
	a, err := Build("true")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Build("true")
	if a != b {
		t.Error("cache miss on identical build")
	}
}

// TestRuntimeAlone: the runtime library must assemble standalone (it
// is what kxasm -runtime appends to user source).
func TestRuntimeAlone(t *testing.T) {
	im, err := asm.Assemble("_start:\n    movi r0, 0\n    sys SYS_EXIT\n" + Runtime)
	if err != nil {
		t.Fatalf("runtime does not assemble: %v", err)
	}
	if len(im.Text) < 40*isa.InstrSize {
		t.Errorf("runtime suspiciously small: %d bytes", len(im.Text))
	}
}

// TestRuntimeHasNoProgramLabels guards the namespace convention:
// runtime labels must not collide with the prefixes programs use.
func TestRuntimeNamespace(t *testing.T) {
	for _, reserved := range []string{"\n_start:", "\nmain:"} {
		if strings.Contains(Runtime, reserved) {
			t.Errorf("runtime defines %q", strings.TrimSpace(reserved))
		}
	}
}

// TestEntryPoints: every program defines _start and links it as entry.
func TestEntryPoints(t *testing.T) {
	for name := range Sources {
		im := MustBuild(name)
		if im.Entry < im.TextBase || im.Entry >= im.TextBase+uint64(len(im.Text)) {
			t.Errorf("%s: entry %#x outside text", name, im.Entry)
		}
	}
}

// TestProgramsEndWithTrap: text must not fall off the end into
// zeroes silently — the last instruction of every program path should
// be a syscall or branch. We check the weaker structural property
// that images are non-empty and 8-byte multiple.
func TestProgramShape(t *testing.T) {
	for name := range Sources {
		im := MustBuild(name)
		if len(im.Text)%isa.InstrSize != 0 {
			t.Errorf("%s: text size %d not a multiple of %d", name, len(im.Text), isa.InstrSize)
		}
		if len(im.Text) == 0 {
			t.Errorf("%s: empty text", name)
		}
	}
}

// TestInstallAllIntoKernel exercises the Installer integration: every
// program lands in /bin and decodes as a valid image.
func TestInstallAllIntoKernel(t *testing.T) {
	k, err := kernel.New(kernel.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := InstallAll(k); err != nil {
		t.Fatal(err)
	}
	names, err := k.FS().ReadDir(nil, "/bin")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != len(Sources) {
		t.Errorf("/bin has %d entries, want %d", len(names), len(Sources))
	}
	for _, n := range names {
		ino, err := k.FS().Resolve(nil, "/bin/"+n)
		if err != nil {
			t.Errorf("%s: %v", n, err)
			continue
		}
		if _, err := image.DecodeHeader(ino.Data()); err != nil {
			t.Errorf("%s: invalid image: %v", n, err)
		}
	}
	// Install to a custom path too.
	if err := Install(k, "true", "/sbin-true"); err != nil {
		t.Fatal(err)
	}
	if _, err := k.FS().Resolve(nil, "/sbin-true"); err != nil {
		t.Errorf("custom install path: %v", err)
	}
	if err := Install(k, "no-such", "/x"); err == nil {
		t.Error("installing unknown program succeeded")
	}
}
