package kernel

// runQueue is one CPU's FIFO of runnable threads, backed by a
// power-of-two ring buffer (each simulated CPU owns one; the
// dispatcher steals across queues when its own is empty). The earlier
// representation — a plain slice popped with runq = runq[1:] — kept
// the backing array's dead prefix alive and forced a fresh allocation
// every time append outgrew it, which thrashes once load scenarios
// park thousands of threads. The ring reuses its storage: push and pop
// are O(1) with no shifting, and the buffer only grows (doubling) when
// the queue is genuinely full.
type runQueue struct {
	buf  []*Thread
	head int // index of the oldest element
	n    int // number of queued threads
}

// Len reports the number of queued threads.
func (q *runQueue) Len() int { return q.n }

// push enqueues t at the tail.
func (q *runQueue) push(t *Thread) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = t
	q.n++
}

// pop dequeues the oldest thread; it panics on an empty queue (the
// scheduler checks Len first).
func (q *runQueue) pop() *Thread {
	if q.n == 0 {
		panic("kernel: pop of empty run queue")
	}
	t := q.buf[q.head]
	q.buf[q.head] = nil // no stale *Thread keeping an exited task alive
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return t
}

// grow doubles the ring (minimum 16 slots), unwrapping the elements
// into the front of the new buffer.
func (q *runQueue) grow() {
	size := len(q.buf) * 2
	if size == 0 {
		size = 16
	}
	nb := make([]*Thread, size)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf, q.head = nb, 0
}
