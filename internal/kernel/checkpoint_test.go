package kernel

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/addrspace"
	"repro/internal/mem"
	"repro/internal/vfs"
)

// ckErr asserts err is a *CheckpointError whose reason mentions want.
func ckErr(t *testing.T, err error, want string) {
	t.Helper()
	var ce *CheckpointError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CheckpointError about %q", err, want)
	}
	if !strings.Contains(ce.Reason, want) {
		t.Errorf("refusal %q does not mention %q", ce.Reason, want)
	}
}

// TestCheckpointRefusals enumerates the fork-entangled states that
// cannot be serialized one-sided — the paper's claim as a type error.
func TestCheckpointRefusals(t *testing.T) {
	k, _ := boot(t, Options{})
	host := k.NewSynthetic("host", nil)

	// A vfork child borrows the parent's space: refused.
	child, err := k.ForkWithMode(host, ForkVfork)
	if err != nil {
		t.Fatal(err)
	}
	_, err = k.CheckpointProcess(child, CheckpointOpts{})
	ckErr(t, err, "borrowed")

	// The parent has an unreaped child: refused too.
	_, err = k.CheckpointProcess(host, CheckpointOpts{})
	ckErr(t, err, "children")
	k.DestroyProcess(child)

	// A pipe end's peer stays behind: refused.
	r, w := vfs.NewPipe()
	rfd, err := host.FDs().Install(r, false, 0)
	if err != nil {
		w.Release()
		t.Fatal(err)
	}
	_, err = k.CheckpointProcess(host, CheckpointOpts{})
	ckErr(t, err, "pipe")
	host.FDs().Close(rfd)
	w.Release()

	// MAP_SHARED memory is visible to other processes on the source
	// machine: refused.
	sh, err := host.Space().Map(0, mem.PageSize, addrspace.Read|addrspace.Write,
		addrspace.MapOpts{Name: "shm", Shared: true})
	if err != nil {
		t.Fatal(err)
	}
	_, err = k.CheckpointProcess(host, CheckpointOpts{})
	ckErr(t, err, "MAP_SHARED")
	if err := host.Space().Unmap(sh.Start, sh.Len()); err != nil {
		t.Fatal(err)
	}

	// Disentangled, the same process serializes fine.
	if _, err := k.CheckpointProcess(host, CheckpointOpts{}); err != nil {
		t.Errorf("disentangled checkpoint failed: %v", err)
	}

	// Dead processes refuse.
	k.DestroyProcess(host)
	_, err = k.CheckpointProcess(host, CheckpointOpts{})
	ckErr(t, err, "not alive")
}

// TestCheckpointRestoreAcrossMachines migrates a process blocked in
// net_recv to a second machine: the restored thread re-executes the
// blocked syscall, parks on the *target* NIC's queue, and the target
// then behaves byte-for-byte like a machine that booted the program
// itself — same echo, same counters.
func TestCheckpointRestoreAcrossMachines(t *testing.T) {
	const addr = 4
	src := bootNetEcho(t, addr)
	p := src.Lookup(1)
	if p == nil {
		t.Fatal("no init on source")
	}
	img, err := src.CheckpointProcess(p, CheckpointOpts{})
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if img.PageBytes() == 0 {
		t.Fatal("image carries no pages")
	}
	if len(img.Threads) != 1 || !img.Threads[0].Runnable {
		t.Fatalf("threads = %+v, want one runnable (blocked syscalls restart)", img.Threads)
	}

	dst, _ := boot(t, Options{})
	dst.NetAttach(addr)
	rp, err := dst.RestoreProcess(img)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if rp.Name != p.Name {
		t.Errorf("restored name = %q, want %q", rp.Name, p.Name)
	}
	// Run: the thread retries net_recv and parks on dst's queue.
	if err := dst.Run(RunLimits{MaxInstructions: 1_000_000}); err != nil {
		t.Fatalf("run restored: %v", err)
	}
	if n := dst.NetPendingRecv(); n != 1 {
		t.Fatalf("restored NetPendingRecv = %d, want 1", n)
	}

	// The migrated machine now echoes exactly like a cold one.
	cold := bootNetEcho(t, addr)
	drive := func(k *Kernel) []NetFrame {
		t.Helper()
		k.NetInject(NetFrame{Src: 9, Dst: addr, Tag: 42, Bytes: 128})
		k.NetInject(NetFrame{Src: 9, Dst: addr, Tag: 0, Bytes: 0})
		if err := k.Run(RunLimits{MaxInstructions: 1_000_000}); err != nil {
			t.Fatalf("drive: %v", err)
		}
		return k.NetDrainOutbox()
	}
	coldOut, dstOut := drive(cold), drive(dst)
	if len(dstOut) != len(coldOut) || len(dstOut) != 1 || dstOut[0] != coldOut[0] {
		t.Errorf("migrated echo = %+v, cold = %+v", dstOut, coldOut)
	}
	if n := dst.LiveProcessCount(); n != 0 {
		t.Errorf("%d live processes after shutdown, want 0 (restored proc must exit+reap)", n)
	}

	// The source still owns its original: checkpoint was a read.
	if p.State() != ProcAlive {
		t.Error("source process died from being checkpointed")
	}
}

// TestRestoreMissingFile: an image referencing a file the target does
// not carry fails cleanly and leaves no half-restored process behind.
func TestRestoreMissingFile(t *testing.T) {
	src := bootNetEcho(t, 2)
	p := src.Lookup(1)
	img, err := src.CheckpointProcess(p, CheckpointOpts{})
	if err != nil {
		t.Fatal(err)
	}

	dst := mustNew(t, Options{}) // no ulib: /bin/netecho does not exist
	before := dst.ProcessCount()
	pages := dst.Phys().AllocatedPages()
	if _, err := dst.RestoreProcess(img); err == nil {
		t.Fatal("restore with missing backing file succeeded")
	}
	if got := dst.ProcessCount(); got != before {
		t.Errorf("process count %d -> %d: restore leaked a process", before, got)
	}
	if got := dst.Phys().AllocatedPages(); got != pages {
		t.Errorf("allocated pages %d -> %d: restore leaked frames", pages, got)
	}
}
