package kernel

import (
	"encoding/binary"

	"repro/internal/errno"
	"repro/internal/sig"
)

// sigFrameSize is the signal frame pushed on the user stack before a
// handler runs: 16 registers, pc, and the previous signal mask.
const sigFrameSize = 8 * 18

// SendSignal directs s at process p (kill(2) semantics). Unknown or
// dead targets return ESRCH.
func (k *Kernel) SendSignal(p *Process, s sig.Signal) error {
	if p == nil || p.state != ProcAlive {
		return errno.ESRCH
	}
	if !s.Valid() {
		return errno.EINVAL
	}
	if s == sig.SIGKILL {
		k.killProcess(p, s)
		return nil
	}
	p.pending = p.pending.Add(s)
	// Kick any thread that could take it: blocked threads in
	// interruptible waits are woken so delivery happens promptly.
	// (All this kernel's blocking syscalls are restartable, so an
	// ignored signal simply re-enters the wait; a handler runs
	// first and the wait then restarts — BSD-style SA_RESTART.)
	for _, t := range p.threads {
		if t.state == TBlocked && !t.sigMask.Has(s) {
			k.unblock(t)
			break
		}
		if t.state == TParked && !t.sigMask.Has(s) {
			// Parked threads never run; deliver terminal
			// default actions immediately so synthetic
			// processes can still be killed.
			if p.sigs.Get(s).Kind == sig.ActDefault && sig.DefaultFor(s) == sig.EffectTerminate {
				k.killProcess(p, s)
				return nil
			}
		}
	}
	return nil
}

// checkSignals runs at every instruction boundary. It returns true if
// the step was consumed by signal work (handler frame push or process
// death).
func (k *Kernel) checkSignals(t *Thread) bool {
	avail := (t.pending | t.proc.pending) &^ t.sigMask
	if avail.Empty() {
		return false
	}
	s := avail.First()
	t.pending = t.pending.Del(s)
	t.proc.pending = t.proc.pending.Del(s)

	d := t.proc.sigs.Get(s)
	switch d.Kind {
	case sig.ActIgnore:
		return false // consumed silently; this step proceeds
	case sig.ActDefault:
		switch sig.DefaultFor(s) {
		case sig.EffectIgnore, sig.EffectStop, sig.EffectContinue:
			// Stop/continue are modelled as ignore; job
			// control is out of scope (documented in
			// DESIGN.md).
			return false
		default:
			k.killProcess(t.proc, s)
			return true
		}
	case sig.ActHandler:
		return k.pushSignalFrame(t, s, d)
	}
	return false
}

// pushSignalFrame saves thread context on the user stack and redirects
// execution to the handler. Frame layout (ascending addresses from the
// new sp): r0..r15, pc, oldmask.
func (k *Kernel) pushSignalFrame(t *Thread, s sig.Signal, d sig.Disposition) bool {
	newSP := t.regs[14] - sigFrameSize
	frame := make([]byte, sigFrameSize)
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint64(frame[8*i:], t.regs[i])
	}
	binary.LittleEndian.PutUint64(frame[8*16:], t.pc)
	binary.LittleEndian.PutUint64(frame[8*17:], uint64(t.sigMask))
	if err := t.proc.space.WriteBytes(newSP, frame); err != nil {
		// Can't build the frame (stack overflow): kill as if
		// uncaught.
		k.SegvKills++
		k.killProcess(t.proc, sig.SIGSEGV)
		return true
	}
	t.regs[14] = newSP
	t.regs[0] = uint64(s)
	t.pc = d.Handler
	t.sigMask = t.sigMask.Union(d.Mask).Add(s)
	return true
}

// sigReturn restores the context saved by pushSignalFrame. The handler
// must leave sp at the frame base (the value it received).
func (k *Kernel) sigReturn(t *Thread) error {
	frame := make([]byte, sigFrameSize)
	if err := t.proc.space.ReadBytes(t.regs[14], frame); err != nil {
		return errno.EFAULT
	}
	for i := 0; i < 16; i++ {
		t.regs[i] = binary.LittleEndian.Uint64(frame[8*i:])
	}
	t.pc = binary.LittleEndian.Uint64(frame[8*16:])
	t.sigMask = sig.Set(binary.LittleEndian.Uint64(frame[8*17:])).Del(sig.SIGKILL).Del(sig.SIGSTOP)
	return nil
}
