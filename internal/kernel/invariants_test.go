package kernel

// Property-based tests over the process-management API: arbitrary
// interleavings of spawn/fork/exit/reap must preserve the process
// table's structural invariants and never leak memory or commit.

import (
	"testing"
	"testing/quick"

	"repro/internal/addrspace"
	"repro/internal/mem"
	"repro/internal/ulib"
	"repro/internal/vfs"
)

func newOF(ino *vfs.Inode) *vfs.OpenFile { return vfs.NewOpenFile(ino, vfs.ORdWr) }

const (
	abiFADup2 = 1
	abiFAOpen = 3
)

// checkTreeInvariants validates parent/child bookkeeping.
func checkTreeInvariants(t *testing.T, k *Kernel) bool {
	t.Helper()
	ok := true
	for pid, p := range k.procs {
		if p.Pid != pid {
			t.Logf("pid key mismatch: %d vs %d", pid, p.Pid)
			ok = false
		}
		if p.state == ProcReaped {
			t.Logf("reaped process %d still in table", pid)
			ok = false
		}
		for _, c := range p.children {
			if c.parent != p {
				t.Logf("child %d of %d has parent %v", c.Pid, p.Pid, c.parent)
				ok = false
			}
			if c.state == ProcReaped {
				t.Logf("reaped child %d still linked under %d", c.Pid, p.Pid)
				ok = false
			}
		}
		if p.parent != nil && p.parent.state == ProcAlive {
			found := false
			for _, c := range p.parent.children {
				if c == p {
					found = true
				}
			}
			if !found {
				t.Logf("process %d missing from parent %d's child list", p.Pid, p.parent.Pid)
				ok = false
			}
		}
	}
	return ok
}

// TestQuickProcessTree drives random process-management operations.
func TestQuickProcessTree(t *testing.T) {
	f := func(ops []uint8) bool {
		k := mustNew(t, Options{RAMBytes: 512 << 20})
		if err := ulib.Install(k, "true", "/bin/true"); err != nil {
			t.Fatal(err)
		}
		root := k.NewSynthetic("root", nil)
		if _, err := root.Space().Map(0x100000, 1<<20, addrspace.Read|addrspace.Write, addrspace.MapOpts{}); err != nil {
			t.Fatal(err)
		}
		live := []*Process{root}
		for _, op := range ops {
			if len(live) == 0 {
				break
			}
			target := live[int(op/8)%len(live)]
			switch op % 8 {
			case 0, 1: // spawn a parked child
				c, err := k.Spawn(target, "/bin/true", []string{"true"}, nil, SpawnAttr{}, false)
				if err == nil {
					live = append(live, c)
				}
			case 2, 3: // fork
				c, err := k.Fork(target)
				if err == nil {
					live = append(live, c)
				}
			case 4: // exit (children reparent or self-reap)
				k.ExitProcess(target, 0)
				nl := live[:0]
				for _, p := range live {
					if p.state == ProcAlive {
						nl = append(nl, p)
					}
				}
				live = nl
			case 5: // reap any zombie child of target
				k.WaitReap(target, -1)
			case 6: // touch some memory (fault paths under churn)
				target.Space().Touch(0x100000, 4096, addrspace.AccessWrite)
			case 7: // exec the target to a fresh image
				k.Exec(target, "/bin/true", []string{"true"})
			}
			if !checkTreeInvariants(t, k) {
				return false
			}
		}
		// Tear everything down: no leaks of frames or commit.
		for _, p := range live {
			k.DestroyProcess(p)
		}
		for _, p := range k.procs {
			if p.state == ProcZombie {
				k.reap(p)
			}
		}
		if got := k.phys.AllocatedPages(); got != 0 {
			t.Logf("leaked %d pages", got)
			return false
		}
		if got := k.phys.Committed(); got != 0 {
			t.Logf("leaked %d committed pages", got)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSpawnFailurePaths: spawn must unwind cleanly on every failure
// mode, leaking neither processes nor descriptors.
func TestSpawnFailurePaths(t *testing.T) {
	k := mustNew(t, Options{RAMBytes: 64 << 20})
	if err := ulib.Install(k, "true", "/bin/true"); err != nil {
		t.Fatal(err)
	}
	parent := k.NewSynthetic("parent", nil)
	base := k.ProcessCount()

	// Missing binary.
	if _, err := k.Spawn(parent, "/bin/absent", nil, nil, SpawnAttr{}, false); err == nil {
		t.Error("spawn of missing binary succeeded")
	}
	// Bad file action (dup2 of a closed fd).
	fas := []FileAction{{Op: abiFADup2, FD: 42, NewFD: 0}}
	if _, err := k.Spawn(parent, "/bin/true", []string{"t"}, fas, SpawnAttr{}, false); err == nil {
		t.Error("spawn with bad dup2 succeeded")
	}
	// Bad open path in an action.
	fas = []FileAction{{Op: abiFAOpen, FD: 0, Path: "/nope/x"}}
	if _, err := k.Spawn(parent, "/bin/true", []string{"t"}, fas, SpawnAttr{}, false); err == nil {
		t.Error("spawn with bad open succeeded")
	}
	if got := k.ProcessCount(); got != base {
		t.Errorf("process count %d after failures, want %d", got, base)
	}
	if got := k.phys.Committed(); got != parent.Space().Committed()>>12 {
		t.Errorf("commit leak after failed spawns: %d", got)
	}
	k.DestroyProcess(parent)
}

// TestForkFailureUnwind: a fork refused by strict commit must leave no
// trace.
func TestForkFailureUnwind(t *testing.T) {
	k := mustNew(t, Options{RAMBytes: 32 << 20, Commit: mem.CommitStrict})
	parent := k.NewSynthetic("parent", nil)
	if _, err := parent.Space().Map(0x100000, 20<<20, addrspace.Read|addrspace.Write, addrspace.MapOpts{}); err != nil {
		t.Fatal(err)
	}
	base := k.ProcessCount()
	children := len(parent.children)
	if _, err := k.Fork(parent); err == nil {
		t.Fatal("fork should fail under strict commit")
	}
	if k.ProcessCount() != base {
		t.Errorf("half-created child left in table")
	}
	if len(parent.children) != children {
		t.Errorf("dangling child link")
	}
	k.DestroyProcess(parent)
	if k.phys.Committed() != 0 {
		t.Errorf("commit leak: %d", k.phys.Committed())
	}
}

// TestExecFailureKeepsOldImage: a failed exec must leave the process
// able to continue with its original address space.
func TestExecFailureKeepsOldImage(t *testing.T) {
	k := mustNew(t, Options{})
	if err := ulib.Install(k, "true", "/bin/true"); err != nil {
		t.Fatal(err)
	}
	p := k.NewSynthetic("p", nil)
	v, err := p.Space().Map(0x100000, 4096, addrspace.Read|addrspace.Write, addrspace.MapOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Space().WriteBytes(v.Start, []byte("still here")); err != nil {
		t.Fatal(err)
	}
	if err := k.Exec(p, "/bin/missing", nil); err == nil {
		t.Fatal("exec of missing binary succeeded")
	}
	buf := make([]byte, 10)
	if err := p.Space().ReadBytes(v.Start, buf); err != nil || string(buf) != "still here" {
		t.Errorf("old image damaged by failed exec: %q %v", buf, err)
	}
	k.DestroyProcess(p)
}

// TestFDExhaustionOnSpawnClone: a parent at the descriptor limit can
// still spawn (the clone preserves, not extends), but file actions
// that need new slots fail cleanly.
func TestFDExhaustionOnSpawnClone(t *testing.T) {
	k := mustNew(t, Options{})
	if err := ulib.Install(k, "true", "/bin/true"); err != nil {
		t.Fatal(err)
	}
	parent := k.NewSynthetic("parent", nil)
	ino, _ := k.FS().WriteFile("/tmp/x", nil)
	for {
		if _, err := parent.FDs().Install(newOF(ino), false, 0); err != nil {
			break
		}
	}
	child, err := k.Spawn(parent, "/bin/true", []string{"t"}, nil, SpawnAttr{}, false)
	if err != nil {
		t.Fatalf("spawn from fd-full parent: %v", err)
	}
	if child.FDs().OpenCount() != parent.FDs().OpenCount() {
		t.Errorf("child fds = %d, parent = %d", child.FDs().OpenCount(), parent.FDs().OpenCount())
	}
	k.DestroyProcess(child)
	k.DestroyProcess(parent)
}
