package kernel

import "testing"

// TestRunQueueFIFO drives the ring through interleaved push/pop
// sequences that force wraparound and growth, checking FIFO order
// against a reference slice throughout.
func TestRunQueueFIFO(t *testing.T) {
	mk := make([]*Thread, 100)
	for i := range mk {
		mk[i] = &Thread{TID: i}
	}
	var q runQueue
	var ref []*Thread
	next := 0
	// Pattern: push bursts of growing size, drain partially — the
	// head walks around the buffer many times and the buffer must
	// grow mid-wrap.
	for round := 1; round <= 40; round++ {
		for i := 0; i < round%7+1; i++ {
			th := mk[next%len(mk)]
			next++
			q.push(th)
			ref = append(ref, th)
		}
		for i := 0; i < round%5; i++ {
			if len(ref) == 0 {
				break
			}
			got := q.pop()
			if got != ref[0] {
				t.Fatalf("round %d: pop = tid %d, want tid %d", round, got.TID, ref[0].TID)
			}
			ref = ref[1:]
		}
		if q.Len() != len(ref) {
			t.Fatalf("round %d: Len = %d, want %d", round, q.Len(), len(ref))
		}
	}
	for len(ref) > 0 {
		if got := q.pop(); got != ref[0] {
			t.Fatalf("drain: pop = tid %d, want tid %d", got.TID, ref[0].TID)
		}
		ref = ref[1:]
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty after drain: %d", q.Len())
	}
}

// TestRunQueuePopEmptyPanics pins the contract the scheduler relies on.
func TestRunQueuePopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("pop of empty queue did not panic")
		}
	}()
	var q runQueue
	q.pop()
}
