package kernel

import (
	"repro/internal/abi"
	"repro/internal/cost"
	"repro/internal/errno"
	"repro/internal/fault"
	"repro/internal/sig"
	"repro/internal/vfs"
)

// FileAction is one posix_spawn file action, applied in the child in
// order before "exec".
type FileAction struct {
	Op    int // abi.FADup2, abi.FAClose, abi.FAOpen
	FD    int
	NewFD int    // FADup2 target
	Path  string // FAOpen
	Flags vfs.OpenFlags
}

// SpawnAttr is the posix_spawn attribute block.
type SpawnAttr struct {
	Flags      uint64 // abi.SpawnSetSigDef | abi.SpawnSetSigMask
	SigDefault sig.Set
	SigMask    sig.Set
}

// doSpawn creates a new process running path's image without ever
// duplicating the parent: descriptors are inherited by reference
// (minus close-on-exec, plus file actions), signal dispositions follow
// the exec rules, and the address space is built fresh from the image.
// Its cost is independent of the parent's address-space size — the
// other line in Figure 1.
func (k *Kernel) doSpawn(parent *Process, callerMask sig.Set, path string, argv []string,
	fas []FileAction, attr SpawnAttr, start bool) (*Process, error) {

	ino, hdr, err := k.resolveExecutable(parent.cwd, path)
	if err != nil {
		return nil, err
	}

	// The spawn path's fixed overhead (libc child setup, dynamic
	// linking of the minimal runtime): the reason posix_spawn's
	// constant is higher than a tiny fork's.
	k.meter.Charge(k.meter.Model.SpawnSetup)

	child := k.newProcess(path, parent)
	fail := func(err error) (*Process, error) {
		if child.fds != nil {
			child.fds.CloseAll()
		}
		k.abortFork(child)
		return nil, err
	}

	// Descriptors: inherit by reference, then file actions (in
	// order, with FAChdir affecting subsequent relative FAOpens,
	// matching posix_spawn_file_actions_addchdir), then
	// close-on-exec.
	if e := k.faults.Fail(fault.PointFDClone, uint64(parent.fds.OpenCount())); e != errno.OK {
		return fail(e)
	}
	var nfds int
	child.fds, nfds = parent.fds.Clone()
	k.meter.Charge(cost.Ticks(nfds) * k.meter.Model.FDClone)
	for _, fa := range fas {
		switch fa.Op {
		case abi.FADup2:
			if _, err := child.fds.Dup2(fa.FD, fa.NewFD); err != nil {
				return fail(err)
			}
		case abi.FAClose:
			if err := child.fds.Close(fa.FD); err != nil {
				return fail(err)
			}
		case abi.FAOpen:
			of, err := k.openPath(child.cwd, fa.Path, fa.Flags)
			if err != nil {
				return fail(err)
			}
			if err := child.fds.InstallAt(of, fa.Flags&vfs.OCloexec != 0, fa.FD); err != nil {
				of.Release()
				return fail(err)
			}
		case abi.FAChdir:
			dir, err := k.fs.Resolve(child.cwd, fa.Path)
			if err != nil {
				return fail(err)
			}
			if dir.Type != vfs.TypeDir {
				return fail(errno.ENOTDIR)
			}
			child.cwd = dir
		default:
			return fail(errno.EINVAL)
		}
	}
	child.fds.DoCloexec()

	// Signal dispositions: as if fork+exec, then the explicit
	// attribute resets.
	child.sigs = parent.sigs.Clone()
	k.meter.Charge(k.meter.Model.SigClone)
	child.sigs.ResetForExec()
	if attr.Flags&abi.SpawnSetSigDef != 0 {
		child.sigs.ResetAll(attr.SigDefault)
	}

	space, ctx, err := k.buildSpace(ino, hdr, argv)
	if err != nil {
		return fail(err)
	}
	child.space = space
	child.spaceOwned = true

	if e := k.faults.Fail(fault.PointThreadCreate, 1); e != errno.OK {
		child.space.Destroy()
		child.space = nil
		child.spaceOwned = false
		return fail(e)
	}

	state := TParked
	if start {
		state = TRunnable
	}
	ct := k.newThread(child, state)
	ct.regs = ctx.regs
	ct.pc = ctx.pc
	ct.sigMask = callerMask
	if attr.Flags&abi.SpawnSetSigMask != 0 {
		ct.sigMask = attr.SigMask.Del(sig.SIGKILL).Del(sig.SIGSTOP)
	}
	if len(argv) > 0 {
		child.Name = argv[0]
	}
	return child, nil
}

// Spawn is the Go-harness posix_spawn: the child starts runnable if
// start is true, parked otherwise.
func (k *Kernel) Spawn(parent *Process, path string, argv []string, fas []FileAction, attr SpawnAttr, start bool) (*Process, error) {
	var mask sig.Set
	if t := parent.MainThread(); t != nil {
		mask = t.sigMask
	}
	return k.doSpawn(parent, mask, path, argv, fas, attr, start)
}

// openPath opens path relative to cwd with POSIX open(2) semantics.
func (k *Kernel) openPath(cwd *vfs.Inode, path string, flags vfs.OpenFlags) (*vfs.OpenFile, error) {
	var ino *vfs.Inode
	var err error
	if flags&vfs.OCreate != 0 {
		ino, err = k.fs.Create(cwd, path)
	} else {
		ino, err = k.fs.Resolve(cwd, path)
		if err == nil && ino.Type == vfs.TypeFile && flags&vfs.OTrunc != 0 {
			ino.SetData(nil)
		}
	}
	if err != nil {
		return nil, err
	}
	if ino.Type == vfs.TypeDir {
		return nil, errno.EISDIR
	}
	return vfs.NewOpenFile(ino, flags), nil
}

// BootInit creates pid 1 from an image with stdin/stdout/stderr wired
// to /dev/console, and starts it.
func (k *Kernel) BootInit(path string, argv []string) (*Process, error) {
	if k.procs[1] != nil {
		return nil, errno.EEXIST
	}
	ino, hdr, err := k.resolveExecutable(nil, path)
	if err != nil {
		return nil, err
	}
	p := k.newProcess("init", nil)
	space, ctx, err := k.buildSpace(ino, hdr, argv)
	if err != nil {
		k.abortFork(p)
		return nil, err
	}
	p.space = space
	p.spaceOwned = true
	p.fds = vfs.NewFDTable()
	console, err := k.fs.Resolve(nil, "/dev/console")
	if err != nil {
		panic("kernel: /dev/console missing")
	}
	for fd := 0; fd < 3; fd++ {
		flags := vfs.ORdOnly
		if fd > 0 {
			flags = vfs.OWrOnly
		}
		if _, err := p.fds.Install(vfs.NewOpenFile(console, flags), false, fd); err != nil {
			panic(err)
		}
	}
	t := k.newThread(p, TRunnable)
	t.regs = ctx.regs
	t.pc = ctx.pc
	return p, nil
}

// NewSynthetic creates a process shell driven directly from Go: empty
// address space, empty descriptor table, one parked thread. The
// measurement harness uses these to build parents of arbitrary sizes
// without running VM code.
func (k *Kernel) NewSynthetic(name string, parent *Process) *Process {
	p := k.newProcess(name, parent)
	p.space = k.newSpace()
	p.spaceOwned = true
	p.fds = vfs.NewFDTable()
	k.newThread(p, TParked)
	return p
}
