package kernel

import (
	"repro/internal/cost"
	"repro/internal/errno"
	"repro/internal/fault"
)

// ForkMode selects the duplication strategy.
type ForkMode int

// Fork modes.
const (
	// ForkCOW is modern fork: page tables are mirrored with every
	// private page marked copy-on-write. Cost Θ(mapped pages).
	ForkCOW ForkMode = iota
	// ForkEager is 1970s fork: every private page is physically
	// copied at fork time (the paper's §2 history).
	ForkEager
	// ForkVfork shares the parent's address space outright and
	// suspends the parent until the child execs or exits.
	ForkVfork
)

func (m ForkMode) String() string {
	switch m {
	case ForkCOW:
		return "cow"
	case ForkEager:
		return "eager"
	case ForkVfork:
		return "vfork"
	}
	return "fork?"
}

// forkOpts controls doFork.
type forkOpts struct {
	mode  ForkMode
	start bool // enqueue the child thread (false for Go-harness children)
}

// doFork duplicates caller's process. On success the child's single
// thread is a copy of caller (registers included); the syscall layer
// fixes up return values. It fails with ENOMEM when commit or frames
// run out.
func (k *Kernel) doFork(caller *Thread, opts forkOpts) (*Process, error) {
	parent := caller.proc
	if k.opts.DenyMultithreadedFork && opts.mode != ForkVfork && parent.LiveThreads() > 1 {
		// §8 mitigation: refuse to capture an image containing
		// other threads' lock state. vfork is exempt — the child
		// shares rather than snapshots, and execs immediately.
		return nil, errno.EAGAIN
	}
	child := k.newProcess(parent.Name, parent)

	// Address space.
	switch opts.mode {
	case ForkVfork:
		child.space = parent.space
		child.spaceOwned = false
	case ForkEager:
		s, err := parent.space.CloneEager()
		if err != nil {
			k.abortFork(child)
			return nil, err
		}
		child.space = s
		child.spaceOwned = true
	default:
		s, err := parent.space.CloneCOW()
		if err != nil {
			k.abortFork(child)
			return nil, err
		}
		child.space = s
		child.spaceOwned = true
	}

	// Descriptors: every open slot gains a reference; offsets stay
	// shared (POSIX).
	if e := k.faults.Fail(fault.PointFDClone, uint64(parent.fds.OpenCount())); e != errno.OK {
		k.abortForkChild(child)
		return nil, e
	}
	var nfds int
	child.fds, nfds = parent.fds.Clone()
	k.meter.Charge(cost.Ticks(nfds) * k.meter.Model.FDClone)

	// Signals: dispositions copy; pending signals do NOT (POSIX).
	child.sigs = parent.sigs.Clone()
	k.meter.Charge(k.meter.Model.SigClone)

	if e := k.faults.Fail(fault.PointThreadCreate, 1); e != errno.OK {
		child.fds.CloseAll()
		k.abortForkChild(child)
		return nil, e
	}

	// Exactly one thread survives into the child: the caller. This
	// is the composability trap of §4.2 — other threads' stacks
	// exist in the child's memory image, but the threads
	// themselves, and whatever locks they held, are gone.
	state := TParked
	if opts.start {
		state = TRunnable
	}
	ct := k.newThread(child, state)
	ct.regs = caller.regs
	ct.pc = caller.pc
	ct.sigMask = caller.sigMask

	if opts.mode == ForkVfork && opts.start {
		// Suspend the parent until the child execs or exits.
		child.vforkWaiter = caller
		caller.vforkChild = child
		k.block(caller, nil, "vfork")
	}
	return child, nil
}

// abortForkChild unwinds a child whose address space is already in
// place: the owned space is destroyed (a vfork child borrowing the
// parent's space just drops the reference) before the process-table
// entry goes.
func (k *Kernel) abortForkChild(child *Process) {
	if child.space != nil && child.spaceOwned {
		child.space.Destroy()
	}
	child.space = nil
	k.abortFork(child)
}

// abortFork unwinds a half-created child.
func (k *Kernel) abortFork(child *Process) {
	if par := child.parent; par != nil {
		for i, c := range par.children {
			if c == child {
				par.children = append(par.children[:i], par.children[i+1:]...)
				break
			}
		}
	}
	delete(k.procs, child.Pid)
}

// Fork is the Go-harness fork: it duplicates p (which must have at
// least one thread; synthetic processes have a parked one) and returns
// the parked child. Mode ForkCOW unless the kernel was booted with
// EagerFork.
func (k *Kernel) Fork(p *Process) (*Process, error) {
	caller := p.MainThread()
	if caller == nil {
		return nil, errno.ESRCH
	}
	mode := ForkCOW
	if k.opts.EagerFork {
		mode = ForkEager
	}
	return k.doFork(caller, forkOpts{mode: mode})
}

// ForkMode forks p with an explicit strategy (ablation experiments).
func (k *Kernel) ForkWithMode(p *Process, mode ForkMode) (*Process, error) {
	caller := p.MainThread()
	if caller == nil {
		return nil, errno.ESRCH
	}
	if mode == ForkVfork {
		// Harness vfork: shares the space but does not suspend
		// anything (there is no VM thread to suspend).
		return k.doFork(caller, forkOpts{mode: ForkVfork})
	}
	return k.doFork(caller, forkOpts{mode: mode})
}
