package kernel

import (
	"strings"
	"testing"

	"repro/internal/errno"
)

// Regression tests for the two PR9 NIC bugs the migration work
// exposed: CloneInto dropping the nic field entirely (fresh clones got
// addr=0 instead of the detached sentinel, recycled scratch shells
// resurrected retired NIC state, and a cloned thread blocked in
// net_recv waited on an orphaned queue NetInject never woke), and
// sysNetSend accepting tags wider than the 32-bit wire format that
// sysNetRecv's src<<32|tag return word silently truncates.

// bootTracedEcho is bootNetEcho with the structured trace on, so
// clone-equivalence checks can byte-compare renders.
func bootTracedEcho(t *testing.T, addr int) *Kernel {
	t.Helper()
	k, _ := boot(t, Options{Trace: true})
	k.NetAttach(addr)
	if _, err := k.BootInit("/bin/netecho", []string{"/bin/netecho"}); err != nil {
		t.Fatalf("BootInit: %v", err)
	}
	if err := k.Run(RunLimits{MaxInstructions: 1_000_000}); err != nil {
		t.Fatalf("run to first recv: %v", err)
	}
	if n := k.NetPendingRecv(); n != 1 {
		t.Fatalf("NetPendingRecv = %d, want 1", n)
	}
	return k
}

// driveEcho delivers one frame and the shutdown frame, runs the
// machine to completion, and returns everything observable: the
// echoed outbox, the rendered trace, final NIC counters, and the
// virtual clock.
func driveEcho(t *testing.T, k *Kernel, addr int) (out []NetFrame, trace string, elapsed uint64) {
	t.Helper()
	k.NetInject(NetFrame{Src: 3, Dst: addr, Tag: 42, Bytes: 128})
	k.NetInject(NetFrame{Src: 3, Dst: addr, Tag: 0, Bytes: 0})
	if err := k.Run(RunLimits{MaxInstructions: 1_000_000}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if n := k.LiveProcessCount(); n != 0 {
		t.Fatalf("%d live processes after shutdown frame, want 0", n)
	}
	return k.NetDrainOutbox(), k.Tracer().Render(), uint64(k.Elapsed())
}

// TestCloneDetachedNIC: a machine never attached to a fabric clones
// with the detached sentinel -1, not a freshly zeroed addr 0 (which
// is a valid fabric address and would alias node 0).
func TestCloneDetachedNIC(t *testing.T) {
	k, _ := boot(t, Options{})
	if got := k.NetAddr(); got != -1 {
		t.Fatalf("source NetAddr = %d, want -1", got)
	}
	if got := k.Clone(true).NetAddr(); got != -1 {
		t.Errorf("clone NetAddr = %d, want detached sentinel -1", got)
	}
}

// TestCloneBlockedNetRecv is the orphaned-queue regression: clone a
// machine whose only thread is blocked in net_recv, then drive clone,
// source, and a never-cloned machine identically. NetInject on the
// clone must wake the *cloned* waiter — before the fix it woke a
// queue nothing polls and the clone deadlocked. All three runs must
// be byte-identical in trace, outbox, counters, and virtual time.
func TestCloneBlockedNetRecv(t *testing.T) {
	const addr = 4
	cold := bootTracedEcho(t, addr)
	coldOut, coldTrace, coldElapsed := driveEcho(t, cold, addr)
	if len(coldOut) != 1 || coldOut[0].Tag != 42 {
		t.Fatalf("cold outbox = %+v, want one tag-42 echo", coldOut)
	}

	src := bootTracedEcho(t, addr)
	clone := src.Clone(true)
	if got := clone.NetAddr(); got != addr {
		t.Fatalf("clone NetAddr = %d, want %d", got, addr)
	}
	if n := clone.NetPendingRecv(); n != 1 {
		t.Fatalf("clone NetPendingRecv = %d, want 1 (waiter must ride along)", n)
	}

	for _, m := range []struct {
		name string
		k    *Kernel
	}{{"clone", clone}, {"post-snapshot source", src}} {
		out, trace, elapsed := driveEcho(t, m.k, addr)
		if len(out) != 1 || out[0] != coldOut[0] {
			t.Errorf("%s outbox = %+v, want %+v", m.name, out, coldOut)
		}
		if trace != coldTrace {
			t.Errorf("%s trace diverged from never-cloned run:\ngot:\n%s\nwant:\n%s", m.name, trace, coldTrace)
		}
		if elapsed != coldElapsed {
			t.Errorf("%s elapsed = %d, want %d", m.name, elapsed, coldElapsed)
		}
	}
}

// TestCloneInFlightInbox: frames sitting in the inbox (and outbox)
// at snapshot time travel with the clone — and stay with the source.
func TestCloneInFlightInbox(t *testing.T) {
	const addr = 6
	src := bootTracedEcho(t, addr)
	src.NetInject(NetFrame{Src: 2, Dst: addr, Tag: 7, Bytes: 16})
	src.NetInject(NetFrame{Src: 2, Dst: addr, Tag: 8, Bytes: 16})

	clone := src.Clone(true)
	run := func(name string, k *Kernel) []NetFrame {
		t.Helper()
		k.NetInject(NetFrame{Src: 2, Dst: addr, Tag: 0, Bytes: 0})
		if err := k.Run(RunLimits{MaxInstructions: 1_000_000}); err != nil {
			t.Fatalf("%s run: %v", name, err)
		}
		return k.NetDrainOutbox()
	}
	srcOut := run("source", src)
	cloneOut := run("clone", clone)
	if len(cloneOut) != 2 || cloneOut[0].Tag != 7 || cloneOut[1].Tag != 8 {
		t.Errorf("clone echoed %+v, want tags 7,8 (in-flight inbox lost)", cloneOut)
	}
	if len(srcOut) != len(cloneOut) {
		t.Errorf("source echoed %d frames, clone %d — inbox not independent", len(srcOut), len(cloneOut))
	}
	fsS, frS, bsS, brS := src.NetStats()
	fsC, frC, bsC, brC := clone.NetStats()
	if fsS != fsC || frS != frC || bsS != bsC || brS != brC {
		t.Errorf("NetStats diverged: source %d/%d/%d/%d clone %d/%d/%d/%d",
			fsS, frS, bsS, brS, fsC, frC, bsC, brC)
	}
}

// TestCloneIntoScratchNIC is the recycled-shell regression: stamping
// into a retired kernel must not resurrect the retired machine's NIC
// address, counters, or queued frames.
func TestCloneIntoScratchNIC(t *testing.T) {
	const addr = 4
	scratch := bootTracedEcho(t, 9)
	scratch.NetInject(NetFrame{Src: 1, Dst: 9, Tag: 5, Bytes: 4096})
	scratch.NetInject(NetFrame{Src: 1, Dst: 9, Tag: 0, Bytes: 0})
	if err := scratch.Run(RunLimits{MaxInstructions: 1_000_000}); err != nil {
		t.Fatalf("retire scratch: %v", err)
	}
	// The retired machine leaves a drained-but-dirty NIC behind:
	// nonzero counters, an un-drained outbox, address 9.
	if fs, _, _, _ := scratch.NetStats(); fs == 0 {
		t.Fatal("scratch NIC has no state to resurrect; test is vacuous")
	}

	src := bootTracedEcho(t, addr)
	clone := src.CloneInto(true, scratch)
	if got := clone.NetAddr(); got != addr {
		t.Errorf("recycled clone NetAddr = %d, want %d (scratch addr leaked)", got, addr)
	}
	fsS, frS, bsS, brS := src.NetStats()
	fsC, frC, bsC, brC := clone.NetStats()
	if fsS != fsC || frS != frC || bsS != bsC || brS != brC {
		t.Errorf("recycled clone NetStats = %d/%d/%d/%d, want source's %d/%d/%d/%d",
			fsC, frC, bsC, brC, fsS, frS, bsS, brS)
	}
	if out := clone.NetDrainOutbox(); len(out) != 0 {
		t.Errorf("recycled clone outbox = %+v, want empty (scratch frames resurrected)", out)
	}

	cold := bootTracedEcho(t, addr)
	_, coldTrace, coldElapsed := driveEcho(t, cold, addr)
	_, cloneTrace, cloneElapsed := driveEcho(t, clone, addr)
	if cloneTrace != coldTrace {
		t.Errorf("recycled clone trace diverged from never-cloned run:\ngot:\n%s\nwant:\n%s", cloneTrace, coldTrace)
	}
	if cloneElapsed != coldElapsed {
		t.Errorf("recycled clone elapsed = %d, want %d", cloneElapsed, coldElapsed)
	}
}

// TestNetSendRejectsWideTag: tags above MaxNetTag fail with EINVAL
// before any work is priced — nothing enters the outbox, no counter
// moves, and the clock does not advance.
func TestNetSendRejectsWideTag(t *testing.T) {
	k := bootNetEcho(t, 5)
	sender := k.procs[1].threads[0]
	before := k.Elapsed()

	if _, err := k.sysNetSend(sender, 2, MaxNetTag+1, 8); err != errno.EINVAL {
		t.Fatalf("net_send(tag=2^32) err = %v, want EINVAL", err)
	}
	if out := k.NetDrainOutbox(); len(out) != 0 {
		t.Errorf("rejected send reached the outbox: %+v", out)
	}
	if fs, _, bs, _ := k.NetStats(); fs != 0 || bs != 0 {
		t.Errorf("rejected send counted: sent %d frames / %d bytes", fs, bs)
	}
	if k.Elapsed() != before {
		t.Errorf("rejected send charged the meter: %d -> %d", before, k.Elapsed())
	}

	// The boundary value is legal and flows through whole.
	if _, err := k.sysNetSend(sender, 2, MaxNetTag, 8); err != nil {
		t.Fatalf("net_send(tag=2^32-1) err = %v, want nil", err)
	}
	out := k.NetDrainOutbox()
	if len(out) != 1 || out[0].Tag != MaxNetTag {
		t.Fatalf("outbox = %+v, want one frame with tag 2^32-1", out)
	}
}

// TestNetSendWideTagTraced drives the rejection through the syscall
// dispatcher: the program sees -EINVAL in r0 and the structured trace
// records the failed exit.
func TestNetSendWideTagTraced(t *testing.T) {
	k, p, _, err := runAsm(t, Options{Trace: true}, `
_start:
    movi r0, 7              ; dst
    li   r1, 0x100000000    ; one past the 32-bit wire tag
    movi r2, 8
    sys SYS_NET_SEND
    movi r3, -22            ; -EINVAL
    bne r0, r3, bad
    movi r0, 0
    sys SYS_EXIT
bad:
    movi r0, 1
    sys SYS_EXIT
`)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code := exitCode(t, p); code != 0 {
		t.Fatalf("exit code %d: program did not see -EINVAL", code)
	}
	if out := k.NetDrainOutbox(); len(out) != 0 {
		t.Errorf("truncation-prone frame reached the outbox: %+v", out)
	}
	if trace := k.Tracer().Render(); !strings.Contains(trace, "net_send = EINVAL") {
		t.Errorf("trace does not record the rejection:\n%s", trace)
	}
}
