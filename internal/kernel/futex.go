package kernel

import (
	"repro/internal/addrspace"
	"repro/internal/errno"
)

// futexKey identifies a futex word. The address space pointer is part
// of the key, so after a fork the child's futex words are distinct
// from the parent's even at the same virtual address — which is
// exactly why a lock held by a non-forked thread can never be released
// in the child (§4.2's deadlock, reproduced by TestForkThreadsDeadlock
// and examples/threads).
type futexKey struct {
	space *addrspace.Space
	va    uint64
}

func (k *Kernel) futexQ(key futexKey) *WaitQueue {
	q := k.futexes[key]
	if q == nil {
		q = NewWaitQueue("futex")
		k.futexes[key] = q
	}
	return q
}

// sysFutexWait blocks t until a wake on addr, unless *addr != expected
// (EAGAIN). The load and the block are atomic with respect to the
// simulation (single-threaded kernel), so there is no lost-wakeup
// window.
func (k *Kernel) sysFutexWait(t *Thread, addr, expected uint64) (uint64, error) {
	cur, err := readU64(t.proc.space, addr)
	if err != nil {
		return 0, errno.EFAULT
	}
	key := futexKey{t.proc.space, addr}
	if cur != expected {
		// Memory changed since the caller's check. If this is a
		// retry after wakeup the caller still sees success —
		// but with restartable syscalls we cannot distinguish;
		// return EAGAIN and let userland loop (the ulib lock
		// does exactly that).
		return 0, errno.EAGAIN
	}
	k.block(t, k.futexQ(key), "futex")
	return 0, errBlocked
}

// sysFutexWake wakes up to count waiters on addr and returns how many
// woke. Waking advances the blocked threads past their wait — their
// SYS futex_wait instruction will re-execute, observe the changed
// value, and return EAGAIN to userland, which then re-examines the
// lock word.
func (k *Kernel) sysFutexWake(t *Thread, addr, count uint64) (uint64, error) {
	key := futexKey{t.proc.space, addr}
	q, ok := k.futexes[key]
	if !ok {
		return 0, nil
	}
	woken := uint64(0)
	for woken < count && k.wakeOne(q) {
		woken++
	}
	if q.Len() == 0 {
		delete(k.futexes, key)
	}
	return woken, nil
}
