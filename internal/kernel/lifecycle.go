package kernel

import (
	"repro/internal/abi"
	"repro/internal/errno"
	"repro/internal/fault"
	"repro/internal/sig"
	"repro/internal/vfs"
)

// detachThread removes t from any scheduler structure and marks it
// exited.
func (k *Kernel) detachThread(t *Thread) {
	if t.state == TBlocked && t.wait != nil {
		q := t.wait
		for i, w := range q.ts {
			if w == t {
				q.ts = append(q.ts[:i], q.ts[i+1:]...)
				break
			}
		}
	}
	t.wait = nil
	t.state = TExited
	// Run-queue entries are skipped lazily by state checks.
}

// ExitProcess terminates p with the given abi-encoded status: threads
// die, descriptors close (waking pipe peers), the address space is
// torn down, children are reparented to init, and the parent is
// notified via SIGCHLD and its wait queue.
func (k *Kernel) ExitProcess(p *Process, status uint64) {
	if p.state != ProcAlive {
		return
	}
	if k.tracer != nil {
		k.trace(fault.Event{Kind: fault.EvProcExit, Pid: int(p.Pid), Aux: status, Name: p.Name})
	}
	// Collect pipes before closing so their waiters can be woken
	// (a reader blocked on a pipe must see EOF when the last writer
	// dies).
	var pipes []*vfs.Pipe
	if p.fds != nil {
		for fd := 0; fd <= p.fds.MaxFD(); fd++ {
			if of, err := p.fds.Get(fd); err == nil && of.Pipe() != nil {
				pipes = append(pipes, of.Pipe())
			}
		}
		p.fds.CloseAll()
	}
	for _, pp := range pipes {
		k.wakePipe(pp)
	}

	for _, t := range p.threads {
		if t.state != TExited {
			k.detachThread(t)
		}
	}

	if p.space != nil {
		k.spaceRetired(p.space)
		if p.spaceOwned {
			p.space.Destroy()
		}
		p.space = nil
	}

	// A vfork parent suspended on this child resumes now.
	if w := p.vforkWaiter; w != nil {
		p.vforkWaiter = nil
		w.vforkChild = nil
		k.unblock(w)
	}

	// Reparent children to init (pid 1); without an init, orphans
	// self-reap on exit.
	init := k.procs[1]
	if init != nil && init.state != ProcAlive {
		init = nil
	}
	for _, c := range p.children {
		c.parent = init
		if init != nil && c != init {
			init.children = append(init.children, c)
			if c.state == ProcZombie {
				// init reaps adopted zombies promptly.
				k.wakeAll(init.childQ)
				init.pending = init.pending.Add(sig.SIGCHLD)
			}
		} else if c.state == ProcZombie {
			k.reap(c)
		}
	}
	p.children = nil

	p.exitStatus = status
	p.state = ProcZombie

	if par := p.parent; par != nil && par.state == ProcAlive {
		par.pending = par.pending.Add(sig.SIGCHLD)
		k.wakeAll(par.childQ)
		// Wake a thread so the SIGCHLD can be noticed even if
		// nobody is in waitpid.
		for _, t := range par.threads {
			if t.state == TBlocked && !t.sigMask.Has(sig.SIGCHLD) && par.sigs.Get(sig.SIGCHLD).Kind == sig.ActHandler {
				k.unblock(t)
				break
			}
		}
	} else {
		// No live parent: nobody will wait for us.
		k.reap(p)
	}
}

// killProcess terminates p as if by an uncaught fatal signal.
func (k *Kernel) killProcess(p *Process, s sig.Signal) {
	k.ExitProcess(p, abi.EncodeStatus(0, int(s)))
}

// wakePipe wakes both ends' waiters (used on close and after I/O).
func (k *Kernel) wakePipe(p *vfs.Pipe) {
	if q, ok := p.ReadQ.(*WaitQueue); ok {
		k.wakeAll(q)
	}
	if q, ok := p.WriteQ.(*WaitQueue); ok {
		k.wakeAll(q)
	}
}

// pipeReadQ lazily creates the read-side wait queue.
func (k *Kernel) pipeReadQ(p *vfs.Pipe) *WaitQueue {
	if q, ok := p.ReadQ.(*WaitQueue); ok {
		return q
	}
	q := NewWaitQueue("pipe:read")
	p.ReadQ = q
	return q
}

func (k *Kernel) pipeWriteQ(p *vfs.Pipe) *WaitQueue {
	if q, ok := p.WriteQ.(*WaitQueue); ok {
		return q
	}
	q := NewWaitQueue("pipe:write")
	p.WriteQ = q
	return q
}

// reap removes a zombie from the process table and its parent's child
// list.
func (k *Kernel) reap(p *Process) {
	if p.state != ProcZombie {
		panic("kernel: reaping non-zombie " + p.Name)
	}
	p.state = ProcReaped
	if par := p.parent; par != nil {
		for i, c := range par.children {
			if c == p {
				par.children = append(par.children[:i], par.children[i+1:]...)
				break
			}
		}
	}
	delete(k.procs, p.Pid)
}

// waitMatch reports whether child c matches a waitpid selector.
func waitMatch(c *Process, selector PID) bool {
	return selector == -1 || c.Pid == selector
}

// doWaitPid implements waitpid for a VM thread: returns (pid, status,
// errno, blocked).
func (k *Kernel) doWaitPid(t *Thread, selector PID, flags uint64) (PID, uint64, errno.Errno, bool) {
	p := t.proc
	matched := false
	for _, c := range p.children {
		if !waitMatch(c, selector) {
			continue
		}
		matched = true
		if c.state == ProcZombie {
			status := c.exitStatus
			pid := c.Pid
			k.reap(c)
			return pid, status, errno.OK, false
		}
	}
	if !matched {
		return 0, 0, errno.ECHILD, false
	}
	if flags&abi.WNoHang != 0 {
		return 0, 0, errno.OK, false // pid 0: children exist, none dead
	}
	k.block(t, p.childQ, "waitpid")
	return 0, 0, errno.OK, true
}

// WaitReap is the Go-harness variant of waitpid: it reaps a zombie
// child of parent matching selector (-1 for any) without blocking. It
// returns ECHILD if no matching child exists and EAGAIN if children
// exist but none has exited.
func (k *Kernel) WaitReap(parent *Process, selector PID) (PID, uint64, error) {
	matched := false
	for _, c := range parent.children {
		if !waitMatch(c, selector) {
			continue
		}
		matched = true
		if c.state == ProcZombie {
			status := c.exitStatus
			pid := c.Pid
			k.reap(c)
			return pid, status, nil
		}
	}
	if !matched {
		return 0, 0, errno.ECHILD
	}
	return 0, 0, errno.EAGAIN
}

// DestroyProcess force-removes a process (harness cleanup for
// synthetic processes): it is exited with status 0 and immediately
// reaped regardless of parentage.
func (k *Kernel) DestroyProcess(p *Process) {
	if p.state == ProcAlive {
		k.ExitProcess(p, 0)
	}
	if p.state == ProcZombie {
		k.reap(p)
	}
}
