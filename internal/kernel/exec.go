package kernel

import (
	"encoding/binary"

	"repro/internal/addrspace"
	"repro/internal/errno"
	"repro/internal/fault"
	"repro/internal/image"
	"repro/internal/mem"
	"repro/internal/vfs"
)

// entryContext is the register file handed to a freshly exec'd or
// spawned program: r0=argc, r1=argv, sp at the bottom of the argument
// block, pc at the image entry point.
type entryContext struct {
	regs [16]uint64
	pc   uint64
}

// resolveExecutable looks up path and validates its image header.
func (k *Kernel) resolveExecutable(cwd *vfs.Inode, path string) (*vfs.Inode, image.Header, error) {
	ino, err := k.fs.Resolve(cwd, path)
	if err != nil {
		return nil, image.Header{}, err
	}
	if ino.Type == vfs.TypeDir {
		return nil, image.Header{}, errno.EISDIR
	}
	if ino.Type != vfs.TypeFile {
		return nil, image.Header{}, errno.EACCES
	}
	// Injection point: the image exists but cannot be loaded (I/O
	// error, corrupt header) — every exec, spawn, and builder
	// LoadImage funnels through here.
	if e := k.faults.Fail(fault.PointExecImage, 1); e != errno.OK {
		return nil, image.Header{}, e
	}
	k.meter.Charge(k.meter.Model.ImageHeader)
	hdr, err := image.DecodeHeader(ino.Data())
	if err != nil {
		return nil, image.Header{}, err
	}
	return ino, hdr, nil
}

// buildSpace constructs a fresh address space for an image: text
// (read-execute, demand-paged from the file), data+bss (read-write,
// private), a heap origin, and a stack primed with argv. This is the
// spawn/exec path — its cost does not depend on any parent's size.
func (k *Kernel) buildSpace(ino *vfs.Inode, hdr image.Header, argv []string) (*addrspace.Space, entryContext, error) {
	sp := addrspace.New(k.phys, k.meter)
	fail := func(err error) (*addrspace.Space, entryContext, error) {
		sp.Destroy()
		return nil, entryContext{}, err
	}

	textLen := alignPage(hdr.TextSize)
	if _, err := sp.Map(hdr.TextBase, textLen, addrspace.Read|addrspace.Exec, addrspace.MapOpts{
		Kind: addrspace.KindText, Name: "text", Backing: ino, BackingOff: image.HeaderSize,
	}); err != nil {
		return fail(err)
	}

	dataStart := hdr.TextBase + textLen
	dataLen := alignPage(hdr.DataSize + hdr.BssSize)
	if dataLen > 0 {
		// The data segment is the last thing in a KXI file, so
		// the inode's zero-fill-past-EOF behaviour supplies the
		// bss for free.
		if _, err := sp.Map(dataStart, dataLen, addrspace.Read|addrspace.Write, addrspace.MapOpts{
			Kind: addrspace.KindData, Name: "data",
			Backing: ino, BackingOff: image.HeaderSize + hdr.TextSize,
		}); err != nil {
			return fail(err)
		}
	}
	sp.SetupHeap(dataStart + dataLen)

	stackLen := alignPage(hdr.StackSize)
	stackBase := addrspace.StackTop - stackLen
	if _, err := sp.Map(stackBase, stackLen, addrspace.Read|addrspace.Write, addrspace.MapOpts{
		Kind: addrspace.KindStack, Name: "stack",
	}); err != nil {
		return fail(err)
	}

	// Argument block: strings at the top of the stack, then the
	// NULL-terminated pointer array, then sp.
	strp := addrspace.StackTop
	ptrs := make([]uint64, 0, len(argv)+1)
	for _, a := range argv {
		strp -= uint64(len(a) + 1)
		ptrs = append(ptrs, strp)
	}
	strp &^= 7 // align the array
	for i, a := range argv {
		if err := sp.WriteBytes(ptrs[i], append([]byte(a), 0)); err != nil {
			return fail(err)
		}
	}
	ptrs = append(ptrs, 0)
	arr := strp - uint64(8*len(ptrs))
	buf := make([]byte, 8*len(ptrs))
	for i, p := range ptrs {
		binary.LittleEndian.PutUint64(buf[8*i:], p)
	}
	if err := sp.WriteBytes(arr, buf); err != nil {
		return fail(err)
	}

	var ctx entryContext
	ctx.regs[0] = uint64(len(argv))
	ctx.regs[1] = arr
	ctx.regs[14] = arr &^ 15 // sp, 16-aligned below the argument block
	ctx.pc = hdr.Entry
	return sp, ctx, nil
}

// doExec replaces caller's process image: POSIX exec semantics. On
// failure the old image is untouched and the error returned; on
// success the caller thread restarts at the new entry point, other
// threads are destroyed, close-on-exec descriptors close, and caught
// signals reset to default.
func (k *Kernel) doExec(caller *Thread, path string, argv []string) error {
	p := caller.proc
	ino, hdr, err := k.resolveExecutable(p.cwd, path)
	if err != nil {
		return err
	}
	newSpace, ctx, err := k.buildSpace(ino, hdr, argv)
	if err != nil {
		return err
	}

	// Point of no return. Kill sibling threads.
	for _, t := range p.threads {
		if t != caller && t.state != TExited {
			k.detachThread(t)
		}
	}

	old, owned := p.space, p.spaceOwned
	p.space = newSpace
	p.spaceOwned = true
	if old != nil {
		k.spaceRetired(old)
		if owned {
			old.Destroy()
		}
	}
	// A vfork child returning the parent's space: resume the parent.
	if w := p.vforkWaiter; w != nil {
		p.vforkWaiter = nil
		w.vforkChild = nil
		k.unblock(w)
	}

	p.fds.DoCloexec()
	p.sigs.ResetForExec()
	if len(argv) > 0 {
		p.Name = argv[0]
	} else {
		p.Name = path
	}

	caller.regs = ctx.regs
	caller.pc = ctx.pc
	if k.tracer != nil {
		k.trace(fault.Event{Kind: fault.EvExec, Pid: int(p.Pid), Tid: caller.TID, Name: p.Name})
	}
	return nil
}

// Exec is the Go-harness exec on p's main thread.
func (k *Kernel) Exec(p *Process, path string, argv []string) error {
	caller := p.MainThread()
	if caller == nil {
		return errno.ESRCH
	}
	return k.doExec(caller, path, argv)
}

func alignPage(x uint64) uint64 {
	return (x + mem.PageSize - 1) &^ uint64(mem.PageSize-1)
}
