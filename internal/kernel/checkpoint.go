package kernel

import (
	"fmt"
	"sort"

	"repro/internal/addrspace"
	"repro/internal/cost"
	"repro/internal/errno"
	"repro/internal/sig"
	"repro/internal/vfs"
)

// Checkpoint/restore: CRIU in miniature. CheckpointProcess serializes
// ONE process — address space via the page-table walk, fd table,
// thread states, pending signals — into a host-side ProcImage, and
// RestoreProcess reconstructs it on another (or the same) machine.
// Extraction mirrors the cloneCtx machinery in clone.go, scoped to a
// single process: where cloneCtx memoises live objects pointer-to-
// pointer, the image memoises them by name — descriptors sharing one
// open file description keep one DescImage (dup sharing survives the
// trip), file-backed VMAs serialize their backing as a path re-resolved
// on the target, and threads travel as register files.
//
// What refuses to checkpoint is the paper's point measured in a new
// setting: exactly the state fork() entangles a process with is the
// state that cannot be serialized one-sided. A vfork child borrowing
// its parent's address space, a parent suspended mid-vfork, a pipe
// whose peer end stays behind, an unreaped child — all are
// CheckpointError refusals, while a spawned, self-contained process
// moves freely.
//
// Blocked threads restore as runnable: blocking syscalls never advance
// the PC (see errBlocked), so the restored thread re-executes the SYS
// instruction and re-blocks on the *target* machine's queues — a
// net_recv waiter parks on the target NIC, a nanosleep resumes with
// its remaining time (rebased via CapturedAt). Semantically each is
// one spurious wakeup.

// CheckpointError is a typed refusal: the process holds state that
// cannot be serialized from one machine and rebuilt on another.
type CheckpointError struct {
	Pid    PID
	Reason string
}

func (e *CheckpointError) Error() string {
	return fmt.Sprintf("checkpoint pid%d: %s", e.Pid, e.Reason)
}

// ProcImage is one process serialized to the host side. It references
// nothing in the source kernel — every cross-object link became an
// index or a path — so it can outlive the source machine and restore
// into any kernel whose filesystem carries the named files.
type ProcImage struct {
	Name string
	Cwd  string

	VMAs         []VMAImage
	Pages        []addrspace.PageRecord
	BrkBase, Brk uint64

	Descs []DescImage
	FDs   []FDImage

	Threads []ThreadImage
	Sigs    *sig.Table
	Pending sig.Set
	NextTID int

	// CapturedAt is the source machine's virtual time at capture;
	// restore rebases absolute deadlines by (target now − CapturedAt).
	CapturedAt cost.Ticks
}

// PageBytes reports the image's page payload in bytes (what a
// migration round ships over the wire).
func (img *ProcImage) PageBytes() uint64 {
	var n uint64
	for i := range img.Pages {
		n += img.Pages[i].Pages()
	}
	return n << 12
}

// VMAImage is one serialized VMA. BackingPath names the backing file
// ("" = anonymous); the target resolves it in its own filesystem.
type VMAImage struct {
	Start, End  uint64
	Prot        addrspace.Prot
	Kind        addrspace.Kind
	Name        string
	Huge        bool
	BackingPath string
	BackingOff  uint64
}

// DescImage is one open file description (the dup-shared object).
type DescImage struct {
	Path  string
	Flags vfs.OpenFlags
	Pos   uint64
}

// FDImage is one descriptor-table slot pointing at a description by
// index — two fds dup'd onto one description restore dup'd.
type FDImage struct {
	FD      int
	Desc    int
	Cloexec bool
}

// ThreadImage is one serialized thread. Runnable covers blocked
// threads too (restartable-syscall retry); parked threads restore
// parked.
type ThreadImage struct {
	TID      int
	Regs     [16]uint64
	PC       uint64
	Runnable bool
	SigMask  sig.Set
	Pending  sig.Set
	// SleepLeft is the remaining nanosleep time at capture (0 = not
	// sleeping); restore re-arms the deadline relative to target time.
	SleepLeft cost.Ticks
}

// CheckpointOpts steers a capture.
type CheckpointOpts struct {
	// DirtyOnly captures only pages dirtied since the last re-armed
	// capture — a live-migration pre-copy round.
	DirtyOnly bool
	// Rearm downgrades captured pages to read-only-clean so the next
	// write re-faults and re-dirties: arms the next round's harvest.
	Rearm bool
}

// CheckpointProcess serializes p into a ProcImage, priced in virtual
// time like the real work it models: one page copy per captured page
// (in CapturePages), a VMA-record and fd-record charge per entry, and
// an image header. The source process keeps running afterwards —
// checkpointing is a read (unless opts.Rearm write-protects the
// captured pages for dirty tracking).
func (k *Kernel) CheckpointProcess(p *Process, opts CheckpointOpts) (*ProcImage, error) {
	if p == nil || p.state != ProcAlive {
		return nil, &CheckpointError{Reason: "process is not alive"}
	}
	if !p.spaceOwned {
		return nil, &CheckpointError{Pid: p.Pid, Reason: "address space is borrowed (mid-vfork child)"}
	}
	if p.vforkWaiter != nil {
		return nil, &CheckpointError{Pid: p.Pid, Reason: "a vfork parent is suspended on this process"}
	}
	if len(p.children) > 0 {
		return nil, &CheckpointError{Pid: p.Pid, Reason: fmt.Sprintf("process has %d children (fork ties them to this machine)", len(p.children))}
	}
	for _, t := range p.threads {
		if t.state == TExited {
			continue
		}
		if t.vforkChild != nil {
			return nil, &CheckpointError{Pid: p.Pid, Reason: fmt.Sprintf("thread %d is suspended mid-vfork", t.TID)}
		}
		if t.state == TBlocked && t.waitReason == "waitpid" {
			return nil, &CheckpointError{Pid: p.Pid, Reason: fmt.Sprintf("thread %d is blocked in waitpid", t.TID)}
		}
	}

	cwd := k.fs.PathOf(p.cwd)
	if cwd == "?" {
		return nil, &CheckpointError{Pid: p.Pid, Reason: "cwd is detached from the filesystem"}
	}
	img := &ProcImage{Name: p.Name, Cwd: cwd}

	for _, v := range p.space.VMAs() {
		if v.Shared {
			return nil, &CheckpointError{Pid: p.Pid, Reason: fmt.Sprintf("MAP_SHARED region %q cannot migrate one-sided", v.Name)}
		}
		vi := VMAImage{
			Start: v.Start, End: v.End, Prot: v.Prot, Kind: v.Kind,
			Name: v.Name, Huge: v.Huge, BackingOff: v.BackingOff,
		}
		if v.Backing != nil {
			ino, ok := v.Backing.(*vfs.Inode)
			if !ok {
				return nil, &CheckpointError{Pid: p.Pid, Reason: fmt.Sprintf("region %q has a non-file backing", v.Name)}
			}
			path := k.fs.PathOf(ino)
			if path == "?" {
				return nil, &CheckpointError{Pid: p.Pid, Reason: fmt.Sprintf("region %q is backed by an unlinked file", v.Name)}
			}
			vi.BackingPath = path
		}
		img.VMAs = append(img.VMAs, vi)
		k.meter.Charge(k.meter.Model.VMAClone)
	}
	img.BrkBase = p.space.BrkBase()
	img.Brk = p.space.Brk()

	descIdx := map[*vfs.OpenFile]int{}
	for fd := 0; fd <= p.fds.MaxFD(); fd++ {
		of, err := p.fds.Get(fd)
		if err != nil {
			continue
		}
		if of.Pipe() != nil {
			return nil, &CheckpointError{Pid: p.Pid, Reason: fmt.Sprintf("fd %d is a pipe end (its peer stays behind)", fd)}
		}
		di, ok := descIdx[of]
		if !ok {
			path := k.fs.PathOf(of.Inode())
			if path == "?" {
				return nil, &CheckpointError{Pid: p.Pid, Reason: fmt.Sprintf("fd %d is open on an unlinked file", fd)}
			}
			di = len(img.Descs)
			descIdx[of] = di
			img.Descs = append(img.Descs, DescImage{Path: path, Flags: of.Flags(), Pos: of.Pos()})
		}
		cloexec, _ := p.fds.Cloexec(fd)
		img.FDs = append(img.FDs, FDImage{FD: fd, Desc: di, Cloexec: cloexec})
		k.meter.Charge(k.meter.Model.FDClone)
	}

	now := k.meter.Now()
	for _, t := range p.threads {
		if t.state == TExited {
			continue
		}
		ti := ThreadImage{
			TID: t.TID, Regs: t.regs, PC: t.pc,
			SigMask: t.sigMask, Pending: t.pending,
			Runnable: t.state != TParked,
		}
		if t.sleepDeadline > now {
			ti.SleepLeft = t.sleepDeadline - now
		}
		img.Threads = append(img.Threads, ti)
	}
	img.NextTID = p.nextTID
	img.Sigs = p.sigs.Clone()
	img.Pending = p.pending
	k.meter.Charge(k.meter.Model.ImageHeader + k.meter.Model.SigClone)

	img.Pages = p.space.CapturePages(opts.DirtyOnly, opts.Rearm)
	img.CapturedAt = k.meter.Now()
	return img, nil
}

// RestoreProcess rebuilds img as a new process on k — the receiving
// half of a migration. Name-references resolve against k's own
// filesystem (executable images and open files must exist there);
// pages install into freshly allocated frames; threads come back with
// their exact TIDs, parked ones parked and everything else runnable.
// When img.Pages carries several pre-copy rounds appended in order,
// the last record per address wins. The restored process is parentless
// (like a synthetic root) and charged the natural construction costs.
func (k *Kernel) RestoreProcess(img *ProcImage) (*Process, error) {
	// Resolve every name before touching kernel state, so most
	// failures need no unwind at all.
	cwd, err := k.fs.Resolve(k.fs.Root(), img.Cwd)
	if err != nil {
		return nil, fmt.Errorf("restore %q: cwd %q: %w", img.Name, img.Cwd, err)
	}
	if cwd.Type != vfs.TypeDir {
		return nil, fmt.Errorf("restore %q: cwd %q: %w", img.Name, img.Cwd, errno.ENOTDIR)
	}
	backings := make([]*vfs.Inode, len(img.VMAs))
	for i, vi := range img.VMAs {
		if vi.BackingPath == "" {
			continue
		}
		ino, err := k.fs.Resolve(k.fs.Root(), vi.BackingPath)
		if err != nil {
			return nil, fmt.Errorf("restore %q: region %q backing %q: %w", img.Name, vi.Name, vi.BackingPath, err)
		}
		backings[i] = ino
	}
	descInos := make([]*vfs.Inode, len(img.Descs))
	for i, d := range img.Descs {
		ino, err := k.fs.Resolve(k.fs.Root(), d.Path)
		if err != nil {
			return nil, fmt.Errorf("restore %q: file %q: %w", img.Name, d.Path, err)
		}
		descInos[i] = ino
	}

	p := k.newProcess(img.Name, nil)
	p.cwd = cwd
	p.fds = vfs.NewFDTable()
	p.space = k.newSpace()
	p.spaceOwned = true
	fail := func(err error) (*Process, error) {
		p.fds.CloseAll()
		if p.space != nil {
			p.space.Destroy()
			p.space = nil
		}
		delete(k.procs, p.Pid)
		return nil, err
	}

	for i, vi := range img.VMAs {
		opts := addrspace.MapOpts{
			Kind: vi.Kind, Name: vi.Name, Huge: vi.Huge,
			BackingOff: vi.BackingOff,
		}
		if backings[i] != nil {
			opts.Backing = backings[i]
		}
		if _, err := p.space.Map(vi.Start, vi.End-vi.Start, vi.Prot, opts); err != nil {
			return fail(fmt.Errorf("restore %q: map %q: %w", img.Name, vi.Name, err))
		}
	}
	p.space.RestoreBrk(img.BrkBase, img.Brk)

	// Last record per address wins, installed in ascending va order.
	last := map[uint64]int{}
	for i := range img.Pages {
		last[img.Pages[i].VA] = i
	}
	idxs := make([]int, 0, len(last))
	for _, i := range last {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(a, b int) bool { return img.Pages[idxs[a]].VA < img.Pages[idxs[b]].VA })
	for _, i := range idxs {
		if err := p.space.InstallPage(img.Pages[i]); err != nil {
			return fail(fmt.Errorf("restore %q: page %#x: %w", img.Name, img.Pages[i].VA, err))
		}
	}

	descs := make([]*vfs.OpenFile, len(img.Descs))
	used := make([]bool, len(img.Descs))
	for i, d := range img.Descs {
		of := vfs.NewOpenFile(descInos[i], d.Flags)
		if d.Pos != 0 && descInos[i].Type == vfs.TypeFile {
			of.Seek(int64(d.Pos), vfs.SeekSet)
		}
		descs[i] = of
	}
	for _, fi := range img.FDs {
		of := descs[fi.Desc]
		if used[fi.Desc] {
			of = of.Retain()
		}
		if err := p.fds.InstallAt(of, fi.Cloexec, fi.FD); err != nil {
			if used[fi.Desc] {
				of.Release()
			}
			return fail(fmt.Errorf("restore %q: fd %d: %w", img.Name, fi.FD, err))
		}
		used[fi.Desc] = true
		k.meter.Charge(k.meter.Model.FDClone)
	}
	for i, of := range descs {
		if !used[i] {
			of.Release() // description with no surviving fd (defensive)
		}
	}

	if img.Sigs != nil {
		p.sigs = img.Sigs.Clone()
	}
	p.pending = img.Pending
	k.meter.Charge(k.meter.Model.SigClone)

	now := k.meter.Now()
	for _, ti := range img.Threads {
		p.nextTID = ti.TID
		t := k.newThread(p, TParked)
		t.regs = ti.Regs
		t.pc = ti.PC
		t.sigMask = ti.SigMask
		t.pending = ti.Pending
		if ti.SleepLeft > 0 {
			t.sleepDeadline = now + ti.SleepLeft
		}
		if ti.Runnable {
			t.state = TRunnable
			k.placeNewThread(t)
			k.enqueue(t)
		}
	}
	p.nextTID = img.NextTID
	return p, nil
}
