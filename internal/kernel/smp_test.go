package kernel

import (
	"errors"
	"strconv"
	"testing"

	"repro/internal/cost"
)

// TestOptionsValidation: invalid machine configurations must be
// explicit errors, not silent defaults or clamps.
func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"zero RAM", Options{NumCPUs: 1}},
		{"sub-page RAM", Options{RAMBytes: 1024, NumCPUs: 1}},
		{"negative quantum", Options{RAMBytes: 1 << 30, NumCPUs: 1, Quantum: -1}},
		{"zero CPUs", Options{RAMBytes: 1 << 30}},
		{"negative CPUs", Options{RAMBytes: 1 << 30, NumCPUs: -2}},
		{"too many CPUs", Options{RAMBytes: 1 << 30, NumCPUs: cost.MaxCPUs + 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.opts.Validate(); err == nil {
				t.Errorf("Validate(%+v) = nil, want error", c.opts)
			}
			if _, err := New(c.opts); err == nil {
				t.Errorf("New(%+v) = nil error, want error", c.opts)
			}
		})
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Errorf("DefaultOptions invalid: %v", err)
	}
	if _, err := New(Options{RAMBytes: 64 << 20, NumCPUs: 8}); err != nil {
		t.Errorf("valid 8-CPU machine rejected: %v", err)
	}
}

// smpRun boots the named program as init on ncpus and runs it to
// completion, returning the kernel and console output.
func smpRun(t *testing.T, ncpus int, prog string, argv ...string) (*Kernel, string) {
	t.Helper()
	k, out := boot(t, Options{NumCPUs: ncpus})
	if _, err := k.BootInit("/bin/"+prog, append([]string{prog}, argv...)); err != nil {
		t.Fatalf("BootInit: %v", err)
	}
	if err := k.Run(RunLimits{MaxInstructions: 50_000_000}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if k.LastStop() == StopLimit {
		t.Fatal("instruction limit hit")
	}
	return k, out.String()
}

type runFingerprint struct {
	out           string
	elapsed       cost.Ticks
	instructions  uint64
	switches      uint64
	shootdowns    uint64
	pageCopies    uint64
	faults        uint64
	perCPUClock   [8]cost.Ticks
	perCPUSwitch  [8]uint64
	perCPUStolen  [8]uint64
	liveProcesses int
}

func fingerprint(k *Kernel, out string) runFingerprint {
	fp := runFingerprint{
		out:           out,
		elapsed:       k.Elapsed(),
		instructions:  k.Meter().Instructions,
		switches:      k.ContextSwitches(),
		shootdowns:    k.Meter().TLBShootdowns,
		pageCopies:    k.Meter().PageCopies,
		faults:        k.Meter().PageFaults,
		liveProcesses: k.LiveProcessCount(),
	}
	for _, cs := range k.CPUStates() {
		if cs.CPU < len(fp.perCPUClock) {
			fp.perCPUClock[cs.CPU] = cs.Clock
			fp.perCPUSwitch[cs.CPU] = cs.Switches
			fp.perCPUStolen[cs.CPU] = cs.Steals
		}
	}
	return fp
}

// TestSMPDeterminism: the whole machine — output, virtual time, every
// scheduler and memory counter, per CPU — must be bit-identical across
// repeated runs at 1, 2, and 8 CPUs. This is the acceptance bar for
// the N-CPU refactor.
func TestSMPDeterminism(t *testing.T) {
	for _, ncpus := range []int{1, 2, 8} {
		t.Run(strconv.Itoa(ncpus)+"cpu", func(t *testing.T) {
			var first runFingerprint
			for rep := 0; rep < 2; rep++ {
				k, out := smpRun(t, ncpus, "threads_sum")
				if out != "2000\n" {
					t.Fatalf("threads_sum printed %q", out)
				}
				fp := fingerprint(k, out)
				if rep == 0 {
					first = fp
				} else if fp != first {
					t.Errorf("run diverged at %d CPUs:\nfirst:  %+v\nsecond: %+v", ncpus, first, fp)
				}
			}
		})
	}
}

// TestSMPThreadsOverlap: with more CPUs, the same multithreaded
// workload must finish in less elapsed virtual time (threads genuinely
// run in parallel), while executing at least as many instructions.
func TestSMPThreadsOverlap(t *testing.T) {
	k1, _ := smpRun(t, 1, "threads_sum")
	k4, _ := smpRun(t, 4, "threads_sum")
	if k4.Elapsed() >= k1.Elapsed() {
		t.Errorf("4-CPU run not faster: %v vs %v at 1 CPU", k4.Elapsed(), k1.Elapsed())
	}
}

// spinBoot boots smpspin with the given worker count and CPUs; the
// program never exits, so callers drive it with bounded Run calls.
func spinBoot(t *testing.T, ncpus, workers int) (*Kernel, *Process) {
	t.Helper()
	k, _ := boot(t, Options{NumCPUs: ncpus})
	p, err := k.BootInit("/bin/smpspin", []string{"smpspin", strconv.Itoa(workers), strconv.Itoa(1 << 20)})
	if err != nil {
		t.Fatalf("BootInit: %v", err)
	}
	return k, p
}

// TestSMPFairnessNoStarvation: with more spinning threads than CPUs,
// every runnable thread must be dispatched within a bounded window of
// global quanta — nobody starves, on any queue.
func TestSMPFairnessNoStarvation(t *testing.T) {
	const workers = 6
	k, p := spinBoot(t, 2, workers)
	// Let the program set up (mmap, touch, thread creation).
	if err := k.Run(RunLimits{MaxInstructions: 200_000}); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	runnable := 0
	for _, th := range p.Threads() {
		if th.State() == TRunnable || th.State() == TRunning {
			runnable++
		}
	}
	if runnable < workers {
		t.Fatalf("only %d runnable threads after warmup, want >= %d", runnable, workers)
	}
	// A window of 4*(threads+2) quanta is far more than FIFO needs;
	// a thread missing a whole window is starving.
	window := uint64(4 * (workers + 2) * k.Options().Quantum)
	for round := 0; round < 5; round++ {
		before := map[int]uint64{}
		for _, th := range p.Threads() {
			if th.State() == TRunnable || th.State() == TRunning {
				before[th.TID] = th.Dispatches()
			}
		}
		if err := k.Run(RunLimits{MaxInstructions: window}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for _, th := range p.Threads() {
			prev, ok := before[th.TID]
			if !ok || th.State() == TExited {
				continue
			}
			if th.Dispatches() <= prev {
				t.Fatalf("round %d: thread t%d starved (dispatches stuck at %d)", round, th.TID, prev)
			}
		}
	}
}

// TestSMPWorkStealingBalances: spinning threads spread across every
// CPU — each CPU dispatches work and accumulates busy time, and the
// per-CPU clocks stay in lockstep (the virtual-time-ordered dispatcher
// never lets one CPU run far ahead while work waits).
func TestSMPWorkStealingBalances(t *testing.T) {
	k, _ := spinBoot(t, 4, 4)
	if err := k.Run(RunLimits{MaxTicks: 20 * cost.Millisecond}); err != nil {
		t.Fatalf("run: %v", err)
	}
	states := k.CPUStates()
	var minClock, maxClock cost.Ticks
	for i, cs := range states {
		if cs.Switches == 0 {
			t.Errorf("cpu%d never dispatched", cs.CPU)
		}
		if cs.Busy == 0 {
			t.Errorf("cpu%d has no busy time", cs.CPU)
		}
		if i == 0 || cs.Clock < minClock {
			minClock = cs.Clock
		}
		if cs.Clock > maxClock {
			maxClock = cs.Clock
		}
	}
	// No CPU may lag more than a dispatch behind the frontier while
	// runnable work exists (quantum instructions + slack for one
	// long syscall).
	if gap := maxClock - minClock; gap > 2*cost.Millisecond {
		t.Errorf("CPU clocks diverged by %v (min %v, max %v)", gap, minClock, maxClock)
	}
	if k.LastStop() != StopLimit {
		t.Errorf("stop = %v, want limit", k.LastStop())
	}
	if info := k.LastStopInfo(); info.CPU < 0 || info.VirtualTime == 0 {
		t.Errorf("stop info not per-CPU aware: %+v", info)
	}
}

// TestSMPForkShootdownTax: forking a multithreaded server that is
// actively running on other CPUs charges shootdown IPIs; the same fork
// on a 1-CPU machine charges none. This wires the §5 claim through the
// whole kernel rather than just the addrspace unit.
func TestSMPForkShootdownTax(t *testing.T) {
	for _, ncpus := range []int{1, 4} {
		k, p := spinBoot(t, ncpus, 4)
		if err := k.Run(RunLimits{MaxTicks: 5 * cost.Millisecond}); err != nil {
			t.Fatalf("traffic: %v", err)
		}
		before := k.Meter().TLBShootdowns
		child, err := k.Fork(p)
		if err != nil {
			t.Fatalf("fork: %v", err)
		}
		got := k.Meter().TLBShootdowns - before
		if ncpus == 1 && got != 0 {
			t.Errorf("1-CPU fork sent %d IPIs", got)
		}
		if ncpus == 4 && got == 0 {
			t.Error("4-CPU fork of a running multithreaded server sent no IPIs")
		}
		k.DestroyProcess(child)
		k.DestroyProcess(p)
	}
}

// TestSMPDeadlockReportsPerCPUState: the §4.2 deadlock demo on a
// 2-CPU machine returns a DeadlockError carrying per-CPU scheduler
// state and a deterministically ordered thread list.
func TestSMPDeadlockReportsPerCPUState(t *testing.T) {
	k, _ := boot(t, Options{NumCPUs: 2})
	if _, err := k.BootInit("/bin/threads_deadlock", []string{"threads_deadlock"}); err != nil {
		t.Fatalf("BootInit: %v", err)
	}
	err := k.Run(RunLimits{MaxInstructions: 10_000_000})
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("Run = %v, want DeadlockError", err)
	}
	if len(dl.CPUs) != 2 {
		t.Errorf("DeadlockError.CPUs has %d entries, want 2", len(dl.CPUs))
	}
	if len(dl.Threads) < 2 {
		t.Errorf("stuck threads: %v", dl.Threads)
	}
	for i := 1; i < len(dl.Threads); i++ {
		if dl.Threads[i-1] > dl.Threads[i] {
			// pid/tid-sorted descriptions are lexicographic for
			// single-digit pids; a regression here means map
			// iteration leaked into the report.
			t.Errorf("thread list unsorted: %v", dl.Threads)
			break
		}
	}
	if k.LastStop() != StopDeadlock {
		t.Errorf("LastStop = %v", k.LastStop())
	}
}
