// Package kernel is the simulated operating system: a process table,
// deterministic scheduler, virtual-memory management, descriptor
// layer, signals, futexes, and a syscall interface executed by the
// built-in bytecode VM.
//
// The kernel exposes two surfaces:
//
//   - the syscall ABI (internal/abi) used by programs assembled with
//     internal/asm and run on the VM, and
//   - a direct Go API (BootInit, NewSynthetic, Fork, Exec, Spawn,
//     StartProcess, WaitReap, ...) used
//     by the measurement harness in internal/experiments and by
//     internal/core, which implements the paper's proposed
//     process-creation APIs on top of these primitives.
//
// The machine has Options.NumCPUs simulated CPUs. Execution is still
// single-threaded on the host: the scheduler is a virtual-time-ordered
// loop that always runs the CPU with the lowest clock next (lowest id
// on ties), so concurrency exists in *virtual* time — work on
// different CPUs overlaps — while every run remains reproducible
// bit-for-bit. Each CPU owns a ring run queue; a CPU whose queue is
// empty steals the oldest thread from the longest queue (lowest id on
// ties). The dispatcher tracks which address space is live on each
// CPU, which is what prices TLB-shootdown IPIs (see internal/cost and
// internal/addrspace).
package kernel

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/addrspace"
	"repro/internal/cost"
	"repro/internal/fault"
	"repro/internal/image"
	"repro/internal/mem"
	"repro/internal/vfs"
)

// Options configures a kernel instance. New validates: RAMBytes and
// NumCPUs are required (there is no silent default machine), Quantum
// must not be negative. DefaultOptions supplies the conventional
// 4 GiB / 1-CPU machine.
type Options struct {
	// RAMBytes sizes physical memory. Required: zero is an error.
	RAMBytes uint64
	// SwapBytes adds commit headroom beyond RAM (default 0).
	SwapBytes uint64
	// Commit selects the overcommit policy (default heuristic).
	Commit mem.CommitPolicy
	// Model is the hardware cost model (default cost.DefaultModel).
	Model *cost.Model
	// EagerFork switches fork to 1970s eager copying (ablation).
	EagerFork bool
	// DenyMultithreadedFork makes fork fail with EAGAIN when the
	// caller has more than one live thread — the mitigation §8 of
	// the paper proposes on the road to deprecating fork entirely
	// (a child that cannot deadlock is better than one that can).
	DenyMultithreadedFork bool
	// Quantum is the scheduler timeslice in instructions (0 selects
	// the default of 2048; negative is an error).
	Quantum int
	// NumCPUs is the number of simulated CPUs. Required: a value
	// below 1 (including the zero value) is an error, above
	// cost.MaxCPUs too.
	NumCPUs int
	// ConsoleOut receives /dev/console writes (default: discard).
	ConsoleOut io.Writer
	// ConsoleIn supplies /dev/console reads (default: EOF).
	ConsoleIn io.Reader
	// Faults installs a deterministic fault-injection schedule at
	// boot: every fallible boundary (frame allocation, commit
	// reservation, page-table clone, COW break, descriptor-table
	// copy, exec image load, thread creation) consults it. nil
	// disables injection entirely (zero overhead on the hot paths).
	Faults fault.Schedule
	// Trace enables the structured event trace: syscall enter/exit,
	// scheduler dispatches, TLB-shootdown rounds, injected faults,
	// and process lifecycle, readable via Tracer.
	Trace bool
}

// DefaultQuantum is the timeslice used when Options.Quantum is zero.
const DefaultQuantum = 2048

// DefaultOptions returns the conventional machine: 4 GiB of RAM, one
// CPU, default quantum.
func DefaultOptions() Options {
	return Options{RAMBytes: 4 << 30, NumCPUs: 1}
}

// Validate reports the first configuration error, or nil. New calls it;
// callers constructing Options programmatically can call it earlier.
func (o Options) Validate() error {
	if o.RAMBytes == 0 {
		return fmt.Errorf("kernel: Options.RAMBytes must be > 0 (no default machine size; use DefaultOptions)")
	}
	if o.RAMBytes < mem.PageSize {
		return fmt.Errorf("kernel: Options.RAMBytes %d is below one %d-byte page", o.RAMBytes, mem.PageSize)
	}
	if o.Quantum < 0 {
		return fmt.Errorf("kernel: Options.Quantum %d is negative", o.Quantum)
	}
	if o.NumCPUs < 1 {
		return fmt.Errorf("kernel: Options.NumCPUs %d must be at least 1", o.NumCPUs)
	}
	if o.NumCPUs > cost.MaxCPUs {
		return fmt.Errorf("kernel: Options.NumCPUs %d exceeds the %d-CPU limit", o.NumCPUs, cost.MaxCPUs)
	}
	return nil
}

// cpu is one simulated processor: its run queue, dispatch accounting,
// and the address space currently live on it. Virtual time lives in
// the meter (one clock per CPU); the scheduler orders CPUs by it.
type cpu struct {
	id       int
	runq     runQueue
	switches uint64
	steals   uint64
	// curSpace is the address space of the last thread dispatched
	// here. While set, the space is marked resident on this CPU and
	// pays a TLB-shootdown IPI here for remote translation changes.
	curSpace *addrspace.Space
}

// Kernel is one simulated machine.
type Kernel struct {
	opts  Options
	meter *cost.Meter
	phys  *mem.Physical
	fs    *vfs.FS

	procs   map[PID]*Process
	nextPID PID

	cpus     []cpu
	sleepers []*Thread // blocked in nanosleep, unordered

	futexes map[futexKey]*WaitQueue

	// nic is the machine's simulated network interface (see net.go);
	// addr -1 means "not attached to a fabric".
	nic nic

	// faults is the fault-injection engine (nil = injection off; all
	// Fail call sites are nil-safe). tracer is the structured event
	// trace (nil = tracing off).
	faults *fault.Injector
	tracer *fault.Recorder

	// Diagnostics.
	OOMKills        int
	SegvKills       int
	lastStop        StopInfo
	contextSwitches uint64
}

// StopReason reports why Run returned.
type StopReason int

// Stop reasons.
const (
	StopIdle StopReason = iota // no runnable, no sleeping, no live threads
	StopDeadlock
	StopLimit
)

func (r StopReason) String() string {
	switch r {
	case StopIdle:
		return "idle"
	case StopDeadlock:
		return "deadlock"
	case StopLimit:
		return "limit"
	}
	return fmt.Sprintf("stop(%d)", int(r))
}

// StopInfo is the per-CPU-aware stop record: which CPU the stop
// decision was made on (-1 for machine-wide conditions like idle and
// deadlock) and the machine's virtual time at that moment.
type StopInfo struct {
	Reason      StopReason
	CPU         int
	VirtualTime cost.Ticks
}

func (si StopInfo) String() string {
	if si.CPU < 0 {
		return fmt.Sprintf("%v at %v", si.Reason, si.VirtualTime)
	}
	return fmt.Sprintf("%v on cpu%d at %v", si.Reason, si.CPU, si.VirtualTime)
}

// CPUState is a diagnostic snapshot of one simulated CPU.
type CPUState struct {
	CPU      int
	Clock    cost.Ticks // this CPU's virtual time
	Busy     cost.Ticks // clock minus idle fast-forwards
	QueueLen int
	Switches uint64 // dispatches on this CPU
	Steals   uint64 // dispatches that took work from another queue
}

func (cs CPUState) String() string {
	return fmt.Sprintf("cpu%d clock=%v busy=%v queue=%d switches=%d steals=%d",
		cs.CPU, cs.Clock, cs.Busy, cs.QueueLen, cs.Switches, cs.Steals)
}

// New boots a kernel with an empty filesystem containing /dev, /bin,
// and /tmp. It returns an error for invalid Options (see
// Options.Validate).
func New(opts Options) (*Kernel, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Quantum == 0 {
		opts.Quantum = DefaultQuantum
	}
	model := cost.DefaultModel()
	if opts.Model != nil {
		model = *opts.Model
	}
	meter := cost.NewMeterSMP(model, opts.NumCPUs)
	k := &Kernel{
		opts:    opts,
		meter:   meter,
		phys:    mem.NewPhysical(meter, opts.RAMBytes, opts.SwapBytes, opts.Commit),
		fs:      vfs.NewFS(),
		procs:   map[PID]*Process{},
		nextPID: 1,
		cpus:    make([]cpu, opts.NumCPUs),
		futexes: map[futexKey]*WaitQueue{},
		nic:     nic{addr: -1},
	}
	for i := range k.cpus {
		k.cpus[i].id = i
	}
	for _, d := range []string{"/dev", "/bin", "/tmp"} {
		if _, err := k.fs.MkdirAll(d); err != nil {
			panic(err)
		}
	}
	if _, err := k.fs.Mknod("/dev/null", vfs.NullDevice{}); err != nil {
		panic(err)
	}
	console := &vfs.ConsoleDevice{In: opts.ConsoleIn, Out: opts.ConsoleOut}
	if _, err := k.fs.Mknod("/dev/console", console); err != nil {
		panic(err)
	}
	if opts.Trace {
		k.tracer = fault.NewRecorder()
		k.meter.OnShootdown = func(remotes int) {
			k.trace(fault.Event{Kind: fault.EvShootdown, Pid: -1, Num: uint64(remotes)})
		}
	}
	if opts.Faults != nil {
		k.SetFaultSchedule(opts.Faults)
	}
	return k, nil
}

// SetFaultSchedule installs (or replaces) the machine's fault
// schedule. The injector's per-point op counters persist across
// schedule swaps — they identify operations since boot, which is what
// lets a clean Observe run enumerate the targets for a later sweep.
func (k *Kernel) SetFaultSchedule(s fault.Schedule) {
	if k.faults == nil {
		k.faults = fault.NewInjector(k.meter, s)
		k.faults.SetRecorder(k.tracer)
		k.phys.SetInjector(k.faults)
		return
	}
	k.faults.SetSchedule(s)
}

// Faults returns the fault-injection engine (nil when injection is
// off). The load drivers consult workload-level points through it.
func (k *Kernel) Faults() *fault.Injector { return k.faults }

// Tracer returns the structured event trace (nil unless Options.Trace
// was set).
func (k *Kernel) Tracer() *fault.Recorder { return k.tracer }

// trace records one event, filling in time and CPU from the meter.
// It is cheap to call unconditionally guarded (tracer nil-checks are
// at the hot call sites).
func (k *Kernel) trace(e fault.Event) {
	if k.tracer == nil {
		return
	}
	e.Time = k.meter.Now()
	e.CPU = k.meter.ActiveCPU()
	k.tracer.Record(e)
}

// Meter exposes the cost meter (experiments read the clock and event
// counters from here).
func (k *Kernel) Meter() *cost.Meter { return k.meter }

// Now returns the current virtual time on the active CPU.
func (k *Kernel) Now() cost.Ticks { return k.meter.Now() }

// Elapsed returns the machine-wide virtual time: the furthest-ahead
// CPU clock. On a 1-CPU machine it equals Now.
func (k *Kernel) Elapsed() cost.Ticks { return k.meter.MaxClock() }

// Phys exposes physical memory.
func (k *Kernel) Phys() *mem.Physical { return k.phys }

// FS exposes the filesystem (for mkfs-style setup).
func (k *Kernel) FS() *vfs.FS { return k.fs }

// Options returns the boot options.
func (k *Kernel) Options() Options { return k.opts }

// NumCPUs reports the simulated CPU count.
func (k *Kernel) NumCPUs() int { return len(k.cpus) }

// LastStop reports why the previous Run returned.
func (k *Kernel) LastStop() StopReason { return k.lastStop.Reason }

// LastStopInfo reports why — and where — the previous Run returned.
func (k *Kernel) LastStopInfo() StopInfo { return k.lastStop }

// ContextSwitches reports the scheduler's total dispatch count across
// all CPUs.
func (k *Kernel) ContextSwitches() uint64 { return k.contextSwitches }

// CPUStates snapshots every CPU's scheduler state (diagnostics,
// utilization reporting).
func (k *Kernel) CPUStates() []CPUState {
	out := make([]CPUState, len(k.cpus))
	for i := range k.cpus {
		c := &k.cpus[i]
		out[i] = CPUState{
			CPU:      c.id,
			Clock:    k.meter.CPUClock(c.id),
			Busy:     k.meter.CPUBusy(c.id),
			QueueLen: c.runq.Len(),
			Switches: c.switches,
			Steals:   c.steals,
		}
	}
	return out
}

// WaitQueue is a FIFO of blocked threads.
type WaitQueue struct {
	name string
	ts   []*Thread
}

// NewWaitQueue creates a named queue (name appears in deadlock reports).
func NewWaitQueue(name string) *WaitQueue { return &WaitQueue{name: name} }

// Len reports the number of waiters.
func (q *WaitQueue) Len() int { return len(q.ts) }

// block parks t on q. The current instruction is *not* advanced, so
// the syscall retries when the thread is woken (all blocking syscalls
// in this kernel are restartable). A nil queue is allowed for waits
// that are woken directly (vfork's parent suspension).
func (k *Kernel) block(t *Thread, q *WaitQueue, reason string) {
	if t.state == TBlocked {
		panic("kernel: double block of " + t.String())
	}
	t.state = TBlocked
	t.wait = q
	t.waitReason = reason
	if q != nil {
		q.ts = append(q.ts, t)
	}
}

// unblock makes t runnable again, removing it from its queue. The
// thread goes back to its affinity CPU's queue (the CPU it last ran
// on); the work-stealing dispatcher migrates it if that CPU lags.
func (k *Kernel) unblock(t *Thread) {
	if t.state != TBlocked {
		return
	}
	if q := t.wait; q != nil {
		for i, w := range q.ts {
			if w == t {
				q.ts = append(q.ts[:i], q.ts[i+1:]...)
				break
			}
		}
	}
	t.wait = nil
	t.waitReason = ""
	// sleepDeadline is deliberately left alone: the nanosleep
	// handler clears it when the sleep completes, and a sleeper
	// woken early (signal) re-blocks for the remaining time.
	t.state = TRunnable
	k.enqueue(t)
}

// enqueue pushes a runnable thread onto its affinity CPU's queue.
func (k *Kernel) enqueue(t *Thread) {
	k.cpus[t.cpu].runq.push(t)
}

// placeNewThread assigns a first CPU to a brand-new runnable thread:
// the shortest queue, lowest id on ties — a deterministic spread that
// puts sibling threads on different CPUs.
func (k *Kernel) placeNewThread(t *Thread) {
	best := 0
	for i := 1; i < len(k.cpus); i++ {
		if k.cpus[i].runq.Len() < k.cpus[best].runq.Len() {
			best = i
		}
	}
	t.cpu = best
}

// wakeOne wakes the oldest waiter; it reports whether one was woken.
func (k *Kernel) wakeOne(q *WaitQueue) bool {
	if len(q.ts) == 0 {
		return false
	}
	k.unblock(q.ts[0])
	return true
}

// wakeAll wakes every waiter and reports how many.
func (k *Kernel) wakeAll(q *WaitQueue) int {
	n := 0
	for len(q.ts) > 0 {
		k.unblock(q.ts[0])
		n++
	}
	return n
}

// RunLimits bounds a Run call. Zero fields mean "no limit".
type RunLimits struct {
	MaxInstructions uint64
	// MaxTicks bounds machine-wide elapsed virtual time, measured
	// from the furthest-ahead CPU clock at the call.
	MaxTicks cost.Ticks
}

// DeadlockError reports a simulation where live threads exist but none
// can ever run again — e.g. the child of a multithreaded fork blocking
// on a mutex whose holder was not duplicated (§4.2 of the paper).
type DeadlockError struct {
	Threads []string   // blocked-thread descriptions, sorted by pid/tid
	CPUs    []CPUState // per-CPU scheduler state at detection time
}

func (e *DeadlockError) Error() string {
	msg := fmt.Sprintf("kernel: deadlock: %d thread(s) blocked forever: %s",
		len(e.Threads), strings.Join(e.Threads, "; "))
	if len(e.CPUs) > 1 {
		states := make([]string, len(e.CPUs))
		for i, cs := range e.CPUs {
			states[i] = cs.String()
		}
		msg += " [" + strings.Join(states, ", ") + "]"
	}
	return msg
}

// queuedThreads counts entries across every CPU's run queue (stale
// entries for exited threads included; pops skip those lazily).
func (k *Kernel) queuedThreads() int {
	n := 0
	for i := range k.cpus {
		n += k.cpus[i].runq.Len()
	}
	return n
}

// nextCPU picks the CPU that executes next: lowest clock, lowest id on
// ties. Executing in virtual-time order is what makes the N-CPU
// machine deterministic — there is never a host-dependent choice.
func (k *Kernel) nextCPU() *cpu {
	best := 0
	bc := k.meter.CPUClock(0)
	for i := 1; i < len(k.cpus); i++ {
		if c := k.meter.CPUClock(i); c < bc {
			best, bc = i, c
		}
	}
	return &k.cpus[best]
}

// stealVictim picks the queue to steal from: the longest, lowest id on
// ties. Returns nil if every queue is empty.
func (k *Kernel) stealVictim() *cpu {
	best := -1
	for i := range k.cpus {
		if k.cpus[i].runq.Len() == 0 {
			continue
		}
		if best == -1 || k.cpus[i].runq.Len() > k.cpus[best].runq.Len() {
			best = i
		}
	}
	if best == -1 {
		return nil
	}
	return &k.cpus[best]
}

// Run drives the machine until every thread has exited or parked
// (StopIdle), the system deadlocks (returns *DeadlockError), or a
// limit is hit (StopLimit). It is the only place virtual time advances
// for instruction execution. CPUs execute in virtual-time order: the
// lowest-clock CPU dispatches next, from its own queue or — when
// empty — by stealing the oldest thread from the longest queue.
func (k *Kernel) Run(limits RunLimits) error {
	startInstr := k.meter.Instructions
	deadline := cost.Ticks(0)
	if limits.MaxTicks != 0 {
		deadline = k.meter.MaxClock() + limits.MaxTicks
	}
	for {
		if limits.MaxInstructions != 0 && k.meter.Instructions-startInstr >= limits.MaxInstructions {
			k.stop(StopLimit, k.meter.ActiveCPU())
			return nil
		}
		if k.queuedThreads() == 0 {
			if k.wakeSleepers() {
				continue
			}
			// No runnable, no sleeper. A thread parked in
			// net_recv is waiting on the fabric, not on the
			// machine: the harness wakes it with NetInject, so
			// stop idle rather than calling it a deadlock.
			if k.nic.queue().Len() > 0 {
				k.idleSync()
				k.stop(StopIdle, -1)
				return nil
			}
			// Deadlock if any thread is still blocked.
			if stuck := k.stuckThreads(); len(stuck) > 0 {
				err := &DeadlockError{Threads: stuck, CPUs: k.CPUStates()}
				k.stop(StopDeadlock, -1)
				return err
			}
			// Fully quiesced: the machine waited for its last
			// CPU — bring every clock to the barrier so
			// subsequent harness work starts from a single
			// point in time.
			k.idleSync()
			k.stop(StopIdle, -1)
			return nil
		}
		c := k.nextCPU()
		if deadline != 0 && k.meter.CPUClock(c.id) >= deadline {
			k.stop(StopLimit, c.id)
			return nil
		}
		t, stolen := k.take(c)
		if t == nil || t.state != TRunnable {
			continue // exited or re-blocked while queued
		}
		if stolen {
			c.steals++
		}
		k.dispatch(c, t, stolen, limits, startInstr, deadline)
	}
}

// take pops the next thread for c: its own queue first, then a steal.
func (k *Kernel) take(c *cpu) (t *Thread, stolen bool) {
	if c.runq.Len() > 0 {
		return c.runq.pop(), false
	}
	v := k.stealVictim()
	if v == nil {
		return nil, false
	}
	return v.runq.pop(), true
}

// stop records the reason Run returned.
func (k *Kernel) stop(r StopReason, cpu int) {
	k.lastStop = StopInfo{Reason: r, CPU: cpu, VirtualTime: k.meter.MaxClock()}
}

// stuckThreads collects blocked-thread descriptions, sorted by pid and
// tid so reports are deterministic.
func (k *Kernel) stuckThreads() []string {
	type stuckKey struct {
		pid PID
		tid int
	}
	var keys []stuckKey
	desc := map[stuckKey]string{}
	for _, p := range k.procs {
		if p.state != ProcAlive {
			continue
		}
		for _, t := range p.threads {
			if t.state == TBlocked {
				key := stuckKey{p.Pid, t.TID}
				keys = append(keys, key)
				desc[key] = fmt.Sprintf("%s on %s", t, t.waitReason)
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pid != keys[j].pid {
			return keys[i].pid < keys[j].pid
		}
		return keys[i].tid < keys[j].tid
	})
	out := make([]string, len(keys))
	for i, key := range keys {
		out[i] = desc[key]
	}
	return out
}

// idleSync fast-forwards every CPU to the machine-wide clock (recorded
// as idle time, not busy time).
func (k *Kernel) idleSync() {
	max := k.meter.MaxClock()
	for i := range k.cpus {
		k.meter.IdleTo(i, max)
	}
}

// dispatch runs t on c for up to one quantum.
func (k *Kernel) dispatch(c *cpu, t *Thread, stolen bool, limits RunLimits, startInstr uint64, deadline cost.Ticks) {
	k.meter.SetActiveCPU(c.id)
	if k.tracer != nil {
		var aux uint64
		if stolen {
			aux = 1
		}
		k.trace(fault.Event{Kind: fault.EvSched, Pid: int(t.proc.Pid), Tid: t.TID, Aux: aux})
	}
	t.cpu = c.id
	t.state = TRunning
	t.dispatches++
	c.switches++
	k.contextSwitches++
	k.switchSpace(c, t.proc.space)
	before := k.meter.CPUClock(c.id)
	k.meter.Charge(k.meter.Model.ContextSwitch)
	for i := 0; i < k.opts.Quantum; i++ {
		if t.state != TRunning {
			break // blocked or exited inside step
		}
		if limits.MaxInstructions != 0 && k.meter.Instructions-startInstr >= limits.MaxInstructions {
			break
		}
		if deadline != 0 && k.meter.Now() >= deadline {
			break
		}
		k.step(t)
	}
	t.proc.chargeCPU(c.id, k.meter.CPUClock(c.id)-before)
	if t.state == TRunning {
		t.state = TRunnable
		k.enqueue(t)
	}
}

// switchSpace updates c's live address space and the residency mask
// that prices TLB shootdowns: the outgoing space no longer pays IPIs
// for this CPU, the incoming one does.
func (k *Kernel) switchSpace(c *cpu, next *addrspace.Space) {
	if c.curSpace == next {
		return
	}
	if c.curSpace != nil {
		c.curSpace.ClearResident(c.id)
	}
	c.curSpace = next
	if next != nil {
		next.MarkResident(c.id)
	}
}

// spaceRetired clears any per-CPU reference to a destroyed (or
// replaced) address space so residency never outlives the space.
func (k *Kernel) spaceRetired(s *addrspace.Space) {
	if s == nil {
		return
	}
	for i := range k.cpus {
		if k.cpus[i].curSpace == s {
			// Drop the residency bit too: a space that survives
			// retirement (a vfork child leaving its parent's
			// space) must not keep paying IPIs for this CPU.
			s.ClearResident(k.cpus[i].id)
			k.cpus[i].curSpace = nil
		}
	}
}

// wakeSleepers advances every CPU to the earliest sleep deadline
// (recorded as idle time) and wakes the threads due then. It reports
// whether anything was woken.
func (k *Kernel) wakeSleepers() bool {
	if len(k.sleepers) == 0 {
		return false
	}
	earliest := cost.Ticks(0)
	found := false
	for _, t := range k.sleepers {
		if t.state != TBlocked {
			continue // woken early; stale entry dropped below
		}
		if !found || t.sleepDeadline < earliest {
			earliest, found = t.sleepDeadline, true
		}
	}
	if !found {
		k.sleepers = k.sleepers[:0]
		return false
	}
	for i := range k.cpus {
		k.meter.IdleTo(i, earliest)
	}
	rest := k.sleepers[:0]
	woke := false
	for _, t := range k.sleepers {
		switch {
		case t.state != TBlocked:
			// Woken early (e.g. by a signal); drop the stale
			// sleeper entry.
		case t.sleepDeadline <= earliest:
			k.unblock(t)
			woke = true
		default:
			rest = append(rest, t)
		}
	}
	k.sleepers = rest
	return woke
}

// Idle reports whether nothing can run.
func (k *Kernel) Idle() bool { return k.queuedThreads() == 0 && len(k.sleepers) == 0 }

// newSpace creates an empty address space bound to this kernel's
// physical memory and meter.
func (k *Kernel) newSpace() *addrspace.Space { return addrspace.New(k.phys, k.meter) }

// InstallImage writes an executable image into the filesystem at path
// (mkfs helper used by boot code, tests, and the experiment harness).
func (k *Kernel) InstallImage(path string, im *image.Image) error {
	_, err := k.fs.WriteFile(path, im.Encode())
	return err
}
