// Package kernel is the simulated operating system: a process table,
// deterministic scheduler, virtual-memory management, descriptor
// layer, signals, futexes, and a syscall interface executed by the
// built-in bytecode VM.
//
// The kernel exposes two surfaces:
//
//   - the syscall ABI (internal/abi) used by programs assembled with
//     internal/asm and run on the VM, and
//   - a direct Go API (BootInit, NewSynthetic, Fork, Exec, Spawn,
//     StartProcess, WaitReap, ...) used
//     by the measurement harness in internal/experiments and by
//     internal/core, which implements the paper's proposed
//     process-creation APIs on top of these primitives.
//
// Everything is single-threaded and driven by a virtual clock
// (internal/cost); given the same inputs a simulation is reproducible
// bit-for-bit.
package kernel

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/addrspace"
	"repro/internal/cost"
	"repro/internal/image"
	"repro/internal/mem"
	"repro/internal/vfs"
)

// Options configures a kernel instance.
type Options struct {
	// RAMBytes sizes physical memory (default 4 GiB).
	RAMBytes uint64
	// SwapBytes adds commit headroom beyond RAM (default 0).
	SwapBytes uint64
	// Commit selects the overcommit policy (default heuristic).
	Commit mem.CommitPolicy
	// Model is the hardware cost model (default cost.DefaultModel).
	Model *cost.Model
	// EagerFork switches fork to 1970s eager copying (ablation).
	EagerFork bool
	// DenyMultithreadedFork makes fork fail with EAGAIN when the
	// caller has more than one live thread — the mitigation §8 of
	// the paper proposes on the road to deprecating fork entirely
	// (a child that cannot deadlock is better than one that can).
	DenyMultithreadedFork bool
	// Quantum is the scheduler timeslice in instructions (default 2048).
	Quantum int
	// ConsoleOut receives /dev/console writes (default: discard).
	ConsoleOut io.Writer
	// ConsoleIn supplies /dev/console reads (default: EOF).
	ConsoleIn io.Reader
}

// Kernel is one simulated machine.
type Kernel struct {
	opts  Options
	meter *cost.Meter
	phys  *mem.Physical
	fs    *vfs.FS

	procs   map[PID]*Process
	nextPID PID

	runq     runQueue
	sleepers []*Thread // blocked in nanosleep, unordered

	futexes map[futexKey]*WaitQueue

	// Diagnostics.
	OOMKills        int
	SegvKills       int
	lastStop        StopReason
	contextSwitches uint64
}

// StopReason reports why Run returned.
type StopReason int

// Stop reasons.
const (
	StopIdle StopReason = iota // no runnable, no sleeping, no live threads
	StopDeadlock
	StopLimit
)

func (r StopReason) String() string {
	switch r {
	case StopIdle:
		return "idle"
	case StopDeadlock:
		return "deadlock"
	case StopLimit:
		return "limit"
	}
	return fmt.Sprintf("stop(%d)", int(r))
}

// New boots a kernel with an empty filesystem containing /dev, /bin,
// and /tmp.
func New(opts Options) *Kernel {
	if opts.RAMBytes == 0 {
		opts.RAMBytes = 4 << 30
	}
	if opts.Quantum == 0 {
		opts.Quantum = 2048
	}
	model := cost.DefaultModel()
	if opts.Model != nil {
		model = *opts.Model
	}
	meter := cost.NewMeter(model)
	k := &Kernel{
		opts:    opts,
		meter:   meter,
		phys:    mem.NewPhysical(meter, opts.RAMBytes, opts.SwapBytes, opts.Commit),
		fs:      vfs.NewFS(),
		procs:   map[PID]*Process{},
		nextPID: 1,
		futexes: map[futexKey]*WaitQueue{},
	}
	for _, d := range []string{"/dev", "/bin", "/tmp"} {
		if _, err := k.fs.MkdirAll(d); err != nil {
			panic(err)
		}
	}
	if _, err := k.fs.Mknod("/dev/null", vfs.NullDevice{}); err != nil {
		panic(err)
	}
	console := &vfs.ConsoleDevice{In: opts.ConsoleIn, Out: opts.ConsoleOut}
	if _, err := k.fs.Mknod("/dev/console", console); err != nil {
		panic(err)
	}
	return k
}

// Meter exposes the cost meter (experiments read the clock and event
// counters from here).
func (k *Kernel) Meter() *cost.Meter { return k.meter }

// Now returns the current virtual time.
func (k *Kernel) Now() cost.Ticks { return k.meter.Now() }

// Phys exposes physical memory.
func (k *Kernel) Phys() *mem.Physical { return k.phys }

// FS exposes the filesystem (for mkfs-style setup).
func (k *Kernel) FS() *vfs.FS { return k.fs }

// Options returns the boot options.
func (k *Kernel) Options() Options { return k.opts }

// LastStop reports why the previous Run returned.
func (k *Kernel) LastStop() StopReason { return k.lastStop }

// ContextSwitches reports the scheduler's dispatch count.
func (k *Kernel) ContextSwitches() uint64 { return k.contextSwitches }

// WaitQueue is a FIFO of blocked threads.
type WaitQueue struct {
	name string
	ts   []*Thread
}

// NewWaitQueue creates a named queue (name appears in deadlock reports).
func NewWaitQueue(name string) *WaitQueue { return &WaitQueue{name: name} }

// Len reports the number of waiters.
func (q *WaitQueue) Len() int { return len(q.ts) }

// block parks t on q. The current instruction is *not* advanced, so
// the syscall retries when the thread is woken (all blocking syscalls
// in this kernel are restartable). A nil queue is allowed for waits
// that are woken directly (vfork's parent suspension).
func (k *Kernel) block(t *Thread, q *WaitQueue, reason string) {
	if t.state == TBlocked {
		panic("kernel: double block of " + t.String())
	}
	t.state = TBlocked
	t.wait = q
	t.waitReason = reason
	if q != nil {
		q.ts = append(q.ts, t)
	}
}

// unblock makes t runnable again, removing it from its queue.
func (k *Kernel) unblock(t *Thread) {
	if t.state != TBlocked {
		return
	}
	if q := t.wait; q != nil {
		for i, w := range q.ts {
			if w == t {
				q.ts = append(q.ts[:i], q.ts[i+1:]...)
				break
			}
		}
	}
	t.wait = nil
	t.waitReason = ""
	// sleepDeadline is deliberately left alone: the nanosleep
	// handler clears it when the sleep completes, and a sleeper
	// woken early (signal) re-blocks for the remaining time.
	t.state = TRunnable
	k.runq.push(t)
}

// wakeOne wakes the oldest waiter; it reports whether one was woken.
func (k *Kernel) wakeOne(q *WaitQueue) bool {
	if len(q.ts) == 0 {
		return false
	}
	k.unblock(q.ts[0])
	return true
}

// wakeAll wakes every waiter and reports how many.
func (k *Kernel) wakeAll(q *WaitQueue) int {
	n := 0
	for len(q.ts) > 0 {
		k.unblock(q.ts[0])
		n++
	}
	return n
}

// RunLimits bounds a Run call. Zero fields mean "no limit".
type RunLimits struct {
	MaxInstructions uint64
	MaxTicks        cost.Ticks
}

// DeadlockError reports a simulation where live threads exist but none
// can ever run again — e.g. the child of a multithreaded fork blocking
// on a mutex whose holder was not duplicated (§4.2 of the paper).
type DeadlockError struct {
	Threads []string // human-readable blocked-thread descriptions
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("kernel: deadlock: %d thread(s) blocked forever: %s",
		len(e.Threads), strings.Join(e.Threads, "; "))
}

// Run drives the machine until every thread has exited or parked
// (StopIdle), the system deadlocks (returns *DeadlockError), or a
// limit is hit (StopLimit). It is the only place virtual time advances
// for instruction execution.
func (k *Kernel) Run(limits RunLimits) error {
	startInstr := k.meter.Instructions
	deadline := cost.Ticks(0)
	if limits.MaxTicks != 0 {
		deadline = k.meter.Now() + limits.MaxTicks
	}
	for {
		if limits.MaxInstructions != 0 && k.meter.Instructions-startInstr >= limits.MaxInstructions {
			k.lastStop = StopLimit
			return nil
		}
		if deadline != 0 && k.meter.Now() >= deadline {
			k.lastStop = StopLimit
			return nil
		}
		if k.runq.Len() == 0 {
			if k.wakeSleepers() {
				continue
			}
			// No runnable, no sleeper. Deadlock if any thread
			// is still blocked.
			var stuck []string
			for _, p := range k.procs {
				if p.state != ProcAlive {
					continue
				}
				for _, t := range p.threads {
					if t.state == TBlocked {
						stuck = append(stuck, fmt.Sprintf("%s on %s", t, t.waitReason))
					}
				}
			}
			if len(stuck) > 0 {
				k.lastStop = StopDeadlock
				return &DeadlockError{Threads: stuck}
			}
			k.lastStop = StopIdle
			return nil
		}
		t := k.runq.pop()
		if t.state != TRunnable {
			continue // exited or re-blocked while queued
		}
		k.dispatch(t, limits, startInstr, deadline)
	}
}

// dispatch runs t for up to one quantum.
func (k *Kernel) dispatch(t *Thread, limits RunLimits, startInstr uint64, deadline cost.Ticks) {
	t.state = TRunning
	k.contextSwitches++
	k.meter.Charge(k.meter.Model.ContextSwitch)
	for i := 0; i < k.opts.Quantum; i++ {
		if t.state != TRunning {
			return // blocked or exited inside step
		}
		if limits.MaxInstructions != 0 && k.meter.Instructions-startInstr >= limits.MaxInstructions {
			break
		}
		if deadline != 0 && k.meter.Now() >= deadline {
			break
		}
		k.step(t)
	}
	if t.state == TRunning {
		t.state = TRunnable
		k.runq.push(t)
	}
}

// wakeSleepers advances the clock to the earliest sleep deadline and
// wakes the threads due then. It reports whether anything was woken.
func (k *Kernel) wakeSleepers() bool {
	if len(k.sleepers) == 0 {
		return false
	}
	earliest := k.sleepers[0].sleepDeadline
	for _, t := range k.sleepers[1:] {
		if t.sleepDeadline < earliest {
			earliest = t.sleepDeadline
		}
	}
	if earliest > k.meter.Now() {
		k.meter.Charge(earliest - k.meter.Now())
	}
	rest := k.sleepers[:0]
	for _, t := range k.sleepers {
		switch {
		case t.state != TBlocked:
			// Woken early (e.g. by a signal); drop the stale
			// sleeper entry.
		case t.sleepDeadline <= k.meter.Now():
			k.unblock(t)
		default:
			rest = append(rest, t)
		}
	}
	k.sleepers = rest
	return true
}

// Idle reports whether nothing can run.
func (k *Kernel) Idle() bool { return k.runq.Len() == 0 && len(k.sleepers) == 0 }

// newSpace creates an empty address space bound to this kernel's
// physical memory and meter.
func (k *Kernel) newSpace() *addrspace.Space { return addrspace.New(k.phys, k.meter) }

// InstallImage writes an executable image into the filesystem at path
// (mkfs helper used by boot code, tests, and the experiment harness).
func (k *Kernel) InstallImage(path string, im *image.Image) error {
	_, err := k.fs.WriteFile(path, im.Encode())
	return err
}
