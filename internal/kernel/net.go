package kernel

import (
	"repro/internal/cost"
	"repro/internal/errno"
	"repro/internal/fault"
)

// The machine's NIC: a simulated network interface the inter-machine
// fabric (repro/sim/net) plugs into. Programs reach it through two
// syscalls — net_send enqueues one frame into the outbox, net_recv
// blocks until a frame is in the inbox — and the host harness moves
// frames between machines: NetDrainOutbox hands sent frames to the
// fabric, NetInject delivers arriving ones (waking blocked
// receivers). The kernel prices CPU-side work only (stack traversal
// and per-byte serialization, from the cost model); wire latency is
// the fabric's business and shows up as inbox frames arriving at
// later virtual times via AdvanceTo.

// NetFrame is one frame crossing a NIC, payload priced but not
// stored: the simulator models the cost of moving Bytes, not their
// content. Tag is the application-level correlation word (request id,
// shard key, ...) that net_recv hands back to the program.
//
// Wire format: net_recv returns a single 64-bit word packing the
// sender's address into the high half and the tag into the low half —
// src<<32 | tag&0xffffffff. A tag therefore has exactly 32
// significant bits on the wire; net_send rejects anything wider with
// EINVAL up front (see MaxNetTag) instead of silently truncating it
// into an aliased flow on the receive side.
type NetFrame struct {
	Src, Dst int
	Tag      uint64
	Bytes    uint64
}

// MaxNetTag is the largest tag net_send accepts: the receive-side
// return word src<<32|tag gives the tag 32 bits, so anything above
// this would be truncated and could alias another flow.
const MaxNetTag = uint64(1)<<32 - 1

// nic is the per-kernel NIC state. addr is the machine's fabric
// address (set by the harness; -1 until attached).
type nic struct {
	addr   int
	inbox  []NetFrame
	outbox []NetFrame
	recvQ  *WaitQueue

	// Counters, read by the metrics plane.
	framesSent, framesRecv uint64
	bytesSent, bytesRecv   uint64
}

func (n *nic) queue() *WaitQueue {
	if n.recvQ == nil {
		n.recvQ = NewWaitQueue("net_recv")
	}
	return n.recvQ
}

// NetAttach assigns the machine its fabric address. Frames sent
// before attachment carry source address -1.
func (k *Kernel) NetAttach(addr int) { k.nic.addr = addr }

// NetAddr reports the machine's fabric address (-1 when detached).
func (k *Kernel) NetAddr() int { return k.nic.addr }

// NetInject delivers one frame into the machine's inbox and wakes a
// blocked receiver, if any. The harness calls AdvanceTo(arrival)
// first so the delivery lands at the frame's fabric arrival time.
func (k *Kernel) NetInject(f NetFrame) {
	k.nic.inbox = append(k.nic.inbox, f)
	k.nic.framesRecv++
	k.nic.bytesRecv += f.Bytes
	if k.tracer != nil {
		k.trace(fault.Event{Kind: fault.EvNetRecv, Pid: -1,
			Num: fault.NetMag(f.Src, f.Dst), Aux: f.Bytes})
	}
	k.wakeOne(k.nic.queue())
}

// NetDrainOutbox removes and returns every frame the machine has sent
// since the last drain, in send order.
func (k *Kernel) NetDrainOutbox() []NetFrame {
	out := k.nic.outbox
	k.nic.outbox = nil
	return out
}

// NetPendingRecv reports how many threads are blocked in net_recv —
// the "machine is parked on the fabric" signal the harness polls.
func (k *Kernel) NetPendingRecv() int { return k.nic.queue().Len() }

// NetStats reports the NIC's cumulative frame and byte counters
// (sent, received).
func (k *Kernel) NetStats() (framesSent, framesRecv, bytesSent, bytesRecv uint64) {
	return k.nic.framesSent, k.nic.framesRecv, k.nic.bytesSent, k.nic.bytesRecv
}

// AdvanceTo fast-forwards every CPU to the absolute virtual time
// deadline, recording the gap as idle — the machine waiting for the
// network. Deadlines in the past are a no-op, so callers can blindly
// advance to each frame's arrival time.
func (k *Kernel) AdvanceTo(deadline cost.Ticks) {
	for i := range k.cpus {
		k.meter.IdleTo(i, deadline)
	}
}

// sysNetSend is net_send(dst, tag, len): validate the tag against the
// 32-bit wire format (see NetFrame), price the frame on the sending
// CPU (stack traversal + per-byte serialization), consult the
// source-NIC fault point, and enqueue it into the outbox for the
// fabric to pick up. A dropped frame costs the CPU the same work and
// fails with EIO — the program saw its uplink sever. An over-wide tag
// fails with EINVAL before any work is priced; the syscall dispatcher
// traces the rejection as a `net_send = EINVAL` exit event.
func (k *Kernel) sysNetSend(t *Thread, dst, tag, nbytes uint64) (uint64, error) {
	if tag > MaxNetTag {
		return 0, errno.EINVAL
	}
	k.meter.Charge(k.meter.Model.NetStack + cost.Ticks(nbytes)*k.meter.Model.NetPerByte)
	f := NetFrame{Src: k.nic.addr, Dst: int(dst), Tag: tag, Bytes: nbytes}
	if e := k.faults.Fail(fault.PointNetSend, fault.NetMag(f.Src, f.Dst)); e != errno.OK {
		return 0, e
	}
	k.nic.framesSent++
	k.nic.bytesSent += nbytes
	if k.tracer != nil {
		k.trace(fault.Event{Kind: fault.EvNetSend, Pid: int(t.proc.Pid), Tid: t.TID,
			Num: fault.NetMag(f.Src, f.Dst), Aux: nbytes})
	}
	k.nic.outbox = append(k.nic.outbox, f)
	return 0, nil
}

// sysNetRecv is net_recv(): block until a frame is in the inbox, then
// pop it and return src<<32|tag. Blocking is restartable — the SYS
// instruction retries when NetInject wakes the thread — and FIFO: the
// oldest waiter gets the oldest frame.
func (k *Kernel) sysNetRecv(t *Thread) (uint64, error) {
	if len(k.nic.inbox) == 0 {
		k.block(t, k.nic.queue(), "net_recv")
		return 0, errBlocked
	}
	f := k.nic.inbox[0]
	k.nic.inbox = k.nic.inbox[1:]
	k.meter.Charge(k.meter.Model.NetStack + cost.Ticks(f.Bytes)*k.meter.Model.NetPerByte)
	return uint64(uint32(f.Src))<<32 | f.Tag&0xffffffff, nil
}
