package kernel

import (
	"fmt"

	"repro/internal/addrspace"
	"repro/internal/cost"
	"repro/internal/errno"
	"repro/internal/fault"
	"repro/internal/sig"
	"repro/internal/vfs"
)

// PID identifies a process.
type PID int

// ProcState is a process's lifecycle state.
type ProcState uint8

// Process states.
const (
	ProcAlive ProcState = iota
	ProcZombie
	ProcReaped
)

func (s ProcState) String() string {
	switch s {
	case ProcAlive:
		return "alive"
	case ProcZombie:
		return "zombie"
	case ProcReaped:
		return "reaped"
	}
	return fmt.Sprintf("proc(%d)", int(s))
}

// Process is one simulated process.
type Process struct {
	Pid  PID
	Name string

	parent   *Process
	children []*Process

	space      *addrspace.Space
	spaceOwned bool // false while a vfork child borrows the parent's space

	fds  *vfs.FDTable
	cwd  *vfs.Inode
	sigs *sig.Table

	// pending holds process-directed pending signals; any thread
	// with the signal unblocked may take it.
	pending sig.Set

	threads []*Thread
	nextTID int

	state      ProcState
	exitStatus uint64 // abi-encoded

	// childQ blocks threads of *this* process waiting in waitpid.
	childQ *WaitQueue

	// vforkWaiter is the parent thread suspended by vfork until
	// this child execs or exits.
	vforkWaiter *Thread

	started   cost.Ticks
	oomKilled bool

	// cpuTicks accumulates the virtual time this process's threads
	// executed on each CPU (one slot per simulated CPU).
	cpuTicks []cost.Ticks
}

// Space returns the process's address space.
func (p *Process) Space() *addrspace.Space { return p.space }

// FDs returns the descriptor table.
func (p *Process) FDs() *vfs.FDTable { return p.fds }

// Signals returns the disposition table.
func (p *Process) Signals() *sig.Table { return p.sigs }

// State reports the lifecycle state.
func (p *Process) State() ProcState { return p.state }

// ExitStatus reports the abi-encoded status (valid once a zombie).
func (p *Process) ExitStatus() uint64 { return p.exitStatus }

// OOMKilled reports whether the process died to the OOM killer.
func (p *Process) OOMKilled() bool { return p.oomKilled }

// CPUTicks returns a copy of the per-CPU virtual time this process's
// threads have executed (index = CPU id).
func (p *Process) CPUTicks() []cost.Ticks {
	return append([]cost.Ticks(nil), p.cpuTicks...)
}

// TotalCPUTicks sums CPUTicks across CPUs.
func (p *Process) TotalCPUTicks() cost.Ticks {
	var total cost.Ticks
	for _, t := range p.cpuTicks {
		total += t
	}
	return total
}

// chargeCPU records d ticks of execution on cpu (dispatcher callback).
func (p *Process) chargeCPU(cpu int, d cost.Ticks) { p.cpuTicks[cpu] += d }

// Parent returns the parent process (nil for init and synthetic roots).
func (p *Process) Parent() *Process { return p.parent }

// Cwd returns the working-directory inode.
func (p *Process) Cwd() *vfs.Inode { return p.cwd }

// SetCwd changes the working directory (dir must be a directory inode;
// harness-level chdir used by the public sim API).
func (p *Process) SetCwd(dir *vfs.Inode) error {
	if dir == nil || dir.Type != vfs.TypeDir {
		return errno.ENOTDIR
	}
	p.cwd = dir
	return nil
}

// Children returns the live+zombie children (not a copy).
func (p *Process) Children() []*Process { return p.children }

// MainThread returns the first live thread, or nil.
func (p *Process) MainThread() *Thread {
	for _, t := range p.threads {
		if t.state != TExited {
			return t
		}
	}
	return nil
}

// Threads returns all threads including exited ones (not a copy).
func (p *Process) Threads() []*Thread { return p.threads }

// LiveThreads counts non-exited threads.
func (p *Process) LiveThreads() int {
	n := 0
	for _, t := range p.threads {
		if t.state != TExited {
			n++
		}
	}
	return n
}

// TState is a thread's scheduler state.
type TState uint8

// Thread states.
const (
	// TParked threads exist but are never scheduled; synthetic
	// processes driven directly from Go use them.
	TParked TState = iota
	TRunnable
	TRunning
	TBlocked
	TExited
)

func (s TState) String() string {
	switch s {
	case TParked:
		return "parked"
	case TRunnable:
		return "runnable"
	case TRunning:
		return "running"
	case TBlocked:
		return "blocked"
	case TExited:
		return "exited"
	}
	return fmt.Sprintf("tstate(%d)", int(s))
}

// Thread is one simulated thread: a register file plus scheduling
// state. Threads of a process share its address space, descriptors,
// and signal dispositions; each has its own signal mask and pending
// set.
type Thread struct {
	TID  int
	proc *Process

	regs [16]uint64
	pc   uint64

	state TState
	// cpu is the thread's affinity: the CPU it last ran on (or was
	// placed on at creation). Wakeups enqueue here; the dispatcher's
	// stealing migrates the thread if this CPU lags.
	cpu int
	// dispatches counts scheduler dispatches of this thread
	// (fairness diagnostics).
	dispatches uint64
	// wait is the queue this thread is blocked on (nil otherwise);
	// waitReason names it for deadlock reports.
	wait       *WaitQueue
	waitReason string

	sigMask sig.Set
	pending sig.Set

	// sleepDeadline is the wakeup time while blocked in nanosleep.
	sleepDeadline cost.Ticks

	// exitStatusWord is where a waitpid should copy the status
	// (user address), captured when the wait blocks.
	waitPidTarget PID
	waitStatusVA  uint64

	// vforkChild is set while this thread is suspended by vfork.
	vforkChild *Process
}

// Proc returns the owning process.
func (t *Thread) Proc() *Process { return t.proc }

// State reports the scheduler state.
func (t *Thread) State() TState { return t.state }

// PC returns the program counter.
func (t *Thread) PC() uint64 { return t.pc }

// Reg returns register n.
func (t *Thread) Reg(n int) uint64 { return t.regs[n&15] }

// SetReg sets register n.
func (t *Thread) SetReg(n int, v uint64) { t.regs[n&15] = v }

// SetPC sets the program counter.
func (t *Thread) SetPC(v uint64) { t.pc = v }

// SigMask returns the thread's blocked-signal set.
func (t *Thread) SigMask() sig.Set { return t.sigMask }

// CPU returns the thread's affinity CPU (the one it last ran on).
func (t *Thread) CPU() int { return t.cpu }

// Dispatches reports how many times the scheduler has dispatched this
// thread.
func (t *Thread) Dispatches() uint64 { return t.dispatches }

func (t *Thread) String() string {
	return fmt.Sprintf("pid%d/t%d(%s)", t.proc.Pid, t.TID, t.state)
}

// newThread adds a thread to p in the given state. Runnable threads
// are spread across CPUs (shortest queue, lowest id on ties).
func (k *Kernel) newThread(p *Process, state TState) *Thread {
	t := &Thread{TID: p.nextTID, proc: p, state: state}
	p.nextTID++
	p.threads = append(p.threads, t)
	k.meter.Charge(k.meter.Model.ThreadAlloc)
	if state == TRunnable {
		k.placeNewThread(t)
		k.enqueue(t)
	}
	return t
}

// newProcess allocates a process shell (no space, fds, or threads yet).
func (k *Kernel) newProcess(name string, parent *Process) *Process {
	p := &Process{
		Pid:      k.nextPID,
		Name:     name,
		parent:   parent,
		cwd:      k.fs.Root(),
		sigs:     &sig.Table{},
		childQ:   &WaitQueue{name: "wait:children"},
		started:  k.meter.Now(),
		state:    ProcAlive,
		cpuTicks: make([]cost.Ticks, len(k.cpus)),
	}
	k.nextPID++
	if parent != nil {
		parent.children = append(parent.children, p)
		p.cwd = parent.cwd
	}
	k.procs[p.Pid] = p
	k.meter.Charge(k.meter.Model.ProcAlloc)
	if k.tracer != nil {
		ppid := PID(0)
		if parent != nil {
			ppid = parent.Pid
		}
		k.trace(fault.Event{Kind: fault.EvProcNew, Pid: int(p.Pid), Num: uint64(ppid), Name: name})
	}
	return p
}

// Lookup finds a process by pid (nil if unknown or reaped).
func (k *Kernel) Lookup(pid PID) *Process {
	p := k.procs[pid]
	if p == nil || p.state == ProcReaped {
		return nil
	}
	return p
}

// LiveProcessCount counts processes that are not zombies.
func (k *Kernel) LiveProcessCount() int {
	n := 0
	for _, p := range k.procs {
		if p.state == ProcAlive {
			n++
		}
	}
	return n
}

// StartProcess makes a parked process runnable (used by the
// cross-process construction API in internal/core: build everything,
// then start).
func (k *Kernel) StartProcess(p *Process) error {
	t := p.MainThread()
	if t == nil {
		return errno.ESRCH
	}
	if t.state == TParked {
		t.state = TRunnable
		k.placeNewThread(t)
		k.enqueue(t)
	}
	return nil
}

// ProcessCount reports all table entries including zombies.
func (k *Kernel) ProcessCount() int { return len(k.procs) }
