package kernel

import (
	"encoding/binary"

	"repro/internal/addrspace"
	"repro/internal/errno"
	"repro/internal/isa"
	"repro/internal/sig"
)

// step executes one instruction of t, including signal-delivery checks
// at instruction boundaries (the simulator's equivalent of "on return
// to user mode").
func (k *Kernel) step(t *Thread) {
	if k.checkSignals(t) {
		// A signal was delivered (handler frame pushed) or the
		// process died; either way this step is consumed.
		return
	}

	sp := t.proc.space
	if t.pc%isa.InstrSize != 0 {
		k.threadFault(t, sig.SIGILL)
		return
	}
	var ibuf [isa.InstrSize]byte
	if err := k.readUser(sp, t.pc, ibuf[:], addrspace.AccessExec); err != nil {
		k.faultOrKill(t, err)
		return
	}
	in := isa.Decode(ibuf[:])
	k.meter.Instructions++
	k.meter.Charge(k.meter.Model.InstrTick)

	r := &t.regs
	imm := uint64(int64(in.Imm)) // sign-extended
	next := t.pc + isa.InstrSize

	switch in.Op {
	case isa.OpNop:
	case isa.OpMovi:
		r[in.Rd] = imm
	case isa.OpMovhi:
		r[in.Rd] = r[in.Rd]&0xffffffff | uint64(uint32(in.Imm))<<32
	case isa.OpMov:
		r[in.Rd] = r[in.Rs1]
	case isa.OpAdd:
		r[in.Rd] = r[in.Rs1] + r[in.Rs2]
	case isa.OpSub:
		r[in.Rd] = r[in.Rs1] - r[in.Rs2]
	case isa.OpMul:
		r[in.Rd] = r[in.Rs1] * r[in.Rs2]
	case isa.OpDiv:
		if r[in.Rs2] == 0 {
			k.threadFault(t, sig.SIGFPE)
			return
		}
		r[in.Rd] = r[in.Rs1] / r[in.Rs2]
	case isa.OpMod:
		if r[in.Rs2] == 0 {
			k.threadFault(t, sig.SIGFPE)
			return
		}
		r[in.Rd] = r[in.Rs1] % r[in.Rs2]
	case isa.OpAnd:
		r[in.Rd] = r[in.Rs1] & r[in.Rs2]
	case isa.OpOr:
		r[in.Rd] = r[in.Rs1] | r[in.Rs2]
	case isa.OpXor:
		r[in.Rd] = r[in.Rs1] ^ r[in.Rs2]
	case isa.OpShl:
		r[in.Rd] = r[in.Rs1] << (r[in.Rs2] & 63)
	case isa.OpShr:
		r[in.Rd] = r[in.Rs1] >> (r[in.Rs2] & 63)
	case isa.OpSar:
		r[in.Rd] = uint64(int64(r[in.Rs1]) >> (r[in.Rs2] & 63))
	case isa.OpAddi:
		r[in.Rd] = r[in.Rs1] + imm
	case isa.OpMuli:
		r[in.Rd] = r[in.Rs1] * imm
	case isa.OpAndi:
		r[in.Rd] = r[in.Rs1] & uint64(uint32(in.Imm))
	case isa.OpOri:
		r[in.Rd] = r[in.Rs1] | uint64(uint32(in.Imm))
	case isa.OpXori:
		r[in.Rd] = r[in.Rs1] ^ uint64(uint32(in.Imm))
	case isa.OpShli:
		r[in.Rd] = r[in.Rs1] << (uint(in.Imm) & 63)
	case isa.OpShri:
		r[in.Rd] = r[in.Rs1] >> (uint(in.Imm) & 63)

	case isa.OpLd8, isa.OpLd4, isa.OpLd1:
		size := map[isa.Op]int{isa.OpLd8: 8, isa.OpLd4: 4, isa.OpLd1: 1}[in.Op]
		var buf [8]byte
		va := r[in.Rs1] + imm
		if err := k.readUser(sp, va, buf[:size], addrspace.AccessRead); err != nil {
			k.faultOrKill(t, err)
			return
		}
		r[in.Rd] = binary.LittleEndian.Uint64(buf[:])

	case isa.OpSt8, isa.OpSt4, isa.OpSt1:
		size := map[isa.Op]int{isa.OpSt8: 8, isa.OpSt4: 4, isa.OpSt1: 1}[in.Op]
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], r[in.Rs2])
		va := r[in.Rs1] + imm
		if err := k.writeUser(sp, va, buf[:size]); err != nil {
			k.faultOrKill(t, err)
			return
		}

	case isa.OpB:
		next = t.pc + imm
	case isa.OpBz:
		if r[in.Rs1] == 0 {
			next = t.pc + imm
		}
	case isa.OpBnz:
		if r[in.Rs1] != 0 {
			next = t.pc + imm
		}
	case isa.OpBeq:
		if r[in.Rs1] == r[in.Rs2] {
			next = t.pc + imm
		}
	case isa.OpBne:
		if r[in.Rs1] != r[in.Rs2] {
			next = t.pc + imm
		}
	case isa.OpBlt:
		if int64(r[in.Rs1]) < int64(r[in.Rs2]) {
			next = t.pc + imm
		}
	case isa.OpBge:
		if int64(r[in.Rs1]) >= int64(r[in.Rs2]) {
			next = t.pc + imm
		}
	case isa.OpBltu:
		if r[in.Rs1] < r[in.Rs2] {
			next = t.pc + imm
		}
	case isa.OpBgeu:
		if r[in.Rs1] >= r[in.Rs2] {
			next = t.pc + imm
		}

	case isa.OpCall, isa.OpCallr:
		r[isa.SP] -= 8
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], t.pc+isa.InstrSize)
		if err := k.writeUser(sp, r[isa.SP], buf[:]); err != nil {
			k.faultOrKill(t, err)
			return
		}
		if in.Op == isa.OpCall {
			next = t.pc + imm
		} else {
			next = r[in.Rs1]
		}
	case isa.OpRet:
		var buf [8]byte
		if err := k.readUser(sp, r[isa.SP], buf[:], addrspace.AccessRead); err != nil {
			k.faultOrKill(t, err)
			return
		}
		r[isa.SP] += 8
		next = binary.LittleEndian.Uint64(buf[:])

	case isa.OpXchg:
		// Atomic by construction: one instruction, one kernel.
		va := r[in.Rs1] + imm
		var buf [8]byte
		if err := k.readUser(sp, va, buf[:], addrspace.AccessRead); err != nil {
			k.faultOrKill(t, err)
			return
		}
		old := binary.LittleEndian.Uint64(buf[:])
		binary.LittleEndian.PutUint64(buf[:], r[in.Rs2])
		if err := k.writeUser(sp, va, buf[:]); err != nil {
			k.faultOrKill(t, err)
			return
		}
		r[in.Rd] = old

	case isa.OpSys:
		// The syscall layer advances pc itself (blocking calls
		// leave it so the instruction restarts on wakeup).
		k.syscall(t, uint64(in.Imm))
		return

	default:
		k.threadFault(t, sig.SIGILL)
		return
	}
	t.pc = next
}

// readUser reads user memory, mapping OOM to a process kill distinct
// from a segfault.
func (k *Kernel) readUser(sp *addrspace.Space, va uint64, buf []byte, access addrspace.Access) error {
	if access == addrspace.AccessExec {
		// Instruction fetch: translate with exec permission.
		f, off, err := sp.Translate(va, addrspace.AccessExec)
		if err != nil {
			return err
		}
		sp.Phys().Read(f, off, buf)
		return nil
	}
	return sp.ReadBytes(va, buf)
}

func (k *Kernel) writeUser(sp *addrspace.Space, va uint64, data []byte) error {
	return sp.WriteBytes(va, data)
}

// threadFault delivers a synchronous fault signal (SIGSEGV, SIGILL,
// SIGFPE) to t. If the process neither catches nor ignores it, the
// process dies with that signal; if a handler is installed, it runs.
// Ignoring a synchronous fault would spin, so ignore also kills (real
// kernels would re-raise forever; the simulator is merciful).
func (k *Kernel) threadFault(t *Thread, s sig.Signal) {
	d := t.proc.sigs.Get(s)
	if d.Kind == sig.ActHandler {
		t.pending = t.pending.Add(s)
		// Delivery happens on the next step; the faulting
		// instruction will re-execute after the handler returns.
		return
	}
	k.SegvKills++
	k.killProcess(t.proc, s)
}

// oomKill is the OOM-killer path: a page fault could not get a frame.
func (k *Kernel) oomKill(p *Process) {
	k.OOMKills++
	p.oomKilled = true
	k.killProcess(p, sig.SIGKILL)
}

// faultOrKill routes a memory-management error from a user access:
// ENOMEM triggers the OOM killer, anything else is a segfault.
func (k *Kernel) faultOrKill(t *Thread, err error) {
	if err == errno.ENOMEM {
		k.oomKill(t.proc)
		return
	}
	k.threadFault(t, sig.SIGSEGV)
}
