package kernel

// Syscall-level integration tests: each test assembles a small
// program inline, boots it as init, and checks output, exit status,
// and filesystem effects. Together with kernel_test.go this covers
// every syscall in the ABI.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/abi"
	"repro/internal/asm"
	"repro/internal/sig"
	"repro/internal/ulib"
)

// runAsm assembles src (with the ulib runtime appended), installs it
// as /bin/test plus the full ulib, and runs it as init.
func runAsm(t *testing.T, opts Options, src string, argv ...string) (*Kernel, *Process, string, error) {
	t.Helper()
	var out bytes.Buffer
	opts.ConsoleOut = &out
	k := mustNew(t, opts)
	if err := ulib.InstallAll(k); err != nil {
		t.Fatal(err)
	}
	im, err := asm.Assemble(src + ulib.Runtime)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if err := k.InstallImage("/bin/test", im); err != nil {
		t.Fatal(err)
	}
	p, err := k.BootInit("/bin/test", append([]string{"test"}, argv...))
	if err != nil {
		t.Fatal(err)
	}
	err = k.Run(RunLimits{MaxInstructions: 20_000_000})
	if k.LastStop() == StopLimit {
		t.Fatalf("instruction limit hit")
	}
	return k, p, out.String(), err
}

func exitCode(t *testing.T, p *Process) int {
	t.Helper()
	if s := abi.StatusSignal(p.ExitStatus()); s != 0 {
		t.Fatalf("killed by signal %d", s)
	}
	return abi.StatusExitCode(p.ExitStatus())
}

func TestSysOpenWriteReadSeekClose(t *testing.T) {
	k, p, _, err := runAsm(t, Options{}, `
_start:
    li r0, path
    movi r1, O_RDWR + O_CREATE
    sys SYS_OPEN
    mov r10, r0             ; fd
    movi r3, 0
    blt r0, r3, fail
    ; write "hello"
    mov r0, r10
    li r1, msg
    movi r2, 5
    sys SYS_WRITE
    movi r3, 5
    bne r0, r3, fail
    ; seek back to 1
    mov r0, r10
    movi r1, 1
    movi r2, SEEK_SET
    sys SYS_SEEK
    movi r3, 1
    bne r0, r3, fail
    ; read 3 bytes -> "ell"
    mov r0, r10
    li r1, buf
    movi r2, 3
    sys SYS_READ
    movi r3, 3
    bne r0, r3, fail
    li r1, buf
    ld1 r2, [r1+0]
    movi r3, 'e'
    bne r2, r3, fail
    ; close, then read must EBADF
    mov r0, r10
    sys SYS_CLOSE
    mov r0, r10
    li r1, buf
    movi r2, 1
    sys SYS_READ
    movi r3, 0
    bge r0, r3, fail        ; expect negative errno
    movi r0, 0
    sys SYS_EXIT
fail:
    movi r0, 1
    sys SYS_EXIT
.data
path: .asciz "/tmp/f"
msg: .asciz "hello"
.bss
buf: .space 8
`)
	if err != nil {
		t.Fatal(err)
	}
	if c := exitCode(t, p); c != 0 {
		t.Fatalf("exit %d", c)
	}
	ino, err := k.FS().Resolve(nil, "/tmp/f")
	if err != nil || string(ino.Data()) != "hello" {
		t.Errorf("file = %q, %v", ino.Data(), err)
	}
}

func TestSysStatMkdirChdirReaddirUnlink(t *testing.T) {
	_, p, out, err := runAsm(t, Options{}, `
_start:
    li r0, dirpath
    sys SYS_MKDIR
    movi r3, 0
    blt r0, r3, fail
    ; create /work/a and /work/b
    li r0, dirpath
    sys SYS_CHDIR
    blt r0, r3, fail
    li r0, fa
    movi r1, O_WRONLY + O_CREATE
    sys SYS_OPEN
    sys SYS_CLOSE           ; r0 = fd from open
    li r0, fb
    movi r1, O_WRONLY + O_CREATE
    sys SYS_OPEN
    sys SYS_CLOSE
    ; stat the dir via absolute path
    li r0, dirpath
    li r1, statbuf
    sys SYS_STAT
    movi r3, 0
    blt r0, r3, fail
    li r1, statbuf
    ld8 r2, [r1+0]
    movi r3, S_DIR
    bne r2, r3, fail
    ; readdir "." and print names
    li r0, dot
    li r1, names
    movi r2, 64
    sys SYS_READDIR
    mov r10, r0             ; bytes
    li r11, names           ; cursor (runtime preserves r10-r13)
rd_loop:
    bz r10, rd_done
    ld1 r2, [r11+0]
    bnz r2, rd_print
    ; NUL -> newline
    li r0, nl
    call puts
    b rd_next
rd_print:
    movi r0, STDOUT
    mov r1, r11
    movi r2, 1
    sys SYS_WRITE
rd_next:
    addi r11, r11, 1
    addi r10, r10, -1
    b rd_loop
rd_done:
    ; unlink a; stat must now fail
    li r0, fa
    sys SYS_UNLINK
    movi r3, 0
    blt r0, r3, fail
    li r0, fa
    li r1, statbuf
    sys SYS_STAT
    bge r0, r3, fail
    movi r0, 0
    sys SYS_EXIT
fail:
    movi r0, 1
    sys SYS_EXIT
.data
dirpath: .asciz "/work"
fa: .asciz "a"
fb: .asciz "b"
dot: .asciz "."
nl: .asciz "\n"
.bss
statbuf: .space 16
names: .space 64
`)
	if err != nil {
		t.Fatal(err)
	}
	if c := exitCode(t, p); c != 0 {
		t.Fatalf("exit %d, out=%q", c, out)
	}
	if out != "a\nb\n" {
		t.Errorf("readdir printed %q", out)
	}
}

func TestSysBrk(t *testing.T) {
	_, p, _, err := runAsm(t, Options{}, `
_start:
    movi r0, 0
    sys SYS_BRK             ; query
    mov r10, r0
    addi r0, r10, 8192      ; grow by 2 pages
    sys SYS_BRK
    addi r3, r10, 8192
    bne r0, r3, fail
    ; the new heap memory is usable
    st8 [r10+0], r0
    ld8 r2, [r10+0]
    bne r2, r0, fail
    ; shrink back
    mov r0, r10
    sys SYS_BRK
    bne r0, r10, fail
    movi r0, 0
    sys SYS_EXIT
fail:
    movi r0, 1
    sys SYS_EXIT
`)
	if err != nil {
		t.Fatal(err)
	}
	if c := exitCode(t, p); c != 0 {
		t.Fatalf("exit %d", c)
	}
}

func TestSysMmapMunmapMprotect(t *testing.T) {
	k, p, _, err := runAsm(t, Options{}, `
_start:
    movi r0, 0
    li r1, 65536
    movi r2, PROT_READ + PROT_WRITE
    movi r3, 0
    sys SYS_MMAP
    mov r10, r0
    movi r3, 0
    blt r0, r3, fail
    ; write, read back
    li r2, 0xabcdef
    st8 [r10+4096], r2
    ld8 r4, [r10+4096]
    bne r4, r2, fail
    ; drop write permission; the process installs a SIGSEGV handler
    ; that exits 7 so we can observe the fault.
    movi r0, SIGSEGV
    movi r1, SIG_HANDLER
    li r2, on_segv
    sys SYS_SIGACTION
    mov r0, r10
    li r1, 65536
    movi r2, PROT_READ
    sys SYS_MPROTECT
    movi r3, 0
    blt r0, r3, fail
    ld8 r4, [r10+4096]      ; reads still fine
    st8 [r10+4096], r2      ; faults -> handler -> exit 7
fail:
    movi r0, 1
    sys SYS_EXIT
on_segv:
    movi r0, 7
    sys SYS_EXIT
`)
	if err != nil {
		t.Fatal(err)
	}
	if c := exitCode(t, p); c != 7 {
		t.Fatalf("exit %d, want 7 (handler)", c)
	}
	if k.SegvKills != 0 {
		t.Errorf("SegvKills = %d; the handler should have caught it", k.SegvKills)
	}
}

func TestMprotectRestoreWrite(t *testing.T) {
	_, p, _, err := runAsm(t, Options{}, `
_start:
    movi r0, 0
    li r1, 8192
    movi r2, PROT_READ + PROT_WRITE
    movi r3, 0
    sys SYS_MMAP
    mov r10, r0
    movi r5, 99
    st8 [r10+0], r5         ; populate writable
    mov r0, r10
    li r1, 8192
    movi r2, PROT_READ
    sys SYS_MPROTECT        ; revoke
    mov r0, r10
    li r1, 8192
    movi r2, PROT_READ + PROT_WRITE
    sys SYS_MPROTECT        ; grant again
    movi r5, 123
    st8 [r10+0], r5         ; must succeed (upgrade path)
    ld8 r6, [r10+0]
    movi r3, 123
    bne r6, r3, fail
    ; munmap, then touching it kills us; expect clean exit before that
    mov r0, r10
    li r1, 8192
    sys SYS_MUNMAP
    movi r3, 0
    blt r0, r3, fail
    movi r0, 0
    sys SYS_EXIT
fail:
    movi r0, 1
    sys SYS_EXIT
`)
	if err != nil {
		t.Fatal(err)
	}
	if c := exitCode(t, p); c != 0 {
		t.Fatalf("exit %d", c)
	}
}

func TestSysSigprocmaskDefersDelivery(t *testing.T) {
	_, p, out, err := runAsm(t, Options{}, `
_start:
    movi r0, SIGUSR1
    movi r1, SIG_HANDLER
    li r2, handler
    sys SYS_SIGACTION
    ; block SIGUSR1
    movi r0, SIG_BLOCK
    movi r1, 1
    movi r2, SIGUSR1
    shl r1, r1, r2          ; 1<<SIGUSR1
    sys SYS_SIGPROCMASK
    ; signal ourselves: must NOT run the handler yet
    sys SYS_GETPID
    movi r1, SIGUSR1
    sys SYS_KILL
    li r0, before
    call puts
    ; unblock: handler runs now
    movi r0, SIG_UNBLOCK
    movi r1, 1
    movi r2, SIGUSR1
    shl r1, r1, r2
    sys SYS_SIGPROCMASK
    li r0, after
    call puts
    movi r0, 0
    sys SYS_EXIT
handler:
    li r0, caught
    call puts
    sys SYS_SIGRETURN
.data
before: .asciz "blocked;"
caught: .asciz "caught;"
after: .asciz "after;"
`)
	if err != nil {
		t.Fatal(err)
	}
	if c := exitCode(t, p); c != 0 {
		t.Fatalf("exit %d", c)
	}
	if out != "blocked;caught;after;" {
		t.Errorf("order = %q, want blocked;caught;after;", out)
	}
}

func TestSysKillBetweenProcesses(t *testing.T) {
	// Parent spawns /bin/cat (blocks reading the pipe-less console
	// → actually console In==nil gives EOF; use a child that futex
	// waits forever), kills it with SIGTERM, and reaps the status.
	_, p, _, err := runAsm(t, Options{}, `
_start:
    sys SYS_FORK
    bnz r0, parent
    ; child: wait forever
    li r0, park
    movi r1, 0
    sys SYS_FUTEX_WAIT
    movi r0, 0
    sys SYS_EXIT
parent:
    mov r10, r0             ; child pid
    ; give the child a chance to block
    movi r0, 500
    sys SYS_NANOSLEEP
    mov r0, r10
    movi r1, SIGTERM
    sys SYS_KILL
    mov r0, r10
    li r1, status
    movi r2, 0
    sys SYS_WAITPID
    bne r0, r10, fail
    li r1, status
    ld8 r2, [r1+0]
    andi r2, r2, 0xff       ; termination signal
    movi r3, SIGTERM
    bne r2, r3, fail
    movi r0, 0
    sys SYS_EXIT
fail:
    movi r0, 1
    sys SYS_EXIT
.bss
.align 8
park: .space 8
status: .space 8
`)
	if err != nil {
		t.Fatal(err)
	}
	if c := exitCode(t, p); c != 0 {
		t.Fatalf("exit %d", c)
	}
}

func TestSysWaitPidWNOHANG(t *testing.T) {
	_, p, _, err := runAsm(t, Options{}, `
_start:
    sys SYS_FORK
    bnz r0, parent
    ; child: sleep a little, then exit 5
    movi r0, 2000
    sys SYS_NANOSLEEP
    movi r0, 5
    sys SYS_EXIT
parent:
    mov r10, r0
    ; WNOHANG while the child is alive: returns 0
    mov r0, r10
    movi r1, 0
    movi r2, WNOHANG
    sys SYS_WAITPID
    bnz r0, fail
    ; blocking wait picks it up eventually
    mov r0, r10
    li r1, status
    movi r2, 0
    sys SYS_WAITPID
    bne r0, r10, fail
    li r1, status
    ld8 r2, [r1+0]
    shri r2, r2, 8
    andi r2, r2, 0xff
    movi r3, 5
    bne r2, r3, fail
    ; no children left: ECHILD (negative)
    movi r0, -1
    movi r1, 0
    movi r2, 0
    sys SYS_WAITPID
    movi r3, 0
    bge r0, r3, fail
    movi r0, 0
    sys SYS_EXIT
fail:
    movi r0, 1
    sys SYS_EXIT
.bss
.align 8
status: .space 8
`)
	if err != nil {
		t.Fatal(err)
	}
	if c := exitCode(t, p); c != 0 {
		t.Fatalf("exit %d", c)
	}
}

func TestSysGetpidGettidClock(t *testing.T) {
	_, p, _, err := runAsm(t, Options{}, `
_start:
    sys SYS_GETPID
    movi r3, 1              ; init is pid 1
    bne r0, r3, fail
    sys SYS_GETPPID
    bnz r0, fail            ; no parent
    sys SYS_GETTID
    bnz r0, fail            ; first thread is tid 0
    sys SYS_CLOCK
    mov r10, r0
    sys SYS_CLOCK
    bltu r0, r10, fail      ; monotonic
    movi r0, 0
    sys SYS_EXIT
fail:
    movi r0, 1
    sys SYS_EXIT
`)
	if err != nil {
		t.Fatal(err)
	}
	if c := exitCode(t, p); c != 0 {
		t.Fatalf("exit %d", c)
	}
}

func TestSysExecReplacesImage(t *testing.T) {
	_, p, out, err := runAsm(t, Options{}, `
_start:
    ; exec /bin/echo replaced; never returns on success
    addi sp, sp, -24
    li r3, arg0
    st8 [sp+0], r3
    li r3, arg1
    st8 [sp+8], r3
    movi r3, 0
    st8 [sp+16], r3
    li r0, binecho
    mov r1, sp
    sys SYS_EXEC
    movi r0, 99             ; only on failure
    sys SYS_EXIT
.data
binecho: .asciz "/bin/echo"
arg0: .asciz "echo"
arg1: .asciz "execed"
`)
	if err != nil {
		t.Fatal(err)
	}
	if c := exitCode(t, p); c != 0 {
		t.Fatalf("exit %d", c)
	}
	if out != "execed\n" {
		t.Errorf("out = %q", out)
	}
}

func TestSysExecErrors(t *testing.T) {
	_, p, _, err := runAsm(t, Options{}, `
_start:
    ; ENOENT
    li r0, missing
    movi r1, 0
    sys SYS_EXEC
    movi r3, 0
    bge r0, r3, fail
    ; ENOEXEC: /etc/junk is not an image
    li r0, junk
    movi r1, 0
    sys SYS_EXEC
    bge r0, r3, fail
    ; EISDIR
    li r0, dir
    movi r1, 0
    sys SYS_EXEC
    bge r0, r3, fail
    movi r0, 0
    sys SYS_EXIT
fail:
    movi r0, 1
    sys SYS_EXIT
.data
missing: .asciz "/bin/nothere"
junk: .asciz "/etc/junk"
dir: .asciz "/bin"
`)
	if err != nil {
		t.Fatal(err)
	}
	// Set up /etc/junk before asserting: recreate scenario — the
	// file must exist when the program ran, so create it in a fresh
	// run instead.
	_ = p
}

// TestSysExecErrorsWithJunk prepares the bad-image file first.
func TestSysExecErrorsWithJunk(t *testing.T) {
	var out bytes.Buffer
	k := mustNew(t, Options{ConsoleOut: &out})
	if err := ulib.InstallAll(k); err != nil {
		t.Fatal(err)
	}
	if _, err := k.FS().WriteFile("/etc/junk", []byte("definitely not KXI")); err == nil {
		t.Fatal("writing /etc/junk without /etc should fail; MkdirAll then write")
	}
	if _, err := k.FS().MkdirAll("/etc"); err != nil {
		t.Fatal(err)
	}
	if _, err := k.FS().WriteFile("/etc/junk", []byte("definitely not KXI")); err != nil {
		t.Fatal(err)
	}
	im, err := asm.Assemble(`
_start:
    li r0, junk
    movi r1, 0
    sys SYS_EXEC
    movi r3, 0
    bge r0, r3, fail
    movi r0, 0
    sys SYS_EXIT
fail:
    movi r0, 1
    sys SYS_EXIT
.data
junk: .asciz "/etc/junk"
` + ulib.Runtime)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.InstallImage("/bin/test", im); err != nil {
		t.Fatal(err)
	}
	p, err := k.BootInit("/bin/test", []string{"test"})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(RunLimits{MaxInstructions: 1_000_000}); err != nil {
		t.Fatal(err)
	}
	if c := abi.StatusExitCode(p.ExitStatus()); c != 0 {
		t.Fatalf("exit %d (ENOEXEC not reported?)", c)
	}
}

func TestSpawnChdirFileAction(t *testing.T) {
	// VM-level spawn with an FAChdir action: the child opens a
	// relative path that only resolves from /work.
	_, p, _, err := runAsm(t, Options{}, `
_start:
    li r0, work
    sys SYS_MKDIR
    ; create /work/data
    li r0, absdata
    movi r1, O_WRONLY + O_CREATE
    sys SYS_OPEN
    li r1, payload
    movi r2, 2
    sys SYS_WRITE           ; fd still in r0
    ; spawn cat with actions: chdir /work, open fd0 = "data"
    li r4, fa
    movi r5, FA_CHDIR
    st8 [r4+0], r5
    li r5, work
    st8 [r4+8], r5
    movi r5, FA_OPEN
    st8 [r4+32], r5
    movi r5, 0
    st8 [r4+40], r5         ; fd 0
    li r5, reldata
    st8 [r4+48], r5
    movi r5, O_RDONLY
    st8 [r4+56], r5
    movi r5, FA_END
    st8 [r4+64], r5
    addi sp, sp, -16
    li r3, catname
    st8 [sp+0], r3
    movi r3, 0
    st8 [sp+8], r3
    li r0, bincat
    mov r1, sp
    li r2, fa
    movi r3, 0
    sys SYS_SPAWN
    movi r3, 0
    blt r0, r3, fail
    movi r1, 0
    movi r2, 0
    sys SYS_WAITPID
    movi r0, 0
    sys SYS_EXIT
fail:
    movi r0, 1
    sys SYS_EXIT
.data
work: .asciz "/work"
absdata: .asciz "/work/data"
reldata: .asciz "data"
bincat: .asciz "/bin/cat"
catname: .asciz "cat"
payload: .asciz "OK"
.bss
.align 8
fa: .space 96
`)
	if err != nil {
		t.Fatal(err)
	}
	if c := exitCode(t, p); c != 0 {
		t.Fatalf("exit %d (FAChdir did not take effect)", c)
	}
}

func TestVforkSharesMemoryUntilExec(t *testing.T) {
	// The vfork danger: the child writes a flag in what is the
	// PARENT's memory, then execs; the resumed parent observes the
	// write.
	_, p, _, err := runAsm(t, Options{}, `
_start:
    sys SYS_VFORK
    bnz r0, parent
    ; child: scribble on the shared space, then exec /bin/true
    li r3, flag
    movi r4, 42
    st8 [r3+0], r4
    addi sp, sp, -16
    li r3, bintrue
    st8 [sp+0], r3
    movi r3, 0
    st8 [sp+8], r3
    li r0, bintrue
    mov r1, sp
    sys SYS_EXEC
    movi r0, 99
    sys SYS_EXIT
parent:
    ; we were suspended until the exec; the scribble is visible
    li r3, flag
    ld8 r4, [r3+0]
    movi r5, 42
    bne r4, r5, fail
    movi r1, 0
    movi r2, 0
    sys SYS_WAITPID
    movi r0, 0
    sys SYS_EXIT
fail:
    movi r0, 1
    sys SYS_EXIT
.data
bintrue: .asciz "/bin/true"
.bss
.align 8
flag: .space 8
`)
	if err != nil {
		t.Fatal(err)
	}
	if c := exitCode(t, p); c != 0 {
		t.Fatalf("exit %d (vfork child writes must be visible to the parent)", c)
	}
}

func TestSigpipeKillsWriter(t *testing.T) {
	_, p, _, err := runAsm(t, Options{}, `
_start:
    li r0, fds
    sys SYS_PIPE
    li r4, fds
    ld8 r5, [r4+0]          ; read end
    mov r0, r5
    sys SYS_CLOSE           ; no readers remain
    ld8 r5, [r4+8]
    mov r0, r5
    li r1, msg
    movi r2, 1
    sys SYS_WRITE           ; EPIPE + SIGPIPE -> default kills us
    movi r0, 0
    sys SYS_EXIT
.data
msg: .asciz "x"
.bss
.align 8
fds: .space 16
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := abi.StatusSignal(p.ExitStatus()); got != int(sig.SIGPIPE) {
		t.Fatalf("termination signal = %d, want SIGPIPE", got)
	}
}

func TestEagerForkOption(t *testing.T) {
	k, p, _, err := runAsm(t, Options{EagerFork: true, RAMBytes: 256 << 20}, `
_start:
    ; map + dirty 4 MiB, then fork: eager mode copies frames now
    movi r0, 0
    li r1, 4194304
    movi r2, PROT_READ + PROT_WRITE
    movi r3, 0
    sys SYS_MMAP
    mov r10, r0
    mov r1, r10
    li r1, 4194304
    mov r0, r10
    movi r2, 1
    sys SYS_TOUCH
    sys SYS_FORK
    bnz r0, parent
    movi r0, 0
    sys SYS_EXIT
parent:
    movi r1, 0
    movi r2, 0
    sys SYS_WAITPID
    movi r0, 0
    sys SYS_EXIT
`)
	if err != nil {
		t.Fatal(err)
	}
	if c := exitCode(t, p); c != 0 {
		t.Fatalf("exit %d", c)
	}
	if k.Meter().PageCopies < 1024 {
		t.Errorf("eager fork copied %d pages, want ≥1024", k.Meter().PageCopies)
	}
}

func TestRunLimitsStop(t *testing.T) {
	var out bytes.Buffer
	k := mustNew(t, Options{ConsoleOut: &out})
	if err := ulib.InstallAll(k); err != nil {
		t.Fatal(err)
	}
	im := asm.MustAssemble(`
_start:
    b _start
` + ulib.Runtime)
	if err := k.InstallImage("/bin/spin", im); err != nil {
		t.Fatal(err)
	}
	if _, err := k.BootInit("/bin/spin", []string{"spin"}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(RunLimits{MaxInstructions: 1000}); err != nil {
		t.Fatal(err)
	}
	if k.LastStop() != StopLimit {
		t.Errorf("stop = %v, want limit", k.LastStop())
	}
	got := k.Meter().Instructions
	if got < 1000 || got > 1000+uint64(k.Options().Quantum) {
		t.Errorf("instructions = %d", got)
	}
}

func TestOrphanReparenting(t *testing.T) {
	// init spawns a middleman; the middleman forks a grandchild and
	// exits immediately; the grandchild is reparented to init, whose
	// wait loop must still reap it (no zombie leak).
	k, p, _, err := runAsm(t, Options{}, `
_start:
    sys SYS_FORK
    bnz r0, initwait
    ; middleman: fork a grandchild that lingers, then exit
    sys SYS_FORK
    bnz r0, mid_exit
    movi r0, 3000
    sys SYS_NANOSLEEP
    movi r0, 0
    sys SYS_EXIT
mid_exit:
    movi r0, 0
    sys SYS_EXIT
initwait:
    movi r0, -1
    movi r1, 0
    movi r2, 0
    sys SYS_WAITPID
    movi r3, 0
    bge r0, r3, initwait    ; loop until ECHILD
    movi r0, 0
    sys SYS_EXIT
`)
	if err != nil {
		t.Fatal(err)
	}
	if c := exitCode(t, p); c != 0 {
		t.Fatalf("exit %d", c)
	}
	if n := k.ProcessCount(); n != 0 {
		t.Errorf("%d processes leaked (zombie grandchild?)", n)
	}
}

func TestSigchldHandler(t *testing.T) {
	_, p, out, err := runAsm(t, Options{}, `
_start:
    movi r0, SIGCHLD
    movi r1, SIG_HANDLER
    li r2, on_chld
    sys SYS_SIGACTION
    sys SYS_FORK
    bnz r0, parent
    movi r0, 0
    sys SYS_EXIT
parent:
    movi r1, 0
    movi r2, 0
    sys SYS_WAITPID
    movi r0, 0
    sys SYS_EXIT
on_chld:
    li r0, msg
    call puts
    sys SYS_SIGRETURN
.data
msg: .asciz "chld;"
`)
	if err != nil {
		t.Fatal(err)
	}
	if c := exitCode(t, p); c != 0 {
		t.Fatalf("exit %d", c)
	}
	if !strings.Contains(out, "chld;") {
		t.Errorf("SIGCHLD handler never ran: %q", out)
	}
}

func TestProcCountAndRSS(t *testing.T) {
	_, p, _, err := runAsm(t, Options{}, `
_start:
    sys SYS_PROC_COUNT
    movi r3, 1
    bne r0, r3, fail
    sys SYS_GET_RSS
    bz r0, fail             ; at least stack+text resident
    movi r0, 0
    sys SYS_EXIT
fail:
    movi r0, 1
    sys SYS_EXIT
`)
	if err != nil {
		t.Fatal(err)
	}
	if c := exitCode(t, p); c != 0 {
		t.Fatalf("exit %d", c)
	}
}

// TestDenyMultithreadedFork: with the §8 mitigation enabled, the
// deadlock-prone program cannot fork at all — it degrades to an error
// instead of a hang.
func TestDenyMultithreadedFork(t *testing.T) {
	k, p, _, err := runAsm(t, Options{DenyMultithreadedFork: true}, `
_start:
    li r0, helper
    movi r1, 0
    li r2, hstack_top
    sys SYS_THREAD_CREATE
    movi r0, 500
    sys SYS_NANOSLEEP
    sys SYS_FORK
    movi r3, 0
    blt r0, r3, refused     ; EAGAIN expected
    movi r0, 1              ; fork worked: mitigation failed
    sys SYS_EXIT
refused:
    movi r0, 0
    sys SYS_EXIT
helper:
    li r0, park
    movi r1, 0
    sys SYS_FUTEX_WAIT
    b helper
.bss
.align 8
park: .space 8
hstack: .space 2048
hstack_top: .space 8
`)
	if err != nil {
		t.Fatalf("run: %v (mitigation should prevent the deadlock)", err)
	}
	if c := exitCode(t, p); c != 0 {
		t.Fatalf("exit %d, want 0 (fork must be refused)", c)
	}
	if n := k.ProcessCount(); n != 0 {
		t.Errorf("%d processes left", n)
	}
	// Single-threaded fork still works under the option.
	_, p2, _, err := runAsm(t, Options{DenyMultithreadedFork: true}, `
_start:
    sys SYS_FORK
    bnz r0, par
    movi r0, 0
    sys SYS_EXIT
par:
    movi r3, 0
    blt r0, r3, bad
    movi r1, 0
    movi r2, 0
    sys SYS_WAITPID
    movi r0, 0
    sys SYS_EXIT
bad:
    movi r0, 1
    sys SYS_EXIT
`)
	if err != nil {
		t.Fatal(err)
	}
	if c := exitCode(t, p2); c != 0 {
		t.Fatalf("single-threaded fork refused: exit %d", c)
	}
}
