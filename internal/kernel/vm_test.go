package kernel

// Instruction-level semantics tests: tiny programs exercise each ISA
// corner (arithmetic edge cases, branches, call/ret, xchg, traps) and
// report results via exit codes.

import (
	"testing"

	"repro/internal/abi"
	"repro/internal/sig"
)

// asmExpect runs src and asserts the exit code.
func asmExpect(t *testing.T, want int, src string) {
	t.Helper()
	_, p, _, err := runAsm(t, Options{}, src)
	if err != nil {
		t.Fatal(err)
	}
	if got := exitCode(t, p); got != want {
		t.Fatalf("exit %d, want %d", got, want)
	}
}

func TestArithmeticSemantics(t *testing.T) {
	asmExpect(t, 0, `
_start:
    ; 64-bit wrap-around add
    li r1, 0xffffffffffffffff
    movi r2, 1
    add r3, r1, r2
    bnz r3, fail
    ; subtraction borrow
    movi r1, 3
    movi r2, 5
    sub r3, r1, r2          ; -2
    movi r4, 2
    add r3, r3, r4
    bnz r3, fail
    ; unsigned div/mod
    movi r1, 17
    movi r2, 5
    div r3, r1, r2
    movi r4, 3
    bne r3, r4, fail
    mod r3, r1, r2
    movi r4, 2
    bne r3, r4, fail
    ; logical vs arithmetic shift on a negative value
    movi r1, -8
    movi r2, 1
    sar r3, r1, r2          ; -4
    movi r4, -4
    bne r3, r4, fail
    shr r3, r1, r2          ; huge positive
    blt r3, r2, fail        ; signed compare: must be positive? r3 top bit clear
    ; masked immediate ops are zero-extended
    li r1, 0xff00ff00ff00ff00
    andi r3, r1, 0xff00ff00
    li r4, 0xff00ff00
    bne r3, r4, fail
    movi r0, 0
    sys SYS_EXIT
fail:
    movi r0, 1
    sys SYS_EXIT
`)
}

func TestBranchSemantics(t *testing.T) {
	asmExpect(t, 0, `
_start:
    ; signed vs unsigned comparisons
    movi r1, -1
    movi r2, 1
    blt r1, r2, s_ok        ; -1 < 1 signed
    b fail
s_ok:
    bltu r1, r2, fail       ; 0xfff... not < 1 unsigned
    bgeu r1, r2, u_ok
    b fail
u_ok:
    beq r1, r1, eq_ok
    b fail
eq_ok:
    bne r1, r2, ne_ok
    b fail
ne_ok:
    bz r1, fail
    movi r3, 0
    bz r3, z_ok
    b fail
z_ok:
    movi r0, 0
    sys SYS_EXIT
fail:
    movi r0, 1
    sys SYS_EXIT
`)
}

func TestCallRetNesting(t *testing.T) {
	asmExpect(t, 0, `
_start:
    movi r10, 0
    call level1
    movi r3, 3
    bne r10, r3, fail
    movi r0, 0
    sys SYS_EXIT
fail:
    movi r0, 1
    sys SYS_EXIT
level1:
    addi r10, r10, 1
    call level2
    ret
level2:
    addi r10, r10, 1
    li r1, level3
    callr r1                ; indirect call
    ret
level3:
    addi r10, r10, 1
    ret
`)
}

func TestXchgSemantics(t *testing.T) {
	asmExpect(t, 0, `
_start:
    li r1, word
    movi r2, 111
    st8 [r1+0], r2
    movi r3, 222
    xchg r4, [r1+0], r3
    movi r5, 111
    bne r4, r5, fail        ; old value returned
    ld8 r4, [r1+0]
    movi r5, 222
    bne r4, r5, fail        ; new value stored
    movi r0, 0
    sys SYS_EXIT
fail:
    movi r0, 1
    sys SYS_EXIT
.bss
.align 8
word: .space 8
`)
}

func TestSubWordLoadsStores(t *testing.T) {
	asmExpect(t, 0, `
_start:
    li r1, buf
    li r2, 0x1122334455667788
    st8 [r1+0], r2
    ld4 r3, [r1+0]          ; low half, zero-extended
    li r4, 0x55667788
    bne r3, r4, fail
    ld1 r3, [r1+7]          ; highest byte
    movi r4, 0x11
    bne r3, r4, fail
    st1 [r1+0], r4          ; patch one byte
    ld8 r3, [r1+0]
    li r4, 0x1122334455667711
    bne r3, r4, fail
    st4 [r1+4], r2          ; patch high half with low 32 of r2
    ld8 r3, [r1+0]
    li r4, 0x5566778855667711
    bne r3, r4, fail
    movi r0, 0
    sys SYS_EXIT
fail:
    movi r0, 1
    sys SYS_EXIT
.bss
.align 8
buf: .space 8
`)
}

func TestDivByZeroRaisesSIGFPE(t *testing.T) {
	_, p, _, err := runAsm(t, Options{}, `
_start:
    movi r1, 10
    movi r2, 0
    div r3, r1, r2
    movi r0, 0
    sys SYS_EXIT
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := abi.StatusSignal(p.ExitStatus()); got != int(sig.SIGFPE) {
		t.Fatalf("signal = %d, want SIGFPE", got)
	}
}

func TestBadOpcodeRaisesSIGILL(t *testing.T) {
	// `halt` decodes to the explicit illegal-instruction trap.
	_, p, _, err := runAsm(t, Options{}, `
_start:
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := abi.StatusSignal(p.ExitStatus()); got != int(sig.SIGILL) {
		t.Fatalf("signal = %d, want SIGILL", got)
	}
}

func TestMisalignedPCRaisesSIGILL(t *testing.T) {
	_, p, _, err := runAsm(t, Options{}, `
_start:
    li r1, _start
    addi r1, r1, 4          ; misaligned target
    callr r1
    movi r0, 0
    sys SYS_EXIT
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := abi.StatusSignal(p.ExitStatus()); got != int(sig.SIGILL) {
		t.Fatalf("signal = %d, want SIGILL", got)
	}
}

func TestMovhiComposesConstants(t *testing.T) {
	asmExpect(t, 0, `
_start:
    movi r1, 0x7fffffff     ; positive 32-bit
    movhi r1, 0x12345678
    li r2, 0x123456787fffffff
    bne r1, r2, fail
    ; movi sign-extends; movhi then replaces the top half entirely
    movi r1, -1
    movhi r1, 0
    li r2, 0xffffffff
    bne r1, r2, fail
    movi r0, 0
    sys SYS_EXIT
fail:
    movi r0, 1
    sys SYS_EXIT
`)
}

// TestSchedulerDeterminism: two identical multi-threaded runs produce
// identical instruction counts, context switches, and virtual time.
func TestSchedulerDeterminism(t *testing.T) {
	type snap struct {
		instr, cs uint64
		now       uint64
		out       string
	}
	one := func() snap {
		k, _, out, err := runAsm(t, Options{Quantum: 64}, srcInterleave)
		if err != nil {
			t.Fatal(err)
		}
		return snap{k.Meter().Instructions, k.ContextSwitches(), uint64(k.Now()), out}
	}
	a, b := one(), one()
	if a != b {
		t.Errorf("nondeterministic scheduling: %+v vs %+v", a, b)
	}
}

const srcInterleave = `
_start:
    li r0, worker
    movi r1, 0
    li r2, stack1_top
    sys SYS_THREAD_CREATE
    li r0, worker
    movi r1, 0
    li r2, stack2_top
    sys SYS_THREAD_CREATE
join:
    li r3, done
    ld8 r4, [r3+0]
    movi r5, 2
    beq r4, r5, out
    sys SYS_YIELD
    b join
out:
    movi r0, 0
    sys SYS_EXIT
worker:
    movi r10, 500
w_loop:
    addi r10, r10, -1
    bnz r10, w_loop
    li r0, lk
    call mutex_lock
    li r3, done
    ld8 r4, [r3+0]
    addi r4, r4, 1
    st8 [r3+0], r4
    li r0, lk
    call mutex_unlock
    sys SYS_THREAD_EXIT
.bss
.align 8
lk: .space 8
done: .space 8
stack1: .space 2048
stack1_top: .space 8
stack2: .space 2048
stack2_top: .space 8
`

// TestYieldRoundRobin: a yielding thread lets an equal-priority peer
// run; strict alternation under a huge quantum proves yield works.
func TestYieldRoundRobin(t *testing.T) {
	_, _, out, err := runAsm(t, Options{Quantum: 1 << 20}, `
_start:
    li r0, peer
    movi r1, 0
    li r2, pstack_top
    sys SYS_THREAD_CREATE
    movi r10, 3
main_loop:
    li r0, amsg
    call puts
    sys SYS_YIELD
    addi r10, r10, -1
    bnz r10, main_loop
    ; drain: let the peer finish
    sys SYS_YIELD
    sys SYS_YIELD
    movi r0, 0
    sys SYS_EXIT
peer:
    movi r10, 3
peer_loop:
    li r0, bmsg
    call puts
    sys SYS_YIELD
    addi r10, r10, -1
    bnz r10, peer_loop
    sys SYS_THREAD_EXIT
.data
amsg: .asciz "A"
bmsg: .asciz "B"
.bss
pstack: .space 2048
pstack_top: .space 8
`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "ABABAB" {
		t.Errorf("interleaving = %q, want ABABAB", out)
	}
}
