package kernel

import (
	"encoding/binary"

	"repro/internal/addrspace"
	"repro/internal/errno"
)

// maxPathLen bounds copied-in strings.
const maxPathLen = 4096

// readCString copies a NUL-terminated string from user memory.
func readCString(sp *addrspace.Space, va uint64) (string, error) {
	var out []byte
	var buf [64]byte
	for len(out) < maxPathLen {
		n := len(buf)
		if err := sp.ReadBytes(va, buf[:n]); err != nil {
			// Retry byte-wise near unmapped boundaries.
			for i := 0; i < n; i++ {
				if err := sp.ReadBytes(va+uint64(i), buf[i:i+1]); err != nil {
					return "", errno.EFAULT
				}
				if buf[i] == 0 {
					return string(append(out, buf[:i]...)), nil
				}
			}
			return "", errno.EFAULT
		}
		for i := 0; i < n; i++ {
			if buf[i] == 0 {
				return string(append(out, buf[:i]...)), nil
			}
		}
		out = append(out, buf[:n]...)
		va += uint64(n)
	}
	return "", errno.ERANGE
}

// readU64 loads one u64 from user memory.
func readU64(sp *addrspace.Space, va uint64) (uint64, error) {
	var b [8]byte
	if err := sp.ReadBytes(va, b[:]); err != nil {
		return 0, errno.EFAULT
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// writeU64 stores one u64 to user memory.
func writeU64(sp *addrspace.Space, va uint64, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	if err := sp.WriteBytes(va, b[:]); err != nil {
		return errno.EFAULT
	}
	return nil
}

// readArgv copies a NULL-terminated array of string pointers.
func readArgv(sp *addrspace.Space, va uint64) ([]string, error) {
	if va == 0 {
		return nil, nil
	}
	var argv []string
	for i := 0; i < 256; i++ {
		ptr, err := readU64(sp, va+uint64(8*i))
		if err != nil {
			return nil, err
		}
		if ptr == 0 {
			return argv, nil
		}
		s, err := readCString(sp, ptr)
		if err != nil {
			return nil, err
		}
		argv = append(argv, s)
	}
	return nil, errno.E2BIG
}
