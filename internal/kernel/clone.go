package kernel

import (
	"sort"

	"repro/internal/addrspace"
	"repro/internal/cost"
	"repro/internal/fault"
	"repro/internal/vfs"
)

// cloneCtx memoises every object reached while cloning a kernel so the
// clone's object graph has exactly the source's aliasing structure:
// a vfork child borrowing its parent's space borrows the *cloned*
// parent's space, two descriptors dup'd onto one description stay
// dup'd, and a thread queued on a wait queue appears exactly once in
// the cloned queue. Cyclic references (proc.parent/children,
// thread.proc, queue.ts) are handled shell-then-fill: the clone object
// is registered before its fields are filled.
type cloneCtx struct {
	nk      *Kernel
	markSrc bool
	vc      *vfs.Cloner
	spaces  map[*addrspace.Space]*addrspace.Space
	procs   map[*Process]*Process
	threads map[*Thread]*Thread
	queues  map[*WaitQueue]*WaitQueue
}

// Clone duplicates the whole machine — processes, threads, address
// spaces, page tables, physical frames, filesystem, descriptor tables,
// pipes, wait queues, futexes, scheduler queues, fault engine, trace,
// and every meter clock and counter — into an independent kernel that
// is logically an exact deep copy: running the same workload on clone
// and source produces byte-identical virtual-time metrics and traces.
// Host cost is O(live structures), not Θ(heap): frame contents and
// file data are aliased copy-on-write (see mem.Physical.CloneHost and
// vfs.Cloner), and nothing here charges the meter.
//
// markSrc selects snapshot semantics (true: the source keeps running
// and must also break sharing before in-place writes — freezing a live
// machine into a template) versus stamping semantics (false: the
// source is a frozen template that is only read, so concurrent Clone
// calls on one template are race-free).
func (k *Kernel) Clone(markSrc bool) *Kernel {
	return k.CloneInto(markSrc, nil)
}

// CloneInto is Clone recycling a retired clone's allocations: the
// scratch kernel's process map, futex map, cpu slice, and physical
// frame books are rewritten in place instead of reallocated (see
// mem.Physical.CloneHostInto). scratch must be dead — stamping a fleet
// machine into the shell of a retired one is the intended use (see
// sim.Template.Release) — and must not be k itself. A nil scratch
// allocates fresh, exactly like Clone; either way the result is
// logically an exact deep copy of k, with every scratch field
// rewritten or zeroed.
func (k *Kernel) CloneInto(markSrc bool, scratch *Kernel) *Kernel {
	nm := k.meter.Clone()
	nk := scratch
	if nk == nil {
		nk = &Kernel{}
	}
	np := k.phys.CloneHostInto(nm, markSrc, nk.phys)
	tracer := k.tracer.Clone()

	procs := nk.procs
	if procs == nil {
		procs = make(map[PID]*Process, len(k.procs))
	} else {
		clear(procs)
	}
	futexes := nk.futexes
	if futexes == nil {
		futexes = make(map[futexKey]*WaitQueue, len(k.futexes))
	} else {
		clear(futexes)
	}
	cpus := nk.cpus
	if cap(cpus) >= len(k.cpus) {
		cpus = cpus[:len(k.cpus)]
		for i := range cpus {
			cpus[i] = cpu{}
		}
	} else {
		cpus = make([]cpu, len(k.cpus))
	}

	*nk = Kernel{
		opts:            k.opts,
		meter:           nm,
		phys:            np,
		nextPID:         k.nextPID,
		procs:           procs,
		cpus:            cpus,
		futexes:         futexes,
		tracer:          tracer,
		OOMKills:        k.OOMKills,
		SegvKills:       k.SegvKills,
		lastStop:        k.lastStop,
		contextSwitches: k.contextSwitches,
	}
	if k.faults != nil {
		nk.faults = k.faults.Clone(nm, tracer)
		np.SetInjector(nk.faults)
	}
	if tracer != nil {
		nm.OnShootdown = func(remotes int) {
			nk.trace(fault.Event{Kind: fault.EvShootdown, Pid: -1, Num: uint64(remotes)})
		}
	}

	c := &cloneCtx{
		nk:      nk,
		markSrc: markSrc,
		spaces:  map[*addrspace.Space]*addrspace.Space{},
		procs:   map[*Process]*Process{},
		threads: map[*Thread]*Thread{},
		queues:  map[*WaitQueue]*WaitQueue{},
	}
	c.vc = vfs.NewCloner(markSrc, func(q any) any {
		if wq, ok := q.(*WaitQueue); ok {
			return c.queue(wq)
		}
		return q
	})
	nk.fs = c.vc.FS(k.fs)

	// Processes in pid order (map iteration must not decide creation
	// order of anything order-bearing; it doesn't — all slices are
	// copied from source order — but sorted traversal keeps the clone
	// walk itself reproducible).
	pids := make([]PID, 0, len(k.procs))
	for pid := range k.procs {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		nk.procs[pid] = c.proc(k.procs[pid])
	}

	for i := range k.cpus {
		src := &k.cpus[i]
		dst := &nk.cpus[i]
		dst.id = src.id
		dst.switches = src.switches
		dst.steals = src.steals
		dst.curSpace = c.space(src.curSpace)
		dst.runq.head = src.runq.head
		dst.runq.n = src.runq.n
		if src.runq.buf != nil {
			dst.runq.buf = make([]*Thread, len(src.runq.buf))
			for j, t := range src.runq.buf {
				dst.runq.buf[j] = c.thread(t)
			}
		}
	}

	if k.sleepers != nil {
		nk.sleepers = make([]*Thread, len(k.sleepers))
		for i, t := range k.sleepers {
			nk.sleepers[i] = c.thread(t)
		}
	}

	// Futex entries whose space is unreachable from any process are
	// stale leftovers of exited processes; their queues are empty and
	// futexQ recreates queues lazily, so dropping them is behaviour-
	// preserving. Entries with waiters always have a reachable space
	// (keys are built from a blocked thread's own space).
	for key, q := range k.futexes {
		ns, ok := c.spaces[key.space]
		if !ok {
			if len(q.ts) == 0 {
				continue
			}
			ns = c.space(key.space)
		}
		nk.futexes[futexKey{ns, key.va}] = c.queue(q)
	}

	// The NIC travels with the machine: the fabric address (including
	// the detached sentinel -1), in-flight inbox/outbox frames, and the
	// cumulative counters the metrics plane reads. recvQ goes through
	// the queue memo so a thread blocked in net_recv on the source is
	// blocked on the *cloned* queue — the one the clone's NetInject
	// wakes and its Run loop polls. Any NIC state a recycled scratch
	// shell carried was zeroed by the struct assignment above.
	nk.nic = nic{
		addr:       k.nic.addr,
		recvQ:      c.queue(k.nic.recvQ),
		framesSent: k.nic.framesSent,
		framesRecv: k.nic.framesRecv,
		bytesSent:  k.nic.bytesSent,
		bytesRecv:  k.nic.bytesRecv,
	}
	if k.nic.inbox != nil {
		nk.nic.inbox = append([]NetFrame(nil), k.nic.inbox...)
	}
	if k.nic.outbox != nil {
		nk.nic.outbox = append([]NetFrame(nil), k.nic.outbox...)
	}

	return nk
}

// space memoises addrspace.Space.CloneHost, remapping file-backed VMAs
// (executable images are *vfs.Inode backings) into the clone's
// filesystem.
func (c *cloneCtx) space(s *addrspace.Space) *addrspace.Space {
	if s == nil {
		return nil
	}
	if dup, ok := c.spaces[s]; ok {
		return dup
	}
	dup := s.CloneHost(c.nk.phys, c.nk.meter, c.markSrc, func(b addrspace.Backing) addrspace.Backing {
		if ino, ok := b.(*vfs.Inode); ok {
			return c.vc.Inode(ino)
		}
		return b
	})
	c.spaces[s] = dup
	return dup
}

func (c *cloneCtx) proc(p *Process) *Process {
	if p == nil {
		return nil
	}
	if dup, ok := c.procs[p]; ok {
		return dup
	}
	dup := &Process{}
	c.procs[p] = dup
	dup.Pid = p.Pid
	dup.Name = p.Name
	dup.parent = c.proc(p.parent)
	if p.children != nil {
		dup.children = make([]*Process, len(p.children))
		for i, ch := range p.children {
			dup.children[i] = c.proc(ch)
		}
	}
	dup.space = c.space(p.space)
	dup.spaceOwned = p.spaceOwned
	dup.fds = c.vc.FDTable(p.fds)
	dup.cwd = c.vc.Inode(p.cwd)
	if p.sigs != nil {
		dup.sigs = p.sigs.Clone()
	}
	dup.pending = p.pending
	if p.threads != nil {
		dup.threads = make([]*Thread, len(p.threads))
		for i, t := range p.threads {
			dup.threads[i] = c.thread(t)
		}
	}
	dup.nextTID = p.nextTID
	dup.state = p.state
	dup.exitStatus = p.exitStatus
	dup.childQ = c.queue(p.childQ)
	dup.vforkWaiter = c.thread(p.vforkWaiter)
	dup.started = p.started
	dup.oomKilled = p.oomKilled
	dup.cpuTicks = append([]cost.Ticks(nil), p.cpuTicks...)
	return dup
}

func (c *cloneCtx) thread(t *Thread) *Thread {
	if t == nil {
		return nil
	}
	if dup, ok := c.threads[t]; ok {
		return dup
	}
	dup := &Thread{}
	c.threads[t] = dup
	dup.TID = t.TID
	dup.proc = c.proc(t.proc)
	dup.regs = t.regs
	dup.pc = t.pc
	dup.state = t.state
	dup.cpu = t.cpu
	dup.dispatches = t.dispatches
	dup.wait = c.queue(t.wait)
	dup.waitReason = t.waitReason
	dup.sigMask = t.sigMask
	dup.pending = t.pending
	dup.sleepDeadline = t.sleepDeadline
	dup.waitPidTarget = t.waitPidTarget
	dup.waitStatusVA = t.waitStatusVA
	dup.vforkChild = c.proc(t.vforkChild)
	return dup
}

func (c *cloneCtx) queue(q *WaitQueue) *WaitQueue {
	if q == nil {
		return nil
	}
	if dup, ok := c.queues[q]; ok {
		return dup
	}
	dup := &WaitQueue{name: q.name}
	c.queues[q] = dup
	if q.ts != nil {
		dup.ts = make([]*Thread, len(q.ts))
		for i, t := range q.ts {
			dup.ts[i] = c.thread(t)
		}
	}
	return dup
}
