package kernel

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/abi"
	"repro/internal/addrspace"
	"repro/internal/mem"
	"repro/internal/sig"
	"repro/internal/ulib"
	"repro/internal/vfs"
)

// mustNew boots a kernel with test defaults filled in (4 GiB RAM, one
// CPU) for zero Options fields.
func mustNew(t testing.TB, opts Options) *Kernel {
	t.Helper()
	if opts.RAMBytes == 0 {
		opts.RAMBytes = 4 << 30
	}
	if opts.NumCPUs == 0 {
		opts.NumCPUs = 1
	}
	k, err := New(opts)
	if err != nil {
		t.Fatalf("kernel.New: %v", err)
	}
	return k
}

// boot creates a kernel with ulib installed and a console capture.
func boot(t *testing.T, opts Options) (*Kernel, *bytes.Buffer) {
	t.Helper()
	var out bytes.Buffer
	opts.ConsoleOut = &out
	k := mustNew(t, opts)
	if err := ulib.InstallAll(k); err != nil {
		t.Fatalf("install ulib: %v", err)
	}
	return k, &out
}

// run boots path as init with args and runs to completion.
func run(t *testing.T, opts Options, path string, argv ...string) (*Kernel, *Process, string, error) {
	t.Helper()
	k, out := boot(t, opts)
	p, err := k.BootInit(path, append([]string{path}, argv...))
	if err != nil {
		t.Fatalf("BootInit(%s): %v", path, err)
	}
	err = k.Run(RunLimits{MaxInstructions: 50_000_000})
	if k.LastStop() == StopLimit {
		t.Fatalf("%s: instruction limit hit (runaway program)", path)
	}
	return k, p, out.String(), err
}

func TestBootTrue(t *testing.T) {
	_, p, out, err := run(t, Options{}, "/bin/true")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if out != "" {
		t.Errorf("unexpected output %q", out)
	}
	if p.State() != ProcReaped {
		t.Errorf("init state = %v, want reaped", p.State())
	}
	if got := abi.StatusExitCode(p.ExitStatus()); got != 0 {
		t.Errorf("exit code = %d, want 0", got)
	}
}

func TestBootFalse(t *testing.T) {
	_, p, _, err := run(t, Options{}, "/bin/false")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := abi.StatusExitCode(p.ExitStatus()); got != 1 {
		t.Errorf("exit code = %d, want 1", got)
	}
}

func TestEchoArgs(t *testing.T) {
	_, _, out, err := run(t, Options{}, "/bin/echo", "hello", "fork", "world")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if want := "hello fork world\n"; out != want {
		t.Errorf("echo output = %q, want %q", out, want)
	}
}

func TestForkExec(t *testing.T) {
	k, p, _, err := run(t, Options{}, "/bin/forkexec")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := abi.StatusExitCode(p.ExitStatus()); got != 0 {
		t.Errorf("exit code = %d, want 0", got)
	}
	if k.OOMKills != 0 || k.SegvKills != 0 {
		t.Errorf("unexpected kills: oom=%d segv=%d", k.OOMKills, k.SegvKills)
	}
}

func TestVforkExec(t *testing.T) {
	_, p, _, err := run(t, Options{}, "/bin/vforkexec")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := abi.StatusExitCode(p.ExitStatus()); got != 0 {
		t.Errorf("exit code = %d, want 0", got)
	}
}

func TestForkLoop(t *testing.T) {
	k, p, _, err := run(t, Options{}, "/bin/forkloop", "10")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := abi.StatusExitCode(p.ExitStatus()); got != 0 {
		t.Errorf("exit code = %d, want 0", got)
	}
	if n := len(k.procs); n != 0 {
		t.Errorf("%d processes leaked", n)
	}
}

func TestSpawnLoop(t *testing.T) {
	_, p, _, err := run(t, Options{}, "/bin/spawnloop", "10", "/bin/true")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := abi.StatusExitCode(p.ExitStatus()); got != 0 {
		t.Errorf("exit code = %d, want 0", got)
	}
}

func TestInitSpawnsChildren(t *testing.T) {
	_, _, out, err := run(t, Options{}, "/bin/init", "/bin/echo")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if want := "\n"; out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

// TestStdioForkDuplication reproduces §4.2's buffered-I/O bug: bytes
// buffered before fork flush twice.
func TestStdioForkDuplication(t *testing.T) {
	_, _, out, err := run(t, Options{}, "/bin/stdio_fork")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if want := "unflushed;unflushed;"; out != want {
		t.Errorf("output = %q, want %q (duplicated buffer)", out, want)
	}
}

// TestOffsetSharedAcrossFork reproduces the shared-offset semantics:
// the child's write advances the parent's file position.
func TestOffsetSharedAcrossFork(t *testing.T) {
	k, _, _, err := run(t, Options{}, "/bin/offset_fork")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	ino, err := k.FS().Resolve(nil, "/tmp/offset_fork")
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	if got := string(ino.Data()); got != "BA" {
		t.Errorf("file = %q, want %q (offset must be shared)", got, "BA")
	}
}

func TestThreadsSum(t *testing.T) {
	// A small quantum forces preemption inside the critical
	// sections, so this fails if the futex mutex is broken.
	_, _, out, err := run(t, Options{Quantum: 37}, "/bin/threads_sum")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if want := "2000\n"; out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

// TestForkThreadsDeadlock is the paper's §4.2 composition failure:
// fork in a multithreaded program captures a locked mutex whose owner
// does not exist in the child.
func TestForkThreadsDeadlock(t *testing.T) {
	_, _, _, err := run(t, Options{}, "/bin/threads_deadlock")
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(dl.Threads) != 3 {
		t.Errorf("blocked threads = %d (%v), want 3 (child on futex, parent in waitpid, helper on futex)", len(dl.Threads), dl.Threads)
	}
	found := false
	for _, d := range dl.Threads {
		if strings.Contains(d, "futex") {
			found = true
		}
	}
	if !found {
		t.Errorf("no futex waiter in deadlock report: %v", dl.Threads)
	}
}

func TestSegvKillsProcess(t *testing.T) {
	k, p, _, err := run(t, Options{}, "/bin/segv")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if k.SegvKills != 1 {
		t.Errorf("SegvKills = %d, want 1", k.SegvKills)
	}
	if got := abi.StatusSignal(p.ExitStatus()); got != int(sig.SIGSEGV) {
		t.Errorf("termination signal = %d, want SIGSEGV", got)
	}
}

func TestSignalHandlerAndSigreturn(t *testing.T) {
	_, p, out, err := run(t, Options{}, "/bin/sigdemo")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if want := "caught\ndone\n"; out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
	if got := abi.StatusExitCode(p.ExitStatus()); got != 0 {
		t.Errorf("exit code = %d", got)
	}
}

func TestPipePingPong(t *testing.T) {
	_, p, out, err := run(t, Options{}, "/bin/pingpong", "50")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if want := "pingpong ok\n"; out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
	if got := abi.StatusExitCode(p.ExitStatus()); got != 0 {
		t.Errorf("exit code = %d", got)
	}
}

// TestHogForkStrictCommit: under strict overcommit, forking a process
// that has dirtied >50% of commit fails up front with ENOMEM (exit 2
// in the hog program).
func TestHogForkStrictCommit(t *testing.T) {
	opts := Options{RAMBytes: 64 << 20, Commit: mem.CommitStrict}
	k, p, _, err := run(t, opts, "/bin/hog", "40", "fork")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := abi.StatusExitCode(p.ExitStatus()); got != 2 {
		t.Errorf("exit code = %d, want 2 (fork ENOMEM)", got)
	}
	if k.OOMKills != 0 {
		t.Errorf("OOMKills = %d, want 0 under strict", k.OOMKills)
	}
}

// TestHogForkHeuristicOOM: under heuristic overcommit the fork
// succeeds, and the child's COW storm later runs the machine out of
// frames — the OOM killer fires.
func TestHogForkHeuristicOOM(t *testing.T) {
	opts := Options{RAMBytes: 64 << 20, Commit: mem.CommitHeuristic}
	k, _, _, err := run(t, opts, "/bin/hog", "40", "fork")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if k.OOMKills == 0 {
		t.Errorf("OOMKills = 0, want >0 under heuristic overcommit")
	}
}

// TestCloexecAcrossSpawn: a descriptor marked close-on-exec must not
// survive into a spawned child; an unmarked one must.
func TestCloexecAcrossSpawn(t *testing.T) {
	for _, tc := range []struct {
		cloexec bool
		want    string
	}{
		{false, "V"},
		{true, "C"},
	} {
		k, out := boot(t, Options{})
		parent := k.NewSynthetic("parent", nil)
		ino, err := k.FS().WriteFile("/tmp/probe", []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		of := vfs.NewOpenFile(ino, vfs.ORdWr)
		if err := parent.FDs().InstallAt(of, tc.cloexec, 9); err != nil {
			t.Fatal(err)
		}
		child, err := k.Spawn(parent, "/bin/cloexec_probe", []string{"probe"}, nil, SpawnAttr{}, true)
		if err != nil {
			t.Fatalf("spawn: %v", err)
		}
		// Wire the child's stdout to the console so puts works.
		con, _ := k.FS().Resolve(nil, "/dev/console")
		child.FDs().InstallAt(vfs.NewOpenFile(con, vfs.OWrOnly), false, 1)
		if err := k.Run(RunLimits{MaxInstructions: 1_000_000}); err != nil {
			t.Fatalf("run: %v", err)
		}
		if got := out.String(); got != tc.want {
			t.Errorf("cloexec=%v: probe printed %q, want %q", tc.cloexec, got, tc.want)
		}
		k.DestroyProcess(parent)
	}
}

// TestForkGoAPI exercises the harness-level fork on a synthetic
// process: memory written before the fork is visible in the child,
// and writes after it are isolated.
func TestForkGoAPI(t *testing.T) {
	k, _ := boot(t, Options{})
	p := k.NewSynthetic("parent", nil)
	vma, err := p.Space().Map(0, 1<<20, addrspace.Read|addrspace.Write, addrspace.MapOpts{Name: "test"})
	if err != nil {
		t.Fatalf("map: %v", err)
	}
	if err := p.Space().WriteBytes(vma.Start, []byte("before")); err != nil {
		t.Fatalf("write: %v", err)
	}
	child, err := k.Fork(p)
	if err != nil {
		t.Fatalf("fork: %v", err)
	}
	buf := make([]byte, 6)
	if err := child.Space().ReadBytes(vma.Start, buf); err != nil {
		t.Fatalf("child read: %v", err)
	}
	if string(buf) != "before" {
		t.Errorf("child sees %q, want %q", buf, "before")
	}
	if err := p.Space().WriteBytes(vma.Start, []byte("parent")); err != nil {
		t.Fatalf("parent write: %v", err)
	}
	if err := child.Space().ReadBytes(vma.Start, buf); err != nil {
		t.Fatalf("child read2: %v", err)
	}
	if string(buf) != "before" {
		t.Errorf("COW isolation broken: child sees %q", buf)
	}
	k.DestroyProcess(child)
	k.DestroyProcess(p)
}

// TestZombieAndReap: a child that exits stays a zombie until waited.
func TestZombieAndReap(t *testing.T) {
	k, _ := boot(t, Options{})
	parent := k.NewSynthetic("parent", nil)
	child, err := k.Spawn(parent, "/bin/true", []string{"true"}, nil, SpawnAttr{}, true)
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	if err := k.Run(RunLimits{MaxInstructions: 10_000}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if child.State() != ProcZombie {
		t.Fatalf("child state = %v, want zombie", child.State())
	}
	pid, status, err := k.WaitReap(parent, -1)
	if err != nil {
		t.Fatalf("WaitReap: %v", err)
	}
	if pid != child.Pid || abi.StatusExitCode(status) != 0 {
		t.Errorf("reaped pid=%d status=%d", pid, status)
	}
	if child.State() != ProcReaped {
		t.Errorf("child state = %v, want reaped", child.State())
	}
	k.DestroyProcess(parent)
}
