package kernel

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/errno"
	"repro/internal/fault"
)

// bootNetEcho boots a machine running /bin/netecho attached to the
// fabric at addr and runs it until it parks in net_recv.
func bootNetEcho(t *testing.T, addr int) *Kernel {
	t.Helper()
	k, _ := boot(t, Options{})
	k.NetAttach(addr)
	if _, err := k.BootInit("/bin/netecho", []string{"/bin/netecho"}); err != nil {
		t.Fatalf("BootInit: %v", err)
	}
	if err := k.Run(RunLimits{MaxInstructions: 1_000_000}); err != nil {
		t.Fatalf("run to first recv: %v", err)
	}
	if k.LastStop() != StopIdle {
		t.Fatalf("stop = %v, want idle (parked in net_recv)", k.LastStop())
	}
	if n := k.NetPendingRecv(); n != 1 {
		t.Fatalf("NetPendingRecv = %d, want 1", n)
	}
	return k
}

// TestNetEchoRoundTrip: a blocked net_recv wakes on NetInject, the
// program echoes the frame back through the outbox, and the NIC
// counters and virtual clock move accordingly.
func TestNetEchoRoundTrip(t *testing.T) {
	k := bootNetEcho(t, 7)
	if got := k.NetAddr(); got != 7 {
		t.Fatalf("NetAddr = %d, want 7", got)
	}

	// Deliver a frame "arriving" 1 ms into the machine's future: the
	// clocks fast-forward (idle) and the echo runs after that point.
	arrival := k.Elapsed() + cost.Millisecond
	k.AdvanceTo(arrival)
	k.NetInject(NetFrame{Src: 3, Dst: 7, Tag: 42, Bytes: 128})
	if err := k.Run(RunLimits{MaxInstructions: 1_000_000}); err != nil {
		t.Fatalf("run echo: %v", err)
	}
	out := k.NetDrainOutbox()
	if len(out) != 1 {
		t.Fatalf("outbox has %d frames, want 1", len(out))
	}
	f := out[0]
	if f.Src != 7 || f.Dst != 3 || f.Tag != 42 || f.Bytes != 64 {
		t.Errorf("echoed frame = %+v, want src=7 dst=3 tag=42 bytes=64", f)
	}
	if k.Elapsed() < arrival {
		t.Errorf("clock %v did not reach the arrival time %v", k.Elapsed(), arrival)
	}
	fs, fr, bs, br := k.NetStats()
	if fs != 1 || fr != 1 || bs != 64 || br != 128 {
		t.Errorf("NetStats = sent %d/%dB recv %d/%dB, want 1/64B 1/128B", fs, bs, fr, br)
	}

	// A zero tag is the shutdown frame: the program exits cleanly.
	k.NetInject(NetFrame{Src: 3, Dst: 7, Tag: 0, Bytes: 0})
	if err := k.Run(RunLimits{MaxInstructions: 1_000_000}); err != nil {
		t.Fatalf("run shutdown: %v", err)
	}
	if n := k.LiveProcessCount(); n != 0 {
		t.Errorf("%d live processes after shutdown frame, want 0", n)
	}
}

// TestNetRecvFIFO: frames are delivered to receivers in arrival
// order, oldest waiter first.
func TestNetRecvFIFO(t *testing.T) {
	k := bootNetEcho(t, 1)
	k.NetInject(NetFrame{Src: 2, Dst: 1, Tag: 10, Bytes: 8})
	k.NetInject(NetFrame{Src: 3, Dst: 1, Tag: 11, Bytes: 8})
	if err := k.Run(RunLimits{MaxInstructions: 1_000_000}); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := k.NetDrainOutbox()
	if len(out) != 2 {
		t.Fatalf("outbox has %d frames, want 2", len(out))
	}
	if out[0].Dst != 2 || out[0].Tag != 10 || out[1].Dst != 3 || out[1].Tag != 11 {
		t.Errorf("echo order = %+v, want tag 10 to 2 then tag 11 to 3", out)
	}
}

// TestNetSendFaultPoint: a schedule severing the uplink makes
// net_send fail with EIO; the frame never reaches the outbox but the
// op is still counted.
func TestNetSendFaultPoint(t *testing.T) {
	k, _ := boot(t, Options{Faults: fault.FailOp(fault.PointNetSend, 1, errno.EIO)})
	k.NetAttach(5)
	if _, err := k.BootInit("/bin/netecho", []string{"/bin/netecho"}); err != nil {
		t.Fatalf("BootInit: %v", err)
	}
	if err := k.Run(RunLimits{MaxInstructions: 1_000_000}); err != nil {
		t.Fatalf("run to recv: %v", err)
	}
	k.NetInject(NetFrame{Src: 9, Dst: 5, Tag: 77, Bytes: 16})
	if err := k.Run(RunLimits{MaxInstructions: 1_000_000}); err != nil {
		t.Fatalf("run echo: %v", err)
	}
	if out := k.NetDrainOutbox(); len(out) != 0 {
		t.Fatalf("outbox has %d frames, want 0 (send dropped)", len(out))
	}
	if got := k.Faults().Count(fault.PointNetSend); got != 1 {
		t.Errorf("net.send op count = %d, want 1", got)
	}
	if got := k.Faults().Injected(); got != 1 {
		t.Errorf("injected = %d, want 1", got)
	}
}
