package kernel

import (
	"fmt"

	"repro/internal/abi"
	"repro/internal/addrspace"
	"repro/internal/cost"
	"repro/internal/errno"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/sig"
	"repro/internal/vfs"
)

// Sentinels steering the dispatcher.
var (
	// errBlocked: leave pc untouched; the SYS instruction restarts
	// when the thread is woken.
	errBlocked = fmt.Errorf("kernel: blocked")
	// errNoReturn: the handler already set the thread's context
	// (exec, sigreturn) or destroyed it (exit); touch nothing.
	errNoReturn = fmt.Errorf("kernel: no return")
)

// maxXfer caps a single read/write transfer.
const maxXfer = 1 << 20

// syscall dispatches a SYS instruction for t.
func (k *Kernel) syscall(t *Thread, num uint64) {
	k.meter.Charge(k.meter.Model.SyscallEntry)
	k.meter.Syscalls++
	if k.tracer != nil {
		k.trace(fault.Event{Kind: fault.EvSysEnter, Pid: int(t.proc.Pid), Tid: t.TID, Num: num})
	}

	ret, err := k.sysEnter(t, num)
	switch err {
	case errBlocked:
		// The instruction restarts on wakeup; a fresh enter event
		// will record the retry. No exit event.
		return
	case errNoReturn:
		// exit/exec/sigreturn never return to the call site; the
		// proc/exec lifecycle events tell the story instead.
		return
	case nil:
		t.regs[0] = ret
		if k.tracer != nil {
			k.trace(fault.Event{Kind: fault.EvSysExit, Pid: int(t.proc.Pid), Tid: t.TID, Num: num, Aux: ret})
		}
	default:
		e := errno.Of(err, errno.EINVAL)
		t.regs[0] = uint64(-int64(e))
		if k.tracer != nil {
			k.trace(fault.Event{Kind: fault.EvSysExit, Pid: int(t.proc.Pid), Tid: t.TID, Num: num, Err: e})
		}
	}
	t.pc += isa.InstrSize
	k.meter.Charge(k.meter.Model.SyscallExit)
}

func (k *Kernel) sysEnter(t *Thread, num uint64) (uint64, error) {
	p := t.proc
	a := t.regs // copy of args; writes go through t.regs
	switch num {
	case abi.SysExit:
		k.ExitProcess(p, abi.EncodeStatus(int(a[0])&0xff, 0))
		return 0, errNoReturn

	case abi.SysWrite:
		return k.sysWrite(t, int(a[0]), a[1], a[2])

	case abi.SysRead:
		return k.sysRead(t, int(a[0]), a[1], a[2])

	case abi.SysOpen:
		path, err := readCString(p.space, a[0])
		if err != nil {
			return 0, err
		}
		flags := vfs.OpenFlags(a[1])
		of, err := k.openPath(p.cwd, path, flags)
		if err != nil {
			return 0, err
		}
		fd, err := p.fds.Install(of, flags&vfs.OCloexec != 0, 0)
		if err != nil {
			of.Release()
			return 0, err
		}
		return uint64(fd), nil

	case abi.SysClose:
		return 0, k.closeFD(p, int(a[0]))

	case abi.SysDup:
		fd, err := p.fds.Dup(int(a[0]), 0)
		return uint64(fd), err

	case abi.SysDup2:
		fd, err := p.fds.Dup2(int(a[0]), int(a[1]))
		return uint64(fd), err

	case abi.SysPipe:
		r, w := vfs.NewPipe()
		rfd, err := p.fds.Install(r, false, 0)
		if err != nil {
			r.Release()
			w.Release()
			return 0, err
		}
		wfd, err := p.fds.Install(w, false, 0)
		if err != nil {
			p.fds.Close(rfd)
			w.Release()
			return 0, err
		}
		if err := writeU64(p.space, a[0], uint64(rfd)); err != nil {
			return 0, err
		}
		if err := writeU64(p.space, a[0]+8, uint64(wfd)); err != nil {
			return 0, err
		}
		return 0, nil

	case abi.SysFork, abi.SysVfork:
		mode := ForkCOW
		if k.opts.EagerFork {
			mode = ForkEager
		}
		if num == abi.SysVfork {
			mode = ForkVfork
		}
		child, err := k.doFork(t, forkOpts{mode: mode, start: true})
		if err != nil {
			return 0, err
		}
		ct := child.MainThread()
		ct.regs[0] = 0
		ct.pc = t.pc + isa.InstrSize
		return uint64(child.Pid), nil

	case abi.SysExec:
		path, err := readCString(p.space, a[0])
		if err != nil {
			return 0, err
		}
		argv, err := readArgv(p.space, a[1])
		if err != nil {
			return 0, err
		}
		if err := k.doExec(t, path, argv); err != nil {
			return 0, err
		}
		return 0, errNoReturn

	case abi.SysSpawn:
		return k.sysSpawn(t, a[0], a[1], a[2], a[3])

	case abi.SysWaitPid:
		pid, status, e, blocked := k.doWaitPid(t, PID(int64(a[0])), a[2])
		if blocked {
			return 0, errBlocked
		}
		if e != errno.OK {
			return 0, e
		}
		if a[1] != 0 && pid != 0 {
			if err := writeU64(p.space, a[1], status); err != nil {
				return 0, err
			}
		}
		return uint64(pid), nil

	case abi.SysGetPid:
		return uint64(p.Pid), nil

	case abi.SysGetPPid:
		if p.parent == nil {
			return 0, nil
		}
		return uint64(p.parent.Pid), nil

	case abi.SysBrk:
		nb, err := p.space.SetBrk(a[0])
		if err != nil && a[0] != 0 {
			return nb, err
		}
		return nb, nil

	case abi.SysMmap:
		return k.sysMmap(t, a[0], a[1], a[2], a[3])

	case abi.SysMunmap:
		return 0, p.space.Unmap(a[0], a[1])

	case abi.SysTouch:
		access := addrspace.AccessRead
		if a[2] != 0 {
			access = addrspace.AccessWrite
		}
		if err := p.space.Touch(a[0], a[1], access); err != nil {
			if err == errno.ENOMEM {
				k.oomKill(p)
				return 0, errNoReturn
			}
			return 0, err
		}
		return 0, nil

	case abi.SysKill:
		target := k.Lookup(PID(int64(a[0])))
		if err := k.SendSignal(target, sig.Signal(a[1])); err != nil {
			return 0, err
		}
		if p.state != ProcAlive || t.state == TExited {
			return 0, errNoReturn // killed ourselves
		}
		return 0, nil

	case abi.SysSigaction:
		s := sig.Signal(a[0])
		var d sig.Disposition
		switch a[1] {
		case abi.SigActDefault:
			d.Kind = sig.ActDefault
		case abi.SigActIgnore:
			d.Kind = sig.ActIgnore
		case abi.SigActHandler:
			d.Kind = sig.ActHandler
			d.Handler = a[2]
		default:
			return 0, errno.EINVAL
		}
		if err := p.sigs.Set(s, d); err != nil {
			return 0, errno.EINVAL
		}
		return 0, nil

	case abi.SysSigprocmask:
		old := uint64(t.sigMask)
		set := sig.Set(a[1]).Del(sig.SIGKILL).Del(sig.SIGSTOP)
		switch a[0] {
		case abi.SigBlock:
			t.sigMask = t.sigMask.Union(set)
		case abi.SigUnblock:
			t.sigMask = t.sigMask.Minus(set)
		case abi.SigSetMask:
			t.sigMask = set
		default:
			return 0, errno.EINVAL
		}
		return old, nil

	case abi.SysSigreturn:
		if err := k.sigReturn(t); err != nil {
			k.threadFault(t, sig.SIGSEGV)
		}
		return 0, errNoReturn

	case abi.SysThreadCreate:
		if e := k.faults.Fail(fault.PointThreadCreate, 1); e != errno.OK {
			return 0, e
		}
		nt := k.newThread(p, TRunnable)
		nt.regs[0] = a[1]
		nt.regs[14] = a[2]
		nt.pc = a[0]
		nt.sigMask = t.sigMask
		return uint64(nt.TID), nil

	case abi.SysThreadExit:
		k.detachThread(t)
		if p.LiveThreads() == 0 {
			k.ExitProcess(p, abi.EncodeStatus(0, 0))
		}
		return 0, errNoReturn

	case abi.SysFutexWait:
		return k.sysFutexWait(t, a[0], a[1])

	case abi.SysFutexWake:
		return k.sysFutexWake(t, a[0], a[1])

	case abi.SysYield:
		t.regs[0] = 0
		t.pc += isa.InstrSize
		k.meter.Charge(k.meter.Model.SyscallExit)
		// Round-robin: back of this CPU's queue.
		t.state = TRunnable
		k.enqueue(t)
		return 0, errNoReturn

	case abi.SysNanosleep:
		if t.sleepDeadline != 0 && t.sleepDeadline <= k.meter.Now() {
			t.sleepDeadline = 0
			return 0, nil
		}
		if t.sleepDeadline == 0 {
			t.sleepDeadline = k.meter.Now() + cost.Ticks(a[0])
		}
		k.block(t, nil, "nanosleep")
		k.sleepers = append(k.sleepers, t)
		return 0, errBlocked

	case abi.SysClock:
		return uint64(k.meter.Now()), nil

	case abi.SysSeek:
		of, err := p.fds.Get(int(a[0]))
		if err != nil {
			return 0, err
		}
		pos, err := of.Seek(int64(a[1]), int(a[2]))
		return uint64(pos), err

	case abi.SysGetTid:
		return uint64(t.TID), nil

	case abi.SysSetCloexec:
		return 0, p.fds.SetCloexec(int(a[0]), a[1] != 0)

	case abi.SysStat:
		path, err := readCString(p.space, a[0])
		if err != nil {
			return 0, err
		}
		ino, err := k.fs.Resolve(p.cwd, path)
		if err != nil {
			return 0, err
		}
		typ := uint64(abi.StatFile)
		switch ino.Type {
		case vfs.TypeDir:
			typ = abi.StatDir
		case vfs.TypeDevice:
			typ = abi.StatDev
		}
		if err := writeU64(p.space, a[1], typ); err != nil {
			return 0, err
		}
		if err := writeU64(p.space, a[1]+8, ino.Size()); err != nil {
			return 0, err
		}
		return 0, nil

	case abi.SysMkdir:
		path, err := readCString(p.space, a[0])
		if err != nil {
			return 0, err
		}
		_, err = k.fs.Mkdir(p.cwd, path)
		return 0, err

	case abi.SysUnlink:
		path, err := readCString(p.space, a[0])
		if err != nil {
			return 0, err
		}
		return 0, k.fs.Remove(p.cwd, path)

	case abi.SysChdir:
		path, err := readCString(p.space, a[0])
		if err != nil {
			return 0, err
		}
		ino, err := k.fs.Resolve(p.cwd, path)
		if err != nil {
			return 0, err
		}
		if ino.Type != vfs.TypeDir {
			return 0, errno.ENOTDIR
		}
		p.cwd = ino
		return 0, nil

	case abi.SysReadDir:
		path, err := readCString(p.space, a[0])
		if err != nil {
			return 0, err
		}
		names, err := k.fs.ReadDir(p.cwd, path)
		if err != nil {
			return 0, err
		}
		var out []byte
		for _, n := range names {
			out = append(out, n...)
			out = append(out, 0)
		}
		if uint64(len(out)) > a[2] {
			return 0, errno.ERANGE
		}
		if err := p.space.WriteBytes(a[1], out); err != nil {
			return 0, err
		}
		return uint64(len(out)), nil

	case abi.SysProcCount:
		return uint64(k.LiveProcessCount()), nil

	case abi.SysGetRSS:
		return p.space.RSS(), nil

	case abi.SysMprotect:
		var pr addrspace.Prot
		if a[2]&abi.ProtRead != 0 {
			pr |= addrspace.Read
		}
		if a[2]&abi.ProtWrite != 0 {
			pr |= addrspace.Write
		}
		if a[2]&abi.ProtExec != 0 {
			pr |= addrspace.Exec
		}
		return 0, p.space.Protect(a[0], a[1], pr)

	case abi.SysNetSend:
		return k.sysNetSend(t, a[0], a[1], a[2])

	case abi.SysNetRecv:
		return k.sysNetRecv(t)
	}
	return 0, errno.ENOSYS
}

// closeFD closes fd and wakes any pipe peers (close of the last write
// end must unblock readers into EOF).
func (k *Kernel) closeFD(p *Process, fd int) error {
	of, err := p.fds.Get(fd)
	if err != nil {
		return err
	}
	pipe := of.Pipe()
	if err := p.fds.Close(fd); err != nil {
		return err
	}
	if pipe != nil {
		k.wakePipe(pipe)
	}
	return nil
}

// sysWrite implements write(2) with pipe blocking and SIGPIPE.
func (k *Kernel) sysWrite(t *Thread, fd int, bufVA, n uint64) (uint64, error) {
	p := t.proc
	of, err := p.fds.Get(fd)
	if err != nil {
		return 0, err
	}
	if n > maxXfer {
		n = maxXfer
	}
	if n == 0 {
		return 0, nil
	}
	buf := make([]byte, n)
	if err := p.space.ReadBytes(bufVA, buf); err != nil {
		return 0, errno.EFAULT
	}
	wrote, err := of.Write(buf)
	switch {
	case err == vfs.ErrWouldBlock:
		k.block(t, k.pipeWriteQ(of.Pipe()), "pipe-write")
		return 0, errBlocked
	case err == errno.EPIPE:
		t.pending = t.pending.Add(sig.SIGPIPE)
		return 0, errno.EPIPE
	case err != nil:
		return 0, err
	}
	if pipe := of.Pipe(); pipe != nil {
		k.meter.Charge(cost.Ticks(wrote) * k.meter.Model.PipeXferByte)
		k.wakePipe(pipe)
	}
	return uint64(wrote), nil
}

// sysRead implements read(2) with pipe blocking.
func (k *Kernel) sysRead(t *Thread, fd int, bufVA, n uint64) (uint64, error) {
	p := t.proc
	of, err := p.fds.Get(fd)
	if err != nil {
		return 0, err
	}
	if n > maxXfer {
		n = maxXfer
	}
	if n == 0 {
		return 0, nil
	}
	buf := make([]byte, n)
	got, err := of.Read(buf)
	switch {
	case err == vfs.ErrWouldBlock:
		k.block(t, k.pipeReadQ(of.Pipe()), "pipe-read")
		return 0, errBlocked
	case err != nil:
		return 0, err
	}
	if got > 0 {
		if err := p.space.WriteBytes(bufVA, buf[:got]); err != nil {
			return 0, errno.EFAULT
		}
	}
	if pipe := of.Pipe(); pipe != nil {
		k.meter.Charge(cost.Ticks(got) * k.meter.Model.PipeXferByte)
		k.wakePipe(pipe)
	}
	return uint64(got), nil
}

// sysMmap implements the anonymous-mapping subset of mmap(2).
func (k *Kernel) sysMmap(t *Thread, addr, length, prot, flags uint64) (uint64, error) {
	var pr addrspace.Prot
	if prot&abi.ProtRead != 0 {
		pr |= addrspace.Read
	}
	if prot&abi.ProtWrite != 0 {
		pr |= addrspace.Write
	}
	if prot&abi.ProtExec != 0 {
		pr |= addrspace.Exec
	}
	vma, err := t.proc.space.Map(addr, length, pr, addrspace.MapOpts{
		Kind:   addrspace.KindAnon,
		Name:   "mmap",
		Shared: flags&abi.MapShared != 0,
		Huge:   flags&abi.MapHuge != 0,
	})
	if err != nil {
		return 0, err
	}
	return vma.Start, nil
}

// sysSpawn parses the user-memory spawn control blocks and calls
// doSpawn.
func (k *Kernel) sysSpawn(t *Thread, pathVA, argvVA, faVA, attrVA uint64) (uint64, error) {
	p := t.proc
	path, err := readCString(p.space, pathVA)
	if err != nil {
		return 0, err
	}
	argv, err := readArgv(p.space, argvVA)
	if err != nil {
		return 0, err
	}
	var fas []FileAction
	if faVA != 0 {
		for i := 0; i < 64; i++ {
			base := faVA + uint64(i*abi.FARecordSize)
			op, err := readU64(p.space, base)
			if err != nil {
				return 0, err
			}
			if op == abi.FAEnd {
				break
			}
			w1, err := readU64(p.space, base+8)
			if err != nil {
				return 0, err
			}
			w2, err := readU64(p.space, base+16)
			if err != nil {
				return 0, err
			}
			w3, err := readU64(p.space, base+24)
			if err != nil {
				return 0, err
			}
			fa := FileAction{Op: int(op)}
			switch op {
			case abi.FADup2:
				fa.FD, fa.NewFD = int(w1), int(w2)
			case abi.FAClose:
				fa.FD = int(w1)
			case abi.FAOpen:
				fa.FD = int(w1)
				fa.Path, err = readCString(p.space, w2)
				if err != nil {
					return 0, err
				}
				fa.Flags = vfs.OpenFlags(w3)
			case abi.FAChdir:
				fa.Path, err = readCString(p.space, w1)
				if err != nil {
					return 0, err
				}
			default:
				return 0, errno.EINVAL
			}
			fas = append(fas, fa)
		}
	}
	var attr SpawnAttr
	if attrVA != 0 {
		fl, err := readU64(p.space, attrVA)
		if err != nil {
			return 0, err
		}
		sd, err := readU64(p.space, attrVA+8)
		if err != nil {
			return 0, err
		}
		sm, err := readU64(p.space, attrVA+16)
		if err != nil {
			return 0, err
		}
		attr = SpawnAttr{Flags: fl, SigDefault: sig.Set(sd), SigMask: sig.Set(sm)}
	}
	child, err := k.doSpawn(p, t.sigMask, path, argv, fas, attr, true)
	if err != nil {
		return 0, err
	}
	return uint64(child.Pid), nil
}
