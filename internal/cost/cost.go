// Package cost provides the virtual time base for the simulator.
//
// Nothing in the simulated operating system reads the wall clock.
// Instead, every hardware-level operation (copying a page-table entry,
// zero-filling a frame, taking a trap) charges a fixed number of ticks
// to a Clock according to a Model. One tick is nominally one
// nanosecond, so results print naturally in microseconds, but the unit
// is only meaningful relative to the calibration in DefaultModel.
package cost

import "fmt"

// Ticks is a span of virtual time. One tick is nominally 1 ns.
type Ticks uint64

// Common conversions.
const (
	Nanosecond  Ticks = 1
	Microsecond Ticks = 1000 * Nanosecond
	Millisecond Ticks = 1000 * Microsecond
	Second      Ticks = 1000 * Millisecond
)

// Micros reports t in (virtual) microseconds.
func (t Ticks) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t in (virtual) milliseconds.
func (t Ticks) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the duration with an adaptive unit.
func (t Ticks) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", t.Micros())
	default:
		return fmt.Sprintf("%dns", uint64(t))
	}
}

// Clock is a monotonic virtual clock. It is not safe for concurrent
// use; the simulator is single-threaded by design (see DESIGN.md,
// "Determinism").
type Clock struct {
	now Ticks
}

// Now returns the current virtual time.
func (c *Clock) Now() Ticks { return c.now }

// Advance moves the clock forward by d ticks.
func (c *Clock) Advance(d Ticks) { c.now += d }

// Model is the hardware cost model: how many ticks each primitive
// machine-level operation costs. The default values are calibrated so
// that the simulated process-creation latencies land in the same
// regime as the measurements reported in "A fork() in the road"
// (HotOS'19): a minimal fork+exec around 50 µs, posix_spawn flat near
// 165 µs, fork cost growing linearly with the number of page-table
// entries copied (~65 µs per dirty MiB), and the fork/spawn crossover
// in the low-MiB range. See EXPERIMENTS.md for the full rationale.
type Model struct {
	// Trap and dispatch overheads.
	SyscallEntry  Ticks // user→kernel trap + dispatch
	SyscallExit   Ticks // return to user
	PageFault     Ticks // fault trap overhead, before servicing
	ContextSwitch Ticks

	// Address-translation hardware.
	TLBFlush    Ticks // full flush on AS switch / fork
	TLBShootIPI Ticks // per-CPU shootdown (modelled once; 1-CPU sim)

	// Physical memory operations (per 4 KiB frame unless noted).
	FrameAlloc Ticks // pull a frame off the free list
	FrameFree  Ticks
	PageZero   Ticks // zero-fill 4 KiB
	PageCopy   Ticks // copy 4 KiB (COW break, eager fork)
	HugeZero   Ticks // zero-fill 2 MiB
	HugeCopy   Ticks // copy 2 MiB

	// Page-table manipulation.
	PTEWrite    Ticks // install/copy one PTE (the fork inner loop)
	PTNodeAlloc Ticks // allocate + zero one page-table page
	PTNodeFree  Ticks
	PTWalk      Ticks // software walk on TLB miss

	// Kernel object management.
	ProcAlloc   Ticks // allocate task struct, pid, kernel stack
	ThreadAlloc Ticks
	VMAClone    Ticks // copy one VMA record
	FDClone     Ticks // duplicate one descriptor slot
	SigClone    Ticks // copy signal table

	// Executable loading.
	ImageHeader Ticks // parse + validate image header (exec/spawn)
	ImagePageIn Ticks // read one 4 KiB page from the image backing store

	// Spawn-path fixed overheads (the "shell out to the dynamic
	// linker and libc start-up" costs that make posix_spawn's
	// constant larger than a minimal fork's).
	SpawnSetup Ticks

	// Pipes and descriptors.
	PipeXferByte Ticks // per byte copied through a pipe
	InstrTick    Ticks // one VM instruction
}

// DefaultModel returns the calibrated model. See EXPERIMENTS.md for
// the calibration rationale.
func DefaultModel() Model {
	return Model{
		SyscallEntry:  300 * Nanosecond,
		SyscallExit:   200 * Nanosecond,
		PageFault:     600 * Nanosecond,
		ContextSwitch: 1200 * Nanosecond,

		TLBFlush:    500 * Nanosecond,
		TLBShootIPI: 800 * Nanosecond,

		FrameAlloc: 80 * Nanosecond,
		FrameFree:  60 * Nanosecond,
		PageZero:   250 * Nanosecond,
		PageCopy:   350 * Nanosecond,
		HugeZero:   60 * Microsecond,
		HugeCopy:   90 * Microsecond,

		PTEWrite:    250 * Nanosecond,
		PTNodeAlloc: 400 * Nanosecond,
		PTNodeFree:  150 * Nanosecond,
		PTWalk:      200 * Nanosecond,

		ProcAlloc:   18 * Microsecond,
		ThreadAlloc: 4 * Microsecond,
		VMAClone:    300 * Nanosecond,
		FDClone:     120 * Nanosecond,
		SigClone:    500 * Nanosecond,

		ImageHeader: 6 * Microsecond,
		ImagePageIn: 700 * Nanosecond,

		SpawnSetup: 130 * Microsecond,

		PipeXferByte: 1 * Nanosecond,
		InstrTick:    1 * Nanosecond,
	}
}

// Meter couples a clock with a model and accumulates per-category
// counters so experiments can report *why* an operation cost what it
// did (e.g. PTEs copied during a fork).
type Meter struct {
	Clock *Clock
	Model Model

	// Counters, exported for experiment reporting.
	PTECopies    uint64
	PTNodes      uint64
	PageCopies   uint64
	PageZeroes   uint64
	PageFaults   uint64
	Syscalls     uint64
	Instructions uint64
}

// NewMeter returns a meter over a fresh clock using the given model.
func NewMeter(m Model) *Meter {
	return &Meter{Clock: &Clock{}, Model: m}
}

// Charge advances the clock by d.
func (mt *Meter) Charge(d Ticks) { mt.Clock.Advance(d) }

// Now returns the meter's current virtual time.
func (mt *Meter) Now() Ticks { return mt.Clock.Now() }

// ResetCounters zeroes the event counters (not the clock).
func (mt *Meter) ResetCounters() {
	mt.PTECopies, mt.PTNodes, mt.PageCopies = 0, 0, 0
	mt.PageZeroes, mt.PageFaults, mt.Syscalls, mt.Instructions = 0, 0, 0, 0
}
