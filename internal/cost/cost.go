// Package cost provides the virtual time base for the simulator.
//
// Nothing in the simulated operating system reads the wall clock.
// Instead, every hardware-level operation (copying a page-table entry,
// zero-filling a frame, taking a trap) charges a fixed number of ticks
// to a Meter according to a Model. One tick is nominally one
// nanosecond, so results print naturally in microseconds, but the unit
// is only meaningful relative to the calibration in DefaultModel.
//
// Since the SMP refactor the Meter keeps one virtual clock per
// simulated CPU, all on a single shared timeline. Exactly one CPU is
// "active" at a time (the simulator is single-threaded by design);
// Charge advances the active CPU's clock only, so work performed on
// different CPUs overlaps in virtual time instead of serializing. The
// kernel's scheduler always executes the lowest-clock CPU next, which
// keeps the interleaving — and therefore every counter below —
// bit-for-bit reproducible.
package cost

import "fmt"

// Ticks is a span of virtual time. One tick is nominally 1 ns.
type Ticks uint64

// Common conversions.
const (
	Nanosecond  Ticks = 1
	Microsecond Ticks = 1000 * Nanosecond
	Millisecond Ticks = 1000 * Microsecond
	Second      Ticks = 1000 * Millisecond
)

// Micros reports t in (virtual) microseconds.
func (t Ticks) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t in (virtual) milliseconds.
func (t Ticks) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the duration with an adaptive unit.
func (t Ticks) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", t.Micros())
	default:
		return fmt.Sprintf("%dns", uint64(t))
	}
}

// MaxCPUs bounds NumCPUs: address-space residency is a uint64 bitmask.
const MaxCPUs = 64

// Model is the hardware cost model: how many ticks each primitive
// machine-level operation costs. The default values are calibrated so
// that the simulated process-creation latencies land in the same
// regime as the measurements reported in "A fork() in the road"
// (HotOS'19): a minimal fork+exec around 50 µs, posix_spawn flat near
// 165 µs, fork cost growing linearly with the number of page-table
// entries copied (~65 µs per dirty MiB), and the fork/spawn crossover
// in the low-MiB range. See EXPERIMENTS.md for the full rationale.
type Model struct {
	// Trap and dispatch overheads.
	SyscallEntry  Ticks // user→kernel trap + dispatch
	SyscallExit   Ticks // return to user
	PageFault     Ticks // fault trap overhead, before servicing
	ContextSwitch Ticks

	// Address-translation hardware.
	TLBFlush Ticks // full flush on AS switch / fork
	// TLBShootIPI is charged once per *remote* CPU on which the
	// affected address space is resident, for every COW break,
	// unmap, and protection change — the §5 multicore fork tax. On
	// a 1-CPU machine it is never charged.
	TLBShootIPI Ticks

	// Physical memory operations (per 4 KiB frame unless noted).
	FrameAlloc Ticks // pull a frame off the free list
	FrameFree  Ticks
	PageZero   Ticks // zero-fill 4 KiB
	PageCopy   Ticks // copy 4 KiB (COW break, eager fork)
	HugeZero   Ticks // zero-fill 2 MiB
	HugeCopy   Ticks // copy 2 MiB

	// Page-table manipulation.
	PTEWrite    Ticks // install/copy one PTE (the fork inner loop)
	PTNodeAlloc Ticks // allocate + zero one page-table page
	PTNodeFree  Ticks
	PTWalk      Ticks // software walk on TLB miss

	// Kernel object management.
	ProcAlloc   Ticks // allocate task struct, pid, kernel stack
	ThreadAlloc Ticks
	VMAClone    Ticks // copy one VMA record
	FDClone     Ticks // duplicate one descriptor slot
	SigClone    Ticks // copy signal table

	// Executable loading.
	ImageHeader Ticks // parse + validate image header (exec/spawn)
	ImagePageIn Ticks // read one 4 KiB page from the image backing store

	// Spawn-path fixed overheads (the "shell out to the dynamic
	// linker and libc start-up" costs that make posix_spawn's
	// constant larger than a minimal fork's).
	SpawnSetup Ticks

	// Pipes and descriptors.
	PipeXferByte Ticks // per byte copied through a pipe
	InstrTick    Ticks // one VM instruction

	// Inter-machine network. NetStack is the kernel network-stack
	// traversal charged on the sending (and receiving) CPU per frame;
	// NetPerByte is the serialization cost per payload byte, also
	// CPU-charged; NetLinkLatency is the one-way wire propagation
	// delay, which elapses on the link rather than on any CPU — the
	// fabric adds it to a frame's arrival time.
	NetStack       Ticks // per-frame kernel stack traversal
	NetPerByte     Ticks // per payload byte serialized
	NetLinkLatency Ticks // one-way propagation delay (not CPU time)
}

// DefaultModel returns the calibrated model. See EXPERIMENTS.md for
// the calibration rationale.
func DefaultModel() Model {
	return Model{
		SyscallEntry:  300 * Nanosecond,
		SyscallExit:   200 * Nanosecond,
		PageFault:     600 * Nanosecond,
		ContextSwitch: 1200 * Nanosecond,

		TLBFlush:    500 * Nanosecond,
		TLBShootIPI: 800 * Nanosecond,

		FrameAlloc: 80 * Nanosecond,
		FrameFree:  60 * Nanosecond,
		PageZero:   250 * Nanosecond,
		PageCopy:   350 * Nanosecond,
		HugeZero:   60 * Microsecond,
		HugeCopy:   90 * Microsecond,

		PTEWrite:    250 * Nanosecond,
		PTNodeAlloc: 400 * Nanosecond,
		PTNodeFree:  150 * Nanosecond,
		PTWalk:      200 * Nanosecond,

		ProcAlloc:   18 * Microsecond,
		ThreadAlloc: 4 * Microsecond,
		VMAClone:    300 * Nanosecond,
		FDClone:     120 * Nanosecond,
		SigClone:    500 * Nanosecond,

		ImageHeader: 6 * Microsecond,
		ImagePageIn: 700 * Nanosecond,

		SpawnSetup: 130 * Microsecond,

		PipeXferByte: 1 * Nanosecond,
		InstrTick:    1 * Nanosecond,

		NetStack:       2 * Microsecond,
		NetPerByte:     1 * Nanosecond,
		NetLinkLatency: 10 * Microsecond,
	}
}

// Meter couples the per-CPU clocks with a model and accumulates
// per-category counters so experiments can report *why* an operation
// cost what it did (e.g. PTEs copied during a fork). It is not safe
// for concurrent use; the simulator is single-threaded by design.
type Meter struct {
	Model Model

	clocks []Ticks // per-CPU virtual time, one shared timeline
	idle   []Ticks // of clocks[i], how much was idle fast-forward
	active int     // CPU whose clock Charge advances

	// Counters, exported for experiment reporting.
	PTECopies     uint64
	PTNodes       uint64
	PageCopies    uint64
	PageZeroes    uint64
	PageFaults    uint64
	Syscalls      uint64
	Instructions  uint64
	TLBShootdowns uint64 // remote-CPU IPIs sent (one per remote CPU per event)

	// OnShootdown, when non-nil, observes every shootdown round (the
	// kernel's trace recorder hooks in here; the meter itself cannot
	// import the trace package without a cycle).
	OnShootdown func(remotes int)
}

// NewMeter returns a single-CPU meter using the given model.
func NewMeter(m Model) *Meter { return NewMeterSMP(m, 1) }

// NewMeterSMP returns a meter with ncpus per-CPU clocks, all starting
// at zero. ncpus is clamped to [1, MaxCPUs] (callers validate earlier
// for a real error).
func NewMeterSMP(m Model, ncpus int) *Meter {
	if ncpus < 1 {
		ncpus = 1
	}
	if ncpus > MaxCPUs {
		ncpus = MaxCPUs
	}
	return &Meter{
		Model:  m,
		clocks: make([]Ticks, ncpus),
		idle:   make([]Ticks, ncpus),
	}
}

// NumCPUs reports how many per-CPU clocks the meter keeps.
func (mt *Meter) NumCPUs() int { return len(mt.clocks) }

// ActiveCPU reports the CPU whose clock Charge currently advances.
func (mt *Meter) ActiveCPU() int { return mt.active }

// SetActiveCPU switches charging to CPU i (the scheduler calls this at
// every dispatch).
func (mt *Meter) SetActiveCPU(i int) {
	if i < 0 || i >= len(mt.clocks) {
		panic(fmt.Sprintf("cost: active CPU %d out of range [0,%d)", i, len(mt.clocks)))
	}
	mt.active = i
}

// Charge advances the active CPU's clock by d.
func (mt *Meter) Charge(d Ticks) { mt.clocks[mt.active] += d }

// Now returns the active CPU's current virtual time.
func (mt *Meter) Now() Ticks { return mt.clocks[mt.active] }

// CPUClock returns CPU i's virtual time.
func (mt *Meter) CPUClock(i int) Ticks { return mt.clocks[i] }

// CPUBusy returns how much of CPU i's virtual time was spent charging
// work (its clock minus idle fast-forwards) — the numerator of a
// utilization figure.
func (mt *Meter) CPUBusy(i int) Ticks { return mt.clocks[i] - mt.idle[i] }

// MaxClock returns the furthest-ahead CPU clock: the machine-wide
// elapsed virtual time.
func (mt *Meter) MaxClock() Ticks {
	max := mt.clocks[0]
	for _, c := range mt.clocks[1:] {
		if c > max {
			max = c
		}
	}
	return max
}

// IdleTo fast-forwards CPU i to the absolute time deadline, recording
// the gap as idle rather than busy. A deadline in i's past is a no-op.
func (mt *Meter) IdleTo(i int, deadline Ticks) {
	if deadline > mt.clocks[i] {
		mt.idle[i] += deadline - mt.clocks[i]
		mt.clocks[i] = deadline
	}
}

// ChargeShootdown charges one TLB-shootdown IPI per remote CPU and
// counts them. remotes <= 0 is a no-op (1-CPU machines, or a space
// resident nowhere else).
func (mt *Meter) ChargeShootdown(remotes int) {
	if remotes <= 0 {
		return
	}
	mt.Charge(Ticks(remotes) * mt.Model.TLBShootIPI)
	mt.TLBShootdowns += uint64(remotes)
	if mt.OnShootdown != nil {
		mt.OnShootdown(remotes)
	}
}

// ResetCounters zeroes the event counters (not the clocks).
func (mt *Meter) ResetCounters() {
	mt.PTECopies, mt.PTNodes, mt.PageCopies = 0, 0, 0
	mt.PageZeroes, mt.PageFaults, mt.Syscalls, mt.Instructions = 0, 0, 0, 0
	mt.TLBShootdowns = 0
}
