package cost

// Clone returns an independent meter with identical model, per-CPU
// clocks, idle accounting, active CPU, and counters. The clone
// continues from the same virtual instant as the source — cloning is a
// host-side operation and charges nothing — but subsequent charges on
// either meter never affect the other. OnShootdown is deliberately not
// carried over: it closes over the source machine's trace recorder, and
// the cloning kernel rebinds it to the clone's own recorder.
func (mt *Meter) Clone() *Meter {
	nm := *mt
	nm.clocks = append([]Ticks(nil), mt.clocks...)
	nm.idle = append([]Ticks(nil), mt.idle...)
	nm.OnShootdown = nil
	return &nm
}
