package cost

import "testing"

func TestTickFormatting(t *testing.T) {
	cases := []struct {
		in   Ticks
		want string
	}{
		{500, "500ns"},
		{1500, "1.500µs"},
		{2_500_000, "2.500ms"},
		{3_000_000_000, "3.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", uint64(c.in), got, c.want)
		}
	}
	if Ticks(1500).Micros() != 1.5 {
		t.Error("Micros wrong")
	}
	if Ticks(2_500_000).Millis() != 2.5 {
		t.Error("Millis wrong")
	}
}

func TestClockMonotonic(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("clock not zero at start")
	}
	c.Advance(10)
	c.Advance(5)
	if c.Now() != 15 {
		t.Errorf("Now = %d", c.Now())
	}
}

func TestMeterChargesAndCounters(t *testing.T) {
	m := NewMeter(DefaultModel())
	m.Charge(m.Model.PageCopy)
	m.PageCopies++
	if m.Now() != m.Model.PageCopy {
		t.Errorf("Now = %v", m.Now())
	}
	m.ResetCounters()
	if m.PageCopies != 0 {
		t.Error("ResetCounters missed PageCopies")
	}
	if m.Now() == 0 {
		t.Error("ResetCounters must not reset the clock")
	}
}

func TestDefaultModelSanity(t *testing.T) {
	m := DefaultModel()
	// The relationships the experiments depend on.
	if m.PTEWrite == 0 || m.PageCopy == 0 || m.SpawnSetup == 0 {
		t.Fatal("zero cost for a core operation")
	}
	if m.HugeCopy <= m.PageCopy {
		t.Error("2MiB copy should cost more than 4KiB copy")
	}
	if m.SpawnSetup <= m.ProcAlloc {
		t.Error("spawn setup must exceed bare process allocation (fork wins for tiny parents)")
	}
	if m.PageFault <= m.PTWalk {
		t.Error("a fault costs more than a table walk")
	}
}
