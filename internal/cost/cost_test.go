package cost

import "testing"

func TestTickFormatting(t *testing.T) {
	cases := []struct {
		in   Ticks
		want string
	}{
		{500, "500ns"},
		{1500, "1.500µs"},
		{2_500_000, "2.500ms"},
		{3_000_000_000, "3.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", uint64(c.in), got, c.want)
		}
	}
	if Ticks(1500).Micros() != 1.5 {
		t.Error("Micros wrong")
	}
	if Ticks(2_500_000).Millis() != 2.5 {
		t.Error("Millis wrong")
	}
}

func TestMeterChargesAndCounters(t *testing.T) {
	m := NewMeter(DefaultModel())
	m.Charge(m.Model.PageCopy)
	m.PageCopies++
	if m.Now() != m.Model.PageCopy {
		t.Errorf("Now = %v", m.Now())
	}
	m.ResetCounters()
	if m.PageCopies != 0 {
		t.Error("ResetCounters missed PageCopies")
	}
	if m.Now() == 0 {
		t.Error("ResetCounters must not reset the clock")
	}
}

func TestMeterPerCPUClocks(t *testing.T) {
	m := NewMeterSMP(DefaultModel(), 4)
	if m.NumCPUs() != 4 {
		t.Fatalf("NumCPUs = %d", m.NumCPUs())
	}
	m.Charge(100) // CPU 0
	m.SetActiveCPU(2)
	m.Charge(30)
	if m.CPUClock(0) != 100 || m.CPUClock(1) != 0 || m.CPUClock(2) != 30 {
		t.Errorf("clocks = %d %d %d", m.CPUClock(0), m.CPUClock(1), m.CPUClock(2))
	}
	if m.Now() != 30 {
		t.Errorf("Now on CPU 2 = %v", m.Now())
	}
	if m.MaxClock() != 100 {
		t.Errorf("MaxClock = %v", m.MaxClock())
	}
	// Idle fast-forward counts toward the clock but not busy time.
	m.IdleTo(1, 80)
	if m.CPUClock(1) != 80 || m.CPUBusy(1) != 0 {
		t.Errorf("after IdleTo: clock=%v busy=%v", m.CPUClock(1), m.CPUBusy(1))
	}
	m.IdleTo(1, 50) // in the past: no-op
	if m.CPUClock(1) != 80 {
		t.Errorf("IdleTo went backwards: %v", m.CPUClock(1))
	}
	if m.CPUBusy(0) != 100 || m.CPUBusy(2) != 30 {
		t.Errorf("busy = %v %v", m.CPUBusy(0), m.CPUBusy(2))
	}
}

func TestChargeShootdown(t *testing.T) {
	m := NewMeterSMP(DefaultModel(), 8)
	m.ChargeShootdown(0)
	m.ChargeShootdown(-1)
	if m.TLBShootdowns != 0 || m.Now() != 0 {
		t.Fatal("no-op shootdown charged something")
	}
	m.ChargeShootdown(3)
	if m.TLBShootdowns != 3 {
		t.Errorf("TLBShootdowns = %d", m.TLBShootdowns)
	}
	if m.Now() != 3*m.Model.TLBShootIPI {
		t.Errorf("charged %v, want %v", m.Now(), 3*m.Model.TLBShootIPI)
	}
	m.ResetCounters()
	if m.TLBShootdowns != 0 {
		t.Error("ResetCounters missed TLBShootdowns")
	}
}

func TestDefaultModelSanity(t *testing.T) {
	m := DefaultModel()
	// The relationships the experiments depend on.
	if m.PTEWrite == 0 || m.PageCopy == 0 || m.SpawnSetup == 0 {
		t.Fatal("zero cost for a core operation")
	}
	if m.HugeCopy <= m.PageCopy {
		t.Error("2MiB copy should cost more than 4KiB copy")
	}
	if m.SpawnSetup <= m.ProcAlloc {
		t.Error("spawn setup must exceed bare process allocation (fork wins for tiny parents)")
	}
	if m.PageFault <= m.PTWalk {
		t.Error("a fault costs more than a table walk")
	}
	if m.TLBShootIPI == 0 {
		t.Error("shootdown IPIs must cost something or SMP fork is free")
	}
}
