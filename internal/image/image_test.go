package image

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/errno"
)

func sample() *Image {
	return &Image{
		Header: Header{
			Entry:     0x400010,
			TextBase:  0x400000,
			BssSize:   128,
			StackSize: 8192,
		},
		Text: make([]byte, 64),
		Data: []byte("initialised"),
	}
}

func TestRoundtrip(t *testing.T) {
	im := sample()
	b := im.Encode()
	out, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Entry != im.Entry || out.TextBase != im.TextBase ||
		out.BssSize != im.BssSize || out.StackSize != im.StackSize {
		t.Errorf("header mismatch: %+v vs %+v", out.Header, im.Header)
	}
	if string(out.Data) != "initialised" || len(out.Text) != 64 {
		t.Errorf("segments mismatch")
	}
}

func TestValidation(t *testing.T) {
	good := sample().Encode()

	short := good[:HeaderSize-1]
	if _, err := DecodeHeader(short); !errors.Is(err, errno.ENOEXEC) {
		t.Errorf("short: %v", err)
	}

	badMagic := append([]byte(nil), good...)
	badMagic[0] = 'Z'
	if _, err := DecodeHeader(badMagic); !errors.Is(err, errno.ENOEXEC) {
		t.Errorf("magic: %v", err)
	}

	truncated := good[:HeaderSize+10] // claims 64 text bytes
	if _, err := DecodeHeader(truncated); !errors.Is(err, errno.ENOEXEC) {
		t.Errorf("truncated: %v", err)
	}

	// Entry outside text.
	bad := sample()
	bad.Entry = 0x500000
	if _, err := DecodeHeader(bad.Encode()); !errors.Is(err, errno.ENOEXEC) {
		t.Errorf("entry: %v", err)
	}

	// Empty text.
	empty := sample()
	empty.Text = nil
	if _, err := DecodeHeader(empty.Encode()); !errors.Is(err, errno.ENOEXEC) {
		t.Errorf("empty text: %v", err)
	}
}

func TestDefaultStack(t *testing.T) {
	im := sample()
	im.StackSize = 0
	h, err := DecodeHeader(im.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if h.StackSize != DefaultStackSize {
		t.Errorf("default stack = %d", h.StackSize)
	}
}

// TestQuickRoundtrip: arbitrary segment contents survive a roundtrip.
func TestQuickRoundtrip(t *testing.T) {
	f := func(text, data []byte, bss, stack uint32) bool {
		if len(text) == 0 {
			text = []byte{1}
		}
		im := &Image{
			Header: Header{
				Entry:     0x400000,
				TextBase:  0x400000,
				BssSize:   uint64(bss),
				StackSize: uint64(stack),
			},
			Text: text,
			Data: data,
		}
		out, err := Decode(im.Encode())
		if err != nil {
			return false
		}
		if len(out.Text) != len(text) || len(out.Data) != len(data) {
			return false
		}
		for i := range text {
			if out.Text[i] != text[i] {
				return false
			}
		}
		for i := range data {
			if out.Data[i] != data[i] {
				return false
			}
		}
		return out.BssSize == uint64(bss)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
