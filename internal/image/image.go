// Package image defines the KXI executable format the simulated
// kernel loads: a fixed header followed by the text and initialised
// data segments. Text is mapped read-execute at its link base, data
// read-write on the following page boundary, then zero-filled bss and
// a stack sized by the header.
//
// The format is deliberately ELF-shaped but minimal: enough structure
// that exec() and posix_spawn() do real header validation and
// demand-paged segment mapping, which is what gives spawn its O(1)
// cost in the parent's address-space size.
package image

import (
	"encoding/binary"
	"fmt"

	"repro/internal/errno"
)

// Magic identifies a KXI image.
var Magic = [4]byte{'K', 'X', 'I', '1'}

// HeaderSize is the fixed header length in bytes.
const HeaderSize = 64

// DefaultStackSize is used when an image requests none.
const DefaultStackSize = 64 * 1024

// Header describes an executable image.
type Header struct {
	Entry     uint64 // initial pc (absolute)
	TextBase  uint64 // link base of the text segment
	TextSize  uint64 // bytes of text in the file
	DataSize  uint64 // bytes of initialised data in the file
	BssSize   uint64 // zero-filled bytes after data
	StackSize uint64 // stack reservation
}

// Image is a decoded executable.
type Image struct {
	Header
	Text []byte
	Data []byte
}

// Encode serialises the image.
func (im *Image) Encode() []byte {
	h := make([]byte, HeaderSize)
	copy(h[0:4], Magic[:])
	le := binary.LittleEndian
	le.PutUint64(h[8:], im.Entry)
	le.PutUint64(h[16:], im.TextBase)
	le.PutUint64(h[24:], uint64(len(im.Text)))
	le.PutUint64(h[32:], uint64(len(im.Data)))
	le.PutUint64(h[40:], im.BssSize)
	le.PutUint64(h[48:], im.StackSize)
	out := make([]byte, 0, HeaderSize+len(im.Text)+len(im.Data))
	out = append(out, h...)
	out = append(out, im.Text...)
	out = append(out, im.Data...)
	return out
}

// DecodeHeader parses and validates an image header. It returns
// ENOEXEC for anything malformed — the error exec(2) gives for a bad
// binary.
func DecodeHeader(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, errno.ENOEXEC
	}
	if [4]byte(b[0:4]) != Magic {
		return Header{}, errno.ENOEXEC
	}
	le := binary.LittleEndian
	h := Header{
		Entry:     le.Uint64(b[8:]),
		TextBase:  le.Uint64(b[16:]),
		TextSize:  le.Uint64(b[24:]),
		DataSize:  le.Uint64(b[32:]),
		BssSize:   le.Uint64(b[40:]),
		StackSize: le.Uint64(b[48:]),
	}
	if h.TextSize+h.DataSize+HeaderSize > uint64(len(b)) {
		return Header{}, errno.ENOEXEC
	}
	if h.TextSize == 0 {
		return Header{}, errno.ENOEXEC
	}
	if h.Entry < h.TextBase || h.Entry >= h.TextBase+h.TextSize {
		return Header{}, errno.ENOEXEC
	}
	if h.StackSize == 0 {
		h.StackSize = DefaultStackSize
	}
	return h, nil
}

// Decode parses a whole image.
func Decode(b []byte) (*Image, error) {
	h, err := DecodeHeader(b)
	if err != nil {
		return nil, err
	}
	im := &Image{Header: h}
	im.Text = b[HeaderSize : HeaderSize+h.TextSize]
	im.Data = b[HeaderSize+h.TextSize : HeaderSize+h.TextSize+h.DataSize]
	return im, nil
}

func (h Header) String() string {
	return fmt.Sprintf("KXI entry=%#x text=%#x+%d data=%d bss=%d stack=%d",
		h.Entry, h.TextBase, h.TextSize, h.DataSize, h.BssSize, h.StackSize)
}
