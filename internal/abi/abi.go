// Package abi pins down the contract between the simulated kernel and
// its userland: syscall numbers, flag encodings, and the in-memory
// layouts of the posix_spawn control blocks. Both the kernel's
// dispatcher and the assembler's builtin constant table import this
// package, so a program written in the assembly dialect and the kernel
// can never drift apart.
package abi

// Syscall numbers.
const (
	SysExit         = 1  // exit(status)
	SysWrite        = 2  // write(fd, buf, len) -> n
	SysRead         = 3  // read(fd, buf, len) -> n
	SysOpen         = 4  // open(path, flags) -> fd
	SysClose        = 5  // close(fd)
	SysDup          = 6  // dup(fd) -> fd
	SysDup2         = 7  // dup2(old, new) -> new
	SysPipe         = 8  // pipe(addr of [2]u64) -> 0
	SysFork         = 9  // fork() -> pid | 0
	SysVfork        = 10 // vfork() -> pid | 0
	SysExec         = 11 // exec(path, argv) (no return on success)
	SysSpawn        = 12 // spawn(path, argv, file_actions, attr) -> pid
	SysWaitPid      = 13 // waitpid(pid, statusAddr, flags) -> pid
	SysGetPid       = 14 // getpid() -> pid
	SysGetPPid      = 15 // getppid() -> pid
	SysBrk          = 16 // brk(addr) -> new break
	SysMmap         = 17 // mmap(addr, len, prot, flags) -> addr
	SysMunmap       = 18 // munmap(addr, len)
	SysTouch        = 19 // touch(addr, len, write): fault pages in
	SysKill         = 20 // kill(pid, sig)
	SysSigaction    = 21 // sigaction(sig, kind, handler)
	SysSigprocmask  = 22 // sigprocmask(how, set) -> old set
	SysSigreturn    = 23 // return from signal handler
	SysThreadCreate = 24 // thread_create(entry, arg, stackTop) -> tid
	SysThreadExit   = 25 // thread_exit()
	SysFutexWait    = 26 // futex_wait(addr, expected)
	SysFutexWake    = 27 // futex_wake(addr, count) -> woken
	SysYield        = 28 // yield()
	SysNanosleep    = 29 // nanosleep(ticks)
	SysClock        = 30 // clock() -> virtual ns
	SysSeek         = 31 // seek(fd, off, whence) -> pos
	SysGetTid       = 32 // gettid() -> tid
	SysSetCloexec   = 33 // set_cloexec(fd, on)
	SysStat         = 34 // stat(path, bufAddr) -> 0 (type,size)
	SysMkdir        = 35 // mkdir(path)
	SysUnlink       = 36 // unlink(path)
	SysChdir        = 37 // chdir(path)
	SysReadDir      = 38 // readdir(path, buf, len) -> bytes (names NUL-separated)
	SysProcCount    = 39 // proc_count() -> live processes (diagnostics)
	SysGetRSS       = 40 // get_rss() -> resident bytes of caller
	SysMprotect     = 41 // mprotect(addr, len, prot)
	SysNetSend      = 42 // net_send(dst, tag, len) -> 0 (enqueue one NIC frame)
	SysNetRecv      = 43 // net_recv() -> src<<32|tag (blocks until a frame arrives)
)

// Exit-status encoding, waitpid's statusAddr word:
// bits 0..7  = termination signal (0 if exited normally)
// bits 8..15 = exit code
const (
	StatusSignalMask = 0xff
	StatusCodeShift  = 8
)

// EncodeStatus packs an exit code / terminating signal pair.
func EncodeStatus(code int, signal int) uint64 {
	return uint64(code)<<StatusCodeShift | uint64(signal)&StatusSignalMask
}

// StatusExitCode extracts the exit code.
func StatusExitCode(status uint64) int { return int(status>>StatusCodeShift) & 0xff }

// StatusSignal extracts the terminating signal (0 = normal exit).
func StatusSignal(status uint64) int { return int(status & StatusSignalMask) }

// open(2) flag values (match vfs.OpenFlags).
const (
	ORdOnly  = 0x0
	OWrOnly  = 0x1
	ORdWr    = 0x2
	OCreate  = 0x40
	OTrunc   = 0x200
	OAppend  = 0x400
	OCloexec = 0x80000
)

// mmap prot bits.
const (
	ProtRead  = 1
	ProtWrite = 2
	ProtExec  = 4
)

// mmap flags.
const (
	MapShared = 1
	MapHuge   = 2
)

// waitpid flags.
const (
	WNoHang = 1
)

// sigaction kinds.
const (
	SigActDefault = 0
	SigActIgnore  = 1
	SigActHandler = 2
)

// sigprocmask how.
const (
	SigBlock   = 0
	SigUnblock = 1
	SigSetMask = 2
)

// seek whence.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// posix_spawn file-action records: an array of 4×u64 records in user
// memory, terminated by FAEnd.
//
//	{FADup2,  oldfd, newfd, 0}
//	{FAClose, fd,    0,     0}
//	{FAOpen,  fd,    pathPtr, flags}
//	{FAEnd}
//	{FAChdir, pathPtr, 0, 0}
const (
	FAEnd   = 0
	FADup2  = 1
	FAClose = 2
	FAOpen  = 3
	FAChdir = 4

	// FARecordSize is the byte size of one record.
	FARecordSize = 32
)

// posix_spawn attribute block: 4×u64 in user memory.
//
//	word 0: flags (SpawnSetSigDef | SpawnSetSigMask)
//	word 1: sigdefault set
//	word 2: sigmask
//	word 3: reserved
const (
	SpawnSetSigDef  = 1
	SpawnSetSigMask = 2

	// AttrSize is the byte size of the attribute block.
	AttrSize = 32
)

// Stat buffer layout: 2×u64 {type, size}; type values below.
const (
	StatFile = 0
	StatDir  = 1
	StatDev  = 2
)
