package abi

import (
	"testing"
	"testing/quick"
)

func TestStatusEncoding(t *testing.T) {
	cases := []struct {
		code, signal int
	}{
		{0, 0}, {1, 0}, {255, 0}, {0, 9}, {0, 11}, {42, 0},
	}
	for _, c := range cases {
		s := EncodeStatus(c.code, c.signal)
		if got := StatusExitCode(s); got != c.code {
			t.Errorf("EncodeStatus(%d,%d): code = %d", c.code, c.signal, got)
		}
		if got := StatusSignal(s); got != c.signal {
			t.Errorf("EncodeStatus(%d,%d): signal = %d", c.code, c.signal, got)
		}
	}
}

func TestQuickStatusRoundtrip(t *testing.T) {
	f := func(code, signal uint8) bool {
		s := EncodeStatus(int(code), int(signal))
		return StatusExitCode(s) == int(code) && StatusSignal(s) == int(signal)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSyscallNumbersDistinct(t *testing.T) {
	nums := []int{
		SysExit, SysWrite, SysRead, SysOpen, SysClose, SysDup, SysDup2,
		SysPipe, SysFork, SysVfork, SysExec, SysSpawn, SysWaitPid,
		SysGetPid, SysGetPPid, SysBrk, SysMmap, SysMunmap, SysTouch,
		SysKill, SysSigaction, SysSigprocmask, SysSigreturn,
		SysThreadCreate, SysThreadExit, SysFutexWait, SysFutexWake,
		SysYield, SysNanosleep, SysClock, SysSeek, SysGetTid,
		SysSetCloexec, SysStat, SysMkdir, SysUnlink, SysChdir,
		SysReadDir, SysProcCount, SysGetRSS, SysMprotect,
	}
	seen := map[int]bool{}
	for _, n := range nums {
		if n <= 0 {
			t.Errorf("syscall number %d not positive", n)
		}
		if seen[n] {
			t.Errorf("syscall number %d duplicated", n)
		}
		seen[n] = true
	}
	if len(nums) != 41 {
		t.Errorf("expected 41 syscalls, counted %d (update the docs!)", len(nums))
	}
}

func TestFlagValuesMatchLinux(t *testing.T) {
	// The assembler documents O_* as Linux-compatible.
	if OCreate != 0x40 || OTrunc != 0x200 || OAppend != 0x400 || OCloexec != 0x80000 {
		t.Error("open flags diverged from Linux values")
	}
	if ProtRead != 1 || ProtWrite != 2 || ProtExec != 4 {
		t.Error("prot bits diverged")
	}
}
