package asm

import (
	"strings"
	"testing"

	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/mem"
)

func decodeAt(t *testing.T, im *image.Image, off int) isa.Instr {
	t.Helper()
	if off+isa.InstrSize > len(im.Text) {
		t.Fatalf("text too short for offset %d", off)
	}
	return isa.Decode(im.Text[off : off+isa.InstrSize])
}

func TestBasicProgram(t *testing.T) {
	im, err := Assemble(`
_start:
    movi r0, 42
    sys SYS_EXIT
`)
	if err != nil {
		t.Fatal(err)
	}
	if im.Entry != TextBase {
		t.Errorf("entry = %#x", im.Entry)
	}
	i0 := decodeAt(t, im, 0)
	if i0.Op != isa.OpMovi || i0.Rd != 0 || i0.Imm != 42 {
		t.Errorf("instr 0 = %v", i0)
	}
	i1 := decodeAt(t, im, 8)
	if i1.Op != isa.OpSys || i1.Imm != 1 {
		t.Errorf("instr 1 = %v", i1)
	}
}

func TestBranchOffsets(t *testing.T) {
	im, err := Assemble(`
_start:
    movi r0, 0
loop:
    addi r0, r0, 1
    bne r0, r1, loop
    b done
    nop
done:
    sys SYS_EXIT
`)
	if err != nil {
		t.Fatal(err)
	}
	bne := decodeAt(t, im, 16)
	if bne.Op != isa.OpBne || bne.Imm != -8 {
		t.Errorf("bne = %v, want imm -8", bne)
	}
	br := decodeAt(t, im, 24)
	if br.Op != isa.OpB || br.Imm != 16 {
		t.Errorf("b = %v, want imm +16", br)
	}
}

func TestLiExpansion(t *testing.T) {
	im, err := Assemble(`
_start:
    li r3, 0x123456789abcdef0
    nop
`)
	if err != nil {
		t.Fatal(err)
	}
	lo := decodeAt(t, im, 0)
	hi := decodeAt(t, im, 8)
	if lo.Op != isa.OpMovi || uint32(lo.Imm) != 0x9abcdef0 {
		t.Errorf("lo = %v", lo)
	}
	if hi.Op != isa.OpMovhi || uint32(hi.Imm) != 0x12345678 {
		t.Errorf("hi = %v", hi)
	}
	// li occupies 16 bytes: nop lands at 16.
	if n := decodeAt(t, im, 16); n.Op != isa.OpNop {
		t.Errorf("after li: %v", n)
	}
}

func TestSectionsAndSymbols(t *testing.T) {
	im, err := Assemble(`
.const GREET_LEN = 5
_start:
    li r1, greeting
    movi r2, GREET_LEN
    sys SYS_WRITE
.data
greeting: .asciz "hello"
numbers: .word8 1, 2, greeting
.bss
.align 8
buffer: .space 64
buf_end:
`)
	if err != nil {
		t.Fatal(err)
	}
	// Data starts at the page boundary after text.
	dataBase := uint64(TextBase) + alignUp(uint64(len(im.Text)), mem.PageSize)
	if string(im.Data[:6]) != "hello\x00" {
		t.Errorf("data = %q", im.Data[:6])
	}
	// numbers[2] should hold greeting's absolute address.
	off := 6 + 2*8
	got := uint64(0)
	for i := 0; i < 8; i++ {
		got |= uint64(im.Data[off+i]) << (8 * i)
	}
	if got != dataBase {
		t.Errorf("greeting symbol = %#x, want %#x", got, dataBase)
	}
	// li r1, greeting resolves to the same.
	lo := decodeAt(t, im, 0)
	hi := decodeAt(t, im, 8)
	resolved := uint64(uint32(lo.Imm)) | uint64(uint32(hi.Imm))<<32
	if resolved != dataBase {
		t.Errorf("li resolved to %#x", resolved)
	}
	// bss contributes size but no bytes.
	if im.BssSize < 64 {
		t.Errorf("bss = %d", im.BssSize)
	}
}

func TestEntryDirective(t *testing.T) {
	im, err := Assemble(`
.entry main
helper:
    ret
main:
    nop
`)
	if err != nil {
		t.Fatal(err)
	}
	if im.Entry != TextBase+8 {
		t.Errorf("entry = %#x, want %#x", im.Entry, TextBase+8)
	}
}

func TestStackDirective(t *testing.T) {
	im := MustAssemble(`
.stack 262144
_start:
    nop
`)
	if im.StackSize != 262144 {
		t.Errorf("stack = %d", im.StackSize)
	}
}

func TestExpressions(t *testing.T) {
	im, err := Assemble(`
.const A = 10
.const B = A + 5
_start:
    movi r0, B - 3
    movi r1, 'x'
    movi r2, O_RDWR + O_CREATE
`)
	if err != nil {
		t.Fatal(err)
	}
	if i := decodeAt(t, im, 0); i.Imm != 12 {
		t.Errorf("B-3 = %d", i.Imm)
	}
	if i := decodeAt(t, im, 8); i.Imm != 'x' {
		t.Errorf("'x' = %d", i.Imm)
	}
	if i := decodeAt(t, im, 16); i.Imm != 0x42 {
		t.Errorf("flags = %#x", i.Imm)
	}
}

func TestMemOperands(t *testing.T) {
	im := MustAssemble(`
_start:
    ld8 r1, [sp+16]
    st4 [r2-4], r3
    xchg r4, [r5+0], r6
`)
	i0 := decodeAt(t, im, 0)
	if i0.Op != isa.OpLd8 || i0.Rs1 != isa.SP || i0.Imm != 16 {
		t.Errorf("ld8 = %v", i0)
	}
	i1 := decodeAt(t, im, 8)
	if i1.Op != isa.OpSt4 || i1.Rs1 != 2 || i1.Rs2 != 3 || i1.Imm != -4 {
		t.Errorf("st4 = %v", i1)
	}
	i2 := decodeAt(t, im, 16)
	if i2.Op != isa.OpXchg || i2.Rd != 4 || i2.Rs1 != 5 || i2.Rs2 != 6 {
		t.Errorf("xchg = %v", i2)
	}
}

func TestComments(t *testing.T) {
	im := MustAssemble(`
; full-line comment
_start:            # trailing comment styles
    movi r0, 1     ; semicolon
    movi r1, 2     # hash
.data
msg: .asciz "has ; and # inside"
`)
	if string(im.Data) != "has ; and # inside\x00" {
		t.Errorf("string with comment chars mangled: %q", im.Data)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"_start:\n_start:\n nop", "duplicate label"},
		{" movi r99, 1", "bad register"},
		{" bogus r0", "unknown mnemonic"},
		{" movi r0", "expects 2 operands"},
		{" movi r0, nosuchsym", "undefined symbol"},
		{".data\n movi r0, 1", "outside .text"},
		{".align 3\n nop", "power of two"},
		{".bss\nx: .asciz \"no\"", "initialised data in .bss"},
		{" ld8 r0, r1", "bad memory operand"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("no error for %q", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("error for %q = %q, want substring %q", c.src, err.Error(), c.frag)
		}
	}
}

func TestErrorHasLineNumber(t *testing.T) {
	_, err := Assemble("\n\n bogus r0\n")
	ae, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if ae.Line != 3 {
		t.Errorf("line = %d, want 3", ae.Line)
	}
}

// TestTextBaseMatchesAddrspace pins the constant shared (by value)
// with addrspace.TextBase.
func TestTextBaseMatchesAddrspace(t *testing.T) {
	if TextBase != 0x400000 {
		t.Fatalf("asm.TextBase = %#x; must equal addrspace.TextBase", TextBase)
	}
}
