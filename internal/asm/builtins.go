package asm

import (
	"repro/internal/abi"
	"repro/internal/sig"
)

// builtinConsts are symbols every program can use without declaring
// them: syscall numbers, flag bits, signal numbers, and the standard
// descriptors. They come straight from internal/abi so the assembler
// and the kernel cannot disagree.
var builtinConsts = map[string]uint64{
	// Standard descriptors.
	"STDIN":  0,
	"STDOUT": 1,
	"STDERR": 2,

	// Syscalls.
	"SYS_EXIT":          abi.SysExit,
	"SYS_WRITE":         abi.SysWrite,
	"SYS_READ":          abi.SysRead,
	"SYS_OPEN":          abi.SysOpen,
	"SYS_CLOSE":         abi.SysClose,
	"SYS_DUP":           abi.SysDup,
	"SYS_DUP2":          abi.SysDup2,
	"SYS_PIPE":          abi.SysPipe,
	"SYS_FORK":          abi.SysFork,
	"SYS_VFORK":         abi.SysVfork,
	"SYS_EXEC":          abi.SysExec,
	"SYS_SPAWN":         abi.SysSpawn,
	"SYS_WAITPID":       abi.SysWaitPid,
	"SYS_GETPID":        abi.SysGetPid,
	"SYS_GETPPID":       abi.SysGetPPid,
	"SYS_BRK":           abi.SysBrk,
	"SYS_MMAP":          abi.SysMmap,
	"SYS_MUNMAP":        abi.SysMunmap,
	"SYS_TOUCH":         abi.SysTouch,
	"SYS_KILL":          abi.SysKill,
	"SYS_SIGACTION":     abi.SysSigaction,
	"SYS_SIGPROCMASK":   abi.SysSigprocmask,
	"SYS_SIGRETURN":     abi.SysSigreturn,
	"SYS_THREAD_CREATE": abi.SysThreadCreate,
	"SYS_THREAD_EXIT":   abi.SysThreadExit,
	"SYS_FUTEX_WAIT":    abi.SysFutexWait,
	"SYS_FUTEX_WAKE":    abi.SysFutexWake,
	"SYS_YIELD":         abi.SysYield,
	"SYS_NANOSLEEP":     abi.SysNanosleep,
	"SYS_CLOCK":         abi.SysClock,
	"SYS_SEEK":          abi.SysSeek,
	"SYS_GETTID":        abi.SysGetTid,
	"SYS_SET_CLOEXEC":   abi.SysSetCloexec,
	"SYS_STAT":          abi.SysStat,
	"SYS_MKDIR":         abi.SysMkdir,
	"SYS_UNLINK":        abi.SysUnlink,
	"SYS_CHDIR":         abi.SysChdir,
	"SYS_READDIR":       abi.SysReadDir,
	"SYS_PROC_COUNT":    abi.SysProcCount,
	"SYS_GET_RSS":       abi.SysGetRSS,
	"SYS_MPROTECT":      abi.SysMprotect,
	"SYS_NET_SEND":      abi.SysNetSend,
	"SYS_NET_RECV":      abi.SysNetRecv,

	// open flags.
	"O_RDONLY":  abi.ORdOnly,
	"O_WRONLY":  abi.OWrOnly,
	"O_RDWR":    abi.ORdWr,
	"O_CREATE":  abi.OCreate,
	"O_TRUNC":   abi.OTrunc,
	"O_APPEND":  abi.OAppend,
	"O_CLOEXEC": abi.OCloexec,

	// mmap.
	"PROT_READ":  abi.ProtRead,
	"PROT_WRITE": abi.ProtWrite,
	"PROT_EXEC":  abi.ProtExec,
	"MAP_SHARED": abi.MapShared,
	"MAP_HUGE":   abi.MapHuge,

	// waitpid.
	"WNOHANG": abi.WNoHang,

	// sigaction / sigprocmask.
	"SIG_DFL":     abi.SigActDefault,
	"SIG_IGN":     abi.SigActIgnore,
	"SIG_HANDLER": abi.SigActHandler,
	"SIG_BLOCK":   abi.SigBlock,
	"SIG_UNBLOCK": abi.SigUnblock,
	"SIG_SETMASK": abi.SigSetMask,

	// Signals.
	"SIGHUP":  uint64(sig.SIGHUP),
	"SIGINT":  uint64(sig.SIGINT),
	"SIGQUIT": uint64(sig.SIGQUIT),
	"SIGILL":  uint64(sig.SIGILL),
	"SIGABRT": uint64(sig.SIGABRT),
	"SIGFPE":  uint64(sig.SIGFPE),
	"SIGKILL": uint64(sig.SIGKILL),
	"SIGUSR1": uint64(sig.SIGUSR1),
	"SIGSEGV": uint64(sig.SIGSEGV),
	"SIGUSR2": uint64(sig.SIGUSR2),
	"SIGPIPE": uint64(sig.SIGPIPE),
	"SIGALRM": uint64(sig.SIGALRM),
	"SIGTERM": uint64(sig.SIGTERM),
	"SIGCHLD": uint64(sig.SIGCHLD),
	"SIGCONT": uint64(sig.SIGCONT),
	"SIGSTOP": uint64(sig.SIGSTOP),

	// posix_spawn file actions and attributes.
	"FA_END":   abi.FAEnd,
	"FA_DUP2":  abi.FADup2,
	"FA_CLOSE": abi.FAClose,
	"FA_OPEN":  abi.FAOpen,
	"FA_CHDIR": abi.FAChdir,

	"SPAWN_SETSIGDEF":  abi.SpawnSetSigDef,
	"SPAWN_SETSIGMASK": abi.SpawnSetSigMask,

	// seek.
	"SEEK_SET": abi.SeekSet,
	"SEEK_CUR": abi.SeekCur,
	"SEEK_END": abi.SeekEnd,

	// stat types.
	"S_FILE": abi.StatFile,
	"S_DIR":  abi.StatDir,
	"S_DEV":  abi.StatDev,

	// Geometry.
	"PAGE_SIZE": 4096,
	"HUGE_SIZE": 2 * 1024 * 1024,
}
