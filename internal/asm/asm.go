// Package asm implements a two-pass assembler for the simulator's ISA
// (internal/isa), producing KXI executable images (internal/image).
//
// Syntax overview (see internal/ulib for real programs):
//
//	; comment            # comment
//	.const NAME = 42
//	.text                ; section switches
//	.data
//	.bss
//	.align 8
//	.word8 1, sym, 'c'   ; also .word4, .word1
//	.asciz "text\n"
//	.space 128
//	.stack 65536         ; stack reservation in the header
//	.entry main          ; default: _start, else start of text
//
//	label:
//	    movi r0, 10
//	    li   r1, 0x123456789   ; pseudo: expands to movi+movhi (16 bytes)
//	    ld8  r2, [r1+8]
//	    st8  [r14-8], r2
//	    beq  r0, r2, label
//	    call fn
//	    sys  SYS_WRITE
//
// Operands may be integer literals (decimal, 0x hex, 'c' chars),
// label or .const symbols, builtin ABI constants (SYS_*, O_*, SIG*,
// STDOUT, ...), and single +/- combinations thereof.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/mem"
)

// TextBase is where images link their text segment (mirrors
// addrspace.TextBase without importing it; checked by a test).
const TextBase = 0x400000

// Error is an assembly diagnostic.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type section int

const (
	secText section = iota
	secData
	secBss
)

type stmtKind int

const (
	stInstr stmtKind = iota
	stWord
	stAsciz
	stSpace
	stAlign
)

type stmt struct {
	line    int
	sec     section
	off     uint64 // offset within section
	size    uint64
	kind    stmtKind
	op      string   // mnemonic for stInstr
	args    []string // raw operand strings
	strData string   // for .asciz
	width   int      // for .word*
}

type assembler struct {
	stmts   []stmt
	size    [3]uint64 // current offset per section
	symbols map[string]uint64
	consts  map[string]uint64
	labels  map[string]struct {
		sec  section
		off  uint64
		line int
	}
	entrySym  string
	stackSize uint64
}

// Assemble translates src into an executable image.
func Assemble(src string) (*image.Image, error) {
	a := &assembler{
		symbols: map[string]uint64{},
		consts:  map[string]uint64{},
		labels: map[string]struct {
			sec  section
			off  uint64
			line int
		}{},
	}
	if err := a.pass1(src); err != nil {
		return nil, err
	}
	return a.pass2()
}

// MustAssemble panics on error; for the program library and tests.
func MustAssemble(src string) *image.Image {
	im, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return im
}

func errAt(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// stripComment removes ;- or #-introduced comments, respecting quotes.
func stripComment(s string) string {
	inStr := false
	esc := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inStr {
			if esc {
				esc = false
			} else if c == '\\' {
				esc = true
			} else if c == '"' {
				inStr = false
			}
			continue
		}
		switch c {
		case '"':
			inStr = true
		case ';', '#':
			return s[:i]
		}
	}
	return s
}

func (a *assembler) pass1(src string) error {
	cur := secText
	for ln, raw := range strings.Split(src, "\n") {
		line := ln + 1
		s := strings.TrimSpace(stripComment(raw))
		if s == "" {
			continue
		}
		// Labels (possibly several) at line start.
		for {
			i := strings.IndexByte(s, ':')
			if i < 0 {
				break
			}
			name := strings.TrimSpace(s[:i])
			if !isIdent(name) {
				break
			}
			if _, dup := a.labels[name]; dup {
				return errAt(line, "duplicate label %q", name)
			}
			a.labels[name] = struct {
				sec  section
				off  uint64
				line int
			}{cur, a.size[cur], line}
			s = strings.TrimSpace(s[i+1:])
			if s == "" {
				break
			}
		}
		if s == "" {
			continue
		}
		if strings.HasPrefix(s, ".") {
			if err := a.directive(line, &cur, s); err != nil {
				return err
			}
			continue
		}
		// Instruction.
		if cur != secText {
			return errAt(line, "instruction outside .text")
		}
		op, rest := splitOp(s)
		op = strings.ToLower(op)
		args := splitArgs(rest)
		n := uint64(isa.InstrSize)
		if op == "li" {
			n = 2 * isa.InstrSize
		}
		a.stmts = append(a.stmts, stmt{
			line: line, sec: cur, off: a.size[cur], size: n,
			kind: stInstr, op: op, args: args,
		})
		a.size[cur] += n
	}
	return nil
}

func (a *assembler) directive(line int, cur *section, s string) error {
	op, rest := splitOp(s)
	switch strings.ToLower(op) {
	case ".text":
		*cur = secText
	case ".data":
		*cur = secData
	case ".bss":
		*cur = secBss
	case ".const":
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return errAt(line, ".const needs NAME = value")
		}
		name := strings.TrimSpace(rest[:eq])
		if !isIdent(name) {
			return errAt(line, "bad const name %q", name)
		}
		v, err := a.eval(line, strings.TrimSpace(rest[eq+1:]), false)
		if err != nil {
			return err
		}
		a.consts[name] = v
	case ".entry":
		a.entrySym = strings.TrimSpace(rest)
	case ".stack":
		v, err := a.eval(line, strings.TrimSpace(rest), false)
		if err != nil {
			return err
		}
		a.stackSize = v
	case ".align":
		v, err := a.eval(line, strings.TrimSpace(rest), false)
		if err != nil {
			return err
		}
		if v == 0 || v&(v-1) != 0 {
			return errAt(line, ".align must be a power of two")
		}
		old := a.size[*cur]
		na := (old + v - 1) &^ (v - 1)
		a.stmts = append(a.stmts, stmt{line: line, sec: *cur, off: old, size: na - old, kind: stAlign})
		a.size[*cur] = na
	case ".word8", ".word4", ".word1":
		if *cur == secBss {
			return errAt(line, "initialised data in .bss")
		}
		w := map[string]int{".word8": 8, ".word4": 4, ".word1": 1}[strings.ToLower(op)]
		args := splitArgs(rest)
		if len(args) == 0 {
			return errAt(line, "%s needs at least one value", op)
		}
		a.stmts = append(a.stmts, stmt{
			line: line, sec: *cur, off: a.size[*cur],
			size: uint64(w * len(args)), kind: stWord, args: args, width: w,
		})
		a.size[*cur] += uint64(w * len(args))
	case ".asciz":
		if *cur == secBss {
			return errAt(line, "initialised data in .bss")
		}
		str, err := parseString(strings.TrimSpace(rest))
		if err != nil {
			return errAt(line, "%v", err)
		}
		a.stmts = append(a.stmts, stmt{
			line: line, sec: *cur, off: a.size[*cur],
			size: uint64(len(str) + 1), kind: stAsciz, strData: str,
		})
		a.size[*cur] += uint64(len(str) + 1)
	case ".space":
		v, err := a.eval(line, strings.TrimSpace(rest), false)
		if err != nil {
			return err
		}
		a.stmts = append(a.stmts, stmt{line: line, sec: *cur, off: a.size[*cur], size: v, kind: stSpace})
		a.size[*cur] += v
	default:
		return errAt(line, "unknown directive %s", op)
	}
	return nil
}

func (a *assembler) pass2() (*image.Image, error) {
	// Final layout: text at TextBase; data on the next page
	// boundary; bss straight after data (8-aligned).
	textBase := uint64(TextBase)
	dataBase := textBase + alignUp(a.size[secText], mem.PageSize)
	bssBase := dataBase + alignUp(a.size[secData], 8)
	base := [3]uint64{textBase, dataBase, bssBase}

	// Resolve label symbols to absolute addresses.
	for name, l := range a.labels {
		if _, clash := a.consts[name]; clash {
			return nil, errAt(l.line, "%q is both label and const", name)
		}
		a.symbols[name] = base[l.sec] + l.off
	}
	for name, v := range a.consts {
		a.symbols[name] = v
	}

	text := make([]byte, a.size[secText])
	data := make([]byte, a.size[secData])
	for _, st := range a.stmts {
		var buf []byte
		switch st.sec {
		case secText:
			buf = text[st.off : st.off+st.size]
		case secData:
			buf = data[st.off : st.off+st.size]
		case secBss:
			continue // nothing to emit
		}
		switch st.kind {
		case stAlign, stSpace:
			// already zero
		case stAsciz:
			copy(buf, st.strData)
		case stWord:
			for i, arg := range st.args {
				v, err := a.eval(st.line, arg, true)
				if err != nil {
					return nil, err
				}
				putUint(buf[i*st.width:], v, st.width)
			}
		case stInstr:
			if err := a.emitInstr(st, buf, base[secText]+st.off); err != nil {
				return nil, err
			}
		}
	}

	entry := textBase
	switch {
	case a.entrySym != "":
		v, ok := a.symbols[a.entrySym]
		if !ok {
			return nil, errAt(0, "entry symbol %q undefined", a.entrySym)
		}
		entry = v
	default:
		if v, ok := a.symbols["_start"]; ok {
			entry = v
		}
	}

	return &image.Image{
		Header: image.Header{
			Entry:     entry,
			TextBase:  textBase,
			BssSize:   a.size[secBss],
			StackSize: a.stackSize,
		},
		Text: text,
		Data: data,
	}, nil
}

func putUint(b []byte, v uint64, width int) {
	for i := 0; i < width; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func alignUp(x, a uint64) uint64 { return (x + a - 1) &^ (a - 1) }

// operand helpers -----------------------------------------------------

func splitOp(s string) (op, rest string) {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i:])
}

// splitArgs splits on commas not inside quotes or brackets.
func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	inStr := false
	last := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 && !inStr {
				out = append(out, strings.TrimSpace(s[last:i]))
				last = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[last:]))
	return out
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || i > 0 && r >= '0' && r <= '9'
		if !ok {
			return false
		}
	}
	return true
}

func parseString(s string) (string, error) {
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("expected quoted string, got %q", s)
	}
	return strconv.Unquote(s)
}

// eval evaluates an operand expression: term (('+'|'-') term)*, where
// term is an integer literal, char literal, or symbol. Symbols resolve
// only when allowSyms (pass 2 / .const of constants).
func (a *assembler) eval(line int, expr string, allowSyms bool) (uint64, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return 0, errAt(line, "empty expression")
	}
	total := uint64(0)
	sign := uint64(1) // 1 or ^0 (for subtraction via two's complement)
	i := 0
	first := true
	for i < len(expr) {
		for i < len(expr) && (expr[i] == ' ' || expr[i] == '\t') {
			i++
		}
		if !first || expr[i] == '+' || expr[i] == '-' {
			if i >= len(expr) {
				return 0, errAt(line, "trailing operator in %q", expr)
			}
			switch expr[i] {
			case '+':
				sign = 1
				i++
			case '-':
				sign = ^uint64(0)
				i++
			default:
				if !first {
					return 0, errAt(line, "expected +/- in %q", expr)
				}
			}
			for i < len(expr) && (expr[i] == ' ' || expr[i] == '\t') {
				i++
			}
		}
		start := i
		if i < len(expr) && expr[i] == '\'' {
			// char literal
			j := strings.IndexByte(expr[i+1:], '\'')
			if j < 0 {
				return 0, errAt(line, "unterminated char literal")
			}
			i += j + 2
		} else {
			for i < len(expr) && expr[i] != '+' && expr[i] != '-' && expr[i] != ' ' && expr[i] != '\t' {
				i++
			}
		}
		tok := expr[start:i]
		v, err := a.term(line, tok, allowSyms)
		if err != nil {
			return 0, err
		}
		if sign == 1 {
			total += v
		} else {
			total -= v
		}
		sign = 1
		first = false
		for i < len(expr) && (expr[i] == ' ' || expr[i] == '\t') {
			i++
		}
	}
	return total, nil
}

func (a *assembler) term(line int, tok string, allowSyms bool) (uint64, error) {
	if tok == "" {
		return 0, errAt(line, "empty term")
	}
	if tok[0] == '\'' {
		s, err := strconv.Unquote(tok)
		if err != nil || len(s) != 1 {
			return 0, errAt(line, "bad char literal %s", tok)
		}
		return uint64(s[0]), nil
	}
	if tok[0] >= '0' && tok[0] <= '9' {
		v, err := strconv.ParseUint(tok, 0, 64)
		if err != nil {
			return 0, errAt(line, "bad integer %q", tok)
		}
		return v, nil
	}
	if v, ok := a.consts[tok]; ok {
		return v, nil
	}
	if v, ok := builtinConsts[tok]; ok {
		return v, nil
	}
	if allowSyms {
		if v, ok := a.symbols[tok]; ok {
			return v, nil
		}
	}
	return 0, errAt(line, "undefined symbol %q", tok)
}

// parseReg parses "r0".."r15" or "sp".
func parseReg(line int, s string) (uint8, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "sp" {
		return isa.SP, nil
	}
	if len(s) >= 2 && s[0] == 'r' {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < isa.NumRegs {
			return uint8(n), nil
		}
	}
	return 0, errAt(line, "bad register %q", s)
}

// parseMem parses "[reg]" or "[reg+expr]" / "[reg-expr]".
func (a *assembler) parseMem(line int, s string) (uint8, int32, error) {
	s = strings.TrimSpace(s)
	if len(s) < 3 || s[0] != '[' || s[len(s)-1] != ']' {
		return 0, 0, errAt(line, "bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	// find +/- separating reg from offset (reg names contain none)
	sep := strings.IndexAny(inner, "+-")
	regPart := inner
	offPart := ""
	if sep >= 0 {
		regPart = inner[:sep]
		offPart = inner[sep:]
	}
	r, err := parseReg(line, regPart)
	if err != nil {
		return 0, 0, err
	}
	var off uint64
	if offPart != "" {
		off, err = a.eval(line, offPart, true)
		if err != nil {
			return 0, 0, err
		}
	}
	return r, int32(off), nil
}

func (a *assembler) immOf(line int, s string, pc uint64, relative bool) (int32, error) {
	v, err := a.eval(line, s, true)
	if err != nil {
		return 0, err
	}
	if relative {
		v -= pc
	}
	// Accept anything representable in 32 bits, signed or unsigned:
	// branch offsets and movi are signed, while the logical
	// immediates (andi/ori/xori) are zero-extended, so values like
	// 0xff00ff00 must assemble. The encoding stores the low 32 bits
	// either way.
	iv := int64(v)
	if iv > 1<<32-1 || iv < -(1<<31) {
		return 0, errAt(line, "immediate %d out of 32-bit range", iv)
	}
	return int32(uint32(v)), nil
}

func (a *assembler) emitInstr(st stmt, buf []byte, pc uint64) error {
	put := func(in isa.Instr) {
		e := in.Encode()
		copy(buf, e[:])
	}
	need := func(n int) error {
		if len(st.args) != n {
			return errAt(st.line, "%s expects %d operands, got %d", st.op, n, len(st.args))
		}
		return nil
	}
	line := st.line

	switch st.op {
	case "nop":
		put(isa.Instr{Op: isa.OpNop})
	case "halt":
		put(isa.Instr{Op: isa.OpHalt})
	case "ret":
		put(isa.Instr{Op: isa.OpRet})
	case "li":
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(line, st.args[0])
		if err != nil {
			return err
		}
		v, err := a.eval(line, st.args[1], true)
		if err != nil {
			return err
		}
		lo := isa.Instr{Op: isa.OpMovi, Rd: rd, Imm: int32(uint32(v))}
		hi := isa.Instr{Op: isa.OpMovhi, Rd: rd, Imm: int32(uint32(v >> 32))}
		e1, e2 := lo.Encode(), hi.Encode()
		copy(buf, e1[:])
		copy(buf[isa.InstrSize:], e2[:])
	case "movi", "movhi":
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(line, st.args[0])
		if err != nil {
			return err
		}
		imm, err := a.immOf(line, st.args[1], pc, false)
		if err != nil {
			return err
		}
		op := isa.OpMovi
		if st.op == "movhi" {
			op = isa.OpMovhi
		}
		put(isa.Instr{Op: op, Rd: rd, Imm: imm})
	case "mov":
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(line, st.args[0])
		if err != nil {
			return err
		}
		rs, err := parseReg(line, st.args[1])
		if err != nil {
			return err
		}
		put(isa.Instr{Op: isa.OpMov, Rd: rd, Rs1: rs})
	case "add", "sub", "mul", "div", "mod", "and", "or", "xor", "shl", "shr", "sar":
		if err := need(3); err != nil {
			return err
		}
		op := map[string]isa.Op{
			"add": isa.OpAdd, "sub": isa.OpSub, "mul": isa.OpMul,
			"div": isa.OpDiv, "mod": isa.OpMod, "and": isa.OpAnd,
			"or": isa.OpOr, "xor": isa.OpXor, "shl": isa.OpShl,
			"shr": isa.OpShr, "sar": isa.OpSar,
		}[st.op]
		rd, err := parseReg(line, st.args[0])
		if err != nil {
			return err
		}
		r1, err := parseReg(line, st.args[1])
		if err != nil {
			return err
		}
		r2, err := parseReg(line, st.args[2])
		if err != nil {
			return err
		}
		put(isa.Instr{Op: op, Rd: rd, Rs1: r1, Rs2: r2})
	case "addi", "muli", "andi", "ori", "xori", "shli", "shri":
		if err := need(3); err != nil {
			return err
		}
		op := map[string]isa.Op{
			"addi": isa.OpAddi, "muli": isa.OpMuli, "andi": isa.OpAndi,
			"ori": isa.OpOri, "xori": isa.OpXori, "shli": isa.OpShli,
			"shri": isa.OpShri,
		}[st.op]
		rd, err := parseReg(line, st.args[0])
		if err != nil {
			return err
		}
		r1, err := parseReg(line, st.args[1])
		if err != nil {
			return err
		}
		imm, err := a.immOf(line, st.args[2], pc, false)
		if err != nil {
			return err
		}
		put(isa.Instr{Op: op, Rd: rd, Rs1: r1, Imm: imm})
	case "ld8", "ld4", "ld1":
		if err := need(2); err != nil {
			return err
		}
		op := map[string]isa.Op{"ld8": isa.OpLd8, "ld4": isa.OpLd4, "ld1": isa.OpLd1}[st.op]
		rd, err := parseReg(line, st.args[0])
		if err != nil {
			return err
		}
		r1, off, err := a.parseMem(line, st.args[1])
		if err != nil {
			return err
		}
		put(isa.Instr{Op: op, Rd: rd, Rs1: r1, Imm: off})
	case "st8", "st4", "st1":
		if err := need(2); err != nil {
			return err
		}
		op := map[string]isa.Op{"st8": isa.OpSt8, "st4": isa.OpSt4, "st1": isa.OpSt1}[st.op]
		r1, off, err := a.parseMem(line, st.args[0])
		if err != nil {
			return err
		}
		rs, err := parseReg(line, st.args[1])
		if err != nil {
			return err
		}
		put(isa.Instr{Op: op, Rs1: r1, Rs2: rs, Imm: off})
	case "b", "call":
		if err := need(1); err != nil {
			return err
		}
		op := isa.OpB
		if st.op == "call" {
			op = isa.OpCall
		}
		imm, err := a.immOf(line, st.args[0], pc, true)
		if err != nil {
			return err
		}
		put(isa.Instr{Op: op, Imm: imm})
	case "bz", "bnz":
		if err := need(2); err != nil {
			return err
		}
		op := isa.OpBz
		if st.op == "bnz" {
			op = isa.OpBnz
		}
		r1, err := parseReg(line, st.args[0])
		if err != nil {
			return err
		}
		imm, err := a.immOf(line, st.args[1], pc, true)
		if err != nil {
			return err
		}
		put(isa.Instr{Op: op, Rs1: r1, Imm: imm})
	case "beq", "bne", "blt", "bge", "bltu", "bgeu":
		if err := need(3); err != nil {
			return err
		}
		op := map[string]isa.Op{
			"beq": isa.OpBeq, "bne": isa.OpBne, "blt": isa.OpBlt,
			"bge": isa.OpBge, "bltu": isa.OpBltu, "bgeu": isa.OpBgeu,
		}[st.op]
		r1, err := parseReg(line, st.args[0])
		if err != nil {
			return err
		}
		r2, err := parseReg(line, st.args[1])
		if err != nil {
			return err
		}
		imm, err := a.immOf(line, st.args[2], pc, true)
		if err != nil {
			return err
		}
		put(isa.Instr{Op: op, Rs1: r1, Rs2: r2, Imm: imm})
	case "callr":
		if err := need(1); err != nil {
			return err
		}
		r1, err := parseReg(line, st.args[0])
		if err != nil {
			return err
		}
		put(isa.Instr{Op: isa.OpCallr, Rs1: r1})
	case "xchg":
		if err := need(3); err != nil {
			return err
		}
		rd, err := parseReg(line, st.args[0])
		if err != nil {
			return err
		}
		r1, off, err := a.parseMem(line, st.args[1])
		if err != nil {
			return err
		}
		rs, err := parseReg(line, st.args[2])
		if err != nil {
			return err
		}
		put(isa.Instr{Op: isa.OpXchg, Rd: rd, Rs1: r1, Rs2: rs, Imm: off})
	case "sys":
		if err := need(1); err != nil {
			return err
		}
		imm, err := a.immOf(line, st.args[0], pc, false)
		if err != nil {
			return err
		}
		put(isa.Instr{Op: isa.OpSys, Imm: imm})
	default:
		return errAt(line, "unknown mnemonic %q", st.op)
	}
	return nil
}
