// Package sig implements POSIX-style signal machinery for the
// simulator: signal numbers, sets, dispositions, and the inheritance
// rules across fork/exec/spawn that the paper's composability and
// security arguments hinge on (fork copies handlers pointing into the
// old image; exec resets caught signals to default but preserves
// ignored ones; posix_spawn attributes can reset dispositions
// explicitly).
package sig

import "fmt"

// Signal is a signal number, 1-based like POSIX.
type Signal int

// Signals supported by the simulator (Linux x86-64 numbering).
const (
	SIGHUP  Signal = 1
	SIGINT  Signal = 2
	SIGQUIT Signal = 3
	SIGILL  Signal = 4
	SIGABRT Signal = 6
	SIGFPE  Signal = 8
	SIGKILL Signal = 9
	SIGUSR1 Signal = 10
	SIGSEGV Signal = 11
	SIGUSR2 Signal = 12
	SIGPIPE Signal = 13
	SIGALRM Signal = 14
	SIGTERM Signal = 15
	SIGCHLD Signal = 17
	SIGCONT Signal = 18
	SIGSTOP Signal = 19

	// MaxSignal bounds the signal space.
	MaxSignal Signal = 31
)

var names = map[Signal]string{
	SIGHUP: "SIGHUP", SIGINT: "SIGINT", SIGQUIT: "SIGQUIT",
	SIGILL: "SIGILL", SIGABRT: "SIGABRT", SIGFPE: "SIGFPE",
	SIGKILL: "SIGKILL", SIGUSR1: "SIGUSR1", SIGSEGV: "SIGSEGV",
	SIGUSR2: "SIGUSR2", SIGPIPE: "SIGPIPE", SIGALRM: "SIGALRM",
	SIGTERM: "SIGTERM", SIGCHLD: "SIGCHLD", SIGCONT: "SIGCONT",
	SIGSTOP: "SIGSTOP",
}

func (s Signal) String() string {
	if n, ok := names[s]; ok {
		return n
	}
	return fmt.Sprintf("SIG%d", int(s))
}

// Valid reports whether s is a deliverable signal number.
func (s Signal) Valid() bool { return s >= 1 && s <= MaxSignal }

// Set is a signal set (bit i+1 represents signal i+1... bit n for
// signal n).
type Set uint64

// MakeSet builds a set from signals.
func MakeSet(sigs ...Signal) Set {
	var s Set
	for _, sg := range sigs {
		s = s.Add(sg)
	}
	return s
}

// Add returns s with sg included.
func (s Set) Add(sg Signal) Set {
	if !sg.Valid() {
		return s
	}
	return s | 1<<uint(sg)
}

// Del returns s without sg.
func (s Set) Del(sg Signal) Set { return s &^ (1 << uint(sg)) }

// Has reports membership.
func (s Set) Has(sg Signal) bool { return s&(1<<uint(sg)) != 0 }

// Union returns s ∪ o.
func (s Set) Union(o Set) Set { return s | o }

// Minus returns s \ o.
func (s Set) Minus(o Set) Set { return s &^ o }

// Empty reports whether no signals are in the set.
func (s Set) Empty() bool { return s == 0 }

// First returns the lowest-numbered signal in the set, or 0.
func (s Set) First() Signal {
	for sg := Signal(1); sg <= MaxSignal; sg++ {
		if s.Has(sg) {
			return sg
		}
	}
	return 0
}

// Signals lists the members in ascending order.
func (s Set) Signals() []Signal {
	var out []Signal
	for sg := Signal(1); sg <= MaxSignal; sg++ {
		if s.Has(sg) {
			out = append(out, sg)
		}
	}
	return out
}

// ActKind is what happens when a signal is delivered.
type ActKind uint8

// Disposition kinds.
const (
	ActDefault ActKind = iota
	ActIgnore
	ActHandler
)

func (k ActKind) String() string {
	switch k {
	case ActDefault:
		return "default"
	case ActIgnore:
		return "ignore"
	case ActHandler:
		return "handler"
	}
	return fmt.Sprintf("act(%d)", int(k))
}

// Disposition is one signal's configured action.
type Disposition struct {
	Kind    ActKind
	Handler uint64 // user-space PC, when Kind == ActHandler
	Mask    Set    // additional signals blocked during the handler
}

// Table holds a process's dispositions. The zero value has every
// signal at default.
type Table struct {
	acts [MaxSignal + 1]Disposition
}

// Get returns the disposition for sg.
func (t *Table) Get(sg Signal) Disposition {
	if !sg.Valid() {
		return Disposition{}
	}
	return t.acts[sg]
}

// Set installs a disposition. SIGKILL and SIGSTOP cannot be caught or
// ignored.
func (t *Table) Set(sg Signal, d Disposition) error {
	if !sg.Valid() {
		return fmt.Errorf("sig: invalid signal %d", int(sg))
	}
	if (sg == SIGKILL || sg == SIGSTOP) && d.Kind != ActDefault {
		return fmt.Errorf("sig: %v cannot be caught or ignored", sg)
	}
	t.acts[sg] = d
	return nil
}

// Clone copies the table — the fork path. Every handler address comes
// along, valid or not in the child's eventual image.
func (t *Table) Clone() *Table {
	nt := *t
	return &nt
}

// ResetForExec applies the POSIX exec rule: caught signals revert to
// default (their handler addresses are meaningless in the new image);
// ignored and default dispositions survive.
func (t *Table) ResetForExec() {
	for i := range t.acts {
		if t.acts[i].Kind == ActHandler {
			t.acts[i] = Disposition{}
		}
	}
}

// ResetAll restores every disposition to default (posix_spawn's
// POSIX_SPAWN_SETSIGDEF for the given set).
func (t *Table) ResetAll(set Set) {
	for sg := Signal(1); sg <= MaxSignal; sg++ {
		if set.Has(sg) {
			t.acts[sg] = Disposition{}
		}
	}
}

// DefaultEffect describes a signal's default action.
type DefaultEffect uint8

// Default effects.
const (
	EffectTerminate DefaultEffect = iota
	EffectIgnore
	EffectStop
	EffectContinue
)

// DefaultFor reports what ActDefault does for sg.
func DefaultFor(sg Signal) DefaultEffect {
	switch sg {
	case SIGCHLD:
		return EffectIgnore
	case SIGCONT:
		return EffectContinue
	case SIGSTOP:
		return EffectStop
	default:
		return EffectTerminate
	}
}
