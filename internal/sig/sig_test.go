package sig

import (
	"testing"
	"testing/quick"
)

func TestSetOps(t *testing.T) {
	s := MakeSet(SIGINT, SIGTERM)
	if !s.Has(SIGINT) || !s.Has(SIGTERM) || s.Has(SIGKILL) {
		t.Errorf("membership wrong: %b", s)
	}
	s = s.Del(SIGINT)
	if s.Has(SIGINT) {
		t.Error("Del failed")
	}
	if s.First() != SIGTERM {
		t.Errorf("First = %v", s.First())
	}
	u := s.Union(MakeSet(SIGHUP))
	if !u.Has(SIGHUP) || !u.Has(SIGTERM) {
		t.Error("Union failed")
	}
	m := u.Minus(MakeSet(SIGTERM))
	if m.Has(SIGTERM) || !m.Has(SIGHUP) {
		t.Error("Minus failed")
	}
	if !Set(0).Empty() || u.Empty() {
		t.Error("Empty wrong")
	}
	got := MakeSet(SIGQUIT, SIGHUP, SIGTERM).Signals()
	want := []Signal{SIGHUP, SIGQUIT, SIGTERM}
	if len(got) != len(want) {
		t.Fatalf("Signals = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Signals[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Invalid signals never enter a set.
	if s := MakeSet(Signal(0), Signal(99)); !s.Empty() {
		t.Errorf("invalid signals entered set: %b", s)
	}
}

func TestTableRules(t *testing.T) {
	var tbl Table
	if err := tbl.Set(SIGUSR1, Disposition{Kind: ActHandler, Handler: 0x1234}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Set(SIGINT, Disposition{Kind: ActIgnore}); err != nil {
		t.Fatal(err)
	}
	// KILL and STOP are immutable.
	if err := tbl.Set(SIGKILL, Disposition{Kind: ActIgnore}); err == nil {
		t.Error("caught SIGKILL")
	}
	if err := tbl.Set(SIGSTOP, Disposition{Kind: ActHandler, Handler: 1}); err == nil {
		t.Error("caught SIGSTOP")
	}
	if err := tbl.Set(SIGKILL, Disposition{}); err != nil {
		t.Errorf("resetting SIGKILL to default should be a no-op success: %v", err)
	}

	// Clone is independent.
	cl := tbl.Clone()
	cl.Set(SIGUSR1, Disposition{Kind: ActIgnore})
	if tbl.Get(SIGUSR1).Kind != ActHandler {
		t.Error("clone aliased the original")
	}

	// Exec: handlers reset, ignore survives.
	tbl.ResetForExec()
	if tbl.Get(SIGUSR1).Kind != ActDefault {
		t.Error("exec kept a handler")
	}
	if tbl.Get(SIGINT).Kind != ActIgnore {
		t.Error("exec dropped an ignore")
	}

	// ResetAll applies only to the given set.
	tbl.Set(SIGTERM, Disposition{Kind: ActIgnore})
	tbl.ResetAll(MakeSet(SIGTERM))
	if tbl.Get(SIGTERM).Kind != ActDefault {
		t.Error("ResetAll missed SIGTERM")
	}
	if tbl.Get(SIGINT).Kind != ActIgnore {
		t.Error("ResetAll touched SIGINT")
	}
}

func TestDefaults(t *testing.T) {
	if DefaultFor(SIGCHLD) != EffectIgnore {
		t.Error("SIGCHLD default should be ignore")
	}
	if DefaultFor(SIGKILL) != EffectTerminate || DefaultFor(SIGSEGV) != EffectTerminate {
		t.Error("fatal defaults wrong")
	}
	if DefaultFor(SIGSTOP) != EffectStop || DefaultFor(SIGCONT) != EffectContinue {
		t.Error("job-control defaults wrong")
	}
}

func TestStrings(t *testing.T) {
	if SIGSEGV.String() != "SIGSEGV" {
		t.Errorf("SIGSEGV prints as %q", SIGSEGV.String())
	}
	if Signal(25).String() != "SIG25" {
		t.Errorf("unknown prints as %q", Signal(25).String())
	}
}

// TestQuickSetShadow: Add/Del agree with a map-based shadow set.
func TestQuickSetShadow(t *testing.T) {
	f := func(ops []uint16) bool {
		var s Set
		shadow := map[Signal]bool{}
		for _, o := range ops {
			sg := Signal(int(o)%int(MaxSignal) + 1)
			if o%2 == 0 {
				s = s.Add(sg)
				shadow[sg] = true
			} else {
				s = s.Del(sg)
				delete(shadow, sg)
			}
		}
		for sg := Signal(1); sg <= MaxSignal; sg++ {
			if s.Has(sg) != shadow[sg] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
