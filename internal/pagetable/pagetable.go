// Package pagetable implements x86-64-style 4-level radix page tables
// for the simulator: 48-bit virtual addresses, 4 KiB base pages, and
// 2 MiB huge mappings installed one level up.
//
// This is the data structure whose duplication dominates the cost of
// fork() in "A fork() in the road": CloneCOW walks the whole radix
// tree, allocating mirror nodes and copying one entry per mapped page,
// so its virtual-time cost is Θ(mapped pages) — exactly the linear
// growth the paper's Figure 1 shows.
package pagetable

import (
	"fmt"
	"sync"

	"repro/internal/cost"
	"repro/internal/mem"
)

// PTE is a page-table entry: flag bits in the low 12 bits and the
// frame id shifted into the address bits.
type PTE uint64

// PTE flag bits.
const (
	FlagPresent  PTE = 1 << 0
	FlagWritable PTE = 1 << 1
	FlagExec     PTE = 1 << 2
	// FlagCOW marks a private page temporarily made read-only
	// because parent and child share the frame after fork. A write
	// fault on a COW page copies the frame (or reclaims it if the
	// refcount dropped back to 1).
	FlagCOW PTE = 1 << 3
	// FlagHuge marks a 2 MiB mapping installed at level 1 (the PD).
	FlagHuge     PTE = 1 << 4
	FlagDirty    PTE = 1 << 5
	FlagAccessed PTE = 1 << 6
	// FlagShared marks a MAP_SHARED page: fork shares the frame
	// without COW.
	FlagShared PTE = 1 << 7

	frameShift = 12
)

// Make builds a PTE from a frame and flags.
func Make(f mem.FrameID, flags PTE) PTE {
	return PTE(uint64(f))<<frameShift | (flags & 0xfff)
}

// Frame extracts the frame id.
func (e PTE) Frame() mem.FrameID { return mem.FrameID(e >> frameShift) }

// Flags extracts the flag bits.
func (e PTE) Flags() PTE { return e & 0xfff }

// Present reports whether the entry maps a frame.
func (e PTE) Present() bool { return e&FlagPresent != 0 }

// Writable reports the hardware-writable bit.
func (e PTE) Writable() bool { return e&FlagWritable != 0 }

// COW reports the software copy-on-write bit.
func (e PTE) COW() bool { return e&FlagCOW != 0 }

// Huge reports whether this is a 2 MiB mapping.
func (e PTE) Huge() bool { return e&FlagHuge != 0 }

// Shared reports whether this page is MAP_SHARED.
func (e PTE) Shared() bool { return e&FlagShared != 0 }

// With returns e with the given flags set.
func (e PTE) With(flags PTE) PTE { return e | flags }

// Without returns e with the given flags cleared.
func (e PTE) Without(flags PTE) PTE { return e &^ flags }

func (e PTE) String() string {
	if !e.Present() {
		return "<absent>"
	}
	s := fmt.Sprintf("frame=%d", e.Frame())
	for _, f := range []struct {
		bit  PTE
		name string
	}{
		{FlagWritable, "W"}, {FlagExec, "X"}, {FlagCOW, "cow"},
		{FlagHuge, "huge"}, {FlagDirty, "D"}, {FlagAccessed, "A"},
		{FlagShared, "shared"},
	} {
		if e&f.bit != 0 {
			s += "+" + f.name
		}
	}
	return s
}

// Virtual-address geometry.
const (
	LevelBits = 9
	Levels    = 4
	VABits    = Levels*LevelBits + mem.PageShift // 48
	// MaxVA is one past the highest mappable virtual address.
	MaxVA = uint64(1) << VABits

	entriesPerNode = 1 << LevelBits // 512
	tlbSize        = 64
)

// level of a node: 3 (root/PML4) down to 0 (PT). Huge mappings live at
// level 1.
func index(va uint64, level int) int {
	return int(va>>(mem.PageShift+uint(level)*LevelBits)) & (entriesPerNode - 1)
}

type node struct {
	// kids is used at levels 3..1; ptes at level 0, and also at
	// level 1 for huge mappings (a slot holds either a kid or a
	// huge PTE, never both).
	kids [entriesPerNode]*node
	ptes [entriesPerNode]PTE

	// shared marks a node host-COW-aliased by a frozen template and
	// its clones (see CloneHost): it is immutable, referenced by any
	// number of tables, and never returned to the pool. Writers copy
	// a shared node out of the way first (ownedCopy) — a host-only
	// operation that charges nothing, because logically the clone
	// already owned the node.
	shared bool
}

// ownedCopy returns a private, writable copy of a template-shared
// node. The copy's kids still point at shared children; they get their
// own copies if and when they are written.
func ownedCopy(n *node) *node {
	c := newNode()
	c.ptes = n.ptes
	c.kids = n.kids
	return c
}

// nodePool recycles radix nodes between tables. Fork-heavy workloads
// allocate and destroy a mirror node per page-table page per child;
// without pooling that is an 8 KiB host allocation each, and at tens of
// thousands of creations the garbage collector dominates the
// simulator's own run time. Nodes are returned zeroed (destroyNode
// clears every slot as it walks), so Get needs no re-initialisation.
// sync.Pool keeps this safe under `go test -race` with parallel tests.
var nodePool = sync.Pool{New: func() any { return new(node) }}

func newNode() *node  { return nodePool.Get().(*node) }
func putNode(n *node) { nodePool.Put(n) }

type tlbEntry struct {
	vpn   uint64 // virtual page number (base-page granularity)
	pte   PTE
	valid bool
}

// Table is one address space's page-table tree plus a tiny TLB.
type Table struct {
	phys  *mem.Physical
	meter *cost.Meter
	root  *node

	nodes       int // interior + leaf page-table pages, excluding root
	entries     int // present leaf PTEs (a huge mapping counts once)
	hugeEntries int

	tlb [tlbSize]tlbEntry
}

// New creates an empty table. The root node is charged like any other
// page-table page.
func New(phys *mem.Physical, meter *cost.Meter) *Table {
	meter.Charge(meter.Model.PTNodeAlloc)
	meter.PTNodes++
	return &Table{phys: phys, meter: meter, root: newNode()}
}

// Entries reports the number of present leaf entries (huge counts 1).
func (t *Table) Entries() int { return t.entries }

// HugeEntries reports how many of the entries are 2 MiB mappings.
func (t *Table) HugeEntries() int { return t.hugeEntries }

// Nodes reports the number of page-table pages below the root.
func (t *Table) Nodes() int { return t.nodes }

func (t *Table) tlbSlot(vpn uint64) *tlbEntry { return &t.tlb[vpn%tlbSize] }

// InvalidateTLB drops any cached translation for va. Operations on
// huge mappings do a full FlushTLB instead, since a single huge entry
// backs 512 cached vpns.
func (t *Table) InvalidateTLB(va uint64) {
	vpn := va >> mem.PageShift
	if s := t.tlbSlot(vpn); s.valid && s.vpn == vpn {
		s.valid = false
	}
}

// FlushTLB drops all cached translations and charges the flush cost.
func (t *Table) FlushTLB() {
	for i := range t.tlb {
		t.tlb[i].valid = false
	}
	t.meter.Charge(t.meter.Model.TLBFlush)
}

func checkVA(va uint64) {
	if va >= MaxVA {
		panic(fmt.Sprintf("pagetable: va %#x beyond %d-bit space", va, VABits))
	}
}

// Map installs a 4 KiB mapping for va (page-aligned). Any existing
// entry is overwritten; the caller is responsible for frame refcounts
// of a replaced entry (use Unmap first if that matters).
func (t *Table) Map(va uint64, e PTE) {
	checkVA(va)
	if va&(mem.PageSize-1) != 0 {
		panic(fmt.Sprintf("pagetable: unaligned map %#x", va))
	}
	if t.root.shared {
		t.root = ownedCopy(t.root)
	}
	n := t.root
	for level := Levels - 1; level > 0; level-- {
		i := index(va, level)
		if level == 1 && n.ptes[i].Present() && n.ptes[i].Huge() {
			panic(fmt.Sprintf("pagetable: 4K map %#x overlaps huge mapping", va))
		}
		kid := n.kids[i]
		switch {
		case kid == nil:
			kid = newNode()
			n.kids[i] = kid
			t.nodes++
			t.meter.Charge(t.meter.Model.PTNodeAlloc)
			t.meter.PTNodes++
		case kid.shared:
			kid = ownedCopy(kid)
			n.kids[i] = kid
		}
		n = kid
	}
	i := index(va, 0)
	if !n.ptes[i].Present() {
		t.entries++
	}
	n.ptes[i] = e | FlagPresent
	t.meter.Charge(t.meter.Model.PTEWrite)
	t.InvalidateTLB(va)
}

// MapHuge installs a 2 MiB mapping at va (2 MiB-aligned) at level 1.
func (t *Table) MapHuge(va uint64, e PTE) {
	checkVA(va)
	if va&(mem.HugeSize-1) != 0 {
		panic(fmt.Sprintf("pagetable: unaligned huge map %#x", va))
	}
	if t.root.shared {
		t.root = ownedCopy(t.root)
	}
	n := t.root
	for level := Levels - 1; level > 1; level-- {
		i := index(va, level)
		kid := n.kids[i]
		switch {
		case kid == nil:
			kid = newNode()
			n.kids[i] = kid
			t.nodes++
			t.meter.Charge(t.meter.Model.PTNodeAlloc)
			t.meter.PTNodes++
		case kid.shared:
			kid = ownedCopy(kid)
			n.kids[i] = kid
		}
		n = kid
	}
	i := index(va, 1)
	if n.kids[i] != nil {
		panic(fmt.Sprintf("pagetable: huge map %#x overlaps 4K mappings", va))
	}
	if !n.ptes[i].Present() {
		t.entries++
		t.hugeEntries++
	}
	n.ptes[i] = e | FlagPresent | FlagHuge
	t.meter.Charge(t.meter.Model.PTEWrite)
	t.FlushTLB()
}

// lookup returns the leaf slot holding va's translation, or nil.
// hugeBase receives the huge mapping's base va when the translation is
// huge.
func (t *Table) lookupSlot(va uint64) (slot *PTE, huge bool) {
	n := t.root
	for level := Levels - 1; level > 0; level-- {
		i := index(va, level)
		if level == 1 {
			if n.ptes[i].Present() && n.ptes[i].Huge() {
				return &n.ptes[i], true
			}
		}
		if n.kids[i] == nil {
			return nil, false
		}
		n = n.kids[i]
	}
	i := index(va, 0)
	if !n.ptes[i].Present() {
		return nil, false
	}
	return &n.ptes[i], false
}

// lookupSlotOwn is lookupSlot for writers: every node on the returned
// slot's path is owned by this table, with template-shared nodes
// copied out of the way (host-only; charges nothing — logically the
// clone owned them all along).
func (t *Table) lookupSlotOwn(va uint64) (slot *PTE, huge bool) {
	if t.root.shared {
		t.root = ownedCopy(t.root)
	}
	n := t.root
	for level := Levels - 1; level > 0; level-- {
		i := index(va, level)
		if level == 1 && n.ptes[i].Present() && n.ptes[i].Huge() {
			return &n.ptes[i], true
		}
		kid := n.kids[i]
		if kid == nil {
			return nil, false
		}
		if kid.shared {
			kid = ownedCopy(kid)
			n.kids[i] = kid
		}
		n = kid
	}
	i := index(va, 0)
	if !n.ptes[i].Present() {
		return nil, false
	}
	return &n.ptes[i], false
}

// Lookup translates va. The TLB is consulted first; a miss charges the
// software-walk cost. The boolean reports whether a mapping exists.
func (t *Table) Lookup(va uint64) (PTE, bool) {
	checkVA(va)
	vpn := va >> mem.PageShift
	if s := t.tlbSlot(vpn); s.valid && s.vpn == vpn {
		return s.pte, true
	}
	t.meter.Charge(t.meter.Model.PTWalk)
	slot, _ := t.lookupSlot(va)
	if slot == nil {
		return 0, false
	}
	*t.tlbSlot(vpn) = tlbEntry{vpn: vpn, pte: *slot, valid: true}
	return *slot, true
}

// Update rewrites the existing entry covering va (COW break, dirty and
// accessed bits). It panics if va is unmapped.
func (t *Table) Update(va uint64, e PTE) {
	checkVA(va)
	slot, huge := t.lookupSlotOwn(va)
	if slot == nil {
		panic(fmt.Sprintf("pagetable: update of unmapped va %#x", va))
	}
	if huge {
		e |= FlagHuge
	}
	*slot = e | FlagPresent
	t.meter.Charge(t.meter.Model.PTEWrite)
	if huge {
		t.FlushTLB()
	} else {
		t.InvalidateTLB(va)
	}
}

// Unmap removes the translation covering va and returns the old entry.
// For a huge mapping, va must be the mapping's base. The caller owns
// the frame reference.
func (t *Table) Unmap(va uint64) (PTE, bool) {
	checkVA(va)
	slot, huge := t.lookupSlotOwn(va)
	if slot == nil {
		return 0, false
	}
	old := *slot
	if huge && va&(mem.HugeSize-1) != 0 {
		panic(fmt.Sprintf("pagetable: unmap %#x inside huge mapping", va))
	}
	*slot = 0
	t.entries--
	if huge {
		t.hugeEntries--
	}
	t.meter.Charge(t.meter.Model.PTEWrite)
	if huge {
		t.FlushTLB()
	} else {
		t.InvalidateTLB(va)
	}
	return old, true
}

// Visit calls fn for every present leaf entry in ascending va order.
// fn receives the mapping's base va and may rewrite the entry by
// returning a new value (return the input to leave it unchanged).
// Rewrites charge a PTE write; the TLB is flushed afterwards if any
// entry changed.
func (t *Table) Visit(fn func(va uint64, e PTE) PTE) {
	root, changed := t.visit(t.root, 0, Levels-1, fn)
	t.root = root
	if changed {
		t.FlushTLB()
	}
}

// visit returns the node it ended up writing through — n itself, or an
// owned copy when n was template-shared and a rewrite was needed — so
// the caller can relink it.
func (t *Table) visit(n *node, base uint64, level int, fn func(uint64, PTE) PTE) (*node, bool) {
	changed := false
	span := uint64(1) << (mem.PageShift + uint(level)*LevelBits)
	for i := 0; i < entriesPerNode; i++ {
		va := base + uint64(i)*span
		if level == 0 || (level == 1 && n.ptes[i].Present() && n.ptes[i].Huge()) {
			e := n.ptes[i]
			if !e.Present() {
				continue
			}
			ne := fn(va, e)
			if ne != e {
				if n.shared {
					n = ownedCopy(n)
				}
				n.ptes[i] = ne | FlagPresent
				t.meter.Charge(t.meter.Model.PTEWrite)
				changed = true
			}
			continue
		}
		if kid := n.kids[i]; kid != nil {
			nk, ch := t.visit(kid, va, level-1, fn)
			if nk != kid {
				if n.shared {
					n = ownedCopy(n)
				}
				n.kids[i] = nk
			}
			if ch {
				changed = true
			}
		}
	}
	return n, changed
}

// cloneCounts accumulates the metered events of a clone walk so the
// cost is charged in one batch at the end instead of one Charge call
// per entry. The virtual-time total is identical — Θ(mapped pages)
// remains the paper's point — but the host-side inner loop shrinks to
// pointer and integer work, which is what lets the load scenarios fork
// large parents tens of thousands of times.
type cloneCounts struct {
	writes uint64 // PTE writes: child installs plus parent downgrades
	copies uint64 // leaf entries copied into the child
	nodes  uint64 // mirror page-table pages allocated
}

// charge applies the accumulated events to the meter in one batch.
func (cc *cloneCounts) charge(m *cost.Meter) {
	m.Charge(cost.Ticks(cc.writes)*m.Model.PTEWrite + cost.Ticks(cc.nodes)*m.Model.PTNodeAlloc)
	m.PTECopies += cc.copies
	m.PTNodes += cc.nodes
}

// CloneCOW builds a copy of t for a forked child: every private
// mapping is downgraded to read-only + COW in *both* tables and its
// frame reference count incremented; shared mappings are copied
// verbatim with an extra reference. The walk allocates a mirror node
// for every page-table page and writes one entry per mapping — the
// Θ(address-space size) loop at the heart of fork's cost.
//
// Both local TLBs are flushed (the parent's mappings just lost their
// write permission). On a multicore machine the downgrade must also
// reach every other CPU running the parent; that per-remote-CPU
// shootdown IPI is charged by addrspace.CloneCOW, which knows the
// space's CPU residency.
func (t *Table) CloneCOW() *Table {
	child := New(t.phys, t.meter)
	var cc cloneCounts
	t.root = child.cloneNode(t.root, child.root, Levels-1, &cc)
	child.nodes = int(cc.nodes)
	child.entries = t.entries
	child.hugeEntries = t.hugeEntries
	cc.charge(t.meter)
	t.FlushTLB()
	child.FlushTLB()
	return child
}

// cloneNode returns the parent-side node it downgraded through — pn
// itself, or an owned copy when pn was template-shared — so the caller
// (and CloneCOW for the root) can relink it into the parent table.
func (c *Table) cloneNode(pn, cn *node, level int, cc *cloneCounts) *node {
	for i := 0; i < entriesPerNode; i++ {
		if level == 0 || (level == 1 && pn.ptes[i].Present() && pn.ptes[i].Huge()) {
			e := pn.ptes[i]
			if !e.Present() {
				continue
			}
			if e.Shared() {
				// Shared mapping: same frame, full perms.
				c.phys.IncRef(e.Frame())
				cn.ptes[i] = e
				cc.writes++
				cc.copies++
				continue
			}
			// Private mapping: drop write permission on both
			// sides and tag COW (even already-read-only pages
			// get the frame shared; keeping COW only on pages
			// that were writable preserves their eventual
			// write-back permission).
			c.phys.IncRef(e.Frame())
			shared := e.Without(FlagWritable)
			if e.Writable() || e.COW() {
				shared = shared.With(FlagCOW)
			}
			if shared != e {
				if pn.shared {
					pn = ownedCopy(pn)
				}
				pn.ptes[i] = shared
				cc.writes++
			}
			cn.ptes[i] = shared
			cc.writes++
			cc.copies++
			continue
		}
		if pn.kids[i] == nil {
			continue
		}
		cn.kids[i] = newNode()
		cc.nodes++
		if nk := c.cloneNode(pn.kids[i], cn.kids[i], level-1, cc); nk != pn.kids[i] {
			if pn.shared {
				pn = ownedCopy(pn)
			}
			pn.kids[i] = nk
		}
	}
	return pn
}

// CloneEager builds a fully copied table for a child, 1970s-style: a
// fresh frame is allocated and the contents copied for every private
// mapping. Used by the kernel's EagerFork ablation. It can fail with
// ENOMEM mid-way; the partially built table is returned along with the
// error so the caller can destroy it.
func (t *Table) CloneEager() (*Table, error) {
	child := New(t.phys, t.meter)
	var cc cloneCounts
	err := child.cloneEagerNode(t.root, child.root, Levels-1, &cc)
	child.nodes = int(cc.nodes)
	// Charge even on the ENOMEM path: the work up to the failure
	// happened and its cost is real.
	cc.charge(t.meter)
	return child, err
}

func (c *Table) cloneEagerNode(pn, cn *node, level int, cc *cloneCounts) error {
	for i := 0; i < entriesPerNode; i++ {
		if level == 0 || (level == 1 && pn.ptes[i].Present() && pn.ptes[i].Huge()) {
			e := pn.ptes[i]
			if !e.Present() {
				continue
			}
			if e.Shared() {
				c.phys.IncRef(e.Frame())
				cn.ptes[i] = e
			} else {
				nf, err := c.phys.CopyFrame(e.Frame())
				if err != nil {
					return err
				}
				cn.ptes[i] = Make(nf, e.Flags())
			}
			cc.writes++
			cc.copies++
			c.entries++
			if e.Huge() {
				c.hugeEntries++
			}
			continue
		}
		if pn.kids[i] == nil {
			continue
		}
		cn.kids[i] = newNode()
		cc.nodes++
		if err := c.cloneEagerNode(pn.kids[i], cn.kids[i], level-1, cc); err != nil {
			return err
		}
	}
	return nil
}

// Destroy tears the tree down, invoking release for every present leaf
// entry (the caller drops frame references there) and charging the
// node-free cost for every page-table page including the root.
func (t *Table) Destroy(release func(va uint64, e PTE)) {
	freed := uint64(1) // the root
	t.destroyNode(t.root, 0, Levels-1, release, &freed)
	if !t.root.shared {
		putNode(t.root)
	}
	t.root = nil
	t.meter.Charge(cost.Ticks(freed) * t.meter.Model.PTNodeFree)
	t.entries, t.nodes, t.hugeEntries = 0, 0, 0
	for i := range t.tlb {
		t.tlb[i].valid = false
	}
}

// destroyNode zeroes every slot as it walks, so each node goes back to
// the pool fully cleared and newNode needs no re-initialisation. The
// per-node free cost is accumulated into freed and charged in one batch
// by Destroy. Template-shared nodes are left untouched and unpooled —
// other tables still alias them — but their frees are still counted:
// the clone logically owned and freed them, and the cold machine it
// must stay metric-identical to charges for every one.
func (t *Table) destroyNode(n *node, base uint64, level int, release func(uint64, PTE), freed *uint64) {
	span := uint64(1) << (mem.PageShift + uint(level)*LevelBits)
	for i := 0; i < entriesPerNode; i++ {
		va := base + uint64(i)*span
		if level == 0 || (level == 1 && n.ptes[i].Present() && n.ptes[i].Huge()) {
			if n.ptes[i].Present() && release != nil {
				release(va, n.ptes[i])
			}
			if !n.shared {
				n.ptes[i] = 0
			}
			continue
		}
		if kid := n.kids[i]; kid != nil {
			t.destroyNode(kid, va, level-1, release, freed)
			if !kid.shared {
				putNode(kid)
			}
			if !n.shared {
				n.kids[i] = nil
			}
			*freed++
		}
	}
}
