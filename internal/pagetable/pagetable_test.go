package pagetable

import (
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/mem"
)

func newTable() (*Table, *mem.Physical) {
	meter := cost.NewMeter(cost.DefaultModel())
	phys := mem.NewPhysical(meter, 64<<20, 0, mem.CommitHeuristic)
	return New(phys, meter), phys
}

func TestMapLookupUnmap(t *testing.T) {
	tbl, phys := newTable()
	f, _ := phys.Alloc()
	va := uint64(0x400000)
	tbl.Map(va, Make(f, FlagWritable))
	e, ok := tbl.Lookup(va)
	if !ok {
		t.Fatal("lookup after map failed")
	}
	if e.Frame() != f || !e.Writable() || !e.Present() {
		t.Errorf("entry = %v", e)
	}
	if tbl.Entries() != 1 {
		t.Errorf("Entries = %d", tbl.Entries())
	}
	// Lookups inside the same page resolve; the next page does not.
	if _, ok := tbl.Lookup(va + 4095); !ok {
		t.Error("intra-page lookup failed")
	}
	if _, ok := tbl.Lookup(va + 4096); ok {
		t.Error("next-page lookup should miss")
	}
	old, ok := tbl.Unmap(va)
	if !ok || old.Frame() != f {
		t.Fatalf("unmap: %v %v", old, ok)
	}
	if _, ok := tbl.Lookup(va); ok {
		t.Error("lookup after unmap should miss")
	}
	if tbl.Entries() != 0 {
		t.Errorf("Entries = %d after unmap", tbl.Entries())
	}
}

func TestNodesAccounting(t *testing.T) {
	tbl, phys := newTable()
	f, _ := phys.Alloc()
	// Two pages in the same leaf: 3 interior nodes + 1 leaf.
	tbl.Map(0x1000, Make(f, 0))
	before := tbl.Nodes()
	phys.IncRef(f)
	tbl.Map(0x2000, Make(f, 0))
	if tbl.Nodes() != before {
		t.Errorf("same-leaf map allocated %d nodes", tbl.Nodes()-before)
	}
	// A distant page allocates a fresh path (3 new nodes below root).
	phys.IncRef(f)
	tbl.Map(0x7f00_0000_0000, Make(f, 0))
	if got := tbl.Nodes() - before; got != 3 {
		t.Errorf("distant map allocated %d nodes, want 3", got)
	}
}

func TestHugeMapping(t *testing.T) {
	tbl, phys := newTable()
	h, err := phys.AllocHuge()
	if err != nil {
		t.Fatal(err)
	}
	va := uint64(0x4000_0000) // 2MiB aligned
	tbl.MapHuge(va, Make(h, FlagWritable))
	if tbl.Entries() != 1 || tbl.HugeEntries() != 1 {
		t.Errorf("entries=%d huge=%d", tbl.Entries(), tbl.HugeEntries())
	}
	// Any address inside the 2MiB region translates.
	for _, off := range []uint64{0, 4096, mem.HugeSize - 1} {
		e, ok := tbl.Lookup(va + off)
		if !ok || !e.Huge() || e.Frame() != h {
			t.Errorf("lookup at +%#x: %v %v", off, e, ok)
		}
	}
	old, ok := tbl.Unmap(va)
	if !ok || !old.Huge() {
		t.Fatalf("huge unmap failed")
	}
	if tbl.HugeEntries() != 0 {
		t.Error("huge entry count leak")
	}
}

func TestCloneCOWSemantics(t *testing.T) {
	tbl, phys := newTable()
	fw, _ := phys.Alloc() // writable private
	fr, _ := phys.Alloc() // read-only private (text)
	fs, _ := phys.Alloc() // shared
	tbl.Map(0x1000, Make(fw, FlagWritable))
	tbl.Map(0x2000, Make(fr, FlagExec))
	tbl.Map(0x3000, Make(fs, FlagWritable|FlagShared))

	child := tbl.CloneCOW()
	if child.Entries() != 3 {
		t.Fatalf("child entries = %d", child.Entries())
	}
	// All frames now have two references.
	for _, f := range []mem.FrameID{fw, fr, fs} {
		if phys.Refs(f) != 2 {
			t.Errorf("frame %d refs = %d, want 2", f, phys.Refs(f))
		}
	}
	// Writable private page: read-only + COW on both sides.
	for _, side := range []*Table{tbl, child} {
		e, _ := side.Lookup(0x1000)
		if e.Writable() || !e.COW() {
			t.Errorf("private page after clone: %v", e)
		}
		// Read-only page: stays read-only, no COW flag needed for
		// never-writable pages.
		e2, _ := side.Lookup(0x2000)
		if e2.Writable() || e2.COW() {
			t.Errorf("text page after clone: %v", e2)
		}
		// Shared page keeps write permission.
		e3, _ := side.Lookup(0x3000)
		if !e3.Writable() || e3.COW() || !e3.Shared() {
			t.Errorf("shared page after clone: %v", e3)
		}
	}
	child.Destroy(func(_ uint64, e PTE) { phys.DecRef(e.Frame()) })
	for _, f := range []mem.FrameID{fw, fr, fs} {
		if phys.Refs(f) != 1 {
			t.Errorf("frame %d refs = %d after child destroy", f, phys.Refs(f))
		}
	}
}

func TestCloneEagerCopies(t *testing.T) {
	tbl, phys := newTable()
	f, _ := phys.Alloc()
	phys.Write(f, 0, []byte("orig"))
	tbl.Map(0x1000, Make(f, FlagWritable))
	child, err := tbl.CloneEager()
	if err != nil {
		t.Fatal(err)
	}
	e, ok := child.Lookup(0x1000)
	if !ok {
		t.Fatal("child missing mapping")
	}
	if e.Frame() == f {
		t.Fatal("eager clone shared the frame")
	}
	if !e.Writable() {
		t.Error("eager clone lost write permission")
	}
	buf := make([]byte, 4)
	phys.Read(e.Frame(), 0, buf)
	if string(buf) != "orig" {
		t.Errorf("eager copy content = %q", buf)
	}
	if phys.Refs(f) != 1 {
		t.Errorf("source frame refs = %d, want 1", phys.Refs(f))
	}
}

func TestVisitOrderAndRewrite(t *testing.T) {
	tbl, phys := newTable()
	addrs := []uint64{0x9000, 0x1000, 0x4000_0000_0000, 0x5000}
	for _, va := range addrs {
		f, _ := phys.Alloc()
		tbl.Map(va, Make(f, FlagWritable))
	}
	var seen []uint64
	tbl.Visit(func(va uint64, e PTE) PTE {
		seen = append(seen, va)
		return e.With(FlagAccessed)
	})
	want := []uint64{0x1000, 0x5000, 0x9000, 0x4000_0000_0000}
	if len(seen) != len(want) {
		t.Fatalf("visited %d, want %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("visit[%d] = %#x, want %#x", i, seen[i], want[i])
		}
	}
	e, _ := tbl.Lookup(0x1000)
	if e&FlagAccessed == 0 {
		t.Error("rewrite did not stick")
	}
}

func TestDestroyReleasesEverything(t *testing.T) {
	tbl, phys := newTable()
	for i := uint64(0); i < 100; i++ {
		f, _ := phys.Alloc()
		tbl.Map(0x1000*(i+1), Make(f, FlagWritable))
	}
	n := 0
	tbl.Destroy(func(_ uint64, e PTE) {
		phys.DecRef(e.Frame())
		n++
	})
	if n != 100 {
		t.Errorf("released %d, want 100", n)
	}
	if phys.AllocatedPages() != 0 {
		t.Errorf("%d pages leaked", phys.AllocatedPages())
	}
}

func TestUpdatePreservesHuge(t *testing.T) {
	tbl, phys := newTable()
	h, _ := phys.AllocHuge()
	tbl.MapHuge(0x4000_0000, Make(h, FlagWritable))
	tbl.Update(0x4000_0000+8192, Make(h, FlagWritable|FlagDirty))
	e, ok := tbl.Lookup(0x4000_0000)
	if !ok || !e.Huge() || e&FlagDirty == 0 {
		t.Errorf("update lost huge bit or dirty: %v", e)
	}
}

// TestQuickShadowModel: a random sequence of map/unmap/update agrees
// with a plain map shadow.
func TestQuickShadowModel(t *testing.T) {
	type op struct {
		Kind uint8
		Slot uint16
	}
	f := func(ops []op) bool {
		tbl, phys := newTable()
		frame, _ := phys.Alloc()
		shadow := map[uint64]PTE{}
		for _, o := range ops {
			va := (uint64(o.Slot%1024) + 1) * 0x1000 * 7 // spread across leaves
			switch o.Kind % 3 {
			case 0:
				e := Make(frame, FlagWritable)
				if _, exists := shadow[va]; !exists {
					phys.IncRef(frame)
				}
				tbl.Map(va, e)
				shadow[va] = e | FlagPresent
			case 1:
				old, ok := tbl.Unmap(va)
				_, sok := shadow[va]
				if ok != sok {
					return false
				}
				if ok {
					phys.DecRef(old.Frame())
					delete(shadow, va)
				}
			case 2:
				if _, ok := shadow[va]; ok {
					e := Make(frame, FlagWritable|FlagDirty)
					tbl.Update(va, e)
					shadow[va] = e | FlagPresent
				}
			}
			if tbl.Entries() != len(shadow) {
				return false
			}
		}
		for va, want := range shadow {
			got, ok := tbl.Lookup(va)
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickCloneRefcounts: after CloneCOW, every mapped frame's
// reference count equals the number of tables mapping it.
func TestQuickCloneRefcounts(t *testing.T) {
	f := func(slots []uint16) bool {
		tbl, phys := newTable()
		seen := map[uint64]bool{}
		for _, s := range slots {
			va := (uint64(s%512) + 1) * 0x1000
			if seen[va] {
				continue
			}
			seen[va] = true
			fr, err := phys.Alloc()
			if err != nil {
				return true // machine full; skip
			}
			tbl.Map(va, Make(fr, FlagWritable))
		}
		child := tbl.CloneCOW()
		ok := true
		tbl.Visit(func(_ uint64, e PTE) PTE {
			if phys.Refs(e.Frame()) != 2 {
				ok = false
			}
			return e
		})
		child.Destroy(func(_ uint64, e PTE) { phys.DecRef(e.Frame()) })
		tbl.Visit(func(_ uint64, e PTE) PTE {
			if phys.Refs(e.Frame()) != 1 {
				ok = false
			}
			return e
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
