package pagetable

import (
	"repro/internal/cost"
	"repro/internal/mem"
)

// CloneHost duplicates the table's entire logical state — every radix
// node, PTE, counter, and the TLB — into a new table bound to the
// clone machine's physical memory and meter, without copying a single
// node: the clone aliases the source's radix tree, with every node
// flagged shared so the first write on any path copies just that
// path's nodes out (ownedCopy). Unlike CloneCOW this is a host-side
// operation — it charges nothing and touches no refcounts (the counts
// travel wholesale inside the cloned Physical) — so stamping a machine
// costs O(1) here regardless of how much is mapped.
//
// markSrc selects whether the source's nodes are (re)flagged shared.
// A snapshot into an immutable template passes true: the live source
// keeps running and must break sharing before writing nodes the
// template now aliases. Stamping from a frozen template passes false —
// its tree was marked when the template was made, so the stamp only
// reads it and concurrent stamps remain race-free without locks. (An
// unmarked source cloned with markSrc=false is marked anyway; that
// combination only arises single-threaded, outside the template
// contract.)
func (t *Table) CloneHost(phys *mem.Physical, meter *cost.Meter, markSrc bool) *Table {
	if markSrc || !t.root.shared {
		markShared(t.root, Levels-1)
	}
	return &Table{
		phys:        phys,
		meter:       meter,
		root:        t.root,
		nodes:       t.nodes,
		entries:     t.entries,
		hugeEntries: t.hugeEntries,
		tlb:         t.tlb,
	}
}

// markShared flags a subtree immutable-and-aliasable. A shared node's
// children are always already shared (ownership breaks copy top-down
// and never touch shared nodes), so the walk prunes there — repeated
// snapshots of a live machine only pay for nodes written since the
// last one.
func markShared(n *node, level int) {
	if n.shared {
		return
	}
	n.shared = true
	if level == 0 {
		return
	}
	for i := 0; i < entriesPerNode; i++ {
		if n.kids[i] != nil {
			markShared(n.kids[i], level-1)
		}
	}
}
