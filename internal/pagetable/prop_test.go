package pagetable_test

import (
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/mem"
	"repro/internal/pagetable"
)

// The property test drives a Table through random
// map/update/clone/unmap/destroy sequences — including huge-page and
// COW-flag interactions — and checks every observation against a flat
// map model of what the radix tree should contain. The same
// interpreter backs the fuzz target below, so a crashing byte string
// found by `go test -fuzz=FuzzTableOps` replays here verbatim.
//
// Virtual-address discipline: 4 KiB mappings live under PML4 slots
// 0–3 and huge mappings under slots 8–11, so randomly generated
// operations can never trip the deliberate "4K overlaps huge" panics —
// those are separate, intentional API misuse, pinned by the package's
// own tests.

const (
	maxLiveEntries = 1500
	propRAM        = uint64(2) << 30
)

type propHarness struct {
	t     testing.TB
	phys  *mem.Physical
	tab   *pagetable.Table
	model map[uint64]pagetable.PTE
	vas   []uint64 // live virtual addresses, insertion-ordered
}

func newPropHarness(t testing.TB) *propHarness {
	meter := cost.NewMeter(cost.DefaultModel())
	phys := mem.NewPhysical(meter, propRAM, 0, mem.CommitAlways)
	return &propHarness{
		t:     t,
		phys:  phys,
		tab:   pagetable.New(phys, meter),
		model: map[uint64]pagetable.PTE{},
	}
}

// va4k builds a base-page address under PML4 slots 0–3 spread across
// many page-table nodes; vaHuge builds a 2 MiB-aligned address under
// slots 8–11.
func va4k(sel byte, idx uint16) uint64 {
	return uint64(sel%4)<<39 + uint64(idx)*uint64(mem.PageSize)
}

func vaHuge(sel byte, idx uint16) uint64 {
	return uint64(8+sel%4)<<39 + uint64(idx%512)*uint64(mem.HugeSize)
}

// randFlags keeps the frame bits clear and avoids the contradictory
// Shared+COW combination the kernel never produces.
func randFlags(b byte) pagetable.PTE {
	var f pagetable.PTE
	if b&1 != 0 {
		f |= pagetable.FlagWritable
	}
	if b&2 != 0 {
		f |= pagetable.FlagExec
	}
	if b&4 != 0 {
		f |= pagetable.FlagDirty
	}
	if b&8 != 0 {
		f |= pagetable.FlagAccessed
	}
	if b&16 != 0 {
		f |= pagetable.FlagShared
	} else if b&32 != 0 {
		f |= pagetable.FlagCOW
	}
	return f
}

func (h *propHarness) track(va uint64, e pagetable.PTE) {
	if _, ok := h.model[va]; !ok {
		h.vas = append(h.vas, va)
	}
	h.model[va] = e
}

func (h *propHarness) untrack(va uint64) {
	delete(h.model, va)
	for i, v := range h.vas {
		if v == va {
			h.vas[i] = h.vas[len(h.vas)-1]
			h.vas = h.vas[:len(h.vas)-1]
			return
		}
	}
}

// pick returns a live va, deterministically from r.
func (h *propHarness) pick(r uint16) (uint64, bool) {
	if len(h.vas) == 0 {
		return 0, false
	}
	return h.vas[int(r)%len(h.vas)], true
}

// unmapAt removes va from table and model, dropping the frame ref, and
// checks the table handed back exactly the modelled entry.
func (h *propHarness) unmapAt(va uint64) {
	want := h.model[va]
	got, ok := h.tab.Unmap(va)
	if !ok || got != want {
		h.t.Fatalf("Unmap(%#x) = %v, %v; model holds %v", va, got, ok, want)
	}
	h.phys.DecRef(got.Frame())
	h.untrack(va)
}

// verify walks the whole tree and compares it, entry for entry,
// against the flat model.
func (h *propHarness) verify(tag string, tab *pagetable.Table, model map[uint64]pagetable.PTE) {
	seen := map[uint64]pagetable.PTE{}
	tab.Visit(func(va uint64, e pagetable.PTE) pagetable.PTE {
		seen[va] = e
		return e
	})
	if len(seen) != len(model) {
		h.t.Fatalf("%s: table has %d entries, model %d", tag, len(seen), len(model))
	}
	hugeCount := 0
	for va, want := range model {
		got, ok := seen[va]
		if !ok {
			h.t.Fatalf("%s: model entry %#x missing from table", tag, va)
		}
		if got != want|pagetable.FlagPresent {
			h.t.Fatalf("%s: entry %#x = %v, model %v", tag, va, got, want|pagetable.FlagPresent)
		}
		if want.Huge() {
			hugeCount++
		}
		// The point lookup must agree with the walk (TLB coherence).
		le, ok := tab.Lookup(va)
		if !ok || le != got {
			h.t.Fatalf("%s: Lookup(%#x) = %v, %v; walk saw %v", tag, va, le, ok, got)
		}
	}
	if tab.Entries() != len(model) || tab.HugeEntries() != hugeCount {
		h.t.Fatalf("%s: counters Entries=%d HugeEntries=%d, model %d/%d",
			tag, tab.Entries(), tab.HugeEntries(), len(model), hugeCount)
	}
}

// cloneModels derives the post-CloneCOW parent and child models: both
// sides of a private mapping lose write permission and gain COW (if it
// was ever writable); shared mappings pass through untouched.
func cloneModels(parent map[uint64]pagetable.PTE) (newParent, child map[uint64]pagetable.PTE) {
	newParent = map[uint64]pagetable.PTE{}
	child = map[uint64]pagetable.PTE{}
	for va, e := range parent {
		if e.Shared() {
			newParent[va] = e
			child[va] = e
			continue
		}
		shared := e.Without(pagetable.FlagWritable)
		if e.Writable() || e.COW() {
			shared = shared.With(pagetable.FlagCOW)
		}
		newParent[va] = shared
		child[va] = shared
	}
	return newParent, child
}

// step consumes up to 4 bytes of ops and applies one operation.
func (h *propHarness) step(op, b1 byte, r uint16) {
	switch op % 8 {
	case 0, 1: // map a 4 KiB page
		if len(h.model) >= maxLiveEntries {
			return
		}
		va := va4k(b1, r)
		if _, ok := h.model[va]; ok {
			h.unmapAt(va) // replacing in place would leak the old frame
		}
		f, err := h.phys.Alloc()
		if err != nil {
			return // RAM exhausted; other ops continue
		}
		e := pagetable.Make(f, randFlags(op))
		h.tab.Map(va, e)
		h.track(va, e|pagetable.FlagPresent)
	case 2: // map a 2 MiB page
		if len(h.model) >= maxLiveEntries {
			return
		}
		va := vaHuge(b1, r)
		if _, ok := h.model[va]; ok {
			h.unmapAt(va)
		}
		f, err := h.phys.AllocHuge()
		if err != nil {
			return
		}
		e := pagetable.Make(f, randFlags(op))
		h.tab.MapHuge(va, e)
		h.track(va, e|pagetable.FlagPresent|pagetable.FlagHuge)
	case 3: // unmap a live entry
		if va, ok := h.pick(r); ok {
			h.unmapAt(va)
		}
	case 4: // rewrite a live entry's flags, keeping its frame
		va, ok := h.pick(r)
		if !ok {
			return
		}
		old := h.model[va]
		e := pagetable.Make(old.Frame(), randFlags(b1))
		h.tab.Update(va, e)
		want := e | pagetable.FlagPresent
		if old.Huge() {
			want |= pagetable.FlagHuge
		}
		h.model[va] = want
	case 5: // point lookup, hit or miss
		var va uint64
		if b1&1 == 0 {
			va, _ = h.pick(r)
		} else {
			va = va4k(b1, r)
		}
		got, ok := h.tab.Lookup(va)
		want, wok := h.model[va]
		if ok != wok || (ok && got != want) {
			h.t.Fatalf("Lookup(%#x) = %v, %v; model %v, %v", va, got, ok, want, wok)
		}
	case 6: // COW clone: check both tables, then tear the child down
		newParent, childModel := cloneModels(h.model)
		child := h.tab.CloneCOW()
		h.model = newParent
		h.verify("post-clone parent", h.tab, newParent)
		h.verify("clone child", child, childModel)
		child.Destroy(func(va uint64, e pagetable.PTE) {
			h.phys.DecRef(e.Frame())
		})
	case 7: // eager clone: fresh frames for private entries
		child, err := h.tab.CloneEager()
		if err != nil {
			// Mid-clone ENOMEM: the partial table must still tear
			// down cleanly without corrupting refcounts.
			child.Destroy(func(va uint64, e pagetable.PTE) {
				h.phys.DecRef(e.Frame())
			})
			return
		}
		seen := map[uint64]pagetable.PTE{}
		child.Visit(func(va uint64, e pagetable.PTE) pagetable.PTE {
			seen[va] = e
			return e
		})
		if len(seen) != len(h.model) {
			h.t.Fatalf("eager clone: %d entries, model %d", len(seen), len(h.model))
		}
		for va, want := range h.model {
			got, ok := seen[va]
			if !ok || got.Flags() != want.Flags() {
				h.t.Fatalf("eager clone entry %#x = %v (ok=%v), want flags of %v", va, got, ok, want)
			}
			if !want.Shared() && got.Frame() == want.Frame() {
				h.t.Fatalf("eager clone shares private frame at %#x", va)
			}
			if want.Shared() && got.Frame() != want.Frame() {
				h.t.Fatalf("eager clone copied shared frame at %#x", va)
			}
		}
		child.Destroy(func(va uint64, e pagetable.PTE) {
			h.phys.DecRef(e.Frame())
		})
	}
}

// runOps interprets ops 4 bytes at a time, then destroys the table and
// checks that every physical frame came back.
func runOps(t testing.TB, ops []byte) {
	h := newPropHarness(t)
	for i := 0; i+4 <= len(ops); i += 4 {
		h.step(ops[i], ops[i+1], uint16(ops[i+2])|uint16(ops[i+3])<<8)
	}
	h.verify("final", h.tab, h.model)
	h.tab.Destroy(func(va uint64, e pagetable.PTE) {
		h.phys.DecRef(e.Frame())
	})
	if got := h.phys.AllocatedPages(); got != 0 {
		t.Fatalf("frame leak: %d pages still allocated after Destroy", got)
	}
}

// TestTableProperties runs the interpreter over seeded random op
// streams — deterministic, so failures reproduce.
func TestTableProperties(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ops := make([]byte, 6000)
		rng.Read(ops)
		t.Run(string(rune('A'+seed)), func(t *testing.T) {
			runOps(t, ops)
		})
	}
}

// FuzzTableOps lets the fuzzer hunt for byte strings the random seeds
// miss; the corpus replays as ordinary tests.
func FuzzTableOps(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 1, 2, 3, 2, 1, 0, 0, 6, 0, 0, 0, 3, 0, 0, 0})
	rng := rand.New(rand.NewSource(99))
	seed := make([]byte, 256)
	rng.Read(seed)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 1<<16 {
			ops = ops[:1<<16]
		}
		runOps(t, ops)
	})
}
