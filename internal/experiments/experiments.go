// Package experiments regenerates every figure and table of the
// evaluation in "A fork() in the road" (HotOS'19), plus the ablation
// experiments DESIGN.md calls out. Each experiment is a pure function
// of its configuration: the simulator is deterministic, so repeated
// runs produce identical numbers.
//
// Experiment index (see DESIGN.md for the paper mapping):
//
//	Figure1    — process-creation latency vs parent address-space size
//	Table1     — executable semantics matrix: fork vs alternatives
//	CowTax     — E3: post-fork copy-on-write write amplification
//	HugePages  — E4: fork cost with 4 KiB vs 2 MiB mappings
//	Overcommit — E5: fork of large processes under commit policies
//	Compose    — E6: the §4.2 composition failures, executed
//	Scale      — E7: creation throughput vs parent size per method
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/addrspace"
	"repro/internal/kernel"
	"repro/internal/mem"
)

// KiB/MiB/GiB sizes.
const (
	KiB = uint64(1) << 10
	MiB = uint64(1) << 20
	GiB = uint64(1) << 30
)

// NewKernel builds a quiet kernel for experiments with the ulib
// binaries expected at /bin installed by the caller (see helpers in
// each experiment). Zero RAMBytes/NumCPUs select the conventional
// 4 GiB single-CPU machine; experiment configurations are constants,
// so a validation failure is a bug and panics.
func NewKernel(opts kernel.Options) *kernel.Kernel {
	if opts.RAMBytes == 0 {
		opts.RAMBytes = 4 * GiB
	}
	if opts.NumCPUs == 0 {
		opts.NumCPUs = 1
	}
	k, err := kernel.New(opts)
	if err != nil {
		panic(err)
	}
	return k
}

// BuildParent creates a synthetic process whose anonymous working set
// is size bytes, write-touched so every page is resident and dirty —
// the "process of size X" on Figure 1's x-axis. With huge=true the
// region uses 2 MiB pages.
func BuildParent(k *kernel.Kernel, name string, size uint64, huge bool) (*kernel.Process, error) {
	p := k.NewSynthetic(name, nil)
	if size == 0 {
		return p, nil
	}
	ps := uint64(mem.PageSize)
	if huge {
		ps = mem.HugeSize
	}
	size = (size + ps - 1) &^ (ps - 1)
	vma, err := p.Space().Map(0, size, addrspace.Read|addrspace.Write, addrspace.MapOpts{
		Kind: addrspace.KindAnon, Name: "workset", Huge: huge,
	})
	if err != nil {
		k.DestroyProcess(p)
		return nil, fmt.Errorf("experiments: map %d bytes: %w", size, err)
	}
	if err := p.Space().Touch(vma.Start, size, addrspace.AccessWrite); err != nil {
		k.DestroyProcess(p)
		return nil, fmt.Errorf("experiments: touch: %w", err)
	}
	return p, nil
}

// HumanBytes formats a byte count compactly (powers of two).
func HumanBytes(n uint64) string {
	switch {
	case n >= GiB && n%GiB == 0:
		return fmt.Sprintf("%dGiB", n/GiB)
	case n >= MiB && n%MiB == 0:
		return fmt.Sprintf("%dMiB", n/MiB)
	case n >= KiB && n%KiB == 0:
		return fmt.Sprintf("%dKiB", n/KiB)
	}
	return fmt.Sprintf("%dB", n)
}

// SizeSweep returns a doubling size series [min, max].
func SizeSweep(min, max uint64) []uint64 {
	var out []uint64
	for s := min; s <= max; s *= 2 {
		out = append(out, s)
	}
	return out
}

// renderTable aligns rows of cells into a text table. The first row is
// the header.
func renderTable(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	width := make([]int, len(rows[0]))
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for ri, r := range rows {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteString("\n")
		if ri == 0 {
			for i, w := range width {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
