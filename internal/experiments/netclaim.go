package experiments

import (
	"fmt"

	"repro/sim"
	"repro/sim/load"
)

// ---------------------------------------------------------------
// E15 — the re-warm tax on the wire. The fleet experiments (E10, E12)
// measure fork's Θ(heap) warm-up as latency a machine pays by itself;
// E15 puts the same tax behind a load balancer and watches it become
// other machines' problem. The netlb cell restarts one backend mid-run
// (a deploy, a crash — routine either way). The replacement re-warms
// its worker pool before serving: Θ(heap) page-table duplication per
// worker under fork, flat under spawn. The client's retry timeout sits
// between those two warm-up times, so under fork every request queued
// behind the restart times out and retries against the other backends
// — a retry storm radiating from one machine's restart — while the
// spawn pool absorbs the restart without a single timeout.
// ---------------------------------------------------------------

// NetClaimConfig parameterizes E15; zero fields get defaults.
type NetClaimConfig struct {
	HeapBytes uint64 // backend server heap (default 64 MiB)
	Requests  int    // client requests per run (default 64)
	Nodes     int    // backend pool size (default 2)
}

// NetClaimPoint is one strategy's run of the netlb restart cell.
type NetClaimPoint struct {
	Strategy string
	M        *load.Metrics
}

// NetClaimResult is E15.
type NetClaimResult struct {
	HeapBytes uint64
	Requests  int
	Nodes     int
	Points    []NetClaimPoint
}

// NetClaim runs E15: the netlb scenario (L7 balancer, backend 0
// restarts after a third of the traffic) under fork vs spawn.
// Deterministic: the cell is a single-threaded virtual-time event
// loop, so the table is a pure function of the config.
func NetClaim(cfg NetClaimConfig) (*NetClaimResult, error) {
	if cfg.HeapBytes == 0 {
		cfg.HeapBytes = 64 * MiB
	}
	if cfg.Requests == 0 {
		cfg.Requests = 64
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = 2
	}
	res := &NetClaimResult{
		HeapBytes: cfg.HeapBytes, Requests: cfg.Requests, Nodes: cfg.Nodes,
	}
	for _, via := range []sim.Strategy{sim.ForkExec, sim.Spawn} {
		m, err := load.Run(load.Config{
			Scenario:  load.NetLB,
			Via:       via,
			Requests:  cfg.Requests,
			HeapBytes: cfg.HeapBytes,
			Nodes:     cfg.Nodes,
		})
		if err != nil {
			return nil, fmt.Errorf("netclaim %v: %w", via, err)
		}
		res.Points = append(res.Points, NetClaimPoint{Strategy: via.String(), M: m})
	}
	return res, nil
}

// Render formats E15 as a table: the same restart, fork vs spawn, with
// the retry storm in the timeout and retry columns.
func (r *NetClaimResult) Render() string {
	rows := [][]string{{
		"strategy",
		"served", "failed", "timeouts", "retries",
		"net pkts", "makespan",
	}}
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Strategy,
			fmt.Sprint(p.M.Requests),
			fmt.Sprint(p.M.FailedRequests),
			fmt.Sprint(p.M.NetTimeouts),
			fmt.Sprint(p.M.NetRetries),
			fmt.Sprint(p.M.NetPacketsSent),
			fmt.Sprintf("%.1fms", float64(p.M.VirtualNanos)/1e6),
		})
	}
	head := fmt.Sprintf(
		"E15 — one backend restart behind a load balancer (netlb, heap %s, %d requests, %d backends):\n"+
			"the restarted backend re-warms its worker pool before serving — Θ(heap) page-table\n"+
			"duplication per worker under fork, flat under spawn. The client retry timeout sits\n"+
			"between the two warm-up times, so fork turns the restart into a retry storm the\n"+
			"spawn pool simply absorbs.\n\n",
		HumanBytes(r.HeapBytes), r.Requests, r.Nodes)
	return head + renderTable(rows)
}
