package experiments

import (
	"fmt"

	"repro/sim"
	"repro/sim/fleet"
	"repro/sim/load"
)

// ---------------------------------------------------------------
// E9 — the §5 multicore claim: fork is a poor fit for SMP hardware.
// COW-snapshotting a multithreaded server means downgrading its page
// tables while its threads run on other cores, which costs one TLB-
// shootdown IPI per remote core at the snapshot and another round per
// post-snapshot COW break. A fork-less kernel snapshots through the
// cross-process API: Θ(heap) copying, but no IPIs — so its cost is
// flat in the core count. The sweep drives sim/load's smpserver
// scenario (one spinning worker thread per CPU, snapshots taken
// mid-traffic) and the buildfarm scenario (parallel job launches) at
// 1/2/4/8 CPUs.
// ---------------------------------------------------------------

// CPUSweepPoint is one CPU count's measurements.
type CPUSweepPoint struct {
	CPUs int

	// Fork is the smpserver run snapshotting via COW fork; Flat is
	// the same run snapshotting via the fork-less cross-process
	// path (what spawn-only kernels do).
	Fork *load.Metrics
	Flat *load.Metrics

	// FarmFork/FarmSpawn are buildfarm throughput via fork vs spawn.
	FarmFork  *load.Metrics
	FarmSpawn *load.Metrics
}

// ForkIPIsPerSnapshot is the per-snapshot remote-core invalidation
// count under fork — the quantity that must grow with CPUs.
func (p CPUSweepPoint) ForkIPIsPerSnapshot() float64 {
	if p.Fork.Requests == 0 {
		return 0
	}
	return float64(p.Fork.TLBShootdowns) / float64(p.Fork.Requests)
}

// FlatIPIsPerSnapshot is the same figure for the fork-less snapshot
// (expected: 0 at every core count).
func (p CPUSweepPoint) FlatIPIsPerSnapshot() float64 {
	if p.Flat.Requests == 0 {
		return 0
	}
	return float64(p.Flat.TLBShootdowns) / float64(p.Flat.Requests)
}

// CPUSweepResult is E9.
type CPUSweepResult struct {
	HeapBytes uint64
	Snapshots int
	Points    []CPUSweepPoint
}

// CPUSweepConfig parameterizes CPUSweep; zero fields get defaults.
type CPUSweepConfig struct {
	HeapBytes uint64 // server heap (default 32 MiB)
	Snapshots int    // snapshot cycles per run (default 6)
	FarmJobs  int    // buildfarm jobs per CPU (default 16)
	CPUCounts []int  // default {1, 2, 4, 8}
}

// CPUSweep runs E9. Deterministic: same config, same numbers.
func CPUSweep(cfg CPUSweepConfig) (*CPUSweepResult, error) {
	if cfg.HeapBytes == 0 {
		cfg.HeapBytes = 32 * MiB
	}
	if cfg.Snapshots == 0 {
		cfg.Snapshots = 6
	}
	if cfg.FarmJobs == 0 {
		cfg.FarmJobs = 16
	}
	if len(cfg.CPUCounts) == 0 {
		cfg.CPUCounts = []int{1, 2, 4, 8}
	}
	res := &CPUSweepResult{HeapBytes: cfg.HeapBytes, Snapshots: cfg.Snapshots}
	// Four cells per CPU count, fanned out across host cores and
	// position-merged: [fork server, flat server, fork farm, spawn
	// farm] for each count, in order.
	var cfgs []load.Config
	for _, cpus := range cfg.CPUCounts {
		server := load.Config{
			Scenario: load.SMPServer, CPUs: cpus,
			Requests: cfg.Snapshots, HeapBytes: cfg.HeapBytes,
		}
		server.Via = sim.ForkExec
		cfgs = append(cfgs, server)
		server.Via = sim.Spawn // fork-less: snapshots via the cross-process API
		cfgs = append(cfgs, server)
		farm := load.Config{
			Scenario: load.BuildFarm, CPUs: cpus,
			Requests: cfg.FarmJobs * cpus, HeapBytes: cfg.HeapBytes,
		}
		farm.Via = sim.ForkExec
		cfgs = append(cfgs, farm)
		farm.Via = sim.Spawn
		cfgs = append(cfgs, farm)
	}
	ms, err := fleet.RunAll(0, cfgs)
	if err != nil {
		return nil, fmt.Errorf("cpusweep: %w", err)
	}
	for i, cpus := range cfg.CPUCounts {
		res.Points = append(res.Points, CPUSweepPoint{
			CPUs:      cpus,
			Fork:      ms[4*i],
			Flat:      ms[4*i+1],
			FarmFork:  ms[4*i+2],
			FarmSpawn: ms[4*i+3],
		})
	}
	return res, nil
}

// Render formats E9 as a table.
func (r *CPUSweepResult) Render() string {
	rows := [][]string{{
		"cpus",
		"fork IPIs/snap", "flat IPIs/snap",
		"fork COW copies", "fork server-cpu", "flat server-cpu",
		"farm fork req/s", "farm spawn req/s", "spawn/fork",
	}}
	for _, p := range r.Points {
		ratio := 0.0
		if p.FarmFork.RequestsPerVSec > 0 {
			ratio = p.FarmSpawn.RequestsPerVSec / p.FarmFork.RequestsPerVSec
		}
		rows = append(rows, []string{
			fmt.Sprint(p.CPUs),
			fmt.Sprintf("%.0f", p.ForkIPIsPerSnapshot()),
			fmt.Sprintf("%.0f", p.FlatIPIsPerSnapshot()),
			fmt.Sprint(p.Fork.PageCopies),
			fmt.Sprintf("%.1fms", float64(p.Fork.ServerCPUNanos)/1e6),
			fmt.Sprintf("%.1fms", float64(p.Flat.ServerCPUNanos)/1e6),
			fmt.Sprintf("%.0f", p.FarmFork.RequestsPerVSec),
			fmt.Sprintf("%.0f", p.FarmSpawn.RequestsPerVSec),
			fmt.Sprintf("%.2fx", ratio),
		})
	}
	head := fmt.Sprintf(
		"E9 — fork on multicore (heap %s, %d snapshots mid-traffic):\n"+
			"fork's snapshot tax grows with the core count (one IPI per remote core\n"+
			"per COW event); the fork-less snapshot and spawn-based job launch stay flat.\n\n",
		HumanBytes(r.HeapBytes), r.Snapshots)
	return head + renderTable(rows)
}
