package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/sim"
	"repro/sim/fleet"
	"repro/sim/load"
)

// ---------------------------------------------------------------
// E14 — the host-time trajectory: how fast does this computer
// simulate fleets, and in how much memory. E13 measured one lever
// (template stamping); E14 measures the whole host-scale pipeline —
// stamp rate (fresh vs recycled shells), machines simulated per host
// second over a fleet-size ladder, simulated requests per host second,
// and the process's peak RSS — the numbers `BENCH_HOST.json` tracks
// next to the virtual-time BENCH_PR*.json so raw-speed wins (or
// regressions) are visible in review, not just felt. Host-timed, so
// the numbers vary run to run and machine to machine; the trajectory
// file records them per runner, and CI publishes a fresh one as an
// informational artifact rather than gating on it.
// ---------------------------------------------------------------

// HostPoint is one fleet size's host-side measurements.
type HostPoint struct {
	// Machines is the fleet size of this point (uniform scenario).
	Machines int
	// HostNanos is the wall-clock the whole fleet run took.
	HostNanos int64
	// MachinesPerSec is machines simulated per host second.
	MachinesPerSec float64
	// SimRequests is the fleet's total simulated request count.
	SimRequests uint64
	// SimReqPerHostSec is simulated requests completed per host
	// second — the headline throughput number (the virtual-time rate
	// is in ReqPerVSec for contrast).
	SimReqPerHostSec float64
	// ReqPerVSec is the fleet's aggregate virtual-time rate
	// (Aggregate.RequestsPerVSec) — a pure function of the spec,
	// unlike everything else here.
	ReqPerVSec float64
	// PeakRSSBytes is the host process's peak resident set after the
	// run (worst worker process when sharded).
	PeakRSSBytes uint64
}

// HostBenchResult is E14: the stamp-rate probes plus the ladder.
type HostBenchResult struct {
	// GOMAXPROCS and Shards record the host shape the numbers were
	// measured on.
	GOMAXPROCS int
	Shards     int
	// HeapBytes and RequestsPerMachine pin the per-machine workload.
	HeapBytes          uint64
	RequestsPerMachine int

	// StampNanos is the mean host time to stamp one machine from a
	// frozen template into a fresh shell; RecycledStampNanos stamps
	// into a recycled shell (sim.Template.Release), the fleet loop's
	// steady state.
	StampNanos         int64
	RecycledStampNanos int64

	Points []HostPoint
}

// HostBenchConfig parameterizes HostBench; zero fields get defaults.
type HostBenchConfig struct {
	Sizes         []int  // fleet-size ladder (default {256, 1024, 4096})
	Requests      int    // requests per machine (default 8)
	HeapBytes     uint64 // per-machine server heap (default 4 MiB)
	Shards        int    // worker processes per fleet run (0 = in-process)
	StampMachines int    // stamps per stamp-rate probe (default 2048)
}

// stampRates measures the template stamp paths: clone into a fresh
// shell per stamp, then clone into the recycled shell of the previous
// stamp — the allocation-reuse fast path a streaming fleet sits on.
func stampRates(heap uint64, stamps int) (fresh, recycled int64, err error) {
	cfg := load.Config{Scenario: load.Prefork, Via: sim.Spawn, CPUs: 1, HeapBytes: heap}
	shape := cfg.Shape()
	sys, err := sim.NewSystem(
		sim.WithRAM(shape.RAMBytes),
		sim.WithCPUs(shape.CPUs),
		sim.WithUserland("true", "echo", "cat", "hog", "smpspin"),
	)
	if err != nil {
		return 0, 0, err
	}
	if _, err := load.Prepare(sys, cfg); err != nil {
		return 0, 0, err
	}
	tpl, err := sys.Snapshot()
	if err != nil {
		return 0, 0, err
	}

	t0 := time.Now()
	for i := 0; i < stamps; i++ {
		if _, err := tpl.Clone(); err != nil {
			return 0, 0, err
		}
	}
	fresh = time.Since(t0).Nanoseconds() / int64(stamps)

	t0 = time.Now()
	for i := 0; i < stamps; i++ {
		clone, err := tpl.Clone()
		if err != nil {
			return 0, 0, err
		}
		tpl.Release(clone)
	}
	recycled = time.Since(t0).Nanoseconds() / int64(stamps)
	return fresh, recycled, nil
}

// HostBench runs E14. Host-timed end to end: every number but the
// virtual-time rate varies with the machine it runs on.
func HostBench(cfg HostBenchConfig) (*HostBenchResult, error) {
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = []int{256, 1024, 4096}
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 8
	}
	if cfg.HeapBytes == 0 {
		cfg.HeapBytes = 4 * MiB
	}
	if cfg.StampMachines <= 0 {
		cfg.StampMachines = 2048
	}
	res := &HostBenchResult{
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		Shards:             cfg.Shards,
		HeapBytes:          cfg.HeapBytes,
		RequestsPerMachine: cfg.Requests,
	}
	var err error
	if res.StampNanos, res.RecycledStampNanos, err = stampRates(cfg.HeapBytes, cfg.StampMachines); err != nil {
		return nil, fmt.Errorf("stamp probe: %w", err)
	}
	for _, n := range cfg.Sizes {
		fr, err := fleet.Run(fleet.Spec{
			Machines:  n,
			Scenario:  fleet.Uniform,
			Via:       sim.Spawn,
			CPUs:      1,
			Requests:  cfg.Requests,
			HeapBytes: cfg.HeapBytes,
			Shards:    cfg.Shards,
		})
		if err != nil {
			return nil, fmt.Errorf("fleet of %d: %w", n, err)
		}
		secs := fr.HostElapsed.Seconds()
		pt := HostPoint{
			Machines:     n,
			HostNanos:    fr.HostElapsed.Nanoseconds(),
			SimRequests:  fr.Aggregate.TotalRequests,
			ReqPerVSec:   fr.Aggregate.RequestsPerVSec,
			PeakRSSBytes: fr.HostPeakRSSBytes,
		}
		if secs > 0 {
			pt.MachinesPerSec = float64(n) / secs
			pt.SimReqPerHostSec = float64(fr.Aggregate.TotalRequests) / secs
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Render formats E14 as a claim table.
func (r *HostBenchResult) Render() string {
	rows := [][]string{{
		"machines", "host time", "machines/s", "sim req/host-s", "req/virt-s", "peak RSS",
	}}
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprint(p.Machines),
			fmt.Sprintf("%.1fms", float64(p.HostNanos)/1e6),
			fmt.Sprintf("%.0f", p.MachinesPerSec),
			fmt.Sprintf("%.0f", p.SimReqPerHostSec),
			fmt.Sprintf("%.0f", p.ReqPerVSec),
			HumanBytes(p.PeakRSSBytes),
		})
	}
	head := fmt.Sprintf("E14 — host-time trajectory: fleets of spawn-strategy prefork machines (%s heap, %d requests\n",
		HumanBytes(r.HeapBytes), r.RequestsPerMachine) +
		fmt.Sprintf("each) simulated on GOMAXPROCS=%d, %d shard worker process(es). HOST wall-clock — unlike the\n",
			r.GOMAXPROCS, r.Shards) +
		"virtual-time tables these numbers vary run to run; BENCH_HOST.json records the trajectory.\n" +
		fmt.Sprintf("Template stamp: %.1fµs/machine fresh, %.1fµs/machine into a recycled shell.\n\n",
			float64(r.StampNanos)/1e3, float64(r.RecycledStampNanos)/1e3)
	return head + renderTable(rows)
}
