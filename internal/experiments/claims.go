package experiments

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/addrspace"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/errno"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/ulib"
)

// ---------------------------------------------------------------
// E3 — the COW tax (§4.4): after a fork, writes by either side fault
// and copy, so both processes pay for memory they already "owned".
// ---------------------------------------------------------------

// CowTaxResult reports per-page write cost in three regimes.
type CowTaxResult struct {
	Pages            uint64
	PreForkPerPage   cost.Ticks // rewrite of private resident memory
	ParentPerPage    cost.Ticks // same rewrite immediately after fork
	ChildPerPage     cost.Ticks // the child writing its inherited set
	PageCopiesParent uint64
}

// CowTax measures E3 with a working set of the given size.
func CowTax(size uint64) (*CowTaxResult, error) {
	if size == 0 {
		size = 64 * MiB
	}
	k := NewKernel(kernel.Options{RAMBytes: 4 * size})
	parent, err := BuildParent(k, "p", size, false)
	if err != nil {
		return nil, err
	}
	vma := parent.Space().VMAs()[0]
	pages := vma.Pages()
	res := &CowTaxResult{Pages: pages}

	rewrite := func(p *kernel.Process) (cost.Ticks, error) {
		t0 := k.Now()
		if err := p.Space().Touch(vma.Start, size, addrspace.AccessWrite); err != nil {
			return 0, err
		}
		return k.Now() - t0, nil
	}

	pre, err := rewrite(parent)
	if err != nil {
		return nil, err
	}
	res.PreForkPerPage = pre / cost.Ticks(pages)

	child, err := k.Fork(parent)
	if err != nil {
		return nil, err
	}
	meter := k.Meter()
	meter.ResetCounters()
	par, err := rewrite(parent)
	if err != nil {
		return nil, err
	}
	res.ParentPerPage = par / cost.Ticks(pages)
	res.PageCopiesParent = meter.PageCopies

	ch, err := rewrite(child)
	if err != nil {
		return nil, err
	}
	res.ChildPerPage = ch / cost.Ticks(pages)

	k.DestroyProcess(child)
	k.DestroyProcess(parent)
	return res, nil
}

// Render formats E3.
func (r *CowTaxResult) Render() string {
	rows := [][]string{
		{"write pass", "per-page cost"},
		{"before fork (resident, writable)", r.PreForkPerPage.String()},
		{"parent after fork (COW break+copy)", r.ParentPerPage.String()},
		{"child after fork (reclaim or copy)", r.ChildPerPage.String()},
	}
	return fmt.Sprintf("E3: copy-on-write tax over %d pages (%d frames copied by parent)\n",
		r.Pages, r.PageCopiesParent) + renderTable(rows)
}

// ---------------------------------------------------------------
// E4 — huge pages (§4.4/§4.5): 2 MiB mappings divide the number of
// PTEs fork must copy by 512, but fork stays Θ(size).
// ---------------------------------------------------------------

// HugePoint is one (size, pagesize) fork measurement.
type HugePoint struct {
	SizeBytes uint64
	Huge      bool
	ForkExec  cost.Ticks
	PTECopies uint64
}

// HugePagesResult is E4.
type HugePagesResult struct {
	Points []HugePoint
}

// HugePages sweeps fork+exec latency for 4 KiB and 2 MiB parents.
func HugePages(minBytes, maxBytes uint64) (*HugePagesResult, error) {
	if minBytes == 0 {
		minBytes = 2 * MiB
	}
	if maxBytes == 0 {
		maxBytes = 512 * MiB
	}
	res := &HugePagesResult{}
	for _, size := range SizeSweep(minBytes, maxBytes) {
		for _, huge := range []bool{false, true} {
			k := NewKernel(kernel.Options{RAMBytes: 4 * maxBytes})
			if err := ulib.Install(k, "true", "/bin/true"); err != nil {
				return nil, err
			}
			parent, err := BuildParent(k, "p", size, huge)
			if err != nil {
				return nil, err
			}
			if _, err := core.MeasureCreation(k, parent, core.MethodForkExec, "/bin/true"); err != nil {
				return nil, err
			}
			meter := k.Meter()
			meter.ResetCounters()
			el, err := core.MeasureCreation(k, parent, core.MethodForkExec, "/bin/true")
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, HugePoint{
				SizeBytes: size, Huge: huge, ForkExec: el, PTECopies: meter.PTECopies,
			})
			k.DestroyProcess(parent)
		}
	}
	return res, nil
}

// Render formats E4.
func (r *HugePagesResult) Render() string {
	rows := [][]string{{"parent size", "4KiB fork+exec", "PTEs", "2MiB fork+exec", "PTEs", "speedup"}}
	bySize := map[uint64][2]HugePoint{}
	var order []uint64
	for _, p := range r.Points {
		e := bySize[p.SizeBytes]
		if p.Huge {
			e[1] = p
		} else {
			e[0] = p
			order = append(order, p.SizeBytes)
		}
		bySize[p.SizeBytes] = e
	}
	for _, size := range order {
		e := bySize[size]
		rows = append(rows, []string{
			HumanBytes(size),
			fmt.Sprintf("%.1fµs", e[0].ForkExec.Micros()), fmt.Sprint(e[0].PTECopies),
			fmt.Sprintf("%.1fµs", e[1].ForkExec.Micros()), fmt.Sprint(e[1].PTECopies),
			fmt.Sprintf("%.1fx", float64(e[0].ForkExec)/float64(e[1].ForkExec)),
		})
	}
	return "E4: fork+exec with 4KiB vs 2MiB pages (huge pages mitigate, fork stays Θ(size))\n" + renderTable(rows)
}

// ---------------------------------------------------------------
// E5 — overcommit (§4.6): forking a big process either fails up front
// (strict commit) or sets up a later OOM kill (heuristic overcommit).
// ---------------------------------------------------------------

// OvercommitOutcome is one cell of the E5 matrix.
type OvercommitOutcome struct {
	Policy     mem.CommitPolicy
	ParentFrac float64 // parent working set as a fraction of RAM
	ForkOK     bool
	ChildTouch string // "ok", "oom", "-" (no fork)
}

// OvercommitResult is E5.
type OvercommitResult struct {
	RAM      uint64
	Outcomes []OvercommitOutcome
}

// Overcommit runs the policy × size matrix.
func Overcommit(ram uint64) (*OvercommitResult, error) {
	if ram == 0 {
		ram = 256 * MiB
	}
	res := &OvercommitResult{RAM: ram}
	for _, pol := range []mem.CommitPolicy{mem.CommitStrict, mem.CommitHeuristic} {
		for _, frac := range []float64{0.25, 0.40, 0.60} {
			k := NewKernel(kernel.Options{RAMBytes: ram, Commit: pol})
			size := uint64(float64(ram) * frac)
			size &^= mem.PageSize - 1
			parent, err := BuildParent(k, "p", size, false)
			if err != nil {
				return nil, err
			}
			out := OvercommitOutcome{Policy: pol, ParentFrac: frac, ChildTouch: "-"}
			child, err := k.Fork(parent)
			if err == nil {
				out.ForkOK = true
				vma := parent.Space().VMAs()[0]
				terr := child.Space().Touch(vma.Start, size, addrspace.AccessWrite)
				switch {
				case terr == nil:
					out.ChildTouch = "ok"
				case errors.Is(terr, errno.ENOMEM):
					out.ChildTouch = "OOM-KILL"
				default:
					return nil, terr
				}
				k.DestroyProcess(child)
			}
			k.DestroyProcess(parent)
			res.Outcomes = append(res.Outcomes, out)
		}
	}
	return res, nil
}

// Render formats E5.
func (r *OvercommitResult) Render() string {
	rows := [][]string{{"policy", "parent/RAM", "fork", "child touches all"}}
	for _, o := range r.Outcomes {
		forkCell := "ENOMEM"
		if o.ForkOK {
			forkCell = "ok"
		}
		rows = append(rows, []string{
			o.Policy.String(), fmt.Sprintf("%.0f%%", o.ParentFrac*100), forkCell, o.ChildTouch,
		})
	}
	return fmt.Sprintf("E5: fork of a large process, RAM=%s (strict fails early; heuristic OOM-kills late)\n",
		HumanBytes(r.RAM)) + renderTable(rows)
}

// ---------------------------------------------------------------
// E6 — composition failures (§4.2), executed on the VM.
// ---------------------------------------------------------------

// ComposeCase is one demo outcome.
type ComposeCase struct {
	Name     string
	Expected string
	Got      string
	Pass     bool
}

// ComposeResult is E6.
type ComposeResult struct {
	Cases []ComposeCase
}

// Compose runs the three §4.2 demonstrations.
func Compose() (*ComposeResult, error) {
	res := &ComposeResult{}

	// 1. Buffered stdio duplicated by fork.
	{
		var out bytes.Buffer
		k := NewKernel(kernel.Options{ConsoleOut: &out})
		if err := ulib.InstallAll(k); err != nil {
			return nil, err
		}
		if _, err := k.BootInit("/bin/stdio_fork", []string{"stdio_fork"}); err != nil {
			return nil, err
		}
		if err := k.Run(kernel.RunLimits{MaxInstructions: 5_000_000}); err != nil {
			return nil, err
		}
		want := "unflushed;unflushed;"
		res.Cases = append(res.Cases, ComposeCase{
			Name:     "stdio buffer duplicated",
			Expected: want, Got: out.String(), Pass: out.String() == want,
		})
	}

	// 2. Shared file offset.
	{
		k := NewKernel(kernel.Options{})
		if err := ulib.InstallAll(k); err != nil {
			return nil, err
		}
		if _, err := k.BootInit("/bin/offset_fork", []string{"offset_fork"}); err != nil {
			return nil, err
		}
		if err := k.Run(kernel.RunLimits{MaxInstructions: 5_000_000}); err != nil {
			return nil, err
		}
		got := ""
		if ino, err := k.FS().Resolve(nil, "/tmp/offset_fork"); err == nil {
			got = string(ino.Data())
		}
		res.Cases = append(res.Cases, ComposeCase{
			Name:     "file offset shared with child",
			Expected: "BA", Got: got, Pass: got == "BA",
		})
	}

	// 3. fork in a threaded program deadlocks; spawn does not.
	for _, c := range []struct {
		prog     string
		name     string
		deadlock bool
	}{
		{"threads_deadlock", "fork with held lock deadlocks", true},
		{"threads_spawn", "spawn with held lock completes", false},
	} {
		var out bytes.Buffer
		k := NewKernel(kernel.Options{ConsoleOut: &out})
		if err := ulib.InstallAll(k); err != nil {
			return nil, err
		}
		if _, err := k.BootInit("/bin/"+c.prog, []string{c.prog}); err != nil {
			return nil, err
		}
		err := k.Run(kernel.RunLimits{MaxInstructions: 10_000_000})
		var dl *kernel.DeadlockError
		gotDL := errors.As(err, &dl)
		if err != nil && !gotDL {
			return nil, err
		}
		got, want := "completed", "completed"
		if gotDL {
			got = "deadlock"
		}
		if c.deadlock {
			want = "deadlock"
		}
		res.Cases = append(res.Cases, ComposeCase{
			Name: c.name, Expected: want, Got: got, Pass: got == want,
		})
	}
	return res, nil
}

// Render formats E6.
func (r *ComposeResult) Render() string {
	rows := [][]string{{"demonstration", "expected", "observed", "pass"}}
	for _, c := range r.Cases {
		p := "✓"
		if !c.Pass {
			p = "FAIL"
		}
		rows = append(rows, []string{c.Name, c.Expected, c.Got, p})
	}
	return "E6: §4.2 composition failures, executed\n" + renderTable(rows)
}

// ---------------------------------------------------------------
// E7 — creation throughput (fork doesn't scale with parent size;
// spawn and cross-process construction do; user-space fork emulation
// is the worst of all worlds).
// ---------------------------------------------------------------

// ScalePoint is one (method, size) throughput sample.
type ScalePoint struct {
	Method      core.Method
	SizeBytes   uint64
	PerCreation cost.Ticks
	PerSecond   float64 // children per virtual second
}

// ScaleResult is E7.
type ScaleResult struct {
	Points []ScalePoint
}

// Scale sweeps creation throughput. The emulated-fork line is capped
// at 64 MiB (it copies bytes through user space and is painfully,
// intentionally slow).
func Scale(minBytes, maxBytes uint64) (*ScaleResult, error) {
	if minBytes == 0 {
		minBytes = 1 * MiB
	}
	if maxBytes == 0 {
		maxBytes = 256 * MiB
	}
	res := &ScaleResult{}
	methods := []core.Method{
		core.MethodForkExec, core.MethodSpawn, core.MethodBuilder, core.MethodEmulatedForkExec,
	}
	for _, size := range SizeSweep(minBytes, maxBytes) {
		k := NewKernel(kernel.Options{RAMBytes: 4 * maxBytes})
		if err := ulib.Install(k, "true", "/bin/true"); err != nil {
			return nil, err
		}
		parent, err := BuildParent(k, "p", size, false)
		if err != nil {
			return nil, err
		}
		for _, m := range methods {
			if m == core.MethodEmulatedForkExec && size > 64*MiB {
				continue
			}
			if _, err := core.MeasureCreation(k, parent, m, "/bin/true"); err != nil {
				return nil, err
			}
			el, err := core.MeasureCreation(k, parent, m, "/bin/true")
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, ScalePoint{
				Method: m, SizeBytes: size, PerCreation: el,
				PerSecond: 1e9 / float64(el),
			})
		}
		k.DestroyProcess(parent)
	}
	return res, nil
}

// Render formats E7.
func (r *ScaleResult) Render() string {
	methods := []core.Method{
		core.MethodForkExec, core.MethodSpawn, core.MethodBuilder, core.MethodEmulatedForkExec,
	}
	head := []string{"parent size"}
	for _, m := range methods {
		head = append(head, m.String()+" /s")
	}
	rows := [][]string{head}
	sizes := map[uint64]bool{}
	var order []uint64
	for _, p := range r.Points {
		if !sizes[p.SizeBytes] {
			sizes[p.SizeBytes] = true
			order = append(order, p.SizeBytes)
		}
	}
	for _, size := range order {
		row := []string{HumanBytes(size)}
		for _, m := range methods {
			cell := "-"
			for _, p := range r.Points {
				if p.Method == m && p.SizeBytes == size {
					cell = fmt.Sprintf("%.0f", p.PerSecond)
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	return "E7: creations per virtual second vs parent size\n" + renderTable(rows)
}
