package experiments

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sig"
	"repro/internal/ulib"
	"repro/internal/vfs"
)

// Table1Result is the executable reconstruction of the paper's
// qualitative comparison of fork against its alternatives: every cell
// is derived by running a probe on the simulator, not asserted by
// hand.
type Table1Result struct {
	Columns []string // creation APIs
	Rows    []T1Row
}

// T1Row is one property across all APIs.
type T1Row struct {
	Property string
	Cells    []string
}

// t1Methods are the four columns, in order.
var t1Methods = []core.Method{
	core.MethodForkExec, // probed pre-exec where the property concerns fork itself
	core.MethodVforkExec,
	core.MethodSpawn,
	core.MethodBuilder,
}

var t1ColNames = []string{"fork", "vfork", "posix_spawn", "cross-proc"}

// Table1 runs all probes.
func Table1() (*Table1Result, error) {
	res := &Table1Result{Columns: t1ColNames}
	type probe struct {
		name string
		fn   func() ([]string, error)
	}
	for _, p := range []probe{
		{"child sees parent's memory", probeSeesMemory},
		{"memory isolated after create", probeIsolation},
		{"descriptors inherited implicitly", probeFDInherit},
		{"O_CLOEXEC honoured", probeCloexec},
		{"signal handlers survive", probeSigHandlers},
		{"file offsets shared", probeOffsets},
		{"cost O(1) in parent size", probeO1},
		{"safe with threads+locks", probeThreadSafe},
		{"needs commit for whole parent", probeCommit},
	} {
		cells, err := p.fn()
		if err != nil {
			return nil, fmt.Errorf("table1 probe %q: %w", p.name, err)
		}
		res.Rows = append(res.Rows, T1Row{Property: p.name, Cells: cells})
	}
	return res, nil
}

// Render formats the matrix.
func (r *Table1Result) Render() string {
	rows := [][]string{append([]string{"property"}, r.Columns...)}
	for _, row := range r.Rows {
		rows = append(rows, append([]string{row.Property}, row.Cells...))
	}
	return "Table 1: semantics of fork and its alternatives (probed, not asserted)\n" + renderTable(rows)
}

// t1Kernel builds a fresh kernel with /bin/true installed.
func t1Kernel() (*kernel.Kernel, error) {
	k := NewKernel(kernel.Options{RAMBytes: 1 * GiB})
	if err := ulib.Install(k, "true", "/bin/true"); err != nil {
		return nil, err
	}
	return k, nil
}

// t1CreateRaw creates a child via the method family, pre-exec for the
// fork family (the inheritance questions concern fork itself; exec is
// a separate destructive step).
func t1CreateRaw(k *kernel.Kernel, parent *kernel.Process, m core.Method) (*kernel.Process, error) {
	switch m {
	case core.MethodForkExec:
		return k.ForkWithMode(parent, kernel.ForkCOW)
	case core.MethodVforkExec:
		return k.ForkWithMode(parent, kernel.ForkVfork)
	case core.MethodSpawn:
		return core.SpawnParked(k, parent, "/bin/true", []string{"true"}, nil, nil)
	case core.MethodBuilder:
		b := core.NewBuilder(k, parent, "child")
		b.LoadImage("/bin/true", []string{"true"})
		return b.Finish()
	}
	return nil, fmt.Errorf("bad method %v", m)
}

func probeSeesMemory() ([]string, error) {
	var cells []string
	for _, m := range t1Methods {
		k, err := t1Kernel()
		if err != nil {
			return nil, err
		}
		parent, err := BuildParent(k, "p", 1*MiB, false)
		if err != nil {
			return nil, err
		}
		magicVA := parent.Space().VMAs()[0].Start
		if err := parent.Space().WriteBytes(magicVA, []byte("SECRET")); err != nil {
			return nil, err
		}
		child, err := t1CreateRaw(k, parent, m)
		if err != nil {
			return nil, err
		}
		buf := make([]byte, 6)
		cell := "no"
		if err := child.Space().ReadBytes(magicVA, buf); err == nil && string(buf) == "SECRET" {
			cell = "yes"
		}
		cells = append(cells, cell)
		k.DestroyProcess(child)
		k.DestroyProcess(parent)
	}
	return cells, nil
}

func probeIsolation() ([]string, error) {
	var cells []string
	for _, m := range t1Methods {
		k, err := t1Kernel()
		if err != nil {
			return nil, err
		}
		parent, err := BuildParent(k, "p", 1*MiB, false)
		if err != nil {
			return nil, err
		}
		va := parent.Space().VMAs()[0].Start
		if err := parent.Space().WriteBytes(va, []byte("AAAA")); err != nil {
			return nil, err
		}
		child, err := t1CreateRaw(k, parent, m)
		if err != nil {
			return nil, err
		}
		if err := parent.Space().WriteBytes(va, []byte("BBBB")); err != nil {
			return nil, err
		}
		buf := make([]byte, 4)
		// A read error means the parent's address is not even
		// mapped in the child — the strongest isolation.
		cell := "fresh"
		if err := child.Space().ReadBytes(va, buf); err == nil {
			switch string(buf) {
			case "AAAA":
				cell = "yes"
			case "BBBB":
				cell = "NO (shared)"
			default:
				cell = "fresh"
			}
		}
		cells = append(cells, cell)
		k.DestroyProcess(child)
		k.DestroyProcess(parent)
	}
	return cells, nil
}

func probeFDInherit() ([]string, error) {
	var cells []string
	for _, m := range t1Methods {
		k, err := t1Kernel()
		if err != nil {
			return nil, err
		}
		parent, err := BuildParent(k, "p", 1*MiB, false)
		if err != nil {
			return nil, err
		}
		ino, err := k.FS().WriteFile("/tmp/t1", []byte("hello"))
		if err != nil {
			return nil, err
		}
		if err := parent.FDs().InstallAt(vfs.NewOpenFile(ino, vfs.ORdWr), false, 7); err != nil {
			return nil, err
		}
		child, err := t1CreateRaw(k, parent, m)
		if err != nil {
			return nil, err
		}
		cell := "no"
		if _, err := child.FDs().Get(7); err == nil {
			cell = "yes"
		}
		cells = append(cells, cell)
		k.DestroyProcess(child)
		k.DestroyProcess(parent)
	}
	return cells, nil
}

func probeCloexec() ([]string, error) {
	var cells []string
	for _, m := range t1Methods {
		k, err := t1Kernel()
		if err != nil {
			return nil, err
		}
		parent, err := BuildParent(k, "p", 1*MiB, false)
		if err != nil {
			return nil, err
		}
		ino, err := k.FS().WriteFile("/tmp/t1", []byte("x"))
		if err != nil {
			return nil, err
		}
		if err := parent.FDs().InstallAt(vfs.NewOpenFile(ino, vfs.ORdWr), true /*cloexec*/, 8); err != nil {
			return nil, err
		}
		// Use the full creation (including exec for fork family).
		child, _, err := core.CreateChild(k, parent, m, "/bin/true", []string{"true"})
		if err != nil {
			return nil, err
		}
		cell := "closed"
		if _, err := child.FDs().Get(8); err == nil {
			cell = "KEPT"
		}
		if m == core.MethodBuilder {
			cell = "n/a (opt-in)"
		}
		cells = append(cells, cell)
		k.DestroyProcess(child)
		k.DestroyProcess(parent)
	}
	return cells, nil
}

func probeSigHandlers() ([]string, error) {
	var cells []string
	for _, m := range t1Methods {
		k, err := t1Kernel()
		if err != nil {
			return nil, err
		}
		parent, err := BuildParent(k, "p", 1*MiB, false)
		if err != nil {
			return nil, err
		}
		if err := parent.Signals().Set(sig.SIGUSR1, sig.Disposition{Kind: sig.ActHandler, Handler: 0x400100}); err != nil {
			return nil, err
		}
		child, err := t1CreateRaw(k, parent, m)
		if err != nil {
			return nil, err
		}
		cell := "reset"
		if child.Signals().Get(sig.SIGUSR1).Kind == sig.ActHandler {
			cell = "yes (stale ptr)"
		}
		cells = append(cells, cell)
		k.DestroyProcess(child)
		k.DestroyProcess(parent)
	}
	return cells, nil
}

func probeOffsets() ([]string, error) {
	var cells []string
	for _, m := range t1Methods {
		k, err := t1Kernel()
		if err != nil {
			return nil, err
		}
		parent, err := BuildParent(k, "p", 1*MiB, false)
		if err != nil {
			return nil, err
		}
		ino, err := k.FS().WriteFile("/tmp/t1", []byte("hello world"))
		if err != nil {
			return nil, err
		}
		pof := vfs.NewOpenFile(ino, vfs.ORdWr)
		if err := parent.FDs().InstallAt(pof, false, 7); err != nil {
			return nil, err
		}
		child, err := t1CreateRaw(k, parent, m)
		if err != nil {
			return nil, err
		}
		cell := "not inherited"
		if cof, err := child.FDs().Get(7); err == nil {
			// Advance the child's copy; the parent observes it
			// iff the description is shared.
			if _, err := cof.Seek(5, vfs.SeekSet); err != nil {
				return nil, err
			}
			if pof.Pos() == 5 {
				cell = "yes (shared)"
			} else {
				cell = "independent"
			}
		}
		cells = append(cells, cell)
		k.DestroyProcess(child)
		k.DestroyProcess(parent)
	}
	return cells, nil
}

func probeO1() ([]string, error) {
	var cells []string
	for _, m := range t1Methods {
		k, err := t1Kernel()
		if err != nil {
			return nil, err
		}
		small, err := BuildParent(k, "small", 1*MiB, false)
		if err != nil {
			return nil, err
		}
		big, err := BuildParent(k, "big", 128*MiB, false)
		if err != nil {
			return nil, err
		}
		warm := func(p *kernel.Process) error {
			_, e := core.MeasureCreation(k, p, m, "/bin/true")
			return e
		}
		if err := warm(small); err != nil {
			return nil, err
		}
		if err := warm(big); err != nil {
			return nil, err
		}
		tSmall, err := core.MeasureCreation(k, small, m, "/bin/true")
		if err != nil {
			return nil, err
		}
		tBig, err := core.MeasureCreation(k, big, m, "/bin/true")
		if err != nil {
			return nil, err
		}
		ratio := float64(tBig) / float64(tSmall)
		cell := "yes"
		if ratio > 2 {
			cell = fmt.Sprintf("NO (%.0fx at 128x size)", ratio)
		}
		cells = append(cells, cell)
		k.DestroyProcess(small)
		k.DestroyProcess(big)
	}
	return cells, nil
}

// probeThreadSafe runs the VM deadlock demo for fork and its spawn
// control; vfork shares fork's hazard (same image capture) and the
// builder shares spawn's safety (fresh image) — both derived from the
// same pair of programs since the hazard is about what the child's
// image contains.
func probeThreadSafe() ([]string, error) {
	runDemo := func(prog string) (bool, error) {
		var out bytes.Buffer
		k := NewKernel(kernel.Options{RAMBytes: 1 * GiB, ConsoleOut: &out})
		if err := ulib.InstallAll(k); err != nil {
			return false, err
		}
		if _, err := k.BootInit("/bin/"+prog, []string{prog}); err != nil {
			return false, err
		}
		err := k.Run(kernel.RunLimits{MaxInstructions: 10_000_000})
		var dl *kernel.DeadlockError
		if errors.As(err, &dl) {
			return false, nil // deadlocked ⇒ not safe
		}
		if err != nil {
			return false, err
		}
		return true, nil
	}
	forkSafe, err := runDemo("threads_deadlock")
	if err != nil {
		return nil, err
	}
	spawnSafe, err := runDemo("threads_spawn")
	if err != nil {
		return nil, err
	}
	cell := func(safe bool) string {
		if safe {
			return "yes"
		}
		return "NO (deadlock)"
	}
	return []string{cell(forkSafe), cell(forkSafe), cell(spawnSafe), cell(spawnSafe)}, nil
}

func probeCommit() ([]string, error) {
	var cells []string
	for _, m := range t1Methods {
		k := NewKernel(kernel.Options{RAMBytes: 256 * MiB, Commit: mem.CommitStrict})
		if err := ulib.Install(k, "true", "/bin/true"); err != nil {
			return nil, err
		}
		parent, err := BuildParent(k, "p", 160*MiB, false)
		if err != nil {
			return nil, err
		}
		child, _, err := core.CreateChild(k, parent, m, "/bin/true", []string{"true"})
		switch {
		case err == nil:
			cells = append(cells, "no")
			k.DestroyProcess(child)
		default:
			cells = append(cells, "YES (ENOMEM)")
		}
		k.DestroyProcess(parent)
	}
	return cells, nil
}
