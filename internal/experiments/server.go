package experiments

import (
	"fmt"

	"repro/sim"
	"repro/sim/fleet"
	"repro/sim/load"
)

// ---------------------------------------------------------------
// E8 — the §5 server claim, under sustained load: a server that
// creates a process per request slows down as its own heap grows if
// it creates through fork, and does not if it creates through spawn
// or the cross-process builder. Figure 1 shows one creation; this
// table shows the throughput consequence, driven by sim/load's
// prefork scenario.
// ---------------------------------------------------------------

// ServerPoint is one (strategy, heap) throughput sample.
type ServerPoint struct {
	Via       sim.Strategy
	HeapBytes uint64
	Metrics   *load.Metrics
}

// ServerClaimResult is E8.
type ServerClaimResult struct {
	Requests int
	Points   []ServerPoint
}

// ServerClaim sweeps prefork-server throughput over heap sizes for
// fork+exec, posix_spawn, and the cross-process builder, draining
// requests synthetic requests per cell.
func ServerClaim(maxHeap uint64, requests int) (*ServerClaimResult, error) {
	if maxHeap == 0 {
		maxHeap = 256 * MiB
	}
	if maxHeap < 16*MiB {
		maxHeap = 16 * MiB // the sweep's floor; never render an empty table
	}
	if requests == 0 {
		requests = 64
	}
	res := &ServerClaimResult{Requests: requests}
	// Build the whole (heap, strategy) matrix, then fan the cells out
	// across host cores; fleet.RunAll merges in input order, so the
	// table is identical to the old serial sweep.
	var cfgs []load.Config
	for _, heap := range SizeSweep(16*MiB, maxHeap) {
		for _, via := range []sim.Strategy{sim.ForkExec, sim.Spawn, sim.Builder} {
			cfgs = append(cfgs, load.Config{
				Scenario:  load.Prefork,
				Via:       via,
				Requests:  requests,
				HeapBytes: heap,
			})
		}
	}
	ms, err := fleet.RunAll(0, cfgs)
	if err != nil {
		return nil, err
	}
	for i, m := range ms {
		res.Points = append(res.Points, ServerPoint{Via: cfgs[i].Via, HeapBytes: cfgs[i].HeapBytes, Metrics: m})
	}
	return res, nil
}

// Render formats E8: requests per virtual second by heap size, with
// the spawn:fork throughput ratio — the factor the server loses to
// fork at that size.
func (r *ServerClaimResult) Render() string {
	vias := []sim.Strategy{sim.ForkExec, sim.Spawn, sim.Builder}
	head := []string{"server heap"}
	for _, v := range vias {
		head = append(head, v.String()+" req/s")
	}
	head = append(head, "spawn:fork")
	rows := [][]string{head}

	var order []uint64
	cells := map[uint64]map[sim.Strategy]*load.Metrics{}
	for _, p := range r.Points {
		if cells[p.HeapBytes] == nil {
			cells[p.HeapBytes] = map[sim.Strategy]*load.Metrics{}
			order = append(order, p.HeapBytes)
		}
		cells[p.HeapBytes][p.Via] = p.Metrics
	}
	for _, heap := range order {
		row := []string{HumanBytes(heap)}
		for _, v := range vias {
			if m := cells[heap][v]; m != nil {
				row = append(row, fmt.Sprintf("%.0f", m.RequestsPerVSec))
			} else {
				row = append(row, "-")
			}
		}
		ratio := "-"
		if f, s := cells[heap][sim.ForkExec], cells[heap][sim.Spawn]; f != nil && s != nil && f.RequestsPerVSec > 0 {
			ratio = fmt.Sprintf("%.1fx", s.RequestsPerVSec/f.RequestsPerVSec)
		}
		row = append(row, ratio)
		rows = append(rows, row)
	}
	return fmt.Sprintf("E8: prefork server throughput vs server heap (%d requests per cell; §5's claim under load)\n",
		r.Requests) + renderTable(rows)
}
