package experiments

import (
	"fmt"

	"repro/sim"
	"repro/sim/fleet"
	"repro/sim/load"
)

// ---------------------------------------------------------------
// E10 — the §5 server claim at fleet scale. E8 shows one fork-based
// server slowing down as its heap grows; a datacenter multiplies that
// by the fleet and adds the deploy dimension: every rolling restart
// makes each replacement instance repay its warm-up tax — Θ(heap)
// page-table duplication per pre-created pool worker under fork, flat
// under spawn. The sweep drives sim/fleet's rolling-restart wave over
// growing fleet sizes and reports fleet throughput, the total re-warm
// tax, and fork's page-table bill.
// ---------------------------------------------------------------

// FleetClaimPoint is one fleet size's fork-vs-spawn comparison.
type FleetClaimPoint struct {
	Machines int

	// Fork is the rolling wave with fork+exec creations; Spawn the
	// same wave with posix_spawn.
	Fork  *fleet.Result
	Spawn *fleet.Result
}

// FleetClaimResult is E10.
type FleetClaimResult struct {
	HeapBytes uint64
	CPUs      int
	Requests  int
	Points    []FleetClaimPoint
}

// FleetClaimConfig parameterizes FleetClaim; zero fields get defaults.
type FleetClaimConfig struct {
	MachineCounts []int  // fleet sizes (default {2, 4, 8})
	Requests      int    // requests per machine per serve phase (default 16)
	HeapBytes     uint64 // per-machine server heap (default 64 MiB)
	CPUs          int    // per-machine CPU count (default 2)
}

// FleetClaim runs E10. Deterministic: the fleet runner merges machine
// results in id order, so the table is a pure function of the config
// regardless of host parallelism.
func FleetClaim(cfg FleetClaimConfig) (*FleetClaimResult, error) {
	if len(cfg.MachineCounts) == 0 {
		cfg.MachineCounts = []int{2, 4, 8}
	}
	if cfg.Requests == 0 {
		cfg.Requests = 16
	}
	if cfg.HeapBytes == 0 {
		cfg.HeapBytes = 64 * MiB
	}
	if cfg.CPUs == 0 {
		cfg.CPUs = 2
	}
	res := &FleetClaimResult{HeapBytes: cfg.HeapBytes, CPUs: cfg.CPUs, Requests: cfg.Requests}
	for _, machines := range cfg.MachineCounts {
		pt := FleetClaimPoint{Machines: machines}
		spec := fleet.Spec{
			Machines:  machines,
			Scenario:  fleet.RollingRestart,
			Load:      load.Prefork,
			CPUs:      cfg.CPUs,
			Requests:  cfg.Requests,
			HeapBytes: cfg.HeapBytes,
		}
		var err error
		spec.Via = sim.ForkExec
		if pt.Fork, err = fleet.Run(spec); err != nil {
			return nil, fmt.Errorf("fleetclaim fork @%d machines: %w", machines, err)
		}
		spec.Via = sim.Spawn
		if pt.Spawn, err = fleet.Run(spec); err != nil {
			return nil, fmt.Errorf("fleetclaim spawn @%d machines: %w", machines, err)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Render formats E10 as a table: fleet throughput and the rolling
// wave's re-warm tax, fork vs spawn, as the fleet grows.
func (r *FleetClaimResult) Render() string {
	rows := [][]string{{
		"machines",
		"fork req/s", "spawn req/s", "spawn:fork",
		"fork restart", "spawn restart",
		"fork PTE copies", "fork IPIs",
	}}
	for _, p := range r.Points {
		ratio := 0.0
		if p.Fork.Aggregate.RequestsPerVSec > 0 {
			ratio = p.Spawn.Aggregate.RequestsPerVSec / p.Fork.Aggregate.RequestsPerVSec
		}
		rows = append(rows, []string{
			fmt.Sprint(p.Machines),
			fmt.Sprintf("%.0f", p.Fork.Aggregate.RequestsPerVSec),
			fmt.Sprintf("%.0f", p.Spawn.Aggregate.RequestsPerVSec),
			fmt.Sprintf("%.2fx", ratio),
			fmt.Sprintf("%.1fms", float64(p.Fork.Aggregate.RestartNanos)/1e6),
			fmt.Sprintf("%.1fms", float64(p.Spawn.Aggregate.RestartNanos)/1e6),
			fmt.Sprint(p.Fork.Aggregate.PTECopies),
			fmt.Sprint(p.Fork.Aggregate.TLBShootdowns),
		})
	}
	head := fmt.Sprintf(
		"E10 — the server claim at fleet scale (rolling restart, heap %s, %d CPUs and %d requests per machine):\n"+
			"each replacement instance repays its warm-up tax before serving; under fork that is\n"+
			"Θ(heap) page-table duplication per pool worker, paid machine by machine across the wave.\n\n",
		HumanBytes(r.HeapBytes), r.CPUs, r.Requests)
	return head + renderTable(rows)
}
