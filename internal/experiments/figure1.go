package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/kernel"
	"repro/internal/ulib"
)

// Fig1Config parameterises Figure 1.
type Fig1Config struct {
	// MinBytes/MaxBytes bound the parent-size sweep (doubling).
	// Defaults: 1 MiB … 1 GiB.
	MinBytes, MaxBytes uint64
	// Reps per point after one warm-up (default 5).
	Reps int
	// RAMBytes sizes the machine (default: 4×MaxBytes, ≥4 GiB).
	RAMBytes uint64
	// IncludeEager adds the 1970s eager-copy fork line (ablation 1).
	IncludeEager bool
}

func (c *Fig1Config) fill() {
	if c.MinBytes == 0 {
		c.MinBytes = 1 * MiB
	}
	if c.MaxBytes == 0 {
		c.MaxBytes = 1 * GiB
	}
	if c.Reps == 0 {
		c.Reps = 5
	}
	if c.RAMBytes == 0 {
		c.RAMBytes = 4 * c.MaxBytes
		if c.RAMBytes < 4*GiB {
			c.RAMBytes = 4 * GiB
		}
	}
}

// Fig1Point is one (method, size) measurement.
type Fig1Point struct {
	Method    core.Method
	SizeBytes uint64
	Mean      cost.Ticks
	Min, Max  cost.Ticks
	// PTECopies is the page-table entries copied per creation
	// (explains *why* fork scales).
	PTECopies uint64
}

// Fig1Result is the full figure.
type Fig1Result struct {
	Config Fig1Config
	Points []Fig1Point
}

// Figure1 reproduces the paper's Figure 1: the time to create a
// minimal child via fork+exec, vfork+exec, and posix_spawn from
// parents of growing address-space size, plus a fork+exec line over
// 2 MiB huge pages.
func Figure1(cfg Fig1Config) (*Fig1Result, error) {
	cfg.fill()
	res := &Fig1Result{Config: cfg}

	methods := []core.Method{core.MethodForkExec, core.MethodVforkExec, core.MethodSpawn}
	if cfg.IncludeEager {
		methods = append(methods, core.MethodForkEagerExec)
	}

	for _, size := range SizeSweep(cfg.MinBytes, cfg.MaxBytes) {
		// Plain 4 KiB parent for the standard lines.
		pts, err := fig1Measure(cfg, size, false, methods)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pts...)
		// Huge-page parent for the fork+exec(2 MiB) line.
		if size >= 2*MiB {
			hp, err := fig1Measure(cfg, size, true, []core.Method{core.MethodForkExec})
			if err != nil {
				return nil, err
			}
			for i := range hp {
				hp[i].Method = methodForkHuge
			}
			res.Points = append(res.Points, hp...)
		}
	}
	return res, nil
}

// methodForkHuge labels the huge-page fork line in results. It is not
// a core.Method a caller can request directly (the page size is a
// property of the parent, not the creation call).
const methodForkHuge core.Method = 100

func methodName(m core.Method) string {
	if m == methodForkHuge {
		return "fork+exec (2MiB pages)"
	}
	return m.String()
}

func fig1Measure(cfg Fig1Config, size uint64, huge bool, methods []core.Method) ([]Fig1Point, error) {
	k := NewKernel(kernel.Options{RAMBytes: cfg.RAMBytes})
	if err := ulib.Install(k, "true", "/bin/true"); err != nil {
		return nil, err
	}
	parent, err := BuildParent(k, "parent", size, huge)
	if err != nil {
		return nil, err
	}
	var out []Fig1Point
	for _, m := range methods {
		// Warm-up: the first fork additionally downgrades the
		// parent's PTEs to read-only; steady state is what the
		// paper plots.
		if _, err := core.MeasureCreation(k, parent, m, "/bin/true"); err != nil {
			return nil, fmt.Errorf("figure1 %v/%s warmup: %w", m, HumanBytes(size), err)
		}
		pt := Fig1Point{Method: m, SizeBytes: size, Min: ^cost.Ticks(0)}
		var sum cost.Ticks
		meter := k.Meter()
		meter.ResetCounters()
		for r := 0; r < cfg.Reps; r++ {
			el, err := core.MeasureCreation(k, parent, m, "/bin/true")
			if err != nil {
				return nil, fmt.Errorf("figure1 %v/%s: %w", m, HumanBytes(size), err)
			}
			sum += el
			if el < pt.Min {
				pt.Min = el
			}
			if el > pt.Max {
				pt.Max = el
			}
		}
		pt.Mean = sum / cost.Ticks(cfg.Reps)
		pt.PTECopies = meter.PTECopies / uint64(cfg.Reps)
		out = append(out, pt)
	}
	return out, nil
}

// Render formats the figure as a per-size table, one column per
// method, values in virtual microseconds.
func (r *Fig1Result) Render() string {
	methods := []core.Method{}
	seen := map[core.Method]bool{}
	for _, p := range r.Points {
		if !seen[p.Method] {
			seen[p.Method] = true
			methods = append(methods, p.Method)
		}
	}
	head := []string{"parent size"}
	for _, m := range methods {
		head = append(head, methodName(m)+" µs")
	}
	rows := [][]string{head}
	for _, size := range SizeSweep(r.Config.MinBytes, r.Config.MaxBytes) {
		row := []string{HumanBytes(size)}
		for _, m := range methods {
			cell := "-"
			for _, p := range r.Points {
				if p.Method == m && p.SizeBytes == size {
					cell = fmt.Sprintf("%.1f", p.Mean.Micros())
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	return "Figure 1: process-creation latency vs parent size (virtual µs)\n" + renderTable(rows)
}

// Crossover reports the smallest parent size at which spawn beats
// fork+exec — the paper's ~1 MiB crossover claim.
func (r *Fig1Result) Crossover() (uint64, bool) {
	for _, size := range SizeSweep(r.Config.MinBytes, r.Config.MaxBytes) {
		var fork, spawn cost.Ticks
		for _, p := range r.Points {
			if p.SizeBytes != size {
				continue
			}
			switch p.Method {
			case core.MethodForkExec:
				fork = p.Mean
			case core.MethodSpawn:
				spawn = p.Mean
			}
		}
		if fork != 0 && spawn != 0 && spawn < fork {
			return size, true
		}
	}
	return 0, false
}
