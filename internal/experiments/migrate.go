package experiments

import (
	"fmt"

	"repro/sim"
	"repro/sim/load"
)

// ---------------------------------------------------------------
// E16 — live migration downtime vs heap size per creation strategy.
// Checkpoint/restore turns a process into pages on the wire, and the
// pre-copy loop (sim/load's migrate cell) moves it while it keeps
// mutating. What the paper's argument predicts — and this table
// measures — is that the cost of moving a process is a property of
// how it was created. A forked worker inherited the parent's heap
// copy-on-write and dirtied it, so every pre-copy round re-ships the
// pages the mutator touched and the stop-and-copy residue grows with
// the heap: Θ(dirty heap) downtime. A spawned worker owns only what
// it allocated itself, converges after the first round, and moves for
// a near-constant price whatever the configured heap. And a process
// caught mid-vfork cannot move at all — it is borrowing its parent's
// address space, there is nothing coherent to serialize — so the
// checkpoint refuses cleanly rather than shipping a torn image.
// ---------------------------------------------------------------

// MigrateConfig parameterizes E16; zero fields get defaults.
type MigrateConfig struct {
	HeapSizes []uint64 // heap ladder (default 4, 16, 64 MiB)
	Requests  int      // migrations per point (default 2)
	Rounds    int      // pre-copy rounds per migration (0 = cell default)
}

// MigratePoint is one (strategy, heap size) run of the migrate cell.
type MigratePoint struct {
	Strategy  string
	HeapBytes uint64
	M         *load.Metrics
}

// MigrateResult is E16.
type MigrateResult struct {
	HeapSizes []uint64
	Requests  int
	Points    []MigratePoint
}

// migrateStrategies is the E16 sweep: the COW family that pays per
// dirty page, the eager copy that dirties everything up front, the
// spawn that moves flat, and the vfork borrower the checkpoint must
// refuse.
var migrateStrategies = []sim.Strategy{
	sim.ForkExec, sim.EagerForkExec, sim.Spawn, sim.VforkExec,
}

// MigrateClaim runs E16: the two-machine live-migration cell over a
// heap ladder, once per creation strategy. Deterministic: each cell is
// a single-threaded virtual-time event loop, so the table is a pure
// function of the config.
func MigrateClaim(cfg MigrateConfig) (*MigrateResult, error) {
	if len(cfg.HeapSizes) == 0 {
		cfg.HeapSizes = []uint64{4 * MiB, 16 * MiB, 64 * MiB}
	}
	if cfg.Requests == 0 {
		cfg.Requests = 2
	}
	res := &MigrateResult{HeapSizes: cfg.HeapSizes, Requests: cfg.Requests}
	for _, via := range migrateStrategies {
		for _, heap := range cfg.HeapSizes {
			m, err := load.Run(load.Config{
				Scenario:  load.Migrate,
				Via:       via,
				Requests:  cfg.Requests,
				Workers:   cfg.Rounds,
				HeapBytes: heap,
			})
			if err != nil {
				return nil, fmt.Errorf("migrate %v/%s: %w", via, HumanBytes(heap), err)
			}
			res.Points = append(res.Points, MigratePoint{
				Strategy: via.String(), HeapBytes: heap, M: m,
			})
		}
	}
	return res, nil
}

// Render formats E16 as a table: downtime vs heap size, one block per
// strategy — Θ(dirty heap) for the fork family, ~flat for spawn, a
// clean refusal for the vfork borrower.
func (r *MigrateResult) Render() string {
	rows := [][]string{{
		"strategy", "heap",
		"migrated", "refused", "rounds", "pages shipped",
		"downtime/mig", "net pkts",
	}}
	for _, p := range r.Points {
		downtime := "—"
		if p.M.Requests > 0 {
			perMig := float64(p.M.MigrateDowntimeNanos) / float64(p.M.Requests)
			downtime = fmt.Sprintf("%.1fµs", perMig/1e3)
		}
		rows = append(rows, []string{
			p.Strategy,
			HumanBytes(p.HeapBytes),
			fmt.Sprint(p.M.Requests),
			fmt.Sprint(p.M.MigrateRefused),
			fmt.Sprint(p.M.MigrateRounds),
			fmt.Sprint(p.M.MigratePagesSent),
			downtime,
			fmt.Sprint(p.M.NetPacketsSent),
		})
	}
	head := fmt.Sprintf(
		"E16 — live-migration downtime vs heap size (migrate cell, %d migrations per point):\n"+
			"pre-copy rounds ship the pages the mutator dirties, then stop-and-copy ships the\n"+
			"residue — the downtime. A forked worker dirtied its inherited heap, so its downtime\n"+
			"and page traffic grow with the heap; a spawned worker converges in one round and\n"+
			"moves for the same price at any size; a mid-vfork borrower has no coherent address\n"+
			"space to serialize, so the checkpoint refuses it cleanly (migrated 0, refused > 0).\n\n",
		r.Requests)
	return head + renderTable(rows)
}
