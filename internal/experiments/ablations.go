package experiments

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/kernel"
	"repro/internal/ulib"
)

// AblationResult collects the design-choice ablations DESIGN.md calls
// out: COW vs eager fork (the paper's §2 history) and the §8
// mitigation that refuses fork in multithreaded processes.
type AblationResult struct {
	EagerRows []EagerRow
	// MitigationDeadlock is the outcome of the threads demo without
	// the mitigation; MitigationRefused with it.
	MitigationDeadlock string
	MitigationRefused  string
}

// EagerRow compares one parent size.
type EagerRow struct {
	SizeBytes uint64
	COW       cost.Ticks
	Eager     cost.Ticks
}

// Ablations runs both studies.
func Ablations(maxBytes uint64) (*AblationResult, error) {
	if maxBytes == 0 {
		maxBytes = 64 * MiB
	}
	res := &AblationResult{}

	// 1. COW vs eager fork.
	for _, size := range SizeSweep(4*MiB, maxBytes) {
		k := NewKernel(kernel.Options{RAMBytes: 4 * maxBytes})
		if err := ulib.Install(k, "true", "/bin/true"); err != nil {
			return nil, err
		}
		parent, err := BuildParent(k, "p", size, false)
		if err != nil {
			return nil, err
		}
		row := EagerRow{SizeBytes: size}
		for _, m := range []core.Method{core.MethodForkExec, core.MethodForkEagerExec} {
			if _, err := core.MeasureCreation(k, parent, m, "/bin/true"); err != nil {
				return nil, err
			}
			el, err := core.MeasureCreation(k, parent, m, "/bin/true")
			if err != nil {
				return nil, err
			}
			if m == core.MethodForkExec {
				row.COW = el
			} else {
				row.Eager = el
			}
		}
		res.EagerRows = append(res.EagerRows, row)
		k.DestroyProcess(parent)
	}

	// 2. The §8 mitigation.
	outcome := func(deny bool) (string, error) {
		k := NewKernel(kernel.Options{DenyMultithreadedFork: deny})
		if err := ulib.InstallAll(k); err != nil {
			return "", err
		}
		if _, err := k.BootInit("/bin/threads_deadlock", []string{"threads_deadlock"}); err != nil {
			return "", err
		}
		err := k.Run(kernel.RunLimits{MaxInstructions: 10_000_000})
		var dl *kernel.DeadlockError
		switch {
		case errors.As(err, &dl):
			return "deadlock", nil
		case err != nil:
			return "", err
		default:
			return "completed (fork refused with EAGAIN)", nil
		}
	}
	var err error
	if res.MitigationDeadlock, err = outcome(false); err != nil {
		return nil, err
	}
	if res.MitigationRefused, err = outcome(true); err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats the ablations.
func (r *AblationResult) Render() string {
	rows := [][]string{{"parent size", "COW fork+exec", "eager fork+exec", "eager/COW"}}
	for _, e := range r.EagerRows {
		rows = append(rows, []string{
			HumanBytes(e.SizeBytes),
			fmt.Sprintf("%.1fµs", e.COW.Micros()),
			fmt.Sprintf("%.1fµs", e.Eager.Micros()),
			fmt.Sprintf("%.1fx", float64(e.Eager)/float64(e.COW)),
		})
	}
	out := "Ablation 1: copy-on-write vs 1970s eager fork\n" + renderTable(rows)
	out += "\nAblation 5 (§8 mitigation): fork in a multithreaded program\n"
	out += fmt.Sprintf("  default kernel:                 %s\n", r.MitigationDeadlock)
	out += fmt.Sprintf("  with DenyMultithreadedFork:     %s\n", r.MitigationRefused)
	return out
}
