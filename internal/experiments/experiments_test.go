package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/sim"
)

// TestFigure1Shape checks the paper's qualitative claims on a reduced
// sweep: fork+exec grows roughly linearly with parent size, vfork+exec
// and posix_spawn stay flat, fork beats spawn for tiny parents, and
// the crossover lands in the low-MiB range.
func TestFigure1Shape(t *testing.T) {
	res, err := Figure1(Fig1Config{MinBytes: 256 * KiB, MaxBytes: 64 * MiB, Reps: 3})
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	get := func(m core.Method, size uint64) float64 {
		for _, p := range res.Points {
			if p.Method == m && p.SizeBytes == size {
				return p.Mean.Micros()
			}
		}
		t.Fatalf("missing point %v/%d", m, size)
		return 0
	}
	small, big := uint64(256*KiB), uint64(64*MiB)

	// fork+exec grows with size.
	fSmall, fBig := get(core.MethodForkExec, small), get(core.MethodForkExec, big)
	if fBig < 8*fSmall {
		t.Errorf("fork+exec not scaling: %0.1fµs at %s vs %0.1fµs at %s",
			fSmall, HumanBytes(small), fBig, HumanBytes(big))
	}

	// spawn and vfork+exec are flat (within 25%).
	for _, m := range []core.Method{core.MethodSpawn, core.MethodVforkExec} {
		a, b := get(m, small), get(m, big)
		if b > 1.25*a || a > 1.25*b {
			t.Errorf("%v not flat: %0.1fµs at %s vs %0.1fµs at %s", m, a, HumanBytes(small), b, HumanBytes(big))
		}
	}

	// fork beats spawn when the parent is tiny...
	if fSmall >= get(core.MethodSpawn, small) {
		t.Errorf("fork+exec (%0.1fµs) should beat spawn (%0.1fµs) at %s",
			fSmall, get(core.MethodSpawn, small), HumanBytes(small))
	}
	// ...and loses by a wide margin when it is large.
	if fBig <= 3*get(core.MethodSpawn, big) {
		t.Errorf("fork+exec (%0.1fµs) should be ≫ spawn (%0.1fµs) at %s",
			fBig, get(core.MethodSpawn, big), HumanBytes(big))
	}

	// The crossover sits in the low-MiB range (paper: ~1 MiB).
	cx, ok := res.Crossover()
	if !ok {
		t.Fatalf("no crossover found")
	}
	if cx < 512*KiB || cx > 16*MiB {
		t.Errorf("crossover at %s, want within [512KiB, 16MiB]", HumanBytes(cx))
	}
	t.Logf("\n%s\ncrossover at %s", res.Render(), HumanBytes(cx))
}

func TestFigure1Deterministic(t *testing.T) {
	cfg := Fig1Config{MinBytes: 1 * MiB, MaxBytes: 4 * MiB, Reps: 2}
	a, err := Figure1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Points) != len(b.Points) {
		t.Fatalf("point counts differ")
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Errorf("run diverged at %d: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
	// Within a run, reps are identical too (min == max).
	for _, p := range a.Points {
		if p.Min != p.Max {
			t.Errorf("%v/%s: min %v != max %v (nondeterminism)", p.Method, HumanBytes(p.SizeBytes), p.Min, p.Max)
		}
	}
}

func TestTable1(t *testing.T) {
	res, err := Table1()
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	want := map[string][]string{
		"child sees parent's memory":       {"yes", "yes", "no", "no"},
		"memory isolated after create":     {"yes", "NO (shared)", "fresh", "fresh"},
		"descriptors inherited implicitly": {"yes", "yes", "yes", "no"},
		"O_CLOEXEC honoured":               {"closed", "closed", "closed", "n/a (opt-in)"},
		"signal handlers survive":          {"yes (stale ptr)", "yes (stale ptr)", "reset", "reset"},
		"file offsets shared":              {"yes (shared)", "yes (shared)", "yes (shared)", "not inherited"},
		"safe with threads+locks":          {"NO (deadlock)", "NO (deadlock)", "yes", "yes"},
	}
	for _, row := range res.Rows {
		exp, ok := want[row.Property]
		if !ok {
			continue
		}
		for i, cell := range row.Cells {
			if cell != exp[i] {
				t.Errorf("%s[%s] = %q, want %q", row.Property, res.Columns[i], cell, exp[i])
			}
		}
	}
	// O(1) row: fork must be Θ(size), spawn/builder/vfork O(1).
	for _, row := range res.Rows {
		if row.Property != "cost O(1) in parent size" {
			continue
		}
		if row.Cells[0] == "yes" {
			t.Errorf("fork claimed O(1): %v", row.Cells)
		}
		for i := 1; i < 4; i++ {
			if row.Cells[i] != "yes" {
				t.Errorf("%s not O(1): %q", res.Columns[i], row.Cells[i])
			}
		}
	}
	t.Logf("\n%s", res.Render())
}

func TestCowTax(t *testing.T) {
	res, err := CowTax(16 * MiB)
	if err != nil {
		t.Fatalf("CowTax: %v", err)
	}
	if res.ParentPerPage < 5*res.PreForkPerPage {
		t.Errorf("COW tax too small: pre=%v parent-after=%v", res.PreForkPerPage, res.ParentPerPage)
	}
	if res.PageCopiesParent != res.Pages {
		t.Errorf("parent copied %d frames, want %d", res.PageCopiesParent, res.Pages)
	}
	// The child rewrites after the parent already copied: every
	// frame is back to a single reference, so the child reclaims in
	// place — cheaper than copying.
	if res.ChildPerPage >= res.ParentPerPage {
		t.Errorf("child per-page %v should be below parent's %v (reclaim path)", res.ChildPerPage, res.ParentPerPage)
	}
	t.Logf("\n%s", res.Render())
}

func TestHugePages(t *testing.T) {
	res, err := HugePages(4*MiB, 64*MiB)
	if err != nil {
		t.Fatalf("HugePages: %v", err)
	}
	for _, size := range SizeSweep(4*MiB, 64*MiB) {
		var small, huge HugePoint
		for _, p := range res.Points {
			if p.SizeBytes != size {
				continue
			}
			if p.Huge {
				huge = p
			} else {
				small = p
			}
		}
		if small.PTECopies != huge.PTECopies*512 {
			t.Errorf("%s: PTE ratio %d/%d, want 512x", HumanBytes(size), small.PTECopies, huge.PTECopies)
		}
		if huge.ForkExec >= small.ForkExec {
			t.Errorf("%s: huge fork (%v) not faster than 4K fork (%v)", HumanBytes(size), huge.ForkExec, small.ForkExec)
		}
	}
	t.Logf("\n%s", res.Render())
}

func TestOvercommit(t *testing.T) {
	res, err := Overcommit(128 * MiB)
	if err != nil {
		t.Fatalf("Overcommit: %v", err)
	}
	for _, o := range res.Outcomes {
		switch {
		case o.Policy == mem.CommitStrict && o.ParentFrac > 0.5:
			if o.ForkOK {
				t.Errorf("strict fork of %.0f%% parent should fail", o.ParentFrac*100)
			}
		case o.Policy == mem.CommitHeuristic && o.ParentFrac > 0.5:
			if !o.ForkOK {
				t.Errorf("heuristic fork of %.0f%% parent should succeed", o.ParentFrac*100)
			}
			if o.ChildTouch != "OOM-KILL" {
				t.Errorf("heuristic child touch of %.0f%% parent = %q, want OOM-KILL", o.ParentFrac*100, o.ChildTouch)
			}
		case o.ParentFrac < 0.3:
			if !o.ForkOK || o.ChildTouch != "ok" {
				t.Errorf("%v/%.0f%%: fork=%v touch=%q, want clean success", o.Policy, o.ParentFrac*100, o.ForkOK, o.ChildTouch)
			}
		}
	}
	t.Logf("\n%s", res.Render())
}

func TestCompose(t *testing.T) {
	res, err := Compose()
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	for _, c := range res.Cases {
		if !c.Pass {
			t.Errorf("%s: expected %q, got %q", c.Name, c.Expected, c.Got)
		}
	}
	t.Logf("\n%s", res.Render())
}

func TestScale(t *testing.T) {
	res, err := Scale(1*MiB, 32*MiB)
	if err != nil {
		t.Fatalf("Scale: %v", err)
	}
	// At 32 MiB, spawn and builder should beat fork, and emulated
	// fork should be the slowest by far.
	perf := map[core.Method]float64{}
	for _, p := range res.Points {
		if p.SizeBytes == 32*MiB {
			perf[p.Method] = p.PerSecond
		}
	}
	if perf[core.MethodSpawn] <= perf[core.MethodForkExec] {
		t.Errorf("spawn (%f/s) should beat fork (%f/s) at 32MiB", perf[core.MethodSpawn], perf[core.MethodForkExec])
	}
	if perf[core.MethodEmulatedForkExec] >= perf[core.MethodForkExec] {
		t.Errorf("emulated fork (%f/s) should be slower than kernel fork (%f/s)", perf[core.MethodEmulatedForkExec], perf[core.MethodForkExec])
	}
	t.Logf("\n%s", res.Render())
}

func TestAblations(t *testing.T) {
	res, err := Ablations(16 * MiB)
	if err != nil {
		t.Fatalf("Ablations: %v", err)
	}
	for _, row := range res.EagerRows {
		if row.Eager <= row.COW {
			t.Errorf("%s: eager fork (%v) should cost more than COW (%v)",
				HumanBytes(row.SizeBytes), row.Eager, row.COW)
		}
	}
	if res.MitigationDeadlock != "deadlock" {
		t.Errorf("without mitigation: %q, want deadlock", res.MitigationDeadlock)
	}
	if res.MitigationRefused == "deadlock" {
		t.Errorf("mitigation did not prevent the deadlock")
	}
	t.Logf("\n%s", res.Render())
}

// TestServerClaimShape checks E8's qualitative claim on a reduced
// sweep: prefork-server throughput under fork+exec falls as the server
// heap grows, while spawn's and the builder's stay flat and above it.
func TestServerClaimShape(t *testing.T) {
	res, err := ServerClaim(64*MiB, 16)
	if err != nil {
		t.Fatalf("ServerClaim: %v", err)
	}
	get := func(via sim.Strategy, heap uint64) float64 {
		for _, p := range res.Points {
			if p.Via == via && p.HeapBytes == heap {
				return p.Metrics.RequestsPerVSec
			}
		}
		t.Fatalf("missing point %v/%d", via, heap)
		return 0
	}
	small, big := uint64(16*MiB), uint64(64*MiB)
	if fs, fb := get(sim.ForkExec, small), get(sim.ForkExec, big); fb >= fs/2 {
		t.Errorf("fork throughput did not collapse with heap: %0.f → %.0f req/vs", fs, fb)
	}
	if ss, sb := get(sim.Spawn, small), get(sim.Spawn, big); sb < ss*0.95 {
		t.Errorf("spawn throughput not flat: %.0f → %.0f req/vs", ss, sb)
	}
	for _, via := range []sim.Strategy{sim.Spawn, sim.Builder} {
		if get(via, big) <= get(sim.ForkExec, big) {
			t.Errorf("%v does not beat fork+exec at %s", via, HumanBytes(big))
		}
	}
	if r := res.Render(); len(r) == 0 {
		t.Error("empty render")
	}
}

// TestFleetClaimShape checks E10's qualitative claims on a reduced
// sweep: the spawn fleet out-serves the fork fleet at every size, the
// rolling wave's re-warm tax is higher under fork than spawn, and both
// fleet throughput and the restart tax scale linearly with the fleet.
func TestFleetClaimShape(t *testing.T) {
	res, err := FleetClaim(FleetClaimConfig{
		MachineCounts: []int{2, 4},
		Requests:      6,
		HeapBytes:     16 * MiB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Spawn.Aggregate.RequestsPerVSec <= p.Fork.Aggregate.RequestsPerVSec {
			t.Errorf("%d machines: spawn fleet (%.0f req/s) does not beat fork fleet (%.0f req/s)",
				p.Machines, p.Spawn.Aggregate.RequestsPerVSec, p.Fork.Aggregate.RequestsPerVSec)
		}
		if p.Fork.Aggregate.RestartNanos <= p.Spawn.Aggregate.RestartNanos {
			t.Errorf("%d machines: fork restart tax (%d) not above spawn's (%d)",
				p.Machines, p.Fork.Aggregate.RestartNanos, p.Spawn.Aggregate.RestartNanos)
		}
	}
	// The wave's total tax doubles when the fleet doubles: machines
	// are identical, so the aggregate is exactly proportional.
	small, big := res.Points[0], res.Points[1]
	if big.Fork.Aggregate.RestartNanos != 2*small.Fork.Aggregate.RestartNanos {
		t.Errorf("fork restart tax not proportional: %d machines pay %d, %d machines pay %d",
			small.Machines, small.Fork.Aggregate.RestartNanos,
			big.Machines, big.Fork.Aggregate.RestartNanos)
	}
	if r := res.Render(); len(r) == 0 {
		t.Error("empty render")
	}
}

// TestCPUSweep is the acceptance bar for the SMP refactor's claim:
// fork's per-snapshot COW/shootdown tax grows monotonically with the
// core count, while the fork-less snapshot pays no IPIs at any count.
func TestCPUSweep(t *testing.T) {
	res, err := CPUSweep(CPUSweepConfig{
		HeapBytes: 8 * MiB,
		Snapshots: 3,
		FarmJobs:  4,
		CPUCounts: []int{1, 2, 4, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("%d points", len(res.Points))
	}
	prev := -1.0
	for _, p := range res.Points {
		fork := p.ForkIPIsPerSnapshot()
		if fork <= prev {
			t.Errorf("fork IPIs/snapshot not monotonic: %.0f at %d CPUs after %.0f",
				fork, p.CPUs, prev)
		}
		prev = fork
		if p.CPUs == 1 && fork != 0 {
			t.Errorf("1-CPU fork charged %.0f IPIs/snapshot", fork)
		}
		if flat := p.FlatIPIsPerSnapshot(); flat != 0 {
			t.Errorf("fork-less snapshot at %d CPUs charged %.0f IPIs", p.CPUs, flat)
		}
		if p.Fork.PageCopies == 0 {
			t.Errorf("no COW tax at %d CPUs — the snapshot is not being mutated under", p.CPUs)
		}
	}
	// The parallel farm: spawn's throughput advantage must not
	// shrink as cores grow (fork serializes on the parent's page
	// tables; spawn does not).
	first := res.Points[0]
	last := res.Points[len(res.Points)-1]
	ratioFirst := first.FarmSpawn.RequestsPerVSec / first.FarmFork.RequestsPerVSec
	ratioLast := last.FarmSpawn.RequestsPerVSec / last.FarmFork.RequestsPerVSec
	if ratioLast < ratioFirst*0.9 {
		t.Errorf("spawn/fork farm-throughput ratio shrank with cores: %.2f → %.2f", ratioFirst, ratioLast)
	}
	if r := res.Render(); len(r) == 0 {
		t.Error("empty render")
	}
}

// TestChaosClaimShape checks E11's qualitative claim on a reduced
// config: under identical deterministic fault waves the fork server
// loses a larger share of its traffic than the spawn server (fork's
// Θ(heap) commit reservations are what the pressure windows refuse),
// both servers survive to the end of the run, and the experiment is
// deterministic.
func TestChaosClaimShape(t *testing.T) {
	cfg := ChaosClaimConfig{HeapBytes: 16 * MiB, Requests: 48}
	res, err := ChaosClaim(cfg)
	if err != nil {
		t.Fatalf("ChaosClaim: %v", err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points, want fork and spawn", len(res.Points))
	}
	fork, spawn := res.Points[0], res.Points[1]
	if fork.Strategy != "fork+exec" || spawn.Strategy != "posix_spawn" {
		t.Fatalf("unexpected strategy order: %q, %q", fork.Strategy, spawn.Strategy)
	}
	for _, p := range res.Points {
		if p.Clean.FailedRequests != 0 {
			t.Errorf("%s clean run lost %d requests", p.Strategy, p.Clean.FailedRequests)
		}
		if got := p.Chaos.Requests + p.Chaos.FailedRequests; got != uint64(cfg.Requests) {
			t.Errorf("%s chaos run accounted %d requests, want %d", p.Strategy, got, cfg.Requests)
		}
	}
	if fork.Chaos.FailedRequests == 0 {
		t.Error("fault waves never hit the fork server")
	}
	if fork.Survival() >= spawn.Survival() {
		t.Errorf("fork survival %.2f >= spawn survival %.2f; the overcommit asymmetry is gone",
			fork.Survival(), spawn.Survival())
	}
	// Deterministic: the whole table is a pure function of the config.
	again, err := ChaosClaim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Render() != again.Render() {
		t.Error("two identical ChaosClaim runs rendered differently")
	}
	if len(res.Render()) == 0 {
		t.Error("empty render")
	}
}

// TestScaleOutClaimShape pins E12's headline: identical pools chasing
// the same surge, and the fork pool's measured scale-out latency at a
// 64 MiB heap is at least twice the spawn pool's — growing with the
// heap, while spawn's stays flat.
func TestScaleOutClaimShape(t *testing.T) {
	cfg := ScaleOutConfig{HeapSizes: []uint64{4 * MiB, 64 * MiB}}
	res, err := ScaleOutClaim(cfg)
	if err != nil {
		t.Fatalf("ScaleOutClaim: %v", err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points, want one per heap size", len(res.Points))
	}
	for _, p := range res.Points {
		if len(p.Fork.ScaleOuts) == 0 || len(p.Spawn.ScaleOuts) == 0 {
			t.Fatalf("heap %s: a pool never scaled out", HumanBytes(p.HeapBytes))
		}
		if p.Fork.Served != p.Spawn.Served || p.Fork.Failed != 0 {
			t.Errorf("heap %s: pools saw different demand (%d vs %d served, %d failed)",
				HumanBytes(p.HeapBytes), p.Fork.Served, p.Spawn.Served, p.Fork.Failed)
		}
	}
	small, big := res.Points[0], res.Points[1]
	if big.Ratio() < 2 {
		t.Errorf("64 MiB fork:spawn scale-out ratio %.2fx, want >= 2x", big.Ratio())
	}
	if big.Fork.MeanScaleOutNanos <= small.Fork.MeanScaleOutNanos {
		t.Errorf("fork scale-out did not grow with the heap: %d -> %d",
			small.Fork.MeanScaleOutNanos, big.Fork.MeanScaleOutNanos)
	}
	if big.Fork.SLORate >= big.Spawn.SLORate {
		t.Errorf("fork pool SLO %.2f not below spawn %.2f at 64 MiB",
			big.Fork.SLORate, big.Spawn.SLORate)
	}
	for _, want := range []string{"E12", "fork scale-out", "spawn scale-out", "64MiB"} {
		if r := res.Render(); !strings.Contains(r, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// TestNetClaimShape pins E15's headline: the same backend restart
// behind the netlb balancer is a retry storm under fork and a
// non-event under spawn, because only fork's Θ(heap) worker re-warm
// overruns the client retry timeout.
func TestNetClaimShape(t *testing.T) {
	cfg := NetClaimConfig{}
	res, err := NetClaim(cfg)
	if err != nil {
		t.Fatalf("NetClaim: %v", err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points, want fork and spawn", len(res.Points))
	}
	fork, spawn := res.Points[0], res.Points[1]
	if fork.Strategy != "fork+exec" || spawn.Strategy != "posix_spawn" {
		t.Fatalf("unexpected strategy order: %q, %q", fork.Strategy, spawn.Strategy)
	}
	for _, p := range res.Points {
		if got := p.M.Requests + p.M.FailedRequests; got != uint64(res.Requests) {
			t.Errorf("%s accounted %d requests, want %d", p.Strategy, got, res.Requests)
		}
	}
	if fork.M.NetTimeouts == 0 || fork.M.NetRetries == 0 {
		t.Errorf("fork restart caused no storm: %d timeouts, %d retries",
			fork.M.NetTimeouts, fork.M.NetRetries)
	}
	if spawn.M.NetTimeouts != 0 {
		t.Errorf("spawn restart timed out %d attempts; its re-warm should fit the timeout", spawn.M.NetTimeouts)
	}
	if fork.M.VirtualNanos <= spawn.M.VirtualNanos {
		t.Errorf("fork makespan %dns not above spawn %dns", fork.M.VirtualNanos, spawn.M.VirtualNanos)
	}
	// Deterministic: the whole table is a pure function of the config.
	again, err := NetClaim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Render() != again.Render() {
		t.Error("two identical NetClaim runs rendered differently")
	}
}

func TestMigrateClaimShape(t *testing.T) {
	cfg := MigrateConfig{HeapSizes: []uint64{4 * MiB, 16 * MiB}, Requests: 1}
	res, err := MigrateClaim(cfg)
	if err != nil {
		t.Fatalf("MigrateClaim: %v", err)
	}
	if len(res.Points) != 8 {
		t.Fatalf("%d points, want 4 strategies x 2 heaps", len(res.Points))
	}
	byStrategy := map[string][]MigratePoint{}
	for _, p := range res.Points {
		byStrategy[p.Strategy] = append(byStrategy[p.Strategy], p)
	}
	// The fork family's downtime and page traffic grow with the heap.
	for _, s := range []string{"fork+exec", "fork(eager)+exec"} {
		pts := byStrategy[s]
		small, big := pts[0].M, pts[1].M
		if small.Requests != 1 || big.Requests != 1 || small.MigrateRefused != 0 {
			t.Fatalf("%s: migration did not complete: %+v", s, small)
		}
		if big.MigrateDowntimeNanos <= small.MigrateDowntimeNanos {
			t.Errorf("%s downtime flat across heaps: %d vs %d ns",
				s, small.MigrateDowntimeNanos, big.MigrateDowntimeNanos)
		}
		if big.MigratePagesSent <= small.MigratePagesSent {
			t.Errorf("%s pages flat across heaps: %d vs %d",
				s, small.MigratePagesSent, big.MigratePagesSent)
		}
	}
	// Spawn moves for the same price at any heap size.
	spawn := byStrategy["posix_spawn"]
	if spawn[0].M.MigrateDowntimeNanos != spawn[1].M.MigrateDowntimeNanos {
		t.Errorf("spawn downtime varies with heap: %d vs %d ns",
			spawn[0].M.MigrateDowntimeNanos, spawn[1].M.MigrateDowntimeNanos)
	}
	if spawn[0].M.MigratePagesSent != spawn[1].M.MigratePagesSent {
		t.Errorf("spawn pages vary with heap: %d vs %d",
			spawn[0].M.MigratePagesSent, spawn[1].M.MigratePagesSent)
	}
	// The vfork borrower is refused cleanly at every size.
	for _, p := range byStrategy["vfork+exec"] {
		if p.M.Requests != 0 || p.M.MigrateRefused != 1 {
			t.Errorf("vfork at %s: migrated %d, refused %d; want 0/1",
				HumanBytes(p.HeapBytes), p.M.Requests, p.M.MigrateRefused)
		}
		if p.M.MigrateDowntimeNanos != 0 || p.M.NetPacketsSent != 0 {
			t.Errorf("vfork refusal still cost: %dns, %d pkts",
				p.M.MigrateDowntimeNanos, p.M.NetPacketsSent)
		}
	}
	// Deterministic: the whole table is a pure function of the config.
	again, err := MigrateClaim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Render() != again.Render() {
		t.Error("two identical MigrateClaim runs rendered differently")
	}
}
