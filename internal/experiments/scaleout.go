package experiments

import (
	"fmt"

	"repro/sim/cluster"
)

// ---------------------------------------------------------------
// E12 — the paper's claim at the autoscaler layer. Per-machine (E8)
// fork makes a big server slow; per-fleet (E10) it makes every rolling
// restart repay the warm-up tax. The cluster layer is where clouds
// actually feel it: when a traffic surge forces a pool to scale out, a
// new machine is useful only once it is warm, and under fork warming
// means heap dirtying plus Θ(heap) page-table duplication per pool
// worker. The experiment races identical fork and spawn pools against
// the same surge (sim/cluster's surge scenario) over a server-heap
// ladder and reports measured scale-out latency — decision step to
// first served request — and the SLO rate each pool holds while its
// new capacity boots.
// ---------------------------------------------------------------

// ScaleOutPoint is one heap size's fork-vs-spawn surge comparison.
type ScaleOutPoint struct {
	HeapBytes uint64

	// Fork and Spawn are the two pools' reports from one cluster run
	// (same traffic, same autoscaler, same balancer seed).
	Fork  cluster.PoolReport
	Spawn cluster.PoolReport
}

// Ratio is fork's mean scale-out latency over spawn's — the headline
// number (Θ(heap) warm-up vs flat).
func (p ScaleOutPoint) Ratio() float64 {
	if p.Spawn.MeanScaleOutNanos == 0 {
		return 0
	}
	return float64(p.Fork.MeanScaleOutNanos) / float64(p.Spawn.MeanScaleOutNanos)
}

// ScaleOutResult is E12.
type ScaleOutResult struct {
	Points []ScaleOutPoint
}

// ScaleOutConfig parameterizes ScaleOutClaim; zero fields get defaults.
type ScaleOutConfig struct {
	HeapSizes []uint64 // server-heap ladder (default {4, 16, 64} MiB)
}

// ScaleOutClaim runs E12. Deterministic: each point is one
// cluster.Run, which is a pure function of its Spec at any host
// parallelism.
func ScaleOutClaim(cfg ScaleOutConfig) (*ScaleOutResult, error) {
	if len(cfg.HeapSizes) == 0 {
		cfg.HeapSizes = []uint64{4 * MiB, 16 * MiB, 64 * MiB}
	}
	res := &ScaleOutResult{}
	for _, heap := range cfg.HeapSizes {
		rep, err := cluster.Run(cluster.SurgeSpec(heap))
		if err != nil {
			return nil, fmt.Errorf("scaleoutclaim @%s: %w", HumanBytes(heap), err)
		}
		pt := ScaleOutPoint{HeapBytes: heap}
		for _, p := range rep.Pools {
			switch p.Pool {
			case "fork":
				pt.Fork = p
			case "spawn":
				pt.Spawn = p
			}
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Render formats E12 as a claim table: scale-out latency and surge SLO
// rate, fork pool vs spawn pool, as the server heap grows.
func (r *ScaleOutResult) Render() string {
	rows := [][]string{{
		"heap",
		"fork scale-out", "spawn scale-out", "fork:spawn",
		"fork SLO%", "spawn SLO%",
		"fork PTE copies",
	}}
	for _, p := range r.Points {
		rows = append(rows, []string{
			HumanBytes(p.HeapBytes),
			fmt.Sprintf("%.1fms", float64(p.Fork.MeanScaleOutNanos)/1e6),
			fmt.Sprintf("%.1fms", float64(p.Spawn.MeanScaleOutNanos)/1e6),
			fmt.Sprintf("%.2fx", p.Ratio()),
			fmt.Sprintf("%.1f%%", 100*p.Fork.SLORate),
			fmt.Sprintf("%.1f%%", 100*p.Spawn.SLORate),
			fmt.Sprint(p.Fork.WarmupPTECopies),
		})
	}
	head := "E12 — scale-out latency under a traffic surge (cluster autoscaler, fork pool vs spawn pool):\n" +
		"both pools chase the same spike; a scale-up machine serves only once it is warm, and under\n" +
		"fork warming pays heap dirtying plus Θ(heap) page-table duplication per pool worker — so the\n" +
		"fork pool's new capacity arrives later, and the backlog meanwhile is its missed SLOs.\n\n"
	return head + renderTable(rows)
}
