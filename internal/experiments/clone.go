package experiments

import (
	"fmt"
	"time"

	"repro/sim"
	"repro/sim/load"
)

// ---------------------------------------------------------------
// E13 — the simulator's own fork-and-run story, measured host-side.
// E1–E12 charge process creation on the simulated machines' virtual
// clocks; E13 turns the lens on the harness itself. A fleet or cluster
// run used to pay Θ(heap) *host* time per machine — boot, dirty the
// server heap page by page, park the pool — before a single virtual
// nanosecond of the measured loop ran. sim.System.Snapshot freezes one
// warmed machine into an immutable template whose frame contents and
// page tables are host-COW-shared into every Template.Clone, so
// stamping machine N costs O(live structures), not Θ(heap). The
// experiment measures exactly that: cold boot+warm per machine versus
// snapshot-once-then-stamp, over a server-heap ladder, plus the
// break-even heap below which the template machinery stops paying.
// Virtual-time metrics are identical on both paths by construction
// (the clone-equivalence tests byte-compare them); only host seconds
// differ, which is why this table — alone among the claim experiments
// — reports wall-clock and is not byte-reproducible.
// ---------------------------------------------------------------

// ClonePoint is one heap size's cold-vs-clone host-time comparison.
type ClonePoint struct {
	HeapBytes uint64
	Machines  int

	// ColdNanos is the mean host time to boot and warm one machine
	// from scratch (sim.NewSystem + load.Prepare — Run's warm phase).
	ColdNanos int64
	// TemplateNanos is the one-time host cost of the template: one
	// cold boot+warm plus the Snapshot freeze. Amortized over every
	// machine stamped from it.
	TemplateNanos int64
	// CloneNanos is the mean host time to stamp one machine from the
	// frozen template (Template.Clone).
	CloneNanos int64
	// ResidentPages is how many physical pages each stamped machine
	// inherits from the template without re-faulting them in. (Most
	// are lazy zero pages, which the host never materialises at all —
	// the frames a clone host-COW-shares bytes for are the handful
	// with real contents; see mem.Physical.SharedFrames.)
	ResidentPages uint64
}

// Speedup is cold boot+warm over clone, per machine — the headline
// number (Θ(heap) vs O(live structures)).
func (p ClonePoint) Speedup() float64 {
	if p.CloneNanos == 0 {
		return 0
	}
	return float64(p.ColdNanos) / float64(p.CloneNanos)
}

// CloneResult is E13.
type CloneResult struct {
	Points []ClonePoint

	// BreakEvenHeap is the smallest probed heap at which a clone is
	// still cheaper than a cold boot+warm (0 if the probe never saw
	// the cold path win, i.e. cloning won all the way down).
	BreakEvenHeap uint64
}

// CloneConfig parameterizes CloneClaim; zero fields get defaults.
type CloneConfig struct {
	HeapSizes []uint64 // server-heap ladder (default {4, 16, 64} MiB)
	Machines  int      // machines stamped per point (default 8)
}

// cloneWorkCfg is the warm shape under test: the prefork cell, the
// paper's long-lived-server case and the shape sim/fleet warms most.
func cloneWorkCfg(heap uint64) load.Config {
	return load.Config{Scenario: load.Prefork, Via: sim.Spawn, HeapBytes: heap}
}

// coldBootWarm boots and warms one machine exactly the way load.Run
// does before its measured loop, returning the host time it took.
func coldBootWarm(cfg load.Config) (int64, error) {
	shape := cfg.Shape()
	t0 := time.Now()
	sys, err := sim.NewSystem(
		sim.WithRAM(shape.RAMBytes),
		sim.WithCPUs(shape.CPUs),
		sim.WithUserland("true", "echo", "cat", "hog", "smpspin"),
	)
	if err != nil {
		return 0, err
	}
	if _, err := load.Prepare(sys, cfg); err != nil {
		return 0, err
	}
	return time.Since(t0).Nanoseconds(), nil
}

// clonePoint measures one heap size: machines cold boots, one template
// freeze, machines stamps.
func clonePoint(heap uint64, machines int) (ClonePoint, error) {
	pt := ClonePoint{HeapBytes: heap, Machines: machines}
	cfg := cloneWorkCfg(heap)

	var coldTotal int64
	for i := 0; i < machines; i++ {
		ns, err := coldBootWarm(cfg)
		if err != nil {
			return pt, fmt.Errorf("cold boot @%s: %w", HumanBytes(heap), err)
		}
		coldTotal += ns
	}
	pt.ColdNanos = coldTotal / int64(machines)

	t0 := time.Now()
	tpl, err := load.NewTemplate(cfg)
	if err != nil {
		return pt, fmt.Errorf("template @%s: %w", HumanBytes(heap), err)
	}
	pt.TemplateNanos = time.Since(t0).Nanoseconds()

	var cloneTotal int64
	for i := 0; i < machines; i++ {
		t0 := time.Now()
		p, err := tpl.Stamp(cfg)
		if err != nil {
			return pt, fmt.Errorf("stamp @%s: %w", HumanBytes(heap), err)
		}
		cloneTotal += time.Since(t0).Nanoseconds()
		if i == 0 {
			pt.ResidentPages = p.System().Kernel().Phys().AllocatedPages()
		}
	}
	pt.CloneNanos = cloneTotal / int64(machines)
	return pt, nil
}

// CloneClaim runs E13. Host-timed: the table's nanoseconds vary run to
// run (unlike every virtual-time experiment), but the *shape* — clone
// cost flat while cold cost grows Θ(heap) — is the claim.
func CloneClaim(cfg CloneConfig) (*CloneResult, error) {
	if len(cfg.HeapSizes) == 0 {
		cfg.HeapSizes = []uint64{4 * MiB, 16 * MiB, 64 * MiB}
	}
	if cfg.Machines <= 0 {
		cfg.Machines = 8
	}
	res := &CloneResult{}
	for _, heap := range cfg.HeapSizes {
		pt, err := clonePoint(heap, cfg.Machines)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}

	// Probe downward from the smallest ladder point for the break-even
	// heap: halve until the cold path wins (tiny heaps make the warm
	// phase cheaper than cloning the boot-time structures) or until
	// 64KiB. Fewer machines per probe — it is a boundary search, not a
	// claim table.
	probeMachines := cfg.Machines
	if probeMachines > 4 {
		probeMachines = 4
	}
	for heap := cfg.HeapSizes[0]; heap >= 64*KiB; heap /= 2 {
		pt, err := clonePoint(heap, probeMachines)
		if err != nil {
			return nil, err
		}
		if pt.Speedup() < 1 {
			break
		}
		res.BreakEvenHeap = heap
	}
	return res, nil
}

// Render formats E13 as a claim table: host time per machine, cold
// boot+warm vs template clone, as the server heap grows.
func (r *CloneResult) Render() string {
	rows := [][]string{{
		"heap",
		"cold boot+warm", "template clone", "speedup",
		"template freeze", "resident pages",
	}}
	for _, p := range r.Points {
		rows = append(rows, []string{
			HumanBytes(p.HeapBytes),
			fmt.Sprintf("%.2fms", float64(p.ColdNanos)/1e6),
			fmt.Sprintf("%.2fms", float64(p.CloneNanos)/1e6),
			fmt.Sprintf("%.1fx", p.Speedup()),
			fmt.Sprintf("%.2fms", float64(p.TemplateNanos)/1e6),
			fmt.Sprint(p.ResidentPages),
		})
	}
	head := "E13 — template machines: host cost of stamping a warmed machine, cold vs clone (means over\n" +
		fmt.Sprintf("%d machines per point; HOST wall-clock, so unlike the virtual-time tables these numbers\n", r.machines()) +
		"vary run to run). Cold pays boot + Θ(heap) dirtying per machine; Snapshot freezes that work\n" +
		"once and Template.Clone host-COW-shares frames and page tables into each stamp, so the\n" +
		"per-machine cost is O(live structures). Virtual-time metrics are byte-identical either way.\n\n"
	tail := "\nclone never beat cold at any probed heap size\n"
	if r.BreakEvenHeap > 0 {
		tail = fmt.Sprintf("\nclone stays cheaper than cold boot+warm down to %s heap\n", HumanBytes(r.BreakEvenHeap))
	}
	return head + renderTable(rows) + tail
}

func (r *CloneResult) machines() int {
	if len(r.Points) == 0 {
		return 0
	}
	return r.Points[0].Machines
}
