package experiments

import (
	"fmt"

	"repro/sim"
	"repro/sim/fault"
	"repro/sim/load"
)

// ---------------------------------------------------------------
// E11 — the overcommit argument made measurable. §4.6 of the paper
// argues that fork turns memory exhaustion into a latent, badly-timed
// failure: every fork must reserve (or, overcommitted, pretend to
// reserve) the whole parent, so under pressure a big server's
// creations are exactly the requests that fail. The experiment runs
// the prefork server under identical deterministic memory-pressure
// fault waves (plus a worker kill wave hitting every strategy alike)
// and compares survival: fork's Θ(heap) commit reservations are mowed
// down by the pressure windows while spawn's few-page requests squeeze
// through, so the fork server drops a large slice of its traffic that
// the spawn server serves.
// ---------------------------------------------------------------

// ChaosClaimConfig parameterizes E11; zero fields get defaults.
type ChaosClaimConfig struct {
	HeapBytes uint64 // server heap (default 64 MiB)
	Requests  int    // requests per run (default 64)
	CPUs      int    // simulated CPUs (default 1)
	Seed      uint64 // fault-wave seed (default 1)
}

// ChaosClaimPoint is one strategy's clean-vs-chaos comparison.
type ChaosClaimPoint struct {
	Strategy string
	Clean    *load.Metrics // no faults installed
	Chaos    *load.Metrics // same config under fault.Chaos(seed, 0)
}

// Survival reports the fraction of chaos-run requests actually served.
func (p ChaosClaimPoint) Survival() float64 {
	total := p.Chaos.Requests + p.Chaos.FailedRequests
	if total == 0 {
		return 0
	}
	return float64(p.Chaos.Requests) / float64(total)
}

// ChaosClaimResult is E11.
type ChaosClaimResult struct {
	HeapBytes uint64
	Requests  int
	CPUs      int
	Seed      uint64
	Points    []ChaosClaimPoint
}

// ChaosClaim runs E11. Deterministic: the fault schedule is a pure
// function of (seed, virtual time, op counter), so the table is a pure
// function of the config.
func ChaosClaim(cfg ChaosClaimConfig) (*ChaosClaimResult, error) {
	if cfg.HeapBytes == 0 {
		cfg.HeapBytes = 64 * MiB
	}
	if cfg.Requests == 0 {
		cfg.Requests = 64
	}
	if cfg.CPUs == 0 {
		cfg.CPUs = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	res := &ChaosClaimResult{
		HeapBytes: cfg.HeapBytes, Requests: cfg.Requests, CPUs: cfg.CPUs, Seed: cfg.Seed,
	}
	for _, via := range []sim.Strategy{sim.ForkExec, sim.Spawn} {
		base := load.Config{
			Scenario:  load.Prefork,
			Via:       via,
			CPUs:      cfg.CPUs,
			Requests:  cfg.Requests,
			HeapBytes: cfg.HeapBytes,
		}
		clean, err := load.Run(base)
		if err != nil {
			return nil, fmt.Errorf("chaosclaim %v clean: %w", via, err)
		}
		chaosCfg := base
		chaosCfg.Faults = fault.Chaos(cfg.Seed, 0)
		chaos, err := load.Run(chaosCfg)
		if err != nil {
			return nil, fmt.Errorf("chaosclaim %v chaos: %w", via, err)
		}
		res.Points = append(res.Points, ChaosClaimPoint{
			Strategy: via.String(), Clean: clean, Chaos: chaos,
		})
	}
	return res, nil
}

// Render formats E11 as a table: throughput and survival under
// identical fault waves, fork vs spawn.
func (r *ChaosClaimResult) Render() string {
	rows := [][]string{{
		"strategy",
		"clean req/s", "chaos req/s",
		"served", "failed", "survival", "oom kills",
	}}
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Strategy,
			fmt.Sprintf("%.0f", p.Clean.RequestsPerVSec),
			fmt.Sprintf("%.0f", p.Chaos.RequestsPerVSec),
			fmt.Sprint(p.Chaos.Requests),
			fmt.Sprint(p.Chaos.FailedRequests),
			fmt.Sprintf("%.0f%%", 100*p.Survival()),
			fmt.Sprint(p.Chaos.OOMKills),
		})
	}
	head := fmt.Sprintf(
		"E11 — survival under memory-pressure fault waves (prefork, heap %s, %d requests, seed %d):\n"+
			"identical deterministic ENOMEM waves and worker kill waves hit every strategy; fork's\n"+
			"Θ(heap) commit reservations are what the pressure windows refuse (§4.6's overcommit\n"+
			"argument), so the fork server drops traffic the spawn server serves.\n\n",
		HumanBytes(r.HeapBytes), r.Requests, r.Seed)
	return head + renderTable(rows)
}
