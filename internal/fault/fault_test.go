package fault

import (
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/errno"
)

// TestPointNames pins every point's render name: the sweep tests and
// trace golden files key on these strings.
func TestPointNames(t *testing.T) {
	want := []string{
		"frame.alloc", "commit.reserve", "pagetable.clone", "cow.break",
		"fdtable.clone", "exec.image", "thread.create", "request.kill",
		"machine.kill", "net.send", "net.deliver",
	}
	pts := Points()
	if len(pts) != len(want) {
		t.Fatalf("Points() has %d entries, want %d", len(pts), len(want))
	}
	for i, p := range pts {
		if p.String() != want[i] {
			t.Errorf("point %d renders %q, want %q", i, p, want[i])
		}
	}
	if got := Point(200).String(); got != "point(200)" {
		t.Errorf("out-of-range point renders %q", got)
	}
}

// TestFailOpTargetsExactlyOneOp: the sweep primitive fires on its
// (point, seq) pair and nothing else.
func TestFailOpTargetsExactlyOneOp(t *testing.T) {
	s := FailOp(PointCommit, 3, errno.ENOMEM)
	for seq := uint64(1); seq <= 5; seq++ {
		for _, p := range Points() {
			got := s.Decide(Op{Point: p, Seq: seq})
			want := errno.OK
			if p == PointCommit && seq == 3 {
				want = errno.ENOMEM
			}
			if got != want {
				t.Errorf("Decide(%v seq=%d) = %v, want %v", p, seq, got, want)
			}
		}
	}
}

// TestInjectorCountsAndNilSafety: a nil injector neither counts nor
// fails; a live one counts every call and injects per the schedule.
func TestInjectorCountsAndNilSafety(t *testing.T) {
	var nilInj *Injector
	if e := nilInj.Fail(PointFrameAlloc, 1); e != errno.OK {
		t.Fatalf("nil injector injected %v", e)
	}
	if nilInj.Count(PointFrameAlloc) != 0 || nilInj.Injected() != 0 {
		t.Fatal("nil injector reported nonzero counts")
	}

	m := cost.NewMeter(cost.DefaultModel())
	inj := NewInjector(m, FailOp(PointFrameAlloc, 2, errno.ENOMEM))
	if e := inj.Fail(PointFrameAlloc, 1); e != errno.OK {
		t.Fatalf("op 1 failed: %v", e)
	}
	if e := inj.Fail(PointFrameAlloc, 1); e != errno.ENOMEM {
		t.Fatalf("op 2 = %v, want ENOMEM", e)
	}
	if e := inj.Fail(PointFrameAlloc, 1); e != errno.OK {
		t.Fatalf("op 3 failed: %v", e)
	}
	if got := inj.Count(PointFrameAlloc); got != 3 {
		t.Errorf("count = %d, want 3", got)
	}
	if got := inj.Injected(); got != 1 {
		t.Errorf("injected = %d, want 1", got)
	}

	// Swapping the schedule preserves counts (ops are identified
	// since boot).
	inj.SetSchedule(Observe())
	if e := inj.Fail(PointFrameAlloc, 1); e != errno.OK {
		t.Fatalf("observe failed: %v", e)
	}
	if got := inj.Count(PointFrameAlloc); got != 4 {
		t.Errorf("count after swap = %d, want 4", got)
	}
}

// TestPressureWaveMagnitudeAsymmetry is the §4.6 asymmetry in schedule
// form: inside the duty window a Θ(heap)-sized request must fail and a
// tiny one must almost always pass; outside the window nothing fails.
func TestPressureWaveMagnitudeAsymmetry(t *testing.T) {
	w := PressureWave{
		Seed: 42, Period: 1000, Duty: 500, Scale: 4096, Err: errno.ENOMEM,
		Points: []Point{PointCommit},
	}
	// Find an in-window and an out-of-window instant for this seed's
	// phase by probing: decisions are pure, so probing is harmless.
	inWindow, outWindow := cost.Ticks(0), cost.Ticks(0)
	foundIn, foundOut := false, false
	for ti := cost.Ticks(0); ti < 1000; ti++ {
		huge := w.Decide(Op{Point: PointCommit, Seq: 1, Time: ti, Mag: 1 << 20})
		if huge != errno.OK && !foundIn {
			inWindow, foundIn = ti, true
		}
		if huge == errno.OK && !foundOut {
			outWindow, foundOut = ti, true
		}
	}
	if !foundIn || !foundOut {
		t.Fatal("wave has no window edge within one period")
	}
	// In-window: a max-magnitude op always fails, ops fail more the
	// bigger they are, and the failure rate of tiny ops is low.
	tinyFails, hugeFails := 0, 0
	const tries = 2000
	for seq := uint64(1); seq <= tries; seq++ {
		if w.Decide(Op{Point: PointCommit, Seq: seq, Time: inWindow, Mag: 4}) != errno.OK {
			tinyFails++
		}
		if w.Decide(Op{Point: PointCommit, Seq: seq, Time: inWindow, Mag: 4096}) != errno.OK {
			hugeFails++
		}
	}
	if hugeFails != tries {
		t.Errorf("mag-4096 ops failed %d/%d in-window, want all (threshold <= scale)", hugeFails, tries)
	}
	// Expected tiny failure rate is 4/4096 ≈ 0.1%; allow generous slack.
	if tinyFails > tries/50 {
		t.Errorf("mag-4 ops failed %d/%d in-window; pressure is not magnitude-selective", tinyFails, tries)
	}
	// Out of window: nothing fails, whatever the magnitude.
	if e := w.Decide(Op{Point: PointCommit, Seq: 1, Time: outWindow, Mag: 1 << 30}); e != errno.OK {
		t.Errorf("out-of-window op failed: %v", e)
	}
	// Untargeted points never fail.
	if e := w.Decide(Op{Point: PointFrameAlloc, Seq: 1, Time: inWindow, Mag: 1 << 30}); e != errno.OK {
		t.Errorf("untargeted point failed: %v", e)
	}
}

// TestSchedulePurity: every schedule constructor yields a pure
// function — identical ops decide identically, forever.
func TestSchedulePurity(t *testing.T) {
	scheds := []Schedule{
		Observe(),
		FailOp(PointCOWBreak, 7, errno.ENOMEM),
		PressureWave{Seed: 9, Machine: 3, Period: 500, Duty: 100, Scale: 64, Err: errno.ENOMEM, Points: Points()},
		KillEvery(11, 2, 4),
		Random(13, 1, 250, errno.EAGAIN),
		Chaos(17, 5),
	}
	ops := []Op{
		{Point: PointFrameAlloc, Seq: 1, Time: 0, Mag: 1},
		{Point: PointCommit, Seq: 9, Time: 123456, Mag: 4096},
		{Point: PointKill, Seq: 4, Time: 999999, Mag: 1},
		{Point: PointPTClone, Seq: 2, Time: 4_000_000, Mag: 512},
	}
	for si, s := range scheds {
		for _, op := range ops {
			first := s.Decide(op)
			for i := 0; i < 100; i++ {
				if got := s.Decide(op); got != first {
					t.Fatalf("schedule %d impure on %+v: %v then %v", si, op, first, got)
				}
			}
		}
	}
}

// TestKillEveryRate: roughly one in n decisions fires, and only at the
// kill point.
func TestKillEveryRate(t *testing.T) {
	s := KillEvery(1, 0, 8)
	fired := 0
	const tries = 8000
	for seq := uint64(1); seq <= tries; seq++ {
		if s.Decide(Op{Point: PointKill, Seq: seq}) != errno.OK {
			fired++
		}
		if e := s.Decide(Op{Point: PointFrameAlloc, Seq: seq}); e != errno.OK {
			t.Fatalf("kill wave fired at %v", PointFrameAlloc)
		}
	}
	if fired < tries/16 || fired > tries/4 {
		t.Errorf("kill wave fired %d/%d times, want about 1/8", fired, tries)
	}
}

// TestRecorder: events render one per line in order, the capacity
// bound drops instead of growing, and nil recorders are no-ops.
func TestRecorder(t *testing.T) {
	var nilRec *Recorder
	nilRec.Record(Event{}) // must not panic
	if nilRec.Render() != "" || nilRec.Events() != nil {
		t.Fatal("nil recorder not empty")
	}

	r := NewRecorder()
	r.Record(Event{Time: 10, CPU: 0, Kind: EvSysEnter, Pid: 2, Tid: 0, Num: 2})
	r.Record(Event{Time: 20, CPU: 1, Kind: EvSysExit, Pid: 2, Tid: 0, Num: 2, Aux: 5})
	r.Record(Event{Time: 30, CPU: 0, Kind: EvFault, Pid: -1, Num: uint64(PointCommit), Aux: 3, Err: errno.ENOMEM})
	out := r.Render()
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("rendered %d lines, want 3:\n%s", len(lines), out)
	}
	for _, want := range []string{"enter write", "exit  write = 5", "inject commit.reserve seq=3 err=ENOMEM", "cpu1", "pid2/t0"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	r.Reset()
	if len(r.Events()) != 0 {
		t.Fatal("Reset left events behind")
	}

	small := &Recorder{cap: 2}
	for i := 0; i < 5; i++ {
		small.Record(Event{Time: cost.Ticks(i)})
	}
	if len(small.Events()) != 2 || small.Dropped() != 3 {
		t.Errorf("cap 2: kept %d dropped %d, want 2/3", len(small.Events()), small.Dropped())
	}
	if !strings.Contains(small.Render(), "3 event(s) dropped") {
		t.Error("drop marker missing from render")
	}
}

// TestSyscallName covers the name table and the unknown fallback.
func TestSyscallName(t *testing.T) {
	if got := SyscallName(9); got != "fork" {
		t.Errorf("SyscallName(9) = %q, want fork", got)
	}
	if got := SyscallName(9999); got != "sys9999" {
		t.Errorf("unknown syscall renders %q", got)
	}
}

// TestZoneOutage pins the zone-scoped kill schedule: machine-kill
// decisions for the target zone fail exactly inside the window, other
// zones and other points never fail, and the decision is a pure
// function of the op (replays identically).
func TestZoneOutage(t *testing.T) {
	sched := KillZone(1, 100, 200)
	cases := []struct {
		op   Op
		dead bool
	}{
		{Op{Point: PointMachineKill, Seq: 1, Time: 100, Mag: 1}, true},
		{Op{Point: PointMachineKill, Seq: 2, Time: 199, Mag: 1}, true},
		{Op{Point: PointMachineKill, Seq: 3, Time: 99, Mag: 1}, false},  // before the window
		{Op{Point: PointMachineKill, Seq: 4, Time: 200, Mag: 1}, false}, // window is half-open
		{Op{Point: PointMachineKill, Seq: 5, Time: 150, Mag: 0}, false}, // other zone
		{Op{Point: PointMachineKill, Seq: 6, Time: 150, Mag: 2}, false},
		{Op{Point: PointCommit, Seq: 7, Time: 150, Mag: 1}, false}, // other point
		{Op{Point: PointKill, Seq: 8, Time: 150, Mag: 1}, false},
	}
	for _, c := range cases {
		got := sched.Decide(c.op)
		if c.dead && got == errno.OK {
			t.Errorf("op %+v survived, want kill", c.op)
		}
		if !c.dead && got != errno.OK {
			t.Errorf("op %+v killed with %v, want survive", c.op, got)
		}
		if again := sched.Decide(c.op); again != got {
			t.Errorf("op %+v not deterministic: %v then %v", c.op, got, again)
		}
	}
}

// TestMachineKillPointName keeps the trace rendering of the new point
// stable.
func TestMachineKillPointName(t *testing.T) {
	if got := PointMachineKill.String(); got != "machine.kill" {
		t.Errorf("PointMachineKill renders %q, want machine.kill", got)
	}
	if n := len(Points()); n != int(NumPoints) {
		t.Errorf("Points() lists %d points, want %d", n, NumPoints)
	}
}
