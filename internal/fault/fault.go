// Package fault makes failure a first-class, deterministic input of
// the simulator: a schedulable fault-injection engine plus a compact
// structured event trace.
//
// The kernel, physical memory, and address-space layers consult named
// injection Points at every fallible boundary (frame allocation,
// commit reservation, page-table clone, COW break, descriptor-table
// copy, exec image load, thread creation). Whether an operation fails
// is decided by a Schedule — a pure function of the operation's
// identity (point, per-point sequence number, virtual time, magnitude)
// — so the same schedule yields byte-identical outcomes on every run,
// at any simulated CPU count's own timeline, and at any host
// parallelism. There is no randomness at injection time: "random"
// schedules hash their inputs with a fixed mixing function.
//
// The package is internal substrate; the public surface is repro/
// sim/fault, wired through sim.WithFaults, load.Config.Faults, and
// fleet chaos scenarios.
package fault

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/errno"
)

// Point names one fallible boundary in the simulator. Injection points
// are consulted even when no fault fires, so a clean run's per-point
// operation counts enumerate every place a fault *could* have been
// injected — the property the schedule-sweeping tests exploit.
type Point uint8

// Injection points.
const (
	// PointFrameAlloc is a physical 4 KiB or 2 MiB frame allocation
	// (demand faults, COW copies, eager fork). Magnitude: pages.
	PointFrameAlloc Point = iota
	// PointCommit is a commit (overcommit accounting) reservation —
	// where strict accounting says no, and where fork's Θ(parent)
	// reservation is at risk. Magnitude: pages requested.
	PointCommit
	// PointPTClone is a whole-page-table clone: the entry into fork's
	// CloneCOW/CloneEager walk. Magnitude: mapped entries.
	PointPTClone
	// PointCOWBreak is a copy-on-write break servicing a write fault
	// on a shared page. Magnitude: pages (512 for a huge page).
	PointCOWBreak
	// PointFDClone is a descriptor-table copy (fork, posix_spawn
	// inheritance). Magnitude: open descriptors.
	PointFDClone
	// PointExecImage is executable-image resolution and header
	// validation (exec, spawn, builder LoadImage). Magnitude: 1.
	PointExecImage
	// PointThreadCreate is thread creation on the fork, spawn, and
	// thread_create paths. Magnitude: 1.
	PointThreadCreate
	// PointKill is a workload-level crash decision consulted by the
	// fault-tolerant load drivers once per completed request: a
	// non-OK decision kills the in-flight worker (the chaos "kill
	// wave"). Magnitude: 1.
	PointKill
	// PointMachineKill is a cluster-level machine-loss decision,
	// consulted by the sim/cluster reconcile loop once per live
	// machine per reconcile step (in machine-id order, on the
	// cluster's virtual clock): a non-OK decision kills the whole
	// machine, losing its queued requests. Magnitude: the machine's
	// zone index, which is what lets a schedule take out exactly one
	// availability zone. Magnitude-scoped, not kernel-wired: the
	// orchestrator constructs these ops itself.
	PointMachineKill
	// PointNetSend is one frame entering the inter-machine fabric at
	// its source NIC: a non-OK decision drops the frame before it is
	// ever queued (a lossy or severed uplink). Magnitude: NetMag(src,
	// dst) — the frame's endpoints packed into one word.
	PointNetSend
	// PointNetDeliver is one frame leaving the fabric at its
	// destination NIC: a non-OK decision drops it at the last hop (a
	// cut link or a network partition). Consulted by sim/net per
	// delivery with Mag = NetMag(src, dst), and by the sim/cluster
	// balancer as a zone-reachability probe with Mag = the target
	// machine's zone index (the ZonePartition convention, mirroring
	// PointMachineKill).
	PointNetDeliver

	// NumPoints bounds the Point space (array sizing).
	NumPoints
)

var pointNames = [NumPoints]string{
	"frame.alloc",
	"commit.reserve",
	"pagetable.clone",
	"cow.break",
	"fdtable.clone",
	"exec.image",
	"thread.create",
	"request.kill",
	"machine.kill",
	"net.send",
	"net.deliver",
}

func (p Point) String() string {
	if int(p) < len(pointNames) {
		return pointNames[p]
	}
	return fmt.Sprintf("point(%d)", int(p))
}

// Points lists every injection point in a fixed order.
func Points() []Point {
	out := make([]Point, NumPoints)
	for i := range out {
		out[i] = Point(i)
	}
	return out
}

// Op identifies one occurrence of an injection point — everything a
// Schedule may condition on. It is a pure function of the simulation
// state: no host time, no host memory, no randomness.
type Op struct {
	// Point is the boundary being crossed.
	Point Point
	// Seq is the 1-based count of operations at this point since the
	// machine booted (the "op counter").
	Seq uint64
	// Time is the active CPU's virtual time at the operation.
	Time cost.Ticks
	// Mag is the operation's magnitude in point-specific units
	// (pages reserved, page-table entries cloned, descriptors
	// copied). Pressure-style schedules use it to make big requests
	// fail before small ones — the overcommit argument in schedule
	// form.
	Mag uint64
}

// Schedule decides which operations fail. Decide must be a pure
// function of op (plus the schedule's own immutable configuration):
// given the same op it must always return the same errno. OK means
// "proceed".
type Schedule interface {
	Decide(op Op) errno.Errno
}

// splitmix64 is the fixed mixing function behind every "random"
// schedule: deterministic, seedable, and good enough to decorrelate
// (seed, machine, point, seq) tuples.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func mix(vs ...uint64) uint64 {
	h := uint64(0x243f6a8885a308d3)
	for _, v := range vs {
		h = splitmix64(h ^ v)
	}
	return h
}

// observe is the schedule that never fails anything. Installing it
// still counts operations, which is how a clean run enumerates the
// injection points a later sweep can target.
type observe struct{}

func (observe) Decide(Op) errno.Errno { return errno.OK }

// Observe returns the count-only schedule: every operation proceeds,
// every operation is counted.
func Observe() Schedule { return observe{} }

// failOp fails exactly one operation: the seq-th occurrence of point.
type failOp struct {
	point Point
	seq   uint64
	err   errno.Errno
}

func (f failOp) Decide(op Op) errno.Errno {
	if op.Point == f.point && op.Seq == f.seq {
		return f.err
	}
	return errno.OK
}

// FailOp returns the single-fault schedule: the seq-th (1-based)
// operation at point fails with err; everything else proceeds. This is
// the primitive the exhaustive fault sweeps are built from.
func FailOp(point Point, seq uint64, err errno.Errno) Schedule {
	return failOp{point: point, seq: seq, err: err}
}

// PressureWave is a periodic memory-pressure window: during the first
// Duty ticks of every Period, operations at the targeted points fail
// if their magnitude reaches a hashed threshold in [1, Scale]. Large
// requests (fork's Θ(parent) commit reservation) almost always exceed
// the threshold and fail; small ones (spawn's few-page mappings)
// almost always squeeze through — the paper's overcommit asymmetry as
// a schedulable input. The wave's phase is derived from (Seed,
// Machine), so a fleet's machines do not fail in lockstep while each
// machine remains perfectly reproducible.
type PressureWave struct {
	Seed    uint64
	Machine int
	Period  cost.Ticks // window cadence (must be > 0)
	Duty    cost.Ticks // failing prefix of each period
	Scale   uint64     // threshold range; smaller = harsher (0 = 1)
	Err     errno.Errno
	Points  []Point
}

// Decide implements Schedule.
func (w PressureWave) Decide(op Op) errno.Errno {
	if w.Period <= 0 {
		return errno.OK
	}
	targeted := false
	for _, p := range w.Points {
		if p == op.Point {
			targeted = true
			break
		}
	}
	if !targeted {
		return errno.OK
	}
	phase := cost.Ticks(mix(w.Seed, uint64(w.Machine), 0x77a5e) % uint64(w.Period))
	if (op.Time+phase)%w.Period >= w.Duty {
		return errno.OK
	}
	scale := w.Scale
	if scale == 0 {
		scale = 1
	}
	threshold := 1 + mix(w.Seed, uint64(w.Machine), uint64(op.Point), op.Seq)%scale
	if op.Mag >= threshold {
		return w.Err
	}
	return errno.OK
}

// killEvery fails roughly one in every n PointKill decisions,
// deterministically hashed from (seed, machine, seq).
type killEvery struct {
	seed    uint64
	machine int
	n       uint64
}

func (k killEvery) Decide(op Op) errno.Errno {
	if op.Point != PointKill || k.n == 0 {
		return errno.OK
	}
	if mix(k.seed, uint64(k.machine), 0x6b111, op.Seq)%k.n == 0 {
		return errno.EINTR
	}
	return errno.OK
}

// KillEvery returns a crash-wave schedule: about one in n request-kill
// decisions fires (deterministically), modelling workers dying
// mid-traffic.
func KillEvery(seed uint64, machine int, n uint64) Schedule {
	return killEvery{seed: seed, machine: machine, n: n}
}

// ZoneOutage is the datacenter failure domain as a schedule: every
// machine-kill decision whose magnitude names the target zone fails
// during [From, Until). The sim/cluster orchestrator consults it once
// per live machine per reconcile step (op magnitude = zone index), so
// installing one takes out an entire availability zone mid-run while
// machines in other zones keep serving — and, like every schedule, it
// is a pure function of the op, so the outage replays bit-for-bit.
//
// Placement probes use the same function: a zone whose machines would
// die right now is no place to schedule a replacement, so the
// orchestrator backfills in surviving zones by construction.
type ZoneOutage struct {
	Zone        uint64     // target zone index (Op.Mag)
	From, Until cost.Ticks // outage window: kills fire in [From, Until)
}

// Decide implements Schedule.
func (z ZoneOutage) Decide(op Op) errno.Errno {
	if op.Point == PointMachineKill && op.Mag == z.Zone && op.Time >= z.From && op.Time < z.Until {
		return errno.EIO
	}
	return errno.OK
}

// KillZone returns the zone-outage schedule: machines in zone die
// while From <= t < Until on the orchestrator's virtual clock.
func KillZone(zone uint64, from, until cost.Ticks) Schedule {
	return ZoneOutage{Zone: zone, From: from, Until: until}
}

// netMagShift packs a frame's endpoints into Op.Mag for the network
// points: src in the high bits, dst in the low 20 (machine ids are
// bounded by the fleet's 1<<20 machine cap).
const netMagShift = 20

// NetMag packs a frame's (src, dst) machine addresses into one
// magnitude word for PointNetSend/PointNetDeliver ops.
func NetMag(src, dst int) uint64 {
	return uint64(src)<<netMagShift | uint64(dst)&(1<<netMagShift-1)
}

// NetMagSrc unpacks the source address of a NetMag word.
func NetMagSrc(mag uint64) int { return int(mag >> netMagShift) }

// NetMagDst unpacks the destination address of a NetMag word.
func NetMagDst(mag uint64) int { return int(mag & (1<<netMagShift - 1)) }

// LinkDown is one directed link severed for a window: every
// PointNetSend/PointNetDeliver op whose NetMag endpoints match (Src,
// Dst) fails with EIO while From <= t < Until. Like every schedule it
// is a pure function of the op, so a cut link replays bit-for-bit.
type LinkDown struct {
	Src, Dst    int
	From, Until cost.Ticks
}

// Decide implements Schedule.
func (l LinkDown) Decide(op Op) errno.Errno {
	if op.Point != PointNetSend && op.Point != PointNetDeliver {
		return errno.OK
	}
	if NetMagSrc(op.Mag) == l.Src && NetMagDst(op.Mag) == l.Dst &&
		op.Time >= l.From && op.Time < l.Until {
		return errno.EIO
	}
	return errno.OK
}

// NetSplit partitions a set of machine addresses away from the rest of
// the fabric for a window: every PointNetDeliver op whose NetMag
// endpoints straddle the cut (exactly one endpoint in Isolated) is
// dropped while From <= t < Until. Traffic wholly inside or wholly
// outside the isolated set still flows — the classic netsplit, as a
// schedulable input.
type NetSplit struct {
	Isolated    []int // machine addresses on the cut-off side
	From, Until cost.Ticks
}

func (n NetSplit) isolated(addr int) bool {
	for _, a := range n.Isolated {
		if a == addr {
			return true
		}
	}
	return false
}

// Decide implements Schedule.
func (n NetSplit) Decide(op Op) errno.Errno {
	if op.Point != PointNetDeliver || op.Time < n.From || op.Time >= n.Until {
		return errno.OK
	}
	if n.isolated(NetMagSrc(op.Mag)) != n.isolated(NetMagDst(op.Mag)) {
		return errno.EIO
	}
	return errno.OK
}

// ZonePartition is the cluster-level netsplit: the balancer probes
// each candidate machine's reachability with a PointNetDeliver op
// whose magnitude is the machine's zone index (the PointMachineKill
// convention), and every probe naming Zone fails while From <= t <
// Until. Machines in the partitioned zone stay alive and keep their
// queues — they are merely unreachable, so routed traffic must flow
// around them and their backlog survives the healing.
type ZonePartition struct {
	Zone        uint64
	From, Until cost.Ticks
}

// Decide implements Schedule.
func (z ZonePartition) Decide(op Op) errno.Errno {
	if op.Point == PointNetDeliver && op.Mag == z.Zone && op.Time >= z.From && op.Time < z.Until {
		return errno.EIO
	}
	return errno.OK
}

// random fails each targeted operation with probability perMille/1000,
// decided by hashing (seed, machine, point, seq).
type random struct {
	seed     uint64
	machine  int
	perMille uint64
	err      errno.Errno
	points   []Point
}

func (r random) Decide(op Op) errno.Errno {
	targeted := len(r.points) == 0
	for _, p := range r.points {
		if p == op.Point {
			targeted = true
			break
		}
	}
	if !targeted {
		return errno.OK
	}
	if mix(r.seed, uint64(r.machine), uint64(op.Point), op.Seq)%1000 < r.perMille {
		return r.err
	}
	return errno.OK
}

// Random returns a pseudo-random schedule failing each targeted
// operation with probability perMille/1000 (no points = all points).
// Deterministic: the same seed replays the same faults, which is what
// lets a fuzzer shrink and replay failing schedules.
func Random(seed uint64, machine int, perMille uint64, err errno.Errno, points ...Point) Schedule {
	if perMille > 1000 {
		perMille = 1000
	}
	return random{seed: seed, machine: machine, perMille: perMille, err: err, points: points}
}

// any combines schedules: the first non-OK decision wins.
type anySched []Schedule

func (a anySched) Decide(op Op) errno.Errno {
	for _, s := range a {
		if s == nil {
			continue
		}
		if e := s.Decide(op); e != errno.OK {
			return e
		}
	}
	return errno.OK
}

// Any combines schedules; an operation fails if any component says so
// (first non-OK errno wins).
func Any(scheds ...Schedule) Schedule { return anySched(scheds) }

// Chaos is the fleet chaos mode's standard schedule for one machine:
// periodic ENOMEM pressure waves against commit reservations (harsh on
// big requests, lenient on small ones), occasional frame-allocation
// failures inside the same windows (the OOM-killer trigger), and a
// sparse kill wave crashing roughly one in eight workers. Pure
// function of (seed, machine id, virtual time, op counter).
func Chaos(seed uint64, machine int) Schedule {
	return Any(
		PressureWave{
			Seed: seed, Machine: machine,
			Period: 4 * cost.Millisecond, Duty: cost.Millisecond,
			Scale: 4096, Err: errno.ENOMEM,
			Points: []Point{PointCommit, PointPTClone},
		},
		PressureWave{
			Seed: seed ^ 0x5ca1ab1e, Machine: machine,
			Period: 4 * cost.Millisecond, Duty: cost.Millisecond,
			Scale: 256, Err: errno.ENOMEM,
			Points: []Point{PointFrameAlloc},
		},
		KillEvery(seed, machine, 8),
	)
}

// NetChaos is the chaos-mode schedule for distributed (fabric-backed)
// loads on one machine-cell: roughly 2% of frames dropped at the
// source NIC and 2% more at delivery, deterministically hashed from
// (seed, cell id, point, frame seq). Pure function of its inputs, so
// a lossy fabric replays bit-for-bit at any host parallelism.
func NetChaos(seed uint64, machine int) Schedule {
	return Any(
		Random(seed^0xfab1c, machine, 20, errno.EIO, PointNetSend),
		Random(seed^0xd0e11e, machine, 20, errno.EIO, PointNetDeliver),
	)
}

// Injector is one machine's fault-injection engine: it counts every
// operation per point, consults the schedule, and records injected
// faults into the machine's trace. All methods are nil-receiver-safe
// so call sites need no guards; a nil injector counts nothing and
// fails nothing.
type Injector struct {
	meter    *cost.Meter
	sched    Schedule
	rec      *Recorder
	counts   [NumPoints]uint64
	injected uint64
}

// NewInjector creates an injector reading virtual time from meter and
// deciding via sched (which may be Observe() for count-only runs).
func NewInjector(meter *cost.Meter, sched Schedule) *Injector {
	return &Injector{meter: meter, sched: sched}
}

// SetSchedule replaces the schedule (counts are preserved: op counters
// identify operations since boot, not since the schedule changed).
func (i *Injector) SetSchedule(s Schedule) {
	if i != nil {
		i.sched = s
	}
}

// SetRecorder wires injected faults into a trace recorder.
func (i *Injector) SetRecorder(r *Recorder) {
	if i != nil {
		i.rec = r
	}
}

// Fail consults the schedule for one operation at point with the given
// magnitude. It returns OK to proceed or the errno the operation must
// fail with. Every call counts, fault or not.
func (i *Injector) Fail(point Point, mag uint64) errno.Errno {
	if i == nil {
		return errno.OK
	}
	i.counts[point]++
	if i.sched == nil {
		return errno.OK
	}
	op := Op{Point: point, Seq: i.counts[point], Time: i.meter.Now(), Mag: mag}
	e := i.sched.Decide(op)
	if e != errno.OK {
		i.injected++
		i.rec.Record(Event{
			Time: op.Time, CPU: i.meter.ActiveCPU(), Kind: EvFault,
			Pid: -1, Num: uint64(point), Aux: op.Seq, Err: e,
		})
	}
	return e
}

// Count reports how many operations have crossed point since boot.
func (i *Injector) Count(p Point) uint64 {
	if i == nil {
		return 0
	}
	return i.counts[p]
}

// Counts snapshots every point's operation count.
func (i *Injector) Counts() [NumPoints]uint64 {
	if i == nil {
		return [NumPoints]uint64{}
	}
	return i.counts
}

// Injected reports how many faults have actually fired.
func (i *Injector) Injected() uint64 {
	if i == nil {
		return 0
	}
	return i.injected
}
