package fault

import (
	"fmt"
	"strings"

	"repro/internal/abi"
	"repro/internal/cost"
	"repro/internal/errno"
)

// EventKind classifies a trace event.
type EventKind uint8

// Trace event kinds.
const (
	// EvSysEnter is a syscall dispatch (Num = syscall number).
	EvSysEnter EventKind = iota
	// EvSysExit is a syscall return (Aux = return value, Err set on
	// failure). Blocking restarts and no-return syscalls (exit, exec,
	// sigreturn) record no exit event.
	EvSysExit
	// EvSched is a scheduler dispatch (Aux = 1 when the thread was
	// stolen from another CPU's queue).
	EvSched
	// EvShootdown is a TLB-shootdown IPI round (Num = remote CPUs
	// interrupted).
	EvShootdown
	// EvFault is an injected fault (Num = Point, Aux = op sequence
	// number, Err = injected errno).
	EvFault
	// EvProcNew is process creation (Num = parent pid, Name set).
	EvProcNew
	// EvProcExit is process termination (Aux = abi-encoded status).
	EvProcExit
	// EvExec is a successful exec image replacement (Name = argv[0]).
	EvExec
	// EvNetSend is one frame leaving a machine's NIC (Num = NetMag(src,
	// dst), Aux = payload bytes).
	EvNetSend
	// EvNetRecv is one frame delivered into a machine's NIC inbox
	// (Num = NetMag(src, dst), Aux = payload bytes).
	EvNetRecv
)

// Event is one structured trace record. Pid -1 means "no process
// context" (machine-level events like shootdowns and injected faults).
type Event struct {
	Time cost.Ticks
	CPU  int
	Kind EventKind
	Pid  int
	Tid  int
	Num  uint64
	Aux  uint64
	Err  errno.Errno
	Name string
}

// String renders the event as one fixed-layout line (no trailing
// newline). The format is part of the golden-trace contract: purely a
// function of the event, no host state.
func (e Event) String() string {
	who := "-"
	if e.Pid >= 0 {
		who = fmt.Sprintf("pid%d/t%d", e.Pid, e.Tid)
	}
	var what string
	switch e.Kind {
	case EvSysEnter:
		what = "enter " + SyscallName(e.Num)
	case EvSysExit:
		if e.Err != errno.OK {
			what = fmt.Sprintf("exit  %s = %v", SyscallName(e.Num), e.Err)
		} else {
			what = fmt.Sprintf("exit  %s = %d", SyscallName(e.Num), e.Aux)
		}
	case EvSched:
		what = "run"
		if e.Aux != 0 {
			what = "run (stolen)"
		}
	case EvShootdown:
		what = fmt.Sprintf("tlb-shootdown ipis=%d", e.Num)
	case EvFault:
		what = fmt.Sprintf("inject %v seq=%d err=%v", Point(e.Num), e.Aux, e.Err)
	case EvProcNew:
		what = fmt.Sprintf("proc+ %q parent=pid%d", e.Name, e.Num)
	case EvProcExit:
		what = fmt.Sprintf("proc- %q status=%#x", e.Name, e.Aux)
	case EvExec:
		what = fmt.Sprintf("exec  %q", e.Name)
	case EvNetSend:
		what = fmt.Sprintf("net>  %d->%d bytes=%d", NetMagSrc(e.Num), NetMagDst(e.Num), e.Aux)
	case EvNetRecv:
		what = fmt.Sprintf("net<  %d->%d bytes=%d", NetMagSrc(e.Num), NetMagDst(e.Num), e.Aux)
	default:
		what = fmt.Sprintf("event(%d)", int(e.Kind))
	}
	return fmt.Sprintf("%10d cpu%d %-10s %s", uint64(e.Time), e.CPU, who, what)
}

// defaultTraceCap bounds a recorder so a runaway workload cannot eat
// host memory; past it, events are dropped and counted.
const defaultTraceCap = 1 << 18

// Recorder accumulates trace events. A nil recorder is a valid no-op
// sink, so instrumentation sites need no guards.
type Recorder struct {
	events  []Event
	dropped uint64
	cap     int
}

// NewRecorder creates a recorder with the default capacity.
func NewRecorder() *Recorder { return &Recorder{cap: defaultTraceCap} }

// Record appends one event (nil-safe; drops past capacity).
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	if len(r.events) >= r.cap {
		r.dropped++
		return
	}
	r.events = append(r.events, e)
}

// Events returns the recorded events (not a copy).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Dropped reports events lost to the capacity bound.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Reset discards all recorded events.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.events = r.events[:0]
	r.dropped = 0
}

// Render formats the whole trace, one event per line, with a trailing
// newline after the last event and a drop marker if the capacity bound
// was hit. Byte-identical for identical event sequences.
func (r *Recorder) Render() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	for _, e := range r.events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	if r.dropped > 0 {
		fmt.Fprintf(&b, "... %d event(s) dropped (trace capacity %d)\n", r.dropped, r.cap)
	}
	return b.String()
}

// sysNames maps syscall numbers to their names for rendering. Indexed
// lookups only — no maps, so rendering order is trivially stable.
var sysNames = [...]string{
	abi.SysExit:         "exit",
	abi.SysWrite:        "write",
	abi.SysRead:         "read",
	abi.SysOpen:         "open",
	abi.SysClose:        "close",
	abi.SysDup:          "dup",
	abi.SysDup2:         "dup2",
	abi.SysPipe:         "pipe",
	abi.SysFork:         "fork",
	abi.SysVfork:        "vfork",
	abi.SysExec:         "exec",
	abi.SysSpawn:        "spawn",
	abi.SysWaitPid:      "waitpid",
	abi.SysGetPid:       "getpid",
	abi.SysGetPPid:      "getppid",
	abi.SysBrk:          "brk",
	abi.SysMmap:         "mmap",
	abi.SysMunmap:       "munmap",
	abi.SysTouch:        "touch",
	abi.SysKill:         "kill",
	abi.SysSigaction:    "sigaction",
	abi.SysSigprocmask:  "sigprocmask",
	abi.SysSigreturn:    "sigreturn",
	abi.SysThreadCreate: "thread_create",
	abi.SysThreadExit:   "thread_exit",
	abi.SysFutexWait:    "futex_wait",
	abi.SysFutexWake:    "futex_wake",
	abi.SysYield:        "yield",
	abi.SysNanosleep:    "nanosleep",
	abi.SysClock:        "clock",
	abi.SysSeek:         "seek",
	abi.SysGetTid:       "gettid",
	abi.SysSetCloexec:   "set_cloexec",
	abi.SysStat:         "stat",
	abi.SysMkdir:        "mkdir",
	abi.SysUnlink:       "unlink",
	abi.SysChdir:        "chdir",
	abi.SysReadDir:      "readdir",
	abi.SysProcCount:    "proc_count",
	abi.SysGetRSS:       "get_rss",
	abi.SysMprotect:     "mprotect",
	abi.SysNetSend:      "net_send",
	abi.SysNetRecv:      "net_recv",
}

// SyscallName renders a syscall number (unknown numbers keep their
// numeric form).
func SyscallName(num uint64) string {
	if num < uint64(len(sysNames)) && sysNames[num] != "" {
		return sysNames[num]
	}
	return fmt.Sprintf("sys%d", num)
}
