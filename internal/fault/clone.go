package fault

import "repro/internal/cost"

// Clone duplicates the injector for a template-cloned machine: the
// schedule is shared (schedules are immutable pure functions), the
// per-point op counters and injected tally are copied so the clone's
// op sequence numbers continue exactly where the template's stopped,
// and virtual time / recording rebind to the clone's meter and trace.
// Nil-safe: cloning a machine with no injector yields no injector.
func (i *Injector) Clone(meter *cost.Meter, rec *Recorder) *Injector {
	if i == nil {
		return nil
	}
	return &Injector{
		meter:    meter,
		sched:    i.sched,
		rec:      rec,
		counts:   i.counts,
		injected: i.injected,
	}
}

// Clone duplicates the recorder — events, drop count, capacity — so a
// template-cloned machine's trace continues from the snapshot point
// without perturbing the template's. Nil-safe.
func (r *Recorder) Clone() *Recorder {
	if r == nil {
		return nil
	}
	return &Recorder{
		events:  append([]Event(nil), r.events...),
		dropped: r.dropped,
		cap:     r.cap,
	}
}
