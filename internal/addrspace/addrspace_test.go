package addrspace

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/errno"
	"repro/internal/mem"
)

func newSpace(ramMiB uint64, pol mem.CommitPolicy) (*Space, *mem.Physical) {
	meter := cost.NewMeter(cost.DefaultModel())
	phys := mem.NewPhysical(meter, ramMiB<<20, 0, pol)
	return New(phys, meter), phys
}

func TestMapAndFault(t *testing.T) {
	s, phys := newSpace(64, mem.CommitHeuristic)
	v, err := s.Map(0x10000, 3*mem.PageSize, Read|Write, MapOpts{Name: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if v.Start != 0x10000 || v.Len() != 3*mem.PageSize {
		t.Fatalf("vma = %v", v)
	}
	if s.RSS() != 0 {
		t.Errorf("RSS before touch = %d", s.RSS())
	}
	if err := s.Fault(0x10000, AccessWrite); err != nil {
		t.Fatal(err)
	}
	if s.RSS() != mem.PageSize {
		t.Errorf("RSS after one fault = %d", s.RSS())
	}
	if phys.AllocatedPages() != 1 {
		t.Errorf("allocated = %d", phys.AllocatedPages())
	}
	// Fault outside any VMA.
	if err := s.Fault(0x9000, AccessRead); !errors.Is(err, errno.EFAULT) {
		t.Errorf("outside fault: %v", err)
	}
	// Write fault on a read-only VMA.
	if _, err := s.Map(0x40000, mem.PageSize, Read, MapOpts{Name: "ro"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Fault(0x40000, AccessWrite); !errors.Is(err, errno.EFAULT) {
		t.Errorf("ro write fault: %v", err)
	}
	// Exec fault on non-exec VMA.
	if err := s.Fault(0x10000, AccessExec); !errors.Is(err, errno.EFAULT) {
		t.Errorf("nx exec fault: %v", err)
	}
}

func TestOverlapRejected(t *testing.T) {
	s, _ := newSpace(64, mem.CommitHeuristic)
	if _, err := s.Map(0x10000, 4*mem.PageSize, Read, MapOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Map(0x12000, mem.PageSize, Read, MapOpts{}); !errors.Is(err, errno.EEXIST) {
		t.Errorf("overlap: %v, want EEXIST", err)
	}
	// Unaligned.
	if _, err := s.Map(0x10001+4*mem.PageSize, mem.PageSize, Read, MapOpts{}); !errors.Is(err, errno.EINVAL) {
		t.Errorf("unaligned: %v, want EINVAL", err)
	}
}

func TestFindGap(t *testing.T) {
	s, _ := newSpace(64, mem.CommitHeuristic)
	a, err := s.Map(0, 1<<20, Read|Write, MapOpts{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Map(0, 1<<20, Read|Write, MapOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Start < MmapBase || b.Start < MmapBase {
		t.Errorf("gaps below arena: %#x %#x", a.Start, b.Start)
	}
	if b.Start < a.End && a.Start < b.End {
		t.Errorf("gap allocations overlap: %v %v", a, b)
	}
}

func TestUnmapSplit(t *testing.T) {
	s, phys := newSpace(64, mem.CommitHeuristic)
	v, err := s.Map(0x100000, 4*mem.PageSize, Read|Write, MapOpts{Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Touch(v.Start, v.Len(), AccessWrite); err != nil {
		t.Fatal(err)
	}
	if phys.AllocatedPages() != 4 {
		t.Fatalf("allocated = %d", phys.AllocatedPages())
	}
	// Punch out the middle two pages.
	if err := s.Unmap(v.Start+mem.PageSize, 2*mem.PageSize); err != nil {
		t.Fatal(err)
	}
	if len(s.VMAs()) != 2 {
		t.Fatalf("VMAs after split = %d: %s", len(s.VMAs()), s.Dump())
	}
	if phys.AllocatedPages() != 2 {
		t.Errorf("allocated after punch = %d", phys.AllocatedPages())
	}
	if err := s.Fault(v.Start+mem.PageSize, AccessRead); !errors.Is(err, errno.EFAULT) {
		t.Errorf("hole still mapped: %v", err)
	}
	if err := s.Fault(v.Start, AccessRead); err != nil {
		t.Errorf("left fragment unmapped: %v", err)
	}
}

func TestBrk(t *testing.T) {
	s, _ := newSpace(64, mem.CommitHeuristic)
	s.SetupHeap(0x600000)
	if got, _ := s.SetBrk(0); got != 0x600000 {
		t.Fatalf("initial brk = %#x", got)
	}
	nb, err := s.SetBrk(0x600000 + 10*mem.PageSize)
	if err != nil || nb != 0x600000+10*uint64(mem.PageSize) {
		t.Fatalf("grow: %#x %v", nb, err)
	}
	if err := s.Touch(0x600000, 10*mem.PageSize, AccessWrite); err != nil {
		t.Fatalf("heap touch: %v", err)
	}
	// Shrink.
	if _, err := s.SetBrk(0x600000 + 2*mem.PageSize); err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if err := s.Fault(0x600000+5*uint64(mem.PageSize), AccessRead); !errors.Is(err, errno.EFAULT) {
		t.Errorf("shrunk heap still mapped: %v", err)
	}
	// Below base.
	if _, err := s.SetBrk(0x500000); !errors.Is(err, errno.EINVAL) {
		t.Errorf("brk below base: %v", err)
	}
}

func TestReadWriteBytesAcrossPages(t *testing.T) {
	s, _ := newSpace(64, mem.CommitHeuristic)
	v, _ := s.Map(0x100000, 3*mem.PageSize, Read|Write, MapOpts{})
	data := make([]byte, 2*mem.PageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	addr := v.Start + mem.PageSize/2 // straddles two boundaries
	if err := s.WriteBytes(addr, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := s.ReadBytes(addr, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], data[i])
		}
	}
}

func TestCloneCOWIsolation(t *testing.T) {
	s, phys := newSpace(64, mem.CommitHeuristic)
	v, _ := s.Map(0x100000, 4*mem.PageSize, Read|Write, MapOpts{})
	if err := s.WriteBytes(v.Start, []byte("shared state")); err != nil {
		t.Fatal(err)
	}
	allocBefore := phys.AllocatedPages()
	c, err := s.CloneCOW()
	if err != nil {
		t.Fatal(err)
	}
	if phys.AllocatedPages() != allocBefore {
		t.Errorf("clone allocated %d frames; COW should share", phys.AllocatedPages()-allocBefore)
	}
	buf := make([]byte, 12)
	if err := c.ReadBytes(v.Start, buf); err != nil || string(buf) != "shared state" {
		t.Fatalf("child read: %q %v", buf, err)
	}
	// Child write breaks COW: a new frame appears, parent unchanged.
	if err := c.WriteBytes(v.Start, []byte("child change")); err != nil {
		t.Fatal(err)
	}
	if phys.AllocatedPages() != allocBefore+1 {
		t.Errorf("COW break allocated %d frames, want 1", phys.AllocatedPages()-allocBefore)
	}
	if err := s.ReadBytes(v.Start, buf); err != nil || string(buf) != "shared state" {
		t.Fatalf("parent after child write: %q %v", buf, err)
	}
	// Parent write on the same page: it is now sole owner → reclaim
	// in place, no new frame.
	before := phys.AllocatedPages()
	if err := s.WriteBytes(v.Start, []byte("parent again")); err != nil {
		t.Fatal(err)
	}
	if phys.AllocatedPages() != before {
		t.Errorf("reclaim path allocated a frame")
	}
	c.Destroy()
	s.Destroy()
	if phys.AllocatedPages() != 0 {
		t.Errorf("%d pages leaked", phys.AllocatedPages())
	}
}

func TestCloneStrictCommitFails(t *testing.T) {
	s, _ := newSpace(16, mem.CommitStrict) // 16 MiB RAM/commit
	v, err := s.Map(0x100000, 10<<20, Read|Write, MapOpts{})
	if err != nil {
		t.Fatal(err)
	}
	_ = v
	if _, err := s.CloneCOW(); !errors.Is(err, errno.ENOMEM) {
		t.Fatalf("clone under strict commit: %v, want ENOMEM", err)
	}
}

func TestSharedMapping(t *testing.T) {
	s, _ := newSpace(64, mem.CommitHeuristic)
	v, _ := s.Map(0x100000, mem.PageSize, Read|Write, MapOpts{Shared: true})
	if err := s.WriteBytes(v.Start, []byte("shm")); err != nil {
		t.Fatal(err)
	}
	c, err := s.CloneCOW()
	if err != nil {
		t.Fatal(err)
	}
	// Shared mapping: child writes are visible to the parent.
	if err := c.WriteBytes(v.Start, []byte("SHM")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if err := s.ReadBytes(v.Start, buf); err != nil || string(buf) != "SHM" {
		t.Errorf("parent sees %q, want SHM (MAP_SHARED survives fork)", buf)
	}
	c.Destroy()
	s.Destroy()
}

func TestHugeVMA(t *testing.T) {
	s, phys := newSpace(64, mem.CommitHeuristic)
	v, err := s.Map(0, 4<<20, Read|Write, MapOpts{Huge: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Touch(v.Start, v.Len(), AccessWrite); err != nil {
		t.Fatal(err)
	}
	if got := s.PageTable().Entries(); got != 2 {
		t.Errorf("entries = %d, want 2 huge", got)
	}
	if phys.AllocatedPages() != 1024 {
		t.Errorf("allocated = %d pages, want 1024", phys.AllocatedPages())
	}
	if err := s.WriteBytes(v.Start+3<<20, []byte("deep")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if err := s.ReadBytes(v.Start+3<<20, buf); err != nil || string(buf) != "deep" {
		t.Errorf("huge rw: %q %v", buf, err)
	}
	s.Destroy()
	if phys.AllocatedPages() != 0 {
		t.Errorf("leak %d pages", phys.AllocatedPages())
	}
}

func TestBackedVMA(t *testing.T) {
	s, _ := newSpace(64, mem.CommitHeuristic)
	content := make([]byte, 2*mem.PageSize)
	copy(content, "file contents here")
	b := sliceBacking(content)
	v, err := s.Map(0x400000, 3*mem.PageSize, Read, MapOpts{Backing: b, BackingOff: 0})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 18)
	if err := s.ReadBytes(v.Start, buf); err != nil || string(buf) != "file contents here" {
		t.Fatalf("backed read: %q %v", buf, err)
	}
	// Past the backing: zero-filled (bss behaviour).
	zz := make([]byte, 8)
	if err := s.ReadBytes(v.Start+2*mem.PageSize+100, zz); err != nil {
		t.Fatal(err)
	}
	for _, c := range zz {
		if c != 0 {
			t.Fatal("bss region not zero")
		}
	}
}

type sliceBacking []byte

func (b sliceBacking) ReadAt(off uint64, buf []byte) {
	for i := range buf {
		buf[i] = 0
	}
	if off < uint64(len(b)) {
		copy(buf, b[off:])
	}
}

// TestQuickCloneEquality: any written state is identical in a fresh
// clone, and subsequent parent writes never leak into the child.
func TestQuickCloneEquality(t *testing.T) {
	f := func(writes []struct {
		Off  uint16
		Data uint8
	}) bool {
		s, _ := newSpace(64, mem.CommitHeuristic)
		v, err := s.Map(0x100000, 16*mem.PageSize, Read|Write, MapOpts{})
		if err != nil {
			return false
		}
		for _, w := range writes {
			addr := v.Start + uint64(w.Off)%v.Len()
			if err := s.WriteBytes(addr, []byte{w.Data}); err != nil {
				return false
			}
		}
		c, err := s.CloneCOW()
		if err != nil {
			return false
		}
		defer c.Destroy()
		defer s.Destroy()
		pb := make([]byte, v.Len())
		cb := make([]byte, v.Len())
		if s.ReadBytes(v.Start, pb) != nil || c.ReadBytes(v.Start, cb) != nil {
			return false
		}
		if string(pb) != string(cb) {
			return false
		}
		// Parent diverges; child must not see it.
		if err := s.WriteBytes(v.Start, []byte{0xFF}); err != nil {
			return false
		}
		if c.ReadBytes(v.Start, cb[:1]) != nil {
			return false
		}
		return cb[0] == pb[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickCommitNeverNegative: reserve/unreserve through map/unmap
// stays balanced.
func TestQuickCommitBalance(t *testing.T) {
	f := func(ops []uint8) bool {
		s, phys := newSpace(64, mem.CommitAlways)
		var regions []struct{ start, size uint64 }
		base := uint64(0x100000)
		for _, op := range ops {
			if op%2 == 0 {
				size := (uint64(op%7) + 1) * mem.PageSize
				if _, err := s.Map(base, size, Read|Write, MapOpts{}); err != nil {
					return false
				}
				regions = append(regions, struct{ start, size uint64 }{base, size})
				base += size + mem.PageSize
			} else if len(regions) > 0 {
				r := regions[0]
				regions = regions[1:]
				if err := s.Unmap(r.start, r.size); err != nil {
					return false
				}
			}
		}
		var want uint64
		for _, r := range regions {
			want += r.size
		}
		if s.Committed() != want {
			return false
		}
		s.Destroy()
		return phys.Committed() == 0 && phys.AllocatedPages() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
