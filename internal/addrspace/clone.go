package addrspace

import (
	"repro/internal/cost"
	"repro/internal/mem"
)

// CloneHost duplicates the space's entire logical state — VMAs, heap
// bounds, RSS and commit books, and the whole page-table tree — into a
// new Space backed by the clone machine's physical memory and meter.
// Unlike CloneCOW this is a host-side operation: no cost is charged, no
// commit is re-reserved (the commit charge travels inside the cloned
// Physical), and no refcounts move (likewise). The source is read, not
// written, so a frozen template space can be cloned concurrently.
//
// remapBacking maps each VMA's Backing to its counterpart in the clone
// machine (file-backed VMAs point at vfs inodes, which the kernel's
// clone rewrites wholesale; addrspace cannot know about them). A nil
// remapBacking shares Backing pointers verbatim. CPU residency is
// deliberately dropped: the clone starts with no CPU executing in it.
//
// markSrc is pagetable.Table.CloneHost's: true when snapshotting a
// live space into a template (the source must break node sharing
// before in-place writes), false when stamping from a frozen one.
func (s *Space) CloneHost(phys *mem.Physical, meter *cost.Meter, markSrc bool, remapBacking func(Backing) Backing) *Space {
	c := &Space{
		phys:        phys,
		meter:       meter,
		pt:          s.pt.CloneHost(phys, meter, markSrc),
		rssPages:    s.rssPages,
		commitPages: s.commitPages,
		brkBase:     s.brkBase,
		brk:         s.brk,
	}
	c.vmas = make([]*VMA, len(s.vmas))
	for i, v := range s.vmas {
		nv := *v
		if nv.Backing != nil && remapBacking != nil {
			nv.Backing = remapBacking(nv.Backing)
		}
		c.vmas[i] = &nv
	}
	return c
}
