package addrspace

import (
	"errors"
	"testing"

	"repro/internal/errno"
	"repro/internal/mem"
)

func TestProtectRevokeWrite(t *testing.T) {
	s, _ := newSpace(64, mem.CommitHeuristic)
	v, err := s.Map(0x100000, 4*mem.PageSize, Read|Write, MapOpts{Name: "w"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBytes(v.Start, []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := s.Protect(v.Start, v.Len(), Read); err != nil {
		t.Fatal(err)
	}
	// Reads still work.
	buf := make([]byte, 4)
	if err := s.ReadBytes(v.Start, buf); err != nil || string(buf) != "data" {
		t.Fatalf("read after revoke: %q %v", buf, err)
	}
	// Writes fault.
	if err := s.WriteBytes(v.Start, []byte("x")); !errors.Is(err, errno.EFAULT) {
		t.Fatalf("write after revoke: %v, want EFAULT", err)
	}
	// Also on never-touched pages of the region.
	if err := s.WriteBytes(v.Start+2*mem.PageSize, []byte("x")); !errors.Is(err, errno.EFAULT) {
		t.Fatalf("write to untouched ro page: %v", err)
	}
}

func TestProtectRestoreWrite(t *testing.T) {
	s, phys := newSpace(64, mem.CommitHeuristic)
	v, _ := s.Map(0x100000, 2*mem.PageSize, Read|Write, MapOpts{})
	if err := s.WriteBytes(v.Start, []byte("orig")); err != nil {
		t.Fatal(err)
	}
	before := phys.AllocatedPages()
	if err := s.Protect(v.Start, v.Len(), Read); err != nil {
		t.Fatal(err)
	}
	if err := s.Protect(v.Start, v.Len(), Read|Write); err != nil {
		t.Fatal(err)
	}
	// The sole-owner upgrade path must not copy the frame.
	if err := s.WriteBytes(v.Start, []byte("new!")); err != nil {
		t.Fatalf("write after re-grant: %v", err)
	}
	if phys.AllocatedPages() != before {
		t.Errorf("re-grant write copied a frame")
	}
	buf := make([]byte, 4)
	s.ReadBytes(v.Start, buf)
	if string(buf) != "new!" {
		t.Errorf("content = %q", buf)
	}
}

func TestProtectSplitsVMA(t *testing.T) {
	s, _ := newSpace(64, mem.CommitHeuristic)
	v, _ := s.Map(0x100000, 6*mem.PageSize, Read|Write, MapOpts{Name: "big"})
	// Protect the middle third.
	if err := s.Protect(v.Start+2*mem.PageSize, 2*mem.PageSize, Read); err != nil {
		t.Fatal(err)
	}
	if len(s.VMAs()) != 3 {
		t.Fatalf("VMAs = %d, want 3:\n%s", len(s.VMAs()), s.Dump())
	}
	mid := s.FindVMA(v.Start + 2*mem.PageSize)
	if mid.Prot != Read {
		t.Errorf("mid prot = %v", mid.Prot)
	}
	left := s.FindVMA(v.Start)
	right := s.FindVMA(v.Start + 5*mem.PageSize)
	if left.Prot != Read|Write || right.Prot != Read|Write {
		t.Errorf("outer prots = %v / %v", left.Prot, right.Prot)
	}
	// Writes: outer thirds fine, middle faults.
	if err := s.WriteBytes(v.Start, []byte("x")); err != nil {
		t.Errorf("left write: %v", err)
	}
	if err := s.WriteBytes(v.Start+5*mem.PageSize, []byte("x")); err != nil {
		t.Errorf("right write: %v", err)
	}
	if err := s.WriteBytes(v.Start+3*mem.PageSize, []byte("x")); !errors.Is(err, errno.EFAULT) {
		t.Errorf("mid write: %v", err)
	}
}

func TestProtectCommitAccounting(t *testing.T) {
	s, phys := newSpace(64, mem.CommitStrict)
	v, _ := s.Map(0x100000, 8*mem.PageSize, Read|Write, MapOpts{})
	committed := phys.Committed()
	// RW → R releases commit.
	if err := s.Protect(v.Start, v.Len(), Read); err != nil {
		t.Fatal(err)
	}
	if phys.Committed() != committed-8 {
		t.Errorf("committed after revoke = %d, want %d", phys.Committed(), committed-8)
	}
	// R → RW re-reserves.
	if err := s.Protect(v.Start, v.Len(), Read|Write); err != nil {
		t.Fatal(err)
	}
	if phys.Committed() != committed {
		t.Errorf("committed after re-grant = %d, want %d", phys.Committed(), committed)
	}
	s.Destroy()
	if phys.Committed() != 0 {
		t.Errorf("commit leak: %d", phys.Committed())
	}
}

func TestProtectUnmappedRange(t *testing.T) {
	s, _ := newSpace(64, mem.CommitHeuristic)
	s.Map(0x100000, 2*mem.PageSize, Read|Write, MapOpts{})
	// Range extends past the mapping.
	if err := s.Protect(0x100000, 4*mem.PageSize, Read); !errors.Is(err, errno.ENOMEM) {
		t.Errorf("hole protect: %v, want ENOMEM", err)
	}
	if err := s.Protect(0x100001, mem.PageSize, Read); !errors.Is(err, errno.EINVAL) {
		t.Errorf("unaligned protect: %v, want EINVAL", err)
	}
}

func TestProtectCOWInteraction(t *testing.T) {
	// mprotect(R) on COW pages, then fork-style clone, then restore
	// W in the parent: the child must stay isolated.
	s, _ := newSpace(64, mem.CommitHeuristic)
	v, _ := s.Map(0x100000, mem.PageSize, Read|Write, MapOpts{})
	s.WriteBytes(v.Start, []byte("base"))
	c, err := s.CloneCOW()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Protect(v.Start, v.Len(), Read); err != nil {
		t.Fatal(err)
	}
	if err := s.Protect(v.Start, v.Len(), Read|Write); err != nil {
		t.Fatal(err)
	}
	// Parent writes: must COW-copy (refs==2), not scribble on the
	// shared frame.
	if err := s.WriteBytes(v.Start, []byte("mine")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	c.ReadBytes(v.Start, buf)
	if string(buf) != "base" {
		t.Errorf("child sees %q after parent's post-mprotect write", buf)
	}
	c.Destroy()
	s.Destroy()
}
