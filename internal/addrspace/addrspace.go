// Package addrspace implements virtual address spaces for the
// simulator: a sorted list of VMAs (virtual memory areas) over a
// 4-level page table, with demand-zero and file-backed paging,
// copy-on-write fault handling, brk, and commit accounting.
//
// The package supplies the two operations whose relative cost "A
// fork() in the road" is about: CloneCOW (the fork path, Θ(mapped
// pages)) and building a fresh space from an image (the spawn path,
// Θ(1) in the parent's size).
package addrspace

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/cost"
	"repro/internal/errno"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/pagetable"
)

// Prot is a permission mask.
type Prot uint8

// Permission bits.
const (
	Read  Prot = 1 << 0
	Write Prot = 1 << 1
	Exec  Prot = 1 << 2
)

func (p Prot) String() string {
	b := []byte("---")
	if p&Read != 0 {
		b[0] = 'r'
	}
	if p&Write != 0 {
		b[1] = 'w'
	}
	if p&Exec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Kind classifies a VMA for reporting and teardown policy.
type Kind uint8

// VMA kinds.
const (
	KindAnon Kind = iota
	KindHeap
	KindStack
	KindText
	KindData
)

func (k Kind) String() string {
	switch k {
	case KindAnon:
		return "anon"
	case KindHeap:
		return "heap"
	case KindStack:
		return "stack"
	case KindText:
		return "text"
	case KindData:
		return "data"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Backing supplies page contents for file-backed VMAs (executable
// images). Offsets are relative to the backing object's start.
type Backing interface {
	// ReadAt fills buf from the backing store at off. Reads beyond
	// the backing's size must zero-fill.
	ReadAt(off uint64, buf []byte)
}

// VMA is one contiguous region of the address space.
type VMA struct {
	Start, End uint64 // [Start, End), page-aligned
	Prot       Prot
	Kind       Kind
	Name       string
	Shared     bool // MAP_SHARED: no COW on fork
	Huge       bool // backed by 2 MiB pages
	Backing    Backing
	BackingOff uint64 // offset of Start within Backing
}

// Len reports the VMA's size in bytes.
func (v *VMA) Len() uint64 { return v.End - v.Start }

// Pages reports the VMA's size in 4 KiB pages.
func (v *VMA) Pages() uint64 { return v.Len() >> mem.PageShift }

// reserved reports whether this VMA's pages count against the commit
// limit (private writable memory, as in Linux).
func (v *VMA) reserved() bool { return !v.Shared && v.Prot&Write != 0 }

func (v *VMA) pageSize() uint64 {
	if v.Huge {
		return mem.HugeSize
	}
	return mem.PageSize
}

func (v *VMA) String() string {
	return fmt.Sprintf("%#x-%#x %s %s %s", v.Start, v.End, v.Prot, v.Kind, v.Name)
}

// Layout constants for the canonical process image.
const (
	// TextBase is where executable images are mapped.
	TextBase = uint64(0x0000_0000_0040_0000)
	// MmapBase is the bottom of the anonymous-mapping arena.
	MmapBase = uint64(0x0000_2000_0000_0000)
	// MmapTop caps the arena.
	MmapTop = uint64(0x0000_7000_0000_0000)
	// StackTop is one past the highest stack byte.
	StackTop = uint64(0x0000_7fff_ffff_f000)
)

// Space is one process's virtual address space.
type Space struct {
	phys  *mem.Physical
	meter *cost.Meter
	pt    *pagetable.Table

	vmas []*VMA // sorted by Start, non-overlapping

	rssPages    uint64 // resident pages (huge counts 512)
	commitPages uint64 // pages reserved against phys

	brkBase, brk uint64 // heap bounds; brkBase==0 ⇒ no heap yet

	// resident is a bitmask of CPUs currently executing in this
	// space (maintained by the kernel's dispatcher). Any operation
	// that shrinks a translation — a COW break, an unmap, a write-
	// permission downgrade — must interrupt every *other* resident
	// CPU to invalidate its TLB: the per-remote-CPU IPI tax that "A
	// fork() in the road" §5 argues makes fork scale badly with
	// cores.
	resident uint64
}

// New creates an empty address space.
func New(phys *mem.Physical, meter *cost.Meter) *Space {
	return &Space{phys: phys, meter: meter, pt: pagetable.New(phys, meter)}
}

// Phys exposes the physical memory (used by the kernel and tests).
func (s *Space) Phys() *mem.Physical { return s.phys }

// PageTable exposes the underlying table (used by tests and stats).
func (s *Space) PageTable() *pagetable.Table { return s.pt }

// RSS reports resident set size in bytes.
func (s *Space) RSS() uint64 { return s.rssPages << mem.PageShift }

// Committed reports this space's commit charge in bytes.
func (s *Space) Committed() uint64 { return s.commitPages << mem.PageShift }

// MappedBytes reports the total size of all VMAs.
func (s *Space) MappedBytes() uint64 {
	var n uint64
	for _, v := range s.vmas {
		n += v.Len()
	}
	return n
}

// VMAs returns the VMA list (not a copy; callers must not mutate).
func (s *Space) VMAs() []*VMA { return s.vmas }

// Brk reports the current program break.
func (s *Space) Brk() uint64 { return s.brk }

// MarkResident records that cpu is executing in this space.
func (s *Space) MarkResident(cpu int) { s.resident |= 1 << uint(cpu) }

// ClearResident records that cpu switched away from this space.
func (s *Space) ClearResident(cpu int) { s.resident &^= 1 << uint(cpu) }

// ResidentCPUs counts the CPUs currently executing in this space.
func (s *Space) ResidentCPUs() int { return bits.OnesCount64(s.resident) }

// shootdown charges one TLB-shootdown IPI per remote CPU on which the
// space is resident: every translation-shrinking operation (COW break,
// unmap, protection downgrade) is one batched invalidation round. The
// initiating CPU — the meter's active one — invalidates locally for
// free (the local flush cost is part of the page-table operation).
func (s *Space) shootdown() {
	s.meter.ChargeShootdown(bits.OnesCount64(s.resident &^ (1 << uint(s.meter.ActiveCPU()))))
}

func align(x, a uint64) uint64   { return (x + a - 1) &^ (a - 1) }
func alignDn(x, a uint64) uint64 { return x &^ (a - 1) }

// find returns the index of the first VMA with End > va.
func (s *Space) find(va uint64) int {
	return sort.Search(len(s.vmas), func(i int) bool { return s.vmas[i].End > va })
}

// FindVMA returns the VMA containing va, or nil.
func (s *Space) FindVMA(va uint64) *VMA {
	i := s.find(va)
	if i < len(s.vmas) && s.vmas[i].Start <= va {
		return s.vmas[i]
	}
	return nil
}

// overlaps reports whether [start,end) intersects any VMA.
func (s *Space) overlaps(start, end uint64) bool {
	i := s.find(start)
	return i < len(s.vmas) && s.vmas[i].Start < end
}

// MapOpts configures Map.
type MapOpts struct {
	Kind       Kind
	Name       string
	Shared     bool
	Huge       bool
	Backing    Backing
	BackingOff uint64
}

// Map creates a VMA of length bytes at start (page-aligned; huge VMAs
// 2 MiB-aligned). If start is zero an address is chosen from the mmap
// arena. Private writable VMAs reserve commit and can fail with ENOMEM
// under strict accounting. Pages are not populated: first touch faults
// them in.
func (s *Space) Map(start, length uint64, prot Prot, opts MapOpts) (*VMA, error) {
	ps := uint64(mem.PageSize)
	if opts.Huge {
		ps = mem.HugeSize
	}
	if length == 0 {
		return nil, errno.EINVAL
	}
	length = align(length, ps)
	if start == 0 {
		var err error
		start, err = s.findGap(length, ps)
		if err != nil {
			return nil, err
		}
	}
	if start%ps != 0 {
		return nil, errno.EINVAL
	}
	end := start + length
	if end > pagetable.MaxVA || end < start {
		return nil, errno.EINVAL
	}
	if s.overlaps(start, end) {
		return nil, errno.EEXIST
	}
	v := &VMA{
		Start: start, End: end, Prot: prot,
		Kind: opts.Kind, Name: opts.Name, Shared: opts.Shared,
		Huge: opts.Huge, Backing: opts.Backing, BackingOff: opts.BackingOff,
	}
	if v.reserved() {
		if err := s.phys.Reserve(v.Pages()); err != nil {
			return nil, err
		}
		s.commitPages += v.Pages()
	}
	i := s.find(start)
	s.vmas = append(s.vmas, nil)
	copy(s.vmas[i+1:], s.vmas[i:])
	s.vmas[i] = v
	s.meter.Charge(s.meter.Model.VMAClone)
	return v, nil
}

// findGap locates a free region of the given length in the mmap arena.
func (s *Space) findGap(length, pageSize uint64) (uint64, error) {
	addr := MmapBase
	for {
		i := s.find(addr)
		if i >= len(s.vmas) || s.vmas[i].Start >= addr+length {
			if addr+length > MmapTop {
				return 0, errno.ENOMEM
			}
			return addr, nil
		}
		addr = align(s.vmas[i].End, pageSize)
	}
}

// releaseEntry drops the frame reference held by a leaf entry and
// maintains RSS.
func (s *Space) releaseEntry(e pagetable.PTE) {
	f := e.Frame()
	s.rssPages -= f.Pages()
	s.phys.DecRef(f)
}

// Unmap removes [start, start+length) from the space, splitting VMAs
// as needed and releasing any resident pages. Huge VMAs may only be
// cut at 2 MiB boundaries.
func (s *Space) Unmap(start, length uint64) error {
	if length == 0 || start%mem.PageSize != 0 {
		return errno.EINVAL
	}
	length = align(length, mem.PageSize)
	end := start + length

	var out []*VMA
	released := 0
	for _, v := range s.vmas {
		if v.End <= start || v.Start >= end {
			out = append(out, v)
			continue
		}
		lo := v.Start
		if start > lo {
			lo = start
		}
		hi := v.End
		if end < hi {
			hi = end
		}
		if v.Huge && (lo%mem.HugeSize != 0 || hi%mem.HugeSize != 0) {
			return errno.EINVAL
		}
		// Release resident pages in [lo, hi).
		for va := lo; va < hi; va += v.pageSize() {
			if old, ok := s.pt.Unmap(va); ok {
				s.releaseEntry(old)
				released++
			}
		}
		if v.reserved() {
			n := (hi - lo) >> mem.PageShift
			s.phys.Unreserve(n)
			s.commitPages -= n
		}
		// Keep surviving fragments.
		if v.Start < lo {
			left := *v
			left.End = lo
			out = append(out, &left)
			s.meter.Charge(s.meter.Model.VMAClone)
		}
		if v.End > hi {
			right := *v
			right.Start = hi
			right.BackingOff = v.BackingOff + (hi - v.Start)
			out = append(out, &right)
			s.meter.Charge(s.meter.Model.VMAClone)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	s.vmas = out
	if released > 0 {
		// One batched invalidation round for the whole range.
		s.shootdown()
	}
	return nil
}

// SetupHeap establishes the heap origin (called by exec).
func (s *Space) SetupHeap(base uint64) {
	s.brkBase = align(base, mem.PageSize)
	s.brk = s.brkBase
}

// SetBrk grows or shrinks the heap to newBrk and returns the resulting
// break. A newBrk of 0 queries the current break.
func (s *Space) SetBrk(newBrk uint64) (uint64, error) {
	if s.brkBase == 0 {
		return 0, errno.EINVAL
	}
	if newBrk == 0 || newBrk == s.brk {
		return s.brk, nil
	}
	if newBrk < s.brkBase {
		return s.brk, errno.EINVAL
	}
	oldEnd := align(s.brk, mem.PageSize)
	newEnd := align(newBrk, mem.PageSize)
	switch {
	case newEnd > oldEnd:
		if _, err := s.Map(oldEnd, newEnd-oldEnd, Read|Write, MapOpts{Kind: KindHeap, Name: "[heap]"}); err != nil {
			return s.brk, err
		}
	case newEnd < oldEnd:
		if err := s.Unmap(newEnd, oldEnd-newEnd); err != nil {
			return s.brk, err
		}
	}
	s.brk = newBrk
	return s.brk, nil
}

// Access distinguishes fault intents.
type Access uint8

// Access intents.
const (
	AccessRead Access = iota
	AccessWrite
	AccessExec
)

func (a Access) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	}
	return fmt.Sprintf("access(%d)", int(a))
}

// Fault services a page fault at va with the given intent. It returns
// EFAULT for accesses outside any VMA or violating VMA protections,
// and ENOMEM when physical memory is exhausted (the OOM condition —
// under heuristic overcommit this is where a forked giant discovers
// there is no memory left).
func (s *Space) Fault(va uint64, access Access) error {
	v := s.FindVMA(va)
	if v == nil {
		return errno.EFAULT
	}
	switch access {
	case AccessWrite:
		if v.Prot&Write == 0 {
			return errno.EFAULT
		}
	case AccessExec:
		if v.Prot&Exec == 0 {
			return errno.EFAULT
		}
	default:
		if v.Prot&Read == 0 {
			return errno.EFAULT
		}
	}

	s.meter.Charge(s.meter.Model.PageFault)
	s.meter.PageFaults++

	base := alignDn(va, v.pageSize())
	pte, present := s.pt.Lookup(base)
	if !present {
		return s.demandFault(v, base, access)
	}
	if access == AccessWrite && !pte.Writable() {
		return s.cowBreak(v, base, pte)
	}
	// Benign race with the TLB (e.g. read fault on a page another
	// path just mapped): nothing to do.
	return nil
}

// demandFault populates an absent page.
func (s *Space) demandFault(v *VMA, base uint64, access Access) error {
	var f mem.FrameID
	var err error
	if v.Huge {
		f, err = s.phys.AllocHugeZero()
	} else {
		f, err = s.phys.AllocZero()
	}
	if err != nil {
		return err
	}
	if v.Backing != nil {
		// Page in from the image. Charged per 4 KiB page read.
		sz := int(v.pageSize())
		buf := make([]byte, sz)
		v.Backing.ReadAt(v.BackingOff+(base-v.Start), buf)
		s.phys.Write(f, 0, buf)
		n := cost.Ticks(sz / mem.PageSize)
		s.meter.Charge(n * s.meter.Model.ImagePageIn)
	}
	flags := pteFlags(v.Prot)
	if access == AccessWrite {
		flags |= pagetable.FlagDirty
	}
	if v.Shared {
		flags |= pagetable.FlagShared
	}
	if v.Huge {
		s.pt.MapHuge(base, pagetable.Make(f, flags))
	} else {
		s.pt.Map(base, pagetable.Make(f, flags))
	}
	s.rssPages += f.Pages()
	return nil
}

// cowBreak services a write fault on a read-only present page: if the
// page is COW it is either reclaimed (sole owner) or copied; a page
// that is privately owned but mapped read-only because of an earlier
// Protect call regains write permission in place (the mprotect-upgrade
// path); anything else is a protection violation (the VMA-level check
// already passed, so this only triggers for stale per-page state).
func (s *Space) cowBreak(v *VMA, base uint64, pte pagetable.PTE) error {
	// Injection point: a schedulable failure before any state is
	// touched, so an injected ENOMEM leaves the page exactly as the
	// fault found it (the write retries or the OOM killer fires).
	if e := s.phys.Injector().Fail(fault.PointCOWBreak, pte.Frame().Pages()); e != errno.OK {
		return e
	}
	if !pte.COW() {
		if s.phys.Refs(pte.Frame()) == 1 {
			// Permission widening, same frame: no remote
			// invalidation needed — a stale read-only entry on
			// another CPU just takes a spurious fault and
			// re-walks.
			s.pt.Update(base, pte.With(pagetable.FlagWritable|pagetable.FlagDirty))
			return nil
		}
		return errno.EFAULT
	}
	f := pte.Frame()
	if s.phys.Refs(f) == 1 {
		// Sole owner again (the other side copied or exited):
		// reclaim write permission in place. Widening only, so
		// again no remote IPIs.
		s.pt.Update(base, pte.Without(pagetable.FlagCOW).With(pagetable.FlagWritable|pagetable.FlagDirty))
		return nil
	}
	nf, err := s.phys.CopyFrame(f)
	if err != nil {
		return err
	}
	s.phys.DecRef(f)
	// The old frame stays resident in the other space(s); this
	// space swaps in the copy, so RSS is unchanged.
	flags := pte.Flags().Without(pagetable.FlagCOW).With(pagetable.FlagWritable | pagetable.FlagDirty)
	s.pt.Update(base, pagetable.Make(nf, flags))
	// The frame changed: every other CPU running this space may
	// still translate to the old frame and must be interrupted —
	// one IPI each, per break. This is the tax that makes a forked
	// snapshot of a busy SMP server expensive.
	s.shootdown()
	return nil
}

func pteFlags(p Prot) pagetable.PTE {
	var f pagetable.PTE
	if p&Write != 0 {
		f |= pagetable.FlagWritable
	}
	if p&Exec != 0 {
		f |= pagetable.FlagExec
	}
	return f
}

// Translate resolves va to a frame and intra-frame offset, faulting as
// needed. It is the kernel's copyin/copyout and the VM's load/store
// path.
func (s *Space) Translate(va uint64, access Access) (mem.FrameID, int, error) {
	for tries := 0; tries < 3; tries++ {
		pte, ok := s.pt.Lookup(va &^ (mem.PageSize - 1))
		if ok && (access != AccessWrite || pte.Writable()) {
			f := pte.Frame()
			return f, int(va & uint64(f.Size()-1)), nil
		}
		if err := s.Fault(va, access); err != nil {
			return mem.NoFrame, 0, err
		}
	}
	panic(fmt.Sprintf("addrspace: translate %#x did not converge", va))
}

// ReadBytes copies len(buf) bytes from user memory at va.
func (s *Space) ReadBytes(va uint64, buf []byte) error {
	for len(buf) > 0 {
		f, off, err := s.Translate(va, AccessRead)
		if err != nil {
			return err
		}
		n := f.Size() - off
		if n > len(buf) {
			n = len(buf)
		}
		s.phys.Read(f, off, buf[:n])
		buf = buf[n:]
		va += uint64(n)
	}
	return nil
}

// WriteBytes copies data into user memory at va.
func (s *Space) WriteBytes(va uint64, data []byte) error {
	for len(data) > 0 {
		f, off, err := s.Translate(va, AccessWrite)
		if err != nil {
			return err
		}
		n := f.Size() - off
		if n > len(data) {
			n = len(data)
		}
		s.phys.Write(f, off, data[:n])
		data = data[n:]
		va += uint64(n)
	}
	return nil
}

// Touch faults in [va, va+length) with the given intent without moving
// data. Workload generators use it to dirty a parent of a given size
// cheaply (a write of zeroes keeps frames unmaterialised on the host).
// Pages already mapped with sufficient permission cost only a TLB
// probe, so re-touching resident memory is nearly free — which makes
// Touch usable as the "rewrite working set" step of the COW-tax
// experiment.
func (s *Space) Touch(va, length uint64, access Access) error {
	end := va + length
	for va < end {
		v := s.FindVMA(va)
		if v == nil {
			return errno.EFAULT
		}
		if _, _, err := s.Translate(va, access); err != nil {
			return err
		}
		va = alignDn(va, v.pageSize()) + v.pageSize()
	}
	return nil
}

// CloneCOW builds the forked-child copy of s: VMAs are duplicated,
// commit is reserved for every private writable page (this is the
// up-front ENOMEM under strict accounting), and the page table is
// COW-cloned. The child's RSS equals the parent's: all resident pages
// are shared until written.
func (s *Space) CloneCOW() (*Space, error) {
	// Injection point: the entry into fork's Θ(mapped pages) walk,
	// before the commit reservation — a scheduled failure here is
	// "the kernel could not mirror the page tables".
	if e := s.phys.Injector().Fail(fault.PointPTClone, uint64(s.pt.Entries())); e != errno.OK {
		return nil, e
	}
	if err := s.phys.Reserve(s.commitPages); err != nil {
		return nil, err
	}
	c := &Space{
		phys: s.phys, meter: s.meter,
		rssPages:    s.rssPages,
		commitPages: s.commitPages,
		brkBase:     s.brkBase, brk: s.brk,
	}
	c.vmas = make([]*VMA, len(s.vmas))
	for i, v := range s.vmas {
		nv := *v
		c.vmas[i] = &nv
		s.meter.Charge(s.meter.Model.VMAClone)
	}
	c.pt = s.pt.CloneCOW()
	// Every shared frame now has an extra reference; the page-table
	// clone bumped them. RSS for the child counts them resident.
	//
	// The clone downgraded every private writable mapping in the
	// *parent* to read-only: every other CPU running the parent must
	// be interrupted before the fork is safe — the paper's §5 "fork
	// pauses all your cores" point. One batched round; the child is
	// brand new and resident nowhere.
	if s.pt.Entries() > 0 {
		s.shootdown()
	}
	return c, nil
}

// CloneEager is the 1970s fork: every private resident page is copied
// immediately. Used by the EagerFork ablation. On ENOMEM the partial
// child is torn down and nil returned.
func (s *Space) CloneEager() (*Space, error) {
	if e := s.phys.Injector().Fail(fault.PointPTClone, uint64(s.pt.Entries())); e != errno.OK {
		return nil, e
	}
	if err := s.phys.Reserve(s.commitPages); err != nil {
		return nil, err
	}
	c := &Space{
		phys: s.phys, meter: s.meter,
		rssPages:    s.rssPages,
		commitPages: s.commitPages,
		brkBase:     s.brkBase, brk: s.brk,
	}
	c.vmas = make([]*VMA, len(s.vmas))
	for i, v := range s.vmas {
		nv := *v
		c.vmas[i] = &nv
		s.meter.Charge(s.meter.Model.VMAClone)
	}
	pt, err := s.pt.CloneEager()
	c.pt = pt
	if err != nil {
		// The partial child holds only the frames copied before the
		// failure, not the parent's full resident set the optimistic
		// pre-assignment above claimed: recount before Destroy's
		// leak check tallies the releases.
		var pages uint64
		c.pt.Visit(func(_ uint64, e pagetable.PTE) pagetable.PTE {
			pages += e.Frame().Pages()
			return e
		})
		c.rssPages = pages
		c.Destroy()
		return nil, err
	}
	return c, nil
}

// Destroy releases every resident page, page-table page, and commit
// reservation. The space must not be used afterwards.
func (s *Space) Destroy() {
	s.pt.Destroy(func(_ uint64, e pagetable.PTE) {
		s.releaseEntry(e)
	})
	if s.commitPages > 0 {
		s.phys.Unreserve(s.commitPages)
		s.commitPages = 0
	}
	s.vmas = nil
	s.brkBase, s.brk = 0, 0
	s.resident = 0
	if s.rssPages != 0 {
		panic(fmt.Sprintf("addrspace: %d pages leaked at destroy", s.rssPages))
	}
}

// Dump formats the VMA list for debugging and the forksh `vmmap`
// command.
func (s *Space) Dump() string {
	out := ""
	for _, v := range s.vmas {
		out += v.String() + "\n"
	}
	return out
}

// Protect changes the protection of [start, start+length) — the
// mprotect(2) of the simulator. VMAs are split at the boundaries as
// needed. Removing write permission downgrades present PTEs
// immediately; granting it is lazy (the next write faults and the
// sole-owner upgrade path in cowBreak restores the bit), mirroring how
// real kernels avoid eagerly rewriting page tables on mprotect.
func (s *Space) Protect(start, length uint64, prot Prot) error {
	if length == 0 || start%mem.PageSize != 0 {
		return errno.EINVAL
	}
	length = align(length, mem.PageSize)
	end := start + length

	// Every byte of the range must be mapped (POSIX ENOMEM).
	for va := start; va < end; {
		v := s.FindVMA(va)
		if v == nil {
			return errno.ENOMEM
		}
		va = v.End
	}

	var out []*VMA
	for _, v := range s.vmas {
		if v.End <= start || v.Start >= end {
			out = append(out, v)
			continue
		}
		lo, hi := v.Start, v.End
		if start > lo {
			lo = start
		}
		if end < hi {
			hi = end
		}
		if v.Huge && (lo%mem.HugeSize != 0 || hi%mem.HugeSize != 0) {
			return errno.EINVAL
		}
		// Commit accounting moves with the writable bit.
		wasReserved := v.reserved()
		mid := *v
		mid.Start, mid.End, mid.Prot = lo, hi, prot
		mid.BackingOff = v.BackingOff + (lo - v.Start)
		if wasReserved != mid.reserved() {
			n := (hi - lo) >> mem.PageShift
			if mid.reserved() {
				if err := s.phys.Reserve(n); err != nil {
					return err
				}
				s.commitPages += n
			} else {
				s.phys.Unreserve(n)
				s.commitPages -= n
			}
		}
		if v.Start < lo {
			left := *v
			left.End = lo
			out = append(out, &left)
			s.meter.Charge(s.meter.Model.VMAClone)
		}
		out = append(out, &mid)
		s.meter.Charge(s.meter.Model.VMAClone)
		if v.End > hi {
			right := *v
			right.Start = hi
			right.BackingOff = v.BackingOff + (hi - v.Start)
			out = append(out, &right)
			s.meter.Charge(s.meter.Model.VMAClone)
		}
		// Downgrade present PTEs when write permission is
		// revoked; exec/read removal is enforced at the VMA
		// level on the next fault.
		if prot&Write == 0 {
			downgraded := 0
			for va := lo; va < hi; va += mid.pageSize() {
				if pte, ok := s.pt.Lookup(va); ok && pte.Writable() {
					s.pt.Update(va, pte.Without(pagetable.FlagWritable))
					downgraded++
				}
			}
			if downgraded > 0 {
				// One batched invalidation round per
				// protection change.
				s.shootdown()
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	s.vmas = out
	return nil
}
