package addrspace

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/mem"
)

// smpSpace builds a 4-CPU meter and a space with n dirty 4KiB pages.
func smpSpace(t *testing.T, pages uint64) (*Space, *cost.Meter) {
	t.Helper()
	meter := cost.NewMeterSMP(cost.DefaultModel(), 4)
	phys := mem.NewPhysical(meter, 256<<20, 0, mem.CommitHeuristic)
	s := New(phys, meter)
	v, err := s.Map(0, pages*mem.PageSize, Read|Write, MapOpts{Kind: KindAnon, Name: "w"})
	if err != nil {
		t.Fatalf("map: %v", err)
	}
	if err := s.Touch(v.Start, v.Len(), AccessWrite); err != nil {
		t.Fatalf("touch: %v", err)
	}
	return s, meter
}

// TestShootdownPerRemoteCPU checks the §5 cost model: COW breaks,
// unmaps, and protection changes IPI every *remote* CPU on which the
// space is resident, and nothing when the space runs nowhere else.
func TestShootdownPerRemoteCPU(t *testing.T) {
	s, meter := smpSpace(t, 6)
	base := s.VMAs()[0].Start

	// Resident nowhere: no IPIs, ever.
	if err := s.Protect(base, mem.PageSize, Read); err != nil {
		t.Fatalf("protect: %v", err)
	}
	if meter.TLBShootdowns != 0 {
		t.Fatalf("shootdowns with empty residency: %d", meter.TLBShootdowns)
	}

	// Resident on CPUs {0,1,2}; operations initiated from CPU 0
	// must IPI exactly {1,2}.
	s.MarkResident(0)
	s.MarkResident(1)
	s.MarkResident(2)
	if s.ResidentCPUs() != 3 {
		t.Fatalf("ResidentCPUs = %d", s.ResidentCPUs())
	}

	// Protection change (downgrade of one writable page).
	if err := s.Protect(base+mem.PageSize, mem.PageSize, Read); err != nil {
		t.Fatalf("protect: %v", err)
	}
	if meter.TLBShootdowns != 2 {
		t.Fatalf("protect shootdowns = %d, want 2", meter.TLBShootdowns)
	}

	// Unmap of a populated page: one more batched round.
	if err := s.Unmap(base+2*mem.PageSize, mem.PageSize); err != nil {
		t.Fatalf("unmap: %v", err)
	}
	if meter.TLBShootdowns != 4 {
		t.Fatalf("unmap shootdowns = %d, want 4", meter.TLBShootdowns)
	}

	// Fork: the parent-side downgrade is one round.
	child, err := s.CloneCOW()
	if err != nil {
		t.Fatalf("clone: %v", err)
	}
	if meter.TLBShootdowns != 6 {
		t.Fatalf("clone shootdowns = %d, want 6", meter.TLBShootdowns)
	}
	if child.ResidentCPUs() != 0 {
		t.Errorf("fresh child resident on %d CPUs", child.ResidentCPUs())
	}

	// COW break from CPU 2: remotes are {0,1}.
	meter.SetActiveCPU(2)
	if err := s.Fault(base+3*mem.PageSize, AccessWrite); err != nil {
		t.Fatalf("cow break: %v", err)
	}
	if meter.TLBShootdowns != 8 {
		t.Fatalf("cow-break shootdowns = %d, want 8", meter.TLBShootdowns)
	}

	// Clearing residency stops the charges: a COW break on a page
	// the space runs nowhere else costs no IPIs.
	meter.SetActiveCPU(0)
	s.ClearResident(1)
	s.ClearResident(2)
	s.ClearResident(0)
	before := meter.TLBShootdowns
	if err := s.Fault(base+4*mem.PageSize, AccessWrite); err != nil {
		t.Fatalf("cow break: %v", err)
	}
	if meter.TLBShootdowns != before {
		t.Errorf("shootdowns after residency cleared: %d -> %d", before, meter.TLBShootdowns)
	}

	child.Destroy()
	s.Destroy()
}

// TestShootdownCostGrowsWithResidency is the monotonicity property the
// CPU-sweep experiment reports: the same fork costs strictly more
// virtual time for every additional core the parent is running on.
func TestShootdownCostGrowsWithResidency(t *testing.T) {
	var prev cost.Ticks
	for residents := 1; residents <= 4; residents++ {
		s, meter := smpSpace(t, 16)
		for c := 0; c < residents; c++ {
			s.MarkResident(c)
		}
		t0 := meter.Now()
		child, err := s.CloneCOW()
		if err != nil {
			t.Fatalf("clone: %v", err)
		}
		elapsed := meter.Now() - t0
		if residents > 1 && elapsed <= prev {
			t.Errorf("fork with %d resident CPUs cost %v, not above %v", residents, elapsed, prev)
		}
		prev = elapsed
		child.Destroy()
		s.Destroy()
	}
}
