package addrspace

import (
	"repro/internal/errno"
	"repro/internal/mem"
	"repro/internal/pagetable"
)

// This file is the address-space half of checkpoint/restore: walking
// the page table to extract resident pages into host-side records
// (CapturePages) and installing them into a freshly built space on
// another machine (InstallPage). Iterative pre-copy migration rides
// on the same dirty tracking COW already maintains: CapturePages can
// downgrade every page it copies to read-only-clean, so the next
// write re-faults through cowBreak's sole-owner upgrade path — which
// re-sets FlagDirty — and the following round harvests exactly the
// pages mutated since this one.

// PageRecord is one resident page captured from a space. Flags are
// the PTE flag bits to restore with (FlagPresent is implied;
// FlagHuge distinguishes 2 MiB pages). Data is nil for frames that
// were never materialised on the host — they are logically zero and
// restore as lazily-zero frames, though their capture still priced a
// full page copy (the simulated machine moved the bytes either way).
type PageRecord struct {
	VA    uint64
	Flags pagetable.PTE
	Data  []byte
}

// Pages reports the record's size in 4 KiB pages.
func (r *PageRecord) Pages() uint64 {
	if r.Flags&pagetable.FlagHuge != 0 {
		return mem.FramesPerHuge
	}
	return 1
}

// CapturePages walks the page table in ascending va order and returns
// a record per resident page — the checkpoint serialization pass,
// priced at one page copy per captured 4 KiB (HugeCopy for huge
// pages).
//
// dirtyOnly restricts the capture to pages with FlagDirty set: the
// pre-copy rounds of live migration, which only re-ship what was
// mutated since the last rearmed capture. rearm downgrades every
// captured private page to read-only-clean (one batched TLB
// shootdown round when anything was downgraded), arming the dirty
// tracking for the next round; MAP_SHARED pages are captured but
// never rearmed — cowBreak would misread a write-protected shared
// page as a protection violation.
func (s *Space) CapturePages(dirtyOnly, rearm bool) []PageRecord {
	var out []PageRecord
	downgraded := 0
	s.pt.Visit(func(va uint64, e pagetable.PTE) pagetable.PTE {
		if dirtyOnly && e&pagetable.FlagDirty == 0 {
			return e
		}
		f := e.Frame()
		r := PageRecord{VA: va, Flags: e.Flags()}
		if s.phys.Materialised(f) {
			buf := make([]byte, f.Size())
			s.phys.Read(f, 0, buf)
			r.Data = buf
		}
		if f.IsHuge() {
			s.meter.Charge(s.meter.Model.HugeCopy)
			s.meter.PageCopies += mem.FramesPerHuge
		} else {
			s.meter.Charge(s.meter.Model.PageCopy)
			s.meter.PageCopies++
		}
		out = append(out, r)
		if rearm && !e.Shared() {
			ne := e.Without(pagetable.FlagDirty | pagetable.FlagWritable)
			if ne != e {
				downgraded++
			}
			return ne
		}
		return e
	})
	if downgraded > 0 {
		// The downgrades shrank translations other CPUs may cache:
		// one batched invalidation round, like Protect.
		s.shootdown()
	}
	return out
}

// DirtyPages counts resident pages with FlagDirty set (in 4 KiB
// units), without copying or rewriting anything — the migration
// driver's "is the residue small enough to stop" probe.
func (s *Space) DirtyPages() uint64 {
	var n uint64
	s.pt.Visit(func(_ uint64, e pagetable.PTE) pagetable.PTE {
		if e&pagetable.FlagDirty != 0 {
			n += e.Frame().Pages()
		}
		return e
	})
	return n
}

// InstallPage materialises one captured page in s: a fresh frame is
// allocated (and paid for), the recorded bytes copied in, and the PTE
// installed with the recorded flags minus FlagCOW — the restored
// space owns every frame privately, so the COW bit would be a lie
// (write faults still work either way: the sole-owner upgrade path
// handles both). The target VMA must already be mapped; commit was
// reserved when it was.
//
// Installing over an already-resident page replaces it: the old frame
// is released (one PTE write, priced) before the new one goes in.
// That is what the pre-copy rounds of live migration do — each round
// re-ships the pages dirtied since the last, overwriting the stale
// copy the destination already holds.
func (s *Space) InstallPage(r PageRecord) error {
	v := s.FindVMA(r.VA)
	if v == nil {
		return errno.EFAULT
	}
	if old, ok := s.pt.Unmap(r.VA); ok {
		s.releaseEntry(old)
	}
	huge := r.Flags&pagetable.FlagHuge != 0
	var f mem.FrameID
	var err error
	if huge {
		f, err = s.phys.AllocHugeZero()
	} else {
		f, err = s.phys.AllocZero()
	}
	if err != nil {
		return err
	}
	if r.Data != nil {
		s.phys.Write(f, 0, r.Data)
		if huge {
			s.meter.Charge(s.meter.Model.HugeCopy)
			s.meter.PageCopies += mem.FramesPerHuge
		} else {
			s.meter.Charge(s.meter.Model.PageCopy)
			s.meter.PageCopies++
		}
	}
	flags := r.Flags.Without(pagetable.FlagCOW | pagetable.FlagHuge)
	if huge {
		s.pt.MapHuge(r.VA, pagetable.Make(f, flags))
	} else {
		s.pt.Map(r.VA, pagetable.Make(f, flags))
	}
	// The restore writes the page's bytes through the fresh mapping:
	// pay the walk and leave the TLB warm, exactly as the original
	// machine's image loader did when it first populated the page.
	s.pt.Lookup(r.VA)
	s.rssPages += f.Pages()
	return nil
}

// BrkBase reports the heap origin (0 ⇒ no heap established).
func (s *Space) BrkBase() uint64 { return s.brkBase }

// RestoreBrk reinstates checkpointed heap bookkeeping. The heap VMAs
// themselves are restored through Map like any other VMA; this only
// sets the origin and break that SetBrk steers by.
func (s *Space) RestoreBrk(base, brk uint64) {
	s.brkBase, s.brk = base, brk
}
