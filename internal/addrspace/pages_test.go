package addrspace

import (
	"bytes"
	"testing"

	"repro/internal/mem"
	"repro/internal/pagetable"
)

// TestCapturePagesDirtyTracking walks the pre-copy contract: a full
// rearmed capture leaves the space clean, writes re-fault through the
// sole-owner upgrade and re-dirty exactly the written pages, and the
// next dirty-only capture harvests precisely those.
func TestCapturePagesDirtyTracking(t *testing.T) {
	s, _ := newSpace(64, mem.CommitHeuristic)
	const base, npages = uint64(0x10000), 4
	if _, err := s.Map(base, npages*mem.PageSize, Read|Write, MapOpts{Name: "heap"}); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < npages; i++ {
		if err := s.WriteBytes(base+i*mem.PageSize, []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.DirtyPages(); got != npages {
		t.Fatalf("DirtyPages = %d, want %d", got, npages)
	}

	full := s.CapturePages(false, true)
	if len(full) != npages {
		t.Fatalf("full capture = %d records, want %d", len(full), npages)
	}
	for i, r := range full {
		if r.VA != base+uint64(i)*mem.PageSize {
			t.Errorf("record %d va = %#x", i, r.VA)
		}
		if r.Data == nil || r.Data[0] != byte('a'+i) {
			t.Errorf("record %d data = %v", i, r.Data)
		}
	}
	if got := s.DirtyPages(); got != 0 {
		t.Fatalf("DirtyPages after rearm = %d, want 0", got)
	}
	if residue := s.CapturePages(true, true); len(residue) != 0 {
		t.Fatalf("dirty-only capture after rearm = %d records, want 0", len(residue))
	}

	// Mutate one page: the write must re-fault (the rearm dropped
	// FlagWritable) and mark exactly that page dirty again.
	if err := s.WriteBytes(base+2*mem.PageSize, []byte{'X'}); err != nil {
		t.Fatal(err)
	}
	round := s.CapturePages(true, true)
	if len(round) != 1 || round[0].VA != base+2*mem.PageSize {
		t.Fatalf("round capture = %+v, want the single mutated page", round)
	}
	if round[0].Data[0] != 'X' {
		t.Errorf("round data = %q, want 'X'", round[0].Data[0])
	}
	// And reads of the untouched pages still work post-rearm.
	buf := make([]byte, 1)
	if err := s.ReadBytes(base, buf); err != nil || buf[0] != 'a' {
		t.Errorf("read after rearm = %v %q", err, buf)
	}
}

// TestCapturePagesChargesUnmaterialised: Touch-warmed heaps never
// materialise host frames, but the simulated machine still moved the
// bytes — capture must price every page or migration of warmed heaps
// would look free.
func TestCapturePagesChargesUnmaterialised(t *testing.T) {
	s, _ := newSpace(64, mem.CommitHeuristic)
	const base, npages = uint64(0x40000), 8
	if _, err := s.Map(base, npages*mem.PageSize, Read|Write, MapOpts{Name: "warm"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Touch(base, npages*mem.PageSize, AccessWrite); err != nil {
		t.Fatal(err)
	}
	before := s.meter.PageCopies
	t0 := s.meter.MaxClock()
	recs := s.CapturePages(false, false)
	if len(recs) != npages {
		t.Fatalf("captured %d records, want %d", len(recs), npages)
	}
	for _, r := range recs {
		if r.Data != nil {
			t.Errorf("va %#x: unmaterialised page captured host bytes", r.VA)
		}
	}
	if got := s.meter.PageCopies - before; got != npages {
		t.Errorf("PageCopies += %d, want %d (unmaterialised pages must still be priced)", got, npages)
	}
	if s.meter.MaxClock() == t0 {
		t.Error("capture advanced no virtual time")
	}
}

// TestInstallPageRoundTrip rebuilds a space from captured records and
// checks bytes, flags, and RSS accounting survive the trip.
func TestInstallPageRoundTrip(t *testing.T) {
	src, _ := newSpace(64, mem.CommitHeuristic)
	const base, npages = uint64(0x200000), 3
	if _, err := src.Map(base, npages*mem.PageSize, Read|Write, MapOpts{Name: "heap"}); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, mem.PageSize)
	for i := uint64(0); i < npages; i++ {
		payload[0] = byte(i)
		if err := src.WriteBytes(base+i*mem.PageSize, payload); err != nil {
			t.Fatal(err)
		}
	}
	recs := src.CapturePages(false, false)

	dst, _ := newSpace(64, mem.CommitHeuristic)
	if _, err := dst.Map(base, npages*mem.PageSize, Read|Write, MapOpts{Name: "heap"}); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := dst.InstallPage(r); err != nil {
			t.Fatalf("install %#x: %v", r.VA, err)
		}
		if r.Flags&pagetable.FlagCOW != 0 {
			t.Errorf("record %#x carries FlagCOW", r.VA)
		}
	}
	if dst.RSS() != src.RSS() {
		t.Errorf("dst RSS = %d, src = %d", dst.RSS(), src.RSS())
	}
	got := make([]byte, mem.PageSize)
	for i := uint64(0); i < npages; i++ {
		if err := dst.ReadBytes(base+i*mem.PageSize, got); err != nil {
			t.Fatal(err)
		}
		payload[0] = byte(i)
		if !bytes.Equal(got, payload) {
			t.Errorf("page %d contents diverged after install", i)
		}
	}
	// Writes to restored pages work (restored spaces own every frame).
	if err := dst.WriteBytes(base, []byte{1}); err != nil {
		t.Errorf("write to restored page: %v", err)
	}
	// Installing outside any VMA refuses rather than corrupting.
	if err := dst.InstallPage(PageRecord{VA: 0x9000000}); err == nil {
		t.Error("InstallPage outside a VMA succeeded")
	}
}
