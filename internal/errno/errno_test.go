package errno

import (
	"errors"
	"fmt"
	"testing"
)

func TestErrorStrings(t *testing.T) {
	if ENOMEM.Error() != "ENOMEM" {
		t.Errorf("ENOMEM prints %q", ENOMEM.Error())
	}
	if Errno(999).Error() != "errno(999)" {
		t.Errorf("unknown prints %q", Errno(999).Error())
	}
}

func TestIsThroughWrapping(t *testing.T) {
	wrapped := fmt.Errorf("fork failed: %w", ENOMEM)
	if !errors.Is(wrapped, ENOMEM) {
		t.Error("errors.Is through wrap failed")
	}
	if errors.Is(wrapped, EAGAIN) {
		t.Error("errors.Is matched wrong errno")
	}
}

func TestOf(t *testing.T) {
	if Of(nil, EINVAL) != OK {
		t.Error("Of(nil) != OK")
	}
	if Of(EBADF, EINVAL) != EBADF {
		t.Error("Of lost the errno")
	}
	if Of(errors.New("other"), EINVAL) != EINVAL {
		t.Error("Of fallback failed")
	}
}

func TestLinuxNumbering(t *testing.T) {
	// Spot-check ABI compatibility claims in the package doc.
	for _, c := range []struct {
		e Errno
		n int
	}{{EPERM, 1}, {ENOENT, 2}, {EBADF, 9}, {ECHILD, 10}, {ENOMEM, 12}, {EINVAL, 22}, {EPIPE, 32}, {ENOSYS, 38}} {
		if int(c.e) != c.n {
			t.Errorf("%v = %d, want %d", c.e, int(c.e), c.n)
		}
	}
}
