// Package errno defines the simulated kernel's error numbers.
//
// The values follow the Linux x86-64 ABI where one exists so that the
// simulated userland (see internal/ulib) can test against familiar
// constants, but nothing outside this module depends on the exact
// numbers.
package errno

import "fmt"

// Errno is a kernel error number. The zero value means "no error".
type Errno int

// Error numbers used by the simulator.
const (
	OK        Errno = 0
	EPERM     Errno = 1
	ENOENT    Errno = 2
	ESRCH     Errno = 3
	EINTR     Errno = 4
	EIO       Errno = 5
	E2BIG     Errno = 7
	ENOEXEC   Errno = 8
	EBADF     Errno = 9
	ECHILD    Errno = 10
	EAGAIN    Errno = 11
	ENOMEM    Errno = 12
	EACCES    Errno = 13
	EFAULT    Errno = 14
	EBUSY     Errno = 16
	EEXIST    Errno = 17
	ENOTDIR   Errno = 20
	EISDIR    Errno = 21
	EINVAL    Errno = 22
	ENFILE    Errno = 23
	EMFILE    Errno = 24
	ESPIPE    Errno = 29
	EPIPE     Errno = 32
	ERANGE    Errno = 34
	EDEADLK   Errno = 35
	ENOSYS    Errno = 38
	ENOTEMPTY Errno = 39
	ETIMEDOUT Errno = 110
)

var names = map[Errno]string{
	OK:        "OK",
	EPERM:     "EPERM",
	ENOENT:    "ENOENT",
	ESRCH:     "ESRCH",
	EINTR:     "EINTR",
	EIO:       "EIO",
	E2BIG:     "E2BIG",
	ENOEXEC:   "ENOEXEC",
	EBADF:     "EBADF",
	ECHILD:    "ECHILD",
	EAGAIN:    "EAGAIN",
	ENOMEM:    "ENOMEM",
	EACCES:    "EACCES",
	EFAULT:    "EFAULT",
	EBUSY:     "EBUSY",
	EEXIST:    "EEXIST",
	ENOTDIR:   "ENOTDIR",
	EISDIR:    "EISDIR",
	EINVAL:    "EINVAL",
	ENFILE:    "ENFILE",
	EMFILE:    "EMFILE",
	ESPIPE:    "ESPIPE",
	EPIPE:     "EPIPE",
	ERANGE:    "ERANGE",
	EDEADLK:   "EDEADLK",
	ENOSYS:    "ENOSYS",
	ENOTEMPTY: "ENOTEMPTY",
	ETIMEDOUT: "ETIMEDOUT",
}

// Error implements the error interface. OK should never be returned
// as an error; callers return nil instead.
func (e Errno) Error() string {
	if s, ok := names[e]; ok {
		return s
	}
	return fmt.Sprintf("errno(%d)", int(e))
}

// Is allows errors.Is comparisons between wrapped errnos.
func (e Errno) Is(target error) bool {
	t, ok := target.(Errno)
	return ok && t == e
}

// Of extracts the Errno from err, or returns fallback if err is not an
// Errno. A nil err yields OK.
func Of(err error, fallback Errno) Errno {
	if err == nil {
		return OK
	}
	if e, ok := err.(Errno); ok {
		return e
	}
	return fallback
}
