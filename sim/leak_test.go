package sim_test

import (
	"errors"
	"testing"

	"repro/internal/errno"
	"repro/sim"
)

// allStrategies is every creation API including the eager ablation —
// the leak invariant must hold for each of them.
func allStrategies() []sim.Strategy {
	return append(sim.Strategies(), sim.EagerForkExec)
}

type counts struct {
	procs int
	pages uint64
}

func snapshot(sys *sim.System) counts {
	k := sys.Kernel()
	return counts{procs: k.ProcessCount(), pages: k.Phys().AllocatedPages()}
}

// TestStartFailureLeaksNothing is the generalized form of PR 1's
// Builder.Start fix: after ANY Cmd.Start failure, under every
// strategy, the kernel's process table and physical memory must be
// exactly back at baseline — a server that creates thousands of
// processes cannot afford a page per failed creation.
//
// These are the *organic* failure paths (bad path, genuinely
// exhausted RAM, strict commit). The schedule-sweeping generalization
// lives in sim/fault: TestExhaustiveSingleFaultSweep enumerates every
// injection-point operation from a clean run's op counters and
// re-runs the workload with each one failing in turn, holding the
// same invariant at every fallible boundary instead of these
// hand-picked ones.
func TestStartFailureLeaksNothing(t *testing.T) {
	t.Run("bad-path", func(t *testing.T) {
		for _, st := range allStrategies() {
			t.Run(st.String(), func(t *testing.T) {
				sys, err := sim.NewSystem(sim.WithUserland("true"))
				if err != nil {
					t.Fatal(err)
				}
				base := snapshot(sys)
				if err := sys.Command("/bin/no-such-binary").Via(st).Start(); err == nil {
					t.Fatal("Start of a nonexistent binary succeeded")
				}
				if got := snapshot(sys); got != base {
					t.Errorf("leak after failed Start: %+v, baseline %+v", got, base)
				}
			})
		}
	})

	// A machine with a single free frame: image load fails with
	// ENOMEM partway into construction for every strategy.
	t.Run("enomem-tiny-ram", func(t *testing.T) {
		for _, st := range allStrategies() {
			t.Run(st.String(), func(t *testing.T) {
				sys, err := sim.NewSystem(sim.WithRAM(4096), sim.WithUserland("true"))
				if err != nil {
					t.Fatal(err)
				}
				base := snapshot(sys)
				err = sys.Command("true").Via(st).Start()
				if err == nil {
					t.Fatal("Start succeeded with one frame of RAM")
				}
				if !errors.Is(err, errno.ENOMEM) {
					t.Fatalf("err = %v, want ENOMEM", err)
				}
				if got := snapshot(sys); got != base {
					t.Errorf("leak after ENOMEM: %+v, baseline %+v", got, base)
				}
			})
		}
	})

	// Strict overcommit with a heap past half of RAM: the fork
	// family's commit reservation (or the eager copy itself) fails;
	// spawn and the builder duplicate nothing and vfork shares the
	// parent's space outright, so those three sail through — §4.6's
	// and §6's point — and must also come back to baseline after the
	// child is reaped.
	t.Run("enomem-strict-commit", func(t *testing.T) {
		for _, st := range allStrategies() {
			t.Run(st.String(), func(t *testing.T) {
				sys, err := sim.NewSystem(
					sim.WithRAM(64<<20),
					sim.WithCommitPolicy(sim.CommitStrict),
					sim.WithUserland("true"),
				)
				if err != nil {
					t.Fatal(err)
				}
				if err := sys.DirtyHost(40<<20, false); err != nil {
					t.Fatal(err)
				}
				base := snapshot(sys)
				cmd := sys.Command("true").Via(st)
				switch err := cmd.Start(); st {
				case sim.ForkExec, sim.EagerForkExec, sim.EmulatedFork:
					if err == nil {
						t.Fatalf("%v fork of a 40MiB parent in 64MiB strict RAM succeeded", st)
					}
					if !errors.Is(err, errno.ENOMEM) {
						t.Fatalf("err = %v, want ENOMEM", err)
					}
				default: // Spawn, Builder, VforkExec: no duplication, no reservation
					if err != nil {
						t.Fatalf("%v failed: %v", st, err)
					}
					if err := cmd.Wait(); err != nil {
						t.Fatal(err)
					}
				}
				if got := snapshot(sys); got != base {
					t.Errorf("counts after %v: %+v, baseline %+v", st, got, base)
				}
			})
		}
	})

	// Mid-pipeline failure: the first stage is already running when
	// the second stage's Start fails; after killing and reaping the
	// orphaned stage, everything must be back at baseline.
	t.Run("mid-pipeline", func(t *testing.T) {
		for _, st := range allStrategies() {
			t.Run(st.String(), func(t *testing.T) {
				sys, err := sim.NewSystem(sim.WithUserland("cat"))
				if err != nil {
					t.Fatal(err)
				}
				base := snapshot(sys)
				r, w := sys.Pipe()
				left := sys.Command("cat").Via(st) // blocks reading its inherited stdin
				left.Stdout = w
				right := sys.Command("/bin/no-such-filter").Via(st)
				right.Stdin = r
				if err := left.Start(); err != nil {
					t.Fatal(err)
				}
				if err := right.Start(); err == nil {
					t.Fatal("second stage with a bad path started")
				}
				left.Process.Kill()
				if err := left.Wait(); err == nil {
					t.Fatal("killed stage reported success")
				}
				w.Close()
				r.Close()
				if got := snapshot(sys); got != base {
					t.Errorf("leak after mid-pipeline failure: %+v, baseline %+v", got, base)
				}
			})
		}
	})
}
