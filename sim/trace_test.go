package sim_test

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/sim"
)

// -update regenerates the golden trace files instead of comparing:
//
//	go test ./sim -run TestGoldenTraces -update
var update = flag.Bool("update", false, "rewrite testdata/trace/*.golden from the current traces")

// goldenStrategies maps each creation strategy to its golden file
// name (the CLI short names; Strategy.String contains '/' and '+').
var goldenStrategies = []struct {
	name string
	via  sim.Strategy
}{
	{"fork", sim.ForkExec},
	{"vfork", sim.VforkExec},
	{"spawn", sim.Spawn},
	{"builder", sim.Builder},
	{"emufork", sim.EmulatedFork},
}

// goldenTrace runs the reference program (echo from a 64 KiB dirty
// parent) under the given strategy with tracing on and returns the
// rendered trace. Everything in it is virtual-time deterministic.
func goldenTrace(t *testing.T, via sim.Strategy) string {
	t.Helper()
	sys, err := sim.NewSystem(
		sim.WithRAM(64<<20),
		sim.WithUserland("echo"),
		sim.WithTrace(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.DirtyHost(64<<10, false); err != nil {
		t.Fatal(err)
	}
	cmd := sys.Command("echo", "trace", "me").Via(via)
	cmd.Stdout = io.Discard
	if err := cmd.Run(); err != nil {
		t.Fatal(err)
	}
	return sys.Trace().Render()
}

// TestGoldenTraces is the trace-format regression gate: one small
// program per creation strategy, traced, rendered, and byte-compared
// against the checked-in golden file. The trace is a pure function of
// the machine's virtual execution, so any diff is a real behavioural
// or cost-model change — acknowledge it by regenerating with -update,
// never by hand-editing.
func TestGoldenTraces(t *testing.T) {
	for _, g := range goldenStrategies {
		g := g
		t.Run(g.name, func(t *testing.T) {
			got := goldenTrace(t, g.via)
			if again := goldenTrace(t, g.via); again != got {
				t.Fatalf("trace is not deterministic across runs:\nfirst:\n%s\nsecond:\n%s", got, again)
			}
			path := filepath.Join("testdata", "trace", g.name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with `go test ./sim -run TestGoldenTraces -update`): %v", err)
			}
			if got != string(want) {
				t.Errorf("trace diverged from %s (if intended, regenerate with -update):\ngot:\n%s\nwant:\n%s",
					path, got, want)
			}
		})
	}
}
