package fleet

import (
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"syscall"
)

// HostPeakRSS reports the calling process's peak resident set in bytes
// — the memory half of the host-scale story (a 100k-machine fleet must
// stream, pool, and stay under a real bound, not just finish). Read
// from /proc/self/status (VmHWM) where available; elsewhere it falls
// back to the Go runtime's reserved-from-OS figure, which bounds RSS
// from above. Host-side and monotone within a process: never part of
// the byte-stable report.
func HostPeakRSS() uint64 {
	if data, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if !strings.HasPrefix(line, "VmHWM:") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				if kb, err := strconv.ParseUint(fields[1], 10, 64); err == nil {
					return kb << 10
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Sys
}

// childPeakRSS reports a finished shard worker's peak resident set via
// its rusage (ru_maxrss is KiB on Linux). Zero when unavailable; the
// worker also self-reports via shardPartial, so this is a cross-check
// that covers memory the worker freed before sampling itself.
func childPeakRSS(cmd *exec.Cmd) uint64 {
	if cmd.ProcessState == nil {
		return 0
	}
	if ru, ok := cmd.ProcessState.SysUsage().(*syscall.Rusage); ok && ru != nil {
		return uint64(ru.Maxrss) << 10
	}
	return 0
}
