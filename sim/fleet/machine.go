package fleet

import (
	"repro/sim/load"
)

// Machine is one incrementally managed fleet member: a persistent
// prefork server (load.Server) plus its fleet identity. Where Run
// drives a fixed population birth-to-death, Machines are added and
// removed mid-run — the primitive sim/cluster's autoscaler scales
// pools with. Booting one pays the warm-up tax (boot, heap dirtying,
// pool creation via the configured strategy) on the machine's own
// virtual clock; Retire tears it down and reports the leak books.
//
// A Machine is single-goroutine; distinct Machines are independent
// simulations and may run host-parallel (see ForEach).
type Machine struct {
	// ID is the fleet-unique machine id; cross-machine merges order
	// by it.
	ID int
	// Zone is the availability-zone index the machine is placed in.
	Zone int

	srv *load.Server
}

// MachineSample is one machine's exported metric sample: the fleet
// identity plus the server's live state — what the autoscaler's
// per-step watch sees.
type MachineSample struct {
	Machine int `json:"machine"`
	Zone    int `json:"zone"`
	load.Snapshot
}

// NewMachine boots machine id in the given zone and warms it to
// ready-to-serve. The load.Config is the machine's serving shape
// (heap, CPUs, worker pool, per-request work); its Scenario must be
// empty or prefork.
func NewMachine(id, zone int, cfg load.Config) (*Machine, error) {
	return NewMachineFrom(nil, id, zone, cfg)
}

// NewMachineFrom is NewMachine with a server-template cache: the
// machine is stamped from tc's frozen warmed server for cfg's shape
// (warmed on first use) instead of booting from scratch, so a
// cluster's scale-out host cost is O(live structures) per machine,
// not Θ(heap). A nil cache cold-boots, exactly like NewMachine. The
// machine's virtual-time behaviour — warm-up latency included — is
// identical either way.
func NewMachineFrom(tc *load.ServerTemplates, id, zone int, cfg load.Config) (*Machine, error) {
	srv, err := tc.Server(cfg)
	if err != nil {
		return nil, err
	}
	return &Machine{ID: id, Zone: zone, srv: srv}, nil
}

// Serve runs one batch of up to n requests under a virtual-time
// budget (0 = unbudgeted); see load.Server.ServeBatch.
func (m *Machine) Serve(n int, budgetNanos uint64) (load.Batch, error) {
	return m.srv.ServeBatch(n, budgetNanos)
}

// Sample exports the machine's live metrics.
func (m *Machine) Sample() MachineSample {
	return MachineSample{Machine: m.ID, Zone: m.Zone, Snapshot: m.srv.Sample()}
}

// WarmupNanos is the machine's boot-to-ready virtual time — the
// scale-out latency a cluster pays before this machine takes traffic.
func (m *Machine) WarmupNanos() uint64 { return m.srv.WarmupNanos() }

// WarmupPTECopies is the warm-up's page-table bill (Θ(heap) per pool
// worker under fork).
func (m *Machine) WarmupPTECopies() uint64 { return m.srv.WarmupPTECopies() }

// PeakRSSBytes is the machine's resident-memory high-water mark.
func (m *Machine) PeakRSSBytes() uint64 { return m.srv.PeakRSSBytes() }

// Elapsed is the machine's virtual clock (nanoseconds since boot).
func (m *Machine) Elapsed() uint64 { return m.srv.Elapsed() }

// Retire drains the machine — scale-down — and reports the resource
// books for the leak invariant. The machine cannot serve afterwards.
func (m *Machine) Retire() (load.DrainStats, error) { return m.srv.Drain() }
