package fleet

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/sim"
	"repro/sim/fault"
	"repro/sim/load"
)

// Scenario names a fleet-level workload shape — behaviour only a
// population of machines can express. The string form is the CLI name.
type Scenario string

// Fleet scenarios.
const (
	// Uniform runs N identical machines, each driving the configured
	// load scenario — the parallel substrate the sweep runs on.
	Uniform Scenario = "uniform"
	// RollingRestart is the deploy wave: every machine serves warm
	// traffic, is replaced by a freshly booted instance, repays its
	// warm-up tax (dirty the heap, pre-create the worker pool), and
	// serves again. Under fork each pool worker duplicates the
	// server's page tables — Θ(heap) per worker, paid machine by
	// machine across the wave — while spawn-based fleets re-warm at
	// a flat cost.
	RollingRestart Scenario = "rolling"
	// Rebalance is the deploy wave's migration-based alternative:
	// instead of killing each machine and re-paying the full warm-up
	// on its replacement, the machine's resident worker is
	// live-migrated to the fresh instance over the wire (load.Migrate:
	// iterative pre-copy, then stop-and-copy). The machine keeps
	// serving through the pre-copy rounds, so the wave's outage is
	// only the stop-and-copy downtime — Θ(dirty heap) for fork-family
	// strategies, ~flat for spawn and the builder. A worker the
	// checkpoint refuses to serialize (a vfork borrower) cannot be
	// migrated and falls back to the full rolling restart, tax and
	// all.
	Rebalance Scenario = "rebalance"
	// Heterogeneous mixes machine shapes: CPUs cycle 1/2/4/8 across
	// the fleet, with per-machine traffic scaled to the core count.
	Heterogeneous Scenario = "hetero"
	// Surge runs a baseline phase and then a traffic spike that
	// multiplies the request volume on every machine at once — and,
	// for the windowed loads (prefork, buildfarm), the in-flight
	// request window too.
	Surge Scenario = "surge"
	// Chaos is the fault-injection wave: every machine serves
	// prefork traffic while suffering injected ENOMEM pressure waves
	// and worker kill waves mid-traffic, under a fault schedule
	// derived deterministically from (FaultSeed, machine id). Lost
	// requests are counted, not fatal, and the aggregate report —
	// failures included — stays byte-stable at any host parallelism.
	Chaos Scenario = "chaos"
)

// Scenarios lists every fleet scenario, in a fixed order.
func Scenarios() []Scenario {
	return []Scenario{Uniform, RollingRestart, Rebalance, Heterogeneous, Surge, Chaos}
}

// ParseScenario maps a CLI name to its Scenario.
func ParseScenario(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if name == string(s) {
			return s, nil
		}
	}
	return "", fmt.Errorf("fleet: unknown scenario %q (uniform|rolling|rebalance|hetero|surge|chaos)", name)
}

// heteroLadder is the machine-shape cycle of the Heterogeneous
// scenario: machine i gets heteroLadder[i%4] CPUs.
var heteroLadder = []int{1, 2, 4, 8}

// Spec describes a fleet. The zero value of every field selects a
// sensible default; the fleet a Spec describes is deterministic — the
// same Spec always produces the same Result, regardless of host
// parallelism.
type Spec struct {
	// Machines is the fleet size (default 4).
	Machines int

	// Scenario is the fleet-level shape (default Uniform).
	Scenario Scenario

	// Load is the per-machine workload each serve phase drives
	// (default load.Prefork). RollingRestart always serves
	// prefork-style traffic; Load configures its warm phase.
	Load load.Scenario

	// Via is the process-creation strategy every machine uses.
	Via sim.Strategy

	// CPUs is the per-machine simulated CPU count (default 2).
	// Heterogeneous ignores it and cycles 1/2/4/8.
	CPUs int

	// Requests is the per-machine request count per serve phase
	// (default 24). Heterogeneous scales it by each machine's CPUs;
	// Surge multiplies it by SurgeFactor in the spike phase.
	Requests int

	// HeapBytes is each machine's resident server heap (default
	// 64 MiB) — the quantity fork must duplicate page tables for.
	HeapBytes uint64

	// Workers is the warm worker pool a RollingRestart machine
	// pre-creates after its restart (default 2x the machine's CPUs)
	// — the prefork tax each replacement instance repays before
	// serving.
	Workers int

	// SurgeFactor multiplies the in-flight window and request volume
	// during Surge's spike phase (default 4).
	SurgeFactor int

	// FaultSeed seeds the Chaos scenario's fault schedules (default
	// 1). Each machine's schedule is fault.Chaos(FaultSeed, id): a
	// pure function, so the same seed replays the same waves on
	// every run at any host parallelism.
	FaultSeed uint64

	// Parallelism bounds the host worker pool that multiplexes the
	// fleet's machines across host goroutines (default and ceiling:
	// GOMAXPROCS). It affects host wall-clock time only, never the
	// Result: machines are independent simulations merged in
	// machine-id order.
	Parallelism int

	// Shards fans the fleet's machine-id ranges across that many
	// worker OS processes (os/exec re-invocations of this binary; the
	// host program must call MaybeShardWorker early in main). Each
	// worker streams its contiguous id range and emits a partial
	// aggregate; the parent merges partials in shard order, which is
	// id order, so the Result is byte-identical to an unsharded run.
	// 0 or 1 runs in-process. Host-side only, like Parallelism.
	Shards int

	// KeepPerMachine retains the per-machine metrics breakdown on
	// Result.Machines. Off by default: the streaming aggregation path
	// folds each finished machine into the Aggregate and drops it, so
	// a 100k-machine fleet runs in constant report memory.
	KeepPerMachine bool

	// ColdBoot disables the per-shape template cache: every machine
	// boots and warms from scratch instead of being stamped from a
	// frozen warmed template. Like Parallelism it affects host cost
	// only, never the Result — a stamped machine is logically the
	// warmed machine itself. The CI clone-equivalence gate runs the
	// same Spec both ways and byte-compares the reports.
	ColdBoot bool
}

// withDefaults resolves every zero field.
func (s Spec) withDefaults() Spec {
	if s.Machines == 0 {
		s.Machines = 4
	}
	if s.Scenario == "" {
		s.Scenario = Uniform
	}
	if s.Load == "" {
		s.Load = load.Prefork
	}
	if s.CPUs == 0 {
		s.CPUs = 2
	}
	if s.Requests == 0 {
		s.Requests = 24
	}
	if s.HeapBytes == 0 {
		s.HeapBytes = 64 << 20
	}
	// Workers defaults per machine (2x that machine's CPUs), so the
	// heterogeneous ladder can scale each pool: see Spec.machine.
	if s.SurgeFactor == 0 {
		s.SurgeFactor = 4
	}
	if s.FaultSeed == 0 {
		s.FaultSeed = 1
	}
	return s
}

// SpecError is a typed validation failure: which Spec field is wrong
// and why. Callers that build specs programmatically (sim/cluster, the
// CLI) can branch on Field instead of parsing messages.
type SpecError struct {
	// Spec names the offending spec type ("fleet.Spec"; sim/cluster
	// reuses the type with its own names).
	Spec string
	// Field is the offending field, dotted for nested specs
	// ("Pools[web].MinMachines").
	Field string
	// Reason says what about the value is unacceptable.
	Reason string
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("%s: invalid %s: %s", e.Spec, e.Field, e.Reason)
}

// specErr builds a fleet.Spec validation failure.
func specErr(field, format string, args ...any) *SpecError {
	return &SpecError{Spec: "fleet.Spec", Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Validate reports whether the spec, after defaulting, is one Run can
// honour. Every failure is a *SpecError. The zero Spec is valid (all
// defaults).
func (s Spec) Validate() error {
	return s.withDefaults().validate()
}

// validate rejects specs the runner cannot honour. Called after
// withDefaults, so zero fields have already been resolved; what it
// sees wrong, the caller wrote wrong.
func (s Spec) validate() error {
	if s.Machines < 1 || s.Machines > 1<<20 {
		return specErr("Machines", "%d machines (want 1..1048576)", s.Machines)
	}
	if s.Shards < 0 || s.Shards > 256 {
		return specErr("Shards", "%d shards (want 0..256)", s.Shards)
	}
	if s.CPUs < 1 || s.CPUs > 64 {
		return specErr("CPUs", "%d CPUs per machine (want 1..64)", s.CPUs)
	}
	if s.Requests < 1 {
		return specErr("Requests", "%d requests (want >= 1)", s.Requests)
	}
	if s.Workers < 0 {
		return specErr("Workers", "%d pool workers (want >= 0; 0 selects the default)", s.Workers)
	}
	if s.SurgeFactor < 1 {
		return specErr("SurgeFactor", "surge factor %d (want >= 1)", s.SurgeFactor)
	}
	if s.Scenario == RollingRestart && s.Load.Distributed() {
		// The rolling wave restarts a single machine and serves
		// prefork traffic through it; a distributed cell restarts
		// its backend inside the load itself (load.NetLB).
		return specErr("Load", "rolling restart requires a single-machine load (got %s)", s.Load)
	}
	if s.Scenario == Rebalance && (s.Load.Distributed() || s.Load == load.Migrate) {
		// The rebalance wave migrates each machine's resident worker
		// through its own two-machine cell; the serve phases need a
		// single-machine load around it.
		return specErr("Load", "rebalance requires a single-machine load (got %s)", s.Load)
	}
	if s.Scenario == Chaos && s.Load != load.Prefork && !s.Load.Distributed() {
		// Chaos needs a failure-tolerant driver; anything else
		// would silently serve different traffic than the report
		// claims.
		return specErr("Load", "chaos requires a failure-tolerant load: prefork, netlb, or kvshard (got %s)", s.Load)
	}
	if _, err := load.ParseScenario(string(s.Load)); err != nil {
		return specErr("Load", "unknown load scenario %q", s.Load)
	}
	if _, err := ParseScenario(string(s.Scenario)); err != nil {
		return specErr("Scenario", "unknown fleet scenario %q", s.Scenario)
	}
	return nil
}

// machineSpec is the deterministic per-machine derivation of a fleet
// Spec: machine id fixes shape and scale, nothing else does.
type machineSpec struct {
	ID        int
	CPUs      int
	Via       sim.Strategy
	Load      load.Scenario
	Requests  int
	HeapBytes uint64
	Workers   int
}

// machine derives machine id's configuration from the spec.
func (s Spec) machine(id int) machineSpec {
	cpus := s.CPUs
	requests := s.Requests
	if s.Scenario == Heterogeneous {
		cpus = heteroLadder[id%len(heteroLadder)]
		// A bigger machine takes a proportionally bigger share of
		// the fleet's traffic.
		requests = s.Requests * cpus
	}
	workers := s.Workers
	if workers == 0 {
		workers = 2 * cpus
	}
	return machineSpec{
		ID:        id,
		CPUs:      cpus,
		Via:       s.Via,
		Load:      s.Load,
		Requests:  requests,
		HeapBytes: s.HeapBytes,
		Workers:   workers,
	}
}

// loadConfig is the machine's serve-phase workload.
func (ms machineSpec) loadConfig() load.Config {
	return load.Config{
		Scenario:  ms.Load,
		Via:       ms.Via,
		CPUs:      ms.CPUs,
		Requests:  ms.Requests,
		HeapBytes: ms.HeapBytes,
	}
}

// baseWindow is the load scenario's steady-state in-flight window —
// what Surge's spike multiplies. Zero for the loads without a window
// knob (their surge scales volume only).
func (ms machineSpec) baseWindow() int {
	return load.DefaultWindow(ms.Load, ms.CPUs)
}

// MachineMetrics is one machine's deterministic contribution to the
// fleet result: its resolved shape, every measured phase, and — for
// RollingRestart — the virtual time its replacement instance spent
// re-warming before it could serve.
type MachineMetrics struct {
	Machine  int    `json:"machine"`
	CPUs     int    `json:"cpus"`
	Strategy string `json:"strategy"`

	// Phases are the machine's measured serve phases in order:
	// one for Uniform/Heterogeneous, warm+restarted for
	// RollingRestart, baseline+spike for Surge.
	Phases []*load.Metrics `json:"phases"`

	// RestartNanos is the replacement instance's warm-up tax
	// (RollingRestart only): virtual time to dirty the heap and
	// pre-create the worker pool on the freshly booted machine.
	RestartNanos uint64 `json:"restart_ns,omitempty"`

	// RestartPTECopies is the warm-up's page-table bill
	// (RollingRestart only): the PTE copies paid pre-creating the
	// worker pool — Θ(heap) per worker under fork, zero under spawn
	// and the builder. Counted here because the serve phase's meter
	// reset excludes it from Phases.
	RestartPTECopies uint64 `json:"restart_pte_copies,omitempty"`

	// MigrateNanos is the machine's stop-and-copy outage (Rebalance
	// only): the downtime of live-migrating its resident worker to
	// the replacement instance — Θ(dirty heap) under fork-family
	// strategies, ~flat under spawn and the builder. The pre-copy
	// rounds happen while the machine still serves, so they are not
	// outage and are not counted here.
	MigrateNanos uint64 `json:"migrate_ns,omitempty"`

	// MigratePagesSent is the 4 KiB pages the machine's migration
	// shipped over the wire, pre-copy rounds and residue included
	// (Rebalance only).
	MigratePagesSent uint64 `json:"migrate_pages_sent,omitempty"`

	// MigrateRefused is 1 when the machine's resident worker could
	// not be serialized (a vfork borrower) and the machine fell back
	// to a full rolling restart — RestartNanos then carries the
	// re-warm tax it paid instead.
	MigrateRefused uint64 `json:"migrate_refused,omitempty"`

	// RequestsPerVSec is the machine's overall throughput across its
	// phases (restart time included for RollingRestart, migration
	// downtime for Rebalance).
	RequestsPerVSec float64 `json:"requests_per_vsec"`
}

// Aggregate is the fleet-wide rollup, merged in machine-id order so it
// is byte-identical regardless of host parallelism. Rates sum across
// machines (they are concurrent hosts); virtual times report both the
// makespan (slowest machine) and the fleet total (machine-seconds).
type Aggregate struct {
	Machines       int    `json:"machines"`
	TotalRequests  uint64 `json:"total_requests"`
	TotalCreations uint64 `json:"total_creations"`

	// FailedRequests and OOMKills total the fleet's chaos losses:
	// requests lost to injected faults and workers the OOM killer
	// reaped (zero outside the Chaos scenario).
	FailedRequests uint64 `json:"failed_requests,omitempty"`
	OOMKills       uint64 `json:"oom_kills,omitempty"`

	// RequestsPerVSec is fleet throughput: the sum of every
	// machine's requests-per-virtual-second.
	RequestsPerVSec float64 `json:"requests_per_vsec"`

	// MaxVirtualNanos is the makespan — the virtual time of the
	// slowest machine; TotalVirtualNanos is the fleet's summed
	// machine time.
	MaxVirtualNanos   uint64 `json:"max_virtual_ns"`
	TotalVirtualNanos uint64 `json:"total_virtual_ns"`

	// FleetPeakRSSBytes sums each machine's peak resident set — the
	// fleet's worst-case simultaneous memory footprint.
	FleetPeakRSSBytes uint64 `json:"fleet_peak_rss_bytes"`

	// Cost-meter totals across every machine and phase. PageCopies
	// is the fleet COW tax; TLBShootdowns the fleet's remote-CPU
	// IPIs — §5's fork costs at datacenter scale. PTECopies includes
	// the rolling wave's pool-creation bill (RestartPTECopies).
	PageFaults      uint64 `json:"page_faults"`
	PageCopies      uint64 `json:"page_copies"`
	PageZeroes      uint64 `json:"page_zeroes"`
	PTECopies       uint64 `json:"pte_copies"`
	TLBShootdowns   uint64 `json:"tlb_shootdowns"`
	ContextSwitches uint64 `json:"context_switches"`
	Syscalls        uint64 `json:"syscalls"`
	Instructions    uint64 `json:"instructions"`

	// RestartNanos totals the fleet's re-warm tax across the rolling
	// wave; MaxRestartNanos is the worst single machine.
	RestartNanos    uint64 `json:"restart_ns,omitempty"`
	MaxRestartNanos uint64 `json:"max_restart_ns,omitempty"`

	// MigrateDowntimeNanos totals the rebalance wave's stop-and-copy
	// outage; MaxMigrateNanos is the worst single machine,
	// MigratePagesSent the pages the wave shipped, and
	// MigrateRefusals the machines whose resident worker could not be
	// serialized and fell back to a full restart.
	MigrateDowntimeNanos uint64 `json:"migrate_downtime_ns,omitempty"`
	MaxMigrateNanos      uint64 `json:"max_migrate_ns,omitempty"`
	MigratePagesSent     uint64 `json:"migrate_pages_sent,omitempty"`
	MigrateRefusals      uint64 `json:"migrate_refused,omitempty"`
}

// Result is one fleet run. Everything serialized by JSON is a pure
// function of the Spec; the host-side fields (wall clock, worker and
// shard counts, peak RSS) are reported separately and never
// marshalled, so the emitted report is byte-stable across hosts,
// GOMAXPROCS settings, and shard counts.
type Result struct {
	Scenario  string `json:"scenario"`
	Load      string `json:"load"`
	Strategy  string `json:"strategy"`
	HeapBytes uint64 `json:"heap_bytes"`

	// Machines is the per-machine breakdown, populated only when
	// Spec.KeepPerMachine asks for it — the streaming aggregation
	// path otherwise folds each machine into Aggregate and drops it.
	Machines  []MachineMetrics `json:"machines,omitempty"`
	Aggregate Aggregate        `json:"aggregate"`

	// Host-side measurements, deliberately excluded from JSON: the
	// wall-clock the run took, the host goroutines per process, the
	// worker processes, and the host peak RSS (worst process for a
	// sharded run).
	HostElapsed      time.Duration `json:"-"`
	HostWorkers      int           `json:"-"`
	HostShards       int           `json:"-"`
	HostPeakRSSBytes uint64        `json:"-"`
}

// result builds the Result shell every path (in-process or sharded)
// fills in.
func (s Spec) result() *Result {
	return &Result{
		Scenario:  string(s.Scenario),
		Load:      string(s.Load),
		Strategy:  s.Via.String(),
		HeapBytes: s.HeapBytes,
	}
}

// Run executes the fleet: every machine is an independent,
// deterministic sim.System driven to completion on a host worker pool
// bounded by GOMAXPROCS (or Spec.Parallelism if lower) — and, with
// Spec.Shards > 1, fanned across worker OS processes — with results
// merged in machine-id order. Finished machines stream into a
// constant-memory aggregate as they complete; the Result's JSON is
// byte-identical at any host parallelism and shard count.
func Run(spec Spec) (*Result, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if spec.Shards > 1 {
		return runSharded(spec)
	}
	workers := poolSize(spec.Parallelism, spec.Machines)
	start := time.Now()
	m, err := runRange(spec, 0, spec.Machines, workers)
	if err != nil {
		return nil, err
	}
	res := spec.result()
	res.Machines = m.keep
	res.Aggregate = m.agg.aggregate()
	res.HostElapsed = time.Since(start)
	res.HostWorkers = workers
	res.HostShards = 1
	res.HostPeakRSSBytes = HostPeakRSS()
	return res, nil
}

// runRange streams machines [lo, hi) through the worker pool into a
// machine-id-ordered merger — the common core of the in-process run
// and each shard worker.
func runRange(spec Spec, lo, hi, workers int) (*merger, error) {
	tpls := newTemplates(spec.ColdBoot)
	m := newMerger(lo, hi-lo, spec.KeepPerMachine)
	err := forEach(workers, hi-lo, func(i int) error {
		mm, _, err := runMachine(spec, lo+i, tpls)
		if err != nil {
			return fmt.Errorf("fleet: machine %d: %w", lo+i, err)
		}
		m.add(lo+i, mm)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// runMachine executes machine id's phases, stamping each phase's
// machine from tpls (nil = cold boots). The returned debug state
// carries the rolling runner's leak-check counters for the tests.
func runMachine(spec Spec, id int, tpls *templates) (*MachineMetrics, *restartDebug, error) {
	ms := spec.machine(id)
	mm := &MachineMetrics{Machine: ms.ID, CPUs: ms.CPUs, Strategy: ms.Via.String()}
	var dbg *restartDebug
	switch spec.Scenario {
	case RollingRestart:
		warm, err := tpls.run(ms.loadConfig())
		if err != nil {
			return nil, nil, fmt.Errorf("warm phase: %w", err)
		}
		rr, d, err := runRestartedMachine(ms, tpls)
		if err != nil {
			return nil, nil, fmt.Errorf("restart phase: %w", err)
		}
		mm.Phases = []*load.Metrics{warm, rr.Serve}
		mm.RestartNanos = rr.RestartNanos
		mm.RestartPTECopies = rr.RestartPTECopies
		dbg = d
	case Rebalance:
		warm, err := tpls.run(ms.loadConfig())
		if err != nil {
			return nil, nil, fmt.Errorf("warm phase: %w", err)
		}
		d, err := runRebalancedMachine(ms, tpls, mm, warm)
		if err != nil {
			return nil, nil, fmt.Errorf("rebalance phase: %w", err)
		}
		dbg = d
	case Chaos:
		// Chaos serves failure-tolerant traffic (validate pinned
		// Spec.Load) under this machine's derived wave schedule. The
		// template is warmed clean; the schedule installs on the
		// stamped clone after warm-up, exactly as the cold path
		// installs it after Prepare. A distributed load's schedule
		// targets the cell's wire (drop waves at the net fault
		// points) instead of the machines' memory paths.
		cfg := ms.loadConfig()
		if ms.Load.Distributed() {
			cfg.Faults = fault.NetChaos(spec.FaultSeed, ms.ID)
		} else {
			cfg.Faults = fault.Chaos(spec.FaultSeed, ms.ID)
		}
		m, err := tpls.run(cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("chaos phase: %w", err)
		}
		mm.Phases = []*load.Metrics{m}
	case Surge:
		base, err := tpls.run(ms.loadConfig())
		if err != nil {
			return nil, nil, fmt.Errorf("baseline phase: %w", err)
		}
		spike := ms.loadConfig()
		spike.Requests = ms.Requests * spec.SurgeFactor
		spike.Window = ms.baseWindow() * spec.SurgeFactor
		surge, err := tpls.run(spike)
		if err != nil {
			return nil, nil, fmt.Errorf("surge phase: %w", err)
		}
		mm.Phases = []*load.Metrics{base, surge}
	default: // Uniform, Heterogeneous
		m, err := tpls.run(ms.loadConfig())
		if err != nil {
			return nil, nil, err
		}
		mm.Phases = []*load.Metrics{m}
	}

	var requests, nanos uint64
	for _, p := range mm.Phases {
		requests += p.Requests
		nanos += p.VirtualNanos
	}
	nanos += mm.RestartNanos + mm.MigrateNanos
	if nanos > 0 {
		mm.RequestsPerVSec = float64(requests) * 1e9 / float64(nanos)
	}
	return mm, dbg, nil
}

// JSON renders the result as the byte-stable fleet report: same Spec,
// same bytes, at any GOMAXPROCS.
func (r *Result) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Render formats the aggregate and the per-machine breakdown for the
// CLI. Deterministic: host wall-clock is reported separately.
func (r *Result) Render() string {
	var b strings.Builder
	a := r.Aggregate
	fmt.Fprintf(&b, "fleet %s: %d machines via %s (load %s, heap %s)\n",
		r.Scenario, a.Machines, r.Strategy, r.Load, load.HumanBytes(r.HeapBytes))
	row := func(k, v string) { fmt.Fprintf(&b, "  %-18s %s\n", k, v) }
	row("requests", fmt.Sprintf("%d (%.0f/virt-s fleet-wide)", a.TotalRequests, a.RequestsPerVSec))
	if a.FailedRequests > 0 || r.Scenario == string(Chaos) {
		row("failed", fmt.Sprintf("%d (injected faults; %d oom-killed)", a.FailedRequests, a.OOMKills))
	}
	row("creations", fmt.Sprint(a.TotalCreations))
	row("makespan", fmt.Sprintf("%.3fms (fleet total %.3fms)",
		float64(a.MaxVirtualNanos)/1e6, float64(a.TotalVirtualNanos)/1e6))
	row("fleet peak RSS", load.HumanBytes(a.FleetPeakRSSBytes))
	row("page copies", fmt.Sprintf("%d (COW tax)", a.PageCopies))
	row("PTE copies", fmt.Sprint(a.PTECopies))
	row("TLB shootdowns", fmt.Sprintf("%d (SMP fork tax)", a.TLBShootdowns))
	if a.RestartNanos > 0 || r.Scenario == string(RollingRestart) {
		row("restart tax", fmt.Sprintf("%.3fms total, %.3fms worst machine",
			float64(a.RestartNanos)/1e6, float64(a.MaxRestartNanos)/1e6))
	}
	if a.MigrateDowntimeNanos > 0 || r.Scenario == string(Rebalance) {
		row("migration outage", fmt.Sprintf("%.3fms total, %.3fms worst machine",
			float64(a.MigrateDowntimeNanos)/1e6, float64(a.MaxMigrateNanos)/1e6))
		row("pages shipped", fmt.Sprintf("%d (%d machines fell back to restart)",
			a.MigratePagesSent, a.MigrateRefusals))
	}
	if len(r.Machines) == 0 {
		fmt.Fprintf(&b, "  machine breakdown: omitted (Spec.KeepPerMachine / forkbench fleet -permachine)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  machine breakdown:\n")
	fmt.Fprintf(&b, "    %-4s %-5s %-10s %-12s %-10s %-10s %-8s\n",
		"id", "cpus", "req/virt-s", "virtual", "peak RSS", "COW", "IPIs")
	for _, mm := range r.Machines {
		var nanos, peak, cow, ipis uint64
		for _, p := range mm.Phases {
			nanos += p.VirtualNanos
			if p.PeakRSSBytes > peak {
				peak = p.PeakRSSBytes
			}
			cow += p.PageCopies
			ipis += p.TLBShootdowns
		}
		nanos += mm.RestartNanos
		fmt.Fprintf(&b, "    %-4d %-5d %-10.0f %-12s %-10s %-10d %-8d\n",
			mm.Machine, mm.CPUs, mm.RequestsPerVSec,
			fmt.Sprintf("%.3fms", float64(nanos)/1e6),
			load.HumanBytes(peak), cow, ipis)
	}
	return b.String()
}

// RunAll runs every config on a host worker pool bounded by GOMAXPROCS
// (or parallelism if lower), returning metrics in input order — the
// primitive `forkbench load -sweep` and the experiment tables fan out
// on. Each config is an independent machine, warmed once per distinct
// machine shape and stamped per run (see load.Templates); results are
// position-merged, so the output is identical to running the configs
// serially through load.Run.
func RunAll(parallelism int, cfgs []load.Config) ([]*load.Metrics, error) {
	tc := load.NewTemplates()
	ms := make([]*load.Metrics, len(cfgs))
	err := forEach(poolSize(parallelism, len(cfgs)), len(cfgs), func(i int) error {
		m, err := tc.Run(cfgs[i])
		if err != nil {
			return err
		}
		ms[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ms, nil
}

// PoolSize reports the host worker count a fleet of n machines would
// use at the given requested parallelism: min(GOMAXPROCS, requested,
// n), and at least 1.
func PoolSize(parallelism, n int) int { return poolSize(parallelism, n) }

func poolSize(parallelism, n int) int {
	workers := runtime.GOMAXPROCS(0)
	if parallelism > 0 && parallelism < workers {
		workers = parallelism
	}
	if n > 0 && workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach runs f(0..n-1) on a pool of host goroutines — the fleet's
// deterministic parallel-for, exported for sim/cluster's reconcile
// loop (each step serves every live machine host-parallel, then merges
// in machine-id order). Indices are claimed in increasing order; after
// a failure no new indices start and the lowest failing index's error
// is returned, so the outcome is identical at any worker count.
func ForEach(workers, n int, f func(i int) error) error {
	return forEach(workers, n, f)
}

// forEach runs f(0..n-1) on a pool of host goroutines. Once any index
// fails, no *new* indices are claimed (in-flight ones finish), and the
// error for the lowest index wins. That stays deterministic at every
// worker count: indices are claimed in increasing order, so every
// index below the first failure has already been claimed and run, and
// the lowest failing index is therefore always observed.
func forEach(workers, n int, f func(i int) error) error {
	if n == 0 {
		return nil
	}
	errs := make([]error, n)
	next := int64(-1)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if errs[i] = f(i); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
