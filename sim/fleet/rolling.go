package fleet

import (
	"repro/sim"
	"repro/sim/load"
)

// restartDebug carries the replacement machine's resource counters for
// the leak-invariant tests: after the pool is torn down, process and
// frame counts must be exactly back at the post-warm-up baseline.
type restartDebug struct {
	BaseProcs, EndProcs int
	BasePages, EndPages uint64
}

// restartResult is the replacement instance's measured outcome: the
// serve-phase metrics, the warm-up time, and the warm-up's page-table
// bill (the pool workers' Θ(heap) duplication under fork), which the
// serve-phase meter reset would otherwise discard.
type restartResult struct {
	Serve            *load.Metrics
	RestartNanos     uint64
	RestartPTECopies uint64
}

// runRestartedMachine is the second half of a rolling restart: the
// machine's replacement instance. It boots fresh, repays the warm-up
// tax — dirty the server heap (load.Prepare), pre-create the worker
// pool through the configured strategy — and only then serves its
// share of traffic (load.Prepared.Run, so the serve phase is bookkept
// identically to the warm phase's load.Run). Under fork every pool
// worker duplicates the freshly dirtied heap's page tables (Θ(heap)
// each); under spawn or the builder the pool comes up at a flat cost.
// The returned restart tax is the virtual time from boot to
// ready-to-serve. The boot itself is stamped from tpls' boot-only
// template (nil = cold boot); the warm-up is NOT stamped — repaying
// it inside measured virtual time is the whole point of the wave.
func runRestartedMachine(ms machineSpec, tpls *templates) (*restartResult, *restartDebug, error) {
	cfg := ms.loadConfig()
	cfg.Scenario = load.Prefork // the wave serves prefork-style traffic
	// Size RAM once and pin it in the config, so the booted machine
	// and the RAMBytes the serve metrics report cannot diverge.
	cfg.RAMBytes = 4 * ms.HeapBytes
	if cfg.RAMBytes < 1<<30 {
		cfg.RAMBytes = 1 << 30
	}
	sys, bootTpl, err := tpls.bootSystem(ms.CPUs, cfg.RAMBytes)
	if err != nil {
		return nil, nil, err
	}
	k := sys.Kernel()

	// Re-warm: the replacement instance rebuilds the resident state
	// the killed machine had for free — the dirty heap, then the
	// pre-created (parked) worker pool awaiting connections.
	t0 := k.Elapsed()
	prep, err := load.Prepare(sys, cfg)
	if err != nil {
		return nil, nil, err
	}
	dbg := &restartDebug{BaseProcs: k.ProcessCount(), BasePages: k.Phys().AllocatedPages()}
	pool := make([]*sim.Process, 0, ms.Workers)
	teardown := func() {
		for _, p := range pool {
			p.Destroy()
		}
		dbg.EndProcs = k.ProcessCount()
		dbg.EndPages = k.Phys().AllocatedPages()
	}
	pteBase := k.Meter().PTECopies
	for i := 0; i < ms.Workers; i++ {
		p, err := sys.Command("true").Via(ms.Via).Create()
		if err != nil {
			teardown()
			return nil, nil, err
		}
		pool = append(pool, p)
	}
	res := &restartResult{
		RestartNanos:     uint64(k.Elapsed() - t0),
		RestartPTECopies: k.Meter().PTECopies - pteBase,
	}

	// Ready to serve. The pool stays resident through the serve
	// phase, so its footprint is in the measured peak RSS. (Run
	// zeroes the meter first: the pool's creation bill is recorded
	// above, not in the serve-phase counters.)
	if res.Serve, err = prep.Run(); err != nil {
		teardown()
		return nil, nil, err
	}

	// The wave moves on: this instance's pool is torn down by the
	// *next* restart in a real deploy; here it closes the books so
	// the leak invariant can be checked, then the machine's
	// allocations are recycled into the boot template's next stamp
	// (host-side only; bootTpl is nil on the cold path).
	teardown()
	if bootTpl != nil {
		bootTpl.Release(sys)
	}
	return res, dbg, nil
}
