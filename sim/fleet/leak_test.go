package fleet

import (
	"fmt"
	"testing"

	"repro/sim"
	"repro/sim/load"
)

// TestRollingRestartLeaksNothing is the fleet leak invariant: after a
// rolling restart — warm pool created through any strategy, traffic
// served, pool torn down — every machine's process and physical-frame
// counts must be exactly back at the post-warm-up baseline. A fleet
// that leaks a page per restart wave loses a machine's worth of RAM
// over enough deploys.
func TestRollingRestartLeaksNothing(t *testing.T) {
	for _, via := range append(sim.Strategies(), sim.EagerForkExec) {
		via := via
		t.Run(via.String(), func(t *testing.T) {
			spec := Spec{
				Machines:  3,
				Scenario:  RollingRestart,
				Via:       via,
				Requests:  4,
				HeapBytes: 8 << 20,
			}.withDefaults()
			tpls := newTemplates(false)
			for id := 0; id < spec.Machines; id++ {
				_, dbg, err := runMachine(spec, id, tpls)
				if err != nil {
					t.Fatalf("machine %d: %v", id, err)
				}
				if dbg == nil {
					t.Fatalf("machine %d: rolling runner returned no debug state", id)
				}
				if dbg.EndProcs != dbg.BaseProcs || dbg.EndPages != dbg.BasePages {
					t.Errorf("machine %d leaked: procs %d -> %d, pages %d -> %d",
						id, dbg.BaseProcs, dbg.EndProcs, dbg.BasePages, dbg.EndPages)
				}
			}
		})
	}
}

// TestMachineDerivationDeterministic pins the per-machine derivation:
// the same (spec, id) pair always resolves to the same machine, and
// the heterogeneous ladder cycles 1/2/4/8 with traffic scaled to the
// core count.
func TestMachineDerivationDeterministic(t *testing.T) {
	spec := Spec{Machines: 8, Scenario: Heterogeneous, Requests: 5}.withDefaults()
	for id := 0; id < spec.Machines; id++ {
		a, b := spec.machine(id), spec.machine(id)
		if a != b {
			t.Errorf("machine(%d) not deterministic: %+v vs %+v", id, a, b)
		}
		wantCPUs := heteroLadder[id%len(heteroLadder)]
		if a.CPUs != wantCPUs {
			t.Errorf("machine %d: %d CPUs, want %d", id, a.CPUs, wantCPUs)
		}
		if a.Requests != spec.Requests*wantCPUs {
			t.Errorf("machine %d: %d requests, want %d", id, a.Requests, spec.Requests*wantCPUs)
		}
	}
}

// TestSpecValidation pins the error paths.
func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Machines: -1},
		{Machines: 1<<20 + 1},
		{Shards: -1},
		{CPUs: 65},
		{CPUs: -2},
		{Requests: -4},
		{Workers: -3},
		{SurgeFactor: -1},
		{Scenario: "bogus"},
		{Load: "bogus"},
	}
	for _, spec := range bad {
		if _, err := Run(spec); err == nil {
			t.Errorf("Run(%+v) succeeded, want error", spec)
		}
	}
	if _, err := ParseScenario("bogus"); err == nil {
		t.Error("ParseScenario(bogus) succeeded")
	}
	for _, s := range Scenarios() {
		got, err := ParseScenario(string(s))
		if err != nil || got != s {
			t.Errorf("ParseScenario(%q) = %v, %v", s, got, err)
		}
	}
}

// TestRunAllMatchesSerial pins RunAll's contract: position-merged
// results identical to running each config serially, and the lowest
// failing index's error reported.
func TestRunAllMatchesSerial(t *testing.T) {
	cfgs := []load.Config{
		{Scenario: load.Prefork, Via: sim.ForkExec, Requests: 5, HeapBytes: 4 << 20},
		{Scenario: load.Prefork, Via: sim.Spawn, Requests: 5, HeapBytes: 4 << 20},
		{Scenario: load.ForkStorm, Via: sim.Spawn, Requests: 1, Workers: 8, HeapBytes: 4 << 20},
		{Scenario: load.Prefork, Via: sim.Builder, Requests: 3, HeapBytes: 4 << 20, CPUs: 2},
	}
	parallel, err := RunAll(8, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != len(cfgs) {
		t.Fatalf("%d results for %d configs", len(parallel), len(cfgs))
	}
	for i, cfg := range cfgs {
		serial, err := load.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%+v", parallel[i]) != fmt.Sprintf("%+v", serial) {
			t.Errorf("config %d: parallel result diverged from serial:\n%+v\nvs\n%+v", i, parallel[i], serial)
		}
	}

	// An invalid config in the middle: RunAll reports it, and the
	// error is the lowest failing index's regardless of host timing.
	broken := append([]load.Config{}, cfgs...)
	broken[1].Scenario = "bogus"
	if _, err := RunAll(8, broken); err == nil {
		t.Error("RunAll with a broken config succeeded")
	}
}

// TestAggregateMergesInMachineOrder checks the aggregate math on a
// hand-built fleet: sums, makespan, fleet peak RSS, and restart
// totals.
func TestAggregateMergesInMachineOrder(t *testing.T) {
	machines := []MachineMetrics{
		{
			Machine: 0, CPUs: 1,
			Phases: []*load.Metrics{
				{Requests: 10, Creations: 10, VirtualNanos: 100, PeakRSSBytes: 500, PageCopies: 3},
				{Requests: 5, Creations: 5, VirtualNanos: 50, PeakRSSBytes: 800, PageCopies: 1},
			},
			RestartNanos:    25,
			RequestsPerVSec: 2,
		},
		{
			Machine: 1, CPUs: 2,
			Phases: []*load.Metrics{
				{Requests: 20, Creations: 22, VirtualNanos: 300, PeakRSSBytes: 600, TLBShootdowns: 7},
			},
			RequestsPerVSec: 3,
		},
	}
	agg := aggregate(machines)
	if agg.Machines != 2 || agg.TotalRequests != 35 || agg.TotalCreations != 37 {
		t.Errorf("totals: %+v", agg)
	}
	if agg.MaxVirtualNanos != 300 || agg.TotalVirtualNanos != 475 {
		t.Errorf("virtual time: max %d total %d, want 300/475", agg.MaxVirtualNanos, agg.TotalVirtualNanos)
	}
	if agg.FleetPeakRSSBytes != 800+600 {
		t.Errorf("fleet peak RSS %d, want %d", agg.FleetPeakRSSBytes, 800+600)
	}
	if agg.PageCopies != 4 || agg.TLBShootdowns != 7 {
		t.Errorf("meter totals: %+v", agg)
	}
	if agg.RestartNanos != 25 || agg.MaxRestartNanos != 25 {
		t.Errorf("restart totals: %+v", agg)
	}
	if agg.RequestsPerVSec != 5 {
		t.Errorf("fleet rate %v, want 5", agg.RequestsPerVSec)
	}
}

// TestRollingRestartTax pins the scenario's claim: a fork-based
// machine's re-warm tax exceeds a spawn-based machine's, because every
// pool worker duplicates the freshly dirtied heap's page tables —
// visible both in virtual time and in the pool's PTE-copy bill.
func TestRollingRestartTax(t *testing.T) {
	run := func(via sim.Strategy) *MachineMetrics {
		spec := Spec{Machines: 1, Scenario: RollingRestart, Via: via,
			Requests: 4, HeapBytes: 32 << 20}.withDefaults()
		mm, _, err := runMachine(spec, 0, newTemplates(false))
		if err != nil {
			t.Fatal(err)
		}
		if mm.RestartNanos == 0 {
			t.Fatalf("%v: restart tax is zero", via)
		}
		return mm
	}
	fork, spawn := run(sim.ForkExec), run(sim.Spawn)
	if fork.RestartNanos <= spawn.RestartNanos {
		t.Errorf("fork restart tax (%d ns) should exceed spawn's (%d ns)", fork.RestartNanos, spawn.RestartNanos)
	}
	// The pool's page-table bill: 2*CPUs workers x 32MiB of PTEs
	// under fork, none under spawn.
	if wantPTEs := uint64(2*2) * (32 << 20) / 4096; fork.RestartPTECopies < wantPTEs {
		t.Errorf("fork pool PTE bill %d, want >= %d", fork.RestartPTECopies, wantPTEs)
	}
	if spawn.RestartPTECopies != 0 {
		t.Errorf("spawn pool paid %d PTE copies, want 0", spawn.RestartPTECopies)
	}
}
