package fleet

import (
	"sync"

	"repro/sim"
	"repro/sim/load"
)

// templates bundles one fleet run's template caches: warmed scenario
// machines per load.Shape, plus the rolling wave's boot-only images
// (a replacement instance re-pays its warm-up *inside* measured
// virtual time, so only its boot is stampable). A nil *templates cold
// boots everything — the ColdBoot escape hatch the CI equivalence
// gate compares against. Shared across the run's host workers; safe
// for concurrent use.
type templates struct {
	loads *load.Templates

	mu    sync.Mutex
	boots map[bootShape]*sim.Template
}

// bootShape keys a boot-only template: the machine shape a rolling
// replacement instance boots with (userland pinned to "true").
type bootShape struct {
	cpus int
	ram  uint64
}

// newTemplates returns the run's cache, or nil when cold boots were
// requested.
func newTemplates(coldBoot bool) *templates {
	if coldBoot {
		return nil
	}
	return &templates{loads: load.NewTemplates(), boots: map[bootShape]*sim.Template{}}
}

// run executes one load phase, stamped from the warm-shape cache (or
// cold via load.Run when t is nil).
func (t *templates) run(cfg load.Config) (*load.Metrics, error) {
	if t == nil {
		return load.Run(cfg)
	}
	return t.loads.Run(cfg)
}

// bootSystem returns a freshly booted (not warmed) machine for the
// rolling wave's replacement instance: stamped from a boot-only
// template, or cold-booted when t is nil. Identical to
// sim.NewSystem(WithRAM, WithCPUs, WithUserland("true")) in every
// virtual-time respect. The second return is the template the machine
// was stamped from (nil on the cold path) so the caller can Release
// the machine's allocations back into it when done.
func (t *templates) bootSystem(cpus int, ram uint64) (*sim.System, *sim.Template, error) {
	boot := func() (*sim.System, error) {
		return sim.NewSystem(
			sim.WithRAM(ram),
			sim.WithCPUs(cpus),
			sim.WithUserland("true"),
		)
	}
	if t == nil {
		sys, err := boot()
		return sys, nil, err
	}
	key := bootShape{cpus: cpus, ram: ram}
	t.mu.Lock()
	bt, ok := t.boots[key]
	if !ok {
		sys, err := boot()
		if err != nil {
			t.mu.Unlock()
			return nil, nil, err
		}
		if bt, err = sys.Snapshot(); err != nil {
			t.mu.Unlock()
			return nil, nil, err
		}
		t.boots[key] = bt
	}
	t.mu.Unlock()
	sys, err := bt.Clone()
	return sys, bt, err
}
