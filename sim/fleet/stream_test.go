package fleet

import (
	"bytes"
	"errors"
	"math"
	"runtime"
	"testing"

	"repro/sim"
)

// TestExactSumOrderIndependent: the exact accumulator's whole reason to
// exist. Plain float64 addition is not associative — summing these
// values serially vs in two groups drifts in the last ulp — but the
// exact sum must produce one correctly rounded total however the values
// are grouped, because the sharded fleet sums rates per shard and then
// merges.
func TestExactSumOrderIndependent(t *testing.T) {
	values := []float64{
		1e16, 1, -1e16, 0.1, 1e-30, 2.5e8, -0.1, 3.141592653589793,
		1e300, -1e300, 4.9e-324, 1e-12, 7.25, 1e9 / 3,
	}
	var serial exactSum
	for _, v := range values {
		serial.Add(v)
	}
	for split := 1; split < len(values); split++ {
		var lo, hi exactSum
		for _, v := range values[:split] {
			lo.Add(v)
		}
		for _, v := range values[split:] {
			hi.Add(v)
		}
		lo.Merge(&hi)
		if got, want := lo.Float64(), serial.Float64(); got != want {
			t.Errorf("split at %d: grouped sum %v != serial sum %v", split, got, want)
		}
	}
	// And the rounding is exact, not merely consistent: 1e16 + 1 - 1e16
	// is 0 in float64 folds (1e16+1 rounds back to 1e16) but the true
	// sum of the first three values is exactly 1.
	var s exactSum
	s.Add(1e16)
	s.Add(1)
	s.Add(-1e16)
	if got := s.Float64(); got != 1 {
		t.Errorf("exact sum of {1e16, 1, -1e16} = %v, want 1", got)
	}
	big, one := 1e16, 1.0 // variables: constant folding would sum exactly
	if naive := big + one - big; naive == 1 {
		t.Errorf("float64 fold gave %v; the test's premise is wrong", naive)
	}
}

// TestExactSumTextRoundTrip exercises the shard wire format: the
// accumulator must survive Text/SetText bit-exactly, including negative
// totals and subnormals.
func TestExactSumTextRoundTrip(t *testing.T) {
	for _, vals := range [][]float64{
		{},
		{0},
		{1.5, -2.25, 1e-310},
		{-math.MaxFloat64 / 4, 123456.789},
	} {
		var s exactSum
		for _, v := range vals {
			s.Add(v)
		}
		var back exactSum
		if err := back.SetText(s.Text()); err != nil {
			t.Fatalf("SetText(%q): %v", s.Text(), err)
		}
		if got, want := back.Float64(), s.Float64(); got != want {
			t.Errorf("round trip of %v: %v != %v", vals, got, want)
		}
	}
	var s exactSum
	if err := s.SetText("not hex"); err == nil {
		t.Error("SetText accepted garbage")
	}
}

// TestStreamingMatchesLegacyAggregate runs every fleet scenario with
// the per-machine breakdown retained — at GOMAXPROCS 1 and 8 — and
// checks that the streaming fold's Aggregate equals the legacy
// in-memory merge of the retained metrics, that the full JSON is
// byte-identical across the parallelism levels, and that dropping the
// breakdown (the default streaming path) changes nothing about the
// Aggregate.
func TestStreamingMatchesLegacyAggregate(t *testing.T) {
	specs := []Spec{
		{Machines: 6, Scenario: Uniform, Via: sim.ForkExec, Requests: 4, HeapBytes: 4 << 20},
		{Machines: 4, Scenario: RollingRestart, Via: sim.Spawn, Requests: 3, HeapBytes: 4 << 20},
		{Machines: 5, Scenario: Heterogeneous, Via: sim.ForkExec, Requests: 2, HeapBytes: 4 << 20},
		{Machines: 4, Scenario: Surge, Via: sim.Spawn, Requests: 3, HeapBytes: 4 << 20, SurgeFactor: 2},
		{Machines: 4, Scenario: Chaos, Via: sim.ForkExec, Requests: 6, HeapBytes: 4 << 20, FaultSeed: 3},
	}
	runAt := func(t *testing.T, spec Spec, gomaxprocs int) *Result {
		t.Helper()
		prev := runtime.GOMAXPROCS(gomaxprocs)
		defer runtime.GOMAXPROCS(prev)
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, spec := range specs {
		spec := spec
		t.Run(string(spec.Scenario), func(t *testing.T) {
			kept := spec
			kept.KeepPerMachine = true
			var prevJSON []byte
			for _, procs := range []int{1, 8} {
				res := runAt(t, kept, procs)
				if len(res.Machines) != spec.Machines {
					t.Fatalf("kept %d machines, want %d", len(res.Machines), spec.Machines)
				}
				for i, mm := range res.Machines {
					if mm.Machine != i {
						t.Fatalf("machine %d reported id %d: breakdown out of id order", i, mm.Machine)
					}
				}
				if legacy := aggregate(res.Machines); res.Aggregate != legacy {
					t.Errorf("GOMAXPROCS=%d: streaming aggregate differs from legacy merge:\nstream: %+v\nlegacy: %+v",
						procs, res.Aggregate, legacy)
				}
				data, err := res.JSON()
				if err != nil {
					t.Fatal(err)
				}
				if prevJSON != nil && !bytes.Equal(prevJSON, data) {
					t.Errorf("kept-breakdown report differs across GOMAXPROCS:\n1:\n%s\n%d:\n%s",
						prevJSON, procs, data)
				}
				prevJSON = data
				// The default (dropping) path must aggregate
				// identically at the same parallelism.
				dropped := runAt(t, spec, procs)
				if len(dropped.Machines) != 0 {
					t.Errorf("default run kept %d per-machine metrics", len(dropped.Machines))
				}
				if dropped.Aggregate != res.Aggregate {
					t.Errorf("GOMAXPROCS=%d: aggregate changed when the breakdown was dropped:\ndrop: %+v\nkeep: %+v",
						procs, dropped.Aggregate, res.Aggregate)
				}
			}
		})
	}
}

// TestMergerBuffersOutOfOrder feeds a merger its machines in the worst
// order (backwards) and checks the fold still happens in id order with
// a bounded pending buffer drained to empty.
func TestMergerBuffersOutOfOrder(t *testing.T) {
	const n = 9
	machines := make([]MachineMetrics, n)
	for i := range machines {
		machines[i] = MachineMetrics{
			Machine:         i,
			RequestsPerVSec: 1 / float64(i+1), // rounding-sensitive rates
		}
	}
	m := newMerger(0, n, true)
	for i := n - 1; i >= 0; i-- {
		m.add(i, &machines[i])
	}
	if len(m.pending) != 0 {
		t.Errorf("%d machines still pending after all were added", len(m.pending))
	}
	if got, want := m.agg.aggregate(), aggregate(machines); got != want {
		t.Errorf("out-of-order merge %+v != in-order merge %+v", got, want)
	}
	for i, mm := range m.keep {
		if mm.Machine != i {
			t.Fatalf("kept metrics out of order at %d: machine %d", i, mm.Machine)
		}
	}
}

// TestFleetMachineCap documents the raised fleet ceiling: the streaming
// path made 1<<20 machines representable, and the validator draws the
// line there.
func TestFleetMachineCap(t *testing.T) {
	if err := (Spec{Machines: 1 << 20, Requests: 1, HeapBytes: 1 << 20}).Validate(); err != nil {
		t.Errorf("1<<20 machines should validate: %v", err)
	}
	err := (Spec{Machines: 1<<20 + 1}).Validate()
	var se *SpecError
	if !errors.As(err, &se) || se.Field != "Machines" {
		t.Errorf("1<<20+1 machines: got %v, want SpecError on Machines", err)
	}
}
