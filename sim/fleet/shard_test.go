package fleet_test

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"repro/sim"
	"repro/sim/fleet"
	"repro/sim/load"
)

// TestMain makes this test binary usable as its own shard worker: a
// sharded fleet.Run re-executes os.Executable() — here, the test binary
// — and MaybeShardWorker diverts those re-executions into the worker
// loop before any test runs. Exactly what `forkbench` does on line one
// of main().
func TestMain(m *testing.M) {
	fleet.MaybeShardWorker()
	os.Exit(m.Run())
}

// runShardJSON runs the spec at a given shard count and returns the
// byte-stable report.
func runShardJSON(t *testing.T, spec fleet.Spec, shards int) []byte {
	t.Helper()
	spec.Shards = shards
	res, err := fleet.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if shards > 1 {
		if res.HostShards != shards {
			t.Errorf("ran on %d shards, want %d", res.HostShards, shards)
		}
		if res.HostPeakRSSBytes == 0 {
			t.Error("sharded run reported no peak RSS")
		}
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestShardedFleetMatchesUnsharded is the sharded half of the
// determinism gate: fanning a fleet's machine-id ranges across worker
// OS processes must leave the JSON report byte-identical — shard
// partials merge in shard order, which is id order, and the one float
// in the aggregate travels as an exact accumulator rather than a
// rounded double.
func TestShardedFleetMatchesUnsharded(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	specs := []fleet.Spec{
		{Machines: 6, Scenario: fleet.Uniform, Via: sim.ForkExec, Requests: 3, HeapBytes: 4 << 20},
		{Machines: 4, Scenario: fleet.RollingRestart, Via: sim.Spawn, Requests: 2, HeapBytes: 4 << 20},
		{Machines: 6, Scenario: fleet.Chaos, Via: sim.ForkExec, Requests: 6, HeapBytes: 4 << 20, FaultSeed: 7},
		// Per-machine breakdowns must survive the process boundary in
		// id order too.
		{Machines: 5, Scenario: fleet.Heterogeneous, Via: sim.Spawn, Requests: 2, HeapBytes: 4 << 20,
			KeepPerMachine: true},
		// A distributed cell per machine must survive the process
		// boundary too, wire chaos and all.
		{Machines: 4, Scenario: fleet.Chaos, Load: load.NetLB, Via: sim.ForkExec, Requests: 9, HeapBytes: 4 << 20,
			FaultSeed: 7},
		// The rebalance wave's migration cells and their aggregate
		// downtime fields must merge identically across shards.
		{Machines: 4, Scenario: fleet.Rebalance, Via: sim.ForkExec, Requests: 2, HeapBytes: 4 << 20},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(fmt.Sprintf("%s-%v", spec.Scenario, spec.Via), func(t *testing.T) {
			unsharded := runShardJSON(t, spec, 1)
			for _, shards := range []int{2, 4} {
				if sharded := runShardJSON(t, spec, shards); !bytes.Equal(unsharded, sharded) {
					t.Errorf("report differs between 1 and %d shards:\nunsharded:\n%s\nsharded:\n%s",
						shards, unsharded, sharded)
				}
			}
		})
	}
}

// TestShardsClampToMachines: more shards than machines degrades to one
// machine per worker, not empty workers or a changed report.
func TestShardsClampToMachines(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	spec := fleet.Spec{Machines: 2, Scenario: fleet.Uniform, Via: sim.Spawn, Requests: 2, HeapBytes: 4 << 20}
	unsharded := runShardJSON(t, spec, 1)
	spec.Shards = 8
	res, err := fleet.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.HostShards != 2 {
		t.Errorf("8 shards over 2 machines ran %d workers, want 2", res.HostShards)
	}
	sharded, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(unsharded, sharded) {
		t.Errorf("clamped sharded report differs:\nunsharded:\n%s\nsharded:\n%s", unsharded, sharded)
	}
}
