package fleet

import (
	"testing"

	"repro/sim"
)

// TestRebalanceOutage pins the rebalance wave's claim: live-migrating
// the resident worker costs only the stop-and-copy downtime, which
// under fork grows with the dirty heap it inherited and stays well
// under the full restart tax the rolling wave pays — and a spawned
// worker moves for almost nothing.
func TestRebalanceOutage(t *testing.T) {
	run := func(via sim.Strategy) *MachineMetrics {
		t.Helper()
		spec := Spec{Machines: 1, Scenario: Rebalance, Via: via,
			Requests: 4, HeapBytes: 32 << 20}.withDefaults()
		mm, _, err := runMachine(spec, 0, newTemplates(false))
		if err != nil {
			t.Fatal(err)
		}
		return mm
	}
	fork, spawn := run(sim.ForkExec), run(sim.Spawn)
	for _, mm := range []*MachineMetrics{fork, spawn} {
		if mm.MigrateRefused != 0 {
			t.Fatalf("%s: migration refused", mm.Strategy)
		}
		if mm.MigrateNanos == 0 || mm.MigratePagesSent == 0 {
			t.Fatalf("%s: migration was free (%dns, %d pages)",
				mm.Strategy, mm.MigrateNanos, mm.MigratePagesSent)
		}
		if mm.RestartNanos != 0 {
			t.Errorf("%s: rebalanced machine paid a restart tax (%dns)", mm.Strategy, mm.RestartNanos)
		}
		if len(mm.Phases) != 2 {
			t.Fatalf("%s: %d phases, want warm+serve", mm.Strategy, len(mm.Phases))
		}
	}
	if fork.MigrateNanos <= spawn.MigrateNanos {
		t.Errorf("fork outage %dns not above spawn's %dns; the inherited heap should cost",
			fork.MigrateNanos, spawn.MigrateNanos)
	}

	// The wave's pitch: migrating the fork worker beats restarting
	// the machine and re-warming from scratch.
	restartSpec := Spec{Machines: 1, Scenario: RollingRestart, Via: sim.ForkExec,
		Requests: 4, HeapBytes: 32 << 20}.withDefaults()
	restarted, _, err := runMachine(restartSpec, 0, newTemplates(false))
	if err != nil {
		t.Fatal(err)
	}
	if fork.MigrateNanos >= restarted.RestartNanos {
		t.Errorf("fork migration outage %dns not below the restart tax %dns",
			fork.MigrateNanos, restarted.RestartNanos)
	}
}

// TestRebalanceVforkFallsBack: a worker the checkpoint cannot
// serialize (a vfork borrower) pins its machine — the wave pays the
// full rolling restart for it and records the refusal.
func TestRebalanceVforkFallsBack(t *testing.T) {
	spec := Spec{Machines: 1, Scenario: Rebalance, Via: sim.VforkExec,
		Requests: 4, HeapBytes: 8 << 20}.withDefaults()
	mm, dbg, err := runMachine(spec, 0, newTemplates(false))
	if err != nil {
		t.Fatal(err)
	}
	if mm.MigrateRefused != 1 {
		t.Fatalf("refusals = %d, want 1", mm.MigrateRefused)
	}
	if mm.MigrateNanos != 0 || mm.MigratePagesSent != 0 {
		t.Errorf("refused migration still shipped: %dns, %d pages", mm.MigrateNanos, mm.MigratePagesSent)
	}
	if mm.RestartNanos == 0 {
		t.Error("fallback restart was free; the refusal must cost the full re-warm")
	}
	if dbg == nil {
		t.Fatal("fallback restart returned no leak-check state")
	}
	if dbg.EndProcs != dbg.BaseProcs || dbg.EndPages != dbg.BasePages {
		t.Errorf("fallback leaked: %+v", dbg)
	}
}

// TestRebalanceAggregates: the migrate fields survive the streaming
// fold and the rendered report names the outage.
func TestRebalanceAggregates(t *testing.T) {
	spec := Spec{Machines: 3, Scenario: Rebalance, Via: sim.ForkExec,
		Requests: 2, HeapBytes: 8 << 20, KeepPerMachine: true}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Aggregate
	if a.MigrateDowntimeNanos == 0 || a.MigratePagesSent == 0 {
		t.Fatalf("aggregate lost the migration: %+v", a)
	}
	var sum, max uint64
	for _, mm := range res.Machines {
		sum += mm.MigrateNanos
		if mm.MigrateNanos > max {
			max = mm.MigrateNanos
		}
	}
	if a.MigrateDowntimeNanos != sum || a.MaxMigrateNanos != max {
		t.Errorf("fold mismatch: total %d (want %d), max %d (want %d)",
			a.MigrateDowntimeNanos, sum, a.MaxMigrateNanos, max)
	}
	if a.MigrateRefusals != 0 {
		t.Errorf("refusals = %d, want 0", a.MigrateRefusals)
	}
}
