package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"
)

// shardEnv carries a shard worker's job (JSON shardJob) into the
// re-invoked binary. Its presence is what MaybeShardWorker keys on.
const shardEnv = "FORKBENCH_FLEET_SHARD"

// shardJob is the work order the parent hands each worker process:
// the (already defaulted) fleet spec plus the worker's contiguous
// machine-id range [Lo, Hi).
type shardJob struct {
	Spec Spec `json:"spec"`
	Lo   int  `json:"lo"`
	Hi   int  `json:"hi"`
}

// shardPartial is one worker's stdout: its id range's partial
// aggregate, the exact rate accumulator (hex big.Int — floats must not
// round-trip through a lossy sum), the kept per-machine metrics when
// requested, and the worker's own peak RSS (host-side, informational).
type shardPartial struct {
	Machines     []MachineMetrics `json:"machines,omitempty"`
	Aggregate    Aggregate        `json:"aggregate"`
	RateSum      string           `json:"rate_sum"`
	PeakRSSBytes uint64           `json:"peak_rss_bytes"`
}

// MaybeShardWorker turns the current process into a fleet shard worker
// when it was launched as one (the shard job environment variable is
// set): it runs its machine-id range, writes the partial aggregate to
// stdout, and exits. Host programs that expose Spec.Shards must call
// it at the top of main (and test binaries in TestMain), before flag
// parsing — a worker invocation carries the parent's command line,
// which is not meant to be re-parsed. Returns immediately in a normal
// process.
func MaybeShardWorker() {
	payload := os.Getenv(shardEnv)
	if payload == "" {
		return
	}
	os.Unsetenv(shardEnv)
	if err := runShardWorker(payload, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "fleet shard worker: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// runShardWorker executes one shard job and emits its shardPartial.
func runShardWorker(payload string, w io.Writer) error {
	var job shardJob
	if err := json.Unmarshal([]byte(payload), &job); err != nil {
		return fmt.Errorf("bad job: %w", err)
	}
	spec := job.Spec
	spec.Shards = 0 // a worker never re-shards
	if err := spec.validate(); err != nil {
		return err
	}
	if job.Lo < 0 || job.Hi <= job.Lo || job.Hi > spec.Machines {
		return fmt.Errorf("bad machine range [%d, %d) of %d", job.Lo, job.Hi, spec.Machines)
	}
	m, err := runRange(spec, job.Lo, job.Hi, poolSize(spec.Parallelism, job.Hi-job.Lo))
	if err != nil {
		return err
	}
	part := shardPartial{
		Machines:     m.keep,
		Aggregate:    m.agg.agg, // integer part only; the rate travels exactly
		RateSum:      m.agg.rate.Text(),
		PeakRSSBytes: HostPeakRSS(),
	}
	return json.NewEncoder(w).Encode(&part)
}

// runSharded fans the fleet's machine ids across Spec.Shards worker
// processes and merges their partials in shard order — which is
// machine-id order, since ranges are contiguous and ascending — so
// the Result is byte-identical to the in-process run. Worker stderr
// passes through; a failing shard fails the run (lowest shard wins,
// deterministically).
func runSharded(spec Spec) (*Result, error) {
	start := time.Now()
	shards := spec.Shards
	if shards > spec.Machines {
		shards = spec.Machines
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("fleet: shard re-exec: %w", err)
	}
	type shardOut struct {
		part shardPartial
		rss  uint64
		err  error
	}
	outs := make([]shardOut, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		lo, hi := i*spec.Machines/shards, (i+1)*spec.Machines/shards
		job := shardJob{Spec: spec, Lo: lo, Hi: hi}
		job.Spec.Shards = 0
		payload, err := json.Marshal(job)
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			var stdout bytes.Buffer
			cmd := exec.Command(exe)
			cmd.Env = append(os.Environ(), shardEnv+"="+string(payload))
			cmd.Stdout = &stdout
			cmd.Stderr = os.Stderr
			if err := cmd.Run(); err != nil {
				outs[i].err = fmt.Errorf("fleet: shard %d (machines %d..%d): %w", i, lo, hi-1, err)
				return
			}
			outs[i].rss = childPeakRSS(cmd)
			if err := json.Unmarshal(stdout.Bytes(), &outs[i].part); err != nil {
				outs[i].err = fmt.Errorf("fleet: shard %d partial: %w", i, err)
			}
		}()
	}
	wg.Wait()

	var agg aggregator
	var keep []MachineMetrics
	peak := HostPeakRSS() // the parent's own footprint
	for i := range outs {
		if outs[i].err != nil {
			return nil, outs[i].err
		}
		if err := agg.merge(&outs[i].part); err != nil {
			return nil, fmt.Errorf("fleet: shard %d partial: %w", i, err)
		}
		keep = append(keep, outs[i].part.Machines...)
		if r := outs[i].rss; r > peak {
			peak = r
		}
		if r := outs[i].part.PeakRSSBytes; r > peak {
			peak = r
		}
	}
	res := spec.result()
	res.Machines = keep
	res.Aggregate = agg.aggregate()
	res.HostElapsed = time.Since(start)
	res.HostWorkers = poolSize(spec.Parallelism, (spec.Machines+shards-1)/shards)
	res.HostShards = shards
	res.HostPeakRSSBytes = peak
	return res, nil
}
