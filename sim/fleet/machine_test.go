package fleet_test

import (
	"testing"

	"repro/sim"
	"repro/sim/fleet"
	"repro/sim/load"
)

// TestMachineLifecycle: an incrementally added machine boots, serves,
// exports identified samples, and retires with clean books — the
// add/remove primitive sim/cluster scales with.
func TestMachineLifecycle(t *testing.T) {
	m, err := fleet.NewMachine(7, 2, load.Config{
		Via: sim.Spawn, HeapBytes: 4 << 20, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.WarmupNanos() == 0 {
		t.Error("warm-up took no virtual time")
	}
	b, err := m.Serve(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Served != 6 || b.Failed != 0 {
		t.Errorf("served %d failed %d, want 6/0", b.Served, b.Failed)
	}
	s := m.Sample()
	if s.Machine != 7 || s.Zone != 2 {
		t.Errorf("sample identity %d/%d, want 7/2", s.Machine, s.Zone)
	}
	if s.Requests != 6 || s.RSSBytes == 0 {
		t.Errorf("sample state %+v, want 6 requests and live RSS", s.Snapshot)
	}
	d, err := m.Retire()
	if err != nil {
		t.Fatal(err)
	}
	if d.EndProcs != d.BaseProcs || d.EndPages != d.BasePages || d.EndCommit != d.BaseCommit {
		t.Errorf("retire leaked: %+v", d)
	}
	if _, err := m.Serve(1, 0); err == nil {
		t.Error("Serve after Retire did not error")
	}
}

// TestMachineWarmupScalesWithHeapUnderFork: the cluster premise at
// machine granularity — a fork machine's warm-up grows with the dirty
// heap, a spawn machine's stays flat.
func TestMachineWarmupScalesWithHeapUnderFork(t *testing.T) {
	warm := func(via sim.Strategy, heap uint64) uint64 {
		t.Helper()
		m, err := fleet.NewMachine(0, 0, load.Config{Via: via, HeapBytes: heap, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Retire()
		return m.WarmupNanos()
	}
	forkSmall, forkBig := warm(sim.ForkExec, 8<<20), warm(sim.ForkExec, 64<<20)
	if forkBig <= forkSmall {
		t.Errorf("fork warm-up flat across heap growth: %d vs %d", forkSmall, forkBig)
	}
	spawnSmall, spawnBig := warm(sim.Spawn, 8<<20), warm(sim.Spawn, 64<<20)
	// Spawn still dirties the bigger heap; only the pool-creation part
	// must stay flat. Compare the fork:spawn gap instead of absolutes.
	if forkBig-forkSmall <= spawnBig-spawnSmall {
		t.Errorf("heap growth cost fork %d vs spawn %d, want fork to pay more",
			forkBig-forkSmall, spawnBig-spawnSmall)
	}
}

// TestForEachDeterministicError: the exported parallel-for returns the
// lowest failing index's error at any worker count.
func TestForEachDeterministicError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		calls := make([]bool, 16)
		err := fleet.ForEach(workers, 16, func(i int) error {
			calls[i] = true
			if i == 5 || i == 11 {
				return &indexErr{i}
			}
			return nil
		})
		ie, ok := err.(*indexErr)
		if !ok || ie.i != 5 {
			t.Fatalf("workers=%d: err = %v, want index 5", workers, err)
		}
		for i := 0; i <= 5; i++ {
			if !calls[i] {
				t.Errorf("workers=%d: index %d never ran", workers, i)
			}
		}
	}
}

type indexErr struct{ i int }

func (e *indexErr) Error() string { return "fail" }
