package fleet

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/sim"
)

// TestShardWorkerRejectsBadJobs covers the worker side of the shard
// protocol without spawning processes: garbage payloads, invalid specs,
// and out-of-range machine windows must all fail before any machine
// boots.
func TestShardWorkerRejectsBadJobs(t *testing.T) {
	var out bytes.Buffer
	if err := runShardWorker("{not json", &out); err == nil {
		t.Error("worker accepted a garbage payload")
	}
	mustPayload := func(job shardJob) string {
		t.Helper()
		p, err := json.Marshal(job)
		if err != nil {
			t.Fatal(err)
		}
		return string(p)
	}
	spec := Spec{Machines: 4, Requests: 1, HeapBytes: 1 << 20}.withDefaults()
	for _, job := range []shardJob{
		{Spec: spec, Lo: -1, Hi: 2},
		{Spec: spec, Lo: 2, Hi: 2},
		{Spec: spec, Lo: 2, Hi: 9},
	} {
		if err := runShardWorker(mustPayload(job), &out); err == nil ||
			!strings.Contains(err.Error(), "bad machine range") {
			t.Errorf("range [%d, %d): got %v, want bad-machine-range error", job.Lo, job.Hi, err)
		}
	}
	bad := spec
	bad.CPUs = 99
	if err := runShardWorker(mustPayload(shardJob{Spec: bad, Lo: 0, Hi: 4}), &out); err == nil {
		t.Error("worker accepted an invalid spec")
	}
}

// TestShardWorkerPartialMatchesDirectRange runs one shard job in
// process and checks its emitted partial carries exactly what a direct
// runRange over the same window produces — aggregate, exact rate
// accumulator, and (when requested) the per-machine breakdown.
func TestShardWorkerPartialMatchesDirectRange(t *testing.T) {
	spec := Spec{
		Machines: 6, Scenario: Heterogeneous, Via: sim.Spawn,
		Requests: 2, HeapBytes: 4 << 20, KeepPerMachine: true,
	}.withDefaults()
	payload, err := json.Marshal(shardJob{Spec: spec, Lo: 2, Hi: 5})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runShardWorker(string(payload), &out); err != nil {
		t.Fatal(err)
	}
	var part shardPartial
	if err := json.Unmarshal(out.Bytes(), &part); err != nil {
		t.Fatal(err)
	}

	m, err := runRange(spec, 2, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if part.Aggregate != m.agg.agg {
		t.Errorf("worker partial aggregate %+v != direct range %+v", part.Aggregate, m.agg.agg)
	}
	if part.RateSum != m.agg.rate.Text() {
		t.Errorf("worker rate sum %q != direct %q", part.RateSum, m.agg.rate.Text())
	}
	if len(part.Machines) != 3 {
		t.Fatalf("worker kept %d machines, want 3", len(part.Machines))
	}
	for i, mm := range part.Machines {
		if mm.Machine != 2+i {
			t.Errorf("kept machine %d at position %d, want %d", mm.Machine, i, 2+i)
		}
	}
}
