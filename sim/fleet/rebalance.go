package fleet

import (
	"repro/sim/load"
)

// runRebalancedMachine is the second half of a rebalance wave. Where
// the rolling restart kills the machine and makes its replacement
// re-pay the whole warm-up (heap dirtying plus pool creation, inside
// measured virtual time), the rebalance live-migrates the machine's
// resident worker to the replacement over the wire: a load.Migrate
// cell runs the iterative pre-copy — during which the machine still
// serves — and only the stop-and-copy residue is outage, recorded in
// mm.MigrateNanos. The machine then serves its second phase at its new
// home, bookkept identically to the warm phase.
//
// A worker the checkpoint refuses to serialize (the strategy left it
// entangled with its machine — a vfork borrower's address space) can
// not be migrated: the machine falls back to the full rolling restart,
// and mm.RestartNanos carries the re-warm tax the refusal cost.
func runRebalancedMachine(ms machineSpec, tpls *templates, mm *MachineMetrics, warm *load.Metrics) (*restartDebug, error) {
	mcfg := ms.loadConfig()
	mcfg.Scenario = load.Migrate
	mcfg.Requests = 1 // one migration: this machine's resident worker
	mcfg.Workers = 0  // default pre-copy rounds, not the pool size
	mig, err := load.Run(mcfg)
	if err != nil {
		return nil, err
	}

	if mig.MigrateRefused > 0 {
		// Not serializable one-sided: the entangled worker pins the
		// machine, and the wave pays the full restart for it.
		mm.MigrateRefused = mig.MigrateRefused
		rr, dbg, err := runRestartedMachine(ms, tpls)
		if err != nil {
			return nil, err
		}
		mm.Phases = []*load.Metrics{warm, rr.Serve}
		mm.RestartNanos = rr.RestartNanos
		mm.RestartPTECopies = rr.RestartPTECopies
		return dbg, nil
	}

	mm.MigrateNanos = mig.MigrateDowntimeNanos
	mm.MigratePagesSent = mig.MigratePagesSent
	serve, err := tpls.run(ms.loadConfig())
	if err != nil {
		return nil, err
	}
	mm.Phases = []*load.Metrics{warm, serve}
	return nil, nil
}
