package fleet

import (
	"errors"
	"testing"

	"repro/sim/load"
)

// TestSpecValidate is the table over fleet.Spec validation: every
// rejection is a *SpecError naming the offending field, defaults keep
// the zero Spec valid, and in-range values pass.
func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name      string
		spec      Spec
		wantField string // "" = valid
	}{
		{"zero spec defaults valid", Spec{}, ""},
		{"full valid", Spec{Machines: 8, Scenario: Surge, Load: load.BuildFarm, CPUs: 4, Requests: 10, Workers: 3, SurgeFactor: 2}, ""},
		{"negative machines", Spec{Machines: -1}, "Machines"},
		{"too many machines", Spec{Machines: 1<<20 + 1}, "Machines"},
		{"negative shards", Spec{Shards: -1}, "Shards"},
		{"too many shards", Spec{Shards: 257}, "Shards"},
		{"negative cpus", Spec{CPUs: -2}, "CPUs"},
		{"too many cpus", Spec{CPUs: 65}, "CPUs"},
		{"negative requests", Spec{Requests: -1}, "Requests"},
		{"negative workers", Spec{Workers: -1}, "Workers"},
		{"negative surge factor", Spec{SurgeFactor: -1}, "SurgeFactor"},
		{"unknown load", Spec{Load: "webscale"}, "Load"},
		{"unknown scenario", Spec{Scenario: "cloudburst"}, "Scenario"},
		{"chaos needs prefork", Spec{Scenario: Chaos, Load: load.Pipeline}, "Load"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.spec.Validate()
			if c.wantField == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want ok", err)
				}
				return
			}
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("Validate() = %v (%T), want *SpecError", err, err)
			}
			if se.Field != c.wantField {
				t.Errorf("SpecError.Field = %q, want %q (err: %v)", se.Field, c.wantField, se)
			}
			if se.Spec != "fleet.Spec" || se.Reason == "" {
				t.Errorf("SpecError incomplete: %+v", se)
			}
		})
	}
}

// TestSpecErrorMessage pins the rendered form branching-averse callers
// (the CLI) print.
func TestSpecErrorMessage(t *testing.T) {
	e := &SpecError{Spec: "fleet.Spec", Field: "Machines", Reason: "-1 machines (want 1..4096)"}
	want := "fleet.Spec: invalid Machines: -1 machines (want 1..4096)"
	if e.Error() != want {
		t.Errorf("Error() = %q, want %q", e.Error(), want)
	}
}

// TestRunRejectsInvalidSpec: Run surfaces the typed error.
func TestRunRejectsInvalidSpec(t *testing.T) {
	_, err := Run(Spec{Machines: -3})
	var se *SpecError
	if !errors.As(err, &se) || se.Field != "Machines" {
		t.Fatalf("Run(-3 machines) = %v, want *SpecError{Field: Machines}", err)
	}
}
