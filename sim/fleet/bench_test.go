package fleet

import (
	"testing"

	"repro/sim"
)

// BenchmarkFleet100k is the host-scale acceptance benchmark: a
// 100k-machine uniform fleet through the streaming aggregation path
// (per-machine metrics dropped as they fold), machine shells recycled
// through the template pool. The reported peakRSS-MiB metric is the
// process high-water mark — the 100k fleet must stay under 1 GiB, an
// order of magnitude past the pre-streaming 4096-machine cap. It is
// the only benchmark in this package so the RSS reading is not
// polluted by other bench loops in the same process.
func BenchmarkFleet100k(b *testing.B) {
	spec := Spec{
		Machines:  100_000,
		Scenario:  Uniform,
		Via:       sim.Spawn,
		CPUs:      1,
		Requests:  1,
		HeapBytes: 4 << 20,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		if got := res.Aggregate.Machines; got != spec.Machines {
			b.Fatalf("aggregated %d machines, want %d", got, spec.Machines)
		}
		if len(res.Machines) != 0 {
			b.Fatalf("kept %d per-machine metrics without KeepPerMachine", len(res.Machines))
		}
		b.ReportMetric(float64(spec.Machines)/b.Elapsed().Seconds()/float64(i+1), "machines/s")
	}
	peak := HostPeakRSS()
	b.ReportMetric(float64(peak)/(1<<20), "peakRSS-MiB")
	if peak >= 1<<30 {
		b.Fatalf("peak RSS %d bytes: the 100k-machine fleet must run under 1 GiB", peak)
	}
}
