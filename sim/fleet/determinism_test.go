package fleet_test

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"repro/sim"
	"repro/sim/fleet"
	"repro/sim/load"
)

// runJSON runs the spec at a given GOMAXPROCS and returns the
// byte-stable report.
func runJSON(t *testing.T, spec fleet.Spec, gomaxprocs int) []byte {
	t.Helper()
	prev := runtime.GOMAXPROCS(gomaxprocs)
	defer runtime.GOMAXPROCS(prev)
	res, err := fleet.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestFleetDeterministicAcrossGOMAXPROCS is the fleet determinism
// regression behind the CI gate: the same Spec must produce a
// byte-identical aggregate JSON report whether the host runs the
// machines on one goroutine or eight. A difference means host
// scheduling leaked into the merge (ordering, shared state, or a
// nondeterministic field that escaped the json:"-" fence).
func TestFleetDeterministicAcrossGOMAXPROCS(t *testing.T) {
	specs := []fleet.Spec{
		{Machines: 8, Scenario: fleet.Uniform, Via: sim.ForkExec, Requests: 6, HeapBytes: 8 << 20},
		{Machines: 8, Scenario: fleet.RollingRestart, Via: sim.ForkExec, Requests: 4, HeapBytes: 8 << 20},
		{Machines: 8, Scenario: fleet.RollingRestart, Via: sim.Spawn, Requests: 4, HeapBytes: 8 << 20},
		{Machines: 6, Scenario: fleet.Heterogeneous, Via: sim.ForkExec, Requests: 3, HeapBytes: 4 << 20},
		{Machines: 4, Scenario: fleet.Surge, Via: sim.Spawn, Requests: 4, HeapBytes: 4 << 20, SurgeFactor: 3},
		// Chaos: injected fault waves are pure functions of
		// (FaultSeed, machine id, virtual time, op counter), so the
		// report — losses included — inherits the byte-stability
		// guarantee at any host parallelism.
		{Machines: 6, Scenario: fleet.Chaos, Via: sim.ForkExec, Requests: 8, HeapBytes: 8 << 20, FaultSeed: 3},
		{Machines: 6, Scenario: fleet.Chaos, Via: sim.Spawn, Requests: 8, HeapBytes: 8 << 20, FaultSeed: 3},
		// Distributed loads: each fleet machine is a whole network
		// cell (client, balancer/shards, Server backends over the
		// sim/net fabric). The cell is single-threaded, so the fleet
		// guarantee extends to it unchanged — wire chaos included.
		{Machines: 4, Scenario: fleet.Uniform, Load: load.NetLB, Via: sim.ForkExec, Requests: 12, HeapBytes: 8 << 20},
		{Machines: 4, Scenario: fleet.Chaos, Load: load.KVShard, Via: sim.Spawn, Requests: 12, HeapBytes: 8 << 20, FaultSeed: 5},
		// The rebalance wave: each machine live-migrates its resident
		// worker through a two-machine cell; the cell is
		// single-threaded, so downtime, pages shipped, and vfork
		// fallbacks are all byte-stable at any parallelism.
		{Machines: 4, Scenario: fleet.Rebalance, Via: sim.ForkExec, Requests: 3, HeapBytes: 8 << 20},
		{Machines: 4, Scenario: fleet.Rebalance, Via: sim.VforkExec, Requests: 3, HeapBytes: 4 << 20},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(fmt.Sprintf("%s-%v", spec.Scenario, spec.Via), func(t *testing.T) {
			serial := runJSON(t, spec, 1)
			parallel := runJSON(t, spec, 8)
			if !bytes.Equal(serial, parallel) {
				t.Errorf("fleet report differs between GOMAXPROCS=1 and GOMAXPROCS=8:\nserial:\n%s\nparallel:\n%s",
					serial, parallel)
			}
			// And against itself: same spec, same bytes, full stop.
			if again := runJSON(t, spec, 8); !bytes.Equal(parallel, again) {
				t.Errorf("two GOMAXPROCS=8 runs differ:\n%s\nvs\n%s", parallel, again)
			}
		})
	}
}

// TestParallelismDoesNotChangeResult pins the same guarantee for the
// explicit Spec.Parallelism knob: the worker-pool width is a
// host-performance control, never a semantic one.
func TestParallelismDoesNotChangeResult(t *testing.T) {
	base := fleet.Spec{Machines: 6, Scenario: fleet.Uniform, Via: sim.ForkExec, Requests: 5, HeapBytes: 4 << 20}
	var first []byte
	for _, par := range []int{1, 2, 8} {
		spec := base
		spec.Parallelism = par
		res, err := fleet.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		data, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = data
			continue
		}
		if !bytes.Equal(first, data) {
			t.Errorf("Parallelism=%d changed the report:\n%s\nvs\n%s", par, first, data)
		}
	}
}
