package fleet

import (
	"fmt"
	"math"
	"math/big"
	"sync"
)

// exactSum is an exact, order-independent float64 accumulator: every
// added value is decomposed into its integer significand and binary
// exponent and accumulated in a big.Int scaled to 2^-1074 units (the
// smallest subnormal), so the running sum carries no rounding error at
// all and Float64 returns the correctly rounded total. Order
// independence is what lets the fleet merge machine rates per shard
// and still emit the byte-identical aggregate a serial fold produces —
// plain float addition is not associative, and a grouped sum would
// drift in the last ulp.
type exactSum struct {
	acc big.Int
}

// Add folds v into the sum, exactly. v must be finite (fleet rates
// are ratios of bounded integers).
func (s *exactSum) Add(v float64) {
	if v == 0 {
		return
	}
	bits := math.Float64bits(v)
	mant := bits & (1<<52 - 1)
	exp := int((bits >> 52) & 0x7ff)
	if exp == 0x7ff {
		panic(fmt.Sprintf("fleet: exactSum.Add(%v): non-finite", v))
	}
	if exp == 0 {
		exp = 1 // subnormal: no implicit bit
	} else {
		mant |= 1 << 52
	}
	// v = mant * 2^(exp-1075); in 2^-1074 units that is mant << (exp-1).
	var t big.Int
	t.SetUint64(mant)
	t.Lsh(&t, uint(exp-1))
	if bits>>63 != 0 {
		s.acc.Sub(&s.acc, &t)
	} else {
		s.acc.Add(&s.acc, &t)
	}
}

// Merge folds another sum in. Exact, so merge order cannot matter.
func (s *exactSum) Merge(o *exactSum) {
	s.acc.Add(&s.acc, &o.acc)
}

// Float64 is the correctly rounded total.
func (s *exactSum) Float64() float64 {
	if s.acc.Sign() == 0 {
		return 0
	}
	prec := uint(s.acc.BitLen())
	if prec < 64 {
		prec = 64
	}
	f := new(big.Float).SetPrec(prec).SetInt(&s.acc)
	f.SetMantExp(f, -1074) // scale back from 2^-1074 units
	v, _ := f.Float64()
	return v
}

// Text serializes the accumulator for the shard wire protocol
// (hex two's-complement-free big.Int text); SetText parses it back.
func (s *exactSum) Text() string { return s.acc.Text(16) }

func (s *exactSum) SetText(t string) error {
	if _, ok := s.acc.SetString(t, 16); !ok {
		return fmt.Errorf("fleet: bad rate-sum %q", t)
	}
	return nil
}

// aggregator folds MachineMetrics into a running Aggregate — the
// streaming replacement for materializing every machine's metrics and
// merging at the end. All integer fields are sums or maxes and the one
// float rate is an exactSum, so the fold is order-independent and a
// shard-grouped merge equals the serial machine-id-order fold bit for
// bit.
type aggregator struct {
	agg  Aggregate
	rate exactSum
}

// fold merges one machine's metrics in.
func (a *aggregator) fold(mm *MachineMetrics) {
	a.agg.Machines++
	var machineNanos, machinePeak uint64
	for _, p := range mm.Phases {
		a.agg.TotalRequests += p.Requests
		a.agg.TotalCreations += p.Creations
		a.agg.FailedRequests += p.FailedRequests
		a.agg.OOMKills += p.OOMKills
		machineNanos += p.VirtualNanos
		if p.PeakRSSBytes > machinePeak {
			machinePeak = p.PeakRSSBytes
		}
		a.agg.PageFaults += p.PageFaults
		a.agg.PageCopies += p.PageCopies
		a.agg.PageZeroes += p.PageZeroes
		a.agg.PTECopies += p.PTECopies
		a.agg.TLBShootdowns += p.TLBShootdowns
		a.agg.ContextSwitches += p.ContextSwitches
		a.agg.Syscalls += p.Syscalls
		a.agg.Instructions += p.Instructions
	}
	machineNanos += mm.RestartNanos + mm.MigrateNanos
	a.agg.PTECopies += mm.RestartPTECopies
	a.agg.TotalVirtualNanos += machineNanos
	if machineNanos > a.agg.MaxVirtualNanos {
		a.agg.MaxVirtualNanos = machineNanos
	}
	a.agg.FleetPeakRSSBytes += machinePeak
	a.rate.Add(mm.RequestsPerVSec)
	a.agg.RestartNanos += mm.RestartNanos
	if mm.RestartNanos > a.agg.MaxRestartNanos {
		a.agg.MaxRestartNanos = mm.RestartNanos
	}
	a.agg.MigrateDowntimeNanos += mm.MigrateNanos
	if mm.MigrateNanos > a.agg.MaxMigrateNanos {
		a.agg.MaxMigrateNanos = mm.MigrateNanos
	}
	a.agg.MigratePagesSent += mm.MigratePagesSent
	a.agg.MigrateRefusals += mm.MigrateRefused
}

// merge folds a shard's partial aggregate in (every field a sum or
// max; the rate arrives as the shard's exact accumulator).
func (a *aggregator) merge(p *shardPartial) error {
	b := p.Aggregate
	a.agg.Machines += b.Machines
	a.agg.TotalRequests += b.TotalRequests
	a.agg.TotalCreations += b.TotalCreations
	a.agg.FailedRequests += b.FailedRequests
	a.agg.OOMKills += b.OOMKills
	if b.MaxVirtualNanos > a.agg.MaxVirtualNanos {
		a.agg.MaxVirtualNanos = b.MaxVirtualNanos
	}
	a.agg.TotalVirtualNanos += b.TotalVirtualNanos
	a.agg.FleetPeakRSSBytes += b.FleetPeakRSSBytes
	a.agg.PageFaults += b.PageFaults
	a.agg.PageCopies += b.PageCopies
	a.agg.PageZeroes += b.PageZeroes
	a.agg.PTECopies += b.PTECopies
	a.agg.TLBShootdowns += b.TLBShootdowns
	a.agg.ContextSwitches += b.ContextSwitches
	a.agg.Syscalls += b.Syscalls
	a.agg.Instructions += b.Instructions
	a.agg.RestartNanos += b.RestartNanos
	if b.MaxRestartNanos > a.agg.MaxRestartNanos {
		a.agg.MaxRestartNanos = b.MaxRestartNanos
	}
	a.agg.MigrateDowntimeNanos += b.MigrateDowntimeNanos
	if b.MaxMigrateNanos > a.agg.MaxMigrateNanos {
		a.agg.MaxMigrateNanos = b.MaxMigrateNanos
	}
	a.agg.MigratePagesSent += b.MigratePagesSent
	a.agg.MigrateRefusals += b.MigrateRefusals
	var s exactSum
	if err := s.SetText(p.RateSum); err != nil {
		return err
	}
	a.rate.Merge(&s)
	return nil
}

// aggregate finalizes the rollup, rounding the exact rate sum once.
func (a *aggregator) aggregate() Aggregate {
	agg := a.agg
	agg.RequestsPerVSec = a.rate.Float64()
	return agg
}

// aggregate merges per-machine metrics in machine-id order — the
// legacy in-memory reference the streaming tests compare against, and
// the primitive the hand-built-fleet tests exercise.
func aggregate(machines []MachineMetrics) Aggregate {
	var a aggregator
	for i := range machines {
		a.fold(&machines[i])
	}
	return a.aggregate()
}

// merger is the streaming machine-id-ordered merge point the fleet's
// host workers feed: finished machines are folded into the aggregator
// strictly in id order, buffering out-of-order arrivals. forEach's
// workers claim ids in increasing order, so the pending buffer holds
// at most workers-1 entries — constant memory however large the fleet.
// Per-machine metrics are kept only when requested (Spec.KeepPerMachine).
type merger struct {
	mu      sync.Mutex
	next    int
	pending map[int]*MachineMetrics
	agg     aggregator
	keep    []MachineMetrics
}

// newMerger merges ids [lo, lo+n), keeping per-machine metrics when
// keep is set.
func newMerger(lo, n int, keep bool) *merger {
	m := &merger{next: lo, pending: map[int]*MachineMetrics{}}
	if keep {
		m.keep = make([]MachineMetrics, 0, n)
	}
	return m
}

// add submits machine id's finished metrics; safe for concurrent use.
func (m *merger) add(id int, mm *MachineMetrics) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pending[id] = mm
	for {
		nxt, ok := m.pending[m.next]
		if !ok {
			return
		}
		delete(m.pending, m.next)
		m.agg.fold(nxt)
		if m.keep != nil {
			m.keep = append(m.keep, *nxt)
		}
		m.next++
	}
}
