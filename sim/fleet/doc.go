// Package fleet multiplexes many deterministic simulated machines
// across host cores — the datacenter dimension of "A fork() in the
// road" (HotOS'19).
//
// The paper's §5 costs compound at scale: one machine pays fork's
// page-table tax per creation, a fleet pays it per creation per
// machine, and a deploy wave pays the warm-up tax machine by machine.
// A fleet.Spec describes N machines, each derived deterministically
// from (spec, machine id): shape (CPUs), strategy, workload, and
// scale. Run executes the machines concurrently on a host worker pool
// bounded by GOMAXPROCS and merges results in machine-id order, so the
// aggregate report is byte-identical at any host parallelism — the
// determinism guarantee sim makes for one machine, promoted to the
// fleet:
//
//	res, err := fleet.Run(fleet.Spec{
//		Machines: 8,
//		Scenario: fleet.RollingRestart,
//		Via:      sim.ForkExec,
//	})
//	data, _ := res.JSON() // byte-stable: same Spec, same bytes
//
// Five fleet scenarios express behaviour one machine cannot:
//
//	Uniform        — N identical machines each driving a sim/load
//	                 scenario; the parallel substrate the forkbench
//	                 sweep runs on.
//	RollingRestart — the deploy wave: each machine serves warm, is
//	                 replaced by a fresh instance that repays the
//	                 warm-up tax (dirty heap + pre-created worker
//	                 pool, Θ(heap) per pool worker under fork), then
//	                 serves again. Spawn-based fleets re-warm flat.
//	Heterogeneous  — machine shapes cycle 1/2/4/8 CPUs with traffic
//	                 scaled to the core count; fork's TLB-shootdown
//	                 tax concentrates on the big machines.
//	Surge          — a baseline phase, then a traffic spike that
//	                 multiplies the in-flight window and request
//	                 volume on every machine at once.
//	Chaos          — the fault-injection wave: every machine serves
//	                 prefork traffic under a sim/fault schedule
//	                 derived from (Spec.FaultSeed, machine id) —
//	                 ENOMEM pressure waves that prey on fork's
//	                 Θ(heap) reservations, plus worker kill waves.
//	                 Lost requests land in Aggregate.FailedRequests,
//	                 and because schedules are pure functions of the
//	                 machine's virtual execution the report — losses
//	                 included — keeps the byte-stability guarantee.
//
// RunAll is the lower-level primitive: an order-preserving parallel
// map over arbitrary load.Configs, used by `forkbench load -sweep`
// and the experiment tables so the full strategy x scenario x cpus
// matrix runs concurrently. Host wall-clock, worker/shard counts, and
// peak RSS are reported on Result (HostElapsed, HostWorkers,
// HostShards, HostPeakRSSBytes) but never marshalled: the JSON answers
// "what did the fleet do", the host fields answer "how fast did this
// computer simulate it".
//
// Three host-side mechanisms keep Run host-scalable without touching a
// virtual-time byte (README "Host-scale fleets"):
//
//   - Streaming aggregation: finished machines fold into the Aggregate
//     in machine-id order as they complete and are dropped, so a fleet
//     of any size runs in O(workers) report memory. Spec.KeepPerMachine
//     retains the Result.Machines breakdown. The fleet rate folds
//     through an exact (big.Int-scaled) accumulator, so grouped merges
//     round identically to the serial fold.
//   - Machine reuse: a finished machine's allocations recycle into its
//     template's next stamp (sim.Template.Release); a recycled clone is
//     byte-identical to a fresh one.
//   - Multi-process sharding: Spec.Shards > 1 fans contiguous id ranges
//     across worker OS processes that re-exec this binary — host
//     programs call MaybeShardWorker at the top of main — and partial
//     aggregates merge in shard order, which is id order, so the report
//     is byte-identical to an unsharded run (CI's shard gate cmp's
//     -shards 1 vs 4).
//
// `forkbench hostbench` (experiments.HostBench, E14) measures the
// resulting host-time trajectory — stamp rates, machines per host
// second, peak RSS over a fleet-size ladder — into BENCH_HOST.json.
//
// The forkbench CLI fronts this package (`forkbench fleet`), and
// internal/experiments extends the §5 server-claim table to fleet
// scale with it (experiments.FleetClaim, `forkbench fleetclaim`).
//
// The sim/cluster subpackage builds the autoscaling layer on top:
// Machine wraps one persistent load.Server as a cluster node, and
// cluster's reconcile loop boots and retires Machines between pool
// bounds in virtual time (experiments.ScaleOutClaim, `forkbench
// cluster`).
//
// Machines are stamped from frozen templates, not cold-booted: one
// warmed master per distinct (shape, strategy, workload) is frozen
// via sim.System.Snapshot and host-COW-cloned per machine, so fleet
// host cost stops being Θ(heap)×N (Spec.ColdBoot opts out; the report
// is byte-identical either way, which CI's clone-equivalence gate
// enforces — see README "Template machines & O(1) clone").
//
// Distributed loads (load.NetLB, load.KVShard) run one sim/net cell
// per fleet machine: the cell is a self-contained deterministic
// simulation, so fleet parallelism and -shards apply to distributed
// workloads unchanged, and the chaos scenario swaps its per-machine
// fault schedule for fault.NetChaos — wire-level drops instead of
// memory pressure (the CI net determinism gate byte-compares the
// result at GOMAXPROCS 1 vs 4 and -shards 1 vs 4).
package fleet
