package sim

import (
	"time"

	"repro/internal/kernel"
)

// Checkpoint/restore at the harness level: serialize one process into
// a host-side Image on its source machine and rebuild it on another.
// This is the substrate the live-migration driver (sim/load's Migrate
// scenario) and the fleet rebalancer stand on; see
// internal/kernel/checkpoint.go for the extraction semantics and the
// refusal list — the paper's fork-entangled state (borrowed vfork
// spaces, pipe peers, unreaped children) is exactly what cannot be
// serialized one-sided.

// Image is a serialized process: self-contained host-side state with
// no references into the source machine, so it outlives the source and
// restores into any System whose filesystem carries the same files
// (executable image, open files, cwd).
type Image struct {
	raw *kernel.ProcImage
}

// Raw exposes the substrate image (advanced: migration drivers that
// merge pre-copy rounds).
func (img *Image) Raw() *kernel.ProcImage { return img.raw }

// PageBytes reports the image's page payload — what a migration ships
// over the wire.
func (img *Image) PageBytes() uint64 { return img.raw.PageBytes() }

// PageCount reports captured pages in 4 KiB units.
func (img *Image) PageCount() uint64 { return img.raw.PageBytes() >> 12 }

// CapturedAt reports the source machine's virtual time at capture.
func (img *Image) CapturedAt() time.Duration {
	return time.Duration(img.raw.CapturedAt)
}

// Checkpoint serializes the process into a host-side image: address
// space via the page-table walk, descriptor table, thread states, and
// pending signals. The process keeps running afterwards — checkpoint
// is a priced read. It refuses (with *kernel.CheckpointError) when the
// process is entangled with its machine in ways that cannot be
// serialized one-sided: a borrowed vfork address space, a suspended
// vfork parent, unreaped children, pipe fds, MAP_SHARED regions, or
// files already unlinked.
func (p *Process) Checkpoint() (*Image, error) {
	raw, err := p.sys.k.CheckpointProcess(p.raw, kernel.CheckpointOpts{})
	if err != nil {
		return nil, err
	}
	return &Image{raw: raw}, nil
}

// ProcessOf wraps a substrate process in the sim handle, so harness
// code that built processes through the raw kernel API (synthetic
// parents, fork-family children) can checkpoint and migrate them.
func (s *System) ProcessOf(raw *kernel.Process) *Process {
	return &Process{sys: s, raw: raw}
}

// Restore reconstructs a checkpointed process on s — the receiving
// half of a migration. Every name in the image (cwd, executable
// backing, open files) must resolve in s's filesystem. The restored
// process is parentless; threads that were runnable or blocked on the
// source come back runnable (blocked syscalls are restartable and
// re-block on this machine's queues), parked threads stay parked.
func (s *System) Restore(img *Image) (*Process, error) {
	raw, err := s.k.RestoreProcess(img.raw)
	if err != nil {
		return nil, err
	}
	return &Process{sys: s, raw: raw}, nil
}
