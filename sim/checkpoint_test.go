package sim_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/sim"
	"repro/sim/fault"
)

// rebasedTrace renders a machine's trace with times rebased to the
// first event, so two runs that differ only by when they started can
// be byte-compared.
func rebasedTrace(events []fault.Event) string {
	if len(events) == 0 {
		return ""
	}
	base := events[0].Time
	var b strings.Builder
	for _, e := range events {
		e.Time -= base
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestRestoreRoundTripByteIdentical is the migration fidelity
// contract: create a process, checkpoint it, restore it on a second
// machine, and run it there. Everything observable after the handoff
// point — console bytes, exit state, per-CPU times, and the rebased
// event trace — must be byte-identical to an unmigrated run on a
// machine that created the process itself.
func TestRestoreRoundTripByteIdentical(t *testing.T) {
	for _, g := range goldenStrategies {
		g := g
		t.Run(g.name, func(t *testing.T) {
			mk := func(buf *bytes.Buffer) (*sim.System, *sim.Process) {
				sys := newSys(t, sim.WithTrace(), sim.WithConsole(buf), sim.WithUserland("echo"))
				p, err := sys.Command("echo", "moved", "intact").Via(g.via).Create()
				if err != nil {
					t.Fatal(err)
				}
				return sys, p
			}

			// The unmigrated control: same machine creates and runs.
			var outA bytes.Buffer
			sysA, pA := mk(&outA)
			sysA.Trace().Reset()
			if err := pA.Start(); err != nil {
				t.Fatal(err)
			}
			psA, err := pA.Wait()
			if err != nil {
				t.Fatal(err)
			}

			// The migrated run: checkpoint on B, restore on C.
			var outB, outC bytes.Buffer
			_, pB := mk(&outB)
			img, err := pB.Checkpoint()
			if err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
			sysC := newSys(t, sim.WithTrace(), sim.WithConsole(&outC), sim.WithUserland("echo"))
			pC, err := sysC.Restore(img)
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			if pC.Pid() != pA.Pid() {
				t.Fatalf("restored pid %d, control pid %d — trace compare needs matching pids", pC.Pid(), pA.Pid())
			}
			sysC.Trace().Reset()
			if err := pC.Start(); err != nil {
				t.Fatal(err)
			}
			psC, err := pC.Wait()
			if err != nil {
				t.Fatal(err)
			}

			if got, want := outC.String(), outA.String(); got != want {
				t.Errorf("console bytes diverged: %q vs %q", got, want)
			}
			if outB.Len() != 0 {
				t.Errorf("source machine ran the process before migration: %q", outB.String())
			}
			if psC.Sys() != psA.Sys() || psC.OOMKilled() != psA.OOMKilled() {
				t.Errorf("exit state diverged: %v vs %v", psC, psA)
			}
			ctA, ctC := psA.CPUTimes(), psC.CPUTimes()
			if len(ctA) != len(ctC) {
				t.Fatalf("cpu count diverged: %d vs %d", len(ctC), len(ctA))
			}
			for i := range ctA {
				if ctA[i] != ctC[i] {
					t.Errorf("cpu%d time %v vs %v", i, ctC[i], ctA[i])
				}
			}
			gotTrace := rebasedTrace(sysC.Trace().Events())
			wantTrace := rebasedTrace(sysA.Trace().Events())
			if gotTrace != wantTrace {
				t.Errorf("rebased traces diverged:\nmigrated:\n%s\ncontrol:\n%s", gotTrace, wantTrace)
			}
		})
	}
}

// TestCheckpointRefusalSurfaces: the kernel's typed refusal crosses
// the sim API intact, so migration drivers can distinguish "cannot
// move this one" from real failures.
func TestCheckpointRefusalSurfaces(t *testing.T) {
	sys := newSys(t, sim.WithUserland("true"))
	k := sys.Kernel()
	child, err := k.ForkWithMode(sys.Host(), kernel.ForkVfork)
	if err != nil {
		t.Fatal(err)
	}
	defer k.DestroyProcess(child)
	// Wrap the raw vfork borrower in the sim handle the way a
	// migration driver sees it.
	_, err = sys.ProcessOf(child).Checkpoint()
	var ce *kernel.CheckpointError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *kernel.CheckpointError", err)
	}
	if !strings.Contains(ce.Reason, "borrowed") {
		t.Errorf("reason = %q, want the vfork borrow named", ce.Reason)
	}
}
