package sim_test

import (
	"bytes"
	"io"
	"testing"

	"repro/sim"
)

// TestCloneTraceMatchesCold is the trace half of the clone-equivalence
// property: the golden-trace machine is rebuilt, frozen into a
// template *before* the traced command, and the command is then run on
// two independent clones and on the post-snapshot original. All three
// rendered traces must be byte-identical to the cold machine's — a
// clone is logically the warmed machine itself, and the snapshot must
// not perturb the machine it was taken from (host-COW bookkeeping is
// invisible to virtual time).
func TestCloneTraceMatchesCold(t *testing.T) {
	for _, g := range goldenStrategies {
		g := g
		t.Run(g.name, func(t *testing.T) {
			cold := goldenTrace(t, g.via)

			sys, err := sim.NewSystem(
				sim.WithRAM(64<<20),
				sim.WithUserland("echo"),
				sim.WithTrace(),
			)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.DirtyHost(64<<10, false); err != nil {
				t.Fatal(err)
			}
			tpl, err := sys.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			run := func(s *sim.System) string {
				cmd := s.Command("echo", "trace", "me").Via(g.via)
				cmd.Stdout = io.Discard
				if err := cmd.Run(); err != nil {
					t.Fatal(err)
				}
				return s.Trace().Render()
			}
			for i := 0; i < 2; i++ {
				c, err := tpl.Clone()
				if err != nil {
					t.Fatal(err)
				}
				if got := run(c); got != cold {
					t.Errorf("clone %d trace diverged from cold machine:\nclone:\n%s\ncold:\n%s", i, got, cold)
				}
			}
			if got := run(sys); got != cold {
				t.Errorf("post-snapshot original's trace diverged from cold machine:\ngot:\n%s\ncold:\n%s", got, cold)
			}
		})
	}
}

// TestCloneIndependence stamps three clones from one template, drives
// divergent mutating workloads through them, and asserts that neither
// the template nor any sibling sees the others' writes: the frozen
// master's process table, physical-memory books, and host-COW-shared
// frames are unperturbed, a late fourth clone is still pristine, and
// each clone returns to its own post-stamp baseline once its processes
// are reaped (the leak half: stamping must not open a path for one
// machine's teardown to double-free or retain another's frames).
func TestCloneIndependence(t *testing.T) {
	sys, err := sim.NewSystem(sim.WithRAM(64<<20), sim.WithUserland("true"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.DirtyHost(1<<20, false); err != nil {
		t.Fatal(err)
	}
	if err := sys.WriteFile("/tmp/seed", []byte("base")); err != nil {
		t.Fatal(err)
	}
	tpl, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	tk := tpl.Kernel()
	baseProcs := tk.ProcessCount()
	basePages := tk.Phys().AllocatedPages()
	baseCmt := tk.Phys().Committed()
	baseShared := tk.Phys().SharedFrames()

	var clones [3]*sim.System
	var cbase [3]counts
	for i := range clones {
		if clones[i], err = tpl.Clone(); err != nil {
			t.Fatal(err)
		}
		cbase[i] = snapshot(clones[i])
	}
	a, b, c := clones[0], clones[1], clones[2]

	// Divergent mutations: a and b rewrite the seeded file to
	// different contents and churn processes under different
	// strategies; c only reads.
	if err := a.WriteFile("/tmp/seed", []byte("AAAA")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := a.Command("true").Via(sim.ForkExec).Run(); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.WriteFile("/tmp/seed", []byte("BB")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := b.Command("true").Via(sim.Spawn).Run(); err != nil {
			t.Fatal(err)
		}
	}

	readSeed := func(s *sim.System, who string, want string) {
		t.Helper()
		got, err := s.ReadFile("/tmp/seed")
		if err != nil {
			t.Fatalf("%s: read seed: %v", who, err)
		}
		if !bytes.Equal(got, []byte(want)) {
			t.Errorf("%s sees seed %q, want %q", who, got, want)
		}
	}
	readSeed(a, "clone a", "AAAA")
	readSeed(b, "clone b", "BB")
	readSeed(c, "clone c", "base") // siblings' writes must not bleed

	// A clone stamped after the siblings diverged is still pristine.
	d, err := tpl.Clone()
	if err != nil {
		t.Fatal(err)
	}
	readSeed(d, "late clone d", "base")

	// The frozen master is untouched: same processes, same resident
	// pages, same commit charge, and no shared frame was ever broken
	// *on the template's side* (clones un-share their own copies; a
	// drop here would mean a clone's write reached the master).
	if got := tk.ProcessCount(); got != baseProcs {
		t.Errorf("template process count moved: %d, want %d", got, baseProcs)
	}
	if got := tk.Phys().AllocatedPages(); got != basePages {
		t.Errorf("template resident pages moved: %d, want %d", got, basePages)
	}
	if got := tk.Phys().Committed(); got != baseCmt {
		t.Errorf("template commit charge moved: %d, want %d", got, baseCmt)
	}
	if got := tk.Phys().SharedFrames(); got < baseShared {
		t.Errorf("template shared frames decreased: %d, was %d (a clone wrote through the COW)", got, baseShared)
	}

	// Leak half: with every child reaped, each clone is exactly back
	// at its own post-stamp baseline.
	for i, cl := range clones {
		if got := snapshot(cl); got != cbase[i] {
			t.Errorf("clone %d leaked: %+v, baseline %+v", i, got, cbase[i])
		}
	}
}
