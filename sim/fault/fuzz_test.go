package fault_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/addrspace"
	"repro/sim"
	"repro/sim/fault"
)

// chaosEpisode boots the sweep machine cleanly, arms a pseudo-random
// fault schedule derived from (seed, perMille), and drives a short
// prefork-style loop through fork+exec, logging every request's
// outcome. It enforces the chaos invariants as it goes: every failure
// well-typed (no panics), all resources back at baseline afterwards,
// and the machine still serving once the schedule is disarmed. The
// returned transcript is the deterministic-replay witness: the same
// schedule must produce the same transcript, byte for byte.
func chaosEpisode(seed, perMille uint64) (string, error) {
	sys, err := sim.NewSystem(sim.WithRAM(sweepRAM), sim.WithUserland("true"))
	if err != nil {
		return "", err
	}
	if err := sys.DirtyHost(sweepHeap, false); err != nil {
		return "", err
	}
	var hs, hl uint64
	for _, v := range sys.Host().Space().VMAs() {
		if v.Name == "workset" {
			hs, hl = v.Start, v.Len()
		}
	}
	base := snapshot(sys)

	// Arm after the clean warm-up, exactly like load's chaos mode.
	sys.SetFaultSchedule(fault.Random(seed, 0, perMille, fault.ENOMEM))
	var out strings.Builder
	for i := 0; i < 6; i++ {
		cmd := sys.Command("true").Via(sim.ForkExec)
		if err := cmd.Start(); err != nil {
			if !wellTyped(err) {
				return "", fmt.Errorf("request %d: untyped start error: %w", i, err)
			}
			fmt.Fprintf(&out, "req%d start err: %v\n", i, err)
			continue
		}
		terr := sys.Host().Space().Touch(hs, hl, addrspace.AccessWrite)
		if terr != nil && !wellTyped(terr) {
			return "", fmt.Errorf("request %d: untyped touch error: %w", i, terr)
		}
		werr := cmd.Wait()
		if werr != nil && !wellTyped(werr) {
			return "", fmt.Errorf("request %d: untyped wait error: %w", i, werr)
		}
		fmt.Fprintf(&out, "req%d touch=%v wait=%v\n", i, terr, werr)
	}

	// Disarm; everything must be back at baseline and the machine
	// must still serve.
	sys.SetFaultSchedule(fault.Observe())
	if got := snapshot(sys); got != base {
		return "", fmt.Errorf("chaos leaked: %+v, baseline %+v\ntranscript:\n%s", got, base, out.String())
	}
	if err := workload(sys, sim.ForkExec, hs, hl); err != nil {
		return "", fmt.Errorf("machine wedged after chaos: %w\ntranscript:\n%s", err, out.String())
	}
	if got := snapshot(sys); got != base {
		return "", fmt.Errorf("post-chaos request leaked: %+v, baseline %+v", got, base)
	}
	fmt.Fprintf(&out, "injected=%d\n", sys.Faults().Injected())
	return out.String(), nil
}

// FuzzFaultSchedule throws random fault schedules at the prefork
// workload: whatever (seed, rate) the fuzzer invents, the kernel must
// not panic, must not leak a process/frame/commit-page/descriptor, and
// must replay the schedule deterministically — the failing schedule IS
// its own reproducer. Runs in the CI fuzz-smoke job.
func FuzzFaultSchedule(f *testing.F) {
	f.Add(uint64(1), uint64(100))
	f.Add(uint64(42), uint64(500))
	f.Add(uint64(7), uint64(20))
	f.Add(uint64(0xdeadbeef), uint64(950))
	f.Fuzz(func(t *testing.T, seed, perMille uint64) {
		perMille %= 1001
		first, err := chaosEpisode(seed, perMille)
		if err != nil {
			t.Fatal(err)
		}
		second, err := chaosEpisode(seed, perMille)
		if err != nil {
			t.Fatalf("replay failed where first run passed: %v", err)
		}
		if first != second {
			t.Fatalf("schedule (seed=%d rate=%d‰) did not replay deterministically:\nfirst:\n%s\nsecond:\n%s",
				seed, perMille, first, second)
		}
	})
}
