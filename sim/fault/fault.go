// Package fault is the public surface of the simulator's deterministic
// fault-injection and tracing subsystem.
//
// "A fork() in the road" argues that fork's failure modes — overcommit
// discovered at fault time, partial-copy failures, snapshots of
// mid-flight multithreaded state — are as much a part of the API as
// its happy path. This package makes those failures a first-class,
// schedulable input: the kernel consults a named injection Point at
// every fallible boundary, and a Schedule — a pure function of
// (machine id, virtual time, op counter, magnitude) — decides which
// operations fail. The same schedule and seed replay bit-for-bit, at
// any simulated CPU count's timeline and any host parallelism, so a
// failure found once can be replayed, shrunk, and regression-tested
// forever.
//
// Install a schedule at boot with sim.WithFaults, on a running machine
// with System.SetFaultSchedule, per load run with load.Config.Faults,
// or fleet-wide with the fleet "chaos" scenario. Enable the structured
// event trace (syscall enter/exit, scheduling decisions, shootdown
// IPIs, injected faults, process lifecycle) with sim.WithTrace and
// read it back with System.Trace; `forkbench trace` renders it from
// the command line.
//
// Schedules:
//
//   - Observe: fail nothing, count everything — a clean run's counts
//     enumerate every operation a sweep can target.
//   - FailOp(point, seq, err): fail exactly the seq-th operation at
//     one point — the primitive behind exhaustive single-fault sweeps.
//   - PressureWave: periodic ENOMEM windows where an operation fails
//     if its magnitude beats a hashed threshold — big requests (fork's
//     Θ(parent) commit reservation) almost always fail, small ones
//     (spawn's few pages) almost never do.
//   - KillEvery / Random / Any: crash waves, seeded noise, and
//     combinators.
//   - Chaos(seed, machine): the fleet chaos mode's standard mix.
package fault

import (
	"repro/internal/cost"
	"repro/internal/errno"
	ifault "repro/internal/fault"
)

// Core types, aliased from the internal engine so values flow both
// ways without conversion.
type (
	// Point names one fallible boundary in the simulator.
	Point = ifault.Point
	// Op identifies one occurrence of an injection point.
	Op = ifault.Op
	// Schedule decides which operations fail (pure function of Op).
	Schedule = ifault.Schedule
	// Injector is a machine's engine: per-point op counters plus the
	// installed schedule (System.Faults exposes it).
	Injector = ifault.Injector
	// Recorder is a machine's structured event trace (System.Trace).
	Recorder = ifault.Recorder
	// Event is one trace record.
	Event = ifault.Event
	// PressureWave is the periodic magnitude-thresholded ENOMEM
	// schedule (see the package comment).
	PressureWave = ifault.PressureWave
	// ZoneOutage is the zone-scoped machine-kill schedule (see
	// KillZone).
	ZoneOutage = ifault.ZoneOutage
	// LinkDown severs one directed fabric link for a window.
	LinkDown = ifault.LinkDown
	// NetSplit partitions a set of machine addresses off the fabric
	// for a window (deliveries straddling the cut are dropped).
	NetSplit = ifault.NetSplit
	// ZonePartition is the cluster-level netsplit: balancer
	// reachability probes naming the zone fail during the window.
	ZonePartition = ifault.ZonePartition
	// Errno is the simulated kernel's error number type.
	Errno = errno.Errno
	// Ticks is virtual time (1 tick = 1 simulated nanosecond).
	Ticks = cost.Ticks
)

// Injection points.
const (
	PointFrameAlloc   = ifault.PointFrameAlloc
	PointCommit       = ifault.PointCommit
	PointPTClone      = ifault.PointPTClone
	PointCOWBreak     = ifault.PointCOWBreak
	PointFDClone      = ifault.PointFDClone
	PointExecImage    = ifault.PointExecImage
	PointThreadCreate = ifault.PointThreadCreate
	PointKill         = ifault.PointKill
	PointMachineKill  = ifault.PointMachineKill
	PointNetSend      = ifault.PointNetSend
	PointNetDeliver   = ifault.PointNetDeliver
	NumPoints         = ifault.NumPoints
)

// Errnos a schedule typically injects. OK is the no-fault decision a
// direct Schedule consumer (sim/cluster's kill check) compares against.
const (
	OK     = errno.OK
	ENOMEM = errno.ENOMEM
	EAGAIN = errno.EAGAIN
	EINTR  = errno.EINTR
	EIO    = errno.EIO
	EMFILE = errno.EMFILE
)

// Virtual-time units for wave periods.
const (
	Microsecond = cost.Microsecond
	Millisecond = cost.Millisecond
)

// Points lists every injection point in a fixed order.
func Points() []Point { return ifault.Points() }

// Observe returns the count-only schedule (nothing fails).
func Observe() Schedule { return ifault.Observe() }

// FailOp fails exactly the seq-th (1-based) operation at point.
func FailOp(point Point, seq uint64, err Errno) Schedule {
	return ifault.FailOp(point, seq, err)
}

// KillEvery crashes about one in n workload requests.
func KillEvery(seed uint64, machine int, n uint64) Schedule {
	return ifault.KillEvery(seed, machine, n)
}

// KillZone is the zone-outage schedule: every machine in the target
// availability zone dies while from <= t < until on the cluster's
// virtual clock (sim/cluster consults it once per live machine per
// reconcile step, with the machine's zone index as the op magnitude).
func KillZone(zone uint64, from, until Ticks) Schedule {
	return ifault.KillZone(zone, from, until)
}

// Random fails each targeted operation with probability perMille/1000,
// deterministically derived from the seed.
func Random(seed uint64, machine int, perMille uint64, err Errno, points ...Point) Schedule {
	return ifault.Random(seed, machine, perMille, err, points...)
}

// Any combines schedules; the first non-OK decision wins.
func Any(scheds ...Schedule) Schedule { return ifault.Any(scheds...) }

// Chaos is the fleet chaos mode's standard schedule for one machine:
// ENOMEM pressure waves plus a sparse kill wave.
func Chaos(seed uint64, machine int) Schedule { return ifault.Chaos(seed, machine) }

// NetChaos is the chaos-mode schedule for distributed (fabric-backed)
// loads: a deterministic pseudo-random fraction of frames dropped at
// the source NIC and at delivery.
func NetChaos(seed uint64, machine int) Schedule { return ifault.NetChaos(seed, machine) }

// NetMag packs a frame's (src, dst) machine addresses into the op
// magnitude word the network points carry.
func NetMag(src, dst int) uint64 { return ifault.NetMag(src, dst) }

// SyscallName renders a syscall number for trace consumers.
func SyscallName(num uint64) string { return ifault.SyscallName(num) }
