package fault_test

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"repro/sim"
	"repro/sim/fault"
	"repro/sim/load"
)

// TestChaosRunsDeterministic is the schedule-determinism regression
// for the acceptance criterion: an identical fault schedule and seed
// produces byte-identical metrics — served and failed requests, OOM
// kills, every virtual-time counter — on repeated runs at 1, 2, and 8
// simulated CPUs. The schedule sees only (virtual time, op counter,
// magnitude), so nothing host-side can perturb which operations fail.
func TestChaosRunsDeterministic(t *testing.T) {
	for _, cpus := range []int{1, 2, 8} {
		for _, via := range []sim.Strategy{sim.ForkExec, sim.Spawn} {
			cpus, via := cpus, via
			t.Run(fmt.Sprintf("%dcpu-%v", cpus, via), func(t *testing.T) {
				cfg := load.Config{
					Scenario:  load.Prefork,
					Via:       via,
					CPUs:      cpus,
					Requests:  24,
					HeapBytes: 8 << 20,
					Faults:    fault.Chaos(5, 0),
				}
				a, err := load.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				b, err := load.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a, b) {
					aj, _ := json.MarshalIndent(a, "", "  ")
					bj, _ := json.MarshalIndent(b, "", "  ")
					t.Errorf("two identical chaos runs diverged:\nfirst:  %s\nsecond: %s", aj, bj)
				}
				if a.Requests+a.FailedRequests != 24 {
					t.Errorf("served %d + failed %d != 24 requests", a.Requests, a.FailedRequests)
				}
			})
		}
	}
}

// TestChaosActuallyInjects guards against the chaos mode rotting into
// a no-op: under the standard wave schedule the fork-based server must
// lose requests (its Θ(heap) reservations are the waves' prey), and a
// clean run of the same config must lose none.
func TestChaosActuallyInjects(t *testing.T) {
	cfg := load.Config{
		Scenario:  load.Prefork,
		Via:       sim.ForkExec,
		Requests:  32,
		HeapBytes: 16 << 20,
		Faults:    fault.Chaos(1, 0),
	}
	chaos, err := load.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if chaos.FailedRequests == 0 {
		t.Error("chaos run lost no requests; the wave schedule never fired")
	}
	clean := cfg
	clean.Faults = nil
	m, err := load.Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	if m.FailedRequests != 0 || m.Requests != 32 {
		t.Errorf("clean run reported failures: served %d, failed %d", m.Requests, m.FailedRequests)
	}
}

// TestChaosRejectsUnsupportedScenario pins the Config.Faults contract:
// only the failure-tolerant scenarios accept a schedule.
func TestChaosRejectsUnsupportedScenario(t *testing.T) {
	_, err := load.Run(load.Config{
		Scenario: load.Pipeline,
		Faults:   fault.Chaos(1, 0),
	})
	if err == nil {
		t.Fatal("pipeline accepted a fault schedule")
	}
}

// TestTraceDeterministicWithFaults: the rendered trace of a traced,
// fault-injected run is byte-identical across runs — the trace is the
// replay log the golden files freeze.
func TestTraceDeterministicWithFaults(t *testing.T) {
	run := func() string {
		sys, err := sim.NewSystem(
			sim.WithRAM(sweepRAM),
			sim.WithUserland("true"),
			sim.WithTrace(),
			sim.WithFaults(fault.FailOp(fault.PointPTClone, 1, fault.ENOMEM)),
		)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.DirtyHost(sweepHeap, false); err != nil {
			t.Fatal(err)
		}
		if err := sys.Command("true").Via(sim.ForkExec).Run(); err == nil {
			t.Fatal("injected PTClone fault did not surface")
		}
		if err := sys.Command("true").Via(sim.ForkExec).Run(); err != nil {
			t.Fatalf("second request failed after the single fault was spent: %v", err)
		}
		return sys.Trace().Render()
	}
	first := run()
	if second := run(); first != second {
		t.Errorf("fault-injected trace not deterministic:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
	if first == "" {
		t.Error("trace is empty")
	}
}
