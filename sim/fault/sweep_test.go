package fault_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/addrspace"
	"repro/internal/errno"
	"repro/sim"
	"repro/sim/fault"
)

// The sweep's workload machine: a small dirty parent so the fork
// family exercises page-table clones and COW state without making the
// exhaustive sweep slow.
const (
	sweepRAM  = 64 << 20
	sweepHeap = 256 << 10 // 64 pages of COW-able parent heap
)

// allStrategies is every creation API including the eager ablation.
func allStrategies() []sim.Strategy {
	return append(sim.Strategies(), sim.EagerForkExec)
}

// resources is the leak-invariant snapshot: process-table entries,
// allocated frames, commit charge, and the host's open descriptors.
type resources struct {
	procs     int
	pages     uint64
	committed uint64
	hostFDs   int
}

func snapshot(sys *sim.System) resources {
	k := sys.Kernel()
	return resources{
		procs:     k.ProcessCount(),
		pages:     k.Phys().AllocatedPages(),
		committed: k.Phys().Committed(),
		hostFDs:   sys.Host().FDs().OpenCount(),
	}
}

// bootSweepSystem boots the sweep machine under the given schedule,
// with the host's dirty heap mapped. It returns the heap VMA bounds so
// the workload can rewrite it (COW traffic for the fork family).
func bootSweepSystem(t *testing.T, sched fault.Schedule) (*sim.System, uint64, uint64) {
	t.Helper()
	sys, err := sim.NewSystem(
		sim.WithRAM(sweepRAM),
		sim.WithUserland("true"),
		sim.WithFaults(sched),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.DirtyHost(sweepHeap, false); err != nil {
		t.Fatal(err)
	}
	var start, length uint64
	for _, v := range sys.Host().Space().VMAs() {
		if v.Name == "workset" {
			start, length = v.Start, v.Len()
		}
	}
	if length == 0 {
		t.Fatal("host workset VMA not found")
	}
	return sys, start, length
}

// workload is one prefork-style request from a dirty parent: create a
// child through the strategy, rewrite the parent's heap while the
// request is in flight (the COW tax), and reap. It returns the first
// error, which under injection must be well-typed.
func workload(sys *sim.System, st sim.Strategy, heapStart, heapLen uint64) error {
	cmd := sys.Command("true").Via(st)
	if err := cmd.Start(); err != nil {
		return err
	}
	terr := sys.Host().Space().Touch(heapStart, heapLen, addrspace.AccessWrite)
	werr := cmd.Wait()
	if terr != nil {
		return terr
	}
	return werr
}

// wellTyped reports whether err is an error the public API contracts
// allow a fault to surface as: a kernel errno (possibly wrapped) or a
// decoded ExitError (the worker died to an injected kill/OOM). A
// panic, or an untyped error, fails the sweep.
func wellTyped(err error) bool {
	var e errno.Errno
	if errors.As(err, &e) {
		return true
	}
	return sim.AsExitError(err) != nil
}

// TestExhaustiveSingleFaultSweep is the schedule-sweeping invariant
// test: for every creation strategy, a clean Observe() run enumerates
// every injection-point operation the workload performs (the compact
// trace of fallible boundaries), and then the sweep re-runs the
// workload once per enumerated operation with exactly that operation
// failing. Whatever single fault fires, the kernel must (a) return a
// well-typed error — never panic, never wedge — (b) release every
// process, frame, commit page, and descriptor back to baseline, and
// (c) keep serving: a follow-up clean request on the same machine must
// succeed and also return to baseline.
func TestExhaustiveSingleFaultSweep(t *testing.T) {
	for _, st := range allStrategies() {
		st := st
		t.Run(st.String(), func(t *testing.T) {
			// Clean run: count operations at every point, from the
			// same machine state the fault runs will replay.
			sys, hs, hl := bootSweepSystem(t, fault.Observe())
			before := sys.Faults().Counts()
			base := snapshot(sys)
			if err := workload(sys, st, hs, hl); err != nil {
				t.Fatalf("clean run failed: %v", err)
			}
			if got := snapshot(sys); got != base {
				t.Fatalf("clean run leaked: %+v, baseline %+v", got, base)
			}
			after := sys.Faults().Counts()

			total := 0
			for _, p := range fault.Points() {
				for seq := before[p] + 1; seq <= after[p]; seq++ {
					total++
					t.Run(fmt.Sprintf("%v-%d", p, seq), func(t *testing.T) {
						fsys, fhs, fhl := bootSweepSystem(t, fault.FailOp(p, seq, fault.ENOMEM))
						fbase := snapshot(fsys)
						err := workload(fsys, st, fhs, fhl)
						if err != nil && !wellTyped(err) {
							t.Fatalf("fault at %v op %d surfaced untyped: %v", p, seq, err)
						}
						if fsys.Faults().Injected() == 0 {
							t.Fatalf("fault at %v op %d never fired (clean run counted it)", p, seq)
						}
						if got := snapshot(fsys); got != fbase {
							t.Fatalf("fault at %v op %d leaked: %+v, baseline %+v (workload err: %v)",
								p, seq, got, fbase, err)
						}
						// The machine must have survived: the single
						// fault is spent, so a clean request works.
						if err := workload(fsys, st, fhs, fhl); err != nil {
							t.Fatalf("machine wedged after fault at %v op %d: %v", p, seq, err)
						}
						if got := snapshot(fsys); got != fbase {
							t.Fatalf("post-fault request leaked: %+v, baseline %+v", got, fbase)
						}
					})
				}
			}
			if total == 0 {
				t.Fatal("clean run enumerated no injection-point operations")
			}
			t.Logf("%v: swept %d single-fault schedules", st, total)
		})
	}
}

// TestFaultSweepCoversTheTentpolePoints pins that the workload's clean
// enumeration actually reaches the boundaries the subsystem exists to
// test — a refactor that silently stops exercising, say, the COW-break
// point would otherwise hollow the sweep out.
func TestFaultSweepCoversTheTentpolePoints(t *testing.T) {
	cases := []struct {
		st   sim.Strategy
		pts  []fault.Point
		name string
	}{
		{sim.ForkExec, []fault.Point{
			fault.PointPTClone, fault.PointCOWBreak, fault.PointFDClone,
			fault.PointExecImage, fault.PointThreadCreate, fault.PointCommit,
			fault.PointFrameAlloc,
		}, "fork"},
		{sim.Spawn, []fault.Point{
			fault.PointFDClone, fault.PointExecImage, fault.PointThreadCreate,
			fault.PointCommit, fault.PointFrameAlloc,
		}, "spawn"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sys, hs, hl := bootSweepSystem(t, fault.Observe())
			before := sys.Faults().Counts()
			if err := workload(sys, c.st, hs, hl); err != nil {
				t.Fatal(err)
			}
			after := sys.Faults().Counts()
			for _, p := range c.pts {
				if after[p] == before[p] {
					t.Errorf("%v workload never crossed %v", c.st, p)
				}
			}
		})
	}
}
