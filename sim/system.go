package sim

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/addrspace"
	"repro/internal/asm"
	"repro/internal/image"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/ulib"
	"repro/internal/vfs"
	"repro/sim/fault"
)

// CommitPolicy selects the machine's overcommit accounting
// (overcommit_memory in Linux terms); see §4.6 of the paper.
type CommitPolicy int

// Commit policies.
const (
	// CommitHeuristic allows reservations freely unless a single
	// request exceeds the limit (Linux overcommit_memory=0).
	CommitHeuristic CommitPolicy = iota
	// CommitStrict refuses any reservation past RAM+swap
	// (overcommit_memory=2): fork of a big parent fails up front.
	CommitStrict
	// CommitAlways never refuses a reservation (overcommit_memory=1).
	CommitAlways
)

func (p CommitPolicy) String() string {
	return [...]string{"heuristic", "strict", "always"}[p]
}

func (p CommitPolicy) memPolicy() mem.CommitPolicy {
	switch p {
	case CommitStrict:
		return mem.CommitStrict
	case CommitAlways:
		return mem.CommitAlways
	}
	return mem.CommitHeuristic
}

// ForkMode selects the kernel's fork duplication strategy.
type ForkMode int

// Fork modes.
const (
	// ForkCOW is modern copy-on-write fork.
	ForkCOW ForkMode = iota
	// ForkEager is 1970s fork: every private page copied eagerly
	// (the paper's §2 history, kept as an ablation).
	ForkEager
)

type config struct {
	opts      kernel.Options
	userland  []string // nil = install everything
	programs  []srcProgram
	images    []rawImage
	runBudget uint64
}

type srcProgram struct{ path, src string }
type rawImage struct {
	path string
	raw  []byte
}

// Option configures NewSystem.
type Option func(*config)

// WithRAM sizes physical memory in bytes (default 4 GiB).
func WithRAM(bytes uint64) Option {
	return func(c *config) { c.opts.RAMBytes = bytes }
}

// WithSwap adds commit headroom beyond RAM.
func WithSwap(bytes uint64) Option {
	return func(c *config) { c.opts.SwapBytes = bytes }
}

// WithCommitPolicy selects the overcommit policy.
func WithCommitPolicy(p CommitPolicy) Option {
	return func(c *config) { c.opts.Commit = p.memPolicy() }
}

// WithForkMode selects the kernel fork strategy (COW by default).
func WithForkMode(m ForkMode) Option {
	return func(c *config) { c.opts.EagerFork = m == ForkEager }
}

// WithCPUs sets the number of simulated CPUs (default 1, maximum 64).
// The machine stays deterministic at every CPU count: the scheduler
// executes CPUs in virtual-time order, so two runs of the same
// workload produce bit-identical results. More CPUs let runnable
// threads overlap in virtual time — and make fork more expensive,
// because every COW break and page-table downgrade now pays a
// TLB-shootdown IPI per other CPU running the address space.
func WithCPUs(n int) Option {
	return func(c *config) { c.opts.NumCPUs = n }
}

// WithDenyMultithreadedFork makes fork fail with EAGAIN when the
// caller has more than one live thread — the §8 mitigation on the road
// to deprecating fork.
func WithDenyMultithreadedFork() Option {
	return func(c *config) { c.opts.DenyMultithreadedFork = true }
}

// WithFaults installs a deterministic fault-injection schedule at
// boot: every fallible kernel boundary (frame allocation, commit
// reservation, page-table clone, COW break, descriptor-table copy,
// exec image load, thread creation) consults it before proceeding. A
// schedule is a pure function of the operation's identity, so the same
// schedule replays bit-for-bit. Use fault.Observe() to count
// operations without failing any — the enumeration a fault sweep
// targets. See repro/sim/fault.
func WithFaults(s fault.Schedule) Option {
	return func(c *config) { c.opts.Faults = s }
}

// WithTrace enables the structured event trace: syscall enter/exit,
// scheduler dispatches, TLB-shootdown rounds, injected faults, and
// process lifecycle. Read it back with System.Trace; `forkbench
// trace` renders it from the command line.
func WithTrace() Option {
	return func(c *config) { c.opts.Trace = true }
}

// WithConsole wires the machine's /dev/console output to w.
func WithConsole(w io.Writer) Option {
	return func(c *config) { c.opts.ConsoleOut = w }
}

// WithConsoleInput wires /dev/console reads to r (default: EOF).
func WithConsoleInput(r io.Reader) Option {
	return func(c *config) { c.opts.ConsoleIn = r }
}

// WithUserland restricts the installed userland to the named built-in
// programs (default: all of them; see Programs).
func WithUserland(names ...string) Option {
	return func(c *config) { c.userland = append(c.userland, names...) }
}

// WithProgram assembles src (the ulib runtime is appended) and
// installs the image at path.
func WithProgram(path, src string) Option {
	return func(c *config) { c.programs = append(c.programs, srcProgram{path, src}) }
}

// WithImage installs a pre-assembled KXI image at path.
func WithImage(path string, raw []byte) Option {
	return func(c *config) { c.images = append(c.images, rawImage{path, raw}) }
}

// WithRunBudget caps each Wait at n executed instructions; a command
// still running when the budget runs out fails rather than hanging the
// host (default: unlimited).
func WithRunBudget(n uint64) Option {
	return func(c *config) { c.runBudget = n }
}

// System is one booted simulated machine: a kernel with its userland
// installed and a host process from which commands are launched.
type System struct {
	k         *kernel.Kernel
	host      *kernel.Process
	runBudget uint64
}

// NewSystem boots a machine: kernel, userland in /bin, and a host
// process (pid 1) whose stdin/stdout/stderr are the console. Commands
// created with Command are children of the host.
func NewSystem(options ...Option) (*System, error) {
	var c config
	for _, o := range options {
		o(&c)
	}
	// sim is the convenience layer: zero-value options select the
	// conventional machine (the kernel itself requires them).
	if c.opts.RAMBytes == 0 {
		c.opts.RAMBytes = 4 << 30
	}
	if c.opts.NumCPUs == 0 {
		c.opts.NumCPUs = 1
	}
	k, err := kernel.New(c.opts)
	if err != nil {
		return nil, err
	}
	if c.userland == nil {
		if err := ulib.InstallAll(k); err != nil {
			return nil, err
		}
	} else {
		for _, name := range c.userland {
			if err := ulib.Install(k, name, "/bin/"+name); err != nil {
				return nil, err
			}
		}
	}
	s := &System{k: k, runBudget: c.runBudget}
	for _, p := range c.programs {
		if err := s.InstallProgram(p.path, p.src); err != nil {
			return nil, err
		}
	}
	for _, im := range c.images {
		if err := s.InstallImageBytes(im.path, im.raw); err != nil {
			return nil, err
		}
	}

	s.host = k.NewSynthetic("host", nil)
	console, err := k.FS().Resolve(nil, "/dev/console")
	if err != nil {
		return nil, err
	}
	for fd := 0; fd < 3; fd++ {
		flags := vfs.ORdOnly
		if fd > 0 {
			flags = vfs.OWrOnly
		}
		if err := s.host.FDs().InstallAt(vfs.NewOpenFile(console, flags), false, fd); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Programs lists the built-in userland programs, sorted.
func Programs() []string {
	names := make([]string, 0, len(ulib.Sources))
	for n := range ulib.Sources {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Kernel exposes the underlying simulated kernel — the substrate
// escape hatch for callers that need raw process-table, memory, or
// filesystem access.
func (s *System) Kernel() *kernel.Kernel { return s.k }

// Host returns the host process commands are launched from.
func (s *System) Host() *kernel.Process { return s.host }

// VirtualTime reports the machine's elapsed virtual time: the
// furthest-ahead CPU clock.
func (s *System) VirtualTime() time.Duration {
	return time.Duration(s.k.Elapsed())
}

// NumCPUs reports the machine's simulated CPU count.
func (s *System) NumCPUs() int { return s.k.NumCPUs() }

// Trace returns the machine's structured event trace, or nil when the
// system was booted without WithTrace.
func (s *System) Trace() *fault.Recorder { return s.k.Tracer() }

// Faults returns the machine's fault-injection engine — per-point
// operation counts plus the installed schedule — or nil when no
// schedule was ever installed.
func (s *System) Faults() *fault.Injector { return s.k.Faults() }

// SetFaultSchedule installs (or replaces) the fault schedule on a
// running machine. Installing after setup lets a harness warm a
// machine cleanly and then subject only the measured phase to chaos.
func (s *System) SetFaultSchedule(sched fault.Schedule) { s.k.SetFaultSchedule(sched) }

// Stats is a snapshot of the machine's counters.
type Stats struct {
	VirtualTime     time.Duration
	Instructions    uint64
	Syscalls        uint64
	PageFaults      uint64
	PageCopies      uint64
	ContextSwitches uint64
	OOMKills        int
	SegvKills       int

	// NumCPUs is the simulated CPU count; the per-CPU slices below
	// are indexed by CPU id.
	NumCPUs int
	// TLBShootdowns counts remote-CPU invalidation IPIs — the SMP
	// fork tax (always 0 on a 1-CPU machine).
	TLBShootdowns uint64
	// CPUBusy is each CPU's busy virtual time (clock minus idle).
	CPUBusy []time.Duration
	// CPUUtilization is CPUBusy over VirtualTime, per CPU (0 when
	// no time has passed).
	CPUUtilization []float64
}

// Stats snapshots the cost meter, kill counters, and per-CPU
// scheduler accounting.
func (s *System) Stats() Stats {
	m := s.k.Meter()
	st := Stats{
		VirtualTime:     time.Duration(s.k.Elapsed()),
		Instructions:    m.Instructions,
		Syscalls:        m.Syscalls,
		PageFaults:      m.PageFaults,
		PageCopies:      m.PageCopies,
		ContextSwitches: s.k.ContextSwitches(),
		OOMKills:        s.k.OOMKills,
		SegvKills:       s.k.SegvKills,

		NumCPUs:       s.k.NumCPUs(),
		TLBShootdowns: m.TLBShootdowns,
	}
	st.CPUBusy = make([]time.Duration, st.NumCPUs)
	st.CPUUtilization = make([]float64, st.NumCPUs)
	for _, cs := range s.k.CPUStates() {
		st.CPUBusy[cs.CPU] = time.Duration(cs.Busy)
		if st.VirtualTime > 0 {
			st.CPUUtilization[cs.CPU] = float64(cs.Busy) / float64(st.VirtualTime)
		}
	}
	return st
}

// InstallProgram assembles src (runtime appended) and installs it.
func (s *System) InstallProgram(path, src string) error {
	im, err := asm.Assemble(src + ulib.Runtime)
	if err != nil {
		return fmt.Errorf("sim: assemble %s: %w", path, err)
	}
	return s.k.InstallImage(path, im)
}

// InstallImageBytes validates raw as a KXI image and writes it at path.
func (s *System) InstallImageBytes(path string, raw []byte) error {
	if _, err := image.DecodeHeader(raw); err != nil {
		return fmt.Errorf("sim: %s: not a KXI image: %w", path, err)
	}
	_, err := s.k.FS().WriteFile(path, raw)
	return err
}

// WriteFile creates (or truncates) a simulated file with data.
func (s *System) WriteFile(path string, data []byte) error {
	_, err := s.k.FS().WriteFile(path, data)
	return err
}

// ReadFile returns a copy of a simulated file's contents.
func (s *System) ReadFile(path string) ([]byte, error) {
	ino, err := s.k.FS().Resolve(nil, path)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), ino.Data()...), nil
}

// ReadDir lists a simulated directory.
func (s *System) ReadDir(path string) ([]string, error) {
	return s.k.FS().ReadDir(nil, path)
}

// DirtyHost maps and write-touches an anonymous region of the given
// size in the host process, making it the large resident parent of the
// paper's Figure 1 sweeps. huge selects 2 MiB pages.
func (s *System) DirtyHost(bytes uint64, huge bool) error {
	if bytes == 0 {
		return nil
	}
	ps := uint64(mem.PageSize)
	if huge {
		ps = mem.HugeSize
	}
	bytes = (bytes + ps - 1) &^ (ps - 1)
	vma, err := s.host.Space().Map(0, bytes, addrspace.Read|addrspace.Write, addrspace.MapOpts{
		Kind: addrspace.KindAnon, Name: "workset", Huge: huge,
	})
	if err != nil {
		return fmt.Errorf("sim: dirty host: %w", err)
	}
	return s.host.Space().Touch(vma.Start, bytes, addrspace.AccessWrite)
}
