package cluster

import (
	"errors"
	"testing"

	"repro/sim"
	"repro/sim/fleet"
)

// TestSpecValidate drives cluster.Spec validation through every typed
// failure: each bad spec must yield a *fleet.SpecError naming the
// cluster spec and the offending field.
func TestSpecValidate(t *testing.T) {
	pool := func(mutate func(*PoolSpec)) []PoolSpec {
		p := PoolSpec{Name: "web", Via: sim.Spawn, CPUs: 2, HeapBytes: 1 << 20}
		if mutate != nil {
			mutate(&p)
		}
		return []PoolSpec{p}
	}
	cases := []struct {
		name  string
		spec  Spec
		field string // "" means valid
	}{
		{"zero pool list", Spec{}, "Pools"},
		{"minimal valid", Spec{Pools: pool(nil)}, ""},
		{"negative zones", Spec{Pools: pool(nil), Zones: -1}, "Zones"},
		{"too many zones", Spec{Pools: pool(nil), Zones: 17}, "Zones"},
		{"negative target", Spec{Pools: pool(nil), TargetUtilization: -0.5}, "TargetUtilization"},
		{"target above one", Spec{Pools: pool(nil), TargetUtilization: 1.5}, "TargetUtilization"},
		{"negative scale-down window", Spec{Pools: pool(nil), ScaleDownAfter: -1}, "ScaleDownAfter"},
		{"negative cordon", Spec{Pools: pool(nil), CordonSteps: -1}, "CordonSteps"},
		{"negative request work", Spec{Pools: pool(nil), RequestWorkMiB: -1}, "RequestWorkMiB"},
		{"empty traffic phase", Spec{Pools: pool(nil), Traffic: []Phase{{Steps: 0, PerStep: 1}}}, "Traffic[0].Steps"},
		{"negative per-step", Spec{Pools: pool(nil), Traffic: []Phase{{Steps: 1, PerStep: -1}}}, "Traffic[0].PerStep"},
		{"unnamed pool", Spec{Pools: pool(func(p *PoolSpec) { p.Name = "" })}, "Pools[0].Name"},
		{"duplicate pool name", Spec{Pools: append(pool(nil), pool(nil)...)}, "Pools[web].Name"},
		{"unknown strategy", Spec{Pools: pool(func(p *PoolSpec) { p.Via = sim.Strategy(99) })}, "Pools[web].Via"},
		{"negative cpus", Spec{Pools: pool(func(p *PoolSpec) { p.CPUs = -2 })}, "Pools[web].CPUs"},
		{"too many cpus", Spec{Pools: pool(func(p *PoolSpec) { p.CPUs = 65 })}, "Pools[web].CPUs"},
		{"negative workers", Spec{Pools: pool(func(p *PoolSpec) { p.Workers = -1 })}, "Pools[web].Workers"},
		{"zero min machines", Spec{Pools: pool(func(p *PoolSpec) { p.MinMachines = -3 })}, "Pools[web].MinMachines"},
		{"min above max", Spec{Pools: pool(func(p *PoolSpec) { p.MinMachines = 5; p.MaxMachines = 2 })}, "Pools[web].MinMachines"},
		{"machine cap", Spec{Pools: pool(func(p *PoolSpec) { p.MaxMachines = 65 })}, "Pools[web].MaxMachines"},
		{"negative surge", Spec{Pools: pool(func(p *PoolSpec) { p.MaxSurge = -1 })}, "Pools[web].MaxSurge"},
		{"zone out of range", Spec{Pools: pool(func(p *PoolSpec) { p.Zones = []int{0, 7} })}, "Pools[web].Zones"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if tc.field == "" {
				if err != nil {
					t.Fatalf("valid spec rejected: %v", err)
				}
				return
			}
			var se *fleet.SpecError
			if !errors.As(err, &se) {
				t.Fatalf("Validate() = %v, want *fleet.SpecError", err)
			}
			if se.Spec != "cluster.Spec" {
				t.Errorf("Spec = %q, want cluster.Spec", se.Spec)
			}
			if se.Field != tc.field {
				t.Errorf("Field = %q, want %q (err: %v)", se.Field, tc.field, err)
			}
		})
	}
}

// TestRunRejectsInvalidSpec: Run validates before touching any
// machine and surfaces the same typed error.
func TestRunRejectsInvalidSpec(t *testing.T) {
	_, err := Run(Spec{})
	var se *fleet.SpecError
	if !errors.As(err, &se) || se.Field != "Pools" {
		t.Fatalf("Run(zero spec) = %v, want SpecError on Pools", err)
	}
}

// TestWithDefaults pins the derived values the scenarios rely on.
func TestWithDefaults(t *testing.T) {
	s := Spec{Pools: []PoolSpec{{Name: "p", Via: sim.ForkExec}}}.withDefaults()
	if s.Zones != 3 || s.TargetUtilization != 0.70 || s.ReconcileEveryNanos != 2_000_000 {
		t.Errorf("cluster defaults wrong: zones=%d target=%v step=%d", s.Zones, s.TargetUtilization, s.ReconcileEveryNanos)
	}
	if s.SLONanos != 3*s.ReconcileEveryNanos {
		t.Errorf("SLO default %d, want 3 steps", s.SLONanos)
	}
	p := s.Pools[0]
	if p.CPUs != 2 || p.HeapBytes != 64<<20 || p.MinMachines != 1 || p.MaxMachines != 4 || p.MaxSurge != 2 {
		t.Errorf("pool defaults wrong: %+v", p)
	}
	if len(s.Traffic) == 0 || s.MaxSteps == 0 {
		t.Errorf("traffic/max-steps defaults missing: %+v", s)
	}
}
