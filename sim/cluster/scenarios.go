package cluster

import (
	"fmt"

	"repro/sim"
	"repro/sim/fault"
)

// Scenario names a cluster-level workload preset. The string form is
// the CLI name (`forkbench cluster -scenario ...`).
type Scenario string

// Cluster scenarios.
const (
	// Surge is the headline A/B experiment: a fork pool and a spawn
	// pool, identical shapes, each offered the same traffic — a calm
	// baseline, then a spike that forces both to scale out. The fork
	// pool's new machines pay Θ(heap) per pool worker warming up, so
	// its scale-out latency grows with the heap while the spawn
	// pool's stays flat — and the backlog that piles up while fork
	// capacity is still booting is the SLO gap E12 reports.
	Surge Scenario = "surge"
	// ZoneOutage kills every machine in one availability zone
	// mid-run (fault.KillZone): their requests requeue, the zone is
	// cordoned, and the autoscaler backfills the pool floor in the
	// surviving zones.
	ZoneOutage Scenario = "zoneoutage"
	// HeteroPools shares one request stream across a 1/2/4/8-CPU
	// machine ladder: the balancer weighs machines by shape, so big
	// machines take proportionally more traffic (bin-packing).
	HeteroPools Scenario = "heteropools"
	// NetSplit partitions one availability zone off the network
	// mid-run (fault.ZonePartition): its machines stay alive but the
	// balancer's reachability probe excludes them, so traffic
	// concentrates in the surviving zones until the partition heals —
	// an outage with no kills, no requeues, and full recovery.
	NetSplit Scenario = "netsplit"
)

// Scenarios lists every cluster scenario, in a fixed order.
func Scenarios() []Scenario { return []Scenario{Surge, ZoneOutage, HeteroPools, NetSplit} }

// ParseScenario maps a CLI name to its Scenario.
func ParseScenario(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if name == string(s) {
			return s, nil
		}
	}
	return "", fmt.Errorf("cluster: unknown scenario %q (surge|zoneoutage|heteropools|netsplit)", name)
}

// surgeStep is the surge preset's reconcile interval: wide enough
// that one 2-CPU machine clears a request per step even under fork.
const surgeStep = 4_000_000

// SurgeSpec builds the Surge scenario at the given server heap: fork
// and spawn pools of identical shape (2 CPUs, 12 warm workers, 3..8
// machines), a calm baseline, a 6x spike, and an idle tail that lets
// the pools scale back down.
func SurgeSpec(heapBytes uint64) Spec {
	pool := func(name string, via sim.Strategy) PoolSpec {
		return PoolSpec{
			Name: name, Via: via, CPUs: 2, HeapBytes: heapBytes,
			Workers: 12, MinMachines: 3, MaxMachines: 8, MaxSurge: 2,
		}
	}
	return Spec{
		Pools:               []PoolSpec{pool("fork", sim.ForkExec), pool("spawn", sim.Spawn)},
		ReconcileEveryNanos: surgeStep,
		RequestWorkMiB:      4,
		Traffic: []Phase{
			{Steps: 8, PerStep: 1},   // baseline: the floor serves comfortably
			{Steps: 16, PerStep: 24}, // spike: both pools must scale out
			{Steps: 24, PerStep: 0},  // idle tail: drain, then scale back down
		},
	}
}

// ZoneOutageSpec builds the ZoneOutage scenario: one spawn pool
// spread over 3 zones, steady traffic, and an outage that kills every
// zone-0 machine between steps 10 and 20. The pool floor backfills in
// the surviving zones while zone 0 stays cordoned.
func ZoneOutageSpec(heapBytes uint64) Spec {
	return Spec{
		Pools: []PoolSpec{{
			Name: "web", Via: sim.Spawn, CPUs: 2, HeapBytes: heapBytes,
			MinMachines: 3, MaxMachines: 6,
		}},
		Zones:               3,
		ReconcileEveryNanos: surgeStep,
		RequestWorkMiB:      4,
		Traffic:             []Phase{{Steps: 40, PerStep: 4}},
		Faults:              fault.KillZone(0, 10*surgeStep, 20*surgeStep),
	}
}

// HeteroPoolsSpec builds the HeteroPools scenario: one shared request
// stream over four single-machine pools shaped 1/2/4/8 CPUs, so the
// balancer's CPU weighting — not pool identity — decides placement.
func HeteroPoolsSpec(heapBytes uint64) Spec {
	pool := func(cpus int) PoolSpec {
		return PoolSpec{
			Name: fmt.Sprintf("cpu%d", cpus), Via: sim.Spawn, CPUs: cpus,
			HeapBytes: heapBytes, MinMachines: 1, MaxMachines: 2,
		}
	}
	return Spec{
		Pools:               []PoolSpec{pool(1), pool(2), pool(4), pool(8)},
		ReconcileEveryNanos: surgeStep,
		RequestWorkMiB:      4,
		SharedStream:        true,
		Traffic:             []Phase{{Steps: 8, PerStep: 8}, {Steps: 12, PerStep: 16}},
	}
}

// NetSplitSpec builds the NetSplit scenario: one spawn pool over 3
// zones, steady traffic, and a partition that cuts zone 0 off the
// network between steps 10 and 20. The machines there stay alive —
// nothing is killed or requeued — but the balancer's reachability
// probe routes around them until the partition heals.
func NetSplitSpec(heapBytes uint64) Spec {
	return Spec{
		Pools: []PoolSpec{{
			Name: "web", Via: sim.Spawn, CPUs: 2, HeapBytes: heapBytes,
			MinMachines: 3, MaxMachines: 6,
		}},
		Zones:               3,
		ReconcileEveryNanos: surgeStep,
		RequestWorkMiB:      4,
		Traffic:             []Phase{{Steps: 40, PerStep: 4}},
		Faults:              fault.ZonePartition{Zone: 0, From: 10 * surgeStep, Until: 20 * surgeStep},
	}
}

// SpecFor builds the named scenario's Spec at the given heap (0
// selects 64 MiB).
func SpecFor(s Scenario, heapBytes uint64) (Spec, error) {
	if heapBytes == 0 {
		heapBytes = 64 << 20
	}
	switch s {
	case Surge:
		return SurgeSpec(heapBytes), nil
	case ZoneOutage:
		return ZoneOutageSpec(heapBytes), nil
	case HeteroPools:
		return HeteroPoolsSpec(heapBytes), nil
	case NetSplit:
		return NetSplitSpec(heapBytes), nil
	}
	return Spec{}, fmt.Errorf("cluster: unknown scenario %q", s)
}
