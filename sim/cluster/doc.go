// Package cluster is a deterministic autoscaling control loop above
// sim/fleet: named node pools of simulated machines, scaled between
// declared bounds by a reconcile loop that watches per-machine load
// and boots or retires capacity — fork()'s costs at the layer where
// clouds actually feel them.
//
// "A fork() in the road" prices process creation per call: fork is
// Θ(parent heap), spawn is flat. This package asks what that does to
// *elasticity*. A new machine is not useful when it boots; it is
// useful when it is warm — heap dirtied, worker pool pre-created
// through the pool's strategy. Under fork every warm worker duplicates
// the freshly dirtied heap's page tables, so a fork pool's scale-out
// latency grows with the heap while a spawn pool's stays flat; during
// a traffic surge that latency is backlog, and backlog is missed SLOs
// (experiment E12, `forkbench cluster`).
//
// The reconcile loop advances a cluster-wide virtual clock in
// ReconcileEvery steps. Each step, in a fixed order: machine-kill
// faults (fault.PointMachineKill — fault.KillZone gives zone-scoped
// outages with cordon-and-backfill), request arrivals from the traffic
// plan, deterministic balancing (seeded power-of-two-choices, CPU-
// weighted, machine-id tie-broken), host-parallel serving (each
// machine a sim.System on its own clock, budgeted to the step), then
// per-pool autoscaling against TargetUtilization. Machines boot
// *inside* virtual time: a scale-out decided at step s takes traffic
// only after its measured warm-up elapses, so scale-out latency is a
// first-class, strategy-dependent output. Every cross-machine decision
// happens at a step barrier in (pool, machine-id) order, so the Report
// — trace included — is byte-identical at any GOMAXPROCS.
//
// Scenarios: Surge (fork pool vs spawn pool racing the same spike),
// ZoneOutage (zone-scoped kills, backfill in surviving zones),
// HeteroPools (one stream bin-packed across a 1/2/4/8-CPU ladder),
// and NetSplit (fault.ZonePartition severs a zone's links without
// killing its machines; the balancer's reachability probe routes
// around the partition until it heals — see README "Inter-machine
// network & metrics").
//
// Draining by killing is not the only move the stack knows: the
// checkpoint/migration plane (sim.Process.Checkpoint, sim/load's
// Migrate cell, sim/fleet's Rebalance wave) relocates a running
// worker for its stop-and-copy downtime instead of a machine's full
// re-warm tax — the cluster-layer version (migrate a zone out rather
// than kill and backfill) is ROADMAP item 3.
//
// Scale-out machines boot from frozen server templates
// (load.ServerTemplates over sim.System.Snapshot): the ready-to-serve
// master is warmed once per shape and host-COW-stamped per node, so
// the *host* cost of a scale-out stops being Θ(heap) while the
// *virtual* warm-up latency the autoscaler measures is unchanged (see
// README "Template machines & O(1) clone").
package cluster
