package cluster

import (
	"fmt"
	"math"
	"time"

	"repro/sim/fault"
	"repro/sim/fleet"
	"repro/sim/load"
)

// machine is one live cluster machine: a fleet.Machine plus the
// reconcile loop's bookkeeping. The loop's virtual clock advances in
// ReconcileEvery steps; the machine's own clock runs ahead inside each
// step (warm-up, then each batch), and cum tracks how much of the
// loop's elapsed time it has already spent serving.
type machine struct {
	id, pool, zone int
	fm             *fleet.Machine

	// readyStep is the first step the machine takes traffic: 0 for
	// the pre-warmed initial machines, decision step + warm-up for
	// scaled-out ones.
	readyStep int

	// queue holds the arrival step of every request routed here and
	// not yet served (FIFO).
	queue []int

	// cum is the serve time consumed so far, against a budget of
	// (step+1-readyStep) * dt. Idle steps do not bank: the budget is
	// re-clamped each step.
	cum uint64

	// batch is the current step's serve result (scratch, merged at
	// the step barrier).
	batch load.Batch
}

// ready reports whether the machine takes traffic at step.
func (m *machine) ready(step int) bool { return m.readyStep <= step }

// load is the balancer's comparison key: queued requests (plus this
// step's assignments) per CPU. Compared cross-multiplied to stay in
// integers.
func (m *machine) queued() int { return len(m.queue) }

// poolState is one pool's live machines and cumulative accounting.
type poolState struct {
	idx  int
	spec PoolSpec
	zs   []int // resolved placement zones

	machines []*machine // live, ascending id
	backlog  []int      // un-routed arrivals (arrival step), unshared mode
	lowSteps int        // consecutive low-utilization steps
	nextZone int        // round-robin placement cursor

	served, failed, sloMet uint64
	latencySum, latencyMax uint64
	cumServeNanos          uint64
	scaleOuts              []ScaleOut
	scaleDowns, killed     int
	booted, peakMachines   int
	warmupPTEs             uint64
	peakMachineRSS         uint64
	drains                 []load.DrainStats
}

// estCost is the pool's measured mean per-request serve time, the
// demand projection for queued requests. Before anything has been
// served it assumes one full step per request — pessimistic, so a
// cold pool under load scales out rather than stalls.
func (p *poolState) estCost(dt uint64) float64 {
	if p.served+p.failed == 0 {
		return float64(dt)
	}
	return float64(p.cumServeNanos) / float64(p.served+p.failed)
}

// engine is one run's state.
type engine struct {
	spec    Spec
	dt      uint64
	pools   []*poolState
	shared  []int // global backlog (shared-stream mode)
	nextID  int
	killSeq uint64
	netSeq  uint64 // balancer reachability-probe op counter
	// lastKill[z] is the most recent step a kill fired in zone z
	// (-1: never); zones stay cordoned CordonSteps after it.
	lastKill []int
	trace    []string
	workers  int

	// boots caches one frozen warmed server template per machine
	// shape: the first boot of a shape warms it for real, every later
	// scale-out of that shape is stamped from the template in O(live
	// structures) host time instead of Θ(heap). Virtual-time behaviour
	// (measured scale-out latency included) is identical either way.
	boots *load.ServerTemplates
}

// Run executes the cluster to completion: boot the pools' minimum
// machines pre-warmed, then reconcile step by step — kills, arrivals,
// balance, serve, autoscale, boot — until the traffic plan is
// exhausted and every queue has drained. The Report is a pure function
// of the Spec: byte-identical at any GOMAXPROCS.
func Run(spec Spec) (*Report, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	e := &engine{
		spec:     spec,
		dt:       spec.ReconcileEveryNanos,
		lastKill: make([]int, spec.Zones),
		workers:  fleet.PoolSize(spec.Parallelism, 0),
		boots:    load.NewServerTemplates(),
	}
	for z := range e.lastKill {
		e.lastKill[z] = -1
	}
	for i, ps := range spec.Pools {
		e.pools = append(e.pools, &poolState{idx: i, spec: ps, zs: ps.zones(spec.Zones)})
	}

	// Pre-warm the floor: every pool's MinMachines boot before the
	// clock starts and are ready at step 0 — their warm-up is the
	// steady state's sunk cost, not scale-out latency.
	var boots []*machine
	for _, p := range e.pools {
		for i := 0; i < p.spec.MinMachines; i++ {
			boots = append(boots, e.allocMachine(p, 0))
		}
	}
	if err := e.boot(boots); err != nil {
		return nil, err
	}
	for _, m := range boots {
		m.readyStep = 0
	}

	steps, err := e.loop()
	if err != nil {
		return nil, err
	}
	e.retireAll()
	rep := e.report(steps)
	rep.HostElapsed = time.Since(start)
	rep.HostWorkers = e.workers
	return rep, nil
}

// allocMachine assigns the next machine id and a placement zone in
// pool p (round-robin over the pool's zones, skipping cordoned ones
// when any alternative survives), and registers the machine live.
// The fleet.Machine itself boots later, host-parallel.
func (e *engine) allocMachine(p *poolState, step int) *machine {
	zone := -1
	for try := 0; try < len(p.zs); try++ {
		z := p.zs[(p.nextZone+try)%len(p.zs)]
		if !e.cordoned(z, step) {
			zone = z
			p.nextZone = (p.nextZone + try + 1) % len(p.zs)
			break
		}
	}
	if zone == -1 { // every placement zone is cordoned: place anyway
		zone = p.zs[p.nextZone%len(p.zs)]
		p.nextZone = (p.nextZone + 1) % len(p.zs)
	}
	m := &machine{id: e.nextID, pool: p.idx, zone: zone}
	e.nextID++
	p.machines = append(p.machines, m)
	p.booted++
	if len(p.machines) > p.peakMachines {
		p.peakMachines = len(p.machines)
	}
	return m
}

// cordoned reports whether zone z is still avoided at step.
func (e *engine) cordoned(z, step int) bool {
	return e.lastKill[z] >= 0 && step-e.lastKill[z] < e.spec.CordonSteps
}

// boot builds the fleet.Machines for the allocated shells,
// host-parallel, merging in id order.
func (e *engine) boot(ms []*machine) error {
	if len(ms) == 0 {
		return nil
	}
	err := fleet.ForEach(fleet.PoolSize(e.spec.Parallelism, len(ms)), len(ms), func(i int) error {
		m := ms[i]
		ps := e.pools[m.pool].spec
		fm, err := fleet.NewMachineFrom(e.boots, m.id, m.zone, load.Config{
			Via:            ps.Via,
			CPUs:           ps.CPUs,
			HeapBytes:      ps.HeapBytes,
			Workers:        ps.Workers,
			RequestWorkMiB: e.spec.RequestWorkMiB,
		})
		if err != nil {
			return fmt.Errorf("cluster: boot machine %d (pool %s): %w", m.id, ps.Name, err)
		}
		m.fm = fm
		return nil
	})
	if err != nil {
		return err
	}
	for _, m := range ms {
		e.pools[m.pool].warmupPTEs += m.fm.WarmupPTECopies()
	}
	return nil
}

// arrivals reports how many requests arrive at step (per pool in
// unshared mode, cluster-wide in shared mode).
func (e *engine) arrivals(step int) int {
	for _, ph := range e.spec.Traffic {
		if step < ph.Steps {
			return ph.PerStep
		}
		step -= ph.Steps
	}
	return 0
}

// trafficSteps is the arrival plan's length.
func (e *engine) trafficSteps() int {
	n := 0
	for _, ph := range e.spec.Traffic {
		n += ph.Steps
	}
	return n
}

// tracef appends one reconcile-trace line.
func (e *engine) tracef(format string, args ...any) {
	e.trace = append(e.trace, fmt.Sprintf(format, args...))
}

// loop runs the reconcile steps until the work is done, returning the
// step count.
func (e *engine) loop() (int, error) {
	for step := 0; step < e.spec.MaxSteps; step++ {
		// Machines finishing their warm-up this step join the
		// balancer's candidate set.
		for _, p := range e.pools {
			for _, m := range p.machines {
				if m.readyStep == step && step > 0 {
					e.tracef("step %04d pool %s machine %d ready (zone %d)", step, p.spec.Name, m.id, m.zone)
				}
			}
		}
		e.kills(step)
		if n := e.arrivals(step); n > 0 {
			for _, p := range e.pools {
				for i := 0; i < n; i++ {
					if e.spec.SharedStream {
						e.shared = append(e.shared, step)
					} else {
						p.backlog = append(p.backlog, step)
					}
				}
				if e.spec.SharedStream {
					break // one global stream, not one per pool
				}
			}
		}
		e.balance(step)
		if err := e.serve(step); err != nil {
			return 0, err
		}
		stepServe := e.merge(step)
		scaled := e.autoscale(step, stepServe)
		if err := e.boot(scaled); err != nil {
			return 0, err
		}
		e.bootReady(scaled)
		if e.done(step) {
			return step + 1, nil
		}
	}
	return e.spec.MaxSteps, fmt.Errorf("cluster: backlog not drained after %d steps (fleet under-provisioned for the traffic plan)", e.spec.MaxSteps)
}

// kills consults the fault schedule once per live machine, in
// (pool, id) order on the cluster clock. A killed machine's queue is
// requeued (the requests retry, keeping their arrival step) and its
// zone is cordoned.
func (e *engine) kills(step int) {
	if e.spec.Faults == nil {
		return
	}
	now := fault.Ticks(uint64(step) * e.dt)
	for _, p := range e.pools {
		alive := p.machines[:0]
		for _, m := range p.machines {
			e.killSeq++
			dec := e.spec.Faults.Decide(fault.Op{
				Point: fault.PointMachineKill, Seq: e.killSeq, Time: now, Mag: uint64(m.zone),
			})
			if dec == fault.OK {
				alive = append(alive, m)
				continue
			}
			e.lastKill[m.zone] = step
			p.killed++
			e.tracef("step %04d zone %d kill machine %d (pool %s, %d queued requeued)",
				step, m.zone, m.id, p.spec.Name, len(m.queue))
			// The lost machine's requests retry elsewhere; its sim is
			// abandoned (a crash keeps no books).
			if e.spec.SharedStream {
				e.shared = append(e.shared, m.queue...)
			} else {
				p.backlog = append(p.backlog, m.queue...)
			}
			if m.fm != nil {
				if rss := m.fm.PeakRSSBytes(); rss > p.peakMachineRSS {
					p.peakMachineRSS = rss
				}
			}
		}
		p.machines = alive
	}
}

// reachable probes whether the balancer can currently deliver to m:
// one fault.PointNetDeliver decision with magnitude = the machine's
// zone, on the cluster clock. A fault.ZonePartition schedule makes a
// whole zone's machines unreachable for its window — they stay alive
// (unlike kills) but take no traffic until the partition heals.
func (e *engine) reachable(m *machine, step int) bool {
	if e.spec.Faults == nil {
		return true
	}
	e.netSeq++
	dec := e.spec.Faults.Decide(fault.Op{
		Point: fault.PointNetDeliver, Seq: e.netSeq,
		Time: fault.Ticks(uint64(step) * e.dt), Mag: uint64(m.zone),
	})
	return dec == fault.OK
}

// balance routes backlog onto ready machines: power-of-two-choices
// with seeded hashing, less-loaded-per-CPU wins, lower machine id
// breaks ties. Unrouteable backlog (no ready machine, or none the
// balancer can reach) waits.
func (e *engine) balance(step int) {
	assigned := make(map[*machine]int)
	unreachable := 0
	ready := func(m *machine) bool {
		if !m.ready(step) {
			return false
		}
		if !e.reachable(m, step) {
			unreachable++
			return false
		}
		return true
	}
	route := func(stream *[]int, cands []*machine, salt uint64) {
		if len(cands) == 0 {
			return
		}
		for i, arrival := range *stream {
			a := cands[hash(e.spec.Seed, salt, uint64(step), uint64(i), 0)%uint64(len(cands))]
			b := cands[hash(e.spec.Seed, salt, uint64(step), uint64(i), 1)%uint64(len(cands))]
			pick := a
			// Compare (queued+assigned)/CPUs cross-multiplied; the
			// lower machine id wins exact ties.
			la := (a.queued() + assigned[a]) * e.pools[b.pool].spec.CPUs
			lb := (b.queued() + assigned[b]) * e.pools[a.pool].spec.CPUs
			if lb < la || (lb == la && b.id < a.id) {
				pick = b
			}
			pick.queue = append(pick.queue, arrival)
			assigned[pick]++
		}
		*stream = (*stream)[:0]
	}
	if e.spec.SharedStream {
		var cands []*machine
		for _, p := range e.pools {
			for _, m := range p.machines {
				if ready(m) {
					cands = append(cands, m)
				}
			}
		}
		route(&e.shared, cands, 0)
	} else {
		for _, p := range e.pools {
			var cands []*machine
			for _, m := range p.machines {
				if ready(m) {
					cands = append(cands, m)
				}
			}
			route(&p.backlog, cands, uint64(p.idx)+1)
		}
	}
	if unreachable > 0 {
		e.tracef("step %04d balance: %d machine(s) unreachable (network partition)", step, unreachable)
	}
}

// serve runs every ready machine's batch host-parallel. Each machine
// gets one step of budget, minus whatever its clock already overshot:
// idle time does not bank, so a surge cannot be absorbed by banked
// budget from quiet steps.
func (e *engine) serve(step int) error {
	var due []*machine
	for _, p := range e.pools {
		for _, m := range p.machines {
			m.batch = load.Batch{}
			if m.ready(step) && len(m.queue) > 0 {
				due = append(due, m)
			}
		}
	}
	if len(due) == 0 {
		return nil
	}
	return fleet.ForEach(fleet.PoolSize(e.spec.Parallelism, len(due)), len(due), func(i int) error {
		m := due[i]
		allot := uint64(step+1-m.readyStep) * e.dt
		owed := uint64(step-m.readyStep) * e.dt
		if m.cum > owed { // a past batch overshot its budget; the debt eats into this step
			owed = m.cum
		}
		if owed >= allot {
			return nil
		}
		b, err := m.fm.Serve(len(m.queue), allot-owed)
		if err != nil {
			return fmt.Errorf("cluster: machine %d (pool %s): %w", m.id, e.pools[m.pool].spec.Name, err)
		}
		m.batch = b
		return nil
	})
}

// merge folds every machine's batch into its pool at the step barrier,
// in (pool, id) order: pop served requests FIFO, score latency against
// the SLO. Returns per-pool serve nanos for this step (the autoscaler's
// utilization input).
func (e *engine) merge(step int) []uint64 {
	stepServe := make([]uint64, len(e.pools))
	for pi, p := range e.pools {
		for _, m := range p.machines {
			b := m.batch
			if b.Served+b.Failed == 0 {
				continue
			}
			m.cum += b.Nanos
			p.cumServeNanos += b.Nanos
			stepServe[pi] += b.Nanos
			done := b.Served + b.Failed
			if done > len(m.queue) {
				done = len(m.queue)
			}
			for i := 0; i < done; i++ {
				arrival := m.queue[i]
				if i < b.Served {
					lat := uint64(step-arrival+1) * e.dt
					p.served++
					p.latencySum += lat
					if lat > p.latencyMax {
						p.latencyMax = lat
					}
					if lat <= e.spec.SLONanos {
						p.sloMet++
					}
				} else {
					p.failed++
				}
			}
			m.queue = m.queue[done:]
		}
	}
	return stepServe
}

// autoscale makes each pool's scaling decision, in pool order,
// returning the machine shells to boot. Projected utilization is
// (this step's serve time + queued demand at the measured per-request
// cost) over ready capacity; scale out toward the target under the
// surge cap, scale in one machine after ScaleDownAfter idle steps.
func (e *engine) autoscale(step int, stepServe []uint64) []*machine {
	var boots []*machine
	for pi, p := range e.pools {
		ready, booting, queued := 0, 0, 0
		for _, m := range p.machines {
			if m.ready(step) {
				ready++
			} else {
				booting++
			}
			queued += len(m.queue)
		}
		queued += e.poolBacklog(p)
		var util float64
		if ready > 0 {
			demand := float64(stepServe[pi]) + float64(queued)*p.estCost(e.dt)
			util = demand / (float64(ready) * float64(e.dt))
		} else if queued > 0 {
			util = math.Inf(1)
		}

		target := e.spec.TargetUtilization
		desired := ready
		if util > 0 {
			desired = int(math.Ceil(float64(ready) * util / target))
			if ready == 0 {
				desired = 1
			}
		}
		// The pool floor holds even after kills: a zone outage that
		// drops the pool below MinMachines backfills immediately (in
		// surviving zones — the dead one is cordoned).
		if desired < p.spec.MinMachines {
			desired = p.spec.MinMachines
		}
		total := ready + booting
		if desired > total {
			add := desired - total
			if add > p.spec.MaxSurge {
				add = p.spec.MaxSurge
			}
			if total+add > p.spec.MaxMachines {
				add = p.spec.MaxMachines - total
			}
			if add > 0 {
				p.lowSteps = 0
				for i := 0; i < add; i++ {
					m := e.allocMachine(p, step)
					// Decision is at the end of this step; bootReady
					// adds the measured warm-up once the shell boots.
					m.readyStep = -(step + 1)
					boots = append(boots, m)
					e.tracef("step %04d pool %s scale-up machine %d (zone %d, util %.3f, %d ready + %d booting)",
						step, p.spec.Name, m.id, m.zone, util, ready, booting)
				}
				continue
			}
		}

		// Scale-in: sustained low utilization, nothing queued, nothing
		// booting — retire the newest drained machine.
		if util < target/2 && queued == 0 && booting == 0 && ready > p.spec.MinMachines {
			p.lowSteps++
			if p.lowSteps >= e.spec.ScaleDownAfter {
				if e.scaleDown(p, step, util) {
					p.lowSteps = 0
				}
			}
		} else {
			p.lowSteps = 0
		}
	}
	return boots
}

// bootReady finishes a scale-out after the machine booted: its
// measured warm-up, rounded up to whole steps, sets when it joins the
// balancer, and the scale-out event is recorded.
func (e *engine) bootReady(ms []*machine) {
	for _, m := range ms {
		decision := -m.readyStep // end of step decision-1 == start of step decision
		warmSteps := int((m.fm.WarmupNanos() + e.dt - 1) / e.dt)
		m.readyStep = decision + warmSteps
		p := e.pools[m.pool]
		lat := uint64(warmSteps) * e.dt
		p.scaleOuts = append(p.scaleOuts, ScaleOut{
			Machine: m.id, Zone: m.zone, DecisionStep: decision - 1,
			ReadyStep: m.readyStep, LatencyNanos: lat,
		})
	}
}

// scaleDown retires the highest-id drained ready machine; reports
// whether one was found.
func (e *engine) scaleDown(p *poolState, step int, util float64) bool {
	for i := len(p.machines) - 1; i >= 0; i-- {
		m := p.machines[i]
		if !m.ready(step) || len(m.queue) > 0 {
			continue
		}
		if rss := m.fm.PeakRSSBytes(); rss > p.peakMachineRSS {
			p.peakMachineRSS = rss
		}
		stats, err := m.fm.Retire()
		if err == nil {
			p.drains = append(p.drains, stats)
		}
		p.machines = append(p.machines[:i], p.machines[i+1:]...)
		p.scaleDowns++
		e.tracef("step %04d pool %s scale-down machine %d (util %.3f, %d left)",
			step, p.spec.Name, m.id, util, len(p.machines))
		return true
	}
	return false
}

// poolBacklog is the pool's un-routed arrivals (its share of the
// global stream in shared mode, by ready CPU weight).
func (e *engine) poolBacklog(p *poolState) int {
	if !e.spec.SharedStream {
		return len(p.backlog)
	}
	totalCPUs, poolCPUs := 0, 0
	for _, q := range e.pools {
		for range q.machines {
			totalCPUs += q.spec.CPUs
			if q.idx == p.idx {
				poolCPUs += q.spec.CPUs
			}
		}
	}
	if totalCPUs == 0 {
		return len(e.shared)
	}
	return len(e.shared) * poolCPUs / totalCPUs
}

// done reports whether the run can stop: traffic exhausted and every
// backlog and machine queue empty.
func (e *engine) done(step int) bool {
	if step+1 < e.trafficSteps() || len(e.shared) > 0 {
		return false
	}
	for _, p := range e.pools {
		if len(p.backlog) > 0 {
			return false
		}
		for _, m := range p.machines {
			if len(m.queue) > 0 {
				return false
			}
		}
	}
	return true
}

// retireAll drains every surviving machine in (pool, id) order,
// closing the books for the leak invariant.
func (e *engine) retireAll() {
	for _, p := range e.pools {
		for _, m := range p.machines {
			if m.fm == nil {
				continue
			}
			if rss := m.fm.PeakRSSBytes(); rss > p.peakMachineRSS {
				p.peakMachineRSS = rss
			}
			if stats, err := m.fm.Retire(); err == nil {
				p.drains = append(p.drains, stats)
			}
		}
	}
}

// hash is splitmix64 over the fold of its inputs — the balancer's
// deterministic candidate picker.
func hash(vals ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		h = mix(h ^ v)
	}
	return h
}

func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
