package cluster

import (
	"fmt"

	"repro/sim"
	"repro/sim/fault"
	"repro/sim/fleet"
)

// PoolSpec declares one named node pool: a homogeneous set of machines
// sharing a shape (CPUs, heap), a process-creation strategy, and
// scaling bounds. The autoscaler grows and shrinks each pool
// independently between MinMachines and MaxMachines.
type PoolSpec struct {
	// Name identifies the pool in reports and traces. Required,
	// unique within the Spec.
	Name string

	// Via is the strategy every machine in the pool creates request
	// workers (and its warm pool) through — the experiment variable:
	// a fork pool's machines pay Θ(heap) per worker, a spawn pool's
	// do not.
	Via sim.Strategy

	// CPUs is the machine shape (default 2). The balancer weighs
	// machines by it, so big machines take proportionally more
	// traffic.
	CPUs int

	// HeapBytes is each machine's resident server heap (default
	// 64 MiB) — what fork must duplicate page tables for, per worker,
	// at boot and per request while serving.
	HeapBytes uint64

	// Workers is the warm worker pool each machine pre-creates while
	// booting (default 4x the machine's CPUs) — the warm-up tax that
	// makes scale-out latency strategy-dependent.
	Workers int

	// MinMachines and MaxMachines bound the pool (defaults 1 and
	// max(4, MinMachines)). The initial MinMachines machines are
	// pre-warmed: ready at step 0, excluded from scale-out latency.
	MinMachines int
	MaxMachines int

	// MaxSurge caps machines added per reconcile step (default 2).
	MaxSurge int

	// Zones restricts placement to these availability-zone indices
	// (default: all of Spec.Zones). Placement round-robins across
	// them, skipping cordoned (recently killed) zones.
	Zones []int
}

// Phase is one segment of the arrival plan: PerStep requests arrive at
// each of Steps consecutive reconcile steps.
type Phase struct {
	Steps   int `json:"steps"`
	PerStep int `json:"per_step"`
}

// Spec declares a cluster: its node pools, zone layout, traffic, and
// the autoscaler's control knobs. The zero value of every optional
// field selects a default; a Spec fully determines its Report, byte
// for byte, at any host parallelism.
type Spec struct {
	// Pools are the node pools, in declaration order (which fixes
	// machine-id assignment and report order). At least one.
	Pools []PoolSpec

	// Zones is the availability-zone count machines are spread over
	// (default 3).
	Zones int

	// TargetUtilization is the autoscaler's per-pool setpoint in
	// (0, 1] (default 0.70): scale out when projected demand exceeds
	// it, scale in when demand stays under half of it.
	TargetUtilization float64

	// ReconcileEveryNanos is the control loop's step — the virtual
	// time between autoscaling decisions (default 2ms).
	ReconcileEveryNanos uint64

	// ScaleDownAfter is how many consecutive low-utilization steps a
	// pool must see before retiring one machine (default 4).
	ScaleDownAfter int

	// CordonSteps is how long after a kill a zone stays cordoned —
	// new machines are placed in other zones (default 4 steps).
	CordonSteps int

	// SLONanos is the request latency objective reports score
	// against (default 3 reconcile steps).
	SLONanos uint64

	// RequestWorkMiB is every request's private working set (default
	// 2): the worker allocates and write-touches this many MiB, so a
	// request costs CPU beyond its creation.
	RequestWorkMiB int

	// Seed seeds the balancer's deterministic candidate hashing
	// (default 1). Ties always break toward the lower machine id.
	Seed uint64

	// Traffic is the arrival plan (default one phase: 16 steps of 2
	// requests). The run continues past the last phase until every
	// queue drains. With SharedStream false (default) the stream is
	// offered to every pool in full — shadow traffic, so pools with
	// different strategies see identical demand and are directly
	// comparable. With SharedStream true each request is routed once,
	// across all pools' machines (bin-packing across shapes).
	Traffic []Phase

	// SharedStream routes each request once across all pools instead
	// of offering the full stream to every pool.
	SharedStream bool

	// MaxSteps bounds the run (default: traffic steps + 4096). A run
	// that hits it had standing backlog the fleet could never drain.
	MaxSteps int

	// Faults, when non-nil, is consulted once per live machine per
	// step at fault.PointMachineKill (magnitude = the machine's zone
	// index, time = the cluster clock): a non-OK decision kills the
	// machine, its queue is requeued, and its zone is cordoned.
	// fault.KillZone is the zone-outage schedule. The balancer also
	// probes fault.PointNetDeliver per ready machine (same magnitude
	// convention): a non-OK decision leaves the machine alive but
	// unreachable, so it takes no traffic — fault.ZonePartition is
	// the network-split schedule.
	Faults fault.Schedule

	// Parallelism bounds the host worker pool machines are simulated
	// on (default and ceiling: GOMAXPROCS). Host wall-clock only;
	// never the Report.
	Parallelism int
}

// withDefaults resolves every zero field, including per-pool shapes.
func (s Spec) withDefaults() Spec {
	if s.Zones == 0 {
		s.Zones = 3
	}
	if s.TargetUtilization == 0 {
		s.TargetUtilization = 0.70
	}
	if s.ReconcileEveryNanos == 0 {
		s.ReconcileEveryNanos = 2_000_000
	}
	if s.ScaleDownAfter == 0 {
		s.ScaleDownAfter = 4
	}
	if s.CordonSteps == 0 {
		s.CordonSteps = 4
	}
	if s.SLONanos == 0 {
		s.SLONanos = 3 * s.ReconcileEveryNanos
	}
	if s.RequestWorkMiB == 0 {
		s.RequestWorkMiB = 2
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if len(s.Traffic) == 0 {
		s.Traffic = []Phase{{Steps: 16, PerStep: 2}}
	}
	if s.MaxSteps == 0 {
		total := 0
		for _, ph := range s.Traffic {
			total += ph.Steps
		}
		s.MaxSteps = total + 4096
	}
	pools := make([]PoolSpec, len(s.Pools))
	for i, p := range s.Pools {
		if p.CPUs == 0 {
			p.CPUs = 2
		}
		if p.HeapBytes == 0 {
			p.HeapBytes = 64 << 20
		}
		if p.MinMachines == 0 {
			p.MinMachines = 1
		}
		if p.MaxMachines == 0 {
			p.MaxMachines = p.MinMachines
			if p.MaxMachines < 4 {
				p.MaxMachines = 4
			}
		}
		if p.MaxSurge == 0 {
			p.MaxSurge = 2
		}
		pools[i] = p
	}
	s.Pools = pools
	return s
}

// Validate reports whether the spec, after defaulting, is one Run can
// honour. Every failure is a *fleet.SpecError naming the offending
// field ("Pools[web].MinMachines"). The only invalid zero Spec field
// is Pools: a cluster needs at least one pool.
func (s Spec) Validate() error {
	return s.withDefaults().validate()
}

// specErr builds a cluster.Spec validation failure.
func specErr(field, format string, args ...any) *fleet.SpecError {
	return &fleet.SpecError{Spec: "cluster.Spec", Field: field, Reason: fmt.Sprintf(format, args...)}
}

// validate runs after withDefaults: zero fields are already resolved,
// so whatever it rejects, the caller wrote.
func (s Spec) validate() error {
	if len(s.Pools) == 0 {
		return specErr("Pools", "no pools declared (want >= 1)")
	}
	if s.Zones < 1 || s.Zones > 16 {
		return specErr("Zones", "%d zones (want 1..16)", s.Zones)
	}
	if s.TargetUtilization <= 0 || s.TargetUtilization > 1 {
		return specErr("TargetUtilization", "%g (want 0 < u <= 1)", s.TargetUtilization)
	}
	if s.ScaleDownAfter < 1 {
		return specErr("ScaleDownAfter", "%d steps (want >= 1)", s.ScaleDownAfter)
	}
	if s.CordonSteps < 0 {
		return specErr("CordonSteps", "%d steps (want >= 0)", s.CordonSteps)
	}
	if s.RequestWorkMiB < 0 {
		return specErr("RequestWorkMiB", "%d MiB (want >= 0)", s.RequestWorkMiB)
	}
	for i, ph := range s.Traffic {
		if ph.Steps < 1 {
			return specErr(fmt.Sprintf("Traffic[%d].Steps", i), "%d steps (want >= 1)", ph.Steps)
		}
		if ph.PerStep < 0 {
			return specErr(fmt.Sprintf("Traffic[%d].PerStep", i), "%d requests per step (want >= 0)", ph.PerStep)
		}
	}
	seen := make(map[string]bool, len(s.Pools))
	for i, p := range s.Pools {
		field := func(f string) string {
			if p.Name == "" {
				return fmt.Sprintf("Pools[%d].%s", i, f)
			}
			return fmt.Sprintf("Pools[%s].%s", p.Name, f)
		}
		if p.Name == "" {
			return specErr(field("Name"), "pool has no name")
		}
		if seen[p.Name] {
			return specErr(field("Name"), "duplicate pool name %q", p.Name)
		}
		seen[p.Name] = true
		if p.Via < sim.Spawn || p.Via > sim.EagerForkExec {
			return specErr(field("Via"), "unknown strategy %d", int(p.Via))
		}
		if p.CPUs < 1 || p.CPUs > 64 {
			return specErr(field("CPUs"), "%d CPUs (want 1..64)", p.CPUs)
		}
		if p.Workers < 0 {
			return specErr(field("Workers"), "%d pool workers (want >= 0; 0 selects the default)", p.Workers)
		}
		if p.MinMachines < 1 {
			return specErr(field("MinMachines"), "%d machines (want >= 1)", p.MinMachines)
		}
		if p.MaxMachines > 64 {
			return specErr(field("MaxMachines"), "%d machines (want <= 64)", p.MaxMachines)
		}
		if p.MinMachines > p.MaxMachines {
			return specErr(field("MinMachines"), "min %d > max %d", p.MinMachines, p.MaxMachines)
		}
		if p.MaxSurge < 1 {
			return specErr(field("MaxSurge"), "%d machines per step (want >= 1)", p.MaxSurge)
		}
		for _, z := range p.Zones {
			if z < 0 || z >= s.Zones {
				return specErr(field("Zones"), "zone %d out of range (cluster has zones 0..%d)", z, s.Zones-1)
			}
		}
	}
	return nil
}

// zones resolves a pool's placement set: its declared zones, or every
// cluster zone.
func (p PoolSpec) zones(clusterZones int) []int {
	if len(p.Zones) > 0 {
		return p.Zones
	}
	zs := make([]int, clusterZones)
	for i := range zs {
		zs[i] = i
	}
	return zs
}
