package cluster_test

import (
	"bytes"
	"runtime"
	"testing"

	"repro/sim/cluster"
)

// runJSON runs a cluster spec under an explicit GOMAXPROCS and
// returns the marshalled report — the byte string the determinism
// contract is about.
func runJSON(t *testing.T, spec cluster.Spec, gomaxprocs int) []byte {
	t.Helper()
	prev := runtime.GOMAXPROCS(gomaxprocs)
	defer runtime.GOMAXPROCS(prev)
	rep, err := cluster.Run(spec)
	if err != nil {
		t.Fatalf("GOMAXPROCS=%d: %v", gomaxprocs, err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestClusterDeterministicAcrossGOMAXPROCS: for every scenario — and
// therefore machine shapes of 1, 2, 4, and 8 CPUs — the full report,
// reconcile trace included, is byte-identical at GOMAXPROCS 1 and 8,
// and across repeat runs.
func TestClusterDeterministicAcrossGOMAXPROCS(t *testing.T) {
	for _, s := range cluster.Scenarios() {
		t.Run(string(s), func(t *testing.T) {
			spec, err := cluster.SpecFor(s, 4<<20)
			if err != nil {
				t.Fatal(err)
			}
			serial := runJSON(t, spec, 1)
			parallel := runJSON(t, spec, 8)
			if !bytes.Equal(serial, parallel) {
				t.Fatalf("report differs between GOMAXPROCS 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
			}
			if again := runJSON(t, spec, 8); !bytes.Equal(parallel, again) {
				t.Fatal("repeat run at GOMAXPROCS=8 differs")
			}
		})
	}
}

// TestClusterParallelismKnobDoesNotChangeResult: the explicit host
// worker count is a performance knob only.
func TestClusterParallelismKnobDoesNotChangeResult(t *testing.T) {
	var base []byte
	for _, par := range []int{1, 2, 8} {
		spec := cluster.SurgeSpec(4 << 20)
		spec.Parallelism = par
		data := runJSON(t, spec, 4)
		if base == nil {
			base = data
			continue
		}
		if !bytes.Equal(base, data) {
			t.Fatalf("Parallelism=%d changed the report", par)
		}
	}
}

// TestClusterSeedChangesRouting: the balancer seed is real — a
// different seed may route differently — but each seed is itself
// stable. (Totals still match; only placement details may move.)
func TestClusterSeedChangesRouting(t *testing.T) {
	spec := cluster.HeteroPoolsSpec(4 << 20)
	a := runJSON(t, spec, 4)
	spec.Seed = 2
	b1 := runJSON(t, spec, 4)
	b2 := runJSON(t, spec, 4)
	if !bytes.Equal(b1, b2) {
		t.Fatal("seed 2 not self-stable")
	}
	if bytes.Equal(a, b1) {
		t.Log("seeds 1 and 2 happened to agree byte-for-byte (allowed, just unlikely)")
	}
}
