package cluster

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/sim/load"
)

// ScaleOut is one scale-out event: the autoscaler decided at the end
// of DecisionStep, the machine warmed up on its own clock, and it
// took traffic from ReadyStep. LatencyNanos is the gap — boot, heap
// dirtying, worker-pool creation, rounded up to whole reconcile steps
// — the cost a surge pays before new capacity helps.
type ScaleOut struct {
	Machine      int    `json:"machine"`
	Zone         int    `json:"zone"`
	DecisionStep int    `json:"decision_step"`
	ReadyStep    int    `json:"ready_step"`
	LatencyNanos uint64 `json:"latency_ns"`
}

// PoolReport is one pool's deterministic outcome.
type PoolReport struct {
	Pool      string `json:"pool"`
	Strategy  string `json:"strategy"`
	CPUs      int    `json:"cpus"`
	HeapBytes uint64 `json:"heap_bytes"`
	Workers   int    `json:"workers,omitempty"`

	// Served/Failed are requests completed and lost; SLOMet of the
	// served finished within the SLO, and SLORate is the fraction.
	Served  uint64  `json:"served"`
	Failed  uint64  `json:"failed,omitempty"`
	SLOMet  uint64  `json:"slo_met"`
	SLORate float64 `json:"slo_rate"`

	// MeanLatencyNanos/MaxLatencyNanos are request latencies at
	// reconcile-step granularity (arrival step to completion step).
	MeanLatencyNanos uint64 `json:"mean_latency_ns"`
	MaxLatencyNanos  uint64 `json:"max_latency_ns"`

	// MachinesBooted counts every machine the pool ever ran;
	// Peak/FinalMachines the population's high-water mark and the
	// count left when the run ended (before the final drain).
	MachinesBooted int `json:"machines_booted"`
	PeakMachines   int `json:"peak_machines"`
	FinalMachines  int `json:"final_machines"`

	// ScaleOuts are the pool's scale-out events; the Mean/Max roll up
	// their latencies — the headline fork-vs-spawn comparison.
	ScaleOuts         []ScaleOut `json:"scale_outs,omitempty"`
	MeanScaleOutNanos uint64     `json:"mean_scale_out_ns,omitempty"`
	MaxScaleOutNanos  uint64     `json:"max_scale_out_ns,omitempty"`

	ScaleDowns     int `json:"scale_downs,omitempty"`
	MachinesKilled int `json:"machines_killed,omitempty"`

	// WarmupPTECopies totals the page-table entries copied warming
	// the pool's machines — Θ(heap × workers) per machine under fork,
	// ~0 under spawn. PeakMachineRSSBytes is the largest single
	// machine's resident high-water mark.
	WarmupPTECopies     uint64 `json:"warmup_pte_copies"`
	PeakMachineRSSBytes uint64 `json:"peak_machine_rss_bytes"`
}

// Report is one cluster run. Everything marshalled is a pure function
// of the Spec; host-side measurements stay out of the JSON, so the
// report is byte-stable at any GOMAXPROCS.
type Report struct {
	Zones               int     `json:"zones"`
	TargetUtilization   float64 `json:"target_utilization"`
	ReconcileEveryNanos uint64  `json:"reconcile_every_ns"`
	SLONanos            uint64  `json:"slo_ns"`
	SharedStream        bool    `json:"shared_stream,omitempty"`
	Steps               int     `json:"steps"`
	Traffic             []Phase `json:"traffic"`

	Pools []PoolReport `json:"pools"`

	// Trace is the reconcile loop's event log (ready/kill/scale-up/
	// scale-down), one line per event in decision order — the
	// determinism gate byte-compares it.
	Trace []string `json:"trace"`

	// Host-side: wall clock and worker count, excluded from JSON.
	HostElapsed time.Duration `json:"-"`
	HostWorkers int           `json:"-"`

	// Drains carries every retired machine's resource books for the
	// leak-invariant tests; excluded from JSON (it is host-shaped
	// diagnostic detail, not part of the stable report).
	Drains map[string][]load.DrainStats `json:"-"`
}

// report assembles the Report from the engine's final state.
func (e *engine) report(steps int) *Report {
	rep := &Report{
		Zones:               e.spec.Zones,
		TargetUtilization:   e.spec.TargetUtilization,
		ReconcileEveryNanos: e.spec.ReconcileEveryNanos,
		SLONanos:            e.spec.SLONanos,
		SharedStream:        e.spec.SharedStream,
		Steps:               steps,
		Traffic:             e.spec.Traffic,
		Trace:               e.trace,
		Drains:              make(map[string][]load.DrainStats, len(e.pools)),
	}
	if rep.Trace == nil {
		rep.Trace = []string{}
	}
	for _, p := range e.pools {
		pr := PoolReport{
			Pool:                p.spec.Name,
			Strategy:            p.spec.Via.String(),
			CPUs:                p.spec.CPUs,
			HeapBytes:           p.spec.HeapBytes,
			Workers:             p.spec.Workers,
			Served:              p.served,
			Failed:              p.failed,
			SLOMet:              p.sloMet,
			MaxLatencyNanos:     p.latencyMax,
			MachinesBooted:      p.booted,
			PeakMachines:        p.peakMachines,
			FinalMachines:       len(p.machines),
			ScaleOuts:           p.scaleOuts,
			ScaleDowns:          p.scaleDowns,
			MachinesKilled:      p.killed,
			WarmupPTECopies:     p.warmupPTEs,
			PeakMachineRSSBytes: p.peakMachineRSS,
		}
		if p.served > 0 {
			pr.SLORate = float64(p.sloMet) / float64(p.served)
			pr.MeanLatencyNanos = p.latencySum / p.served
		}
		if n := uint64(len(p.scaleOuts)); n > 0 {
			var sum uint64
			for _, so := range p.scaleOuts {
				sum += so.LatencyNanos
				if so.LatencyNanos > pr.MaxScaleOutNanos {
					pr.MaxScaleOutNanos = so.LatencyNanos
				}
			}
			pr.MeanScaleOutNanos = sum / n
		}
		rep.Pools = append(rep.Pools, pr)
		rep.Drains[p.spec.Name] = p.drains
	}
	return rep
}

// JSON renders the byte-stable cluster report: same Spec, same bytes,
// at any host parallelism.
func (r *Report) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Render formats the report for the CLI: the pool table, then the
// reconcile trace.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d zones, target %.0f%%, step %.1fms, SLO %.1fms, %d steps\n",
		r.Zones, 100*r.TargetUtilization, float64(r.ReconcileEveryNanos)/1e6, float64(r.SLONanos)/1e6, r.Steps)
	fmt.Fprintf(&b, "  %-10s %-8s %-5s %-8s %-9s %-7s %-12s %-12s %-10s\n",
		"pool", "via", "cpus", "heap", "served", "SLO%", "scale-out", "mean-lat", "machines")
	for _, p := range r.Pools {
		scaleOut := "-"
		if p.MeanScaleOutNanos > 0 {
			scaleOut = fmt.Sprintf("%.1fms", float64(p.MeanScaleOutNanos)/1e6)
		}
		machines := fmt.Sprintf("%d/%d/%d", p.MachinesBooted, p.PeakMachines, p.FinalMachines)
		fmt.Fprintf(&b, "  %-10s %-8s %-5d %-8s %-9d %-7.1f %-12s %-12s %-10s\n",
			p.Pool, p.Strategy, p.CPUs, load.HumanBytes(p.HeapBytes),
			p.Served, 100*p.SLORate, scaleOut,
			fmt.Sprintf("%.1fms", float64(p.MeanLatencyNanos)/1e6), machines)
		if p.MachinesKilled > 0 || p.ScaleDowns > 0 {
			fmt.Fprintf(&b, "  %10s  %d scale-out(s), %d scale-down(s), %d killed\n",
				"", len(p.ScaleOuts), p.ScaleDowns, p.MachinesKilled)
		}
	}
	if len(r.Trace) > 0 {
		fmt.Fprintf(&b, "  reconcile trace:\n")
		for _, line := range r.Trace {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String()
}
