package cluster_test

import (
	"strings"
	"testing"

	"repro/sim"
	"repro/sim/cluster"
	"repro/sim/load"
)

// offered sums a spec's arrival plan (per pool, unshared).
func offered(spec cluster.Spec) uint64 {
	var n uint64
	for _, ph := range spec.Traffic {
		n += uint64(ph.Steps) * uint64(ph.PerStep)
	}
	return n
}

// TestSurgeScalesBothPoolsForkSlower is the tentpole experiment at
// unit-test scale: the spike forces both pools to scale out, nothing
// is lost, and the fork pool's measured scale-out latency is above the
// spawn pool's (Θ(heap) worker warm-up vs flat).
func TestSurgeScalesBothPoolsForkSlower(t *testing.T) {
	spec := cluster.SurgeSpec(4 << 20)
	rep, err := cluster.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := offered(spec)
	byName := map[string]cluster.PoolReport{}
	for _, p := range rep.Pools {
		byName[p.Pool] = p
		if p.Served != want || p.Failed != 0 {
			t.Errorf("pool %s served %d failed %d, want %d/0", p.Pool, p.Served, p.Failed, want)
		}
		if len(p.ScaleOuts) == 0 {
			t.Errorf("pool %s never scaled out under the spike", p.Pool)
		}
		if p.ScaleDowns == 0 {
			t.Errorf("pool %s never scaled back down in the idle tail", p.Pool)
		}
		if p.FinalMachines != spec.Pools[0].MinMachines {
			t.Errorf("pool %s ended with %d machines, want the floor %d",
				p.Pool, p.FinalMachines, spec.Pools[0].MinMachines)
		}
	}
	fork, spawn := byName["fork"], byName["spawn"]
	if fork.MeanScaleOutNanos <= spawn.MeanScaleOutNanos {
		t.Errorf("fork scale-out %dns not above spawn %dns", fork.MeanScaleOutNanos, spawn.MeanScaleOutNanos)
	}
	if fork.WarmupPTECopies <= spawn.WarmupPTECopies {
		t.Errorf("fork warm-up PTE copies %d not above spawn %d", fork.WarmupPTECopies, spawn.WarmupPTECopies)
	}
	if fork.SLORate > spawn.SLORate {
		t.Errorf("fork SLO rate %.3f above spawn %.3f", fork.SLORate, spawn.SLORate)
	}
}

// TestZoneOutageCordonAndBackfill: the outage kills the zone-0
// machine, its requests retry (none lost), the pool backfills to its
// floor, and every machine booted while the zone was cordoned lands
// elsewhere.
func TestZoneOutageCordonAndBackfill(t *testing.T) {
	spec := cluster.ZoneOutageSpec(4 << 20)
	rep, err := cluster.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Pools[0]
	if p.MachinesKilled == 0 {
		t.Fatal("outage killed nothing")
	}
	if p.Failed != 0 || p.Served != offered(spec) {
		t.Errorf("served %d failed %d, want %d/0 (kills requeue, not lose)", p.Served, p.Failed, offered(spec))
	}
	if len(p.ScaleOuts) == 0 {
		t.Fatal("no backfill scale-out after the outage")
	}
	// Outage window is steps 10..20; cordon extends it. Nothing may
	// be placed into zone 0 while it is being killed.
	for _, so := range p.ScaleOuts {
		if so.DecisionStep >= 10 && so.DecisionStep < 20 && so.Zone == 0 {
			t.Errorf("machine %d placed into the dying zone at step %d", so.Machine, so.DecisionStep)
		}
	}
	killTrace := false
	for _, line := range rep.Trace {
		if strings.Contains(line, "kill machine") {
			killTrace = true
		}
	}
	if !killTrace {
		t.Error("reconcile trace has no kill event")
	}
}

// TestNetSplitRoutesAroundZone: a partitioned zone's machines stay
// alive but take no traffic — the balancer routes around them, every
// request is still served, and the trace records the partition.
func TestNetSplitRoutesAroundZone(t *testing.T) {
	spec := cluster.NetSplitSpec(4 << 20)
	rep, err := cluster.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Pools[0]
	if p.MachinesKilled != 0 {
		t.Errorf("partition killed %d machines; a split severs links, not machines", p.MachinesKilled)
	}
	if p.Failed != 0 || p.Served != offered(spec) {
		t.Errorf("served %d failed %d, want %d/0 (unreachable is not lost)", p.Served, p.Failed, offered(spec))
	}
	partitionTrace := false
	for _, line := range rep.Trace {
		if strings.Contains(line, "unreachable (network partition)") {
			partitionTrace = true
		}
	}
	if !partitionTrace {
		t.Error("reconcile trace has no partition event")
	}
}

// TestHeteroPoolsWeightedRouting: with one shared stream over the
// 1/2/4/8-CPU ladder, the CPU-weighted balancer gives a big machine
// more traffic than a small one (per-machine — small pools may grow
// extra machines instead), and the stream is served exactly once, not
// once per pool.
func TestHeteroPoolsWeightedRouting(t *testing.T) {
	spec := cluster.HeteroPoolsSpec(4 << 20)
	rep, err := cluster.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	perMachine := map[string]uint64{}
	for _, p := range rep.Pools {
		total += p.Served + p.Failed
		perMachine[p.Pool] = p.Served / uint64(p.PeakMachines)
	}
	if want := offered(spec); total != want {
		t.Errorf("cluster served %d requests, want the shared stream's %d", total, want)
	}
	if perMachine["cpu8"] <= perMachine["cpu1"] {
		t.Errorf("cpu8 served %d per machine, cpu1 %d: balancer is not shape-weighted",
			perMachine["cpu8"], perMachine["cpu1"])
	}
}

// TestScaleDownLeakInvariant: under every strategy, a machine retired
// by scale-down (and the final drain) returns its process, frame, and
// commit counts exactly to the post-warm-up baseline — the cluster
// cannot leak what its machines created.
func TestScaleDownLeakInvariant(t *testing.T) {
	for _, via := range []sim.Strategy{
		sim.Spawn, sim.ForkExec, sim.VforkExec, sim.Builder, sim.EmulatedFork, sim.EagerForkExec,
	} {
		t.Run(via.String(), func(t *testing.T) {
			rep, err := cluster.Run(cluster.Spec{
				Pools: []cluster.PoolSpec{{
					Name: "p", Via: via, CPUs: 1, HeapBytes: 2 << 20,
					Workers: 2, MinMachines: 1, MaxMachines: 3,
				}},
				RequestWorkMiB: 1,
				Traffic:        []cluster.Phase{{Steps: 4, PerStep: 6}, {Steps: 30, PerStep: 0}},
			})
			if err != nil {
				t.Fatal(err)
			}
			p := rep.Pools[0]
			if len(p.ScaleOuts) == 0 || p.ScaleDowns == 0 {
				t.Fatalf("no scale cycle to check: %d out, %d down", len(p.ScaleOuts), p.ScaleDowns)
			}
			drains := rep.Drains["p"]
			if len(drains) != p.MachinesBooted {
				t.Fatalf("%d drain records for %d booted machines", len(drains), p.MachinesBooted)
			}
			for i, d := range drains {
				if d.EndProcs != d.BaseProcs {
					t.Errorf("drain %d: process leak %d -> %d", i, d.BaseProcs, d.EndProcs)
				}
				if d.EndPages != d.BasePages {
					t.Errorf("drain %d: frame leak %d -> %d", i, d.BasePages, d.EndPages)
				}
				if d.EndCommit != d.BaseCommit {
					t.Errorf("drain %d: commit leak %d -> %d", i, d.BaseCommit, d.EndCommit)
				}
			}
		})
	}
}

// TestUnderProvisionedClusterErrors: a fleet that can never drain its
// backlog hits MaxSteps and reports it instead of spinning forever.
func TestUnderProvisionedClusterErrors(t *testing.T) {
	_, err := cluster.Run(cluster.Spec{
		Pools: []cluster.PoolSpec{{
			Name: "tiny", Via: sim.ForkExec, CPUs: 1, HeapBytes: 2 << 20,
			MinMachines: 1, MaxMachines: 1,
		}},
		ReconcileEveryNanos: 1_000_000,
		Traffic:             []cluster.Phase{{Steps: 4, PerStep: 400}},
		MaxSteps:            40,
	})
	if err == nil || !strings.Contains(err.Error(), "not drained") {
		t.Fatalf("under-provisioned run = %v, want backlog-not-drained error", err)
	}
}

// TestRenderAndScenarioParsing smoke-covers the CLI surfaces.
func TestRenderAndScenarioParsing(t *testing.T) {
	for _, s := range cluster.Scenarios() {
		got, err := cluster.ParseScenario(string(s))
		if err != nil || got != s {
			t.Errorf("ParseScenario(%q) = %v, %v", s, got, err)
		}
		if _, err := cluster.SpecFor(s, 2<<20); err != nil {
			t.Errorf("SpecFor(%q): %v", s, err)
		}
	}
	if _, err := cluster.ParseScenario("nope"); err == nil {
		t.Error("unknown scenario parsed")
	}
	rep, err := cluster.Run(cluster.Spec{
		Pools:   []cluster.PoolSpec{{Name: "p", Via: sim.Spawn, CPUs: 1, HeapBytes: 2 << 20, Workers: 2}},
		Traffic: []cluster.Phase{{Steps: 4, PerStep: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Render()
	for _, want := range []string{"cluster:", "pool", "posix_spawn", "reconcile trace"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if _, err := rep.JSON(); err != nil {
		t.Fatal(err)
	}
	var _ load.DrainStats = rep.Drains["p"][0] // drains recorded for the final retire
}
