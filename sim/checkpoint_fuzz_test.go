package sim_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/sim"
)

// checkpointEpisode is FuzzCheckpointRestore's body: create a process
// through a fuzzer-chosen strategy on one machine, checkpoint it
// unstarted, restore the same image onto one or more fresh machines,
// and run it everywhere — including on a control machine that never
// migrated. Whatever the fuzzer invents, the image must be
// self-contained (each restore runs independently), the migrated runs
// must match the control byte-for-byte on the console and in exit
// state, the source machine must never observe the process running,
// and the whole episode must replay deterministically. With
// borrow=true it also checkpoints a raw mid-vfork borrower and
// demands the typed refusal rather than a torn image.
func checkpointEpisode(via sim.Strategy, dirtyKiB uint64, arg string, restores int, borrow bool) (string, error) {
	mk := func(buf *bytes.Buffer) (*sim.System, *sim.Process, error) {
		sys, err := sim.NewSystem(sim.WithRAM(64<<20), sim.WithConsole(buf), sim.WithUserland("echo"))
		if err != nil {
			return nil, nil, err
		}
		if dirtyKiB > 0 {
			if err := sys.DirtyHost(dirtyKiB<<10, false); err != nil {
				return nil, nil, err
			}
		}
		p, err := sys.Command("echo", arg).Via(via).Create()
		if err != nil {
			return nil, nil, err
		}
		return sys, p, nil
	}

	var out strings.Builder

	// The unmigrated control: same machine creates and runs.
	var ctl bytes.Buffer
	_, pA, err := mk(&ctl)
	if err != nil {
		return "", fmt.Errorf("control: %w", err)
	}
	if err := pA.Start(); err != nil {
		return "", err
	}
	psA, err := pA.Wait()
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&out, "control out=%q sys=%d\n", ctl.String(), psA.Sys())

	// The source: create, checkpoint, never run.
	var srcOut bytes.Buffer
	srcSys, pB, err := mk(&srcOut)
	if err != nil {
		return "", fmt.Errorf("source: %w", err)
	}
	img, err := pB.Checkpoint()
	if err != nil {
		return "", fmt.Errorf("checkpoint %v: %w", via, err)
	}
	fmt.Fprintf(&out, "image pages=%d\n", img.PageCount())

	// One image, N independent restores: each must replay the control.
	for i := 0; i < restores; i++ {
		var dstOut bytes.Buffer
		dst, err := sim.NewSystem(sim.WithRAM(64<<20), sim.WithConsole(&dstOut), sim.WithUserland("echo"))
		if err != nil {
			return "", err
		}
		pC, err := dst.Restore(img)
		if err != nil {
			return "", fmt.Errorf("restore %d: %w", i, err)
		}
		if err := pC.Start(); err != nil {
			return "", err
		}
		psC, err := pC.Wait()
		if err != nil {
			return "", err
		}
		if dstOut.String() != ctl.String() {
			return "", fmt.Errorf("restore %d console %q, control %q", i, dstOut.String(), ctl.String())
		}
		if psC.Sys() != psA.Sys() || psC.OOMKilled() != psA.OOMKilled() {
			return "", fmt.Errorf("restore %d exit state %v, control %v", i, psC, psA)
		}
		fmt.Fprintf(&out, "restore%d out=%q\n", i, dstOut.String())
	}
	if srcOut.Len() != 0 {
		return "", fmt.Errorf("source machine ran the process before migration: %q", srcOut.String())
	}

	// A mid-vfork borrower must refuse with the typed error, not ship
	// a torn image of its parent's address space.
	if borrow {
		k := srcSys.Kernel()
		child, err := k.ForkWithMode(srcSys.Host(), kernel.ForkVfork)
		if err != nil {
			return "", err
		}
		_, err = srcSys.ProcessOf(child).Checkpoint()
		var ce *kernel.CheckpointError
		if !errors.As(err, &ce) {
			return "", fmt.Errorf("vfork borrower checkpoint err = %v, want *kernel.CheckpointError", err)
		}
		k.DestroyProcess(child)
		fmt.Fprintf(&out, "refused: %s\n", ce.Reason)
	}
	return out.String(), nil
}

// FuzzCheckpointRestore throws random creation strategies, host dirty
// sizes, console payloads, and restore fan-outs at checkpoint/restore:
// the image must be self-contained and reusable, every restored run
// must be indistinguishable from the unmigrated control, refusals must
// stay typed, and the episode must replay byte-for-byte — the failing
// tuple is its own reproducer. Runs in CI fuzz-smoke.
func FuzzCheckpointRestore(f *testing.F) {
	f.Add(uint8(0), uint16(256), uint64(1), uint8(1), false)
	f.Add(uint8(1), uint16(0), uint64(42), uint8(2), true)
	f.Add(uint8(3), uint16(1024), uint64(7), uint8(1), true)
	f.Add(uint8(5), uint16(2048), uint64(0xdeadbeef), uint8(2), false)
	f.Fuzz(func(t *testing.T, viaIdx uint8, dirtyKiB uint16, argSeed uint64, restores uint8, borrow bool) {
		all := allStrategies()
		via := all[int(viaIdx)%len(all)]
		kib := uint64(dirtyKiB) % 2049
		arg := fmt.Sprintf("m%x", argSeed)
		n := 1 + int(restores)%2
		first, err := checkpointEpisode(via, kib, arg, n, borrow)
		if err != nil {
			t.Fatal(err)
		}
		second, err := checkpointEpisode(via, kib, arg, n, borrow)
		if err != nil {
			t.Fatalf("replay failed where first run passed: %v", err)
		}
		if first != second {
			t.Fatalf("episode (via=%v dirty=%dKiB arg=%q restores=%d borrow=%v) did not replay deterministically:\nfirst:\n%s\nsecond:\n%s",
				via, kib, arg, n, borrow, first, second)
		}
	})
}
