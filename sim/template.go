package sim

import (
	"fmt"
	"sync"

	"repro/internal/kernel"
)

// Template is a frozen machine image: a warmed System snapshotted into
// an immutable master copy that can be stamped into any number of
// independent clones in ~O(live kernel structures) host time instead
// of Θ(heap). Frame contents, file data, page-table radix nodes,
// fd-table aliasing, and process trees are carried over exactly;
// physical bytes are host-COW-shared (first write on a clone copies
// the affected frame out, never touching the template). A Template is
// safe for concurrent Clone calls from multiple goroutines: clones
// only read the frozen master.
type Template struct {
	k         *kernel.Kernel
	hostPid   kernel.PID
	runBudget uint64

	// Recycle pool: dead kernels of released clones, whose maps and
	// frame-table slices the next Clone rewrites in place instead of
	// reallocating (see Release). Bounded so a burst of releases
	// cannot pin memory.
	mu   sync.Mutex
	free []*kernel.Kernel
}

// maxRecycled bounds a template's recycle pool. Clones in flight at
// once are bounded by the host worker pool, so a small pool captures
// all the reuse a fleet loop can exploit.
const maxRecycled = 32

// Snapshot freezes the machine's current state — mid-workload is fine
// — into a Template. The live System keeps running afterwards: its
// frames are marked copy-on-write so later writes break sharing
// instead of scribbling on the template's bytes. Virtual time,
// meter counters, fault op counters, and the event trace are all part
// of the snapshot, so a clone continues from this exact instant and a
// workload run on a clone is byte-identical (metrics and trace) to the
// same workload run on the original machine.
func (s *System) Snapshot() (*Template, error) {
	if s.host == nil {
		return nil, fmt.Errorf("sim: snapshot of a system with no host process")
	}
	master := s.k.Clone(true)
	if master.Lookup(s.host.Pid) == nil {
		return nil, fmt.Errorf("sim: snapshot lost host pid %d", s.host.Pid)
	}
	return &Template{k: master, hostPid: s.host.Pid, runBudget: s.runBudget}, nil
}

// Clone stamps a fresh, fully independent System from the template.
// The clone has its own cost meter (continuing from the template's
// clocks), fault-injection op counters, trace recorder, process table,
// and physical-memory books; the only thing shared with the template
// is immutable frame and file bytes, un-shared per frame on first
// write. Cloning charges zero simulated cost — a clone is logically
// the warmed machine itself, not a copy of it.
func (t *Template) Clone() (*System, error) {
	t.mu.Lock()
	var scratch *kernel.Kernel
	if n := len(t.free); n > 0 {
		scratch = t.free[n-1]
		t.free[n-1] = nil
		t.free = t.free[:n-1]
	}
	t.mu.Unlock()
	k := t.k.CloneInto(false, scratch)
	host := k.Lookup(t.hostPid)
	if host == nil {
		return nil, fmt.Errorf("sim: template clone lost host pid %d", t.hostPid)
	}
	return &System{k: k, host: host, runBudget: t.runBudget}, nil
}

// Release retires a System stamped from this template and recycles its
// kernel's allocations into the next Clone: the big per-clone
// allocations (frame table, process and futex maps) are rewritten in
// place instead of reallocated, so a fleet loop stamping and retiring
// machines stops churning them. The recycled state is host-side only —
// a Clone that reuses it is byte-identical, books and metrics included,
// to one built fresh (the recycle tests enforce this).
//
// The System must have been stamped from this template, must not be
// the frozen master, and must never be used again: Release nils its
// kernel so a late call fails loudly instead of aliasing whatever
// machine is stamped into the shell next. Releasing is optional — an
// un-released clone is simply garbage-collected.
func (t *Template) Release(s *System) {
	if s == nil || s.k == nil || s.k == t.k {
		return
	}
	k := s.k
	s.k, s.host = nil, nil
	t.mu.Lock()
	if len(t.free) < maxRecycled {
		t.free = append(t.free, k)
	}
	t.mu.Unlock()
}

// Kernel exposes the frozen master kernel (read-only by convention;
// mutating it invalidates the template's immutability guarantee).
func (t *Template) Kernel() *kernel.Kernel { return t.k }

// FindProcess re-adopts a process of a cloned machine by pid, so a
// harness that recorded pids before Snapshot can rebuild its typed
// handles on each clone (pool workers, servers). The handle reports
// zero creation cost: the process was not created on this machine, it
// arrived with it.
func (s *System) FindProcess(pid int) (*Process, error) {
	raw := s.k.Lookup(kernel.PID(pid))
	if raw == nil {
		return nil, fmt.Errorf("sim: no process with pid %d", pid)
	}
	return &Process{sys: s, raw: raw}, nil
}
