package sim

import (
	"fmt"

	"repro/internal/kernel"
)

// Template is a frozen machine image: a warmed System snapshotted into
// an immutable master copy that can be stamped into any number of
// independent clones in ~O(live kernel structures) host time instead
// of Θ(heap). Frame contents, file data, page-table radix nodes,
// fd-table aliasing, and process trees are carried over exactly;
// physical bytes are host-COW-shared (first write on a clone copies
// the affected frame out, never touching the template). A Template is
// safe for concurrent Clone calls from multiple goroutines: clones
// only read the frozen master.
type Template struct {
	k         *kernel.Kernel
	hostPid   kernel.PID
	runBudget uint64
}

// Snapshot freezes the machine's current state — mid-workload is fine
// — into a Template. The live System keeps running afterwards: its
// frames are marked copy-on-write so later writes break sharing
// instead of scribbling on the template's bytes. Virtual time,
// meter counters, fault op counters, and the event trace are all part
// of the snapshot, so a clone continues from this exact instant and a
// workload run on a clone is byte-identical (metrics and trace) to the
// same workload run on the original machine.
func (s *System) Snapshot() (*Template, error) {
	if s.host == nil {
		return nil, fmt.Errorf("sim: snapshot of a system with no host process")
	}
	master := s.k.Clone(true)
	if master.Lookup(s.host.Pid) == nil {
		return nil, fmt.Errorf("sim: snapshot lost host pid %d", s.host.Pid)
	}
	return &Template{k: master, hostPid: s.host.Pid, runBudget: s.runBudget}, nil
}

// Clone stamps a fresh, fully independent System from the template.
// The clone has its own cost meter (continuing from the template's
// clocks), fault-injection op counters, trace recorder, process table,
// and physical-memory books; the only thing shared with the template
// is immutable frame and file bytes, un-shared per frame on first
// write. Cloning charges zero simulated cost — a clone is logically
// the warmed machine itself, not a copy of it.
func (t *Template) Clone() (*System, error) {
	k := t.k.Clone(false)
	host := k.Lookup(t.hostPid)
	if host == nil {
		return nil, fmt.Errorf("sim: template clone lost host pid %d", t.hostPid)
	}
	return &System{k: k, host: host, runBudget: t.runBudget}, nil
}

// Kernel exposes the frozen master kernel (read-only by convention;
// mutating it invalidates the template's immutability guarantee).
func (t *Template) Kernel() *kernel.Kernel { return t.k }

// FindProcess re-adopts a process of a cloned machine by pid, so a
// harness that recorded pids before Snapshot can rebuild its typed
// handles on each clone (pool workers, servers). The handle reports
// zero creation cost: the process was not created on this machine, it
// arrived with it.
func (s *System) FindProcess(pid int) (*Process, error) {
	raw := s.k.Lookup(kernel.PID(pid))
	if raw == nil {
		return nil, fmt.Errorf("sim: no process with pid %d", pid)
	}
	return &Process{sys: s, raw: raw}, nil
}
